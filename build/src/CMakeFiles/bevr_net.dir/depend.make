# Empty dependencies file for bevr_net.
# This may be replaced when dependencies are built.
