file(REMOVE_RECURSE
  "CMakeFiles/bevr_net.dir/bevr/net/admission.cpp.o"
  "CMakeFiles/bevr_net.dir/bevr/net/admission.cpp.o.d"
  "CMakeFiles/bevr_net.dir/bevr/net/network_sim.cpp.o"
  "CMakeFiles/bevr_net.dir/bevr/net/network_sim.cpp.o.d"
  "CMakeFiles/bevr_net.dir/bevr/net/packet_link.cpp.o"
  "CMakeFiles/bevr_net.dir/bevr/net/packet_link.cpp.o.d"
  "CMakeFiles/bevr_net.dir/bevr/net/packet_sched.cpp.o"
  "CMakeFiles/bevr_net.dir/bevr/net/packet_sched.cpp.o.d"
  "CMakeFiles/bevr_net.dir/bevr/net/rsvp.cpp.o"
  "CMakeFiles/bevr_net.dir/bevr/net/rsvp.cpp.o.d"
  "CMakeFiles/bevr_net.dir/bevr/net/scheduler.cpp.o"
  "CMakeFiles/bevr_net.dir/bevr/net/scheduler.cpp.o.d"
  "CMakeFiles/bevr_net.dir/bevr/net/token_bucket.cpp.o"
  "CMakeFiles/bevr_net.dir/bevr/net/token_bucket.cpp.o.d"
  "CMakeFiles/bevr_net.dir/bevr/net/topology.cpp.o"
  "CMakeFiles/bevr_net.dir/bevr/net/topology.cpp.o.d"
  "libbevr_net.a"
  "libbevr_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bevr_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
