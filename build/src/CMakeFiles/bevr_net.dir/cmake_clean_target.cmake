file(REMOVE_RECURSE
  "libbevr_net.a"
)
