
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bevr/net/admission.cpp" "src/CMakeFiles/bevr_net.dir/bevr/net/admission.cpp.o" "gcc" "src/CMakeFiles/bevr_net.dir/bevr/net/admission.cpp.o.d"
  "/root/repo/src/bevr/net/network_sim.cpp" "src/CMakeFiles/bevr_net.dir/bevr/net/network_sim.cpp.o" "gcc" "src/CMakeFiles/bevr_net.dir/bevr/net/network_sim.cpp.o.d"
  "/root/repo/src/bevr/net/packet_link.cpp" "src/CMakeFiles/bevr_net.dir/bevr/net/packet_link.cpp.o" "gcc" "src/CMakeFiles/bevr_net.dir/bevr/net/packet_link.cpp.o.d"
  "/root/repo/src/bevr/net/packet_sched.cpp" "src/CMakeFiles/bevr_net.dir/bevr/net/packet_sched.cpp.o" "gcc" "src/CMakeFiles/bevr_net.dir/bevr/net/packet_sched.cpp.o.d"
  "/root/repo/src/bevr/net/rsvp.cpp" "src/CMakeFiles/bevr_net.dir/bevr/net/rsvp.cpp.o" "gcc" "src/CMakeFiles/bevr_net.dir/bevr/net/rsvp.cpp.o.d"
  "/root/repo/src/bevr/net/scheduler.cpp" "src/CMakeFiles/bevr_net.dir/bevr/net/scheduler.cpp.o" "gcc" "src/CMakeFiles/bevr_net.dir/bevr/net/scheduler.cpp.o.d"
  "/root/repo/src/bevr/net/token_bucket.cpp" "src/CMakeFiles/bevr_net.dir/bevr/net/token_bucket.cpp.o" "gcc" "src/CMakeFiles/bevr_net.dir/bevr/net/token_bucket.cpp.o.d"
  "/root/repo/src/bevr/net/topology.cpp" "src/CMakeFiles/bevr_net.dir/bevr/net/topology.cpp.o" "gcc" "src/CMakeFiles/bevr_net.dir/bevr/net/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bevr_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_utility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_dist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
