file(REMOVE_RECURSE
  "libbevr_sim.a"
)
