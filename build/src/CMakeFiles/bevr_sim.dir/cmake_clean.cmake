file(REMOVE_RECURSE
  "CMakeFiles/bevr_sim.dir/bevr/sim/arrival.cpp.o"
  "CMakeFiles/bevr_sim.dir/bevr/sim/arrival.cpp.o.d"
  "CMakeFiles/bevr_sim.dir/bevr/sim/link.cpp.o"
  "CMakeFiles/bevr_sim.dir/bevr/sim/link.cpp.o.d"
  "CMakeFiles/bevr_sim.dir/bevr/sim/metrics.cpp.o"
  "CMakeFiles/bevr_sim.dir/bevr/sim/metrics.cpp.o.d"
  "CMakeFiles/bevr_sim.dir/bevr/sim/simulator.cpp.o"
  "CMakeFiles/bevr_sim.dir/bevr/sim/simulator.cpp.o.d"
  "libbevr_sim.a"
  "libbevr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bevr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
