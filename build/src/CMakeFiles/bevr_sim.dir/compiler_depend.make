# Empty compiler generated dependencies file for bevr_sim.
# This may be replaced when dependencies are built.
