
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bevr/sim/arrival.cpp" "src/CMakeFiles/bevr_sim.dir/bevr/sim/arrival.cpp.o" "gcc" "src/CMakeFiles/bevr_sim.dir/bevr/sim/arrival.cpp.o.d"
  "/root/repo/src/bevr/sim/link.cpp" "src/CMakeFiles/bevr_sim.dir/bevr/sim/link.cpp.o" "gcc" "src/CMakeFiles/bevr_sim.dir/bevr/sim/link.cpp.o.d"
  "/root/repo/src/bevr/sim/metrics.cpp" "src/CMakeFiles/bevr_sim.dir/bevr/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/bevr_sim.dir/bevr/sim/metrics.cpp.o.d"
  "/root/repo/src/bevr/sim/simulator.cpp" "src/CMakeFiles/bevr_sim.dir/bevr/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/bevr_sim.dir/bevr/sim/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bevr_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_utility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
