file(REMOVE_RECURSE
  "libbevr_core.a"
)
