file(REMOVE_RECURSE
  "CMakeFiles/bevr_core.dir/bevr/core/asymptotics.cpp.o"
  "CMakeFiles/bevr_core.dir/bevr/core/asymptotics.cpp.o.d"
  "CMakeFiles/bevr_core.dir/bevr/core/continuum.cpp.o"
  "CMakeFiles/bevr_core.dir/bevr/core/continuum.cpp.o.d"
  "CMakeFiles/bevr_core.dir/bevr/core/fixed_load.cpp.o"
  "CMakeFiles/bevr_core.dir/bevr/core/fixed_load.cpp.o.d"
  "CMakeFiles/bevr_core.dir/bevr/core/retry.cpp.o"
  "CMakeFiles/bevr_core.dir/bevr/core/retry.cpp.o.d"
  "CMakeFiles/bevr_core.dir/bevr/core/risk_averse.cpp.o"
  "CMakeFiles/bevr_core.dir/bevr/core/risk_averse.cpp.o.d"
  "CMakeFiles/bevr_core.dir/bevr/core/sampling.cpp.o"
  "CMakeFiles/bevr_core.dir/bevr/core/sampling.cpp.o.d"
  "CMakeFiles/bevr_core.dir/bevr/core/variable_load.cpp.o"
  "CMakeFiles/bevr_core.dir/bevr/core/variable_load.cpp.o.d"
  "CMakeFiles/bevr_core.dir/bevr/core/welfare.cpp.o"
  "CMakeFiles/bevr_core.dir/bevr/core/welfare.cpp.o.d"
  "libbevr_core.a"
  "libbevr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bevr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
