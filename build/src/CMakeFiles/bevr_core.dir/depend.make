# Empty dependencies file for bevr_core.
# This may be replaced when dependencies are built.
