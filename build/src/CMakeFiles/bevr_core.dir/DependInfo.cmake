
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bevr/core/asymptotics.cpp" "src/CMakeFiles/bevr_core.dir/bevr/core/asymptotics.cpp.o" "gcc" "src/CMakeFiles/bevr_core.dir/bevr/core/asymptotics.cpp.o.d"
  "/root/repo/src/bevr/core/continuum.cpp" "src/CMakeFiles/bevr_core.dir/bevr/core/continuum.cpp.o" "gcc" "src/CMakeFiles/bevr_core.dir/bevr/core/continuum.cpp.o.d"
  "/root/repo/src/bevr/core/fixed_load.cpp" "src/CMakeFiles/bevr_core.dir/bevr/core/fixed_load.cpp.o" "gcc" "src/CMakeFiles/bevr_core.dir/bevr/core/fixed_load.cpp.o.d"
  "/root/repo/src/bevr/core/retry.cpp" "src/CMakeFiles/bevr_core.dir/bevr/core/retry.cpp.o" "gcc" "src/CMakeFiles/bevr_core.dir/bevr/core/retry.cpp.o.d"
  "/root/repo/src/bevr/core/risk_averse.cpp" "src/CMakeFiles/bevr_core.dir/bevr/core/risk_averse.cpp.o" "gcc" "src/CMakeFiles/bevr_core.dir/bevr/core/risk_averse.cpp.o.d"
  "/root/repo/src/bevr/core/sampling.cpp" "src/CMakeFiles/bevr_core.dir/bevr/core/sampling.cpp.o" "gcc" "src/CMakeFiles/bevr_core.dir/bevr/core/sampling.cpp.o.d"
  "/root/repo/src/bevr/core/variable_load.cpp" "src/CMakeFiles/bevr_core.dir/bevr/core/variable_load.cpp.o" "gcc" "src/CMakeFiles/bevr_core.dir/bevr/core/variable_load.cpp.o.d"
  "/root/repo/src/bevr/core/welfare.cpp" "src/CMakeFiles/bevr_core.dir/bevr/core/welfare.cpp.o" "gcc" "src/CMakeFiles/bevr_core.dir/bevr/core/welfare.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bevr_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_utility.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
