file(REMOVE_RECURSE
  "libbevr_numerics.a"
)
