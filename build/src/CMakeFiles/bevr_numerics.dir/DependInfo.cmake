
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bevr/numerics/erlang.cpp" "src/CMakeFiles/bevr_numerics.dir/bevr/numerics/erlang.cpp.o" "gcc" "src/CMakeFiles/bevr_numerics.dir/bevr/numerics/erlang.cpp.o.d"
  "/root/repo/src/bevr/numerics/lambert_w.cpp" "src/CMakeFiles/bevr_numerics.dir/bevr/numerics/lambert_w.cpp.o" "gcc" "src/CMakeFiles/bevr_numerics.dir/bevr/numerics/lambert_w.cpp.o.d"
  "/root/repo/src/bevr/numerics/optimize.cpp" "src/CMakeFiles/bevr_numerics.dir/bevr/numerics/optimize.cpp.o" "gcc" "src/CMakeFiles/bevr_numerics.dir/bevr/numerics/optimize.cpp.o.d"
  "/root/repo/src/bevr/numerics/quadrature.cpp" "src/CMakeFiles/bevr_numerics.dir/bevr/numerics/quadrature.cpp.o" "gcc" "src/CMakeFiles/bevr_numerics.dir/bevr/numerics/quadrature.cpp.o.d"
  "/root/repo/src/bevr/numerics/roots.cpp" "src/CMakeFiles/bevr_numerics.dir/bevr/numerics/roots.cpp.o" "gcc" "src/CMakeFiles/bevr_numerics.dir/bevr/numerics/roots.cpp.o.d"
  "/root/repo/src/bevr/numerics/series.cpp" "src/CMakeFiles/bevr_numerics.dir/bevr/numerics/series.cpp.o" "gcc" "src/CMakeFiles/bevr_numerics.dir/bevr/numerics/series.cpp.o.d"
  "/root/repo/src/bevr/numerics/special.cpp" "src/CMakeFiles/bevr_numerics.dir/bevr/numerics/special.cpp.o" "gcc" "src/CMakeFiles/bevr_numerics.dir/bevr/numerics/special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
