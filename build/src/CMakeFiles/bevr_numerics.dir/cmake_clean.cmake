file(REMOVE_RECURSE
  "CMakeFiles/bevr_numerics.dir/bevr/numerics/erlang.cpp.o"
  "CMakeFiles/bevr_numerics.dir/bevr/numerics/erlang.cpp.o.d"
  "CMakeFiles/bevr_numerics.dir/bevr/numerics/lambert_w.cpp.o"
  "CMakeFiles/bevr_numerics.dir/bevr/numerics/lambert_w.cpp.o.d"
  "CMakeFiles/bevr_numerics.dir/bevr/numerics/optimize.cpp.o"
  "CMakeFiles/bevr_numerics.dir/bevr/numerics/optimize.cpp.o.d"
  "CMakeFiles/bevr_numerics.dir/bevr/numerics/quadrature.cpp.o"
  "CMakeFiles/bevr_numerics.dir/bevr/numerics/quadrature.cpp.o.d"
  "CMakeFiles/bevr_numerics.dir/bevr/numerics/roots.cpp.o"
  "CMakeFiles/bevr_numerics.dir/bevr/numerics/roots.cpp.o.d"
  "CMakeFiles/bevr_numerics.dir/bevr/numerics/series.cpp.o"
  "CMakeFiles/bevr_numerics.dir/bevr/numerics/series.cpp.o.d"
  "CMakeFiles/bevr_numerics.dir/bevr/numerics/special.cpp.o"
  "CMakeFiles/bevr_numerics.dir/bevr/numerics/special.cpp.o.d"
  "libbevr_numerics.a"
  "libbevr_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bevr_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
