# Empty compiler generated dependencies file for bevr_numerics.
# This may be replaced when dependencies are built.
