file(REMOVE_RECURSE
  "libbevr_utility.a"
)
