# Empty dependencies file for bevr_utility.
# This may be replaced when dependencies are built.
