file(REMOVE_RECURSE
  "CMakeFiles/bevr_utility.dir/bevr/utility/mixture.cpp.o"
  "CMakeFiles/bevr_utility.dir/bevr/utility/mixture.cpp.o.d"
  "CMakeFiles/bevr_utility.dir/bevr/utility/utility.cpp.o"
  "CMakeFiles/bevr_utility.dir/bevr/utility/utility.cpp.o.d"
  "libbevr_utility.a"
  "libbevr_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bevr_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
