
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bevr/dist/algebraic.cpp" "src/CMakeFiles/bevr_dist.dir/bevr/dist/algebraic.cpp.o" "gcc" "src/CMakeFiles/bevr_dist.dir/bevr/dist/algebraic.cpp.o.d"
  "/root/repo/src/bevr/dist/discrete.cpp" "src/CMakeFiles/bevr_dist.dir/bevr/dist/discrete.cpp.o" "gcc" "src/CMakeFiles/bevr_dist.dir/bevr/dist/discrete.cpp.o.d"
  "/root/repo/src/bevr/dist/exponential.cpp" "src/CMakeFiles/bevr_dist.dir/bevr/dist/exponential.cpp.o" "gcc" "src/CMakeFiles/bevr_dist.dir/bevr/dist/exponential.cpp.o.d"
  "/root/repo/src/bevr/dist/exponential_density.cpp" "src/CMakeFiles/bevr_dist.dir/bevr/dist/exponential_density.cpp.o" "gcc" "src/CMakeFiles/bevr_dist.dir/bevr/dist/exponential_density.cpp.o.d"
  "/root/repo/src/bevr/dist/mixture_load.cpp" "src/CMakeFiles/bevr_dist.dir/bevr/dist/mixture_load.cpp.o" "gcc" "src/CMakeFiles/bevr_dist.dir/bevr/dist/mixture_load.cpp.o.d"
  "/root/repo/src/bevr/dist/pareto_density.cpp" "src/CMakeFiles/bevr_dist.dir/bevr/dist/pareto_density.cpp.o" "gcc" "src/CMakeFiles/bevr_dist.dir/bevr/dist/pareto_density.cpp.o.d"
  "/root/repo/src/bevr/dist/poisson.cpp" "src/CMakeFiles/bevr_dist.dir/bevr/dist/poisson.cpp.o" "gcc" "src/CMakeFiles/bevr_dist.dir/bevr/dist/poisson.cpp.o.d"
  "/root/repo/src/bevr/dist/sampler.cpp" "src/CMakeFiles/bevr_dist.dir/bevr/dist/sampler.cpp.o" "gcc" "src/CMakeFiles/bevr_dist.dir/bevr/dist/sampler.cpp.o.d"
  "/root/repo/src/bevr/dist/size_biased.cpp" "src/CMakeFiles/bevr_dist.dir/bevr/dist/size_biased.cpp.o" "gcc" "src/CMakeFiles/bevr_dist.dir/bevr/dist/size_biased.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bevr_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
