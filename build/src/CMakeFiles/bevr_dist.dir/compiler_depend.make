# Empty compiler generated dependencies file for bevr_dist.
# This may be replaced when dependencies are built.
