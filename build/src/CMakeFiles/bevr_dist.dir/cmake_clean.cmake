file(REMOVE_RECURSE
  "CMakeFiles/bevr_dist.dir/bevr/dist/algebraic.cpp.o"
  "CMakeFiles/bevr_dist.dir/bevr/dist/algebraic.cpp.o.d"
  "CMakeFiles/bevr_dist.dir/bevr/dist/discrete.cpp.o"
  "CMakeFiles/bevr_dist.dir/bevr/dist/discrete.cpp.o.d"
  "CMakeFiles/bevr_dist.dir/bevr/dist/exponential.cpp.o"
  "CMakeFiles/bevr_dist.dir/bevr/dist/exponential.cpp.o.d"
  "CMakeFiles/bevr_dist.dir/bevr/dist/exponential_density.cpp.o"
  "CMakeFiles/bevr_dist.dir/bevr/dist/exponential_density.cpp.o.d"
  "CMakeFiles/bevr_dist.dir/bevr/dist/mixture_load.cpp.o"
  "CMakeFiles/bevr_dist.dir/bevr/dist/mixture_load.cpp.o.d"
  "CMakeFiles/bevr_dist.dir/bevr/dist/pareto_density.cpp.o"
  "CMakeFiles/bevr_dist.dir/bevr/dist/pareto_density.cpp.o.d"
  "CMakeFiles/bevr_dist.dir/bevr/dist/poisson.cpp.o"
  "CMakeFiles/bevr_dist.dir/bevr/dist/poisson.cpp.o.d"
  "CMakeFiles/bevr_dist.dir/bevr/dist/sampler.cpp.o"
  "CMakeFiles/bevr_dist.dir/bevr/dist/sampler.cpp.o.d"
  "CMakeFiles/bevr_dist.dir/bevr/dist/size_biased.cpp.o"
  "CMakeFiles/bevr_dist.dir/bevr/dist/size_biased.cpp.o.d"
  "libbevr_dist.a"
  "libbevr_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bevr_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
