file(REMOVE_RECURSE
  "libbevr_dist.a"
)
