file(REMOVE_RECURSE
  "CMakeFiles/bench_bounds.dir/bench_bounds.cpp.o"
  "CMakeFiles/bench_bounds.dir/bench_bounds.cpp.o.d"
  "bench_bounds"
  "bench_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
