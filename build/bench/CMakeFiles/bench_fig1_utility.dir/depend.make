# Empty dependencies file for bench_fig1_utility.
# This may be replaced when dependencies are built.
