file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_utility.dir/bench_fig1_utility.cpp.o"
  "CMakeFiles/bench_fig1_utility.dir/bench_fig1_utility.cpp.o.d"
  "bench_fig1_utility"
  "bench_fig1_utility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_utility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
