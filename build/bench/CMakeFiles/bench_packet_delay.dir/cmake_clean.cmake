file(REMOVE_RECURSE
  "CMakeFiles/bench_packet_delay.dir/bench_packet_delay.cpp.o"
  "CMakeFiles/bench_packet_delay.dir/bench_packet_delay.cpp.o.d"
  "bench_packet_delay"
  "bench_packet_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_packet_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
