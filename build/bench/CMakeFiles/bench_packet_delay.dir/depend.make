# Empty dependencies file for bench_packet_delay.
# This may be replaced when dependencies are built.
