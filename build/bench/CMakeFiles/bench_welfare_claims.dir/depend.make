# Empty dependencies file for bench_welfare_claims.
# This may be replaced when dependencies are built.
