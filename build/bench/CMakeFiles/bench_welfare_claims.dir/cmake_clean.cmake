file(REMOVE_RECURSE
  "CMakeFiles/bench_welfare_claims.dir/bench_welfare_claims.cpp.o"
  "CMakeFiles/bench_welfare_claims.dir/bench_welfare_claims.cpp.o.d"
  "bench_welfare_claims"
  "bench_welfare_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_welfare_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
