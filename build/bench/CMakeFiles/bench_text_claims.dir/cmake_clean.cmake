file(REMOVE_RECURSE
  "CMakeFiles/bench_text_claims.dir/bench_text_claims.cpp.o"
  "CMakeFiles/bench_text_claims.dir/bench_text_claims.cpp.o.d"
  "bench_text_claims"
  "bench_text_claims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_text_claims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
