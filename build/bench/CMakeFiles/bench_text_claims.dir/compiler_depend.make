# Empty compiler generated dependencies file for bench_text_claims.
# This may be replaced when dependencies are built.
