file(REMOVE_RECURSE
  "CMakeFiles/bench_continuum.dir/bench_continuum.cpp.o"
  "CMakeFiles/bench_continuum.dir/bench_continuum.cpp.o.d"
  "bench_continuum"
  "bench_continuum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_continuum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
