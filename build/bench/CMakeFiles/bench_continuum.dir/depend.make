# Empty dependencies file for bench_continuum.
# This may be replaced when dependencies are built.
