file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_algebraic.dir/bench_fig4_algebraic.cpp.o"
  "CMakeFiles/bench_fig4_algebraic.dir/bench_fig4_algebraic.cpp.o.d"
  "bench_fig4_algebraic"
  "bench_fig4_algebraic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_algebraic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
