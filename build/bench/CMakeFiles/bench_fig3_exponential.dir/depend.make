# Empty dependencies file for bench_fig3_exponential.
# This may be replaced when dependencies are built.
