file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_exponential.dir/bench_fig3_exponential.cpp.o"
  "CMakeFiles/bench_fig3_exponential.dir/bench_fig3_exponential.cpp.o.d"
  "bench_fig3_exponential"
  "bench_fig3_exponential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_exponential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
