# Empty dependencies file for multi_link_study.
# This may be replaced when dependencies are built.
