file(REMOVE_RECURSE
  "CMakeFiles/multi_link_study.dir/multi_link_study.cpp.o"
  "CMakeFiles/multi_link_study.dir/multi_link_study.cpp.o.d"
  "multi_link_study"
  "multi_link_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_link_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
