file(REMOVE_RECURSE
  "CMakeFiles/admission_control_sim.dir/admission_control_sim.cpp.o"
  "CMakeFiles/admission_control_sim.dir/admission_control_sim.cpp.o.d"
  "admission_control_sim"
  "admission_control_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admission_control_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
