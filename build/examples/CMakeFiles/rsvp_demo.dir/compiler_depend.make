# Empty compiler generated dependencies file for rsvp_demo.
# This may be replaced when dependencies are built.
