file(REMOVE_RECURSE
  "CMakeFiles/rsvp_demo.dir/rsvp_demo.cpp.o"
  "CMakeFiles/rsvp_demo.dir/rsvp_demo.cpp.o.d"
  "rsvp_demo"
  "rsvp_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsvp_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
