# Empty compiler generated dependencies file for provisioning_advisor.
# This may be replaced when dependencies are built.
