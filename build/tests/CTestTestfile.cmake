# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bevr_numerics_tests[1]_include.cmake")
include("/root/repo/build/tests/bevr_dist_tests[1]_include.cmake")
include("/root/repo/build/tests/bevr_utility_tests[1]_include.cmake")
include("/root/repo/build/tests/bevr_core_tests[1]_include.cmake")
include("/root/repo/build/tests/bevr_sim_tests[1]_include.cmake")
include("/root/repo/build/tests/bevr_net_tests[1]_include.cmake")
include("/root/repo/build/tests/bevr_integration_tests[1]_include.cmake")
