
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dist/test_algebraic.cpp" "tests/CMakeFiles/bevr_dist_tests.dir/dist/test_algebraic.cpp.o" "gcc" "tests/CMakeFiles/bevr_dist_tests.dir/dist/test_algebraic.cpp.o.d"
  "/root/repo/tests/dist/test_continuum_densities.cpp" "tests/CMakeFiles/bevr_dist_tests.dir/dist/test_continuum_densities.cpp.o" "gcc" "tests/CMakeFiles/bevr_dist_tests.dir/dist/test_continuum_densities.cpp.o.d"
  "/root/repo/tests/dist/test_exponential.cpp" "tests/CMakeFiles/bevr_dist_tests.dir/dist/test_exponential.cpp.o" "gcc" "tests/CMakeFiles/bevr_dist_tests.dir/dist/test_exponential.cpp.o.d"
  "/root/repo/tests/dist/test_mixture_load.cpp" "tests/CMakeFiles/bevr_dist_tests.dir/dist/test_mixture_load.cpp.o" "gcc" "tests/CMakeFiles/bevr_dist_tests.dir/dist/test_mixture_load.cpp.o.d"
  "/root/repo/tests/dist/test_poisson.cpp" "tests/CMakeFiles/bevr_dist_tests.dir/dist/test_poisson.cpp.o" "gcc" "tests/CMakeFiles/bevr_dist_tests.dir/dist/test_poisson.cpp.o.d"
  "/root/repo/tests/dist/test_sampler.cpp" "tests/CMakeFiles/bevr_dist_tests.dir/dist/test_sampler.cpp.o" "gcc" "tests/CMakeFiles/bevr_dist_tests.dir/dist/test_sampler.cpp.o.d"
  "/root/repo/tests/dist/test_size_biased.cpp" "tests/CMakeFiles/bevr_dist_tests.dir/dist/test_size_biased.cpp.o" "gcc" "tests/CMakeFiles/bevr_dist_tests.dir/dist/test_size_biased.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bevr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_utility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
