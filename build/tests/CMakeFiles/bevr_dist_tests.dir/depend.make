# Empty dependencies file for bevr_dist_tests.
# This may be replaced when dependencies are built.
