file(REMOVE_RECURSE
  "CMakeFiles/bevr_dist_tests.dir/dist/test_algebraic.cpp.o"
  "CMakeFiles/bevr_dist_tests.dir/dist/test_algebraic.cpp.o.d"
  "CMakeFiles/bevr_dist_tests.dir/dist/test_continuum_densities.cpp.o"
  "CMakeFiles/bevr_dist_tests.dir/dist/test_continuum_densities.cpp.o.d"
  "CMakeFiles/bevr_dist_tests.dir/dist/test_exponential.cpp.o"
  "CMakeFiles/bevr_dist_tests.dir/dist/test_exponential.cpp.o.d"
  "CMakeFiles/bevr_dist_tests.dir/dist/test_mixture_load.cpp.o"
  "CMakeFiles/bevr_dist_tests.dir/dist/test_mixture_load.cpp.o.d"
  "CMakeFiles/bevr_dist_tests.dir/dist/test_poisson.cpp.o"
  "CMakeFiles/bevr_dist_tests.dir/dist/test_poisson.cpp.o.d"
  "CMakeFiles/bevr_dist_tests.dir/dist/test_sampler.cpp.o"
  "CMakeFiles/bevr_dist_tests.dir/dist/test_sampler.cpp.o.d"
  "CMakeFiles/bevr_dist_tests.dir/dist/test_size_biased.cpp.o"
  "CMakeFiles/bevr_dist_tests.dir/dist/test_size_biased.cpp.o.d"
  "bevr_dist_tests"
  "bevr_dist_tests.pdb"
  "bevr_dist_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bevr_dist_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
