# Empty dependencies file for bevr_core_tests.
# This may be replaced when dependencies are built.
