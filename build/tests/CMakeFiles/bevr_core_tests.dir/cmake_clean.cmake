file(REMOVE_RECURSE
  "CMakeFiles/bevr_core_tests.dir/core/test_asymptotics.cpp.o"
  "CMakeFiles/bevr_core_tests.dir/core/test_asymptotics.cpp.o.d"
  "CMakeFiles/bevr_core_tests.dir/core/test_continuum_model.cpp.o"
  "CMakeFiles/bevr_core_tests.dir/core/test_continuum_model.cpp.o.d"
  "CMakeFiles/bevr_core_tests.dir/core/test_extensions.cpp.o"
  "CMakeFiles/bevr_core_tests.dir/core/test_extensions.cpp.o.d"
  "CMakeFiles/bevr_core_tests.dir/core/test_fixed_load.cpp.o"
  "CMakeFiles/bevr_core_tests.dir/core/test_fixed_load.cpp.o.d"
  "CMakeFiles/bevr_core_tests.dir/core/test_paper_claims.cpp.o"
  "CMakeFiles/bevr_core_tests.dir/core/test_paper_claims.cpp.o.d"
  "CMakeFiles/bevr_core_tests.dir/core/test_retry_model.cpp.o"
  "CMakeFiles/bevr_core_tests.dir/core/test_retry_model.cpp.o.d"
  "CMakeFiles/bevr_core_tests.dir/core/test_sampling_model.cpp.o"
  "CMakeFiles/bevr_core_tests.dir/core/test_sampling_model.cpp.o.d"
  "CMakeFiles/bevr_core_tests.dir/core/test_variable_load.cpp.o"
  "CMakeFiles/bevr_core_tests.dir/core/test_variable_load.cpp.o.d"
  "CMakeFiles/bevr_core_tests.dir/core/test_welfare.cpp.o"
  "CMakeFiles/bevr_core_tests.dir/core/test_welfare.cpp.o.d"
  "CMakeFiles/bevr_core_tests.dir/core/test_welfare_properties.cpp.o"
  "CMakeFiles/bevr_core_tests.dir/core/test_welfare_properties.cpp.o.d"
  "bevr_core_tests"
  "bevr_core_tests.pdb"
  "bevr_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bevr_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
