
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_asymptotics.cpp" "tests/CMakeFiles/bevr_core_tests.dir/core/test_asymptotics.cpp.o" "gcc" "tests/CMakeFiles/bevr_core_tests.dir/core/test_asymptotics.cpp.o.d"
  "/root/repo/tests/core/test_continuum_model.cpp" "tests/CMakeFiles/bevr_core_tests.dir/core/test_continuum_model.cpp.o" "gcc" "tests/CMakeFiles/bevr_core_tests.dir/core/test_continuum_model.cpp.o.d"
  "/root/repo/tests/core/test_extensions.cpp" "tests/CMakeFiles/bevr_core_tests.dir/core/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/bevr_core_tests.dir/core/test_extensions.cpp.o.d"
  "/root/repo/tests/core/test_fixed_load.cpp" "tests/CMakeFiles/bevr_core_tests.dir/core/test_fixed_load.cpp.o" "gcc" "tests/CMakeFiles/bevr_core_tests.dir/core/test_fixed_load.cpp.o.d"
  "/root/repo/tests/core/test_paper_claims.cpp" "tests/CMakeFiles/bevr_core_tests.dir/core/test_paper_claims.cpp.o" "gcc" "tests/CMakeFiles/bevr_core_tests.dir/core/test_paper_claims.cpp.o.d"
  "/root/repo/tests/core/test_retry_model.cpp" "tests/CMakeFiles/bevr_core_tests.dir/core/test_retry_model.cpp.o" "gcc" "tests/CMakeFiles/bevr_core_tests.dir/core/test_retry_model.cpp.o.d"
  "/root/repo/tests/core/test_sampling_model.cpp" "tests/CMakeFiles/bevr_core_tests.dir/core/test_sampling_model.cpp.o" "gcc" "tests/CMakeFiles/bevr_core_tests.dir/core/test_sampling_model.cpp.o.d"
  "/root/repo/tests/core/test_variable_load.cpp" "tests/CMakeFiles/bevr_core_tests.dir/core/test_variable_load.cpp.o" "gcc" "tests/CMakeFiles/bevr_core_tests.dir/core/test_variable_load.cpp.o.d"
  "/root/repo/tests/core/test_welfare.cpp" "tests/CMakeFiles/bevr_core_tests.dir/core/test_welfare.cpp.o" "gcc" "tests/CMakeFiles/bevr_core_tests.dir/core/test_welfare.cpp.o.d"
  "/root/repo/tests/core/test_welfare_properties.cpp" "tests/CMakeFiles/bevr_core_tests.dir/core/test_welfare_properties.cpp.o" "gcc" "tests/CMakeFiles/bevr_core_tests.dir/core/test_welfare_properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bevr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_utility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
