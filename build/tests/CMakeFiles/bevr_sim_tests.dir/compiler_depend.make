# Empty compiler generated dependencies file for bevr_sim_tests.
# This may be replaced when dependencies are built.
