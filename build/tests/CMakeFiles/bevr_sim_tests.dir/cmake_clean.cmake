file(REMOVE_RECURSE
  "CMakeFiles/bevr_sim_tests.dir/sim/test_arrival.cpp.o"
  "CMakeFiles/bevr_sim_tests.dir/sim/test_arrival.cpp.o.d"
  "CMakeFiles/bevr_sim_tests.dir/sim/test_event_queue.cpp.o"
  "CMakeFiles/bevr_sim_tests.dir/sim/test_event_queue.cpp.o.d"
  "CMakeFiles/bevr_sim_tests.dir/sim/test_metrics.cpp.o"
  "CMakeFiles/bevr_sim_tests.dir/sim/test_metrics.cpp.o.d"
  "CMakeFiles/bevr_sim_tests.dir/sim/test_simulator.cpp.o"
  "CMakeFiles/bevr_sim_tests.dir/sim/test_simulator.cpp.o.d"
  "CMakeFiles/bevr_sim_tests.dir/sim/test_simulator_properties.cpp.o"
  "CMakeFiles/bevr_sim_tests.dir/sim/test_simulator_properties.cpp.o.d"
  "bevr_sim_tests"
  "bevr_sim_tests.pdb"
  "bevr_sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bevr_sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
