file(REMOVE_RECURSE
  "CMakeFiles/bevr_net_tests.dir/net/test_admission.cpp.o"
  "CMakeFiles/bevr_net_tests.dir/net/test_admission.cpp.o.d"
  "CMakeFiles/bevr_net_tests.dir/net/test_network_sim.cpp.o"
  "CMakeFiles/bevr_net_tests.dir/net/test_network_sim.cpp.o.d"
  "CMakeFiles/bevr_net_tests.dir/net/test_packet_sched.cpp.o"
  "CMakeFiles/bevr_net_tests.dir/net/test_packet_sched.cpp.o.d"
  "CMakeFiles/bevr_net_tests.dir/net/test_rsvp.cpp.o"
  "CMakeFiles/bevr_net_tests.dir/net/test_rsvp.cpp.o.d"
  "CMakeFiles/bevr_net_tests.dir/net/test_scheduler.cpp.o"
  "CMakeFiles/bevr_net_tests.dir/net/test_scheduler.cpp.o.d"
  "CMakeFiles/bevr_net_tests.dir/net/test_token_bucket.cpp.o"
  "CMakeFiles/bevr_net_tests.dir/net/test_token_bucket.cpp.o.d"
  "CMakeFiles/bevr_net_tests.dir/net/test_topology.cpp.o"
  "CMakeFiles/bevr_net_tests.dir/net/test_topology.cpp.o.d"
  "bevr_net_tests"
  "bevr_net_tests.pdb"
  "bevr_net_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bevr_net_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
