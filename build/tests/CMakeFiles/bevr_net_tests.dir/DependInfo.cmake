
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/test_admission.cpp" "tests/CMakeFiles/bevr_net_tests.dir/net/test_admission.cpp.o" "gcc" "tests/CMakeFiles/bevr_net_tests.dir/net/test_admission.cpp.o.d"
  "/root/repo/tests/net/test_network_sim.cpp" "tests/CMakeFiles/bevr_net_tests.dir/net/test_network_sim.cpp.o" "gcc" "tests/CMakeFiles/bevr_net_tests.dir/net/test_network_sim.cpp.o.d"
  "/root/repo/tests/net/test_packet_sched.cpp" "tests/CMakeFiles/bevr_net_tests.dir/net/test_packet_sched.cpp.o" "gcc" "tests/CMakeFiles/bevr_net_tests.dir/net/test_packet_sched.cpp.o.d"
  "/root/repo/tests/net/test_rsvp.cpp" "tests/CMakeFiles/bevr_net_tests.dir/net/test_rsvp.cpp.o" "gcc" "tests/CMakeFiles/bevr_net_tests.dir/net/test_rsvp.cpp.o.d"
  "/root/repo/tests/net/test_scheduler.cpp" "tests/CMakeFiles/bevr_net_tests.dir/net/test_scheduler.cpp.o" "gcc" "tests/CMakeFiles/bevr_net_tests.dir/net/test_scheduler.cpp.o.d"
  "/root/repo/tests/net/test_token_bucket.cpp" "tests/CMakeFiles/bevr_net_tests.dir/net/test_token_bucket.cpp.o" "gcc" "tests/CMakeFiles/bevr_net_tests.dir/net/test_token_bucket.cpp.o.d"
  "/root/repo/tests/net/test_topology.cpp" "tests/CMakeFiles/bevr_net_tests.dir/net/test_topology.cpp.o" "gcc" "tests/CMakeFiles/bevr_net_tests.dir/net/test_topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bevr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_utility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
