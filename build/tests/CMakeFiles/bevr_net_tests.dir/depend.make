# Empty dependencies file for bevr_net_tests.
# This may be replaced when dependencies are built.
