file(REMOVE_RECURSE
  "CMakeFiles/bevr_integration_tests.dir/integration/test_discrete_vs_continuum.cpp.o"
  "CMakeFiles/bevr_integration_tests.dir/integration/test_discrete_vs_continuum.cpp.o.d"
  "CMakeFiles/bevr_integration_tests.dir/integration/test_net_substrate.cpp.o"
  "CMakeFiles/bevr_integration_tests.dir/integration/test_net_substrate.cpp.o.d"
  "CMakeFiles/bevr_integration_tests.dir/integration/test_regression_values.cpp.o"
  "CMakeFiles/bevr_integration_tests.dir/integration/test_regression_values.cpp.o.d"
  "CMakeFiles/bevr_integration_tests.dir/integration/test_sim_vs_model.cpp.o"
  "CMakeFiles/bevr_integration_tests.dir/integration/test_sim_vs_model.cpp.o.d"
  "CMakeFiles/bevr_integration_tests.dir/integration/test_umbrella.cpp.o"
  "CMakeFiles/bevr_integration_tests.dir/integration/test_umbrella.cpp.o.d"
  "bevr_integration_tests"
  "bevr_integration_tests.pdb"
  "bevr_integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bevr_integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
