# Empty compiler generated dependencies file for bevr_integration_tests.
# This may be replaced when dependencies are built.
