# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bevr_integration_tests.
