
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/numerics/test_erlang.cpp" "tests/CMakeFiles/bevr_numerics_tests.dir/numerics/test_erlang.cpp.o" "gcc" "tests/CMakeFiles/bevr_numerics_tests.dir/numerics/test_erlang.cpp.o.d"
  "/root/repo/tests/numerics/test_kahan.cpp" "tests/CMakeFiles/bevr_numerics_tests.dir/numerics/test_kahan.cpp.o" "gcc" "tests/CMakeFiles/bevr_numerics_tests.dir/numerics/test_kahan.cpp.o.d"
  "/root/repo/tests/numerics/test_lambert_w.cpp" "tests/CMakeFiles/bevr_numerics_tests.dir/numerics/test_lambert_w.cpp.o" "gcc" "tests/CMakeFiles/bevr_numerics_tests.dir/numerics/test_lambert_w.cpp.o.d"
  "/root/repo/tests/numerics/test_optimize.cpp" "tests/CMakeFiles/bevr_numerics_tests.dir/numerics/test_optimize.cpp.o" "gcc" "tests/CMakeFiles/bevr_numerics_tests.dir/numerics/test_optimize.cpp.o.d"
  "/root/repo/tests/numerics/test_quadrature.cpp" "tests/CMakeFiles/bevr_numerics_tests.dir/numerics/test_quadrature.cpp.o" "gcc" "tests/CMakeFiles/bevr_numerics_tests.dir/numerics/test_quadrature.cpp.o.d"
  "/root/repo/tests/numerics/test_robustness.cpp" "tests/CMakeFiles/bevr_numerics_tests.dir/numerics/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/bevr_numerics_tests.dir/numerics/test_robustness.cpp.o.d"
  "/root/repo/tests/numerics/test_roots.cpp" "tests/CMakeFiles/bevr_numerics_tests.dir/numerics/test_roots.cpp.o" "gcc" "tests/CMakeFiles/bevr_numerics_tests.dir/numerics/test_roots.cpp.o.d"
  "/root/repo/tests/numerics/test_series.cpp" "tests/CMakeFiles/bevr_numerics_tests.dir/numerics/test_series.cpp.o" "gcc" "tests/CMakeFiles/bevr_numerics_tests.dir/numerics/test_series.cpp.o.d"
  "/root/repo/tests/numerics/test_special.cpp" "tests/CMakeFiles/bevr_numerics_tests.dir/numerics/test_special.cpp.o" "gcc" "tests/CMakeFiles/bevr_numerics_tests.dir/numerics/test_special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bevr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_dist.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_utility.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bevr_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
