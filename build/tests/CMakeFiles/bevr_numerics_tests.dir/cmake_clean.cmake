file(REMOVE_RECURSE
  "CMakeFiles/bevr_numerics_tests.dir/numerics/test_erlang.cpp.o"
  "CMakeFiles/bevr_numerics_tests.dir/numerics/test_erlang.cpp.o.d"
  "CMakeFiles/bevr_numerics_tests.dir/numerics/test_kahan.cpp.o"
  "CMakeFiles/bevr_numerics_tests.dir/numerics/test_kahan.cpp.o.d"
  "CMakeFiles/bevr_numerics_tests.dir/numerics/test_lambert_w.cpp.o"
  "CMakeFiles/bevr_numerics_tests.dir/numerics/test_lambert_w.cpp.o.d"
  "CMakeFiles/bevr_numerics_tests.dir/numerics/test_optimize.cpp.o"
  "CMakeFiles/bevr_numerics_tests.dir/numerics/test_optimize.cpp.o.d"
  "CMakeFiles/bevr_numerics_tests.dir/numerics/test_quadrature.cpp.o"
  "CMakeFiles/bevr_numerics_tests.dir/numerics/test_quadrature.cpp.o.d"
  "CMakeFiles/bevr_numerics_tests.dir/numerics/test_robustness.cpp.o"
  "CMakeFiles/bevr_numerics_tests.dir/numerics/test_robustness.cpp.o.d"
  "CMakeFiles/bevr_numerics_tests.dir/numerics/test_roots.cpp.o"
  "CMakeFiles/bevr_numerics_tests.dir/numerics/test_roots.cpp.o.d"
  "CMakeFiles/bevr_numerics_tests.dir/numerics/test_series.cpp.o"
  "CMakeFiles/bevr_numerics_tests.dir/numerics/test_series.cpp.o.d"
  "CMakeFiles/bevr_numerics_tests.dir/numerics/test_special.cpp.o"
  "CMakeFiles/bevr_numerics_tests.dir/numerics/test_special.cpp.o.d"
  "bevr_numerics_tests"
  "bevr_numerics_tests.pdb"
  "bevr_numerics_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bevr_numerics_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
