# Empty dependencies file for bevr_numerics_tests.
# This may be replaced when dependencies are built.
