file(REMOVE_RECURSE
  "CMakeFiles/bevr_utility_tests.dir/utility/test_mixture.cpp.o"
  "CMakeFiles/bevr_utility_tests.dir/utility/test_mixture.cpp.o.d"
  "CMakeFiles/bevr_utility_tests.dir/utility/test_utility.cpp.o"
  "CMakeFiles/bevr_utility_tests.dir/utility/test_utility.cpp.o.d"
  "bevr_utility_tests"
  "bevr_utility_tests.pdb"
  "bevr_utility_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bevr_utility_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
