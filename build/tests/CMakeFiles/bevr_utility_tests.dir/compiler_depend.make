# Empty compiler generated dependencies file for bevr_utility_tests.
# This may be replaced when dependencies are built.
