// Capacity planning: how much must a best-effort network overprovision
// to match reservations, as traffic forecasts vary? Sweeps the
// bandwidth gap Δ(C) for the three load families and both application
// classes — the paper's central planning quantity — and prints the
// overprovisioning factor (C+Δ)/C a network operator would budget.
//
// Headline: under Poisson forecasts overprovisioning is a rounding
// error past C ≈ 1.2·k̄; under heavy-tailed (algebraic) forecasts the
// required factor never decays — reservations' advantage survives
// arbitrarily cheap bandwidth.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bevr/core/variable_load.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"
#include "bevr/utility/utility.h"

int main() {
  using namespace bevr;
  struct Case {
    std::string name;
    std::shared_ptr<const dist::DiscreteLoad> load;
  };
  const std::vector<Case> cases = {
      {"poisson", std::make_shared<dist::PoissonLoad>(100.0)},
      {"exponential", std::make_shared<dist::ExponentialLoad>(
                          dist::ExponentialLoad::with_mean(100.0))},
      {"algebraic(z=3)", std::make_shared<dist::AlgebraicLoad>(
                             dist::AlgebraicLoad::with_mean(3.0, 100.0))},
  };
  const auto rigid = std::make_shared<utility::Rigid>(1.0);
  const auto adaptive = std::make_shared<utility::AdaptiveExp>();

  for (const auto& [util_name, utility] :
       {std::pair<std::string,
                  std::shared_ptr<const utility::UtilityFunction>>{
            "rigid", rigid},
        {"adaptive", adaptive}}) {
    std::printf("\nOverprovisioning needed, %s applications (kbar = 100):\n",
                util_name.c_str());
    std::printf("%10s", "C");
    for (const auto& c : cases) std::printf(" %18s", c.name.c_str());
    std::printf("\n");
    for (const double capacity : {100.0, 150.0, 200.0, 400.0, 800.0}) {
      std::printf("%10.0f", capacity);
      for (const auto& c : cases) {
        const core::VariableLoadModel model(c.load, utility);
        const double gap = model.bandwidth_gap(capacity);
        std::printf("     %6.1f (x%4.2f)", gap, (capacity + gap) / capacity);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nReading: 'x1.00' means best effort already matches reservations;\n"
      "the algebraic column's factor refuses to decay — the paper's case\n"
      "that the reservation debate hinges on future load tails.\n");
  return 0;
}
