// Multi-link reservation study: the paper analyses one link; this
// example runs the full signalling substrate over a dumbbell topology
// to show how its single-link conclusions compose. Two traffic pairs
// share a bottleneck; we sweep the bottleneck capacity and compare the
// measured per-pair blocking/utility with the single-link theory
// (Erlang-B for the aggregate), then demonstrate how a utilisation
// bound (the admission controller's safety margin) trades blocking
// against overload protection.
#include <cstdio>
#include <memory>

#include "bevr/net/network_sim.h"
#include "bevr/numerics/erlang.h"
#include "bevr/utility/utility.h"

int main() {
  using namespace bevr;

  // Dumbbell: a,b --- left ==bottleneck== right --- c,d (rebuilt per
  // run since the bottleneck capacity is immutable once added).
  const auto pi = std::make_shared<utility::AdaptiveExp>();
  net::NetworkExperimentConfig config;
  config.horizon = 4000.0;
  config.warmup = 200.0;
  config.seed = 42;

  std::printf("Two pairs (a->c, b->d), 50 flows/s each, unit reservations,\n");
  std::printf("sharing one bottleneck. Aggregate offered load: 100.\n\n");
  std::printf("%12s %12s %12s %12s %12s\n", "bottleneck", "blk_pair1",
              "blk_pair2", "erlang_b", "util_pair1");
  for (const double capacity : {80.0, 90.0, 100.0, 110.0, 130.0}) {
    auto run_topo = std::make_shared<net::Topology>();
    const auto ra = run_topo->add_node("a");
    const auto rb = run_topo->add_node("b");
    const auto rl = run_topo->add_node("left");
    const auto rr = run_topo->add_node("right");
    const auto rc = run_topo->add_node("c");
    const auto rd = run_topo->add_node("d");
    run_topo->add_link(ra, rl, 1e6);
    run_topo->add_link(rb, rl, 1e6);
    run_topo->add_link(rl, rr, capacity);
    run_topo->add_link(rr, rc, 1e6);
    run_topo->add_link(rr, rd, 1e6);
    const net::NetworkExperiment experiment(
        run_topo, std::make_shared<net::ParameterBasedAdmission>(1.0),
        {{ra, rc, 50.0, 1.0, 1.0}, {rb, rd, 50.0, 1.0, 1.0}}, pi, config);
    const auto report = experiment.run();
    std::printf("%12.0f %12.3f %12.3f %12.3f %12.3f\n", capacity,
                report.pairs[0].blocking_probability,
                report.pairs[1].blocking_probability,
                numerics::erlang_b(100.0,
                                   static_cast<std::int64_t>(capacity)),
                report.pairs[0].mean_utility);
  }
  std::printf("\nThe dumbbell behaves exactly like the paper's single link\n"
              "with the pairs' aggregate load: multi-hop signalling plus\n"
              "per-link admission compose cleanly (Erlang-B column).\n");

  std::printf("\nUtilisation bound sweep at bottleneck 100 (offered 100):\n");
  std::printf("%8s %12s %14s\n", "eta", "blocking", "peak_reserved");
  for (const double eta : {0.5, 0.7, 0.9, 1.0}) {
    auto run_topo = std::make_shared<net::Topology>();
    const auto ra = run_topo->add_node("a");
    const auto rl = run_topo->add_node("left");
    const auto rr = run_topo->add_node("right");
    const auto rc = run_topo->add_node("c");
    run_topo->add_link(ra, rl, 1e6);
    run_topo->add_link(rl, rr, 100.0);
    run_topo->add_link(rr, rc, 1e6);
    const net::NetworkExperiment experiment(
        run_topo, std::make_shared<net::ParameterBasedAdmission>(eta),
        {{ra, rc, 100.0, 1.0, 1.0}}, pi, config);
    const auto report = experiment.run();
    std::printf("%8.2f %12.3f %14.1f\n", eta,
                report.pairs[0].blocking_probability,
                report.peak_bottleneck_reserved);
  }
  std::printf("\nLower eta buys headroom (for measurement error and burst\n"
              "tolerance) at the price of blocking — the admission-control\n"
              "knob behind the paper's k_max abstraction.\n");
  return 0;
}
