// Provisioning advisor: a small decision-support tool built on the
// welfare model (paper §4). Given a traffic forecast (load family +
// mean), an application profile (utility family), a bandwidth price,
// and an estimate of how much reservation machinery inflates per-unit
// bandwidth cost, it recommends an architecture and a capacity.
//
// Usage:
//   provisioning_advisor [load] [utility] [mean] [price] [complexity%]
//     load       poisson | exponential | algebraic   (default exponential)
//     utility    rigid | adaptive                    (default adaptive)
//     mean       mean offered flows                  (default 100)
//     price      bandwidth price per unit            (default 0.05)
//     complexity reservation cost premium in %       (default 10)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "bevr/core/variable_load.h"
#include "bevr/core/welfare.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"
#include "bevr/utility/utility.h"

namespace {

std::shared_ptr<const bevr::dist::DiscreteLoad> make_load(
    const std::string& kind, double mean) {
  if (kind == "poisson") {
    return std::make_shared<bevr::dist::PoissonLoad>(mean);
  }
  if (kind == "algebraic") {
    return std::make_shared<bevr::dist::AlgebraicLoad>(
        bevr::dist::AlgebraicLoad::with_mean(3.0, mean));
  }
  return std::make_shared<bevr::dist::ExponentialLoad>(
      bevr::dist::ExponentialLoad::with_mean(mean));
}

std::shared_ptr<const bevr::utility::UtilityFunction> make_utility(
    const std::string& kind) {
  if (kind == "rigid") return std::make_shared<bevr::utility::Rigid>(1.0);
  return std::make_shared<bevr::utility::AdaptiveExp>();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bevr;
  const std::string load_kind = argc > 1 ? argv[1] : "exponential";
  const std::string util_kind = argc > 2 ? argv[2] : "adaptive";
  const double mean = argc > 3 ? std::atof(argv[3]) : 100.0;
  const double price = argc > 4 ? std::atof(argv[4]) : 0.05;
  const double complexity_pct = argc > 5 ? std::atof(argv[5]) : 10.0;
  if (!(mean > 0.0) || !(price > 0.0) || complexity_pct < 0.0) {
    std::fprintf(stderr, "invalid arguments\n");
    return 1;
  }

  const auto load = make_load(load_kind, mean);
  const auto utility = make_utility(util_kind);
  const auto model = std::make_shared<core::VariableLoadModel>(load, utility);
  const core::WelfareAnalysis welfare(
      [model](double c) { return model->total_best_effort(c); },
      [model](double c) { return model->total_reservation(c); },
      model->mean_load());

  std::printf("Traffic forecast : %s (mean %.0f flows)\n",
              load->name().c_str(), mean);
  std::printf("Application mix  : %s\n", utility->name().c_str());
  std::printf("Bandwidth price  : %.4f per unit\n", price);
  std::printf("Reservation cost : +%.1f%% per unit bandwidth\n\n",
              complexity_pct);

  const auto best_effort = welfare.best_effort(price);
  // The reservation network pays the complexity premium on bandwidth.
  const double premium_price = price * (1.0 + complexity_pct / 100.0);
  const auto reservation = welfare.reservation(premium_price);
  const double gamma = welfare.price_ratio(price);

  std::printf("Best-effort-only : build C = %8.1f  -> welfare %8.2f\n",
              best_effort.capacity, best_effort.welfare);
  std::printf("Reservations     : build C = %8.1f  -> welfare %8.2f "
              "(at price %.4f)\n",
              reservation.capacity, reservation.welfare, premium_price);
  std::printf("Break-even premium (gamma - 1): %.1f%%\n\n",
              100.0 * (gamma - 1.0));

  if (reservation.welfare > best_effort.welfare) {
    std::printf("RECOMMENDATION: deploy the RESERVATION-CAPABLE "
                "architecture.\n");
    std::printf("  Its %.1f%% complexity premium is below the %.1f%% "
                "break-even point.\n",
                complexity_pct, 100.0 * (gamma - 1.0));
  } else {
    std::printf("RECOMMENDATION: stay BEST-EFFORT-ONLY and overprovision.\n");
    std::printf("  The complexity premium (%.1f%%) exceeds the %.1f%% "
                "break-even point;\n",
                complexity_pct, 100.0 * (gamma - 1.0));
    std::printf("  the extra capacity needed to match reservations is "
                "Delta(C*) = %.1f.\n",
                model->bandwidth_gap(best_effort.capacity));
  }
  return 0;
}
