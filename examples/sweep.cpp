// Parameterised sweep tool: prints B(C), R(C), delta(C), Delta(C) as
// CSV for any load/utility configuration — the general-purpose front
// end to the variable-load model for plotting or downstream analysis.
//
// Usage:
//   sweep [load] [load_param] [utility] [util_param] [c_lo] [c_hi] [points]
//
//   load       poisson | exponential | algebraic    (default exponential)
//   load_param mean k̄ for poisson/exponential;      (default 100)
//              for algebraic: the power z (mean fixed at 100)
//   utility    rigid | adaptive | pwl | elastic | algtail  (default adaptive)
//   util_param rigid: b̂; adaptive: κ; pwl: floor a; algtail: r
//              (default: the paper's value for each family)
//   c_lo/c_hi  capacity range                        (default 10..400)
//   points     sweep points                          (default 40)
//
// Example: plot Figure 3's rigid panels as CSV:
//   sweep exponential 100 rigid 1 10 800 80 > fig3_rigid.csv
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "bevr/core/variable_load.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"
#include "bevr/utility/utility.h"

namespace {

using namespace bevr;

void print_usage() {
  std::fprintf(stderr,
               "usage: sweep [load] [load_param] [utility] [util_param] "
               "[c_lo] [c_hi] [points]\n"
               "  load:    poisson | exponential | algebraic\n"
               "  utility: rigid | adaptive | pwl | elastic | algtail\n"
               "  c_lo < c_hi, points >= 2\n");
}

/// nullptr on an unrecognised kind (caller prints usage and exits nonzero).
std::shared_ptr<const dist::DiscreteLoad> make_load(const std::string& kind,
                                                    double parameter) {
  if (kind == "poisson") return std::make_shared<dist::PoissonLoad>(parameter);
  if (kind == "algebraic") {
    return std::make_shared<dist::AlgebraicLoad>(
        dist::AlgebraicLoad::with_mean(parameter, 100.0));
  }
  if (kind == "exponential") {
    return std::make_shared<dist::ExponentialLoad>(
        dist::ExponentialLoad::with_mean(parameter));
  }
  std::fprintf(stderr, "sweep: unknown load '%s'\n", kind.c_str());
  return nullptr;
}

std::shared_ptr<const utility::UtilityFunction> make_utility(
    const std::string& kind, double parameter) {
  if (kind == "rigid") return std::make_shared<utility::Rigid>(parameter);
  if (kind == "adaptive") {
    return std::make_shared<utility::AdaptiveExp>(parameter);
  }
  if (kind == "pwl") return std::make_shared<utility::PiecewiseLinear>(parameter);
  if (kind == "elastic") return std::make_shared<utility::Elastic>();
  if (kind == "algtail") {
    return std::make_shared<utility::AlgebraicTail>(parameter);
  }
  std::fprintf(stderr, "sweep: unknown utility '%s'\n", kind.c_str());
  return nullptr;
}

double default_utility_parameter(const std::string& kind) {
  if (kind == "rigid") return 1.0;
  if (kind == "adaptive") return utility::AdaptiveExp::kPaperKappa;
  if (kind == "pwl") return 0.5;
  return 1.0;
}

}  // namespace

int main(int argc, char** argv) try {
  const std::string load_kind = argc > 1 ? argv[1] : "exponential";
  const double load_param = argc > 2 ? std::atof(argv[2]) : 100.0;
  const std::string util_kind = argc > 3 ? argv[3] : "adaptive";
  const double util_param = argc > 4 ? std::atof(argv[4])
                                     : default_utility_parameter(util_kind);
  const double c_lo = argc > 5 ? std::atof(argv[5]) : 10.0;
  const double c_hi = argc > 6 ? std::atof(argv[6]) : 400.0;
  const int points = argc > 7 ? std::atoi(argv[7]) : 40;
  if (points <= 0) {
    std::fprintf(stderr, "sweep: points must be > 0 (got %d)\n", points);
    print_usage();
    return 2;
  }
  if (points < 2) {
    std::fprintf(stderr, "sweep: need at least 2 points for a range\n");
    print_usage();
    return 2;
  }
  if (!(c_lo > 0.0) || !(c_lo < c_hi)) {
    std::fprintf(stderr, "sweep: require 0 < c_lo < c_hi (got %g..%g)\n",
                 c_lo, c_hi);
    print_usage();
    return 2;
  }

  const auto load = make_load(load_kind, load_param);
  const auto utility = make_utility(util_kind, util_param);
  if (load == nullptr || utility == nullptr) {
    print_usage();
    return 2;
  }
  const core::VariableLoadModel model(load, utility);

  std::printf("# %s, %s, kbar=%g\n", load->name().c_str(),
              utility->name().c_str(), model.mean_load());
  std::printf("capacity,best_effort,reservation,delta,bandwidth_gap,k_max\n");
  for (int i = 0; i < points; ++i) {
    const double c = c_lo + (c_hi - c_lo) * i / (points - 1);
    const auto kmax = model.k_max(c);
    std::printf("%.6g,%.10g,%.10g,%.10g,%.10g,%lld\n", c,
                model.best_effort(c), model.reservation(c),
                model.performance_gap(c), model.bandwidth_gap(c),
                static_cast<long long>(kmax.value_or(-1)));
  }
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "sweep: %s\n", error.what());
  print_usage();
  return 1;
}
