// bevr_run — list, filter and execute the named paper scenarios on the
// parallel experiment engine. Replaces the serial guts of sweep.cpp
// for everything the registry covers (sweep remains for one-off custom
// parameter combinations).
//
// Usage:
//   bevr_run --list [filter]
//   bevr_run <scenario|filter> [--threads N] [--seed S]
//            [--format csv|jsonl] [--output FILE] [--no-cache] [--no-gap]
//            [--no-kernels] [--report text|json|prom] [--metrics-out FILE]
//            [--snapshot-every N] [--trace-out FILE]
//
//   --list        print matching scenarios (name, model, grid, description)
//   --threads N   worker threads (default 1; 0 = hardware concurrency)
//   --seed S      base seed for stochastic scenarios (default 42);
//                 results are bit-identical for a fixed seed at any N
//   --format      csv (default) or jsonl
//   --output      write to FILE instead of stdout
//   --no-cache    disable memoized evaluation (same results, slower)
//   --no-gap      skip the bandwidth-gap column (the expensive root solve)
//   --no-kernels  evaluate through the scalar model instead of the
//                 bevr::kernels batched sweep path (same results, slower;
//                 the escape hatch the equivalence checks diff against)
//   --report F    render the end-of-run metrics report as text, json or
//                 prom (Prometheus exposition); goes to stderr unless
//                 --metrics-out is given
//   --metrics-out write the metrics report to FILE (default format prom)
//   --snapshot-every N
//                 write a {"type":"snapshot",...} JSON line to the
//                 --metrics-out FILE (required) every N data rows plus
//                 one final line per scenario, turning the metrics file
//                 into a JSONL time series of the run's instrumentation
//   --trace-out   record trace spans and write a Chrome/Perfetto
//                 trace-event JSON file (open at https://ui.perfetto.dev)
//   --flight-dump FILE
//                 write the always-on flight recorder's ring contents
//                 as bevr.flight.v1 JSON after the run
//
// All value flags also accept the --flag=value spelling.
//
// Examples:
//   bevr_run --list fig3
//   bevr_run fig3_rigid --threads 8 --format jsonl
//   bevr_run fig4 --threads 4 --output fig4_all.csv   # runs every fig4_*
//   bevr_run fig2 --threads 8 --trace-out fig2.trace.json --report text
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "bevr/obs/flight_recorder.h"
#include "bevr/obs/metrics.h"
#include "bevr/obs/report.h"
#include "bevr/obs/slo.h"
#include "bevr/obs/trace.h"
#include "bevr/runner/runner.h"

namespace {

using namespace bevr::runner;

/// Strict decimal parse for flag values: digits only (no sign, no
/// trailing junk), bounded. strtoul alone would accept "-3" and wrap
/// it to ~4e9 — for --threads that means attempting 4 billion threads.
bool parse_count(const char* text, unsigned long long max_value,
                 unsigned long long& out) {
  if (text == nullptr || *text == '\0') return false;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || *end != '\0' || value > max_value) return false;
  out = value;
  return true;
}

int usage(const char* argv0, const char* error) {
  if (error != nullptr) std::fprintf(stderr, "%s: %s\n", argv0, error);
  std::fprintf(stderr,
               "usage: %s --list [filter]\n"
               "       %s <scenario|filter> [--threads N] [--seed S]\n"
               "          [--format csv|jsonl] [--output FILE] [--no-cache] "
               "[--no-gap] [--no-kernels]\n"
               "          [--report text|json|prom] [--metrics-out FILE] "
               "[--snapshot-every N] [--trace-out FILE] "
               "[--flight-dump FILE]\n",
               argv0, argv0);
  return 2;
}

void list_scenarios(const std::string& filter) {
  const auto matches = ScenarioRegistry::builtin().match(filter);
  std::printf("%-24s %-14s %5s  %s\n", "name", "model", "grid", "description");
  for (const ScenarioSpec* spec : matches) {
    std::printf("%-24s %-14s %5d  %s\n", spec->name.c_str(),
                to_string(spec->model).c_str(), spec->grid.points,
                spec->description.c_str());
  }
  std::printf("%zu scenario(s)\n", matches.size());
}

}  // namespace

int main(int argc, char** argv) try {
  std::string target;
  std::string format = "csv";
  std::string output_path;
  std::string metrics_path;
  std::string trace_path;
  std::string flight_path;
  std::string report_name;
  bool list_only = false;
  bool skip_gap = false;
  unsigned long long snapshot_every = 0;
  RunOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both `--flag value` and `--flag=value`.
    std::string inline_value;
    bool has_inline = false;
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg.erase(eq);
        has_inline = true;
      }
    }
    const auto next_value = [&](const char* flag) -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", argv[0], flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (has_inline && (arg == "--list" || arg == "--no-cache" ||
                       arg == "--no-gap" || arg == "--no-kernels")) {
      return usage(argv[0], (arg + " does not take a value").c_str());
    }
    if (arg == "--list") {
      list_only = true;
    } else if (arg == "--threads") {
      const char* value = next_value("--threads");
      if (value == nullptr) return usage(argv[0], nullptr);
      unsigned long long threads = 0;
      if (!parse_count(value, ThreadPool::kMaxThreads, threads)) {
        return usage(argv[0], "--threads must be an integer in [0, 256]");
      }
      options.threads = static_cast<unsigned>(threads);
    } else if (arg == "--seed") {
      const char* value = next_value("--seed");
      if (value == nullptr) return usage(argv[0], nullptr);
      unsigned long long seed = 0;
      if (!parse_count(value, std::numeric_limits<std::uint64_t>::max(),
                       seed)) {
        return usage(argv[0], "--seed must be a nonnegative integer");
      }
      options.base_seed = seed;
    } else if (arg == "--format") {
      const char* value = next_value("--format");
      if (value == nullptr) return usage(argv[0], nullptr);
      format = value;
      if (format != "csv" && format != "jsonl") {
        return usage(argv[0], "--format must be csv or jsonl");
      }
    } else if (arg == "--output") {
      const char* value = next_value("--output");
      if (value == nullptr) return usage(argv[0], nullptr);
      output_path = value;
    } else if (arg == "--metrics-out") {
      const char* value = next_value("--metrics-out");
      if (value == nullptr) return usage(argv[0], nullptr);
      metrics_path = value;
    } else if (arg == "--snapshot-every") {
      const char* value = next_value("--snapshot-every");
      if (value == nullptr) return usage(argv[0], nullptr);
      if (!parse_count(value, 1ULL << 32, snapshot_every) ||
          snapshot_every == 0) {
        return usage(argv[0], "--snapshot-every must be a positive integer");
      }
    } else if (arg == "--trace-out") {
      const char* value = next_value("--trace-out");
      if (value == nullptr) return usage(argv[0], nullptr);
      trace_path = value;
    } else if (arg == "--flight-dump") {
      const char* value = next_value("--flight-dump");
      if (value == nullptr) return usage(argv[0], nullptr);
      flight_path = value;
    } else if (arg == "--report") {
      const char* value = next_value("--report");
      if (value == nullptr) return usage(argv[0], nullptr);
      report_name = value;
      if (report_name != "text" && report_name != "json" &&
          report_name != "prom") {
        return usage(argv[0], "--report must be text, json or prom");
      }
    } else if (arg == "--no-cache") {
      options.use_cache = false;
    } else if (arg == "--no-gap") {
      skip_gap = true;
    } else if (arg == "--no-kernels") {
      options.use_kernels = false;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0], ("unknown option '" + arg + "'").c_str());
    } else if (target.empty()) {
      target = arg;
    } else {
      return usage(argv[0], "more than one scenario/filter given");
    }
  }

  if (list_only) {
    list_scenarios(target);
    return 0;
  }
  if (target.empty()) {
    return usage(argv[0], "no scenario given (try --list)");
  }

  const auto& registry = ScenarioRegistry::builtin();
  std::vector<const ScenarioSpec*> to_run;
  if (const ScenarioSpec* exact = registry.find(target)) {
    to_run.push_back(exact);
  } else {
    to_run = registry.match(target);
  }
  if (to_run.empty()) {
    return usage(argv[0],
                 ("no scenario matches '" + target + "' (try --list)").c_str());
  }

  std::ofstream file;
  if (!output_path.empty()) {
    file.open(output_path);
    if (!file) {
      std::fprintf(stderr, "%s: cannot open '%s' for writing\n", argv[0],
                   output_path.c_str());
      return 1;
    }
  }
  std::ostream& out = output_path.empty() ? std::cout : file;

  // --snapshot-every repurposes the metrics file as a JSONL stream, so
  // it must be open before the first scenario runs.
  std::ofstream snapshot_file;
  if (snapshot_every > 0) {
    if (metrics_path.empty()) {
      return usage(argv[0], "--snapshot-every requires --metrics-out");
    }
    snapshot_file.open(metrics_path);
    if (!snapshot_file) {
      std::fprintf(stderr, "%s: cannot open '%s' for writing\n", argv[0],
                   metrics_path.c_str());
      return 1;
    }
  }

  // Tracing is opt-in (span recording costs a few ns even when nobody
  // reads the buffers); metrics stay on at their batched default cost.
  bevr::obs::TraceCollector::set_thread_track("main", 1);
  if (!trace_path.empty()) {
    bevr::obs::TraceCollector::global().set_enabled(true);
  }

  // One cache + one pool shared across all matched scenarios: λ-
  // calibrations and thread start-up amortise over the whole batch.
  if (options.use_cache && !options.cache) {
    options.cache = std::make_shared<MemoCache>();
  }
  std::unique_ptr<ThreadPool> pool;
  if (options.threads != 1) {
    pool = std::make_unique<ThreadPool>(options.threads);
    options.pool = pool.get();
  }

  for (const ScenarioSpec* matched : to_run) {
    ScenarioSpec spec = *matched;
    if (skip_gap) spec.with_bandwidth_gap = false;
    std::unique_ptr<ResultSink> sink;
    if (format == "jsonl") {
      sink = std::make_unique<JsonlSink>(out);
    } else {
      sink = std::make_unique<CsvSink>(out);
    }
    std::unique_ptr<SnapshottingSink> snapshotting;
    if (snapshot_every > 0) {
      snapshotting = std::make_unique<SnapshottingSink>(
          *sink, snapshot_file, static_cast<std::size_t>(snapshot_every));
    }
    const RunSummary summary = run_scenario(
        spec, options, snapshotting ? *snapshotting : *sink);
    std::fprintf(stderr,
                 "%-24s %4zu rows  %7.2fs wall  cache %llu/%llu hits (%.0f%%)\n",
                 spec.name.c_str(), summary.rows, summary.wall_seconds,
                 static_cast<unsigned long long>(summary.cache.hits),
                 static_cast<unsigned long long>(summary.cache.hits +
                                                 summary.cache.misses),
                 100.0 * summary.cache.hit_rate());
  }

  if (!trace_path.empty()) {
    std::ofstream trace_file(trace_path);
    if (!trace_file) {
      std::fprintf(stderr, "%s: cannot open '%s' for writing\n", argv[0],
                   trace_path.c_str());
      return 1;
    }
    bevr::obs::TraceCollector::global().write_chrome_trace(trace_file);
  }

  if (!flight_path.empty()) {
    std::ofstream flight_file(flight_path);
    if (!flight_file) {
      std::fprintf(stderr, "%s: cannot open '%s' for writing\n", argv[0],
                   flight_path.c_str());
      return 1;
    }
    bevr::obs::FlightRecorder::global().write_json(flight_file, "on-demand");
  }

  if (!report_name.empty() || (!metrics_path.empty() && snapshot_every == 0)) {
    // A metrics file with no explicit format gets Prometheus exposition
    // (what a scraper expects); on stderr the human-readable text wins.
    // Under --snapshot-every the metrics file already holds the JSONL
    // snapshot stream, so only an explicit --report (to stderr) remains.
    const bevr::obs::ReportFormat report_format =
        bevr::obs::parse_report_format(
            !report_name.empty() ? report_name
                                 : (metrics_path.empty() ? "text" : "prom"));
    const std::string report = bevr::obs::render_report(
        bevr::obs::ReportData{bevr::obs::MetricsRegistry::global().snapshot(),
                              bevr::obs::SloRegistry::global().snapshot_all()},
        report_format);
    if (!metrics_path.empty() && snapshot_every == 0) {
      std::ofstream metrics_file(metrics_path);
      if (!metrics_file) {
        std::fprintf(stderr, "%s: cannot open '%s' for writing\n", argv[0],
                     metrics_path.c_str());
        return 1;
      }
      metrics_file << report;
    } else {
      std::fputs(report.c_str(), stderr);
    }
  }
  return 0;
} catch (const std::exception& error) {
  std::fprintf(stderr, "bevr_run: %s\n", error.what());
  return 1;
}
