// Flow-level simulation study: the paper's comparison run as an actual
// discrete-event experiment rather than an expectation. Flows arrive
// (smooth or bursty), hold the link, and score utility; the
// reservation run blocks arrivals beyond k_max(C), optionally letting
// them retry with a penalty (§5.2). Prints the measured per-flow
// utility for both architectures across capacities, for Poisson and
// bursty workloads, with lifetime-minimum scoring as the §5.1
// "sampling" stand-in.
#include <cstdio>
#include <memory>

#include "bevr/core/fixed_load.h"
#include "bevr/sim/simulator.h"
#include "bevr/utility/utility.h"

namespace {

using namespace bevr;

sim::SimulationReport run(double capacity, sim::Architecture architecture,
                          bool bursty, sim::UtilityMode mode,
                          bool retries) {
  const auto utility = std::make_shared<utility::AdaptiveExp>();
  sim::SimulationConfig config;
  config.capacity = capacity;
  config.architecture = architecture;
  config.admission_limit = core::k_max(*utility, capacity).value_or(1);
  config.utility_mode = mode;
  config.horizon = 8000.0;
  config.warmup = 400.0;
  config.seed = 20260706;
  config.retry.enabled = retries;
  config.retry.penalty = 0.1;
  config.retry.backoff_mean = 1.0;
  config.retry.max_attempts = 50;
  std::shared_ptr<sim::ArrivalProcess> arrivals;
  if (bursty) {
    // Long-run rate 100 with hyper-exponential gaps (CoV > 1).
    arrivals = std::make_shared<sim::BurstyArrivals>(1000.0, 1.0 / 0.019, 0.5);
  } else {
    arrivals = std::make_shared<sim::PoissonArrivals>(100.0);
  }
  const sim::FlowSimulator simulator(
      config, utility, arrivals,
      std::make_shared<sim::ExponentialHolding>(1.0));
  return simulator.run();
}

void table(bool bursty, sim::UtilityMode mode, const char* title) {
  std::printf("\n%s\n", title);
  std::printf("%10s %14s %14s %12s %12s\n", "capacity", "best_effort",
              "reservation", "blocking", "advantage");
  for (const double c : {60.0, 80.0, 100.0, 120.0, 160.0}) {
    const auto be = run(c, sim::Architecture::kBestEffort, bursty, mode,
                        /*retries=*/false);
    const auto rs = run(c, sim::Architecture::kReservation, bursty, mode,
                        /*retries=*/false);
    std::printf("%10.0f %14.4f %14.4f %12.3f %+12.4f\n", c, be.mean_utility,
                rs.mean_utility, rs.blocking_probability,
                rs.mean_utility - be.mean_utility);
  }
}

}  // namespace

int main() {
  std::printf("Flow-level simulation: adaptive flows, offered load 100\n");

  table(false, sim::UtilityMode::kSnapshotAtAdmission,
        "Poisson arrivals, snapshot utility (the basic model's measure):");
  table(false, sim::UtilityMode::kLifetimeMinimum,
        "Poisson arrivals, lifetime-minimum utility (the Sec 5.1 spirit —\n"
        "reservations' worst-case cap starts to matter):");
  table(true, sim::UtilityMode::kLifetimeMinimum,
        "Bursty arrivals, lifetime-minimum utility (fat load tail and\n"
        "worst-case scoring compound: the reservation edge widens):");

  std::printf("\nWith retries (alpha = 0.1, Sec 5.2), reservation side:\n");
  std::printf("%10s %14s %12s %12s\n", "capacity", "utility", "retries",
              "abandoned");
  for (const double c : {110.0, 120.0, 160.0}) {
    const auto rs = run(c, sim::Architecture::kReservation, false,
                        sim::UtilityMode::kSnapshotAtAdmission,
                        /*retries=*/true);
    std::printf("%10.0f %14.4f %12.3f %12llu\n", c, rs.mean_utility,
                rs.mean_retries,
                static_cast<unsigned long long>(rs.flows_abandoned));
  }
  return 0;
}
