// bevr_serve: the evaluation service end to end.
//
// Spins an in-process Server over the paper's scenario registry and
// drives it three ways:
//   1. a Client making blocking point queries (the "curl" view);
//   2. a closed-loop population — 8 well-behaved clients, coalescing
//      and batching doing their work invisibly;
//   3. an open-loop overload against a deliberately tiny server — the
//      paper's own subject, recast at the serving layer: under load the
//      service *reserves* capacity for the requests it admits and
//      cleanly rejects the rest, instead of best-effort-degrading
//      everyone.
// Finishes by dumping the service's observability counters.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bevr/obs/metrics.h"
#include "bevr/service/client.h"
#include "bevr/service/loadgen.h"
#include "bevr/service/server.h"

namespace {

void print_report(const char* label, const bevr::service::LoadGenReport& r) {
  std::printf("%s\n", label);
  std::printf("  requests    : %llu ok, %llu overloaded, %llu expired\n",
              static_cast<unsigned long long>(r.ok),
              static_cast<unsigned long long>(r.overloaded),
              static_cast<unsigned long long>(r.deadline_exceeded));
  std::printf("  coalesced   : %llu of the ok responses shared a ticket\n",
              static_cast<unsigned long long>(r.coalesced));
  std::printf("  throughput  : %.0f ok/s over %.3f s\n", r.throughput_rps,
              r.wall_seconds);
  std::printf("  latency     : p50 %.0f us, p95 %.0f us, p99 %.0f us\n",
              r.p50_us, r.p95_us, r.p99_us);
}

}  // namespace

int main() {
  using namespace bevr;
  namespace svc = bevr::service;

  // ---- 1. point queries through the blocking client ---------------------
  svc::Server server(svc::Server::Options{});
  svc::Client client(server);
  std::printf("Point queries (fig2_adaptive):\n");
  std::printf("%10s %12s %12s %12s %8s\n", "capacity", "B(C)", "R(C)",
              "delta(C)", "k_max");
  for (const double c : {50.0, 100.0, 150.0, 200.0}) {
    const svc::Response response =
        client.evaluate({.scenario = "fig2_adaptive", .capacity = c});
    std::printf("%10.0f %12.4f %12.4f %12.5f %8.0f\n", response.capacity,
                response.best_effort, response.reservation,
                response.performance_gap, response.k_max);
  }

  // ---- 2. closed-loop population ----------------------------------------
  svc::LoadGenOptions closed;
  for (const char* scenario :
       {"fig2_adaptive", "fig2_rigid", "fig3_adaptive"}) {
    for (int i = 0; i < 8; ++i) {
      closed.queries.push_back(
          {.scenario = scenario, .capacity = 60.0 + 20.0 * i});
    }
  }
  closed.threads = 8;
  closed.requests_per_thread = 200;
  print_report("\nClosed loop (8 clients x 200 requests, 24-query workset):",
               svc::run_closed_loop(server, closed));

  // ---- 3. open-loop overload against a tiny server ----------------------
  // One worker, a queue of 8 tickets, arrivals at 4000/s with 5 ms
  // budgets: offered load far exceeds service capacity, so admission
  // control and deadlines must shed — cleanly, every request resolved.
  svc::Server::Options tiny;
  tiny.workers = 1;
  tiny.queue_capacity = 8;
  svc::Server small_server(tiny);
  svc::LoadGenOptions open;
  for (int i = 0; i < 64; ++i) {
    open.queries.push_back(
        {.scenario = "fig4_adaptive", .capacity = 50.0 + 5.0 * i});
  }
  open.threads = 4;
  open.total_requests = 2048;
  open.rate_per_sec = 4000.0;
  open.deadline = std::chrono::milliseconds(5);
  print_report("\nOpen-loop overload (1 worker, queue 8, 4000 req/s, "
               "5 ms budgets):",
               svc::run_open_loop(small_server, open));

  // ---- service metrics ---------------------------------------------------
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  std::printf("\nService counters:\n");
  for (const char* name :
       {"service/requests", "service/admitted", "service/coalesced",
        "service/rejected_overload", "service/deadline_at_submit",
        "service/deadline_in_queue", "service/responses_ok",
        "service/evaluations", "service/rows_evaluated"}) {
    std::printf("  %-28s %llu\n", name,
                static_cast<unsigned long long>(snap.counter(name)));
  }
  if (const auto* hist = snap.histogram("service/latency_us")) {
    std::printf("  %-28s p50 %.0f us, p95 %.0f us, p99 %.0f us\n",
                "service/latency_us", hist->quantile(0.50),
                hist->quantile(0.95), hist->quantile(0.99));
  }
  if (const auto* hist = snap.histogram("service/batch_rows")) {
    std::printf("  %-28s mean %.2f rows per kernel call\n",
                "service/batch_rows", hist->mean());
  }
  return 0;
}
