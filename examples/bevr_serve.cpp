// bevr_serve: the evaluation service end to end.
//
// Spins an in-process Server over the paper's scenario registry and
// drives it three ways:
//   1. a Client making blocking point queries (the "curl" view);
//   2. a closed-loop population — 8 well-behaved clients, coalescing
//      and batching doing their work invisibly;
//   3. an open-loop overload against a deliberately tiny server — the
//      paper's own subject, recast at the serving layer: under load the
//      service *reserves* capacity for the requests it admits and
//      cleanly rejects the rest, instead of best-effort-degrading
//      everyone.
// Finishes by dumping the service's observability counters, rolling
// latency window and SLO burn rates.
//
// Diagnosis hooks:
//   --flight-dump FILE   write the always-on flight recorder as
//                        bevr.flight.v1 JSON at exit; FILE.storm is
//                        armed as the automatic overload-storm dump,
//                        which phase 3 deliberately triggers.
//   --trace-out FILE     enable causal tracing and write a Chrome/
//                        Perfetto trace at exit (open in ui.perfetto.dev).
//   --report FORMAT      final report as text (default), json or prom.
//   SIGUSR2              request a flight dump mid-run; the main loop
//                        honours it at the next phase boundary (the
//                        handler itself only sets a flag — JSON
//                        serialisation is not async-signal-safe).
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bevr/obs/flight_recorder.h"
#include "bevr/obs/metrics.h"
#include "bevr/obs/report.h"
#include "bevr/obs/slo.h"
#include "bevr/obs/trace.h"
#include "bevr/obs/window.h"
#include "bevr/service/client.h"
#include "bevr/service/loadgen.h"
#include "bevr/service/server.h"

namespace {

volatile std::sig_atomic_t g_dump_requested = 0;

void on_sigusr2(int) { g_dump_requested = 1; }

void print_report(const char* label, const bevr::service::LoadGenReport& r) {
  std::printf("%s\n", label);
  std::printf("  requests    : %llu ok, %llu overloaded, %llu expired\n",
              static_cast<unsigned long long>(r.ok),
              static_cast<unsigned long long>(r.overloaded),
              static_cast<unsigned long long>(r.deadline_exceeded));
  std::printf("  coalesced   : %llu of the ok responses shared a ticket\n",
              static_cast<unsigned long long>(r.coalesced));
  std::printf("  throughput  : %.0f ok/s over %.3f s\n", r.throughput_rps,
              r.wall_seconds);
  std::printf("  latency     : p50 %.0f us, p95 %.0f us, p99 %.0f us\n",
              r.p50_us, r.p95_us, r.p99_us);
}

/// Write the flight recorder to `path`; complain but keep running on
/// failure (a diagnosis dump must never take the service down with it).
bool dump_flight(const std::string& path, const char* reason) {
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "bevr_serve: cannot open '%s' for writing\n",
                 path.c_str());
    return false;
  }
  bevr::obs::FlightRecorder::global().write_json(file, reason);
  std::fprintf(stderr, "bevr_serve: flight dump (%s) -> %s\n", reason,
               path.c_str());
  return true;
}

/// Phase-boundary check for a pending SIGUSR2 dump request.
void service_dump_request(const std::string& flight_path) {
  if (g_dump_requested == 0) return;
  g_dump_requested = 0;
  dump_flight(flight_path.empty() ? "bevr_serve.flight.json" : flight_path,
              "sigusr2");
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--flight-dump FILE] [--trace-out FILE] "
               "[--report text|json|prom]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bevr;
  namespace svc = bevr::service;

  std::string flight_path;
  std::string trace_path;
  obs::ReportFormat report_format = obs::ReportFormat::kText;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--flight-dump" && i + 1 < argc) {
      flight_path = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      const std::string format = argv[++i];
      if (format == "text") {
        report_format = obs::ReportFormat::kText;
      } else if (format == "json") {
        report_format = obs::ReportFormat::kJson;
      } else if (format == "prom") {
        report_format = obs::ReportFormat::kProm;
      } else {
        return usage(argv[0]);
      }
    } else {
      return usage(argv[0]);
    }
  }

  obs::TraceCollector::set_thread_track("main", 1);
  if (!trace_path.empty()) obs::TraceCollector::global().set_enabled(true);
  std::signal(SIGUSR2, on_sigusr2);

  // ---- 1. point queries through the blocking client ---------------------
  svc::Server server(svc::Server::Options{});
  svc::Client client(server);
  std::printf("Point queries (fig2_adaptive):\n");
  std::printf("%10s %12s %12s %12s %8s\n", "capacity", "B(C)", "R(C)",
              "delta(C)", "k_max");
  for (const double c : {50.0, 100.0, 150.0, 200.0}) {
    const svc::Response response =
        client.evaluate({.scenario = "fig2_adaptive", .capacity = c});
    std::printf("%10.0f %12.4f %12.4f %12.5f %8.0f\n", response.capacity,
                response.best_effort, response.reservation,
                response.performance_gap, response.k_max);
  }
  service_dump_request(flight_path);

  // ---- 2. closed-loop population ----------------------------------------
  svc::LoadGenOptions closed;
  for (const char* scenario :
       {"fig2_adaptive", "fig2_rigid", "fig3_adaptive"}) {
    for (int i = 0; i < 8; ++i) {
      closed.queries.push_back(
          {.scenario = scenario, .capacity = 60.0 + 20.0 * i});
    }
  }
  closed.threads = 8;
  closed.requests_per_thread = 200;
  print_report("\nClosed loop (8 clients x 200 requests, 24-query workset):",
               svc::run_closed_loop(server, closed));
  service_dump_request(flight_path);

  // ---- 3. open-loop overload against a tiny server ----------------------
  // One worker, a queue of 8 tickets, arrivals at 4000/s with 5 ms
  // budgets: offered load far exceeds service capacity, so admission
  // control and deadlines must shed — cleanly, every request resolved.
  // The storm detector is armed: 16 consecutive queue-full rejections
  // trigger an automatic flight dump, the post-incident record.
  svc::Server::Options tiny;
  tiny.workers = 1;
  tiny.queue_capacity = 8;
  tiny.overload_storm_threshold = 16;
  const std::string storm_path =
      (flight_path.empty() ? std::string("bevr_serve.flight.json")
                           : flight_path) +
      ".storm";
  obs::FlightRecorder::global().set_auto_dump_path(storm_path);
  svc::Server small_server(tiny);
  svc::LoadGenOptions open;
  for (int i = 0; i < 64; ++i) {
    open.queries.push_back(
        {.scenario = "fig4_adaptive", .capacity = 50.0 + 5.0 * i});
  }
  open.threads = 4;
  open.total_requests = 2048;
  open.rate_per_sec = 4000.0;
  open.deadline = std::chrono::milliseconds(5);
  print_report("\nOpen-loop overload (1 worker, queue 8, 4000 req/s, "
               "5 ms budgets):",
               svc::run_open_loop(small_server, open));
  const obs::WindowSnapshot rolling = small_server.rolling_latency();
  std::printf("  rolling     : %.0f req/s over last %.0fs window, "
              "p50 %.0f us, p99 %.0f us\n",
              rolling.rate_per_sec,
              static_cast<double>(rolling.window_ns) * 1e-9,
              rolling.histogram.quantile(0.50),
              rolling.histogram.quantile(0.99));
  service_dump_request(flight_path);

  // ---- service metrics ---------------------------------------------------
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  std::printf("\nService counters:\n");
  for (const char* name :
       {"service/requests", "service/admitted", "service/coalesced",
        "service/rejected_overload", "service/deadline_at_submit",
        "service/deadline_in_queue", "service/responses_ok",
        "service/evaluations", "service/rows_evaluated"}) {
    std::printf("  %-28s %llu\n", name,
                static_cast<unsigned long long>(snap.counter(name)));
  }
  if (const auto* hist = snap.histogram("service/latency_us")) {
    std::printf("  %-28s p50 %.0f us, p95 %.0f us, p99 %.0f us\n",
                "service/latency_us", hist->quantile(0.50),
                hist->quantile(0.95), hist->quantile(0.99));
  }
  if (const auto* hist = snap.histogram("service/batch_rows")) {
    std::printf("  %-28s mean %.2f rows per kernel call\n",
                "service/batch_rows", hist->mean());
  }

  // SLO burn: the deadline SLO should be bleeding after phase 3 — that
  // is the demo working, not failing.
  std::printf("\nSLO status:\n");
  for (const obs::SloStatus& slo : obs::SloRegistry::global().snapshot_all()) {
    std::printf("  %-20s target %.3f  good %llu  bad %llu  %s\n",
                slo.name.c_str(), slo.target,
                static_cast<unsigned long long>(slo.total_good),
                static_cast<unsigned long long>(slo.total_bad),
                slo.healthy ? "ok" : "BURNING");
    for (const obs::SloWindowStatus& w : slo.windows) {
      std::printf("    %6.0fs window: burn %.2f\n",
                  static_cast<double>(w.window_ns) * 1e-9, w.burn_rate);
    }
  }

  if (report_format != obs::ReportFormat::kText) {
    std::printf("\n%s", obs::render_report(
                            obs::ReportData{
                                snap,
                                obs::SloRegistry::global().snapshot_all()},
                            report_format)
                            .c_str());
  }

  if (!trace_path.empty()) {
    std::ofstream trace_file(trace_path);
    if (!trace_file) {
      std::fprintf(stderr, "bevr_serve: cannot open '%s' for writing\n",
                   trace_path.c_str());
      return 1;
    }
    obs::TraceCollector::global().write_chrome_trace(trace_file);
    std::fprintf(stderr, "bevr_serve: chrome trace -> %s\n",
                 trace_path.c_str());
  }
  if (!flight_path.empty()) dump_flight(flight_path, "exit");
  return 0;
}
