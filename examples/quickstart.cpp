// Quickstart: the core question of Breslau & Shenker (SIGCOMM '98) in
// twenty lines — how much better would a reservation-capable network
// serve a random load of adaptive flows than a best-effort-only one,
// and how much extra capacity would close the gap?
#include <cstdio>
#include <memory>

#include "bevr/core/fixed_load.h"
#include "bevr/core/variable_load.h"
#include "bevr/core/welfare.h"
#include "bevr/dist/exponential.h"
#include "bevr/utility/utility.h"

int main() {
  using namespace bevr;

  // Load: a random number of flows with mean k̄ = 100, exponentially
  // distributed (the paper's middle case). Utility: the paper's
  // adaptive audio/video curve, Eq. (2).
  const auto load = std::make_shared<dist::ExponentialLoad>(
      dist::ExponentialLoad::with_mean(100.0));
  const auto utility = std::make_shared<utility::AdaptiveExp>();
  const core::VariableLoadModel model(load, utility);

  std::printf("Best-effort versus reservations, %s + %s\n",
              load->name().c_str(), utility->name().c_str());
  std::printf("%10s %12s %12s %12s %12s %8s\n", "capacity", "B(C)", "R(C)",
              "delta(C)", "Delta(C)", "k_max");
  for (const double c : {50.0, 100.0, 150.0, 200.0, 400.0}) {
    std::printf("%10.0f %12.4f %12.4f %12.5f %12.2f %8lld\n", c,
                model.best_effort(c), model.reservation(c),
                model.performance_gap(c), model.bandwidth_gap(c),
                static_cast<long long>(model.k_max(c).value_or(-1)));
  }

  // The economics (paper §4): at a bandwidth price p, how much more
  // expensive could reservation-capable bandwidth be and still win?
  const core::WelfareAnalysis welfare(
      [&model](double c) { return model.total_best_effort(c); },
      [&model](double c) { return model.total_reservation(c); },
      model.mean_load());
  const double price = 0.05;
  const auto best_effort = welfare.best_effort(price);
  const auto reservation = welfare.reservation(price);
  std::printf("\nAt bandwidth price %.2f:\n", price);
  std::printf("  best-effort : build C = %7.1f for welfare %7.2f\n",
              best_effort.capacity, best_effort.welfare);
  std::printf("  reservations: build C = %7.1f for welfare %7.2f\n",
              reservation.capacity, reservation.welfare);
  std::printf("  equalising price ratio gamma = %.4f\n",
              welfare.price_ratio(price));
  std::printf(
      "  -> reservations remain worthwhile if their complexity costs less\n"
      "     than %.1f%% extra per unit of bandwidth.\n",
      100.0 * (welfare.price_ratio(price) - 1.0));
  return 0;
}
