// Reservation-substrate walkthrough: the machinery behind the paper's
// abstract "reservation-capable architecture" — RSVP-style PATH/RESV
// soft-state signalling over a small topology, per-link admission
// control, teardown/expiry, and the GPS scheduler delivering the
// reserved rates while best-effort traffic shares the rest.
#include <cstdio>
#include <limits>
#include <memory>
#include <vector>

#include "bevr/net/rsvp.h"
#include "bevr/net/scheduler.h"
#include "bevr/net/token_bucket.h"
#include "bevr/utility/utility.h"

int main() {
  using namespace bevr;

  // Topology: two access nodes behind a shared 10-unit backbone link.
  auto topo = std::make_shared<net::Topology>();
  const auto alice = topo->add_node("alice");
  const auto left = topo->add_node("edge-left");
  const auto right = topo->add_node("edge-right");
  const auto bob = topo->add_node("bob");
  topo->add_link(alice, left, 100.0);
  const auto backbone = topo->add_link(left, right, 10.0);
  topo->add_link(right, bob, 100.0);

  net::RsvpAgent agent(topo,
                       std::make_shared<net::ParameterBasedAdmission>(1.0),
                       /*refresh_timeout=*/30.0);

  auto flow = [](double rate) {
    net::FlowSpec spec;
    spec.tspec.bucket_rate = rate;
    spec.tspec.peak_rate = rate;
    spec.tspec.bucket_depth = rate;  // one second of burst
    spec.rspec.rate = rate;
    return spec;
  };

  std::printf("PATH/RESV signalling over alice -> bob (backbone 10 units)\n");
  std::vector<net::SessionId> sessions;
  double now = 0.0;
  for (int i = 0; i < 4; ++i) {
    const auto session = agent.open_session(alice, bob, now);
    const auto result = agent.reserve(*session, flow(3.0), now);
    std::printf("  session %llu requests 3.0 -> %s (backbone reserved: %g)\n",
                static_cast<unsigned long long>(*session),
                result == net::ResvResult::kCommitted ? "COMMITTED"
                                                      : "ADMISSION DENIED",
                agent.reserved_on_link(backbone));
    if (result == net::ResvResult::kCommitted) sessions.push_back(*session);
  }

  std::printf("\nTeardown of session %llu frees its bandwidth:\n",
              static_cast<unsigned long long>(sessions.front()));
  agent.teardown(sessions.front(), now);
  std::printf("  backbone reserved: %g -> a new 3.0 request now %s\n",
              agent.reserved_on_link(backbone),
              agent.reserve(*agent.open_session(alice, bob, now), flow(3.0),
                            now) == net::ResvResult::kCommitted
                  ? "COMMITS"
                  : "fails");

  std::printf("\nSoft state: without refreshes all reservations expire.\n");
  now = 100.0;
  agent.expire(now);
  std::printf("  backbone reserved after timeout: %g (sessions left: %zu)\n",
              agent.reserved_on_link(backbone), agent.committed_sessions());

  // The data plane: reserved flows hold their rate against best-effort
  // pressure; the utility model quantifies what that is worth.
  std::printf("\nGPS scheduler on the 10-unit backbone:\n");
  const net::FluidScheduler scheduler(10.0);
  const utility::AdaptiveExp pi;
  std::vector<net::SchedulableFlow> flows = {
      {.id = 1, .reserved_rate = 3.0, .weight = 1.0, .demand = 3.0},
      {.id = 2, .reserved_rate = 3.0, .weight = 1.0, .demand = 3.0},
  };
  for (int burden = 0; burden < 16; ++burden) {
    flows.push_back({.id = static_cast<std::uint64_t>(100 + burden),
                     .reserved_rate = 0.0,
                     .weight = 1.0,
                     .demand = std::numeric_limits<double>::infinity()});
  }
  const auto allocations = scheduler.allocate(flows);
  std::printf("  reserved flow 1: rate %.2f  (utility %.3f)\n",
              allocations[0].rate, pi.value(allocations[0].rate));
  std::printf("  reserved flow 2: rate %.2f  (utility %.3f)\n",
              allocations[1].rate, pi.value(allocations[1].rate));
  std::printf("  each of 16 best-effort flows: rate %.2f (utility %.3f)\n",
              allocations[2].rate, pi.value(allocations[2].rate));

  // Policing: the token bucket caps a misbehaving reserved source.
  net::TokenBucket policer(3.0, 3.0);
  double conforming = 0.0;
  for (double t = 0.0; t < 10.0; t += 0.5) {
    if (policer.consume(t, 3.0)) conforming += 3.0;  // tries 6.0/s
  }
  std::printf("\nPolicing a source sending 6.0/s against TSpec r=3, b=3:\n");
  std::printf("  conforming volume over 10s: %.1f (cap = r*t + b = 33)\n",
              conforming);
  return 0;
}
