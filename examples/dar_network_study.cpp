// DAR-versus-reservation network study: the paper's single-link
// best-effort/reservation comparison lifted onto a multi-link mesh.
// With no arguments it sweeps the offered load on a 6-node full mesh
// and prints the three network policies side by side — best effort
// (bottleneck sharing), per-link reservation (k_max slots), and
// dynamic alternative routing at trunk reservation r = 0 and r = 2 —
// next to the Erlang fixed-point prediction for the DAR lanes.
//
// With `--topology FILE` the same comparison runs on a topology read
// from FILE (one `a b capacity` link per line, '#' comments); the
// reader is the hardened net2 parser, so a malformed file exits 2
// with the offending line named, never a crash.
#include <cstdio>
#include <cstring>
#include <exception>
#include <memory>
#include <string>

#include "bevr/net2/engine.h"
#include "bevr/net2/fixed_point.h"
#include "bevr/net2/policy.h"
#include "bevr/net2/topology.h"
#include "bevr/net2/trace.h"
#include "bevr/sim/rng.h"
#include "bevr/utility/utility.h"

namespace {

constexpr double kCapacity = 10.0;
constexpr double kTrunkReserve = 2.0;
constexpr double kHorizon = 200.0;
constexpr double kWarmup = 20.0;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--topology FILE]\n"
               "  Compare best effort, per-link reservation, and DAR\n"
               "  (trunk reservation %.0f) on a shared arrival trace.\n"
               "  Default: 6-node full mesh, %.0f circuits per link.\n"
               "  FILE: one 'a b capacity' link per line, '#' comments.\n",
               argv0, kTrunkReserve, kCapacity);
  return 2;
}

bevr::net2::NetReport run_policy(const bevr::net2::Topology& topology,
                                 const bevr::net2::NetTrace& trace,
                                 bevr::net2::NetPolicyKind kind,
                                 double trunk_reserve,
                                 const bevr::utility::UtilityFunction& pi) {
  bevr::net2::NetPolicyConfig config;
  config.pi = std::make_shared<bevr::utility::Rigid>(1.0);
  config.trunk_reserve = trunk_reserve;
  auto policy = bevr::net2::make_net_policy(kind, topology, config);
  bevr::net2::NetEngineConfig engine;
  engine.warmup = kWarmup;
  return bevr::net2::run_network(trace, *policy, pi, engine);
}

void run_study(const bevr::net2::Topology& topology, bool symmetric_mesh) {
  using bevr::net2::NetPolicyKind;
  const bevr::utility::Rigid pi(1.0);

  std::printf("%zu nodes, %zu links; horizon %.0f, warmup %.0f\n\n",
              topology.node_count(), topology.link_count(), kHorizon,
              kWarmup);
  std::printf("%9s %8s %9s %9s %9s %9s %9s %9s\n", "pair_load", "be_util",
              "res_util", "res_blk", "dar0_blk", "darr_blk", "alt_share",
              symmetric_mesh ? "mf_blk" : "-");
  for (const double load : {4.0, 8.0, 11.0, 14.0}) {
    bevr::net2::NetTraceSpec spec;
    spec.pair_arrival_rate = load;
    spec.horizon = kHorizon;
    const bevr::net2::NetTrace trace =
        bevr::net2::generate_net_trace(topology, spec, bevr::sim::Rng(42));

    const auto be =
        run_policy(topology, trace, NetPolicyKind::kBestEffort, 0.0, pi);
    const auto reserved = run_policy(
        topology, trace, NetPolicyKind::kDirectReservation, 0.0, pi);
    const auto dar0 =
        run_policy(topology, trace, NetPolicyKind::kDar, 0.0, pi);
    const auto darr = run_policy(topology, trace, NetPolicyKind::kDar,
                                 kTrunkReserve, pi);
    const double alt_share =
        darr.admitted > 0 ? static_cast<double>(darr.alternate_routed) /
                                static_cast<double>(darr.admitted)
                          : 0.0;
    double mf_blocking = 0.0;
    if (symmetric_mesh) {
      bevr::net2::MeanFieldSpec mf;
      mf.capacity = static_cast<std::int64_t>(kCapacity);
      mf.pair_load = load;
      mf.trunk_reserve = static_cast<std::int64_t>(kTrunkReserve);
      mf_blocking = bevr::net2::evaluate_mean_field(mf).blocking;
    }
    std::printf("%9.1f %8.3f %9.3f %9.3f %9.3f %9.3f %9.3f ", load,
                be.mean_utility, reserved.mean_utility,
                reserved.blocking_probability, dar0.blocking_probability,
                darr.blocking_probability, alt_share);
    if (symmetric_mesh) {
      std::printf("%9.3f\n", mf_blocking);
    } else {
      std::printf("%9s\n", "-");
    }
  }
  std::printf(
      "\nPast the knee (pair_load > capacity) best-effort utility\n"
      "collapses while the reserved lanes hold theirs — the paper's\n"
      "single-link conclusion, intact on a network. Trunk reservation\n"
      "keeps DAR's overflow from cascading: darr_blk stays below\n"
      "dar0_blk under overload%s.\n",
      symmetric_mesh
          ? ", and the Erlang fixed point (mf_blk)\ntracks the simulated "
            "DAR blocking without simulating anything"
          : "");
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--topology") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --topology needs a file path\n");
        return usage(argv[0]);
      }
      path = argv[++i];
    } else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", argv[i]);
      return usage(argv[0]);
    }
  }

  try {
    if (path.empty()) {
      std::printf("DAR vs reservation on the default 6-node full mesh\n");
      const bevr::net2::Topology topology = bevr::net2::build_topology(
          {bevr::net2::TopologyKind::kFullMesh, 6, kCapacity, {}});
      run_study(topology, /*symmetric_mesh=*/true);
    } else {
      std::printf("DAR vs reservation on topology file %s\n", path.c_str());
      const bevr::net2::Topology topology = bevr::net2::load_topology(path);
      run_study(topology, /*symmetric_mesh=*/false);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return usage(argv[0]);
  }
  return 0;
}
