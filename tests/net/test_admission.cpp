#include "bevr/net/admission.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace bevr::net {
namespace {

FlowSpec unit_flow(double rate = 1.0) {
  FlowSpec spec;
  spec.tspec.bucket_rate = rate;
  spec.tspec.peak_rate = rate;
  spec.rspec.rate = rate;
  return spec;
}

TEST(ParameterBasedAdmission, AdmitsUntilCapacity) {
  const ParameterBasedAdmission controller(1.0);
  LinkAdmissionState link{.capacity = 100.0, .reserved_sum = 0.0,
                          .measured_load = 0.0};
  // The paper's homogeneous case: unit flows on capacity 100 → exactly
  // k_max = 100 admissions.
  int admitted = 0;
  while (controller.admit(link, unit_flow()) && admitted < 1000) {
    link.reserved_sum += 1.0;
    ++admitted;
  }
  EXPECT_EQ(admitted, 100);
}

TEST(ParameterBasedAdmission, UtilizationBound) {
  const ParameterBasedAdmission controller(0.5);
  const LinkAdmissionState link{.capacity = 100.0, .reserved_sum = 49.5,
                                .measured_load = 0.0};
  EXPECT_FALSE(controller.admit(link, unit_flow()));
  EXPECT_TRUE(controller.admit(link, unit_flow(0.5)));
  EXPECT_THROW(ParameterBasedAdmission(0.0), std::invalid_argument);
  EXPECT_THROW(ParameterBasedAdmission(1.5), std::invalid_argument);
}

TEST(MeasurementBasedAdmission, UsesMeasuredLoadNotDeclaredSum) {
  const MeasurementBasedAdmission controller(0.9);
  // Declared reservations are high but measured usage is low: admit.
  const LinkAdmissionState idle{.capacity = 100.0, .reserved_sum = 89.0,
                                .measured_load = 20.0};
  EXPECT_TRUE(controller.admit(idle, unit_flow(10.0)));
  // Measured usage high: reject even if declared sum is low.
  const LinkAdmissionState busy{.capacity = 100.0, .reserved_sum = 5.0,
                                .measured_load = 85.0};
  EXPECT_FALSE(controller.admit(busy, unit_flow(10.0)));
}

TEST(MeasurementBasedAdmission, HigherUtilizationThanParameterBased) {
  // The Jamin et al. argument: measurement-based admission packs more
  // flows when declared rates overstate actual usage.
  const ParameterBasedAdmission parameter(0.9);
  const MeasurementBasedAdmission measurement(0.9);
  // 60 flows declared at rate 1 but actually sending 0.5 on average.
  const LinkAdmissionState link{.capacity = 100.0, .reserved_sum = 89.5,
                                .measured_load = 45.0};
  EXPECT_FALSE(parameter.admit(link, unit_flow()));
  EXPECT_TRUE(measurement.admit(link, unit_flow()));
}

TEST(FlowSpec, Validation) {
  FlowSpec spec = unit_flow();
  EXPECT_NO_THROW(spec.validate());
  spec.rspec.rate = 0.5;  // below the sustained rate
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = unit_flow();
  spec.tspec.peak_rate = 0.1;  // below bucket rate
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(LoadEstimator, TracksConstantLoad) {
  LoadEstimator estimator(/*window=*/1.0, /*decay=*/0.5);
  for (double t = 0.0; t <= 10.0; t += 0.1) estimator.observe(t, 50.0);
  EXPECT_NEAR(estimator.estimate(), 50.0, 1.0);
}

TEST(LoadEstimator, ReactsToSpikesImmediately) {
  LoadEstimator estimator(1.0, 0.5);
  estimator.observe(0.0, 10.0);
  estimator.observe(0.1, 90.0);
  EXPECT_GE(estimator.estimate(), 90.0);
}

TEST(LoadEstimator, DecaysAfterLoadDrops) {
  LoadEstimator estimator(1.0, 0.5);
  for (double t = 0.0; t <= 5.0; t += 0.1) estimator.observe(t, 80.0);
  for (double t = 5.1; t <= 30.0; t += 0.1) estimator.observe(t, 10.0);
  EXPECT_LT(estimator.estimate(), 20.0);
  EXPECT_GE(estimator.estimate(), 10.0 - 1e-9);
}

TEST(LoadEstimator, Validation) {
  EXPECT_THROW(LoadEstimator(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(LoadEstimator(1.0, 1.0), std::invalid_argument);
  LoadEstimator estimator(1.0, 0.5);
  estimator.observe(1.0, 5.0);
  EXPECT_THROW(estimator.observe(0.5, 5.0), std::invalid_argument);
}

}  // namespace
}  // namespace bevr::net
