#include "bevr/net/scheduler.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

namespace bevr::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double total(const std::vector<Allocation>& allocations) {
  double sum = 0.0;
  for (const auto& a : allocations) sum += a.rate;
  return sum;
}

TEST(FluidScheduler, EqualShareForIdenticalGreedyFlows) {
  // The paper's C/k abstraction: k greedy best-effort flows split C
  // evenly.
  const FluidScheduler scheduler(100.0);
  std::vector<SchedulableFlow> flows;
  for (std::uint64_t i = 0; i < 8; ++i) {
    flows.push_back({.id = i, .reserved_rate = 0.0, .weight = 1.0,
                     .demand = kInf});
  }
  const auto allocations = scheduler.allocate(flows);
  for (const auto& a : allocations) EXPECT_NEAR(a.rate, 12.5, 1e-9);
  EXPECT_NEAR(total(allocations), 100.0, 1e-9);
}

TEST(FluidScheduler, ReservedFlowsAreProtected) {
  const FluidScheduler scheduler(100.0);
  std::vector<SchedulableFlow> flows = {
      {.id = 0, .reserved_rate = 60.0, .weight = 1.0, .demand = kInf},
      {.id = 1, .reserved_rate = 0.0, .weight = 1.0, .demand = kInf},
      {.id = 2, .reserved_rate = 0.0, .weight = 1.0, .demand = kInf},
  };
  const auto allocations = scheduler.allocate(flows);
  // Reserved flow: its 60 plus an equal share of the remaining 40.
  EXPECT_NEAR(allocations[0].rate, 60.0 + 40.0 / 3.0, 1e-9);
  EXPECT_NEAR(allocations[1].rate, 40.0 / 3.0, 1e-9);
  EXPECT_NEAR(total(allocations), 100.0, 1e-9);
}

TEST(FluidScheduler, WorkConservingRedistribution) {
  // A reserved flow that uses only half its reservation returns the
  // rest to the best-effort pool.
  const FluidScheduler scheduler(100.0);
  std::vector<SchedulableFlow> flows = {
      {.id = 0, .reserved_rate = 60.0, .weight = 1.0, .demand = 30.0},
      {.id = 1, .reserved_rate = 0.0, .weight = 1.0, .demand = kInf},
  };
  const auto allocations = scheduler.allocate(flows);
  EXPECT_NEAR(allocations[0].rate, 30.0, 1e-9);
  EXPECT_NEAR(allocations[1].rate, 70.0, 1e-9);
}

TEST(FluidScheduler, WeightedSplit) {
  const FluidScheduler scheduler(90.0);
  std::vector<SchedulableFlow> flows = {
      {.id = 0, .reserved_rate = 0.0, .weight = 2.0, .demand = kInf},
      {.id = 1, .reserved_rate = 0.0, .weight = 1.0, .demand = kInf},
  };
  const auto allocations = scheduler.allocate(flows);
  EXPECT_NEAR(allocations[0].rate, 60.0, 1e-9);
  EXPECT_NEAR(allocations[1].rate, 30.0, 1e-9);
}

TEST(FluidScheduler, WaterFillingWithSaturatedFlows) {
  // One flow wants only 5; its unused fair share goes to the others.
  const FluidScheduler scheduler(100.0);
  std::vector<SchedulableFlow> flows = {
      {.id = 0, .reserved_rate = 0.0, .weight = 1.0, .demand = 5.0},
      {.id = 1, .reserved_rate = 0.0, .weight = 1.0, .demand = kInf},
      {.id = 2, .reserved_rate = 0.0, .weight = 1.0, .demand = kInf},
  };
  const auto allocations = scheduler.allocate(flows);
  EXPECT_NEAR(allocations[0].rate, 5.0, 1e-9);
  EXPECT_NEAR(allocations[1].rate, 47.5, 1e-9);
  EXPECT_NEAR(allocations[2].rate, 47.5, 1e-9);
}

TEST(FluidScheduler, UnderloadedLinkLeavesCapacityIdle) {
  const FluidScheduler scheduler(100.0);
  std::vector<SchedulableFlow> flows = {
      {.id = 0, .reserved_rate = 10.0, .weight = 1.0, .demand = 10.0},
      {.id = 1, .reserved_rate = 0.0, .weight = 1.0, .demand = 20.0},
  };
  const auto allocations = scheduler.allocate(flows);
  EXPECT_NEAR(allocations[0].rate, 10.0, 1e-9);
  EXPECT_NEAR(allocations[1].rate, 20.0, 1e-9);
}

TEST(FluidScheduler, OversubscribedReservationsThrow) {
  const FluidScheduler scheduler(100.0);
  std::vector<SchedulableFlow> flows = {
      {.id = 0, .reserved_rate = 70.0, .weight = 1.0, .demand = kInf},
      {.id = 1, .reserved_rate = 50.0, .weight = 1.0, .demand = kInf},
  };
  EXPECT_THROW((void)scheduler.allocate(flows), std::invalid_argument);
}

TEST(FluidScheduler, ParameterValidation) {
  EXPECT_THROW(FluidScheduler(0.0), std::invalid_argument);
  const FluidScheduler scheduler(10.0);
  std::vector<SchedulableFlow> flows = {
      {.id = 0, .reserved_rate = -1.0, .weight = 1.0, .demand = 1.0}};
  EXPECT_THROW((void)scheduler.allocate(flows), std::invalid_argument);
  flows = {{.id = 0, .reserved_rate = 0.0, .weight = 0.0, .demand = 1.0}};
  EXPECT_THROW((void)scheduler.allocate(flows), std::invalid_argument);
}

TEST(FluidScheduler, EmptyFlowsNoAllocation) {
  const FluidScheduler scheduler(10.0);
  EXPECT_TRUE(scheduler.allocate({}).empty());
}

TEST(FluidScheduler, NeverExceedsCapacityOrDemand) {
  // Randomised-ish property over a few structured cases.
  const FluidScheduler scheduler(50.0);
  for (int n = 1; n <= 12; ++n) {
    std::vector<SchedulableFlow> flows;
    for (int i = 0; i < n; ++i) {
      flows.push_back({.id = static_cast<std::uint64_t>(i),
                       .reserved_rate = (i % 3 == 0) ? 3.0 : 0.0,
                       .weight = 1.0 + (i % 2),
                       .demand = (i % 4 == 0) ? 2.5 : kInf});
    }
    const auto allocations = scheduler.allocate(flows);
    EXPECT_LE(total(allocations), 50.0 + 1e-9) << "n=" << n;
    for (std::size_t i = 0; i < flows.size(); ++i) {
      EXPECT_LE(allocations[i].rate, flows[i].demand + 1e-9);
      EXPECT_GE(allocations[i].rate,
                std::min(flows[i].demand, flows[i].reserved_rate) - 1e-9);
    }
  }
}

}  // namespace
}  // namespace bevr::net
