#include "bevr/net/token_bucket.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace bevr::net {
namespace {

TEST(TokenBucket, StartsFull) {
  TokenBucket bucket(1.0, 10.0);
  EXPECT_DOUBLE_EQ(bucket.available(0.0), 10.0);
  EXPECT_TRUE(bucket.consume(0.0, 10.0));
  EXPECT_FALSE(bucket.consume(0.0, 0.1));
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket bucket(2.0, 10.0);
  ASSERT_TRUE(bucket.consume(0.0, 10.0));
  EXPECT_NEAR(bucket.available(3.0), 6.0, 1e-12);
  EXPECT_TRUE(bucket.consume(3.0, 6.0));
  EXPECT_FALSE(bucket.consume(3.0, 1.0));
}

TEST(TokenBucket, CapsAtDepth) {
  TokenBucket bucket(5.0, 10.0);
  EXPECT_NEAR(bucket.available(1000.0), 10.0, 1e-12);
}

TEST(TokenBucket, EnforcesLongRunRate) {
  // Over any interval t, a conformant source sends at most r·t + b.
  TokenBucket bucket(1.0, 5.0);
  double sent = 0.0;
  for (double now = 0.0; now <= 100.0; now += 0.25) {
    if (bucket.consume(now, 1.0)) sent += 1.0;
  }
  EXPECT_LE(sent, 1.0 * 100.0 + 5.0 + 1e-9);
  EXPECT_GE(sent, 100.0 - 1.0);  // and the bucket is not over-strict
}

TEST(TokenBucket, BurstThenSustain) {
  TokenBucket bucket(1.0, 20.0);
  // Burst of 20 at t=0 passes; immediately after, only the rate passes.
  EXPECT_TRUE(bucket.consume(0.0, 20.0));
  EXPECT_FALSE(bucket.consume(0.5, 1.0));
  EXPECT_TRUE(bucket.consume(1.5, 1.0));
}

TEST(TokenBucket, Validation) {
  EXPECT_THROW(TokenBucket(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(TokenBucket(1.0, -1.0), std::invalid_argument);
  TokenBucket bucket(1.0, 1.0);
  EXPECT_TRUE(bucket.consume(1.0, 0.0));
  EXPECT_THROW((void)bucket.consume(0.5, 1.0), std::invalid_argument);
  EXPECT_THROW((void)bucket.consume(2.0, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace bevr::net
