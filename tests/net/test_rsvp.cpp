#include "bevr/net/rsvp.h"

#include <memory>

#include <gtest/gtest.h>

namespace bevr::net {
namespace {

struct Fixture {
  std::shared_ptr<Topology> topo = std::make_shared<Topology>();
  NodeId src = 0, mid = 0, dst = 0;
  std::shared_ptr<RsvpAgent> agent;

  explicit Fixture(double capacity = 100.0, double timeout = 30.0) {
    src = topo->add_node("src");
    mid = topo->add_node("mid");
    dst = topo->add_node("dst");
    topo->add_link(src, mid, capacity);
    topo->add_link(mid, dst, capacity);
    agent = std::make_shared<RsvpAgent>(
        topo, std::make_shared<ParameterBasedAdmission>(1.0), timeout);
  }
};

FlowSpec unit_flow(double rate = 1.0) {
  FlowSpec spec;
  spec.tspec.bucket_rate = rate;
  spec.tspec.peak_rate = rate;
  spec.rspec.rate = rate;
  return spec;
}

TEST(RsvpAgent, PathThenResvCommits) {
  Fixture f;
  const auto session = f.agent->open_session(f.src, f.dst, 0.0);
  ASSERT_TRUE(session.has_value());
  EXPECT_EQ(f.agent->reserve(*session, unit_flow(5.0), 1.0),
            ResvResult::kCommitted);
  EXPECT_TRUE(f.agent->has_reservation(*session));
  EXPECT_EQ(f.agent->committed_sessions(), 1u);
  // Both hops hold the reservation.
  EXPECT_DOUBLE_EQ(f.agent->reserved_on_link(0), 5.0);
  EXPECT_DOUBLE_EQ(f.agent->reserved_on_link(2), 5.0);
}

TEST(RsvpAgent, NoRouteNoSession) {
  auto topo = std::make_shared<Topology>();
  const auto a = topo->add_node("a");
  const auto b = topo->add_node("b");  // disconnected
  RsvpAgent agent(topo, std::make_shared<ParameterBasedAdmission>(1.0));
  EXPECT_FALSE(agent.open_session(a, b, 0.0).has_value());
}

TEST(RsvpAgent, AdmissionDenialIsAllOrNothing) {
  Fixture f(/*capacity=*/10.0);
  const auto s1 = f.agent->open_session(f.src, f.dst, 0.0);
  const auto s2 = f.agent->open_session(f.src, f.dst, 0.0);
  ASSERT_TRUE(s1 && s2);
  EXPECT_EQ(f.agent->reserve(*s1, unit_flow(8.0), 0.0),
            ResvResult::kCommitted);
  EXPECT_EQ(f.agent->reserve(*s2, unit_flow(8.0), 0.0),
            ResvResult::kAdmissionDenied);
  // The denied request held nothing anywhere.
  EXPECT_DOUBLE_EQ(f.agent->reserved_on_link(0), 8.0);
  EXPECT_FALSE(f.agent->has_reservation(*s2));
}

TEST(RsvpAgent, HomogeneousUnitFlowsReproduceKMax) {
  // The paper's single-link admission rule: capacity 100, unit flows →
  // exactly 100 admitted, the 101st rejected.
  Fixture f(/*capacity=*/100.0);
  int committed = 0;
  for (int i = 0; i < 120; ++i) {
    const auto session = f.agent->open_session(f.src, f.dst, 0.0);
    ASSERT_TRUE(session.has_value());
    if (f.agent->reserve(*session, unit_flow(1.0), 0.0) ==
        ResvResult::kCommitted) {
      ++committed;
    }
  }
  EXPECT_EQ(committed, 100);
}

TEST(RsvpAgent, TeardownReleasesBandwidth) {
  Fixture f(10.0);
  const auto s1 = f.agent->open_session(f.src, f.dst, 0.0);
  ASSERT_EQ(f.agent->reserve(*s1, unit_flow(8.0), 0.0),
            ResvResult::kCommitted);
  f.agent->teardown(*s1, 1.0);
  EXPECT_DOUBLE_EQ(f.agent->reserved_on_link(0), 0.0);
  const auto s2 = f.agent->open_session(f.src, f.dst, 1.0);
  EXPECT_EQ(f.agent->reserve(*s2, unit_flow(8.0), 1.0),
            ResvResult::kCommitted);
}

TEST(RsvpAgent, SoftStateExpiresWithoutRefresh) {
  Fixture f(100.0, /*timeout=*/10.0);
  const auto session = f.agent->open_session(f.src, f.dst, 0.0);
  ASSERT_EQ(f.agent->reserve(*session, unit_flow(5.0), 0.0),
            ResvResult::kCommitted);
  f.agent->expire(5.0);  // still fresh
  EXPECT_TRUE(f.agent->has_reservation(*session));
  f.agent->expire(11.0);  // stale: both path and resv state die
  EXPECT_DOUBLE_EQ(f.agent->reserved_on_link(0), 0.0);
  EXPECT_EQ(f.agent->committed_sessions(), 0u);
}

TEST(RsvpAgent, RefreshKeepsStateAlive) {
  Fixture f(100.0, /*timeout=*/10.0);
  const auto session = f.agent->open_session(f.src, f.dst, 0.0);
  ASSERT_EQ(f.agent->reserve(*session, unit_flow(5.0), 0.0),
            ResvResult::kCommitted);
  for (double t = 5.0; t <= 50.0; t += 5.0) {
    f.agent->refresh(*session, t);
    f.agent->expire(t + 1.0);
    EXPECT_TRUE(f.agent->has_reservation(*session)) << "t=" << t;
  }
}

TEST(RsvpAgent, ReservationReplacesNotStacks) {
  Fixture f(10.0);
  const auto session = f.agent->open_session(f.src, f.dst, 0.0);
  ASSERT_EQ(f.agent->reserve(*session, unit_flow(4.0), 0.0),
            ResvResult::kCommitted);
  // Upgrade to 9: must succeed because the old 4 is released first.
  EXPECT_EQ(f.agent->reserve(*session, unit_flow(9.0), 0.0),
            ResvResult::kCommitted);
  EXPECT_DOUBLE_EQ(f.agent->reserved_on_link(0), 9.0);
}

TEST(RsvpAgent, ReserveWithoutPathState) {
  Fixture f(100.0, /*timeout=*/10.0);
  const auto session = f.agent->open_session(f.src, f.dst, 0.0);
  // Long after the path state expired:
  EXPECT_EQ(f.agent->reserve(*session, unit_flow(1.0), 100.0),
            ResvResult::kNoPathState);
  EXPECT_EQ(f.agent->reserve(9999, unit_flow(1.0), 0.0),
            ResvResult::kNoPathState);
}

}  // namespace
}  // namespace bevr::net
