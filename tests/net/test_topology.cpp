#include "bevr/net/topology.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace bevr::net {
namespace {

Topology line_of_four() {
  Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto c = topo.add_node("c");
  const auto d = topo.add_node("d");
  topo.add_link(a, b, 10.0);
  topo.add_link(b, c, 10.0);
  topo.add_link(c, d, 10.0);
  return topo;
}

TEST(Topology, NodeAndLinkBookkeeping) {
  Topology topo;
  const auto a = topo.add_node("alpha");
  const auto b = topo.add_node("beta");
  const auto l = topo.add_link(a, b, 42.0);
  EXPECT_EQ(topo.node_count(), 2u);
  EXPECT_EQ(topo.link_count(), 2u);  // bidirectional pair
  EXPECT_EQ(topo.link(l).from, a);
  EXPECT_EQ(topo.link(l).to, b);
  EXPECT_DOUBLE_EQ(topo.link(l).capacity, 42.0);
  EXPECT_EQ(topo.node_name(a), "alpha");
}

TEST(Topology, Validation) {
  Topology topo;
  const auto a = topo.add_node("a");
  EXPECT_THROW((void)topo.add_link(a, a, 1.0), std::invalid_argument);
  EXPECT_THROW((void)topo.add_link(a, 99, 1.0), std::out_of_range);
  const auto b = topo.add_node("b");
  EXPECT_THROW((void)topo.add_link(a, b, 0.0), std::invalid_argument);
  EXPECT_THROW((void)topo.link(57), std::out_of_range);
  EXPECT_THROW((void)topo.node_name(-1), std::out_of_range);
}

TEST(Topology, RouteAlongLine) {
  const auto topo = line_of_four();
  const auto path = topo.route(0, 3);
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 3u);
  // Links chain correctly.
  EXPECT_EQ(topo.link((*path)[0]).from, 0);
  EXPECT_EQ(topo.link((*path)[0]).to, 1);
  EXPECT_EQ(topo.link((*path)[2]).to, 3);
}

TEST(Topology, RouteIsSymmetricInHops) {
  const auto topo = line_of_four();
  const auto forward = topo.route(0, 3);
  const auto backward = topo.route(3, 0);
  ASSERT_TRUE(forward && backward);
  EXPECT_EQ(forward->size(), backward->size());
}

TEST(Topology, TrivialAndMissingRoutes) {
  Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  EXPECT_TRUE(topo.route(a, a).has_value());
  EXPECT_TRUE(topo.route(a, a)->empty());
  EXPECT_FALSE(topo.route(a, b).has_value());  // disconnected
}

TEST(Topology, PicksShortestPath) {
  // Diamond: a-b-d (2 hops) vs a-c1-c2-d (3 hops).
  Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto c1 = topo.add_node("c1");
  const auto c2 = topo.add_node("c2");
  const auto d = topo.add_node("d");
  topo.add_link(a, c1, 1.0);
  topo.add_link(c1, c2, 1.0);
  topo.add_link(c2, d, 1.0);
  topo.add_link(a, b, 1.0);
  topo.add_link(b, d, 1.0);
  const auto path = topo.route(a, d);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);
}

}  // namespace
}  // namespace bevr::net
