#include "bevr/net/packet_link.h"
#include "bevr/net/packet_sched.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace bevr::net {
namespace {

TEST(FifoScheduler, PreservesArrivalOrder) {
  FifoScheduler fifo;
  fifo.enqueue({1, 1.0, 0.0});
  fifo.enqueue({2, 1.0, 0.1});
  fifo.enqueue({1, 1.0, 0.2});
  EXPECT_EQ(fifo.dequeue().flow, 1u);
  EXPECT_EQ(fifo.dequeue().flow, 2u);
  EXPECT_EQ(fifo.dequeue().flow, 1u);
  EXPECT_FALSE(fifo.backlogged());
  EXPECT_THROW((void)fifo.dequeue(), std::logic_error);
  EXPECT_THROW(fifo.enqueue({1, 0.0, 0.0}), std::invalid_argument);
}

TEST(WfqScheduler, Validation) {
  WfqScheduler wfq(10.0);
  EXPECT_THROW(WfqScheduler(0.0), std::invalid_argument);
  EXPECT_THROW(wfq.add_flow(1, 0.0), std::invalid_argument);
  wfq.add_flow(1, 1.0);
  EXPECT_THROW(wfq.add_flow(1, 2.0), std::invalid_argument);  // duplicate
  EXPECT_THROW(wfq.enqueue({99, 1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW((void)wfq.dequeue(), std::logic_error);
}

TEST(WfqScheduler, InterleavesByWeight) {
  // Flow 1 weight 2, flow 2 weight 1, both with a backlog stamped at
  // t = 0: over any prefix the service ratio must track the weights.
  WfqScheduler wfq(3.0);
  wfq.add_flow(1, 2.0);
  wfq.add_flow(2, 1.0);
  for (int i = 0; i < 30; ++i) {
    wfq.enqueue({1, 1.0, 0.0});
    wfq.enqueue({2, 1.0, 0.0});
  }
  int served1 = 0, served2 = 0;
  for (int i = 0; i < 30; ++i) {
    const auto packet = wfq.dequeue();
    (packet.flow == 1 ? served1 : served2)++;
  }
  // Weight-proportional: ~20 vs ~10 in the first 30 services.
  EXPECT_NEAR(served1, 20, 2);
  EXPECT_NEAR(served2, 10, 2);
}

TEST(WfqScheduler, EqualWeightsAlternate) {
  WfqScheduler wfq(2.0);
  wfq.add_flow(1, 1.0);
  wfq.add_flow(2, 1.0);
  for (int i = 0; i < 10; ++i) {
    wfq.enqueue({1, 1.0, 0.0});
  }
  for (int i = 0; i < 10; ++i) {
    wfq.enqueue({2, 1.0, 0.0});
  }
  // Despite flow 1 enqueuing first, service alternates (same tags,
  // interleaved by finish time).
  int first_ten_flow1 = 0;
  for (int i = 0; i < 10; ++i) {
    if (wfq.dequeue().flow == 1) ++first_ten_flow1;
  }
  EXPECT_NEAR(first_ten_flow1, 5, 1);
}

TEST(SimulateLink, SinglePacketTiming) {
  FifoScheduler fifo;
  const auto report = simulate_link(2.0, fifo, {{7, 4.0, 1.0}});
  ASSERT_EQ(report.flows.count(7), 1u);
  // Transmission time 4/2 = 2, so delay 2 and finish at t = 3.
  EXPECT_DOUBLE_EQ(report.flows.at(7).mean_delay, 2.0);
  EXPECT_DOUBLE_EQ(report.finish_time, 3.0);
  EXPECT_THROW((void)simulate_link(0.0, fifo, {}), std::invalid_argument);
}

TEST(SimulateLink, WorkConservation) {
  // Total service time equals total volume / capacity when the link
  // never idles (continuous backlog).
  FifoScheduler fifo;
  auto packets = cbr_packets(1, 4.0, 1.0, 0.0, 50.0);  // demand 4 > C=2
  const double volume = static_cast<double>(packets.size());
  const auto report = simulate_link(2.0, fifo, std::move(packets));
  EXPECT_NEAR(report.finish_time, volume / 2.0, 1.0);
}

TEST(SimulateLink, WfqFairThroughputUnderOverload) {
  // Three greedy CBR flows, equal weights, link oversubscribed 3x:
  // each gets C/3.
  WfqScheduler wfq(3.0);
  for (std::uint64_t f = 1; f <= 3; ++f) wfq.add_flow(f, 1.0);
  std::vector<Packet> packets;
  for (std::uint64_t f = 1; f <= 3; ++f) {
    const auto stream = cbr_packets(f, 3.0, 1.0, 0.0, 100.0);
    packets.insert(packets.end(), stream.begin(), stream.end());
  }
  const auto report = simulate_link(3.0, wfq, std::move(packets));
  for (std::uint64_t f = 1; f <= 3; ++f) {
    EXPECT_NEAR(report.flows.at(f).throughput, 1.0, 0.08) << "flow " << f;
  }
}

// The headline guarantee (Parekh–Gallager): a (σ, ρ)-conformant flow
// with WFQ rate R = ρ has delay ≤ σ/R + L/R + L/C no matter what the
// cross traffic does.
TEST(SimulateLink, WfqDelayBoundHolds) {
  const double capacity = 10.0;
  const double sigma = 5.0, rho = 1.0, packet = 1.0;
  WfqScheduler wfq(capacity);
  wfq.add_flow(1, rho);  // the reserved flow
  wfq.add_flow(2, 4.5);
  wfq.add_flow(3, 4.5);
  auto packets = token_bucket_burst_packets(1, sigma, rho, packet, 0.0, 200.0);
  // Hostile cross traffic: each cross flow offers half the link alone.
  for (std::uint64_t f = 2; f <= 3; ++f) {
    const auto cross = cbr_packets(f, 5.0, packet, 0.0, 200.0);
    packets.insert(packets.end(), cross.begin(), cross.end());
  }
  const auto report = simulate_link(capacity, wfq, std::move(packets));
  const double bound = sigma / rho + packet / rho + packet / capacity;
  // Allow slack for the packet-level (PGPS vs GPS) approximation.
  EXPECT_LE(report.flows.at(1).max_delay, bound + 2.0 * packet / rho);
  EXPECT_GT(report.flows.at(1).packets, 150u);
}

// Under FIFO the same flow's delay explodes with overloading cross
// traffic — the best-effort failure mode reservations+WFQ fix.
TEST(SimulateLink, FifoDelayUnboundedUnderOverload) {
  const double capacity = 10.0;
  FifoScheduler fifo;
  auto packets = token_bucket_burst_packets(1, 5.0, 1.0, 1.0, 0.0, 200.0);
  for (std::uint64_t f = 2; f <= 3; ++f) {
    // Aggregate cross demand 12 > C = 10: the queue grows linearly.
    const auto cross = cbr_packets(f, 6.0, 1.0, 0.0, 200.0);
    packets.insert(packets.end(), cross.begin(), cross.end());
  }
  const auto report = simulate_link(capacity, fifo, std::move(packets));
  const double wfq_style_bound = 5.0 / 1.0 + 1.0 / 1.0 + 1.0 / capacity;
  EXPECT_GT(report.flows.at(1).max_delay, 3.0 * wfq_style_bound);
}

TEST(SimulateLink, WfqIsolatesFromPoissonCross) {
  // Random cross traffic instead of CBR: the bound still holds.
  const double capacity = 10.0;
  WfqScheduler wfq(capacity);
  wfq.add_flow(1, 1.0);
  wfq.add_flow(2, 9.0);
  sim::Rng rng(5);
  auto packets = token_bucket_burst_packets(1, 3.0, 1.0, 1.0, 0.0, 300.0);
  const auto cross = poisson_packets(2, 12.0, 1.0, 0.0, 300.0, rng);
  packets.insert(packets.end(), cross.begin(), cross.end());
  const auto report = simulate_link(capacity, wfq, std::move(packets));
  const double bound = 3.0 / 1.0 + 1.0 / 1.0 + 1.0 / capacity;
  EXPECT_LE(report.flows.at(1).max_delay, bound + 2.0);
}

TEST(PacketStreams, GeneratorsProduceConformantLoads) {
  const auto cbr = cbr_packets(1, 2.0, 1.0, 0.0, 10.0);
  EXPECT_EQ(cbr.size(), 20u);  // rate 2, unit packets, 10 time units
  const auto burst = token_bucket_burst_packets(1, 4.0, 1.0, 1.0, 0.0, 10.0);
  // 4 burst packets at t=0 plus ~9 steady ones.
  EXPECT_EQ(burst.size(), 13u);
  EXPECT_DOUBLE_EQ(burst[3].arrival_time, 0.0);
  sim::Rng rng(1);
  const auto poisson = poisson_packets(1, 5.0, 1.0, 0.0, 100.0, rng);
  EXPECT_NEAR(static_cast<double>(poisson.size()), 500.0, 80.0);
  EXPECT_THROW((void)cbr_packets(1, -1.0, 1.0, 0.0, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace bevr::net
