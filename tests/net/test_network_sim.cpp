#include "bevr/net/network_sim.h"

#include <cmath>
#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "bevr/numerics/erlang.h"
#include "bevr/utility/utility.h"

namespace bevr::net {
namespace {

struct DumbbellFixture {
  std::shared_ptr<Topology> topo = std::make_shared<Topology>();
  NodeId a = 0, b = 0, left = 0, right = 0, c = 0, d = 0;

  explicit DumbbellFixture(double bottleneck) {
    a = topo->add_node("a");
    b = topo->add_node("b");
    left = topo->add_node("left");
    right = topo->add_node("right");
    c = topo->add_node("c");
    d = topo->add_node("d");
    topo->add_link(a, left, 1e6);
    topo->add_link(b, left, 1e6);
    topo->add_link(left, right, bottleneck);
    topo->add_link(right, c, 1e6);
    topo->add_link(right, d, 1e6);
  }
};

NetworkExperimentConfig quick_config() {
  NetworkExperimentConfig config;
  config.horizon = 3000.0;
  config.warmup = 200.0;
  config.seed = 77;
  return config;
}

TEST(NetworkExperiment, Validation) {
  DumbbellFixture f(100.0);
  const auto admission = std::make_shared<ParameterBasedAdmission>(1.0);
  const auto pi = std::make_shared<utility::Rigid>(1.0);
  EXPECT_THROW(NetworkExperiment(nullptr, admission, {{f.a, f.c, 1, 1, 1}},
                                 pi, quick_config()),
               std::invalid_argument);
  EXPECT_THROW(
      NetworkExperiment(f.topo, admission, {}, pi, quick_config()),
      std::invalid_argument);
  EXPECT_THROW(NetworkExperiment(f.topo, admission,
                                 {{f.a, f.c, -1.0, 1, 1}}, pi, quick_config()),
               std::invalid_argument);
  // Unroutable pair (disconnected node in a fresh topology).
  auto topo2 = std::make_shared<Topology>();
  const auto x = topo2->add_node("x");
  const auto y = topo2->add_node("y");
  EXPECT_THROW(NetworkExperiment(topo2, admission, {{x, y, 1, 1, 1}}, pi,
                                 quick_config()),
               std::invalid_argument);
}

TEST(NetworkExperiment, SingleBottleneckMatchesErlangB) {
  // One pair, unit reservations, bottleneck 90, offered load 100:
  // blocking must track the Erlang-B value the single-link theory gives.
  DumbbellFixture f(90.0);
  const NetworkExperiment experiment(
      f.topo, std::make_shared<ParameterBasedAdmission>(1.0),
      {{f.a, f.c, /*arrival_rate=*/100.0, /*mean_holding=*/1.0,
        /*reserved_rate=*/1.0}},
      std::make_shared<utility::Rigid>(1.0), quick_config());
  const auto report = experiment.run();
  const double erlang = numerics::erlang_b(100.0, 90);
  EXPECT_NEAR(report.pairs[0].blocking_probability, erlang, 0.02);
  // Committed flows hold exactly their unit rate -> rigid utility 1:
  // mean utility = acceptance probability.
  EXPECT_NEAR(report.pairs[0].mean_utility,
              1.0 - report.pairs[0].blocking_probability, 1e-12);
  EXPECT_LE(report.peak_bottleneck_reserved, 90.0 + 1e-9);
}

TEST(NetworkExperiment, TwoPairsShareTheBottleneckFairly) {
  // Symmetric pairs through the same bottleneck see (statistically)
  // the same blocking, and their joint offered load drives it.
  DumbbellFixture f(90.0);
  const NetworkExperiment experiment(
      f.topo, std::make_shared<ParameterBasedAdmission>(1.0),
      {{f.a, f.c, 50.0, 1.0, 1.0}, {f.b, f.d, 50.0, 1.0, 1.0}},
      std::make_shared<utility::Rigid>(1.0), quick_config());
  const auto report = experiment.run();
  const double erlang = numerics::erlang_b(100.0, 90);
  EXPECT_NEAR(report.pairs[0].blocking_probability, erlang, 0.03);
  EXPECT_NEAR(report.pairs[0].blocking_probability,
              report.pairs[1].blocking_probability, 0.03);
}

TEST(NetworkExperiment, OverprovisionedBottleneckNeverBlocks) {
  DumbbellFixture f(10'000.0);
  const NetworkExperiment experiment(
      f.topo, std::make_shared<ParameterBasedAdmission>(1.0),
      {{f.a, f.c, 100.0, 1.0, 1.0}},
      std::make_shared<utility::Rigid>(1.0), quick_config());
  const auto report = experiment.run();
  EXPECT_EQ(report.pairs[0].blocked, 0u);
  EXPECT_DOUBLE_EQ(report.pairs[0].mean_utility, 1.0);
}

TEST(NetworkExperiment, BiggerReservationsBlockMore) {
  // Flows reserving 2 units each on the same bottleneck double the
  // effective load per flow: blocking rises sharply.
  DumbbellFixture f(90.0);
  const auto pi = std::make_shared<utility::Rigid>(1.0);
  const auto admission = std::make_shared<ParameterBasedAdmission>(1.0);
  const auto small = NetworkExperiment(f.topo, admission,
                                       {{f.a, f.c, 45.0, 1.0, 1.0}}, pi,
                                       quick_config())
                         .run();
  const auto large = NetworkExperiment(f.topo, admission,
                                       {{f.a, f.c, 45.0, 1.0, 2.0}}, pi,
                                       quick_config())
                         .run();
  EXPECT_LT(small.pairs[0].blocking_probability, 0.01);
  EXPECT_GT(large.pairs[0].blocking_probability,
            5.0 * small.pairs[0].blocking_probability);
}

TEST(NetworkExperiment, MeasurementBasedAdmissionOverbooks) {
  // Flows declare rate 1 but only use 0.4 of it. Parameter-based
  // admission fills the 90-unit bottleneck at 90 declared reservations;
  // measurement-based admission (eta=0.9) sees only the 0.4 usage and
  // books past the declared capacity — higher utilisation, less
  // blocking (the Jamin et al. trade, ref [8]).
  DumbbellFixture f(90.0);
  const auto pi = std::make_shared<utility::Rigid>(1.0);
  const TrafficPair pair{f.a, f.c, /*arrival_rate=*/120.0,
                         /*mean_holding=*/1.0, /*reserved_rate=*/1.0,
                         /*utilization=*/0.4};
  const auto parameter =
      NetworkExperiment(f.topo, std::make_shared<ParameterBasedAdmission>(1.0),
                        {pair}, pi, quick_config())
          .run();
  const auto measurement =
      NetworkExperiment(f.topo,
                        std::make_shared<MeasurementBasedAdmission>(0.9),
                        {pair}, pi, quick_config())
          .run();
  EXPECT_GT(parameter.pairs[0].blocking_probability, 0.15);
  EXPECT_LT(measurement.pairs[0].blocking_probability,
            0.5 * parameter.pairs[0].blocking_probability);
  // Overbooking is visible: declared reservations exceed the declared-
  // capacity cap, while actual usage stays within the bound.
  EXPECT_GT(measurement.peak_bottleneck_reserved, 90.0);
  EXPECT_LE(measurement.peak_bottleneck_usage, 0.9 * 90.0 + 1.0 + 1e-9);
}

TEST(NetworkExperiment, UtilizationValidation) {
  DumbbellFixture f(90.0);
  const auto pi = std::make_shared<utility::Rigid>(1.0);
  EXPECT_THROW(
      NetworkExperiment(f.topo,
                        std::make_shared<ParameterBasedAdmission>(1.0),
                        {{f.a, f.c, 1.0, 1.0, 1.0, /*utilization=*/1.5}}, pi,
                        quick_config()),
      std::invalid_argument);
}

TEST(NetworkExperiment, UtilizationBoundShrinksCapacity) {
  // eta = 0.5 halves the usable bottleneck: blocking at offered 100
  // over 45 effective servers is drastic.
  DumbbellFixture f(90.0);
  const NetworkExperiment experiment(
      f.topo, std::make_shared<ParameterBasedAdmission>(0.5),
      {{f.a, f.c, 100.0, 1.0, 1.0}},
      std::make_shared<utility::Rigid>(1.0), quick_config());
  const auto report = experiment.run();
  const double erlang = numerics::erlang_b(100.0, 45);
  EXPECT_NEAR(report.pairs[0].blocking_probability, erlang, 0.03);
  EXPECT_LE(report.peak_bottleneck_reserved, 45.0 + 1e-9);
}

}  // namespace
}  // namespace bevr::net
