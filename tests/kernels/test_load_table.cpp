// LoadTable contract: every tabulated value is the exact double the
// load's virtuals produce, window bounds coincide with the model's
// direct-summation clamps, and the stored prefix states replay a
// scalar Kahan accumulation bit-for-bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>

#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"
#include "bevr/kernels/load_table.h"
#include "bevr/numerics/kahan.h"

namespace bevr::kernels {
namespace {

std::shared_ptr<const dist::DiscreteLoad> poisson100() {
  return std::make_shared<dist::PoissonLoad>(100.0);
}

std::shared_ptr<const dist::DiscreteLoad> exponential100() {
  return std::make_shared<dist::ExponentialLoad>(
      dist::ExponentialLoad::with_mean(100.0));
}

std::shared_ptr<const dist::DiscreteLoad> algebraic100() {
  return std::make_shared<dist::AlgebraicLoad>(
      dist::AlgebraicLoad::with_mean(3.0, 100.0));
}

TEST(LoadTable, WindowMatchesModelClamps) {
  const auto load = poisson100();
  const LoadTable table(load, {});
  EXPECT_EQ(table.k_lo(), std::max<std::int64_t>(1, load->min_support()));
  EXPECT_EQ(table.k_exact(), load->truncation_point(1e-13));
  EXPECT_EQ(table.k_hi(),
            std::min(std::max(table.k_exact(), table.k_lo()),
                     table.k_lo() + 65'536 - 1));
  EXPECT_EQ(table.size(),
            static_cast<std::size_t>(table.k_hi() - table.k_lo() + 1));
}

TEST(LoadTable, DirectBudgetCapsTheWindow) {
  LoadTable::Options options;
  options.tail_eps = 1e-10;
  options.direct_budget = 2048;
  const LoadTable table(algebraic100(), options);
  // Algebraic z = 3 at eps = 1e-10 truncates far beyond 2048 terms.
  EXPECT_GT(table.k_exact(), table.k_hi());
  EXPECT_EQ(table.k_hi(), table.k_lo() + 2048 - 1);
}

TEST(LoadTable, EntriesAreBitwiseCopiesOfTheVirtuals) {
  for (const auto& load : {poisson100(), exponential100(), algebraic100()}) {
    LoadTable::Options options;
    options.tail_eps = 1e-8;
    options.direct_budget = 4096;
    const LoadTable table(load, options);
    for (std::size_t i = 0; i < table.size(); ++i) {
      const std::int64_t k = table.k_lo() + static_cast<std::int64_t>(i);
      const double kd = static_cast<double>(k);
      const double pmf = load->pmf(k);
      EXPECT_EQ(table.kd()[i], kd);
      EXPECT_EQ(table.pmf()[i], pmf);
      EXPECT_EQ(table.kpmf()[i], pmf * kd);
    }
  }
}

TEST(LoadTable, TailLookupsMatchVirtualsInsideAndPastTheCap) {
  LoadTable::Options options;
  options.tail_eps = 1e-8;
  options.direct_budget = 4096;
  options.tail_table_terms = 16;  // force the fallback path early
  for (const auto& load : {poisson100(), algebraic100()}) {
    const LoadTable table(load, options);
    for (const std::int64_t k :
         {table.k_lo(), table.k_lo() + 7, table.k_lo() + 15,
          table.k_lo() + 16, table.k_lo() + 200}) {
      EXPECT_EQ(table.tail_above(k), load->tail_above(k)) << "k=" << k;
      EXPECT_EQ(table.partial_mean_above(k), load->partial_mean_above(k))
          << "k=" << k;
    }
  }
}

TEST(LoadTable, PrefixStatesReplayAScalarKahanLoop) {
  const auto load = poisson100();
  const LoadTable table(load, {});
  numerics::KahanSum scalar;
  for (std::int64_t k = table.k_lo(); k <= table.k_hi(); ++k) {
    scalar.add(load->pmf(k) * static_cast<double>(k));
    const numerics::KahanSum stored = table.prefix_mass_state(k);
    ASSERT_EQ(stored.raw_sum(), scalar.raw_sum()) << "k=" << k;
    ASSERT_EQ(stored.compensation(), scalar.compensation()) << "k=" << k;
  }
  // Below the window: the identity state, value exactly zero.
  EXPECT_EQ(table.prefix_mass_state(table.k_lo() - 1).value(), 0.0);
  EXPECT_THROW((void)table.prefix_mass_state(table.k_hi() + 1),
               std::out_of_range);
}

TEST(LoadTable, ResumedStateContinuesBitIdentically) {
  // Stop a scalar accumulation mid-series, resume from the stored
  // state, and land on the same bits as the uninterrupted loop.
  const auto load = exponential100();
  const LoadTable table(load, {});
  const std::int64_t k_cut = table.k_lo() + 37;
  numerics::KahanSum resumed = table.prefix_mass_state(k_cut);
  numerics::KahanSum straight;
  for (std::int64_t k = table.k_lo(); k <= table.k_hi(); ++k) {
    straight.add(load->pmf(k) * static_cast<double>(k));
    if (k > k_cut) resumed.add(load->pmf(k) * static_cast<double>(k));
  }
  EXPECT_EQ(resumed.value(), straight.value());
  EXPECT_EQ(resumed.raw_sum(), straight.raw_sum());
  EXPECT_EQ(resumed.compensation(), straight.compensation());
}

TEST(LoadTable, RejectsBadOptions) {
  EXPECT_THROW(LoadTable(nullptr, {}), std::invalid_argument);
  LoadTable::Options bad_eps;
  bad_eps.tail_eps = 0.0;
  EXPECT_THROW(LoadTable(poisson100(), bad_eps), std::invalid_argument);
  LoadTable::Options bad_budget;
  bad_budget.direct_budget = 512;
  EXPECT_THROW(LoadTable(poisson100(), bad_budget), std::invalid_argument);
}

}  // namespace
}  // namespace bevr::kernels
