// value_batch contract: for every utility family (including the
// mixture default path), batched evaluation returns the exact doubles
// the scalar value() produces — the kernels' bit-identity rests on it.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "bevr/utility/mixture.h"
#include "bevr/utility/utility.h"

namespace bevr::utility {
namespace {

// A bandwidth grid crossing every family's interesting boundaries:
// zero, dead zones, the b = 1 knees/steps, and large values.
std::vector<double> probe_grid() {
  std::vector<double> grid = {0.0,  1e-12, 0.01, 0.25, 0.3,  0.49999999,
                              0.5,  0.75,  0.999999999999, 1.0,
                              1.0000000001, 1.5, 2.0, 10.0, 100.0, 1e6};
  for (int i = 1; i <= 400; ++i) grid.push_back(0.007 * i);
  return grid;
}

void expect_batch_matches_scalar(const UtilityFunction& pi) {
  const std::vector<double> grid = probe_grid();
  std::vector<double> batch(grid.size(), -1.0);
  pi.value_batch(grid, batch);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(batch[i], pi.value(grid[i]))
        << pi.name() << " at b=" << grid[i];
  }
}

TEST(ValueBatch, ElasticMatchesScalarBitwise) {
  expect_batch_matches_scalar(Elastic{});
}

TEST(ValueBatch, RigidMatchesScalarBitwise) {
  expect_batch_matches_scalar(Rigid{1.0});
  expect_batch_matches_scalar(Rigid{0.5});
  expect_batch_matches_scalar(Rigid{2.5});
}

TEST(ValueBatch, AdaptiveExpMatchesScalarBitwise) {
  expect_batch_matches_scalar(AdaptiveExp{});
  expect_batch_matches_scalar(AdaptiveExp{2.0});
}

TEST(ValueBatch, PiecewiseLinearMatchesScalarBitwise) {
  expect_batch_matches_scalar(PiecewiseLinear{0.0});
  expect_batch_matches_scalar(PiecewiseLinear{0.3});
  expect_batch_matches_scalar(PiecewiseLinear{0.5});
  expect_batch_matches_scalar(PiecewiseLinear{1.0});  // rigid degenerate
}

TEST(ValueBatch, AlgebraicTailMatchesScalarBitwise) {
  expect_batch_matches_scalar(AlgebraicTail{1.0});
  expect_batch_matches_scalar(AlgebraicTail{2.0});
}

TEST(ValueBatch, MixtureUsesTheDefaultLoopCorrectly) {
  const MixtureUtility mixture({
      {std::make_shared<Rigid>(1.0), 0.25, 1.0},
      {std::make_shared<Elastic>(), 0.75, 2.0},
  });
  expect_batch_matches_scalar(mixture);
}

TEST(ValueBatch, EmptySpansAreANoOp) {
  const Elastic pi;
  pi.value_batch({}, {});
}

TEST(ValueBatch, MismatchedSpansThrowWithoutWriting) {
  const Elastic pi;
  const std::vector<double> in = {1.0, 2.0};
  std::vector<double> out = {-7.0};
  EXPECT_THROW(pi.value_batch(in, out), std::invalid_argument);
  EXPECT_EQ(out[0], -7.0);
}

TEST(ValueBatch, NegativeBandwidthThrowsWithoutWriting) {
  const std::vector<double> in = {1.0, -0.5, 2.0};
  std::vector<double> out(3, -7.0);
  const Rigid rigid{1.0};
  EXPECT_THROW(rigid.value_batch(in, out), std::invalid_argument);
  const AdaptiveExp adaptive;
  EXPECT_THROW(adaptive.value_batch(in, out), std::invalid_argument);
  for (const double v : out) EXPECT_EQ(v, -7.0);
}

}  // namespace
}  // namespace bevr::utility
