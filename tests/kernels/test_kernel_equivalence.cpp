// The kernels' headline guarantee: a SweepEvaluator reproduces the
// scalar VariableLoadModel bit-for-bit — per accessor, per grid row,
// and end-to-end through the runner for every load × utility pairing
// the built-in registry exercises, at any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bevr/core/variable_load.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"
#include "bevr/kernels/sweep_evaluator.h"
#include "bevr/runner/runner.h"
#include "bevr/utility/utility.h"

namespace bevr::kernels {
namespace {

struct NamedLoad {
  std::string name;
  std::shared_ptr<const dist::DiscreteLoad> load;
};

struct NamedUtility {
  std::string name;
  std::shared_ptr<const utility::UtilityFunction> pi;
};

std::vector<NamedLoad> paper_loads() {
  return {
      {"poisson", std::make_shared<dist::PoissonLoad>(100.0)},
      {"exponential", std::make_shared<dist::ExponentialLoad>(
                          dist::ExponentialLoad::with_mean(100.0))},
      {"algebraic", std::make_shared<dist::AlgebraicLoad>(
                        dist::AlgebraicLoad::with_mean(3.0, 100.0))},
  };
}

std::vector<NamedUtility> paper_utilities() {
  return {
      {"rigid", std::make_shared<utility::Rigid>(1.0)},
      {"adaptive", std::make_shared<utility::AdaptiveExp>()},
      {"piecewise", std::make_shared<utility::PiecewiseLinear>(0.5)},
      {"elastic", std::make_shared<utility::Elastic>()},
      {"algebraic_tail", std::make_shared<utility::AlgebraicTail>(2.0)},
  };
}

std::vector<double> capacity_grid() {
  std::vector<double> grid;
  for (int i = 0; i < 12; ++i) grid.push_back(20.0 + 27.5 * i);
  return grid;
}

TEST(KernelEquivalence, PointApiIsBitIdenticalForEveryPairing) {
  for (const auto& [load_name, load] : paper_loads()) {
    for (const auto& [util_name, pi] : paper_utilities()) {
      const auto model =
          std::make_shared<core::VariableLoadModel>(load, pi);
      const SweepEvaluator fast(model);
      for (const double c : capacity_grid()) {
        const std::string where =
            load_name + " x " + util_name + " at C=" + std::to_string(c);
        ASSERT_EQ(fast.k_max(c), model->k_max(c)) << where;
        ASSERT_EQ(fast.best_effort(c), model->best_effort(c)) << where;
        ASSERT_EQ(fast.reservation(c), model->reservation(c)) << where;
        ASSERT_EQ(fast.total_best_effort(c), model->total_best_effort(c))
            << where;
        ASSERT_EQ(fast.total_reservation(c), model->total_reservation(c))
            << where;
        ASSERT_EQ(fast.performance_gap(c), model->performance_gap(c))
            << where;
        ASSERT_EQ(fast.blocking_fraction(c), model->blocking_fraction(c))
            << where;
      }
    }
  }
}

TEST(KernelEquivalence, BandwidthGapIsBitIdentical) {
  // The root solve composes dozens of B() probes; identical operands at
  // every iterate means identical iterates, so the gap matches exactly.
  const std::vector<NamedLoad> loads = paper_loads();
  const std::vector<NamedUtility> utils = paper_utilities();
  const std::vector<std::pair<std::size_t, std::size_t>> picks = {
      {0, 0},  // poisson x rigid (figure 2)
      {1, 1},  // exponential x adaptive (figure 3)
      {2, 0},  // algebraic x rigid (figure 4)
  };
  for (const auto& [li, ui] : picks) {
    const auto model = std::make_shared<core::VariableLoadModel>(
        loads[li].load, utils[ui].pi);
    const SweepEvaluator fast(model);
    for (const double c : {60.0, 120.0, 240.0}) {
      ASSERT_EQ(fast.bandwidth_gap(c), model->bandwidth_gap(c))
          << loads[li].name << " x " << utils[ui].name << " at C=" << c;
    }
  }
}

TEST(KernelEquivalence, EvaluateGridMatchesThePointApi) {
  const auto model = std::make_shared<core::VariableLoadModel>(
      paper_loads()[0].load, paper_utilities()[1].pi);
  const SweepEvaluator fast(model);
  const std::vector<double> grid = capacity_grid();
  const auto rows = fast.evaluate_grid(grid, /*with_bandwidth_gap=*/false);
  ASSERT_EQ(rows.size(), grid.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double c = grid[i];
    EXPECT_EQ(rows[i].capacity, c);
    EXPECT_EQ(rows[i].best_effort, model->best_effort(c));
    EXPECT_EQ(rows[i].reservation, model->reservation(c));
    EXPECT_EQ(rows[i].performance_gap, model->performance_gap(c));
    EXPECT_EQ(rows[i].blocking, model->blocking_fraction(c));
    const auto kmax = model->k_max(c);
    EXPECT_EQ(rows[i].k_max,
              kmax ? static_cast<double>(*kmax) : -1.0);
  }
}

TEST(KernelEquivalence, ElasticGridRowsCarryTheSentinel) {
  const auto model = std::make_shared<core::VariableLoadModel>(
      paper_loads()[1].load, paper_utilities()[3].pi);
  const SweepEvaluator fast(model);
  const std::vector<double> grid = {50.0, 100.0, 200.0};
  for (const auto& row : fast.evaluate_grid(grid, false)) {
    EXPECT_EQ(row.k_max, -1.0);
  }
}

// ---------------------------------------------------------------------
// Runner-level: kernels on vs off produce identical rows for every
// (model, load, utility) pairing in the built-in registry, at 1/4/7
// threads, over shrunken grids.

std::vector<std::string> data_lines(const std::string& payload) {
  std::vector<std::string> lines;
  std::istringstream stream(payload);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.find("\"type\":\"row\"") != std::string::npos) {
      lines.push_back(line);
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::string run_jsonl(const runner::ScenarioSpec& spec, unsigned threads,
                      bool use_kernels) {
  std::ostringstream out;
  runner::JsonlSink sink(out);
  runner::RunOptions options;
  options.threads = threads;
  options.base_seed = 42;
  options.use_kernels = use_kernels;
  runner::run_scenario(spec, options, sink);
  return out.str();
}

// Every distinct (model, load, utility) pairing the registry runs
// through a kernels-backed plan, with its grid shrunk for test budget.
std::vector<runner::ScenarioSpec> shrunken_registry_pairings() {
  std::vector<runner::ScenarioSpec> specs;
  std::set<std::string> seen;
  for (const auto& spec : runner::ScenarioRegistry::builtin().all()) {
    if (spec.model == runner::ModelKind::kContinuum) continue;  // no kernels
    const std::string key = to_string(spec.model) + "|" +
                            to_string(spec.load) + "|" +
                            std::to_string(spec.load_param) + "|" +
                            to_string(spec.util) + "|" +
                            std::to_string(spec.util_param);
    if (!seen.insert(key).second) continue;
    runner::ScenarioSpec small = spec;
    small.name = "eq_" + std::to_string(specs.size());
    small.grid.points = 4;
    if (small.model == runner::ModelKind::kSimulation) {
      small.sim_horizon = 300.0;
      small.sim_warmup = 50.0;
    }
    if (small.model == runner::ModelKind::kAdmission) {
      small.admission.trace.horizon = 150.0;
      small.admission.warmup = 20.0;
    }
    specs.push_back(std::move(small));
  }
  return specs;
}

TEST(KernelEquivalence, RunnerRowsMatchForEveryRegistryPairing) {
  const auto specs = shrunken_registry_pairings();
  ASSERT_FALSE(specs.empty());
  for (const auto& spec : specs) {
    const auto scalar = data_lines(run_jsonl(spec, 1, false));
    ASSERT_EQ(scalar.size(), static_cast<std::size_t>(spec.grid.points))
        << spec.name;
    for (const unsigned threads : {1u, 4u, 7u}) {
      EXPECT_EQ(data_lines(run_jsonl(spec, threads, true)), scalar)
          << spec.name << " with " << threads << " threads, "
          << to_string(spec.model) << " " << to_string(spec.load) << " "
          << to_string(spec.util);
    }
  }
}

}  // namespace
}  // namespace bevr::kernels
