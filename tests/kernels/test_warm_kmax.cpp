// WarmKmax contract: identical answers to core::k_max on any call
// pattern (warm ascending sweeps, cold jumps, repeats), plus the
// monotonicity property the warm start relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bevr/core/fixed_load.h"
#include "bevr/kernels/warm_kmax.h"
#include "bevr/utility/mixture.h"
#include "bevr/utility/utility.h"

namespace bevr::kernels {
namespace {

std::vector<double> ascending_grid(double lo, double hi, int points) {
  std::vector<double> grid;
  const double step = (hi - lo) / (points - 1);
  for (int i = 0; i < points; ++i) grid.push_back(lo + step * i);
  return grid;
}

std::vector<std::shared_ptr<const utility::UtilityFunction>>
inelastic_families() {
  return {
      std::make_shared<utility::Rigid>(1.0),
      std::make_shared<utility::Rigid>(0.37),
      std::make_shared<utility::AdaptiveExp>(),
      std::make_shared<utility::PiecewiseLinear>(0.5),
      std::make_shared<utility::PiecewiseLinear>(1.0),
      std::make_shared<utility::AlgebraicTail>(2.0),
  };
}

TEST(WarmKmax, MatchesCoreOnSortedGrids) {
  for (const auto& pi : inelastic_families()) {
    const WarmKmax warm;
    for (const double c : ascending_grid(0.5, 500.0, 173)) {
      const auto expected = core::k_max(*pi, c);
      const auto actual = warm.k_max(*pi, c);
      ASSERT_EQ(actual, expected) << pi->name() << " at C=" << c;
    }
  }
}

TEST(WarmKmax, MatchesCoreOnOutOfOrderProbes) {
  // Welfare refinement probes jump around; warmth must never leak into
  // wrong answers when capacity decreases.
  const auto pi = std::make_shared<utility::AdaptiveExp>();
  const WarmKmax warm;
  const std::vector<double> probes = {400.0, 10.0, 250.0, 249.5, 251.0,
                                      3.0,   800.0, 799.0, 800.0, 1.0};
  for (const double c : probes) {
    ASSERT_EQ(warm.k_max(*pi, c), core::k_max(*pi, c)) << "C=" << c;
  }
}

TEST(WarmKmax, KmaxIsMonotoneNondecreasingOnSortedGrids) {
  // The invariant the warm start rests on: raising capacity never
  // lowers the admission threshold.
  for (const auto& pi : inelastic_families()) {
    const WarmKmax warm;
    std::int64_t previous = 0;
    for (const double c : ascending_grid(0.25, 600.0, 241)) {
      const auto k = warm.k_max(*pi, c);
      if (!k) continue;  // below the first admissible capacity
      ASSERT_GE(*k, previous) << pi->name() << " at C=" << c;
      previous = *k;
    }
  }
}

TEST(WarmKmax, ElasticHasNoThreshold) {
  const utility::Elastic elastic;
  const WarmKmax warm;
  EXPECT_EQ(warm.k_max(elastic, 100.0), std::nullopt);
}

TEST(WarmKmax, MixturesDelegateToTheExhaustiveScan) {
  const utility::MixtureUtility mixture({
      {std::make_shared<utility::Rigid>(1.0), 0.5, 1.0},
      {std::make_shared<utility::Rigid>(1.0), 0.5, 3.0},
  });
  ASSERT_FALSE(mixture.unimodal_total_utility());
  const WarmKmax warm;
  for (const double c : ascending_grid(2.0, 120.0, 31)) {
    ASSERT_EQ(warm.k_max(mixture, c), core::k_max(mixture, c)) << "C=" << c;
  }
}

TEST(WarmKmax, SeparateInstancesDoNotShareWarmth) {
  // Two evaluators with different utilities interleaved on one thread:
  // the id-keyed slot must keep them from poisoning each other.
  const utility::AdaptiveExp adaptive;
  const utility::AlgebraicTail algebraic{2.0};
  const WarmKmax warm_a;
  const WarmKmax warm_b;
  for (const double c : ascending_grid(5.0, 300.0, 41)) {
    ASSERT_EQ(warm_a.k_max(adaptive, c), core::k_max(adaptive, c));
    ASSERT_EQ(warm_b.k_max(algebraic, c), core::k_max(algebraic, c));
  }
}

TEST(WarmKmax, RejectsNonpositiveCapacity) {
  const utility::Rigid rigid{1.0};
  const WarmKmax warm;
  EXPECT_THROW((void)warm.k_max(rigid, 0.0), std::invalid_argument);
  EXPECT_THROW((void)warm.k_max(rigid, -1.0), std::invalid_argument);
}

}  // namespace
}  // namespace bevr::kernels
