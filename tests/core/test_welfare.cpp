#include "bevr/core/welfare.h"

#include <cmath>
#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "bevr/core/continuum.h"
#include "bevr/core/variable_load.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"
#include "bevr/utility/utility.h"

namespace bevr::core {
namespace {

TEST(MaximizeWelfare, QuadraticUtilityHasAnalyticOptimum) {
  // V(C) = 10C − C²/2: optimum at C = 10 − p.
  auto v = [](double c) { return 10.0 * c - 0.5 * c * c; };
  const auto point = maximize_welfare(v, 2.0, 10.0);
  EXPECT_NEAR(point.capacity, 8.0, 1e-4);
  EXPECT_NEAR(point.welfare, v(8.0) - 2.0 * 8.0, 1e-6);
}

TEST(MaximizeWelfare, ExpensiveBandwidthMeansBuildNothing) {
  auto v = [](double c) { return std::min(c, 1.0); };  // utility caps at 1
  const auto point = maximize_welfare(v, 2.0, 1.0);    // price > marginal
  EXPECT_EQ(point.capacity, 0.0);
  EXPECT_EQ(point.welfare, 0.0);
}

TEST(MaximizeWelfare, ParameterValidation) {
  auto v = [](double c) { return c; };
  EXPECT_THROW((void)maximize_welfare(v, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)maximize_welfare(v, 1.0, 0.0), std::invalid_argument);
}

TEST(MaximizeWelfare, MatchesContinuumClosedFormExponentialRigid) {
  // The generic optimiser must reproduce the Lambert-W closed form.
  const ExponentialRigidContinuum model(0.01);
  auto v = [&model](double c) { return model.total_best_effort(c); };
  for (const double p : {0.05, 0.1, 0.2, 0.3}) {
    const auto point = maximize_welfare(v, p, 100.0, 2048);
    EXPECT_NEAR(point.welfare, model.welfare_best_effort(p),
                1e-3 * (1.0 + model.welfare_best_effort(p)))
        << "p=" << p;
    if (model.capacity_best_effort(p) > 0.0) {
      EXPECT_NEAR(point.capacity, model.capacity_best_effort(p),
                  0.02 * model.capacity_best_effort(p) + 0.5)
          << "p=" << p;
    }
  }
}

TEST(MaximizeWelfare, MatchesContinuumClosedFormExponentialReservation) {
  const ExponentialRigidContinuum model(0.01);
  auto v = [&model](double c) { return model.total_reservation(c); };
  for (const double p : {0.01, 0.1, 0.5}) {
    const auto point = maximize_welfare(v, p, 100.0, 2048);
    EXPECT_NEAR(point.welfare, model.welfare_reservation(p),
                1e-3 * (1.0 + model.welfare_reservation(p)))
        << "p=" << p;
  }
}

TEST(EqualizingPriceRatio, ClosedFormAlgebraicRigid) {
  // γ(p) = (z−1)^{1/(z−2)} = 2 at z = 3, independent of p.
  const AlgebraicRigidContinuum model(3.0);
  auto wb = [&model](double p) { return model.welfare_best_effort(p); };
  auto wr = [&model](double p) { return model.welfare_reservation(p); };
  for (const double p : {0.001, 0.01, 0.1}) {
    const double gamma = equalizing_price_ratio(wb, wr, p);
    EXPECT_NEAR(gamma, 2.0, 1e-6) << "p=" << p;
    EXPECT_NEAR(model.equalizing_price_ratio(p), 2.0, 1e-9);
  }
}

TEST(EqualizingPriceRatio, ExponentialConvergesToOne) {
  // Paper §4: for exponential loads γ(p) → 1 as p → 0.
  const ExponentialRigidContinuum model(0.01);
  const double g_hi = model.equalizing_price_ratio(0.2);
  const double g_md = model.equalizing_price_ratio(1e-4);
  const double g_lo = model.equalizing_price_ratio(1e-10);
  EXPECT_GT(g_hi, g_md);
  EXPECT_GT(g_md, g_lo);
  EXPECT_GT(g_lo, 1.0);
  // Convergence is logarithmic (paper: γ ≈ 1 + ln(−ln p)/(−ln p)): at
  // p = 1e-10 the approximation predicts ≈ 1.14.
  const double l = std::log(1e10);
  EXPECT_NEAR(g_lo, 1.0 + std::log(l) / l, 0.03);
}

TEST(EqualizingPriceRatio, GammaIsAtLeastOne) {
  const ExponentialRigidContinuum model(0.01);
  auto wb = [&model](double p) { return model.welfare_best_effort(p); };
  auto wr = [&model](double p) { return model.welfare_reservation(p); };
  for (const double p : {1e-6, 1e-3, 0.1, 0.3}) {
    EXPECT_GE(equalizing_price_ratio(wb, wr, p), 1.0) << "p=" << p;
  }
}

TEST(EqualizingPriceRatio, DefinitionHolds) {
  // W_R(γ·p) = W_B(p) by construction.
  const ExponentialAdaptiveContinuum model(0.01, 0.5);
  const double p = 0.05;
  const double gamma = model.equalizing_price_ratio(p);
  EXPECT_NEAR(model.welfare_reservation(gamma * p),
              model.welfare_best_effort(p),
              1e-8 * (1.0 + model.welfare_best_effort(p)));
}

TEST(WelfareAnalysis, DiscretePoissonRigidRatioInPaperRange) {
  // Paper §4: Poisson + rigid, γ(p) between roughly 1.1 and 1.2 over
  // most of the price range.
  const auto load = std::make_shared<dist::PoissonLoad>(100.0);
  const auto pi = std::make_shared<utility::Rigid>(1.0);
  const auto model = std::make_shared<VariableLoadModel>(load, pi);
  const WelfareAnalysis analysis(
      [model](double c) { return model->total_best_effort(c); },
      [model](double c) { return model->total_reservation(c); }, 100.0);
  const double gamma = analysis.price_ratio(0.1);
  EXPECT_GT(gamma, 1.05);
  EXPECT_LT(gamma, 1.30);
}

TEST(WelfareAnalysis, DiscretePoissonAdaptiveRatioNearOne) {
  // Paper §4: Poisson + adaptive, the two architectures are nearly
  // equivalent — γ(p) ≈ 1 for all but the highest prices.
  const auto load = std::make_shared<dist::PoissonLoad>(100.0);
  const auto pi = std::make_shared<utility::AdaptiveExp>();
  const auto model = std::make_shared<VariableLoadModel>(load, pi);
  const WelfareAnalysis analysis(
      [model](double c) { return model->total_best_effort(c); },
      [model](double c) { return model->total_reservation(c); }, 100.0);
  const double gamma = analysis.price_ratio(0.01);
  EXPECT_GE(gamma, 1.0);
  EXPECT_LT(gamma, 1.05);
}

TEST(WelfareAnalysis, ProvisioningDecreasesWithPrice) {
  const auto load = std::make_shared<dist::ExponentialLoad>(
      dist::ExponentialLoad::with_mean(100.0));
  const auto pi = std::make_shared<utility::Rigid>(1.0);
  const auto model = std::make_shared<VariableLoadModel>(load, pi);
  const WelfareAnalysis analysis(
      [model](double c) { return model->total_best_effort(c); },
      [model](double c) { return model->total_reservation(c); }, 100.0);
  const auto cheap = analysis.reservation(0.01);
  const auto costly = analysis.reservation(0.3);
  EXPECT_GT(cheap.capacity, costly.capacity);
  EXPECT_GT(cheap.welfare, costly.welfare);
}

}  // namespace
}  // namespace bevr::core
