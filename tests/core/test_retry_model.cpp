#include "bevr/core/retry.h"

#include <cmath>
#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"
#include "bevr/utility/utility.h"

namespace bevr::core {
namespace {

using dist::AlgebraicLoad;
using dist::DiscreteLoad;
using dist::ExponentialLoad;
using dist::PoissonLoad;

RetryModel::LoadFactory poisson_family() {
  return [](double mean) -> std::shared_ptr<const DiscreteLoad> {
    return std::make_shared<PoissonLoad>(mean);
  };
}

RetryModel::LoadFactory exponential_family() {
  return [](double mean) -> std::shared_ptr<const DiscreteLoad> {
    return std::make_shared<ExponentialLoad>(
        ExponentialLoad::with_mean(mean));
  };
}

RetryModel::LoadFactory algebraic_family(double z) {
  return [z](double mean) -> std::shared_ptr<const DiscreteLoad> {
    return std::make_shared<AlgebraicLoad>(AlgebraicLoad::with_mean(z, mean));
  };
}

TEST(RetryModel, ConstructionChecks) {
  const auto pi = std::make_shared<utility::Rigid>(1.0);
  EXPECT_THROW(RetryModel(nullptr, 100.0, pi, 0.1), std::invalid_argument);
  EXPECT_THROW(RetryModel(poisson_family(), 0.0, pi, 0.1),
               std::invalid_argument);
  EXPECT_THROW(RetryModel(poisson_family(), 100.0, nullptr, 0.1),
               std::invalid_argument);
  EXPECT_THROW(RetryModel(poisson_family(), 100.0, pi, -0.1),
               std::invalid_argument);
}

TEST(RetryModel, NoBlockingMeansNoInflation) {
  // At huge capacity Poisson(100) has essentially zero blocking.
  const RetryModel model(poisson_family(), 100.0,
                         std::make_shared<utility::Rigid>(1.0), 0.1);
  const auto solution = model.solve(400.0);
  ASSERT_TRUE(solution.feasible);
  EXPECT_NEAR(solution.inflated_mean, 100.0, 0.2);
  EXPECT_NEAR(solution.retries, 0.0, 2e-3);
  EXPECT_NEAR(solution.utility, 1.0, 1e-6);
}

TEST(RetryModel, ConservationLawHoldsAtFixedPoint) {
  // L̂·(1−θ) = L at the solution.
  const RetryModel model(exponential_family(), 100.0,
                         std::make_shared<utility::Rigid>(1.0), 0.1);
  for (const double c : {150.0, 200.0, 400.0}) {
    const auto solution = model.solve(c);
    ASSERT_TRUE(solution.feasible) << "C=" << c;
    EXPECT_NEAR(solution.inflated_mean * (1.0 - solution.blocking), 100.0,
                1e-5)
        << "C=" << c;
  }
}

TEST(RetryModel, InfeasibleBelowBaseLoad) {
  // With C well below k̄ the reservation system cannot carry the
  // arrival mass no matter how much retrying inflates the offered load.
  const RetryModel model(exponential_family(), 100.0,
                         std::make_shared<utility::Rigid>(1.0), 0.1);
  const auto solution = model.solve(50.0);
  EXPECT_FALSE(solution.feasible);
  EXPECT_TRUE(std::isinf(model.reservation(50.0)));
  EXPECT_LT(model.reservation(50.0), 0.0);
}

TEST(RetryModel, LargeCapacityUtilityIsOneMinusAlphaTheta) {
  // Paper §5.2: for large C, R̃(C) ≈ 1 − α·θ (the only disutility is
  // the retry penalty).
  const double alpha = 0.1;
  const RetryModel model(exponential_family(), 100.0,
                         std::make_shared<utility::Rigid>(1.0), alpha);
  const double c = 600.0;
  const auto solution = model.solve(c);
  ASSERT_TRUE(solution.feasible);
  EXPECT_NEAR(solution.utility, 1.0 - alpha * solution.blocking, 5e-3);
}

TEST(RetryModel, RetriesRaiseUtilityVersusBlockingWhenPenaltySmall) {
  // With a small α, getting in late beats never getting in: R̃ ≥ R.
  const auto pi = std::make_shared<utility::Rigid>(1.0);
  const RetryModel with_retries(exponential_family(), 100.0, pi, 0.01);
  const VariableLoadModel without(
      exponential_family()(100.0), pi);
  for (const double c : {150.0, 250.0, 400.0}) {
    EXPECT_GT(with_retries.reservation(c), without.reservation(c))
        << "C=" << c;
  }
}

TEST(RetryModel, LargePenaltyMakesRetryingWorseThanBlocking) {
  // With α = 1 every retry costs a full flow's utility: R̃ < R basic.
  const auto pi = std::make_shared<utility::Rigid>(1.0);
  const RetryModel harsh(exponential_family(), 100.0, pi, 1.0);
  const VariableLoadModel basic(exponential_family()(100.0), pi);
  const double c = 150.0;
  EXPECT_LT(harsh.reservation(c), basic.reservation(c) + 1e-9);
}

TEST(RetryModel, PaperQuotedAlgebraicAdaptiveGap) {
  // §5.2: algebraic + adaptive with α = 0.1: δ(4k̄) ≈ .027 with
  // retries versus ≈ .0025 without — a ~10x amplification at large C.
  const auto pi = std::make_shared<utility::AdaptiveExp>();
  const RetryModel with_retries(algebraic_family(3.0), 100.0, pi, 0.1);
  const VariableLoadModel without(algebraic_family(3.0)(100.0), pi);
  const double c = 400.0;
  const double gap_with = with_retries.performance_gap(c);
  const double gap_without = without.performance_gap(c);
  // Shape claim: retries amplify the large-C gap by roughly an order
  // of magnitude. (The paper reads .027 vs .0025 off its own plots;
  // our fixed point yields ~.09 vs ~.007 — same direction and ratio.
  // EXPERIMENTS.md records both.)
  EXPECT_GT(gap_with, 3.0 * gap_without);
  EXPECT_GT(gap_with, 0.02);
  EXPECT_LT(gap_with, 0.15);
  EXPECT_LT(gap_without, 0.012);
}

TEST(RetryModel, BandwidthGapDefinition) {
  const RetryModel model(exponential_family(), 100.0,
                         std::make_shared<utility::AdaptiveExp>(), 0.1);
  const double c = 200.0;
  const double delta = model.bandwidth_gap(c);
  EXPECT_NEAR(model.best_effort(c + delta), model.reservation(c), 1e-6);
}

TEST(RetryModel, BestEffortUnaffectedByRetries) {
  const auto pi = std::make_shared<utility::AdaptiveExp>();
  const RetryModel model(exponential_family(), 100.0, pi, 0.1);
  const VariableLoadModel basic(exponential_family()(100.0), pi);
  for (const double c : {50.0, 150.0, 300.0}) {
    EXPECT_DOUBLE_EQ(model.best_effort(c), basic.best_effort(c));
  }
}

TEST(RetryModel, PoissonMinimallyAffected) {
  // §5.2: "the Poisson and exponential cases show minimal effects of
  // retrying" — blocking is tiny once C > k̄ + a few σ.
  const auto pi = std::make_shared<utility::AdaptiveExp>();
  const RetryModel model(poisson_family(), 100.0, pi, 0.1);
  const VariableLoadModel basic(poisson_family()(100.0), pi);
  const double c = 200.0;
  EXPECT_NEAR(model.reservation(c), basic.reservation(c), 1e-4);
}

}  // namespace
}  // namespace bevr::core
