#include "bevr/core/continuum.h"

#include <cmath>
#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "bevr/dist/exponential_density.h"
#include "bevr/dist/pareto_density.h"
#include "bevr/utility/utility.h"

namespace bevr::core {
namespace {

constexpr double kBeta = 0.01;  // mean 100, the paper's k̄

NumericContinuumModel numeric_exponential_rigid() {
  return NumericContinuumModel(
      std::make_shared<dist::ExponentialDensity>(kBeta),
      std::make_shared<utility::Rigid>(1.0));
}

// Every closed form is validated against quadrature over the defining
// integrals — this is the core re-derivation check for the OCR-damaged
// §3.2 formulas.

TEST(ExponentialRigid, ClosedFormMatchesQuadrature) {
  const ExponentialRigidContinuum closed(kBeta);
  const auto numeric = numeric_exponential_rigid();
  for (const double c : {10.0, 50.0, 100.0, 200.0, 400.0}) {
    EXPECT_NEAR(closed.best_effort(c), numeric.best_effort(c), 1e-7)
        << "C=" << c;
    EXPECT_NEAR(closed.reservation(c), numeric.reservation(c), 1e-7)
        << "C=" << c;
  }
}

TEST(ExponentialRigid, PaperFormulas) {
  // V_R = (1/β)(1−e^{−βC});  V_B = (1/β)(1−e^{−βC}(1+βC));  δ = βCe^{−βC}.
  const ExponentialRigidContinuum model(kBeta);
  const double c = 150.0;
  EXPECT_NEAR(model.total_reservation(c),
              (1.0 - std::exp(-kBeta * c)) / kBeta, 1e-10);
  EXPECT_NEAR(model.performance_gap(c),
              kBeta * c * std::exp(-kBeta * c), 1e-12);
}

TEST(ExponentialRigid, GapSolvesPaperEquation) {
  // βΔ = ln(1 + β(C+Δ)).
  const ExponentialRigidContinuum model(kBeta);
  for (const double c : {100.0, 400.0, 1600.0}) {
    const double delta = model.bandwidth_gap(c);
    EXPECT_NEAR(kBeta * delta, std::log1p(kBeta * (c + delta)), 1e-9);
  }
}

TEST(ExponentialRigid, GapGrowsLogarithmically) {
  // Δ(C) ~ ln(βC)/β: doubling C adds ≈ ln(2)/β.
  const ExponentialRigidContinuum model(kBeta);
  const double d1 = model.bandwidth_gap(10'000.0);
  const double d2 = model.bandwidth_gap(20'000.0);
  EXPECT_NEAR(d2 - d1, std::log(2.0) / kBeta, 3.0);
}

TEST(ExponentialAdaptive, ClosedFormMatchesQuadrature) {
  const double a = 0.5;
  const ExponentialAdaptiveContinuum closed(kBeta, a);
  const NumericContinuumModel numeric(
      std::make_shared<dist::ExponentialDensity>(kBeta),
      std::make_shared<utility::PiecewiseLinear>(a));
  for (const double c : {10.0, 50.0, 100.0, 200.0, 400.0}) {
    EXPECT_NEAR(closed.best_effort(c), numeric.best_effort(c), 1e-7)
        << "C=" << c;
    EXPECT_NEAR(closed.reservation(c), numeric.reservation(c), 1e-7)
        << "C=" << c;
  }
}

TEST(ExponentialAdaptive, GapConvergesToConstant) {
  // Paper §3.3: Δ(∞) = −ln(1−a)/β — a constant, unlike the rigid case.
  const double a = 0.5;
  const ExponentialAdaptiveContinuum model(kBeta, a);
  const double limit = model.bandwidth_gap_limit();
  EXPECT_NEAR(limit, -std::log1p(-a) / kBeta, 1e-12);
  EXPECT_NEAR(model.bandwidth_gap(2'000.0), limit, 0.5);
  EXPECT_NEAR(model.bandwidth_gap(10'000.0), limit, 0.05);
}

TEST(ExponentialAdaptive, DeltaFormula) {
  // δ(C) = (a/(1−a))(e^{−βC} − e^{−βC/a}).
  const double a = 0.3;
  const ExponentialAdaptiveContinuum model(kBeta, a);
  const double c = 120.0;
  const double expected = a / (1.0 - a) *
                          (std::exp(-kBeta * c) - std::exp(-kBeta * c / a));
  EXPECT_NEAR(model.performance_gap(c), expected, 1e-12);
}

TEST(AlgebraicRigid, ClosedFormMatchesQuadrature) {
  const double z = 3.0;
  const AlgebraicRigidContinuum closed(z);
  const NumericContinuumModel numeric(std::make_shared<dist::ParetoDensity>(z),
                                      std::make_shared<utility::Rigid>(1.0));
  for (const double c : {2.0, 5.0, 20.0, 100.0}) {
    EXPECT_NEAR(closed.best_effort(c), numeric.best_effort(c), 1e-7)
        << "C=" << c;
    EXPECT_NEAR(closed.reservation(c), numeric.reservation(c), 1e-7)
        << "C=" << c;
  }
}

TEST(AlgebraicRigid, ExactLinearGap) {
  // Δ(C) = C((z−1)^{1/(z−2)} − 1); for z = 3 this is exactly C.
  const AlgebraicRigidContinuum model(3.0);
  for (const double c : {2.0, 10.0, 100.0, 1e4}) {
    EXPECT_NEAR(model.bandwidth_gap(c), c, c * 1e-12) << "C=" << c;
  }
}

TEST(AlgebraicRigid, GapDefinitionHolds) {
  const AlgebraicRigidContinuum model(2.5);
  for (const double c : {3.0, 30.0, 300.0}) {
    const double delta = model.bandwidth_gap(c);
    EXPECT_NEAR(model.best_effort(c + delta), model.reservation(c), 1e-12);
  }
}

TEST(AlgebraicAdaptive, ClosedFormMatchesQuadrature) {
  const double z = 3.0, a = 0.5;
  const AlgebraicAdaptiveContinuum closed(z, a);
  const NumericContinuumModel numeric(
      std::make_shared<dist::ParetoDensity>(z),
      std::make_shared<utility::PiecewiseLinear>(a));
  for (const double c : {2.0, 5.0, 20.0, 100.0, 500.0}) {
    EXPECT_NEAR(closed.best_effort(c), numeric.best_effort(c), 1e-6)
        << "C=" << c;
    EXPECT_NEAR(closed.reservation(c), numeric.reservation(c), 1e-6)
        << "C=" << c;
  }
}

TEST(AlgebraicAdaptive, GapStillLinearButSmaller) {
  // Adaptivity reduces the slope but Δ remains ∝ C (the paper's key
  // algebraic-case message).
  const AlgebraicAdaptiveContinuum adaptive(3.0, 0.5);
  const AlgebraicRigidContinuum rigid(3.0);
  const double slope_adaptive = adaptive.bandwidth_gap(1e4) / 1e4;
  const double slope_rigid = rigid.bandwidth_gap(1e4) / 1e4;
  EXPECT_GT(slope_adaptive, 0.0);
  EXPECT_LT(slope_adaptive, slope_rigid);
  // Exact: slope = (1 + a(1−a^{z−2})/(1−a))^{1/(z−2)} − 1 = 0.5^... :
  const double expected =
      std::pow(1.0 + 0.5 * (1.0 - 0.5) / 0.5, 1.0) - 1.0;  // z=3: g−1
  EXPECT_NEAR(slope_adaptive, expected, 1e-9);
}

TEST(AlgebraicTailUtility, ClosedFormMatchesQuadrature) {
  const double z = 3.5, r = 1.0;
  const AlgebraicTailUtilityContinuum closed(z, r);
  const NumericContinuumModel numeric(
      std::make_shared<dist::ParetoDensity>(z),
      std::make_shared<utility::AlgebraicTail>(r));
  for (const double c : {3.0, 10.0, 50.0, 200.0}) {
    EXPECT_NEAR(closed.best_effort(c), numeric.best_effort(c), 1e-6)
        << "C=" << c;
    EXPECT_NEAR(closed.reservation(c), numeric.reservation(c), 1e-6)
        << "C=" << c;
  }
}

TEST(AlgebraicTailUtility, GapRegimesFromPaper) {
  // §3.3: r > z−2 → Δ ~ C; z−3 < r < z−2 → sublinear increase;
  // r < z−3 → Δ asymptotically decreases.
  const double z = 4.0;
  {
    const AlgebraicTailUtilityContinuum fast(z, 3.0);  // r > z−2 = 2
    const double g1 = fast.bandwidth_gap(1'000.0);
    const double g2 = fast.bandwidth_gap(2'000.0);
    EXPECT_NEAR(g2 / g1, 2.0, 0.2);  // linear
  }
  {
    const AlgebraicTailUtilityContinuum mid(z, 1.5);  // z−3 < r < z−2
    const double g1 = mid.bandwidth_gap(1'000.0);
    const double g2 = mid.bandwidth_gap(2'000.0);
    EXPECT_GT(g2, g1);              // still increasing
    EXPECT_LT(g2 / g1, 1.9);        // but sublinearly
  }
  {
    const AlgebraicTailUtilityContinuum slow(z, 0.5);  // r < z−3
    const double g1 = slow.bandwidth_gap(1'000.0);
    const double g2 = slow.bandwidth_gap(4'000.0);
    EXPECT_LT(g2, g1);  // asymptotically decreasing
  }
}

TEST(ContinuumModels, ReservationDominanceEverywhere) {
  const ExponentialRigidContinuum er(kBeta);
  const ExponentialAdaptiveContinuum ea(kBeta, 0.5);
  const AlgebraicRigidContinuum ar(3.0);
  const AlgebraicAdaptiveContinuum aa(3.0, 0.5);
  for (const double c : {1.0, 10.0, 100.0, 1000.0}) {
    for (const ContinuumModel* m :
         {static_cast<const ContinuumModel*>(&er),
          static_cast<const ContinuumModel*>(&ea),
          static_cast<const ContinuumModel*>(&ar),
          static_cast<const ContinuumModel*>(&aa)}) {
      EXPECT_GE(m->reservation(c) + 1e-12, m->best_effort(c))
          << m->name() << " C=" << c;
    }
  }
}

TEST(ContinuumModels, ParameterValidation) {
  EXPECT_THROW(ExponentialRigidContinuum(0.0), std::invalid_argument);
  EXPECT_THROW(ExponentialAdaptiveContinuum(kBeta, 0.0),
               std::invalid_argument);
  EXPECT_THROW(ExponentialAdaptiveContinuum(kBeta, 1.0),
               std::invalid_argument);
  EXPECT_THROW(AlgebraicRigidContinuum(2.0), std::invalid_argument);
  EXPECT_THROW(AlgebraicAdaptiveContinuum(3.0, 1.5), std::invalid_argument);
  EXPECT_THROW(AlgebraicTailUtilityContinuum(3.0, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace bevr::core
