#include "bevr/core/variable_load.h"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"
#include "bevr/utility/utility.h"

namespace bevr::core {
namespace {

using dist::AlgebraicLoad;
using dist::DiscreteLoad;
using dist::ExponentialLoad;
using dist::PoissonLoad;

std::shared_ptr<const DiscreteLoad> make_load(const std::string& kind) {
  if (kind == "poisson") return std::make_shared<PoissonLoad>(100.0);
  if (kind == "exponential") {
    return std::make_shared<ExponentialLoad>(
        ExponentialLoad::with_mean(100.0));
  }
  return std::make_shared<AlgebraicLoad>(AlgebraicLoad::with_mean(3.0, 100.0));
}

std::shared_ptr<const utility::UtilityFunction> make_utility(
    const std::string& kind) {
  if (kind == "rigid") return std::make_shared<utility::Rigid>(1.0);
  return std::make_shared<utility::AdaptiveExp>();
}

TEST(VariableLoadModel, ConstructionChecks) {
  EXPECT_THROW(VariableLoadModel(nullptr, make_utility("rigid")),
               std::invalid_argument);
  EXPECT_THROW(VariableLoadModel(make_load("poisson"), nullptr),
               std::invalid_argument);
  VariableLoadModel::Options bad;
  bad.tail_eps = 0.0;
  EXPECT_THROW(
      VariableLoadModel(make_load("poisson"), make_utility("rigid"), bad),
      std::invalid_argument);
}

TEST(VariableLoadModel, ZeroCapacityGivesZeroUtility) {
  const VariableLoadModel model(make_load("poisson"), make_utility("rigid"));
  EXPECT_EQ(model.best_effort(0.0), 0.0);
  EXPECT_EQ(model.reservation(0.0), 0.0);
  EXPECT_THROW((void)model.best_effort(-1.0), std::invalid_argument);
}

TEST(VariableLoadModel, RigidBestEffortClosedForm) {
  // For rigid b̂=1: B(C) = (1/k̄)·Σ_{k ≤ C} k·P(k).
  const auto load = make_load("poisson");
  const VariableLoadModel model(load, make_utility("rigid"));
  for (const double c : {50.0, 100.0, 130.0}) {
    double direct = 0.0;
    for (std::int64_t k = 1;
         k <= static_cast<std::int64_t>(std::floor(c)); ++k) {
      direct += static_cast<double>(k) * load->pmf(k);
    }
    EXPECT_NEAR(model.best_effort(c), direct / 100.0, 1e-12) << "C=" << c;
  }
}

TEST(VariableLoadModel, RigidReservationClosedForm) {
  // R(C) = (1/k̄)·E[min(K, ⌊C⌋)] for rigid b̂=1.
  const auto load = make_load("exponential");
  const VariableLoadModel model(load, make_utility("rigid"));
  for (const double c : {80.0, 100.0, 250.0}) {
    const auto kmax = static_cast<std::int64_t>(std::floor(c));
    double direct = 0.0;
    for (std::int64_t k = 1; k <= kmax; ++k) {
      direct += static_cast<double>(k) * load->pmf(k);
    }
    direct += static_cast<double>(kmax) * load->tail_above(kmax);
    EXPECT_NEAR(model.reservation(c), direct / 100.0, 1e-11) << "C=" << c;
  }
}

TEST(VariableLoadModel, ElasticReservationEqualsBestEffort) {
  // Elastic utilities: admission control never helps (paper §2).
  const VariableLoadModel model(make_load("poisson"),
                                std::make_shared<utility::Elastic>());
  for (const double c : {30.0, 100.0, 300.0}) {
    EXPECT_DOUBLE_EQ(model.reservation(c), model.best_effort(c));
  }
}

TEST(VariableLoadModel, BandwidthGapDefinition) {
  // Δ(C) satisfies B(C+Δ) = R(C) by definition.
  const VariableLoadModel model(make_load("exponential"),
                                make_utility("adaptive"));
  for (const double c : {50.0, 100.0, 200.0}) {
    const double delta = model.bandwidth_gap(c);
    EXPECT_NEAR(model.best_effort(c + delta), model.reservation(c), 1e-7)
        << "C=" << c;
  }
}

TEST(VariableLoadModel, BlockingFractionMatchesDirectSum) {
  const auto load = make_load("exponential");
  const VariableLoadModel model(load, make_utility("rigid"));
  const double c = 120.0;
  const std::int64_t kmax = 120;
  double direct = 0.0;
  for (std::int64_t k = kmax + 1; k <= 20'000; ++k) {
    direct += load->pmf(k) * static_cast<double>(k - kmax) / 100.0;
  }
  EXPECT_NEAR(model.blocking_fraction(c), direct, 1e-9);
}

TEST(VariableLoadModel, HybridTailMatchesDirectSummation) {
  // Force the integral-tail path with a tiny direct budget and compare
  // against the pure direct evaluation on the algebraic load.
  const auto load = make_load("algebraic");
  const auto pi = make_utility("adaptive");
  VariableLoadModel::Options small_budget;
  small_budget.direct_budget = 2048;
  const VariableLoadModel hybrid(load, pi, small_budget);
  VariableLoadModel::Options big_budget;
  big_budget.direct_budget = 50'000'000;
  const VariableLoadModel direct(load, pi, big_budget);
  for (const double c : {50.0, 100.0, 400.0}) {
    EXPECT_NEAR(hybrid.best_effort(c), direct.best_effort(c), 2e-9)
        << "C=" << c;
    EXPECT_NEAR(hybrid.reservation(c), direct.reservation(c), 2e-9)
        << "C=" << c;
  }
}

// ---------------------------------------------------------------------------
// Property sweeps over the paper's full 6-case grid × capacities.

using GridParam = std::tuple<std::string, std::string, double>;

class ModelGridSweep : public ::testing::TestWithParam<GridParam> {
 protected:
  [[nodiscard]] VariableLoadModel model() const {
    const auto& [load_kind, util_kind, capacity] = GetParam();
    (void)capacity;
    return VariableLoadModel(make_load(load_kind), make_utility(util_kind));
  }
  [[nodiscard]] double capacity() const { return std::get<2>(GetParam()); }
};

// Invariant: reservations never do worse than best effort (paper §3.1:
// R(C) ≥ B(C) always).
TEST_P(ModelGridSweep, ReservationDominatesBestEffort) {
  const auto m = model();
  EXPECT_GE(m.reservation(capacity()) + 1e-12, m.best_effort(capacity()));
}

// Invariant: both utilities lie in [0, 1].
TEST_P(ModelGridSweep, UtilitiesAreNormalised) {
  const auto m = model();
  for (const double v :
       {m.best_effort(capacity()), m.reservation(capacity())}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0 + 1e-12);
  }
}

// Invariant: both curves are nondecreasing in capacity.
TEST_P(ModelGridSweep, MonotoneInCapacity) {
  const auto m = model();
  const double c = capacity();
  EXPECT_LE(m.best_effort(c), m.best_effort(c * 1.1) + 1e-11);
  EXPECT_LE(m.reservation(c), m.reservation(c * 1.1) + 1e-11);
}

// Invariant: the bandwidth gap is consistent with the performance gap
// (δ = 0 ⇒ Δ = 0; δ > tolerance ⇒ Δ > 0).
TEST_P(ModelGridSweep, GapsAreConsistent) {
  const auto m = model();
  const double delta = m.performance_gap(capacity());
  const double gap = m.bandwidth_gap(capacity());
  EXPECT_GE(gap, 0.0);
  if (delta > 1e-9) {
    EXPECT_GT(gap, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, ModelGridSweep,
    ::testing::Combine(::testing::Values("poisson", "exponential",
                                         "algebraic"),
                       ::testing::Values("rigid", "adaptive"),
                       ::testing::Values(25.0, 75.0, 100.0, 150.0, 300.0)),
    [](const ::testing::TestParamInfo<GridParam>& param_info) {
      return std::get<0>(param_info.param) + "_" +
             std::get<1>(param_info.param) + "_C" +
             std::to_string(static_cast<int>(std::get<2>(param_info.param)));
    });

}  // namespace
}  // namespace bevr::core
