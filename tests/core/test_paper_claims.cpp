// Direct checks of the quantitative claims quoted in the paper's text
// (§3.3, §4). Shape, ordering, and approximate magnitudes — not exact
// matches, since the paper reports figures read from plots.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "bevr/core/variable_load.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"
#include "bevr/utility/utility.h"

namespace bevr::core {
namespace {

class PaperClaims : public ::testing::Test {
 protected:
  std::shared_ptr<const dist::DiscreteLoad> poisson_ =
      std::make_shared<dist::PoissonLoad>(100.0);
  std::shared_ptr<const dist::DiscreteLoad> exponential_ =
      std::make_shared<dist::ExponentialLoad>(
          dist::ExponentialLoad::with_mean(100.0));
  std::shared_ptr<const dist::DiscreteLoad> algebraic_ =
      std::make_shared<dist::AlgebraicLoad>(
          dist::AlgebraicLoad::with_mean(3.0, 100.0));
  std::shared_ptr<const utility::UtilityFunction> rigid_ =
      std::make_shared<utility::Rigid>(1.0);
  std::shared_ptr<const utility::UtilityFunction> adaptive_ =
      std::make_shared<utility::AdaptiveExp>();
};

// §3.3 / Fig 2b: "the performance gap δ(C) reaches a peak of 0.8 and
// the bandwidth gap Δ(C) reaches a peak of 80" (Poisson, rigid).
TEST_F(PaperClaims, PoissonRigidPeakGaps) {
  const VariableLoadModel model(poisson_, rigid_);
  double peak_delta = 0.0, peak_gap = 0.0;
  for (double c = 2.0; c <= 150.0; c += 2.0) {
    peak_delta = std::max(peak_delta, model.performance_gap(c));
    peak_gap = std::max(peak_gap, model.bandwidth_gap(c));
  }
  EXPECT_NEAR(peak_delta, 0.8, 0.05);
  EXPECT_NEAR(peak_gap, 80.0, 8.0);
}

// §3.3: "for the Poisson distribution, δ(C) is less than 10⁻¹⁵ at the
// same capacities [2k̄ and 4k̄]".
TEST_F(PaperClaims, PoissonRigidGapVanishesSuperexponentially) {
  const VariableLoadModel model(poisson_, rigid_);
  EXPECT_LT(model.performance_gap(200.0), 1e-12);
  EXPECT_LT(model.performance_gap(400.0), 1e-12);
}

// §3.3: "at capacities of 2k̄ and 4k̄ with rigid applications, δ(C) is
// approximately .27 and .07" (exponential).
TEST_F(PaperClaims, ExponentialRigidQuotedGaps) {
  const VariableLoadModel model(exponential_, rigid_);
  EXPECT_NEAR(model.performance_gap(200.0), 0.27, 0.02);
  EXPECT_NEAR(model.performance_gap(400.0), 0.07, 0.01);
}

// §3.3: exponential + rigid: "the bandwidth gap Δ(C) is monotonically
// increasing throughout the entire domain" (logarithmic growth).
TEST_F(PaperClaims, ExponentialRigidGapMonotone) {
  const VariableLoadModel model(exponential_, rigid_);
  double prev = 0.0;
  for (double c = 50.0; c <= 800.0; c += 50.0) {
    const double gap = model.bandwidth_gap(c);
    EXPECT_GT(gap, prev - 1e-6) << "C=" << c;
    prev = gap;
  }
}

// §3.3: exponential + adaptive: "δ(C) has a value less than .01 when
// capacity equals 2k̄, and less than .001 when capacity equals 4k̄";
// "after hitting a peak of 9, the bandwidth gap Δ(C) decreases".
TEST_F(PaperClaims, ExponentialAdaptiveQuotedGaps) {
  const VariableLoadModel model(exponential_, adaptive_);
  EXPECT_LT(model.performance_gap(200.0), 0.01);
  EXPECT_LT(model.performance_gap(400.0), 0.001);
  double peak = 0.0, peak_c = 0.0;
  for (double c = 10.0; c <= 400.0; c += 10.0) {
    const double gap = model.bandwidth_gap(c);
    if (gap > peak) {
      peak = gap;
      peak_c = c;
    }
  }
  EXPECT_NEAR(peak, 9.0, 1.5);
  // ...and it decreases past the peak.
  EXPECT_LT(model.bandwidth_gap(400.0), peak);
  EXPECT_LT(peak_c, 200.0);
}

// §3.3: exponential + adaptive: peak performance gap is ~10x smaller
// than rigid ("the peak of the performance gap δ(C) is reduced by a
// factor of 10").
TEST_F(PaperClaims, AdaptivityShrinksExponentialPeakTenfold) {
  const VariableLoadModel rigid(exponential_, rigid_);
  const VariableLoadModel adaptive(exponential_, adaptive_);
  double peak_rigid = 0.0, peak_adaptive = 0.0;
  for (double c = 5.0; c <= 400.0; c += 5.0) {
    peak_rigid = std::max(peak_rigid, rigid.performance_gap(c));
    peak_adaptive = std::max(peak_adaptive, adaptive.performance_gap(c));
  }
  EXPECT_NEAR(peak_rigid / peak_adaptive, 10.0, 4.0);
}

// §3.3 / Fig 4: algebraic + rigid: "the gap ... remains substantial
// over a wide range" (values ≈ .20 at 2k̄); "the bandwidth gap Δ(C)
// increases linearly throughout the entire domain" with slope ≈ 1 for
// z = 3.
TEST_F(PaperClaims, AlgebraicRigidLinearGap) {
  const VariableLoadModel model(algebraic_, rigid_);
  EXPECT_NEAR(model.performance_gap(200.0), 0.20, 0.05);
  const double g400 = model.bandwidth_gap(400.0);
  const double g800 = model.bandwidth_gap(800.0);
  const double slope = (g800 - g400) / 400.0;
  EXPECT_NEAR(slope, 1.0, 0.15);
}

// §3.3: algebraic + adaptive: Δ(C) still increases but with slope
// "decreased by a factor of over 20".
TEST_F(PaperClaims, AlgebraicAdaptiveSlopeReduced20x) {
  const VariableLoadModel rigid(algebraic_, rigid_);
  const VariableLoadModel adaptive(algebraic_, adaptive_);
  const double slope_rigid =
      (rigid.bandwidth_gap(800.0) - rigid.bandwidth_gap(400.0)) / 400.0;
  const double slope_adaptive =
      (adaptive.bandwidth_gap(800.0) - adaptive.bandwidth_gap(400.0)) / 400.0;
  EXPECT_GT(slope_adaptive, 0.0);
  EXPECT_GT(slope_rigid / slope_adaptive, 20.0);
}

// §2 (fixed-load review): the adaptive V(k) declines gently past
// k_max while the rigid V(k) crashes to zero — the reason adaptive
// applications tolerate best-effort overload.
TEST_F(PaperClaims, AdaptiveOverloadIsGentle) {
  const double c = 100.0;
  const utility::Rigid rigid(1.0);
  const utility::AdaptiveExp adaptive;
  // 20% overload: rigid total utility collapses to zero; the adaptive
  // total declines only a few percent from its peak V(k_max).
  const double v_rigid = 120.0 * rigid.value(c / 120.0);
  const double v_adaptive = 120.0 * adaptive.value(c / 120.0);
  const double v_peak = 100.0 * adaptive.value(1.0);
  EXPECT_EQ(v_rigid, 0.0);
  EXPECT_GT(v_adaptive, 0.9 * v_peak);
}

// §6: the six-case ordering of who-needs-reservations: algebraic >
// exponential > Poisson in long-run gap size, and rigid > adaptive.
TEST_F(PaperClaims, GapOrderingAcrossLoadTails) {
  const double c = 300.0;
  const VariableLoadModel pr(poisson_, rigid_);
  const VariableLoadModel er(exponential_, rigid_);
  const VariableLoadModel ar(algebraic_, rigid_);
  EXPECT_LT(pr.performance_gap(c), er.performance_gap(c));
  EXPECT_LT(er.performance_gap(c), ar.performance_gap(c));
  const VariableLoadModel ea(exponential_, adaptive_);
  const VariableLoadModel aa(algebraic_, adaptive_);
  EXPECT_LT(ea.performance_gap(c), er.performance_gap(c));
  EXPECT_LT(aa.performance_gap(c), ar.performance_gap(c));
}

}  // namespace
}  // namespace bevr::core
