// Property sweeps over the welfare model (§4): economic sanity that
// must hold for every load family, utility family and price.
#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "bevr/core/variable_load.h"
#include "bevr/core/welfare.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"
#include "bevr/utility/utility.h"

namespace bevr::core {
namespace {

std::shared_ptr<VariableLoadModel> make_model(const std::string& load_kind,
                                              const std::string& util_kind) {
  std::shared_ptr<const dist::DiscreteLoad> load;
  if (load_kind == "poisson") {
    load = std::make_shared<dist::PoissonLoad>(100.0);
  } else if (load_kind == "exponential") {
    load = std::make_shared<dist::ExponentialLoad>(
        dist::ExponentialLoad::with_mean(100.0));
  } else {
    load = std::make_shared<dist::AlgebraicLoad>(
        dist::AlgebraicLoad::with_mean(3.0, 100.0));
  }
  std::shared_ptr<const utility::UtilityFunction> pi;
  if (util_kind == "rigid") {
    pi = std::make_shared<utility::Rigid>(1.0);
  } else {
    pi = std::make_shared<utility::AdaptiveExp>();
  }
  // Cheaper evaluation for the sweep (heavy-tailed welfare optima are
  // far out in C).
  VariableLoadModel::Options options;
  options.tail_eps = 1e-10;
  options.direct_budget = 16'384;
  return std::make_shared<VariableLoadModel>(load, pi, options);
}

WelfareAnalysis make_analysis(std::shared_ptr<VariableLoadModel> model) {
  return WelfareAnalysis(
      [model](double c) { return model->total_best_effort(c); },
      [model](double c) { return model->total_reservation(c); },
      model->mean_load());
}

using SweepParam = std::tuple<std::string, std::string, double>;

class WelfareSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  [[nodiscard]] std::shared_ptr<VariableLoadModel> model() const {
    return make_model(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
  [[nodiscard]] double price() const { return std::get<2>(GetParam()); }
};

// Reservations can imitate best effort (admit everyone they can) and
// can only improve on it: W_R(p) ≥ W_B(p) for every price.
TEST_P(WelfareSweep, ReservationWelfareDominates) {
  const auto analysis = make_analysis(model());
  EXPECT_GE(analysis.reservation(price()).welfare + 1e-6,
            analysis.best_effort(price()).welfare);
}

// Welfare is nonincreasing in the bandwidth price.
TEST_P(WelfareSweep, WelfareDecreasesWithPrice) {
  const auto analysis = make_analysis(model());
  const double p = price();
  EXPECT_GE(analysis.best_effort(p).welfare + 1e-6,
            analysis.best_effort(1.5 * p).welfare);
  EXPECT_GE(analysis.reservation(p).welfare + 1e-6,
            analysis.reservation(1.5 * p).welfare);
}

// The chosen capacity shrinks (weakly) as bandwidth gets dearer.
TEST_P(WelfareSweep, ProvisioningDecreasesWithPrice) {
  const auto analysis = make_analysis(model());
  const double p = price();
  EXPECT_GE(analysis.reservation(p).capacity + 1.5,
            analysis.reservation(2.0 * p).capacity);
}

// γ(p) ≥ 1 everywhere and the defining relation W_R(γp) = W_B(p) holds.
TEST_P(WelfareSweep, PriceRatioIsConsistent) {
  const auto m = model();
  const auto analysis = make_analysis(m);
  const double p = price();
  const double gamma = analysis.price_ratio(p);
  ASSERT_GE(gamma, 1.0);
  if (std::isfinite(gamma) && gamma > 1.0) {
    const double wb = analysis.best_effort(p).welfare;
    const double wr = analysis.reservation(gamma * p).welfare;
    EXPECT_NEAR(wr, wb, 5e-3 * (1.0 + wb));
  }
}

// The reported optimum really is a local maximum of V(C) − pC.
TEST_P(WelfareSweep, ReportedOptimumIsLocallyOptimal) {
  const auto m = model();
  const auto point = make_analysis(m).best_effort(price());
  if (point.capacity <= 0.0) return;  // degenerate: build nothing
  auto welfare_at = [&](double c) {
    return m->total_best_effort(c) - price() * c;
  };
  const double at = welfare_at(point.capacity);
  EXPECT_GE(at + 1e-6, welfare_at(point.capacity * 0.97));
  EXPECT_GE(at + 1e-6, welfare_at(point.capacity * 1.03));
  EXPECT_NEAR(at, point.welfare, 1e-9 * (1.0 + std::abs(at)));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WelfareSweep,
    ::testing::Combine(::testing::Values("poisson", "exponential",
                                         "algebraic"),
                       ::testing::Values("rigid", "adaptive"),
                       ::testing::Values(0.01, 0.08, 0.3)),
    [](const ::testing::TestParamInfo<SweepParam>& param_info) {
      const int cents =
          static_cast<int>(std::round(std::get<2>(param_info.param) * 100));
      return std::get<0>(param_info.param) + "_" +
             std::get<1>(param_info.param) + "_p" + std::to_string(cents);
    });

}  // namespace
}  // namespace bevr::core
