#include "bevr/core/asymptotics.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "bevr/core/continuum.h"

namespace bevr::core {
namespace {

namespace asym = asymptotics;

TEST(Asymptotics, RigidRatioKnownValues) {
  EXPECT_NEAR(asym::capacity_ratio_rigid(3.0), 2.0, 1e-14);  // (z−1)^{1/(z−2)}
  EXPECT_NEAR(asym::capacity_ratio_rigid(4.0), std::sqrt(3.0), 1e-14);
  EXPECT_THROW((void)asym::capacity_ratio_rigid(2.0), std::invalid_argument);
}

TEST(Asymptotics, BasicBoundIsE) {
  // §6 conjecture: lim_{z→2⁺} (z−1)^{1/(z−2)} = e.
  EXPECT_DOUBLE_EQ(asym::basic_model_ratio_bound(), std::exp(1.0));
  EXPECT_NEAR(asym::capacity_ratio_rigid(2.001), std::exp(1.0), 2e-3);
  EXPECT_NEAR(asym::capacity_ratio_rigid(2.000001), std::exp(1.0), 1e-5);
  // Monotone approach from below.
  EXPECT_LT(asym::capacity_ratio_rigid(2.5), asym::capacity_ratio_rigid(2.1));
  EXPECT_LT(asym::capacity_ratio_rigid(2.1), std::exp(1.0));
}

TEST(Asymptotics, AdaptiveRatioLimits) {
  // a → 1⁻ recovers the rigid ratio; a → 0⁺ gives no advantage.
  const double z = 3.0;
  EXPECT_NEAR(asym::capacity_ratio_adaptive(z, 0.999),
              asym::capacity_ratio_rigid(z), 5e-3);
  EXPECT_NEAR(asym::capacity_ratio_adaptive(z, 1e-6), 1.0, 1e-5);
  // And the z→2⁺, a→1⁻ corner approaches e.
  EXPECT_NEAR(asym::capacity_ratio_adaptive(2.0001, 0.9999), std::exp(1.0),
              5e-3);
  EXPECT_THROW((void)asym::capacity_ratio_adaptive(3.0, 0.0),
               std::invalid_argument);
}

TEST(Asymptotics, AdaptiveRatioMatchesContinuumModel) {
  const double z = 3.0, a = 0.5;
  const AlgebraicAdaptiveContinuum model(z, a);
  const double c = 1e6;
  const double measured = (c + model.bandwidth_gap(c)) / c;
  EXPECT_NEAR(measured, asym::capacity_ratio_adaptive(z, a), 1e-9);
}

TEST(Asymptotics, SamplingBreaksTheEBound) {
  // §5.1: with S > 1 the z→2⁺ ratio diverges.
  EXPECT_NEAR(asym::capacity_ratio_rigid_sampling(3.0, 1),
              asym::capacity_ratio_rigid(3.0), 1e-14);
  EXPECT_NEAR(asym::capacity_ratio_rigid_sampling(3.0, 2), 4.0, 1e-12);
  EXPECT_GT(asym::capacity_ratio_rigid_sampling(2.1, 2),
            asym::basic_model_ratio_bound() * 100.0);
  EXPECT_THROW((void)asym::capacity_ratio_rigid_sampling(3.0, 0),
               std::invalid_argument);
}

TEST(Asymptotics, SamplingAdaptiveConsistency) {
  // S = 1 must reduce to the basic adaptive ratio.
  EXPECT_NEAR(asym::capacity_ratio_adaptive_sampling(3.0, 0.5, 1),
              asym::capacity_ratio_adaptive(3.0, 0.5), 1e-14);
  // Adaptive ≤ rigid for the same S (adaptivity helps best effort).
  EXPECT_LE(asym::capacity_ratio_adaptive_sampling(3.0, 0.5, 4),
            asym::capacity_ratio_rigid_sampling(3.0, 4));
}

TEST(Asymptotics, RetryRatios) {
  // ((z−1)/α)^{1/(z−2)}: at z=3, α=0.1 → 20.
  EXPECT_NEAR(asym::capacity_ratio_rigid_retry(3.0, 0.1), 20.0, 1e-10);
  // α = 1 (a retry costs a whole flow) reduces below the basic ratio?
  // No: α=1 gives exactly (z−1)^{1/(z−2)}... the same as basic.
  EXPECT_NEAR(asym::capacity_ratio_rigid_retry(3.0, 1.0),
              asym::capacity_ratio_rigid(3.0), 1e-12);
  // Diverges in the z→2⁺ limit for α < 1 (§5.2).
  EXPECT_GT(asym::capacity_ratio_rigid_retry(2.05, 0.1), 1e10);
}

TEST(Asymptotics, RetryAdaptiveOrdering) {
  EXPECT_LE(asym::capacity_ratio_adaptive_retry(3.0, 0.5, 0.1),
            asym::capacity_ratio_rigid_retry(3.0, 0.1));
  EXPECT_GT(asym::capacity_ratio_adaptive_retry(3.0, 0.5, 0.1),
            asym::capacity_ratio_adaptive(3.0, 0.5));
}

TEST(Asymptotics, ExponentialGapFormulas) {
  const double beta = 0.01;
  // Rigid: Δ ≈ ln(1+βC)/β — compare with the continuum model's solve.
  const ExponentialRigidContinuum rigid(beta);
  const double c = 5000.0;
  EXPECT_NEAR(asym::exponential_rigid_gap(beta, c), rigid.bandwidth_gap(c),
              60.0);  // ln(1+β(C+Δ)) vs ln(1+βC): O(ln ln) apart
  // Adaptive: Δ(∞) = −ln(1−a)/β.
  EXPECT_NEAR(asym::exponential_adaptive_gap_limit(beta, 0.5),
              std::log(2.0) / beta, 1e-9);
  // Retry variant: −ln(α(1−a))/β.
  EXPECT_NEAR(asym::exponential_adaptive_retry_gap_limit(beta, 0.5, 0.1),
              -std::log(0.05) / beta, 1e-9);
  EXPECT_THROW((void)asym::exponential_adaptive_retry_gap_limit(beta, 0.5, 3.0),
               std::invalid_argument);
}

TEST(Asymptotics, ContinuumSamplingRatioVerifiedNumerically) {
  // Verify (S(z−1))^{1/(z−2)} against a brute-force continuum sampling
  // computation at one point: z=3, S=2 → ratio 4. 1−B_S(C') ≈ S·C'^{2−z}
  // and 1−R_S(C) ≈ C^{2−z}/(z−1) in the large-C regime, so the ratio
  // follows from equating them.
  const double z = 3.0;
  const int s = 2;
  const double c = 1e5;
  const double one_minus_r = std::pow(c, 2.0 - z) / (z - 1.0);
  // Solve S·C'^{2−z} = one_minus_r for C'.
  const double c_prime = std::pow(one_minus_r / s, 1.0 / (2.0 - z));
  EXPECT_NEAR(c_prime / c, asym::capacity_ratio_rigid_sampling(z, s), 1e-9);
}

}  // namespace
}  // namespace bevr::core
