#include "bevr/core/fixed_load.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace bevr::core {
namespace {

TEST(TotalUtility, BasicValues) {
  const utility::Rigid rigid(1.0);
  EXPECT_EQ(total_utility(rigid, 100.0, 0), 0.0);
  EXPECT_EQ(total_utility(rigid, 100.0, 50), 50.0);   // each gets 2 ≥ 1
  EXPECT_EQ(total_utility(rigid, 100.0, 100), 100.0); // each gets exactly 1
  EXPECT_EQ(total_utility(rigid, 100.0, 101), 0.0);   // overload: all get < 1
  EXPECT_THROW((void)total_utility(rigid, 100.0, -1), std::invalid_argument);
}

TEST(KMax, RigidClosedForm) {
  const utility::Rigid rigid(1.0);
  EXPECT_EQ(*k_max(rigid, 100.0), 100);
  EXPECT_EQ(*k_max(rigid, 100.7), 100);
  EXPECT_EQ(*k_max(rigid, 1.0), 1);
  EXPECT_FALSE(k_max(rigid, 0.5).has_value());  // cannot serve even one

  const utility::Rigid rigid2(2.0);
  EXPECT_EQ(*k_max(rigid2, 100.0), 50);
}

TEST(KMax, PaperKappaMakesAdaptiveMatchRigid) {
  // The paper chose κ = 0.62086 precisely so k_max(C) = C.
  const utility::AdaptiveExp adaptive;
  for (const double c : {10.0, 50.0, 100.0, 200.0, 400.0, 1000.0}) {
    const auto k = k_max(adaptive, c);
    ASSERT_TRUE(k.has_value());
    EXPECT_NEAR(static_cast<double>(*k), c, std::max(1.0, 0.01 * c))
        << "C=" << c;
  }
}

TEST(KMax, AdaptiveArgmaxIsGenuine) {
  // V(k_max) must beat both neighbours.
  const utility::AdaptiveExp adaptive;
  const double c = 300.0;
  const auto k = *k_max(adaptive, c);
  const double at = total_utility(adaptive, c, k);
  EXPECT_GE(at, total_utility(adaptive, c, k - 1));
  EXPECT_GE(at, total_utility(adaptive, c, k + 1));
}

TEST(KMax, ElasticIsUnbounded) {
  // Strictly concave utilities have V(k) increasing: no finite argmax,
  // admission control never helps (paper §2).
  const utility::Elastic elastic;
  EXPECT_FALSE(k_max(elastic, 100.0).has_value());
}

TEST(KMax, PiecewiseLinearClosedForm) {
  const utility::PiecewiseLinear pwl(0.5);
  EXPECT_EQ(*k_max(pwl, 100.0), 100);
  EXPECT_EQ(*k_max(pwl, 33.9), 33);
}

TEST(KMax, RejectsNonPositiveCapacity) {
  const utility::Rigid rigid(1.0);
  EXPECT_THROW((void)k_max(rigid, 0.0), std::invalid_argument);
}

TEST(OptimalShare, RigidIsRequirement) {
  EXPECT_DOUBLE_EQ(optimal_share(utility::Rigid(1.0)), 1.0);
  EXPECT_DOUBLE_EQ(optimal_share(utility::Rigid(3.5)), 3.5);
}

TEST(OptimalShare, PiecewiseLinearIsKnee) {
  EXPECT_DOUBLE_EQ(optimal_share(utility::PiecewiseLinear(0.2)), 1.0);
}

TEST(OptimalShare, AdaptiveExpSolvesTangency) {
  // b* solves π'(b)b = π(b); with the paper's κ, b* = 1 by construction.
  const utility::AdaptiveExp adaptive;
  const double bstar = optimal_share(adaptive);
  EXPECT_NEAR(bstar, 1.0, 1e-3);
  // Verify the tangency condition numerically.
  const double h = 1e-6;
  const double deriv =
      (adaptive.value(bstar + h) - adaptive.value(bstar - h)) / (2.0 * h);
  EXPECT_NEAR(deriv * bstar, adaptive.value(bstar), 1e-5);
}

TEST(OptimalShare, AlgebraicTailClosedForm) {
  // b* = (r+1)^{1/r} (derived in §3.3 footnote analysis).
  for (const double r : {0.5, 1.0, 2.0, 4.0}) {
    const utility::AlgebraicTail pi(r);
    EXPECT_NEAR(optimal_share(pi), std::pow(r + 1.0, 1.0 / r), 1e-4)
        << "r=" << r;
  }
}

TEST(OptimalShare, ElasticThrows) {
  EXPECT_THROW((void)optimal_share(utility::Elastic{}), std::invalid_argument);
}

TEST(KMaxContinuum, ScalesLinearlyInCapacity) {
  const utility::AdaptiveExp adaptive;
  const double k100 = k_max_continuum(adaptive, 100.0);
  const double k200 = k_max_continuum(adaptive, 200.0);
  EXPECT_NEAR(k200 / k100, 2.0, 1e-9);
  EXPECT_THROW((void)k_max_continuum(adaptive, -1.0), std::invalid_argument);
}

// Property sweep: for every inelastic utility and a range of capacities,
// denying service beyond k_max strictly beats admitting everyone under
// heavy overload — the paper's §2 motivation for reservations.
struct FixedLoadCase {
  const char* name;
  double capacity;
};

class OverloadSweep : public ::testing::TestWithParam<FixedLoadCase> {};

TEST_P(OverloadSweep, AdmissionControlBeatsOverload) {
  const auto param = GetParam();
  const utility::AdaptiveExp adaptive;
  const utility::Rigid rigid(1.0);
  const auto overload =
      static_cast<std::int64_t>(param.capacity * 3.0);  // 3x overload
  for (const utility::UtilityFunction* pi :
       {static_cast<const utility::UtilityFunction*>(&adaptive),
        static_cast<const utility::UtilityFunction*>(&rigid)}) {
    const auto kmax = k_max(*pi, param.capacity);
    ASSERT_TRUE(kmax.has_value());
    EXPECT_GT(total_utility(*pi, param.capacity, *kmax),
              total_utility(*pi, param.capacity, overload))
        << pi->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, OverloadSweep,
                         ::testing::Values(FixedLoadCase{"small", 10.0},
                                           FixedLoadCase{"paper", 100.0},
                                           FixedLoadCase{"large", 1000.0}));

}  // namespace
}  // namespace bevr::core
