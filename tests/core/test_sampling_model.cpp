#include "bevr/core/sampling.h"

#include <cmath>
#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "bevr/core/variable_load.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"
#include "bevr/utility/utility.h"

namespace bevr::core {
namespace {

using dist::AlgebraicLoad;
using dist::ExponentialLoad;
using dist::PoissonLoad;

std::shared_ptr<const dist::DiscreteLoad> exp100() {
  return std::make_shared<ExponentialLoad>(ExponentialLoad::with_mean(100.0));
}

TEST(SamplingModel, ConstructionChecks) {
  EXPECT_THROW(SamplingModel(nullptr, std::make_shared<utility::Rigid>(1.0), 2),
               std::invalid_argument);
  EXPECT_THROW(SamplingModel(exp100(), nullptr, 2), std::invalid_argument);
  EXPECT_THROW(
      SamplingModel(exp100(), std::make_shared<utility::Rigid>(1.0), 0),
      std::invalid_argument);
}

// The key regression: S = 1 sampling is EXACTLY the basic variable-load
// model (the flow-perspective average Σ Q(k)π(C/k) equals the paper's
// (1/k̄)Σ P(k)·k·π(C/k)).
TEST(SamplingModel, SEquals1ReducesToBasicModel) {
  for (const auto& pi :
       {std::shared_ptr<const utility::UtilityFunction>(
            std::make_shared<utility::Rigid>(1.0)),
        std::shared_ptr<const utility::UtilityFunction>(
            std::make_shared<utility::AdaptiveExp>())}) {
    const SamplingModel sampling(exp100(), pi, 1);
    const VariableLoadModel basic(exp100(), pi);
    for (const double c : {40.0, 100.0, 250.0}) {
      EXPECT_NEAR(sampling.best_effort(c), basic.best_effort(c), 1e-9)
          << pi->name() << " C=" << c;
      EXPECT_NEAR(sampling.reservation(c), basic.reservation(c), 1e-9)
          << pi->name() << " C=" << c;
    }
  }
}

TEST(SamplingModel, RigidBestEffortIsCdfPower) {
  // For rigid b̂=1, B_S(C) = F_Q(⌊C⌋)^S exactly.
  const auto load = exp100();
  const auto pi = std::make_shared<utility::Rigid>(1.0);
  const dist::SizeBiasedLoad q(load);
  for (const int s : {1, 2, 5}) {
    const SamplingModel model(load, pi, s);
    for (const double c : {80.0, 150.0, 300.0}) {
      const double f = q.cdf(static_cast<std::int64_t>(std::floor(c)));
      EXPECT_NEAR(model.best_effort(c), std::pow(f, s), 1e-10)
          << "S=" << s << " C=" << c;
    }
  }
}

TEST(SamplingModel, MoreSamplesHurtBestEffortMore) {
  // Max-of-S load grows with S, so best-effort utility decreases in S,
  // while reservations are shielded by the k_max cap: the gap widens
  // (the paper's §5.1 message).
  const auto pi = std::make_shared<utility::AdaptiveExp>();
  const double c = 150.0;
  double prev_b = 2.0;
  double prev_gap = -1.0;
  for (const int s : {1, 2, 5, 10}) {
    const SamplingModel model(exp100(), pi, s);
    const double b = model.best_effort(c);
    const double gap = model.performance_gap(c);
    EXPECT_LT(b, prev_b) << "S=" << s;
    EXPECT_GT(gap, prev_gap) << "S=" << s;
    prev_b = b;
    prev_gap = gap;
  }
}

TEST(SamplingModel, ReservationDominance) {
  const auto pi = std::make_shared<utility::AdaptiveExp>();
  for (const int s : {1, 2, 5}) {
    const SamplingModel model(exp100(), pi, s);
    for (const double c : {50.0, 100.0, 200.0, 400.0}) {
      EXPECT_GE(model.reservation(c) + 1e-12, model.best_effort(c))
          << "S=" << s << " C=" << c;
    }
  }
}

TEST(SamplingModel, ReservationCapsWorstCase) {
  // Under reservations an admitted flow never sees load above k_max:
  // for rigid utility R_S is exactly the acceptance probability and
  // does not degrade with S beyond the first sample.
  const auto load = exp100();
  const auto pi = std::make_shared<utility::Rigid>(1.0);
  const double c = 150.0;
  const SamplingModel s1(load, pi, 1);
  const SamplingModel s10(load, pi, 10);
  EXPECT_NEAR(s1.reservation(c), s10.reservation(c), 1e-9);
}

TEST(SamplingModel, GapDefinitionHolds) {
  const SamplingModel model(exp100(),
                            std::make_shared<utility::AdaptiveExp>(), 3);
  const double c = 120.0;
  const double delta = model.bandwidth_gap(c);
  EXPECT_NEAR(model.best_effort(c + delta), model.reservation(c), 1e-6);
}

TEST(SamplingModel, ElasticUtilityNeverBlocks) {
  const SamplingModel model(exp100(), std::make_shared<utility::Elastic>(), 4);
  const double c = 100.0;
  EXPECT_DOUBLE_EQ(model.reservation(c), model.best_effort(c));
}

TEST(SamplingModel, Footnote9ElasticBenefitsWithExplicitCap) {
  // Paper footnote 9: with sampling, even elastic applications can be
  // better off under reservations — but the standard k_max is infinite,
  // so a finite admission limit must be imposed by policy.
  SamplingModel model(exp100(), std::make_shared<utility::Elastic>(), 8);
  const double c = 100.0;
  const double without_cap = model.reservation(c);
  EXPECT_DOUBLE_EQ(without_cap, model.best_effort(c));  // no cap, no gain
  model.set_admission_limit(120);
  EXPECT_GT(model.reservation(c), model.best_effort(c));
  // Restore the rule; the override validates its argument.
  EXPECT_THROW(model.set_admission_limit(0), std::invalid_argument);
  model.set_admission_limit(std::nullopt);
  EXPECT_DOUBLE_EQ(model.reservation(c), model.best_effort(c));
}

TEST(SamplingModel, OverrideMatchesRuleWhenEqual) {
  // Setting the override to exactly k_max(C) reproduces the rule.
  const auto pi = std::make_shared<utility::AdaptiveExp>();
  SamplingModel overridden(exp100(), pi, 3);
  const SamplingModel standard(exp100(), pi, 3);
  const double c = 140.0;
  overridden.set_admission_limit(*standard.k_max(c));
  EXPECT_NEAR(overridden.reservation(c), standard.reservation(c), 1e-12);
}

TEST(SamplingModel, PaperQuotedExponentialAdaptiveGap) {
  // §5.1: with sampling, exponential + adaptive shows δ ≈ 0.21 around
  // C ≈ k̄ (versus < .01 in the basic model at 2k̄). The text reads
  // "value of .21 at capacity ~k̄ in the sampling model"; we check the
  // gap at C ≈ k̄ with a generous band and, critically, the ~20x
  // amplification versus S = 1.
  const auto pi = std::make_shared<utility::AdaptiveExp>();
  const SamplingModel s10(exp100(), pi, 10);
  const SamplingModel s1(exp100(), pi, 1);
  const double gap10 = s10.performance_gap(100.0);
  const double gap1 = s1.performance_gap(100.0);
  EXPECT_GT(gap10, 0.1);
  EXPECT_LT(gap10, 0.4);
  EXPECT_GT(gap10, 4.0 * gap1);
}

TEST(SamplingModel, PoissonNearlyUnaffected) {
  // §5.1: "multiple samplings has little effect on the Poisson case"
  // (low variance → the max of S samples is close to a single sample).
  const auto load = std::make_shared<PoissonLoad>(100.0);
  const auto pi = std::make_shared<utility::AdaptiveExp>();
  const SamplingModel s1(load, pi, 1);
  const SamplingModel s5(load, pi, 5);
  const double c = 150.0;
  const double poisson_effect = s1.best_effort(c) - s5.best_effort(c);
  EXPECT_LT(poisson_effect, 0.08);
  // ...and much smaller than the same perturbation under the
  // heavy-variance exponential load.
  const SamplingModel e1(exp100(), pi, 1);
  const SamplingModel e5(exp100(), pi, 5);
  EXPECT_GT(e1.best_effort(c) - e5.best_effort(c), 1.5 * poisson_effect);
}

TEST(SamplingModel, AlgebraicAsymptoticRatioGrowsWithS) {
  // §5.1 continuum: (C+Δ)/C → (S(z−1))^{1/(z−2)}; check the discrete
  // model's measured ratio is ordered in S and exceeds the basic one.
  const auto load =
      std::make_shared<AlgebraicLoad>(AlgebraicLoad::with_mean(3.0, 100.0));
  const auto pi = std::make_shared<utility::Rigid>(1.0);
  const double c = 800.0;
  const SamplingModel s1(load, pi, 1);
  const SamplingModel s2(load, pi, 2);
  const double r1 = (c + s1.bandwidth_gap(c)) / c;
  const double r2 = (c + s2.bandwidth_gap(c)) / c;
  EXPECT_GT(r2, r1);
  EXPECT_GT(r2, 1.5);
}

}  // namespace
}  // namespace bevr::core
