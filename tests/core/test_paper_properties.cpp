// Property/metamorphic tests of the paper's structural claims — not
// pinned numbers (the golden suite owns those) but relations that must
// hold for *any* admissible parameterisation:
//  * Δ-dominance: reservations never lose — R(C) ≥ B(C), hence
//    V_R(C) − V_B(C) ≥ 0, everywhere;
//  * monotonicity: B, R, V_B, V_R and k_max are nondecreasing in C
//    (more capacity never hurts);
//  * the adaptive-κ anchor: with the paper's κ = 0.62086, admission
//    saturates at exactly one flow per unit capacity — k_max(C) = C at
//    integer capacities (§3.1's "adaptive applications fill the pipe");
//  * the kernels indicator fast path (Rigid / degenerate
//    PiecewiseLinear) is bit-identical to the generic series across
//    randomized parameters — the shortcut is an optimisation, never an
//    approximation.
#include <cstdint>
#include <memory>
#include <optional>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "bevr/core/variable_load.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"
#include "bevr/kernels/sweep_evaluator.h"
#include "bevr/utility/utility.h"

namespace bevr::core {
namespace {

std::shared_ptr<const dist::DiscreteLoad> make_load(int family, double mean,
                                                    double z) {
  switch (family % 3) {
    case 0: return std::make_shared<dist::PoissonLoad>(mean);
    case 1:
      return std::make_shared<dist::ExponentialLoad>(
          dist::ExponentialLoad::with_mean(mean));
    default:
      return std::make_shared<dist::AlgebraicLoad>(
          dist::AlgebraicLoad::with_mean(z, mean));
  }
}

std::vector<std::shared_ptr<const utility::UtilityFunction>> paper_utilities() {
  return {
      std::make_shared<utility::Rigid>(1.0),
      std::make_shared<utility::AdaptiveExp>(),
      std::make_shared<utility::PiecewiseLinear>(0.5),
      std::make_shared<utility::Elastic>(),
  };
}

TEST(PaperProperties, ReservationDominanceEverywhere) {
  for (int family = 0; family < 3; ++family) {
    const auto load = make_load(family, 100.0, 3.0);
    for (const auto& pi : paper_utilities()) {
      const VariableLoadModel model(load, pi);
      SCOPED_TRACE(load->name() + " + " + pi->name());
      for (double c = 5.0; c <= 805.0; c += 20.0) {
        EXPECT_GE(model.reservation(c), model.best_effort(c)) << "C=" << c;
        // Δ(C) in welfare terms: V_R − V_B = k̄·(R − B) ≥ 0.
        EXPECT_GE(model.total_reservation(c) - model.total_best_effort(c),
                  0.0)
            << "C=" << c;
        EXPECT_GE(model.performance_gap(c), 0.0) << "C=" << c;
      }
    }
  }
}

TEST(PaperProperties, ValuesNondecreasingInCapacity) {
  for (int family = 0; family < 3; ++family) {
    const auto load = make_load(family, 100.0, 2.5);
    for (const auto& pi : paper_utilities()) {
      const VariableLoadModel model(load, pi);
      SCOPED_TRACE(load->name() + " + " + pi->name());
      // Monotone up to series-truncation rounding: near saturation the
      // tail-truncated sums can wobble by an ulp, so the property is
      // asserted to 1e-12 on normalised values and 1e-9 on totals
      // (which scale with k̄ = 100).
      double prev_b = 0.0, prev_r = 0.0, prev_vb = 0.0, prev_vr = 0.0;
      for (double c = 2.0; c <= 602.0; c += 12.0) {
        const double b = model.best_effort(c);
        const double r = model.reservation(c);
        const double vb = model.total_best_effort(c);
        const double vr = model.total_reservation(c);
        EXPECT_GE(b, prev_b - 1e-12) << "B(C) decreased at C=" << c;
        EXPECT_GE(r, prev_r - 1e-12) << "R(C) decreased at C=" << c;
        EXPECT_GE(vb, prev_vb - 1e-9) << "V_B(C) decreased at C=" << c;
        EXPECT_GE(vr, prev_vr - 1e-9) << "V_R(C) decreased at C=" << c;
        prev_b = b;
        prev_r = r;
        prev_vb = vb;
        prev_vr = vr;
      }
    }
  }
}

TEST(PaperProperties, KmaxNondecreasingInCapacity) {
  const auto load = std::make_shared<dist::ExponentialLoad>(
      dist::ExponentialLoad::with_mean(100.0));
  for (const auto& pi : paper_utilities()) {
    const VariableLoadModel model(load, pi);
    if (!model.k_max(10.0).has_value()) continue;  // elastic: no threshold
    SCOPED_TRACE(pi->name());
    std::int64_t prev = 0;
    for (double c = 1.0; c <= 401.0; c += 4.0) {
      const auto kmax = model.k_max(c);
      ASSERT_TRUE(kmax.has_value());
      EXPECT_GE(*kmax, prev) << "k_max decreased at C=" << c;
      prev = *kmax;
    }
  }
}

// §3.1: with the paper's κ the adaptive utility's k·π(C/k) is maximised
// at one flow per unit of capacity, so admission control "fills the
// pipe" exactly — k_max(C) = C at every integer capacity.
TEST(PaperProperties, AdaptiveKappaAdmitsOneFlowPerUnitCapacity) {
  EXPECT_NEAR(utility::AdaptiveExp::kPaperKappa, 0.62086, 1e-12);
  const auto pi = std::make_shared<utility::AdaptiveExp>();
  for (int family = 0; family < 2; ++family) {
    const auto load = make_load(family, 100.0, 3.0);
    const VariableLoadModel model(load, pi);
    SCOPED_TRACE(load->name());
    for (std::int64_t c = 1; c <= 300; c += 1) {
      const auto kmax = model.k_max(static_cast<double>(c));
      ASSERT_TRUE(kmax.has_value());
      EXPECT_EQ(*kmax, c) << "C=" << c;
    }
  }
}

// The kernels indicator shortcut vs the generic series, randomized:
// any Rigid requirement, any degenerate PiecewiseLinear floor, any
// load family/mean — bitwise agreement on every column, per the
// equivalence contract.
TEST(PaperProperties, IndicatorFastPathMatchesGenericSeries) {
  std::mt19937_64 rng(20260805);
  std::uniform_real_distribution<double> bhat_dist(0.2, 3.0);
  std::uniform_real_distribution<double> mean_dist(30.0, 140.0);
  std::uniform_real_distribution<double> z_dist(2.2, 4.0);
  std::uniform_real_distribution<double> c_dist(1.0, 500.0);

  for (int trial = 0; trial < 9; ++trial) {
    const auto load =
        make_load(trial, mean_dist(rng), z_dist(rng));
    std::shared_ptr<const utility::UtilityFunction> pi;
    if (trial % 2 == 0) {
      pi = std::make_shared<utility::Rigid>(bhat_dist(rng));
    } else {
      // floor = 1 (the top of its [0, 1] domain): value() degenerates
      // to an indicator at b = 1, the other branch the kernels
      // shortcut must reproduce. Randomisation rides on the load.
      pi = std::make_shared<utility::PiecewiseLinear>(1.0);
    }
    const auto model = std::make_shared<VariableLoadModel>(load, pi);
    const kernels::SweepEvaluator kernel(model);
    SCOPED_TRACE(load->name() + " + " + pi->name());

    std::vector<double> grid;
    for (int i = 0; i < 12; ++i) grid.push_back(c_dist(rng));
    std::sort(grid.begin(), grid.end());
    const auto rows = kernel.evaluate_grid(grid, /*with_bandwidth_gap=*/false);
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const double c = grid[i];
      EXPECT_EQ(rows[i].best_effort, model->best_effort(c)) << "C=" << c;
      EXPECT_EQ(rows[i].reservation, model->reservation(c)) << "C=" << c;
      EXPECT_EQ(rows[i].performance_gap, model->performance_gap(c))
          << "C=" << c;
      EXPECT_EQ(rows[i].blocking, model->blocking_fraction(c)) << "C=" << c;
    }
  }
}

}  // namespace
}  // namespace bevr::core
