// The §5 extensions the paper reports as NOT changing the asymptotic
// results — heterogeneous flows (mixture utilities), risk-averse
// utility functionals, and nonstationary (mixture) loads. We build all
// three and verify both halves of the claim: the C ≈ k̄ region *is*
// perturbed, and the large-C growth laws are *not*.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "bevr/core/risk_averse.h"
#include "bevr/core/variable_load.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/mixture_load.h"
#include "bevr/dist/poisson.h"
#include "bevr/utility/mixture.h"
#include "bevr/utility/utility.h"

namespace bevr::core {
namespace {

std::shared_ptr<const dist::DiscreteLoad> algebraic100() {
  return std::make_shared<dist::AlgebraicLoad>(
      dist::AlgebraicLoad::with_mean(3.0, 100.0));
}

std::shared_ptr<const dist::DiscreteLoad> exponential100() {
  return std::make_shared<dist::ExponentialLoad>(
      dist::ExponentialLoad::with_mean(100.0));
}

// --- Heterogeneous flows ---------------------------------------------------

TEST(HeterogeneousFlows, GapBetweenThePureClasses) {
  // A 50/50 rigid/adaptive population sits between the two pure cases.
  const auto mix = std::make_shared<utility::MixtureUtility>(
      std::vector<utility::MixtureComponent>{
          {std::make_shared<utility::Rigid>(1.0), 1.0, 1.0},
          {std::make_shared<utility::AdaptiveExp>(), 1.0, 1.0}});
  const VariableLoadModel mixed(exponential100(), mix);
  const VariableLoadModel rigid(exponential100(),
                                std::make_shared<utility::Rigid>(1.0));
  const VariableLoadModel adaptive(exponential100(),
                                   std::make_shared<utility::AdaptiveExp>());
  for (const double c : {150.0, 250.0, 400.0}) {
    EXPECT_GT(mixed.performance_gap(c), adaptive.performance_gap(c));
    EXPECT_LT(mixed.performance_gap(c), rigid.performance_gap(c));
  }
}

TEST(HeterogeneousFlows, InvariantRAboveB) {
  const auto mix = std::make_shared<utility::MixtureUtility>(
      std::vector<utility::MixtureComponent>{
          {std::make_shared<utility::Rigid>(1.0), 2.0, 1.0},
          {std::make_shared<utility::Rigid>(1.0), 1.0, 3.0},  // big flows
          {std::make_shared<utility::AdaptiveExp>(), 1.0, 1.0}});
  const VariableLoadModel model(algebraic100(), mix);
  for (const double c : {50.0, 100.0, 200.0, 400.0}) {
    EXPECT_GE(model.reservation(c) + 1e-12, model.best_effort(c));
  }
}

TEST(HeterogeneousFlows, AsymptoticLawUnchangedUnderAlgebraicLoad) {
  // Paper §5: heterogeneity perturbs C ≈ k̄ but not the large-C law.
  // Under the algebraic load Δ(C) must stay LINEAR for the mixture —
  // same exponent, different coefficient.
  const auto mix = std::make_shared<utility::MixtureUtility>(
      std::vector<utility::MixtureComponent>{
          {std::make_shared<utility::Rigid>(1.0), 1.0, 1.0},
          {std::make_shared<utility::AdaptiveExp>(), 1.0, 2.0}});
  const VariableLoadModel model(algebraic100(), mix);
  const double g1 = model.bandwidth_gap(400.0);
  const double g2 = model.bandwidth_gap(800.0);
  const double g4 = model.bandwidth_gap(1600.0);
  // Linear growth: equal successive slope ratios (within tolerance).
  const double slope_a = (g2 - g1) / 400.0;
  const double slope_b = (g4 - g2) / 800.0;
  EXPECT_GT(slope_a, 0.05);
  EXPECT_NEAR(slope_b / slope_a, 1.0, 0.25);
}

// --- Risk aversion ---------------------------------------------------------

TEST(RiskAverse, LambdaZeroIsTheBasicModel) {
  const RiskAverseModel neutral(exponential100(),
                                std::make_shared<utility::AdaptiveExp>(), 0.0);
  const VariableLoadModel basic(exponential100(),
                                std::make_shared<utility::AdaptiveExp>());
  for (const double c : {60.0, 120.0, 240.0}) {
    EXPECT_NEAR(neutral.best_effort(c), basic.best_effort(c), 1e-9);
    EXPECT_NEAR(neutral.reservation(c), basic.reservation(c), 1e-9);
  }
}

TEST(RiskAverse, Validation) {
  EXPECT_THROW(RiskAverseModel(nullptr,
                               std::make_shared<utility::AdaptiveExp>(), 1.0),
               std::invalid_argument);
  EXPECT_THROW(RiskAverseModel(exponential100(), nullptr, 1.0),
               std::invalid_argument);
  EXPECT_THROW(RiskAverseModel(exponential100(),
                               std::make_shared<utility::AdaptiveExp>(), -1.0),
               std::invalid_argument);
}

TEST(RiskAverse, ReservationsCapTheSpread) {
  // The whole point of a reservation: admitted flows never see load
  // above k_max, so the performance spread is smaller.
  const RiskAverseModel model(exponential100(),
                              std::make_shared<utility::AdaptiveExp>(), 1.0);
  for (const double c : {100.0, 200.0, 400.0}) {
    EXPECT_LT(model.reservation_moments(c).stddev,
              model.best_effort_moments(c).stddev)
        << "C=" << c;
  }
}

TEST(RiskAverse, RiskAversionWidensTheGap) {
  const auto pi = std::make_shared<utility::AdaptiveExp>();
  const RiskAverseModel neutral(exponential100(), pi, 0.0);
  const RiskAverseModel averse(exponential100(), pi, 1.0);
  for (const double c : {150.0, 250.0, 400.0}) {
    EXPECT_GT(averse.performance_gap(c), neutral.performance_gap(c))
        << "C=" << c;
  }
}

TEST(RiskAverse, GapDefinitionHolds) {
  const RiskAverseModel model(exponential100(),
                              std::make_shared<utility::AdaptiveExp>(), 0.5);
  const double c = 180.0;
  const double delta = model.bandwidth_gap(c);
  EXPECT_NEAR(model.best_effort(c + delta), model.reservation(c), 1e-6);
}

TEST(RiskAverse, UnconditionalConventionPreservesAsymptotics) {
  // Under the unconditional (lottery-included) convention, λ·Std
  // dominates 1−U for BOTH architectures with the same C^{(2−z)/2}
  // exponent, so (C+Δ)/C converges — the paper's "did not change the
  // basic nature of our asymptotic results" claim.
  const RiskAverseModel model(algebraic100(),
                              std::make_shared<utility::Rigid>(1.0), 0.5,
                              BlockingRisk::kUnconditional);
  const double r1 = (800.0 + model.bandwidth_gap(800.0)) / 800.0;
  const double r2 = (1600.0 + model.bandwidth_gap(1600.0)) / 1600.0;
  const double r3 = (3200.0 + model.bandwidth_gap(3200.0)) / 3200.0;
  EXPECT_GT(r1, 1.05);  // reservations still hold a real edge
  // Converging: successive differences shrink.
  EXPECT_LT(std::abs(r3 - r2), std::abs(r2 - r1) + 0.02);
  EXPECT_NEAR(r2, r3, 0.25);
}

TEST(RiskAverse, ConditionalConventionAmplifiesWithoutBound) {
  // Under the conditional convention the rigid reservation side has
  // ZERO conditional spread, so its disutility decays like C^{2−z}
  // while best effort's decays like C^{(2−z)/2}: the capacity ratio
  // keeps growing — an honest divergence the two conventions disagree
  // on (recorded in EXPERIMENTS.md).
  const RiskAverseModel model(algebraic100(),
                              std::make_shared<utility::Rigid>(1.0), 0.5,
                              BlockingRisk::kConditional);
  const double r1 = (400.0 + model.bandwidth_gap(400.0)) / 400.0;
  const double r2 = (1600.0 + model.bandwidth_gap(1600.0)) / 1600.0;
  EXPECT_GT(r2, 1.3 * r1);
}

TEST(RiskAverse, ConventionsDisagreeUnderHeavyBlocking) {
  // With substantial blocking and an adaptive utility, the lottery-
  // included convention can make a risk-averse user prefer best effort
  // (gap clamped to 0), while the conditional convention still favours
  // reservations.
  const auto pi = std::make_shared<utility::AdaptiveExp>();
  const RiskAverseModel conditional(exponential100(), pi, 1.0,
                                    BlockingRisk::kConditional);
  const RiskAverseModel unconditional(exponential100(), pi, 1.0,
                                      BlockingRisk::kUnconditional);
  const double c = 150.0;
  EXPECT_GT(conditional.performance_gap(c), 0.0);
  EXPECT_LT(unconditional.reservation(c), unconditional.best_effort(c));
}

// --- Nonstationary loads ---------------------------------------------------

TEST(NonstationaryLoads, MixtureModelRunsThroughTheFullStack) {
  const auto mix = std::make_shared<dist::MixtureLoad>(
      std::vector<dist::LoadRegime>{
          {std::make_shared<dist::PoissonLoad>(150.0), 1.0},
          {std::make_shared<dist::PoissonLoad>(50.0), 1.0}});
  const VariableLoadModel model(mix, std::make_shared<utility::Rigid>(1.0));
  EXPECT_NEAR(model.mean_load(), 100.0, 1e-9);
  for (const double c : {60.0, 100.0, 160.0, 250.0}) {
    EXPECT_GE(model.reservation(c) + 1e-12, model.best_effort(c));
  }
  // Between the regimes the gap is larger than for Poisson(100): the
  // day regime overloads a C = 120 link half the time.
  const VariableLoadModel pure(std::make_shared<dist::PoissonLoad>(100.0),
                               std::make_shared<utility::Rigid>(1.0));
  EXPECT_GT(model.performance_gap(120.0), pure.performance_gap(120.0));
}

TEST(NonstationaryLoads, HeavyRegimeSetsTheAsymptotics) {
  // 90% Poisson + 10% algebraic: for large C the algebraic regime
  // dominates both gaps, so Δ(C) grows linearly with 1/10 the pure-
  // algebraic coefficient's C^{2−z} weight — still LINEAR.
  const auto heavy = algebraic100();
  const auto mix = std::make_shared<dist::MixtureLoad>(
      std::vector<dist::LoadRegime>{
          {std::make_shared<dist::PoissonLoad>(100.0), 9.0},
          {heavy, 1.0}});
  const VariableLoadModel model(mix, std::make_shared<utility::Rigid>(1.0));
  const double g1 = model.bandwidth_gap(800.0);
  const double g2 = model.bandwidth_gap(1600.0);
  EXPECT_GT(g1, 100.0);               // the Poisson part alone would be ~0
  EXPECT_NEAR(g2 / g1, 2.0, 0.25);    // linear growth survives the mixing
}

}  // namespace
}  // namespace bevr::core
