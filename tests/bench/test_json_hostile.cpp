// Hostile-input tests for the bench JSON reader: the baseline-artifact
// path takes bytes from disk, so the parser must be total — every
// malformed input is a clean std::runtime_error (with a byte offset),
// never a crash, hang, or half-parsed value.
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "bevr/bench/json.h"

namespace bevr::bench::json {
namespace {

void expect_clean_error(const std::string& text, const char* label) {
  SCOPED_TRACE(label);
  try {
    (void)parse(text);
    FAIL() << "hostile input parsed successfully";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("json parse error at byte"),
              std::string::npos)
        << error.what();
  }
}

TEST(JsonHostile, TruncatedDocuments) {
  // Every proper prefix of a real artifact-shaped document must fail
  // cleanly — the reader can be handed a partially written file.
  const std::string whole =
      R"({"schema":"bevr-bench-1","suites":[{"name":"a","median_ms":1.5}]})";
  for (std::size_t cut = 1; cut < whole.size(); ++cut) {
    try {
      (void)parse(whole.substr(0, cut));
      FAIL() << "prefix of length " << cut << " parsed";
    } catch (const std::runtime_error&) {
    }
  }
  EXPECT_EQ(parse(whole)->get("schema")->string, "bevr-bench-1");
}

TEST(JsonHostile, TruncatedEscapesAndLiterals) {
  expect_clean_error("\"abc", "unterminated string");
  expect_clean_error("\"abc\\", "string cut inside escape");
  expect_clean_error("\"\\u00", "string cut inside \\u escape");
  expect_clean_error("tru", "cut literal");
  expect_clean_error("[1,", "array cut after comma");
  expect_clean_error("{\"k\":", "object cut after colon");
  expect_clean_error("-", "bare minus");
  expect_clean_error("", "empty input");
  expect_clean_error("   ", "whitespace only");
}

TEST(JsonHostile, DeepNestingIsAnErrorNotAStackOverflow) {
  // Far past kMaxDepth: without the depth cap this is a recursion
  // crash, not an exception.
  const std::string bombs[] = {
      std::string(100000, '['),
      [] {
        std::string nested;
        for (int i = 0; i < 50000; ++i) nested += "{\"k\":";
        return nested;
      }(),
  };
  for (const std::string& bomb : bombs) {
    expect_clean_error(bomb, "nesting bomb");
  }
  // And the bound is tight: kMaxDepth nested arrays parse...
  std::string ok(static_cast<std::size_t>(kMaxDepth), '[');
  ok += std::string(static_cast<std::size_t>(kMaxDepth), ']');
  EXPECT_EQ(parse(ok)->type, Type::kArray);
  // ...one more level does not.
  expect_clean_error("[" + ok + "]", "kMaxDepth + 1");
}

TEST(JsonHostile, DuplicateKeysRejected) {
  expect_clean_error(R"({"a":1,"a":2})", "duplicate key");
  expect_clean_error(R"({"a":{"b":1,"b":1}})", "nested duplicate key");
  // Distinct keys stay fine.
  EXPECT_EQ(parse(R"({"a":1,"b":2})")->object.size(), 2u);
}

TEST(JsonHostile, NonUtf8BytesNeverCrash) {
  // Raw high bytes outside any string: not a value — clean error.
  expect_clean_error("\xff\xfe\x80", "high bytes as document");
  expect_clean_error("[\x80]", "high byte as array element");
  // Inside a string the reader is byte-transparent (artifacts are
  // ASCII; foreign bytes must round-trip or fail, not UB). Raw control
  // bytes below 0x20 are rejected per RFC 8259.
  const ValuePtr value = parse("\"\x80\xff\"");
  EXPECT_EQ(value->string.size(), 2u);
  expect_clean_error(std::string("\"a\001b\"", 5), "raw control in string");
}

TEST(JsonHostile, MalformedNumbersAndGarbage) {
  expect_clean_error("1.2.3", "double dot");
  expect_clean_error("1e", "dangling exponent");
  expect_clean_error("0x10", "hex");
  expect_clean_error("[1] []", "trailing garbage");
  expect_clean_error("{\"a\" 1}", "missing colon");
  expect_clean_error("[1 2]", "missing comma");
  expect_clean_error("nulll", "literal with trailing junk");
}

}  // namespace
}  // namespace bevr::bench::json
