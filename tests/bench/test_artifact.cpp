// Golden-schema test for BENCH_*.json: render a real artifact through
// the production writer, parse it back with the production reader, and
// assert every key the "bevr.bench.v1" schema promises. A key renamed
// on one side but not the other fails here, not in CI dashboards.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bevr/bench/artifact.h"
#include "bevr/bench/harness.h"
#include "bevr/bench/json.h"
#include "bevr/bench/registry.h"

namespace bevr::bench {
namespace {

void tiny_body(Context& ctx) {
  ctx.set_items(64);
  ctx.fail("recorded violation");
}

json::ValuePtr parsed_artifact() {
  RunConfig config;
  config.warmup = 1;
  config.repetitions = 2;
  config.smoke = true;
  std::vector<BenchmarkResult> results;
  results.push_back(run_benchmark({"tiny", "a tiny suite", &tiny_body}, config));
  const std::string document = render_artifact(
      "unit_test", collect_provenance(config), results, global_metrics_json());
  return json::parse(document);
}

json::ValuePtr require(const json::ValuePtr& object, const std::string& key) {
  const json::ValuePtr value = object->get(key);
  EXPECT_TRUE(value) << "missing required key \"" << key << '"';
  return value ? value : std::make_shared<const json::Value>();
}

TEST(Artifact, TopLevelSchemaKeys) {
  const json::ValuePtr root = parsed_artifact();
  ASSERT_TRUE(root->is_object());
  EXPECT_EQ(require(root, "schema")->string, kArtifactSchema);
  EXPECT_EQ(require(root, "suite")->string, "unit_test");
  EXPECT_TRUE(require(root, "provenance")->is_object());
  EXPECT_TRUE(require(root, "benchmarks")->is_array());
  EXPECT_TRUE(require(root, "metrics")->is_object());
}

TEST(Artifact, ProvenanceBlockIsComplete) {
  const json::ValuePtr prov = parsed_artifact()->get("provenance");
  ASSERT_TRUE(prov && prov->is_object());
  for (const char* key : {"git", "git_commit_time", "compiler", "build_type"}) {
    EXPECT_TRUE(require(prov, key)->is_string()) << key;
  }
  // build_type may be "" in a no-CMAKE_BUILD_TYPE configure; the rest
  // always have at least an "unknown" fallback.
  for (const char* key : {"git", "git_commit_time", "compiler"}) {
    EXPECT_FALSE(require(prov, key)->string.empty()) << key;
  }
  for (const char* key : {"threads", "cpus", "warmup", "repetitions"}) {
    EXPECT_TRUE(require(prov, key)->is_number()) << key;
  }
  EXPECT_EQ(require(prov, "obs_enabled")->type, json::Type::kBool);
  const json::ValuePtr smoke = require(prov, "smoke");
  EXPECT_EQ(smoke->type, json::Type::kBool);
  EXPECT_TRUE(smoke->boolean);  // config.smoke was set
  EXPECT_DOUBLE_EQ(require(prov, "warmup")->number, 1.0);
  EXPECT_DOUBLE_EQ(require(prov, "repetitions")->number, 2.0);
}

TEST(Artifact, BenchmarkEntriesCarryStatsAndFailures) {
  const json::ValuePtr benchmarks = parsed_artifact()->get("benchmarks");
  ASSERT_TRUE(benchmarks && benchmarks->is_array());
  ASSERT_EQ(benchmarks->array.size(), 1u);
  const json::ValuePtr entry = benchmarks->array[0];
  EXPECT_EQ(require(entry, "name")->string, "tiny");
  EXPECT_EQ(require(entry, "description")->string, "a tiny suite");
  EXPECT_DOUBLE_EQ(require(entry, "items")->number, 64.0);
  EXPECT_EQ(require(entry, "samples_ns")->array.size(), 2u);

  const json::ValuePtr stats = require(entry, "stats");
  ASSERT_TRUE(stats->is_object());
  for (const char* key : {"samples", "min_ns", "max_ns", "mean_ns",
                          "median_ns", "mad_ns", "ns_per_op",
                          "items_per_sec"}) {
    EXPECT_TRUE(require(stats, key)->is_number()) << key;
  }
  EXPECT_DOUBLE_EQ(require(stats, "samples")->number, 2.0);
  EXPECT_GT(require(stats, "median_ns")->number, 0.0);

  const json::ValuePtr failures = require(entry, "failures");
  ASSERT_TRUE(failures->is_array());
  ASSERT_EQ(failures->array.size(), 2u);  // one per timed repetition
  EXPECT_NE(failures->array[0]->string.find("recorded violation"),
            std::string::npos);
}

TEST(Artifact, MetricsBlockEmbedsTheObsSnapshot) {
  const json::ValuePtr metrics = parsed_artifact()->get("metrics");
  ASSERT_TRUE(metrics && metrics->is_object());
  EXPECT_TRUE(require(metrics, "counters")->is_object());
  EXPECT_TRUE(require(metrics, "gauges")->is_object());
  EXPECT_TRUE(require(metrics, "histograms")->is_object());
}

TEST(Artifact, EmptyMetricsPlaceholderStaysValidJson) {
  const std::string document =
      render_artifact("s", collect_provenance(RunConfig{}), {}, "{}");
  const json::ValuePtr root = json::parse(document);
  EXPECT_TRUE(root->get("metrics")->is_object());
  EXPECT_TRUE(root->get("benchmarks")->array.empty());
}

}  // namespace
}  // namespace bevr::bench
