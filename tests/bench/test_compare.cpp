// The regression gate: identical artifacts pass, a synthetic 50%
// median regression trips it, one-sided suites never gate, and the
// shared CLI driver turns a regression into exit code 3.
#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bevr/bench/bench_main.h"
#include "bevr/bench/compare.h"

namespace bevr::bench {
namespace {

/// A minimal valid bevr.bench.v1 artifact: suites as (name, median_ns).
std::string make_artifact(
    const std::vector<std::pair<std::string, double>>& suites) {
  std::string out = R"({"schema": "bevr.bench.v1", "suite": "t",)";
  out += R"( "provenance": {}, "benchmarks": [)";
  for (std::size_t i = 0; i < suites.size(); ++i) {
    if (i > 0) out += ", ";
    out += R"({"name": ")" + suites[i].first + R"(", "stats": {"median_ns": )" +
           std::to_string(suites[i].second) + "}}";
  }
  out += R"(], "metrics": {}})";
  return out;
}

std::string write_temp(const std::string& filename, const std::string& text) {
  const std::string path = testing::TempDir() + filename;
  std::ofstream file(path);
  file << text;
  return path;
}

TEST(CompareArtifacts, IdenticalArtifactsHaveNoRegressions) {
  const std::string artifact =
      make_artifact({{"alpha", 100.0}, {"beta", 200.0}});
  const CompareReport report = compare_artifacts(artifact, artifact, 0.25);
  EXPECT_EQ(report.regressions(), 0u);
  ASSERT_EQ(report.entries.size(), 2u);
  EXPECT_DOUBLE_EQ(report.entries[0].ratio, 1.0);
  EXPECT_NE(report.render().find("no regressions"), std::string::npos);
}

TEST(CompareArtifacts, FiftyPercentRegressionTripsTheGate) {
  const std::string baseline = make_artifact({{"alpha", 100.0}});
  const std::string current = make_artifact({{"alpha", 150.0}});
  const CompareReport report = compare_artifacts(baseline, current, 0.25);
  EXPECT_EQ(report.regressions(), 1u);
  ASSERT_EQ(report.entries.size(), 1u);
  EXPECT_TRUE(report.entries[0].regressed);
  EXPECT_DOUBLE_EQ(report.entries[0].ratio, 1.5);
  EXPECT_NE(report.render().find("REGRESSED"), std::string::npos);
}

TEST(CompareArtifacts, GrowthWithinThresholdPasses) {
  const std::string baseline = make_artifact({{"alpha", 100.0}});
  const std::string current = make_artifact({{"alpha", 120.0}});
  EXPECT_EQ(compare_artifacts(baseline, current, 0.25).regressions(), 0u);
}

TEST(CompareArtifacts, OneSidedSuitesNeverGate) {
  const std::string baseline = make_artifact({{"retired", 100.0}});
  const std::string current = make_artifact({{"brand_new", 9e9}});
  const CompareReport report = compare_artifacts(baseline, current, 0.25);
  EXPECT_EQ(report.regressions(), 0u);
  ASSERT_EQ(report.entries.size(), 2u);
  EXPECT_TRUE(report.entries[0].only_in_current);   // brand_new (sorted)
  EXPECT_TRUE(report.entries[1].only_in_baseline);  // retired
}

TEST(CompareArtifacts, ZeroBaselineMedianNeverDividesByZero) {
  const std::string baseline = make_artifact({{"alpha", 0.0}});
  const std::string current = make_artifact({{"alpha", 500.0}});
  const CompareReport report = compare_artifacts(baseline, current, 0.25);
  EXPECT_DOUBLE_EQ(report.entries[0].ratio, 1.0);
  EXPECT_EQ(report.regressions(), 0u);
}

TEST(CompareArtifacts, WrongSchemaOrMissingKeysThrow) {
  const std::string good = make_artifact({{"alpha", 100.0}});
  EXPECT_THROW((void)compare_artifacts("{\"schema\": \"other.v9\"}", good, 0.25),
               std::runtime_error);
  EXPECT_THROW((void)compare_artifacts("not json", good, 0.25),
               std::runtime_error);
  EXPECT_THROW(
      (void)compare_artifacts(R"({"schema": "bevr.bench.v1"})", good, 0.25),
      std::runtime_error);
  EXPECT_THROW(
      (void)compare_artifacts(
          R"({"schema": "bevr.bench.v1", "benchmarks": [{"name": "a"}]})",
          good, 0.25),
      std::runtime_error);
}

int run_bench_main(std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& arg : args) argv.push_back(arg.data());
  return bench_main(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchMainCompare, RegressionExitsThree) {
  const std::string baseline = write_temp(
      "bevr_compare_baseline.json", make_artifact({{"alpha", 100.0}}));
  const std::string current = write_temp("bevr_compare_current.json",
                                         make_artifact({{"alpha", 150.0}}));
  EXPECT_EQ(run_bench_main({"bench", "--compare", current, "--baseline",
                            baseline}),
            3);
}

TEST(BenchMainCompare, IdenticalExitsZero) {
  const std::string path = write_temp("bevr_compare_same.json",
                                      make_artifact({{"alpha", 100.0}}));
  EXPECT_EQ(run_bench_main({"bench", "--compare", path, "--baseline", path}),
            0);
}

TEST(BenchMainCompare, UnreadableFileExitsTwo) {
  EXPECT_EQ(run_bench_main({"bench", "--compare", "/nonexistent/x.json",
                            "--baseline", "/nonexistent/y.json"}),
            2);
}

TEST(BenchMainCompare, LooserThresholdPasses) {
  const std::string baseline = write_temp(
      "bevr_compare_loose_base.json", make_artifact({{"alpha", 100.0}}));
  const std::string current = write_temp("bevr_compare_loose_cur.json",
                                         make_artifact({{"alpha", 150.0}}));
  EXPECT_EQ(run_bench_main({"bench", "--compare", current, "--baseline",
                            baseline, "--threshold", "0.6"}),
            0);
}

}  // namespace
}  // namespace bevr::bench
