// Robust timing statistics: median/MAD summaries and the derived
// per-op rates the artifact schema carries.
#include <gtest/gtest.h>

#include "bevr/bench/stats.h"

namespace bevr::bench {
namespace {

TEST(Median, OddCountPicksMiddle) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Median, EvenCountAveragesMiddlePair) {
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Median, EmptyIsZero) { EXPECT_DOUBLE_EQ(median({}), 0.0); }

TEST(ComputeStats, SummarizesSamples) {
  const SampleStats stats = compute_stats({100.0, 300.0, 200.0, 1000.0});
  EXPECT_EQ(stats.samples, 4u);
  EXPECT_DOUBLE_EQ(stats.min_ns, 100.0);
  EXPECT_DOUBLE_EQ(stats.max_ns, 1000.0);
  EXPECT_DOUBLE_EQ(stats.mean_ns, 400.0);
  EXPECT_DOUBLE_EQ(stats.median_ns, 250.0);
  // |100-250|,|300-250|,|200-250|,|1000-250| = 150,50,50,750 -> median 100
  EXPECT_DOUBLE_EQ(stats.mad_ns, 100.0);
}

TEST(ComputeStats, MedianShrugsOffOneOutlier) {
  const SampleStats clean = compute_stats({100.0, 101.0, 102.0});
  const SampleStats noisy = compute_stats({100.0, 101.0, 102.0, 5000.0});
  EXPECT_NEAR(clean.median_ns, noisy.median_ns, 1.0);
  EXPECT_GT(noisy.mean_ns, 1000.0);  // the mean does not
}

TEST(ComputeStats, EmptyIsAllZero) {
  const SampleStats stats = compute_stats({});
  EXPECT_EQ(stats.samples, 0u);
  EXPECT_DOUBLE_EQ(stats.median_ns, 0.0);
  EXPECT_DOUBLE_EQ(stats.mad_ns, 0.0);
}

TEST(Rates, NsPerOpDividesByItems) {
  SampleStats stats;
  stats.median_ns = 1000.0;
  EXPECT_DOUBLE_EQ(ns_per_op(stats, 10), 100.0);
  EXPECT_DOUBLE_EQ(ns_per_op(stats, 0), 1000.0);  // 0 treated as 1
}

TEST(Rates, ItemsPerSecInvertsTheMedian) {
  SampleStats stats;
  stats.median_ns = 1e9;  // one second per repetition
  EXPECT_DOUBLE_EQ(items_per_sec(stats, 500), 500.0);
  stats.median_ns = 0.0;
  EXPECT_DOUBLE_EQ(items_per_sec(stats, 500), 0.0);
}

}  // namespace
}  // namespace bevr::bench
