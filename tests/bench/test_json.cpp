// The artifact reader: RFC 8259 subset parser used by the regression
// gate and the schema tests. Malformed input must throw with a byte
// offset, not limp along.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "bevr/bench/json.h"

namespace bevr::bench::json {
namespace {

TEST(JsonParse, ObjectsAndNestedLookup) {
  const ValuePtr root = parse(R"({"a": 1, "b": {"c": "deep"}})");
  ASSERT_TRUE(root->is_object());
  ASSERT_TRUE(root->get("a"));
  EXPECT_DOUBLE_EQ(root->get("a")->number, 1.0);
  const ValuePtr c = root->get("b")->get("c");
  ASSERT_TRUE(c);
  EXPECT_EQ(c->string, "deep");
  EXPECT_FALSE(root->get("missing"));
  EXPECT_FALSE(root->get("a")->get("not_an_object"));
}

TEST(JsonParse, ArraysKeepOrder) {
  const ValuePtr root = parse(R"([1, 2.5, -3e2, "x", true, null])");
  ASSERT_TRUE(root->is_array());
  ASSERT_EQ(root->array.size(), 6u);
  EXPECT_DOUBLE_EQ(root->array[0]->number, 1.0);
  EXPECT_DOUBLE_EQ(root->array[1]->number, 2.5);
  EXPECT_DOUBLE_EQ(root->array[2]->number, -300.0);
  EXPECT_EQ(root->array[3]->string, "x");
  EXPECT_EQ(root->array[4]->type, Type::kBool);
  EXPECT_TRUE(root->array[4]->boolean);
  EXPECT_EQ(root->array[5]->type, Type::kNull);
}

TEST(JsonParse, StringEscapes) {
  const ValuePtr root = parse(R"(["a\"b", "tab\there", "back\\slash",
                                 "new\nline"])");
  ASSERT_EQ(root->array.size(), 4u);
  EXPECT_EQ(root->array[0]->string, "a\"b");
  EXPECT_EQ(root->array[1]->string, "tab\there");
  EXPECT_EQ(root->array[2]->string, "back\\slash");
  EXPECT_EQ(root->array[3]->string, "new\nline");
}

TEST(JsonParse, UnicodeEscapeDecodesAscii) {
  // ["A"], assembled without a \u in the source literal.
  const std::string document = std::string("[\"") + '\\' + "u0041\"]";
  const ValuePtr root = parse(document);
  ASSERT_EQ(root->array.size(), 1u);
  EXPECT_EQ(root->array[0]->string, "A");
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(parse("{}")->object.empty());
  EXPECT_TRUE(parse("[]")->array.empty());
  EXPECT_TRUE(parse("  {}  ")->is_object());  // surrounding whitespace ok
}

TEST(JsonParse, MalformedInputThrowsWithOffset) {
  try {
    (void)parse(R"({"a": })");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("6"), std::string::npos)
        << "error should carry the byte offset: " << error.what();
  }
  EXPECT_THROW((void)parse(""), std::runtime_error);
  EXPECT_THROW((void)parse("{"), std::runtime_error);
  EXPECT_THROW((void)parse(R"(["unterminated)"), std::runtime_error);
  EXPECT_THROW((void)parse("[1, 2,]"), std::runtime_error);
}

TEST(JsonParse, TrailingGarbageIsAnError) {
  EXPECT_THROW((void)parse("{} {}"), std::runtime_error);
  EXPECT_THROW((void)parse("1 2"), std::runtime_error);
}

}  // namespace
}  // namespace bevr::bench::json
