// The measurement engine: warmup/repetition accounting, Context
// plumbing (items, smoke, failures) and exception containment.
#include <gtest/gtest.h>

#include <stdexcept>

#include "bevr/bench/harness.h"
#include "bevr/bench/registry.h"

namespace bevr::bench {
namespace {

int g_calls = 0;
int g_smoke_calls = 0;

void counting_body(Context& ctx) {
  ++g_calls;
  if (ctx.smoke()) ++g_smoke_calls;
  ctx.set_items(42);
}

void failing_body(Context& ctx) {
  ctx.fail("slope out of range");
  ctx.fail("second violation");
}

void throwing_body(Context&) { throw std::runtime_error("boom"); }

TEST(RunBenchmark, WarmupRunsAreUntimed) {
  g_calls = 0;
  RunConfig config;
  config.warmup = 2;
  config.repetitions = 3;
  const BenchmarkResult result =
      run_benchmark({"counting", "desc", &counting_body}, config);
  EXPECT_EQ(g_calls, 5);  // 2 warmup + 3 timed
  EXPECT_EQ(result.samples_ns.size(), 3u);
  EXPECT_EQ(result.stats.samples, 3u);
  EXPECT_EQ(result.items, 42u);
  EXPECT_EQ(result.name, "counting");
  EXPECT_EQ(result.description, "desc");
  EXPECT_TRUE(result.failures.empty());
  for (const double sample : result.samples_ns) EXPECT_GE(sample, 0.0);
}

TEST(RunBenchmark, SmokeFlagReachesTheBody) {
  g_calls = g_smoke_calls = 0;
  RunConfig config;
  config.smoke = true;
  (void)run_benchmark({"counting", "desc", &counting_body}, config);
  EXPECT_EQ(g_calls, 1);
  EXPECT_EQ(g_smoke_calls, 1);
}

TEST(RunBenchmark, ContextFailuresAreCollectedPerRepetition) {
  RunConfig config;
  config.repetitions = 2;
  const BenchmarkResult result =
      run_benchmark({"failing", "desc", &failing_body}, config);
  ASSERT_EQ(result.failures.size(), 4u);  // 2 failures x 2 repetitions
  EXPECT_NE(result.failures[0].find("slope out of range"), std::string::npos);
  EXPECT_NE(result.failures[0].find("failing"), std::string::npos);
}

TEST(RunBenchmark, ExceptionsBecomeFailuresNotCrashes) {
  const BenchmarkResult result =
      run_benchmark({"throwing", "desc", &throwing_body}, RunConfig{});
  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_NE(result.failures[0].find("boom"), std::string::npos);
  EXPECT_TRUE(result.samples_ns.empty());
}

TEST(Registry, AddIsIdempotentByName) {
  BenchmarkRegistry registry;
  EXPECT_TRUE(registry.add({"alpha", "first", &counting_body}));
  EXPECT_TRUE(registry.add({"alpha", "duplicate", &failing_body}));
  ASSERT_EQ(registry.benchmarks().size(), 1u);
  EXPECT_EQ(registry.benchmarks()[0].description, "first");
}

TEST(Registry, MatchFiltersBySubstringSorted) {
  BenchmarkRegistry registry;
  (void)registry.add({"fig2_poisson", "", &counting_body});
  (void)registry.add({"fig1_utility", "", &counting_body});
  (void)registry.add({"perf_zeta", "", &counting_body});
  const auto figs = registry.match("fig");
  ASSERT_EQ(figs.size(), 2u);
  EXPECT_EQ(figs[0].name, "fig1_utility");
  EXPECT_EQ(figs[1].name, "fig2_poisson");
  EXPECT_EQ(registry.match("").size(), 3u);
  EXPECT_TRUE(registry.match("nope").empty());
}

}  // namespace
}  // namespace bevr::bench
