// Grid helpers shared by every bench suite. The points == 1 case used
// to divide by (points - 1) and emit NaN; it must return {lo}.
#include <gtest/gtest.h>

#include <cmath>

#include "bevr/bench/bench_util.h"

namespace bevr::bench {
namespace {

TEST(LinearGrid, CoversEndpointsEvenly) {
  const auto grid = linear_grid(0.0, 10.0, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 10.0);
  EXPECT_DOUBLE_EQ(grid[2], 5.0);
}

TEST(LogGrid, CoversEndpointsGeometrically) {
  const auto grid = log_grid(1.0, 16.0, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_NEAR(grid.front(), 1.0, 1e-12);
  EXPECT_NEAR(grid[1], 2.0, 1e-12);
  EXPECT_NEAR(grid.back(), 16.0, 1e-12);
}

TEST(LinearGrid, SinglePointIsLowerBoundNotNaN) {
  const auto grid = linear_grid(3.5, 10.0, 1);
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_DOUBLE_EQ(grid[0], 3.5);
  EXPECT_FALSE(std::isnan(grid[0]));
}

TEST(LogGrid, SinglePointIsLowerBoundNotNaN) {
  const auto grid = log_grid(2.0, 2048.0, 1);
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_DOUBLE_EQ(grid[0], 2.0);
  EXPECT_FALSE(std::isnan(grid[0]));
}

TEST(Grids, NonPositivePointCountsAreEmpty) {
  EXPECT_TRUE(linear_grid(0.0, 1.0, 0).empty());
  EXPECT_TRUE(log_grid(1.0, 2.0, 0).empty());
  EXPECT_TRUE(linear_grid(0.0, 1.0, -3).empty());
  EXPECT_TRUE(log_grid(1.0, 2.0, -3).empty());
}

TEST(Grids, EveryValueIsFinite) {
  for (const double v : linear_grid(-4.0, 4.0, 9)) {
    EXPECT_TRUE(std::isfinite(v));
  }
  for (const double v : log_grid(1e-8, 1e8, 33)) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace bevr::bench
