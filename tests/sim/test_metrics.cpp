#include "bevr/sim/metrics.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace bevr::sim {
namespace {

TEST(RunningStats, EmptyState) {
  const RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, KnownSmallSample) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(3.14);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.14);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 3.14);
  EXPECT_EQ(stats.max(), 3.14);
}

TEST(RunningStats, NumericallyStableAroundLargeOffset) {
  // Classic Welford test: variance of {1e9+4, 1e9+7, 1e9+13, 1e9+16}.
  RunningStats stats;
  for (const double x : {4.0, 7.0, 13.0, 16.0}) stats.add(1e9 + x);
  EXPECT_NEAR(stats.variance(), 30.0, 1e-6);
}

TEST(TimeWeightedOccupancy, FractionsAndMean) {
  TimeWeightedOccupancy occ;
  occ.record(0.0, 2);   // level 2 from t=0
  occ.record(1.0, 5);   // level 2 held 1s; level 5 from t=1
  occ.record(4.0, 0);   // level 5 held 3s
  occ.record(10.0, 0);  // level 0 held 6s
  EXPECT_DOUBLE_EQ(occ.total_time(), 10.0);
  EXPECT_DOUBLE_EQ(occ.fraction(2), 0.1);
  EXPECT_DOUBLE_EQ(occ.fraction(5), 0.3);
  EXPECT_DOUBLE_EQ(occ.fraction(0), 0.6);
  EXPECT_DOUBLE_EQ(occ.fraction(7), 0.0);
  EXPECT_DOUBLE_EQ(occ.mean(), 2.0 * 0.1 + 5.0 * 0.3);
}

TEST(TimeWeightedOccupancy, DistributionSumsToOne) {
  TimeWeightedOccupancy occ;
  occ.record(0.0, 1);
  occ.record(2.5, 3);
  occ.record(4.0, 1);
  occ.record(8.0, 0);
  const auto pmf = occ.distribution();
  double total = 0.0;
  for (const double p : pmf) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(TimeWeightedOccupancy, ErrorHandling) {
  TimeWeightedOccupancy occ;
  occ.record(5.0, 1);
  EXPECT_THROW(occ.record(4.0, 2), std::invalid_argument);  // backwards
  EXPECT_THROW(occ.record(6.0, -1), std::invalid_argument);
}

TEST(TimeWeightedOccupancy, EmptyIsSafe) {
  const TimeWeightedOccupancy occ;
  EXPECT_EQ(occ.mean(), 0.0);
  EXPECT_EQ(occ.fraction(0), 0.0);
  EXPECT_TRUE(occ.distribution().empty());
}

}  // namespace
}  // namespace bevr::sim
