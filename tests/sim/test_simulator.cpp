#include "bevr/sim/simulator.h"

#include <cmath>
#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "bevr/dist/poisson.h"
#include "bevr/sim/link.h"
#include "bevr/utility/utility.h"

namespace bevr::sim {
namespace {

TEST(Link, BestEffortAdmitsEverything) {
  Link link(100.0, Architecture::kBestEffort, 0);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(link.try_admit());
  EXPECT_EQ(link.occupancy(), 1000);
  EXPECT_DOUBLE_EQ(link.share(), 0.1);
}

TEST(Link, ReservationBlocksAtLimit) {
  Link link(100.0, Architecture::kReservation, 3);
  EXPECT_TRUE(link.try_admit());
  EXPECT_TRUE(link.try_admit());
  EXPECT_TRUE(link.try_admit());
  EXPECT_FALSE(link.try_admit());
  link.release();
  EXPECT_TRUE(link.try_admit());
  EXPECT_THROW(Link(0.0, Architecture::kBestEffort, 0), std::invalid_argument);
}

TEST(Link, ReleaseUnderflowThrows) {
  Link link(10.0, Architecture::kBestEffort, 0);
  EXPECT_THROW(link.release(), std::logic_error);
}

SimulationConfig base_config() {
  SimulationConfig config;
  config.capacity = 100.0;
  config.horizon = 4000.0;
  config.warmup = 200.0;
  config.seed = 12345;
  return config;
}

// The paper's Poisson load case: M/M/∞ occupancy is Poisson(λτ).
TEST(FlowSimulator, MM1InfinityOccupancyIsPoisson) {
  auto config = base_config();
  config.architecture = Architecture::kBestEffort;
  const double offered = 100.0;  // λ·τ = 100 = the paper's k̄
  const FlowSimulator simulator(
      config, std::make_shared<utility::AdaptiveExp>(),
      std::make_shared<PoissonArrivals>(offered),
      std::make_shared<ExponentialHolding>(1.0));
  const auto report = simulator.run();
  EXPECT_NEAR(report.mean_occupancy, offered, 3.0);
  // Compare the empirical pmf with Poisson(100) at a few levels.
  const dist::PoissonLoad poisson(offered);
  for (const std::int64_t k : {90LL, 100LL, 110LL}) {
    ASSERT_LT(static_cast<std::size_t>(k), report.occupancy_pmf.size());
    EXPECT_NEAR(report.occupancy_pmf[static_cast<std::size_t>(k)],
                poisson.pmf(k), 0.012)
        << "k=" << k;
  }
}

TEST(FlowSimulator, BestEffortNeverBlocks) {
  auto config = base_config();
  config.architecture = Architecture::kBestEffort;
  const FlowSimulator simulator(
      config, std::make_shared<utility::Rigid>(1.0),
      std::make_shared<PoissonArrivals>(100.0),
      std::make_shared<ExponentialHolding>(1.0));
  const auto report = simulator.run();
  EXPECT_EQ(report.flows_blocked, 0u);
  EXPECT_EQ(report.blocking_probability, 0.0);
  EXPECT_GT(report.flows_scored, 100'000u);
}

TEST(FlowSimulator, ReservationEnforcesAdmissionLimit) {
  auto config = base_config();
  config.architecture = Architecture::kReservation;
  config.admission_limit = 80;  // under-provisioned on purpose
  const FlowSimulator simulator(
      config, std::make_shared<utility::Rigid>(1.0),
      std::make_shared<PoissonArrivals>(100.0),
      std::make_shared<ExponentialHolding>(1.0));
  const auto report = simulator.run();
  EXPECT_GT(report.flows_blocked, 0u);
  // Occupancy never exceeds the limit.
  for (std::size_t k = 81; k < report.occupancy_pmf.size(); ++k) {
    EXPECT_EQ(report.occupancy_pmf[k], 0.0) << "k=" << k;
  }
  // Erlang-B-like blocking for M/M/80 with offered load 100 is
  // substantial (loss system blocking ≈ 23%).
  EXPECT_GT(report.blocking_probability, 0.10);
  EXPECT_LT(report.blocking_probability, 0.35);
}

TEST(FlowSimulator, RetryPolicyRecoversBlockedFlows) {
  auto config = base_config();
  config.architecture = Architecture::kReservation;
  config.admission_limit = 100;  // k_max(C): admitted shares stay >= 1
  config.retry.enabled = true;
  config.retry.penalty = 0.1;
  config.retry.backoff_mean = 1.0;
  config.retry.max_attempts = 100;
  const FlowSimulator simulator(
      config, std::make_shared<utility::Rigid>(1.0),
      std::make_shared<PoissonArrivals>(100.0),
      std::make_shared<ExponentialHolding>(1.0));
  const auto report = simulator.run();
  EXPECT_GT(report.flows_blocked, 0u);
  EXPECT_GT(report.mean_retries, 0.0);
  // Nearly every flow eventually gets in (abandonment is rare with 100
  // attempts), so utility ≈ 1 − α·E[retries].
  EXPECT_LT(report.flows_abandoned, report.flows_blocked / 10 + 10);
  EXPECT_NEAR(report.mean_utility, 1.0 - 0.1 * report.mean_retries, 0.05);
}

TEST(FlowSimulator, UtilityModesAreOrdered) {
  // For any flow, min-share utility ≤ time-average utility; snapshot
  // sits in between on average. Check the aggregate ordering.
  auto config = base_config();
  config.architecture = Architecture::kBestEffort;
  auto pi = std::make_shared<utility::AdaptiveExp>();
  auto arrivals = std::make_shared<PoissonArrivals>(100.0);
  auto holding = std::make_shared<ExponentialHolding>(1.0);

  config.utility_mode = UtilityMode::kTimeAverage;
  const auto avg = FlowSimulator(config, pi, arrivals, holding).run();
  config.utility_mode = UtilityMode::kLifetimeMinimum;
  const auto minimum = FlowSimulator(config, pi, arrivals, holding).run();

  EXPECT_LT(minimum.mean_utility, avg.mean_utility);
  EXPECT_GT(minimum.mean_utility, 0.0);
}

TEST(FlowSimulator, Determinism) {
  auto config = base_config();
  config.horizon = 500.0;
  const FlowSimulator simulator(
      config, std::make_shared<utility::AdaptiveExp>(),
      std::make_shared<PoissonArrivals>(100.0),
      std::make_shared<ExponentialHolding>(1.0));
  const auto a = simulator.run();
  const auto b = simulator.run();
  EXPECT_EQ(a.flows_scored, b.flows_scored);
  EXPECT_DOUBLE_EQ(a.mean_utility, b.mean_utility);
}

TEST(FlowSimulator, ConfigValidation) {
  auto config = base_config();
  config.warmup = config.horizon + 1.0;
  EXPECT_THROW(FlowSimulator(config, std::make_shared<utility::Rigid>(1.0),
                             std::make_shared<PoissonArrivals>(1.0),
                             std::make_shared<ExponentialHolding>(1.0)),
               std::invalid_argument);
  EXPECT_THROW(FlowSimulator(base_config(), nullptr,
                             std::make_shared<PoissonArrivals>(1.0),
                             std::make_shared<ExponentialHolding>(1.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace bevr::sim
