#include "bevr/sim/arrival.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "bevr/sim/metrics.h"

namespace bevr::sim {
namespace {

TEST(PoissonArrivals, EmpiricalRate) {
  PoissonArrivals arrivals(10.0);
  Rng rng(1);
  RunningStats gaps;
  for (int i = 0; i < 100'000; ++i) {
    gaps.add(arrivals.next_interarrival(rng));
  }
  EXPECT_NEAR(gaps.mean(), 0.1, 0.002);
  // Exponential: stddev == mean.
  EXPECT_NEAR(gaps.stddev(), 0.1, 0.003);
  EXPECT_DOUBLE_EQ(arrivals.rate(), 10.0);
  EXPECT_THROW(PoissonArrivals(0.0), std::invalid_argument);
}

TEST(BurstyArrivals, RateFormulaAndOverdispersion) {
  BurstyArrivals arrivals(/*hot_rate=*/50.0, /*cold_rate=*/2.0,
                          /*hot_p=*/0.5);
  Rng rng(2);
  RunningStats gaps;
  for (int i = 0; i < 200'000; ++i) {
    gaps.add(arrivals.next_interarrival(rng));
  }
  EXPECT_NEAR(gaps.mean(), 1.0 / arrivals.rate(), 0.01);
  // Hyper-exponential gaps: coefficient of variation > 1.
  EXPECT_GT(gaps.stddev() / gaps.mean(), 1.2);
  EXPECT_THROW(BurstyArrivals(0.0, 1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(BurstyArrivals(1.0, 1.0, 1.5), std::invalid_argument);
}

TEST(ExponentialHolding, EmpiricalMean) {
  ExponentialHolding holding(5.0);
  Rng rng(3);
  RunningStats durations;
  for (int i = 0; i < 100'000; ++i) {
    durations.add(holding.next_duration(rng));
  }
  EXPECT_NEAR(durations.mean(), 5.0, 0.1);
  EXPECT_DOUBLE_EQ(holding.mean(), 5.0);
  EXPECT_THROW(ExponentialHolding(-1.0), std::invalid_argument);
}

TEST(BoundedParetoHolding, SamplesStayInBounds) {
  BoundedParetoHolding holding(1.2, 1.0, 1000.0);
  Rng rng(4);
  for (int i = 0; i < 50'000; ++i) {
    const double d = holding.next_duration(rng);
    EXPECT_GE(d, 1.0);
    EXPECT_LE(d, 1000.0);
  }
}

TEST(BoundedParetoHolding, EmpiricalMeanMatchesFormula) {
  BoundedParetoHolding holding(1.5, 1.0, 100.0);
  Rng rng(5);
  RunningStats durations;
  for (int i = 0; i < 500'000; ++i) {
    durations.add(holding.next_duration(rng));
  }
  EXPECT_NEAR(durations.mean(), holding.mean(), 0.05 * holding.mean());
}

TEST(BoundedParetoHolding, HeavyTailProperty) {
  // Pareto with shape 1.2: the top percentile carries a large share of
  // total duration — unlike the exponential.
  BoundedParetoHolding pareto(1.2, 1.0, 10'000.0);
  ExponentialHolding expo(pareto.mean());
  Rng rng(6);
  double pareto_max = 0.0, expo_max = 0.0;
  for (int i = 0; i < 100'000; ++i) {
    pareto_max = std::max(pareto_max, pareto.next_duration(rng));
    expo_max = std::max(expo_max, expo.next_duration(rng));
  }
  EXPECT_GT(pareto_max, 5.0 * expo_max);
  EXPECT_THROW(BoundedParetoHolding(1.0, 5.0, 2.0), std::invalid_argument);
}

}  // namespace
}  // namespace bevr::sim
