// Edge semantics of sim::RetryPolicy, pinned per the doc comment in
// simulator.h: max_attempts 0 and 1 both mean one attempt total, and
// retries whose backoff lands past the horizon resolve as abandoned at
// block time instead of leaking post-horizon utilities.
#include <memory>

#include <gtest/gtest.h>

#include "bevr/sim/simulator.h"

namespace bevr::sim {
namespace {

SimulationConfig overloaded_config() {
  SimulationConfig config;
  config.capacity = 100.0;
  config.architecture = Architecture::kReservation;
  config.admission_limit = 60;  // heavily under-provisioned: real blocking
  config.horizon = 1000.0;
  config.warmup = 100.0;
  config.seed = 777;
  return config;
}

SimulationReport run_with(SimulationConfig config) {
  const FlowSimulator simulator(
      config, std::make_shared<utility::Rigid>(1.0),
      std::make_shared<PoissonArrivals>(100.0),
      std::make_shared<ExponentialHolding>(1.0));
  return simulator.run();
}

TEST(RetryEdges, MaxAttemptsZeroAndOneBehaveAsSingleAttempt) {
  // max_attempts counts total attempts, so 0 and 1 both exhaust after
  // the first block — identical flow accounting, and every blocked
  // flow is an abandonment (no retries ever happen).
  auto config = overloaded_config();
  config.retry.enabled = true;
  config.retry.max_attempts = 0;
  const auto zero = run_with(config);
  config.retry.max_attempts = 1;
  const auto one = run_with(config);

  EXPECT_EQ(zero.flows_blocked, one.flows_blocked);
  EXPECT_EQ(zero.flows_abandoned, one.flows_abandoned);
  EXPECT_EQ(zero.flows_scored, one.flows_scored);
  EXPECT_DOUBLE_EQ(zero.mean_utility, one.mean_utility);
  EXPECT_GT(one.flows_blocked, 0u);
  EXPECT_EQ(one.flows_abandoned, one.flows_blocked);
  EXPECT_DOUBLE_EQ(one.mean_retries, 0.0);
}

TEST(RetryEdges, SingleAttemptMatchesDisabledRetries) {
  // enabled with max_attempts <= 1 is the same process as disabled:
  // no retry is ever scheduled, no backoff variate is ever drawn, so
  // every report field matches exactly.
  auto config = overloaded_config();
  config.retry.enabled = false;
  const auto disabled = run_with(config);
  config.retry.enabled = true;
  config.retry.max_attempts = 1;
  const auto single = run_with(config);

  EXPECT_EQ(disabled.flows_blocked, single.flows_blocked);
  EXPECT_EQ(disabled.flows_scored, single.flows_scored);
  EXPECT_DOUBLE_EQ(disabled.mean_utility, single.mean_utility);
  EXPECT_EQ(disabled.flows_abandoned, single.flows_abandoned);
  EXPECT_EQ(single.flows_abandoned, single.flows_blocked);
}

TEST(RetryEdges, BackoffPastHorizonResolvesAsAbandoned) {
  // With a backoff ten times the horizon, a blocked flow's retry draw
  // lands inside the horizon with probability at most
  // 1 − e^{−horizon/backoff_mean} ≈ 9.5% (less in practice: the flow
  // is blocked mid-run with even less horizon left). The rest must
  // resolve as abandoned at block time — none may leak events past the
  // horizon into a drained link.
  auto config = overloaded_config();
  config.retry.enabled = true;
  config.retry.max_attempts = 50;
  config.retry.backoff_mean = 10.0 * config.horizon;
  const auto report = run_with(config);

  EXPECT_GT(report.flows_blocked, 0u);
  EXPECT_LE(report.flows_abandoned, report.flows_blocked);
  EXPECT_GE(static_cast<double>(report.flows_abandoned),
            0.85 * static_cast<double>(report.flows_blocked));
  // Retries are correspondingly rare.
  EXPECT_LT(report.mean_retries, 0.05);
}

TEST(RetryEdges, AccountingConservedWithRetriesAcrossHorizon) {
  // Every post-warmup flow resolves exactly once: scored flows =
  // admitted + abandoned (blocked flows that retried successfully are
  // scored once as admitted; the rest are scored once as abandoned).
  auto config = overloaded_config();
  config.retry.enabled = true;
  config.retry.max_attempts = 5;
  config.retry.backoff_mean = 2.0;
  const auto report = run_with(config);

  EXPECT_GT(report.flows_blocked, 0u);
  EXPECT_GT(report.flows_abandoned, 0u);
  // Abandonment cannot exceed first-attempt blocking plus the flows
  // blocked only on retries; it must be positive but bounded by the
  // blocked count (retries only help).
  EXPECT_LE(report.flows_abandoned, report.flows_blocked);
  // Utility stays a probability-weighted mix of {0, 1} minus retry
  // penalties: within [0, 1] strictly.
  EXPECT_GT(report.mean_utility, 0.0);
  EXPECT_LE(report.mean_utility, 1.0);
}

}  // namespace
}  // namespace bevr::sim
