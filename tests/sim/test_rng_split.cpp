// Rng::split — SplitMix64-style sub-seeding for the runner's
// deterministic per-task streams.
#include "bevr/sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace bevr::sim {
namespace {

TEST(RngSplit, SplitIsDeterministicAndDrawIndependent) {
  const Rng root(12345);
  Rng child_a = root.split(7);
  // Splitting depends only on (seed, stream), not on draws made from
  // the root engine in between.
  Rng burned(12345);
  for (int i = 0; i < 100; ++i) (void)burned.uniform();
  Rng child_b = burned.split(7);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(child_a.uniform(), child_b.uniform());
  }
}

TEST(RngSplit, DistinctStreamsGetDistinctSeeds) {
  const Rng root(42);
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 4096; ++stream) {
    seeds.insert(root.split(stream).seed());
  }
  EXPECT_EQ(seeds.size(), 4096u);
}

TEST(RngSplit, AdjacentStreamsDecorrelate) {
  // Pearson correlation between the uniform sequences of neighbouring
  // streams (the runner's worst case: tasks i and i+1) should be
  // statistically indistinguishable from zero: |r| < 4/sqrt(n).
  const Rng root(987654321);
  constexpr int kSamples = 20000;
  Rng a = root.split(0);
  Rng b = root.split(1);
  double sum_x = 0, sum_y = 0, sum_xx = 0, sum_yy = 0, sum_xy = 0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = a.uniform();
    const double y = b.uniform();
    sum_x += x;
    sum_y += y;
    sum_xx += x * x;
    sum_yy += y * y;
    sum_xy += x * y;
  }
  const double n = kSamples;
  const double cov = sum_xy / n - (sum_x / n) * (sum_y / n);
  const double var_x = sum_xx / n - (sum_x / n) * (sum_x / n);
  const double var_y = sum_yy / n - (sum_y / n) * (sum_y / n);
  const double r = cov / std::sqrt(var_x * var_y);
  EXPECT_LT(std::abs(r), 4.0 / std::sqrt(n)) << "correlation " << r;
}

TEST(RngSplit, SameStreamFromDifferentSeedsDecorrelates) {
  Rng a = Rng(1).split(3);
  Rng b = Rng(2).split(3);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngSplit, Splitmix64MatchesReferenceVectors) {
  // Reference outputs of the SplitMix64 sequence seeded with 0 and
  // 0x9E3779B97F4A7C15 (from the public-domain reference
  // implementation): splitmix64(state) here is the one-step output
  // for the *pre-incremented* state.
  EXPECT_EQ(splitmix64(0x0ULL), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(0x9E3779B97F4A7C15ULL), 0x6E789E6AA1B965F4ULL);
}

TEST(RngSplit, SeedAccessorReportsConstructionSeed) {
  EXPECT_EQ(Rng(99).seed(), 99u);
  const Rng root(5);
  EXPECT_EQ(root.split(0).seed(), root.split(0).seed());
  EXPECT_NE(root.split(0).seed(), root.split(1).seed());
}

}  // namespace
}  // namespace bevr::sim
