#include "bevr/sim/event_queue.h"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace bevr::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(3.0, [&order] { order.push_back(3); });
  queue.schedule(1.0, [&order] { order.push_back(1); });
  queue.schedule(2.0, [&order] { order.push_back(2); });
  while (queue.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, FifoAmongSimultaneousEvents) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(1.0, [&order] { order.push_back(1); });
  queue.schedule(1.0, [&order] { order.push_back(2); });
  queue.schedule(1.0, [&order] { order.push_back(3); });
  while (queue.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue queue;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) queue.schedule_in(1.0, chain);
  };
  queue.schedule(0.0, chain);
  while (queue.step()) {
  }
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(queue.now(), 4.0);
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue queue;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    queue.schedule(static_cast<double>(i), [&fired] { ++fired; });
  }
  queue.run_until(5.5);
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(queue.now(), 5.5);
  EXPECT_EQ(queue.pending(), 5u);
}

TEST(EventQueue, RefusesPastScheduling) {
  EventQueue queue;
  queue.schedule(5.0, [] {});
  queue.step();
  EXPECT_THROW(queue.schedule(4.0, [] {}), std::invalid_argument);
  EXPECT_NO_THROW(queue.schedule(5.0, [] {}));  // "now" is allowed
}

TEST(EventQueue, EmptyBehaviour) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.step());
  EXPECT_DOUBLE_EQ(queue.now(), 0.0);
}

TEST(EventQueueCancel, CancelledEventNeverFires) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(1.0, [&order] { order.push_back(1); });
  const auto doomed = queue.schedule(2.0, [&order] { order.push_back(2); });
  queue.schedule(3.0, [&order] { order.push_back(3); });
  EXPECT_TRUE(queue.cancel(doomed));
  while (queue.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueueCancel, DoubleCancelAndCancelAfterFireReturnFalse) {
  EventQueue queue;
  const auto id = queue.schedule(1.0, [] {});
  EXPECT_TRUE(queue.cancel(id));
  EXPECT_FALSE(queue.cancel(id));  // already cancelled

  const auto fired = queue.schedule(2.0, [] {});
  while (queue.step()) {
  }
  EXPECT_FALSE(queue.cancel(fired));       // already fired
  EXPECT_FALSE(queue.cancel(9999999));     // never existed
}

TEST(EventQueueCancel, FifoPreservedAroundInterleavedCancels) {
  // Cancelling events between simultaneous survivors must not perturb
  // the survivors' FIFO order (cancellation is lazy; the heap entries
  // are skipped, not reshuffled).
  EventQueue queue;
  std::vector<int> order;
  std::vector<EventQueue::EventId> doomed;
  for (int i = 0; i < 6; ++i) {
    const auto id =
        queue.schedule(1.0, [&order, i] { order.push_back(i); });
    if (i % 2 == 1) doomed.push_back(id);
  }
  for (const auto id : doomed) EXPECT_TRUE(queue.cancel(id));
  while (queue.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4}));
}

TEST(EventQueueCancel, PendingAndEmptyCountLiveEventsOnly) {
  EventQueue queue;
  const auto a = queue.schedule(1.0, [] {});
  queue.schedule(2.0, [] {});
  EXPECT_EQ(queue.pending(), 2u);
  EXPECT_TRUE(queue.cancel(a));
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_FALSE(queue.empty());
  queue.step();
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_TRUE(queue.empty());
  // The cancelled entry still parked in the heap must not make step()
  // report progress.
  EXPECT_FALSE(queue.step());
}

TEST(EventQueueCancel, CancelledTopDoesNotAdvanceClock) {
  // step() skips cancelled events without running the clock forward to
  // their timestamps.
  EventQueue queue;
  const auto a = queue.schedule(1.0, [] {});
  queue.schedule(5.0, [] {});
  queue.cancel(a);
  EXPECT_TRUE(queue.step());
  EXPECT_DOUBLE_EQ(queue.now(), 5.0);
}

TEST(EventQueueCancel, RunUntilIgnoresCancelledBeyondHorizon) {
  // A cancelled event inside the horizon and a live one beyond it:
  // run_until must fire nothing and still land on the horizon.
  EventQueue queue;
  int fired = 0;
  const auto a = queue.schedule(1.0, [&fired] { ++fired; });
  queue.schedule(10.0, [&fired] { ++fired; });
  queue.cancel(a);
  queue.run_until(5.0);
  EXPECT_EQ(fired, 0);
  EXPECT_DOUBLE_EQ(queue.now(), 5.0);
  EXPECT_EQ(queue.pending(), 1u);
}

TEST(EventQueueCancel, EventsCanCancelOtherEvents) {
  // The admission engine's pattern: a cancel event retracts a pending
  // start event at runtime.
  EventQueue queue;
  std::vector<int> order;
  const auto start =
      queue.schedule(3.0, [&order] { order.push_back(3); });
  queue.schedule(1.0, [&order, &queue, start] {
    order.push_back(1);
    EXPECT_TRUE(queue.cancel(start));
  });
  while (queue.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1}));
}

TEST(EventQueueCancel, DeterministicAcrossIdenticalRuns) {
  // Same schedule/cancel sequence → same firing order and clock, run
  // after run (tokens are assigned deterministically).
  const auto run = [] {
    EventQueue queue;
    std::vector<int> order;
    std::vector<EventQueue::EventId> ids;
    for (int i = 0; i < 20; ++i) {
      ids.push_back(queue.schedule(static_cast<double>(i % 5),
                                   [&order, i] { order.push_back(i); }));
    }
    for (int i = 0; i < 20; i += 3) queue.cancel(ids[static_cast<std::size_t>(i)]);
    while (queue.step()) {
    }
    return order;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace bevr::sim
