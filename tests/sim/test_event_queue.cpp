#include "bevr/sim/event_queue.h"

#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace bevr::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(3.0, [&order] { order.push_back(3); });
  queue.schedule(1.0, [&order] { order.push_back(1); });
  queue.schedule(2.0, [&order] { order.push_back(2); });
  while (queue.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, FifoAmongSimultaneousEvents) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(1.0, [&order] { order.push_back(1); });
  queue.schedule(1.0, [&order] { order.push_back(2); });
  queue.schedule(1.0, [&order] { order.push_back(3); });
  while (queue.step()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue queue;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) queue.schedule_in(1.0, chain);
  };
  queue.schedule(0.0, chain);
  while (queue.step()) {
  }
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(queue.now(), 4.0);
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue queue;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    queue.schedule(static_cast<double>(i), [&fired] { ++fired; });
  }
  queue.run_until(5.5);
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(queue.now(), 5.5);
  EXPECT_EQ(queue.pending(), 5u);
}

TEST(EventQueue, RefusesPastScheduling) {
  EventQueue queue;
  queue.schedule(5.0, [] {});
  queue.step();
  EXPECT_THROW(queue.schedule(4.0, [] {}), std::invalid_argument);
  EXPECT_NO_THROW(queue.schedule(5.0, [] {}));  // "now" is allowed
}

TEST(EventQueue, EmptyBehaviour) {
  EventQueue queue;
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.step());
  EXPECT_DOUBLE_EQ(queue.now(), 0.0);
}

}  // namespace
}  // namespace bevr::sim
