// Property sweeps over the flow-level simulator: statistical
// invariants that must hold for every seed, architecture, and utility
// scoring mode.
#include <cmath>
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "bevr/numerics/erlang.h"
#include "bevr/sim/simulator.h"
#include "bevr/utility/utility.h"

namespace bevr::sim {
namespace {

SimulationConfig sweep_config(std::uint64_t seed) {
  SimulationConfig config;
  config.capacity = 100.0;
  config.horizon = 3000.0;
  config.warmup = 150.0;
  config.seed = seed;
  return config;
}

SimulationReport run(SimulationConfig config, UtilityMode mode,
                     Architecture architecture, std::int64_t limit) {
  config.utility_mode = mode;
  config.architecture = architecture;
  config.admission_limit = limit;
  const FlowSimulator simulator(
      config, std::make_shared<utility::AdaptiveExp>(),
      std::make_shared<PoissonArrivals>(100.0),
      std::make_shared<ExponentialHolding>(1.0));
  return simulator.run();
}

class SimSeedSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, UtilityMode>> {
};

// Occupancy conservation: time-average occupancy equals the carried
// load, λ·(1 − blocking)·τ (Little's law for the loss system).
TEST_P(SimSeedSweep, LittlesLawHolds) {
  const auto [seed, mode] = GetParam();
  const auto report =
      run(sweep_config(seed), mode, Architecture::kReservation, 100);
  const double carried = 100.0 * (1.0 - report.blocking_probability);
  EXPECT_NEAR(report.mean_occupancy, carried, 0.03 * carried);
}

// The occupancy pmf is a distribution.
TEST_P(SimSeedSweep, OccupancyPmfNormalises) {
  const auto [seed, mode] = GetParam();
  const auto report =
      run(sweep_config(seed), mode, Architecture::kBestEffort, 0);
  double total = 0.0;
  for (const double p : report.occupancy_pmf) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// Utilities are valid probabilities-of-performance: within [0, 1]
// without retries.
TEST_P(SimSeedSweep, MeanUtilityInRange) {
  const auto [seed, mode] = GetParam();
  for (const auto architecture :
       {Architecture::kBestEffort, Architecture::kReservation}) {
    const auto report = run(sweep_config(seed), mode, architecture, 100);
    EXPECT_GE(report.mean_utility, 0.0);
    EXPECT_LE(report.mean_utility, 1.0);
    EXPECT_GT(report.flows_scored, 100'000u);
  }
}

// Lifetime-minimum scoring can never beat snapshot scoring in the
// aggregate (min over the lifetime ≤ any snapshot).
TEST_P(SimSeedSweep, MinimumModeIsPessimistic) {
  const auto [seed, mode] = GetParam();
  (void)mode;
  const auto snapshot = run(sweep_config(seed),
                            UtilityMode::kSnapshotAtAdmission,
                            Architecture::kBestEffort, 0);
  const auto minimum = run(sweep_config(seed), UtilityMode::kLifetimeMinimum,
                           Architecture::kBestEffort, 0);
  EXPECT_LE(minimum.mean_utility, snapshot.mean_utility + 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SimSeedSweep,
    ::testing::Combine(::testing::Values(1u, 7u, 42u),
                       ::testing::Values(UtilityMode::kSnapshotAtAdmission,
                                         UtilityMode::kTimeAverage)),
    [](const ::testing::TestParamInfo<std::tuple<std::uint64_t, UtilityMode>>&
           param_info) {
      return "seed" + std::to_string(std::get<0>(param_info.param)) +
             (std::get<1>(param_info.param) ==
                      UtilityMode::kSnapshotAtAdmission
                  ? "_snapshot"
                  : "_timeavg");
    });

// Blocking decreases monotonically in the admission limit and tracks
// Erlang-B across a range of limits.
TEST(SimulatorProperties, BlockingMonotoneInLimit) {
  double previous = 1.0;
  for (const std::int64_t limit : {70LL, 85LL, 100LL, 115LL, 130LL}) {
    const auto report =
        run(sweep_config(3), UtilityMode::kSnapshotAtAdmission,
            Architecture::kReservation, limit);
    EXPECT_LT(report.blocking_probability, previous + 0.01)
        << "limit=" << limit;
    EXPECT_NEAR(report.blocking_probability,
                numerics::erlang_b(100.0, limit), 0.025)
        << "limit=" << limit;
    previous = report.blocking_probability;
  }
}

// Different seeds agree on the aggregate within Monte-Carlo noise —
// guards against seed-dependent bias in the event loop.
TEST(SimulatorProperties, SeedsAgreeOnAggregates) {
  const auto a = run(sweep_config(11), UtilityMode::kSnapshotAtAdmission,
                     Architecture::kBestEffort, 0);
  const auto b = run(sweep_config(1213), UtilityMode::kSnapshotAtAdmission,
                     Architecture::kBestEffort, 0);
  EXPECT_NEAR(a.mean_utility, b.mean_utility, 0.01);
  EXPECT_NEAR(a.mean_occupancy, b.mean_occupancy, 2.0);
}

}  // namespace
}  // namespace bevr::sim
