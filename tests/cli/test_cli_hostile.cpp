// Hostile-input tests for the CLI front doors, run as real
// subprocesses against the installed binaries (paths injected by CMake
// via BEVR_RUN_BINARY / BEVR_BENCH_BINARY): unknown flags, missing
// values, out-of-range integers and junk positionals must print usage
// and exit 2 — never crash, never start a run.
//
// popen() gives us exit status and output in one call; every case
// asserts on both.
#include <array>
#include <cstdio>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#ifndef BEVR_RUN_BINARY
#error "BEVR_RUN_BINARY must be defined to the bevr_run path"
#endif
#ifndef BEVR_BENCH_BINARY
#error "BEVR_BENCH_BINARY must be defined to the bevr_bench path"
#endif
#ifndef BEVR_DAR_STUDY_BINARY
#error "BEVR_DAR_STUDY_BINARY must be defined to the dar_network_study path"
#endif

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;  ///< stdout + stderr interleaved
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  FILE* pipe = popen((command + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buffer{};
  std::size_t n = 0;
  while ((n = std::fread(buffer.data(), 1, buffer.size(), pipe)) > 0) {
    result.output.append(buffer.data(), n);
  }
  const int status = pclose(pipe);
  // popen runs through the shell: normal termination reports the exit
  // code; a crash (signal) shows up as 128+sig from the shell or as
  // WIFSIGNALED — either way it won't equal 2, which is the assertion.
  result.exit_code = (status >= 0 && WIFEXITED(status))
                         ? WEXITSTATUS(status)
                         : -1;
  return result;
}

void expect_usage_exit(const std::string& binary, const std::string& args,
                       const char* needle) {
  const CommandResult result = run_command(binary + " " + args);
  SCOPED_TRACE(binary + " " + args + "\n--- output ---\n" + result.output);
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
  if (needle != nullptr) {
    EXPECT_NE(result.output.find(needle), std::string::npos);
  }
}

TEST(BevrRunHostile, UnknownFlags) {
  expect_usage_exit(BEVR_RUN_BINARY, "--frobnicate", "unknown option");
  expect_usage_exit(BEVR_RUN_BINARY, "fig2_rigid --x", "unknown option");
  expect_usage_exit(BEVR_RUN_BINARY, "-q", "unknown option");
}

TEST(BevrRunHostile, MissingValues) {
  expect_usage_exit(BEVR_RUN_BINARY, "fig2_rigid --threads", nullptr);
  expect_usage_exit(BEVR_RUN_BINARY, "fig2_rigid --format", nullptr);
  expect_usage_exit(BEVR_RUN_BINARY, "fig2_rigid --output", nullptr);
  expect_usage_exit(BEVR_RUN_BINARY, "fig2_rigid --seed", nullptr);
}

TEST(BevrRunHostile, OutOfRangeAndMalformedInts) {
  expect_usage_exit(BEVR_RUN_BINARY, "fig2_rigid --threads -3",
                    "--threads must be an integer in [0, 256]");
  expect_usage_exit(BEVR_RUN_BINARY, "fig2_rigid --threads 257",
                    "--threads must be an integer in [0, 256]");
  expect_usage_exit(BEVR_RUN_BINARY, "fig2_rigid --threads 1e3",
                    "--threads");
  expect_usage_exit(BEVR_RUN_BINARY,
                    "fig2_rigid --threads 99999999999999999999", "--threads");
  expect_usage_exit(BEVR_RUN_BINARY, "fig2_rigid --seed -1", "--seed");
  expect_usage_exit(BEVR_RUN_BINARY, "fig2_rigid --snapshot-every 0",
                    "--snapshot-every");
}

TEST(BevrRunHostile, BadCombinationsAndTargets) {
  expect_usage_exit(BEVR_RUN_BINARY, "", "no scenario given");
  expect_usage_exit(BEVR_RUN_BINARY, "no_such_scenario_xyz", "no scenario");
  expect_usage_exit(BEVR_RUN_BINARY, "fig2_rigid fig3_rigid",
                    "more than one scenario");
  expect_usage_exit(BEVR_RUN_BINARY, "--list=fig2",
                    "--list does not take a value");
  expect_usage_exit(BEVR_RUN_BINARY, "fig2_rigid --format=xml",
                    "--format must be csv or jsonl");
  expect_usage_exit(BEVR_RUN_BINARY, "fig2_rigid --report=yaml",
                    "--report must be text, json or prom");
}

TEST(BevrRunHostile, ListStaysHealthy) {
  const CommandResult result =
      run_command(std::string(BEVR_RUN_BINARY) + " --list");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("scenario(s)"), std::string::npos);
}

TEST(BevrBenchHostile, UnknownFlags) {
  expect_usage_exit(BEVR_BENCH_BINARY, "--frobnicate", "unknown option");
  expect_usage_exit(BEVR_BENCH_BINARY, "--smoke --x", "unknown option");
}

TEST(BevrBenchHostile, MissingValues) {
  expect_usage_exit(BEVR_BENCH_BINARY, "--filter", nullptr);
  expect_usage_exit(BEVR_BENCH_BINARY, "--json-out", nullptr);
  expect_usage_exit(BEVR_BENCH_BINARY, "--baseline", nullptr);
  expect_usage_exit(BEVR_BENCH_BINARY, "--reps", nullptr);
}

TEST(BevrBenchHostile, MalformedValues) {
  expect_usage_exit(BEVR_BENCH_BINARY, "--reps -2", nullptr);
  expect_usage_exit(BEVR_BENCH_BINARY, "--reps abc", nullptr);
  expect_usage_exit(BEVR_BENCH_BINARY, "--smoke=yes",
                    "--smoke does not take a value");
}

TEST(BevrBenchHostile, HostileBaselineArtifact) {
  // A corrupt baseline must be a clean failure, not a crash: feed the
  // compare path /dev/null (empty ⇒ json parse error).
  const CommandResult result = run_command(
      std::string(BEVR_BENCH_BINARY) +
      " service_closed_loop --smoke --baseline /dev/null"
      " --json-out /tmp/bevr_cli_hostile_artifact.json");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("json parse error"), std::string::npos)
      << result.output;
}

TEST(DarStudyHostile, UnknownFlagsAndMissingValues) {
  expect_usage_exit(BEVR_DAR_STUDY_BINARY, "--frobnicate",
                    "unknown argument");
  expect_usage_exit(BEVR_DAR_STUDY_BINARY, "extra_positional",
                    "unknown argument");
  expect_usage_exit(BEVR_DAR_STUDY_BINARY, "--topology",
                    "--topology needs a file path");
}

TEST(DarStudyHostile, MissingTopologyFile) {
  expect_usage_exit(BEVR_DAR_STUDY_BINARY,
                    "--topology /nonexistent/bevr/topo.txt", "error:");
}

TEST(DarStudyHostile, MalformedTopologyFilesExitTwoNamingTheLine) {
  const std::string dir = ::testing::TempDir();
  const auto write_and_expect = [&](const char* name, const char* contents,
                                    const char* needle) {
    const std::string path = dir + name;
    FILE* out = std::fopen(path.c_str(), "w");
    ASSERT_NE(out, nullptr);
    std::fputs(contents, out);
    std::fclose(out);
    expect_usage_exit(BEVR_DAR_STUDY_BINARY, "--topology " + path, needle);
    std::remove(path.c_str());
  };
  write_and_expect("bevr_cli_topo_truncated.txt", "0 1 10\n2 3\n", "line 2");
  write_and_expect("bevr_cli_topo_dup.txt", "0 1 10\n1 0 4\n", "line 2");
  write_and_expect("bevr_cli_topo_selfloop.txt", "2 2 10\n", "line 1");
  write_and_expect("bevr_cli_topo_zero_cap.txt", "0 1 0\n", "line 1");
  write_and_expect("bevr_cli_topo_garbage.txt", "\x01\xff garbage\n",
                   "line 1");
  write_and_expect("bevr_cli_topo_empty.txt", "# only comments\n",
                   "no links");
}

TEST(DarStudyHostile, WellFormedTopologyFileRuns) {
  const std::string path = ::testing::TempDir() + "bevr_cli_topo_ok.txt";
  FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr);
  // A 4-node ring: multi-hop routes, no alternates for adjacent pairs.
  std::fputs("0 1 10\n1 2 10\n2 3 10\n0 3 10\n", out);
  std::fclose(out);
  const CommandResult result = run_command(
      std::string(BEVR_DAR_STUDY_BINARY) + " --topology " + path);
  std::remove(path.c_str());
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("4 nodes, 4 links"), std::string::npos)
      << result.output;
}

TEST(BevrBenchHostile, ListStaysHealthy) {
  const CommandResult result =
      run_command(std::string(BEVR_BENCH_BINARY) + " --list");
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("service_closed_loop"), std::string::npos);
}

}  // namespace
