// Network engine choreography: scoring, warmup, counters, the
// invariant-auditing sink, and input validation.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "bevr/net2/engine.h"
#include "bevr/net2/policy.h"
#include "bevr/net2/topology.h"
#include "bevr/net2/trace.h"
#include "bevr/sim/rng.h"
#include "bevr/utility/utility.h"

namespace bevr::net2 {
namespace {

using utility::Rigid;

NetPolicyConfig rigid_config(double trunk_reserve = 0.0) {
  NetPolicyConfig config;
  config.pi = std::make_shared<Rigid>(1.0);
  config.trunk_reserve = trunk_reserve;
  return config;
}

NetFlowRequest call(NodeId src, NodeId dst, double submit, double duration) {
  NetFlowRequest req;
  req.src = src;
  req.dst = dst;
  req.submit = submit;
  req.duration = duration;
  return req;
}

TEST(RunNetwork, ScoresAdmittedAndBlockedCalls) {
  const Topology t = build_topology({TopologyKind::kTwoNode, 2, 2.0, {}});
  auto policy = make_net_policy(NetPolicyKind::kDar, t, rigid_config());
  NetTrace trace;
  trace.horizon = 10.0;
  // Two overlapping calls fill the link; the third is blocked; the
  // fourth arrives after a departure and is admitted again.
  trace.requests = {call(0, 1, 0.0, 5.0), call(0, 1, 1.0, 1.0),
                    call(0, 1, 1.5, 1.0), call(0, 1, 3.0, 1.0)};
  const Rigid pi(1.0);
  const NetReport report = run_network(trace, *policy, pi);
  EXPECT_EQ(report.offered, 4u);
  EXPECT_EQ(report.admitted, 3u);
  EXPECT_EQ(report.blocked, 1u);
  EXPECT_EQ(report.alternate_routed, 0u);
  EXPECT_DOUBLE_EQ(report.blocking_probability, 0.25);
  // Rigid π scores 1 for each served call, 0 for the blocked one.
  EXPECT_DOUBLE_EQ(report.mean_utility, 0.75);
  EXPECT_DOUBLE_EQ(report.mean_allocated_rate, 1.0);
  EXPECT_EQ(report.peak_active, 2u);
  EXPECT_EQ(report.peak_link_count, 2);
}

TEST(RunNetwork, WarmupCallsShapeLoadButAreNotScored) {
  const Topology t = build_topology({TopologyKind::kTwoNode, 2, 1.0, {}});
  auto policy = make_net_policy(NetPolicyKind::kDar, t, rigid_config());
  NetTrace trace;
  trace.horizon = 10.0;
  // The warmup call occupies the link when the scored call arrives.
  trace.requests = {call(0, 1, 0.5, 5.0), call(0, 1, 2.0, 1.0)};
  const Rigid pi(1.0);
  NetEngineConfig config;
  config.warmup = 1.0;
  const NetReport report = run_network(trace, *policy, pi, config);
  EXPECT_EQ(report.offered, 1u);
  EXPECT_EQ(report.blocked, 1u);  // blocked by the unscored warmup call
  EXPECT_DOUBLE_EQ(report.blocking_probability, 1.0);
  EXPECT_DOUBLE_EQ(report.mean_utility, 0.0);
  EXPECT_EQ(report.peak_link_count, 1);  // warmup still counts here
}

TEST(RunNetwork, CountsAlternateRoutedCalls) {
  const Topology t = build_topology({TopologyKind::kFullMesh, 3, 1.0, {}});
  auto policy = make_net_policy(NetPolicyKind::kDar, t, rigid_config());
  NetTrace trace;
  trace.horizon = 10.0;
  trace.requests = {call(0, 1, 0.0, 4.0),   // direct
                    call(0, 1, 1.0, 1.0),   // overflows via node 2
                    call(0, 1, 1.5, 1.0)};  // alternates full: lost
  const Rigid pi(1.0);
  const NetReport report = run_network(trace, *policy, pi);
  EXPECT_EQ(report.admitted, 2u);
  EXPECT_EQ(report.alternate_routed, 1u);
  EXPECT_EQ(report.blocked, 1u);
}

TEST(RunNetwork, AuditSinkAcceptsEveryEventOnAHotMesh) {
  // A saturated mesh drives thousands of admit/overflow/release events
  // through each policy; the per-event audit must never fire.
  const Topology t = build_topology({TopologyKind::kFullMesh, 4, 5.0, {}});
  NetTraceSpec spec;
  spec.pair_arrival_rate = 8.0;  // well past per-link capacity
  spec.horizon = 60.0;
  const NetTrace trace = generate_net_trace(t, spec, sim::Rng(21));
  const Rigid pi(1.0);
  NetEngineConfig config;
  config.audit = true;
  for (const NetPolicyKind kind :
       {NetPolicyKind::kBestEffort, NetPolicyKind::kDirectReservation,
        NetPolicyKind::kDar}) {
    auto policy = make_net_policy(kind, t, rigid_config(1.0));
    const NetReport report = run_network(trace, *policy, pi, config);
    EXPECT_GT(report.offered, 0u) << to_string(kind);
    if (kind != NetPolicyKind::kBestEffort) {
      // Capacity 5 per link: the audit plus the peak witness agree.
      EXPECT_LE(policy->ledger().peak_count(0), 5) << to_string(kind);
    }
  }
}

TEST(RunNetwork, DeterministicAcrossRepeatedRuns) {
  const Topology t = build_topology({TopologyKind::kFullMesh, 4, 10.0, {}});
  NetTraceSpec spec;
  spec.pair_arrival_rate = 6.0;
  spec.horizon = 80.0;
  const NetTrace trace = generate_net_trace(t, spec, sim::Rng(33));
  const Rigid pi(1.0);
  NetEngineConfig config;
  config.warmup = 10.0;
  auto a = make_net_policy(NetPolicyKind::kDar, t, rigid_config(2.0));
  auto b = make_net_policy(NetPolicyKind::kDar, t, rigid_config(2.0));
  const NetReport ra = run_network(trace, *a, pi, config);
  const NetReport rb = run_network(trace, *b, pi, config);
  EXPECT_EQ(ra.offered, rb.offered);
  EXPECT_EQ(ra.admitted, rb.admitted);
  EXPECT_EQ(ra.alternate_routed, rb.alternate_routed);
  EXPECT_EQ(ra.mean_utility, rb.mean_utility);
  EXPECT_EQ(ra.blocking_probability, rb.blocking_probability);
  EXPECT_EQ(ra.peak_link_count, rb.peak_link_count);
}

TEST(RunNetwork, RejectsMalformedInputs) {
  const Topology t = build_topology({TopologyKind::kTwoNode, 2, 2.0, {}});
  auto policy = make_net_policy(NetPolicyKind::kDar, t, rigid_config());
  const Rigid pi(1.0);
  NetTrace trace;
  trace.horizon = 10.0;
  trace.requests = {call(0, 1, -1.0, 1.0)};  // negative submit
  EXPECT_THROW((void)run_network(trace, *policy, pi), std::invalid_argument);
  trace.requests = {call(0, 1, 0.0, 0.0)};  // zero duration
  EXPECT_THROW((void)run_network(trace, *policy, pi), std::invalid_argument);
  trace.requests = {call(0, 1, 0.0, 1.0)};
  trace.requests[0].rate = 0.0;
  EXPECT_THROW((void)run_network(trace, *policy, pi), std::invalid_argument);
  NetEngineConfig config;
  config.warmup = -1.0;
  trace.requests[0].rate = 1.0;
  EXPECT_THROW((void)run_network(trace, *policy, pi, config),
               std::invalid_argument);
}

TEST(RunNetwork, EmptyTraceYieldsAnEmptyReport) {
  const Topology t = build_topology({TopologyKind::kTwoNode, 2, 2.0, {}});
  auto policy = make_net_policy(NetPolicyKind::kBestEffort, t, rigid_config());
  const Rigid pi(1.0);
  const NetReport report = run_network(NetTrace{}, *policy, pi);
  EXPECT_EQ(report.offered, 0u);
  EXPECT_DOUBLE_EQ(report.blocking_probability, 0.0);
  EXPECT_DOUBLE_EQ(report.mean_utility, 0.0);
}

}  // namespace
}  // namespace bevr::net2
