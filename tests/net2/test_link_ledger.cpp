// LinkLedger: exact admit/release bookkeeping, all-or-nothing path
// rollback, headroom (trunk reservation), counted slots, best-effort
// join/leave, the invariant audit — and a concurrent storm pinning
// that path admission never oversubscribes a link (the TSan leg).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bevr/net2/ledger.h"
#include "bevr/net2/topology.h"

namespace bevr::net2 {
namespace {

Topology triangle(double capacity) {
  Topology t;
  t.add_link(0, 1, capacity);  // link 0
  t.add_link(1, 2, capacity);  // link 1
  t.add_link(0, 2, capacity);  // link 2
  return t;
}

TEST(LinkLedger, BandwidthAdmitAndReleaseAreExactInverses) {
  const Topology t = triangle(10.0);
  LinkLedger ledger(t);
  const std::vector<LinkId> path{0, 1};
  ASSERT_TRUE(ledger.try_admit_bandwidth(path, 3.0));
  EXPECT_DOUBLE_EQ(ledger.used(0), 3.0);
  EXPECT_DOUBLE_EQ(ledger.used(1), 3.0);
  EXPECT_DOUBLE_EQ(ledger.used(2), 0.0);
  EXPECT_EQ(ledger.count(0), 1);
  EXPECT_EQ(ledger.count(2), 0);
  ledger.release_bandwidth(path, 3.0);
  EXPECT_DOUBLE_EQ(ledger.used(0), 0.0);
  EXPECT_EQ(ledger.count(0), 0);
  EXPECT_EQ(ledger.peak_count(0), 1);  // peak is sticky
  EXPECT_NO_THROW(ledger.audit());
}

TEST(LinkLedger, RefusalRollsBackTheGrabbedPrefix) {
  const Topology t = triangle(10.0);
  LinkLedger ledger(t);
  // Saturate link 1 so a {0, 1} path must roll link 0 back.
  ASSERT_TRUE(ledger.try_admit_bandwidth(std::vector<LinkId>{1}, 10.0));
  EXPECT_FALSE(ledger.try_admit_bandwidth(std::vector<LinkId>{0, 1}, 1.0));
  EXPECT_DOUBLE_EQ(ledger.used(0), 0.0);  // prefix rolled back
  EXPECT_EQ(ledger.count(0), 0);
  EXPECT_EQ(ledger.peak_count(0), 0);  // never counted as admitted
  EXPECT_DOUBLE_EQ(ledger.used(1), 10.0);
}

TEST(LinkLedger, HeadroomImplementsTrunkReservation) {
  const Topology t = triangle(10.0);
  LinkLedger ledger(t);
  const std::vector<LinkId> path{0};
  ASSERT_TRUE(ledger.try_admit_bandwidth(path, 7.0));
  // 3 circuits free: a grab that must leave > 2 free can take 1 more...
  EXPECT_TRUE(ledger.try_admit_bandwidth(path, 1.0, 2.0));
  // ...but not another (2 free == not more than the reservation).
  EXPECT_FALSE(ledger.try_admit_bandwidth(path, 1.0, 2.0));
  // Headroom 0 still admits up to capacity exactly.
  EXPECT_TRUE(ledger.try_admit_bandwidth(path, 2.0, 0.0));
  EXPECT_DOUBLE_EQ(ledger.used(0), 10.0);
  EXPECT_FALSE(ledger.try_admit_bandwidth(path, 1e-9));
}

TEST(LinkLedger, BandwidthArgumentValidation) {
  const Topology t = triangle(10.0);
  LinkLedger ledger(t);
  const std::vector<LinkId> bad{99};
  const std::vector<LinkId> ok{0};
  EXPECT_THROW((void)ledger.try_admit_bandwidth(bad, 1.0),
               std::invalid_argument);
  EXPECT_THROW((void)ledger.try_admit_bandwidth(ok, 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)ledger.try_admit_bandwidth(ok, 1.0, -1.0),
               std::invalid_argument);
}

TEST(LinkLedger, CountedAdmissionHonoursPerLinkLimits) {
  const Topology t = triangle(10.0);
  LinkLedger ledger(t);
  const std::vector<std::int64_t> limits{2, 1, 2};  // indexed by link id
  const std::vector<LinkId> path{0, 1};
  ASSERT_TRUE(ledger.try_admit_counted(path, limits));
  // Link 1 is at its limit of 1: the next path grab must fail and roll
  // link 0 back.
  EXPECT_FALSE(ledger.try_admit_counted(path, limits));
  EXPECT_EQ(ledger.count(0), 1);
  EXPECT_EQ(ledger.count(1), 1);
  // A path avoiding link 1 still fits.
  EXPECT_TRUE(ledger.try_admit_counted(std::vector<LinkId>{0}, limits));
  EXPECT_EQ(ledger.count(0), 2);
  ledger.release_counted(path);
  EXPECT_EQ(ledger.count(0), 1);
  EXPECT_EQ(ledger.count(1), 0);
  EXPECT_NO_THROW(ledger.audit());
}

TEST(LinkLedger, JoinAndLeaveNeverRefuse) {
  const Topology t = triangle(1.0);  // tiny capacity is irrelevant to BE
  LinkLedger ledger(t);
  const std::vector<LinkId> path{0, 1, 2};
  for (int i = 0; i < 5; ++i) ledger.join(path);
  EXPECT_EQ(ledger.count(0), 5);
  EXPECT_EQ(ledger.peak_count(2), 5);
  EXPECT_DOUBLE_EQ(ledger.used(0), 0.0);  // join moves no bandwidth
  for (int i = 0; i < 5; ++i) ledger.leave(path);
  EXPECT_EQ(ledger.count(0), 0);
  EXPECT_NO_THROW(ledger.audit());
}

TEST(LinkLedger, AuditCatchesCorruptedState) {
  const Topology t = triangle(10.0);
  LinkLedger ledger(t);
  const std::vector<LinkId> path{0};
  ASSERT_TRUE(ledger.try_admit_bandwidth(path, 10.0));
  // Double-release drives used below zero: the audit must name it.
  ledger.release_bandwidth(path, 10.0);
  ledger.release_bandwidth(path, 10.0);
  EXPECT_THROW(ledger.audit(), std::logic_error);

  LinkLedger counts(t);
  counts.leave(path);  // count -1
  EXPECT_THROW(counts.audit(), std::logic_error);
}

TEST(LinkLedger, CapacityAndLinkCountMirrorTheTopology) {
  const Topology t = triangle(4.5);
  LinkLedger ledger(t);
  EXPECT_EQ(ledger.link_count(), 3u);
  EXPECT_DOUBLE_EQ(ledger.capacity(1), 4.5);
}

// The TSan storm: many threads slam overlapping two-link paths through
// one ledger. Whatever interleaving happens, (a) no link may ever
// exceed capacity, and (b) after every admit is released the ledger
// must read exactly empty — admits and rollbacks are all-or-nothing.
TEST(LinkLedgerStorm, ConcurrentPathAdmissionNeverOversubscribes) {
  const double kCapacity = 16.0;
  const Topology t = triangle(kCapacity);
  LinkLedger ledger(t);

  constexpr int kThreads = 8;
  constexpr int kAttemptsPerThread = 2000;
  std::atomic<std::int64_t> admitted{0};
  std::atomic<std::int64_t> refused{0};

  const std::vector<std::int64_t> limits{12, 12, 12};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      // Each thread cycles through the three two-link paths of the
      // triangle so every pair of threads contends on a shared link,
      // alternating between the two admission currencies.
      const std::vector<std::vector<LinkId>> paths{
          {0, 1}, {1, 2}, {0, 2}};
      for (int i = 0; i < kAttemptsPerThread; ++i) {
        const auto& path =
            paths[static_cast<std::size_t>(w + i) % paths.size()];
        bool ok = false;
        if (i % 2 == 0) {
          const double headroom = (i % 4 == 0) ? 2.0 : 0.0;
          ok = ledger.try_admit_bandwidth(path, 1.0, headroom);
          if (ok) {
            // Hold briefly so grabs overlap, then release.
            if (i % 8 == 0) std::this_thread::yield();
            ledger.release_bandwidth(path, 1.0);
          }
        } else {
          ok = ledger.try_admit_counted(path, limits);
          if (ok) ledger.release_counted(path);
        }
        (ok ? admitted : refused).fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_GT(admitted.load(), 0);
  for (LinkId id = 0; id < 3; ++id) {
    EXPECT_DOUBLE_EQ(ledger.used(id), 0.0) << "link " << id;
    EXPECT_EQ(ledger.count(id), 0) << "link " << id;
    // At most one in-flight grab per thread at any instant.
    EXPECT_LE(ledger.peak_count(id), kThreads);
  }
  EXPECT_NO_THROW(ledger.audit());
}

}  // namespace
}  // namespace bevr::net2
