// Hostile-input coverage for the topology file reader, mirroring the
// admission trace fuzz layer: every malformed line must raise
// std::invalid_argument naming the offending line — never undefined
// behaviour, never a silently skipped record, never an unbounded
// allocation from a hostile node id.
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "bevr/net2/topology.h"

namespace bevr::net2 {
namespace {

Topology parse(const std::string& text) {
  std::istringstream in(text);
  return parse_topology(in);
}

/// The reader must throw std::invalid_argument whose message mentions
/// "line <n>".
void expect_rejects(const std::string& text, std::size_t line) {
  try {
    (void)parse(text);
    FAIL() << "expected std::invalid_argument for: " << text;
  } catch (const std::invalid_argument& error) {
    const std::string needle = "line " + std::to_string(line);
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "message '" << error.what() << "' does not name " << needle;
  }
}

TEST(ParseTopology, WellFormedRoundTrip) {
  const Topology t = parse(
      "# a b capacity\n"
      "\n"
      "0 1 10.0\n"
      "  1   2 2.5  \n"
      "\t0 2 4\n");
  ASSERT_EQ(t.link_count(), 3u);
  EXPECT_EQ(t.node_count(), 3u);
  EXPECT_DOUBLE_EQ(t.link(1).capacity, 2.5);
  EXPECT_TRUE(t.find_link(2, 0).has_value());
}

TEST(ParseTopology, EmptyAndCommentOnlyInputsYieldEmptyTopologies) {
  EXPECT_EQ(parse("").link_count(), 0u);
  EXPECT_EQ(parse("# nothing\n\n   \n\t\n# more\n").link_count(), 0u);
}

TEST(ParseTopology, TruncatedLines) {
  expect_rejects("0 1 1\n0\n", 2);
  expect_rejects("0 1\n", 1);  // two fields
  expect_rejects("7\n", 1);    // one field
}

TEST(ParseTopology, TrailingFields) {
  expect_rejects("0 1 1 9\n", 1);
  expect_rejects("0 1 1\n1 2 1 bogus\n", 2);
}

TEST(ParseTopology, NonNumericTokens) {
  expect_rejects("zero 1 1\n", 1);
  expect_rejects("0 x 1\n", 1);
  expect_rejects("0 1 fast\n", 1);
}

TEST(ParseTopology, NonIntegerNodeIds) {
  expect_rejects("0.5 1 1\n", 1);
  expect_rejects("0 1.5 1\n", 1);
  expect_rejects("1e-3 1 1\n", 1);
}

TEST(ParseTopology, NegativeAndOverflowingNodeIds) {
  expect_rejects("-1 0 1\n", 1);
  expect_rejects("0 -2 1\n", 1);
  // A hostile id past kMaxNodeId must be refused, not used to size a
  // dense node table.
  expect_rejects("0 99999999999 1\n", 1);
  expect_rejects("0 1e18 1\n", 1);
}

TEST(ParseTopology, BadCapacities) {
  expect_rejects("0 1 0\n", 1);
  expect_rejects("0 1 -4\n", 1);
  expect_rejects("0 1 nan\n", 1);
  expect_rejects("0 1 inf\n", 1);
}

TEST(ParseTopology, SelfLoopsAndDuplicates) {
  expect_rejects("3 3 1\n", 1);
  expect_rejects("0 1 1\n1 0 2\n", 2);  // duplicate, order-insensitive
}

TEST(ParseTopology, GarbageBytes) {
  expect_rejects("\x01\x02\x7f\n", 1);
  expect_rejects("0 1 1\n\xff\xfe garbage\n", 2);
  expect_rejects(std::string("0 \0 1\n", 6), 1);  // embedded NUL
}

TEST(LoadTopology, MissingAndEmptyFiles) {
  EXPECT_THROW((void)load_topology("/nonexistent/bevr/topology.txt"),
               std::invalid_argument);
  const std::string path = ::testing::TempDir() + "bevr_net2_empty_topo.txt";
  { std::ofstream(path) << "# only a comment\n"; }
  // Parses, but a usable topology needs at least one link.
  EXPECT_THROW((void)load_topology(path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(LoadTopology, RoundTripThroughAFile) {
  const std::string path = ::testing::TempDir() + "bevr_net2_topo.txt";
  { std::ofstream(path) << "0 1 10\n1 2 10\n2 0 10\n"; }
  const Topology t = load_topology(path);
  EXPECT_EQ(t.link_count(), 3u);
  EXPECT_EQ(t.node_count(), 3u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bevr::net2
