// Erlang fixed-point evaluator: validation, the exact r = 0 Erlang-B
// reduction, convergence reporting, monotonicity, the pinned N → ∞
// reference value, and the simulator-vs-fixed-point agreement at three
// network sizes (the Fayolle et al. mean-field convergence check).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "bevr/net2/engine.h"
#include "bevr/net2/fixed_point.h"
#include "bevr/net2/policy.h"
#include "bevr/net2/topology.h"
#include "bevr/net2/trace.h"
#include "bevr/numerics/erlang.h"
#include "bevr/sim/rng.h"
#include "bevr/utility/utility.h"

namespace bevr::net2 {
namespace {

MeanFieldSpec spec_with(std::int64_t capacity, double pair_load,
                        std::int64_t trunk_reserve) {
  MeanFieldSpec spec;
  spec.capacity = capacity;
  spec.pair_load = pair_load;
  spec.trunk_reserve = trunk_reserve;
  return spec;
}

TEST(MeanFieldSpec, ValidateRejectsOutOfRangeFields) {
  EXPECT_NO_THROW(spec_with(10, 5.0, 2).validate());
  EXPECT_THROW(spec_with(0, 5.0, 0).validate(), std::invalid_argument);
  EXPECT_THROW(spec_with(10, 0.0, 0).validate(), std::invalid_argument);
  EXPECT_THROW(spec_with(10, 5.0, -1).validate(), std::invalid_argument);
  EXPECT_THROW(spec_with(10, 5.0, 11).validate(), std::invalid_argument);
  MeanFieldSpec bad = spec_with(10, 5.0, 2);
  bad.damping = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = spec_with(10, 5.0, 2);
  bad.damping = 1.5;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = spec_with(10, 5.0, 2);
  bad.max_iterations = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = spec_with(10, 5.0, 2);
  bad.tolerance = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

// r = 0 makes the link chain exactly M/M/C/C at load a + σ: at the
// fixed point the reported blockings must BE the Erlang-B recursion's
// answer at the converged offered load — the same function, bit for
// bit, tying net2 to the single-link yardstick.
TEST(EvaluateMeanField, ZeroReserveReducesToErlangB) {
  const MeanFieldResult result = evaluate_mean_field(spec_with(10, 7.0, 0));
  ASSERT_TRUE(result.converged);
  const double b =
      numerics::erlang_b(7.0 + result.overflow_load, 10);
  EXPECT_EQ(result.blocking_direct, b);
  EXPECT_EQ(result.blocking_alternate, b);
  EXPECT_DOUBLE_EQ(result.blocking, b * (1.0 - (1.0 - b) * (1.0 - b)));
  // Overflow raises the effective load, so DAR at r = 0 blocks a
  // direct call more often than the overflow-free link would.
  EXPECT_GT(result.blocking_direct, numerics::erlang_b(7.0, 10));
}

// r = C shuts every overflow out (an alternate leg can never keep more
// than C circuits free): σ = 0 and the lost-call probability is plain
// Erlang-B at the direct load.
TEST(EvaluateMeanField, FullReserveIsPlainErlangB) {
  const MeanFieldResult result = evaluate_mean_field(spec_with(10, 7.0, 10));
  ASSERT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.overflow_load, 0.0);
  EXPECT_DOUBLE_EQ(result.blocking_alternate, 1.0);
  EXPECT_DOUBLE_EQ(result.blocking, numerics::erlang_b(7.0, 10));
}

TEST(EvaluateMeanField, ReportsNonConvergenceHonestly) {
  MeanFieldSpec spec = spec_with(10, 9.0, 2);
  spec.max_iterations = 1;
  const MeanFieldResult result = evaluate_mean_field(spec);
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.iterations, 1);
  EXPECT_GT(result.residual, spec.tolerance);
}

TEST(EvaluateMeanField, DeterministicPureFunctionOfTheSpec) {
  const MeanFieldResult a = evaluate_mean_field(spec_with(10, 8.0, 2));
  const MeanFieldResult b = evaluate_mean_field(spec_with(10, 8.0, 2));
  EXPECT_EQ(a.blocking, b.blocking);
  EXPECT_EQ(a.overflow_load, b.overflow_load);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(EvaluateMeanField, BlockingIsMonotoneInLoadAndCapacity) {
  double previous = -1.0;
  for (const double a : {2.0, 5.0, 8.0, 12.0, 20.0}) {
    const MeanFieldResult result = evaluate_mean_field(spec_with(10, a, 2));
    ASSERT_TRUE(result.converged) << "a = " << a;
    EXPECT_GT(result.blocking, previous) << "a = " << a;
    previous = result.blocking;
  }
  previous = 2.0;
  for (const std::int64_t c : {8, 12, 16, 24}) {
    const MeanFieldResult result = evaluate_mean_field(spec_with(c, 8.0, 2));
    ASSERT_TRUE(result.converged) << "C = " << c;
    EXPECT_LT(result.blocking, previous) << "C = " << c;
    previous = result.blocking;
  }
}

// Above the link capacity, unprotected overflow cascades: every
// alternate-routed call consumes two circuits, so r = 0 loses more
// calls than trunk reservation — the instability trunk reservation
// exists to prevent.
TEST(EvaluateMeanField, TrunkReservationHelpsUnderOverload) {
  const double overload = 14.0;
  const MeanFieldResult r0 = evaluate_mean_field(spec_with(10, overload, 0));
  const MeanFieldResult r2 = evaluate_mean_field(spec_with(10, overload, 2));
  ASSERT_TRUE(r0.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_LT(r2.blocking, r0.blocking);
  // The reservation also throttles the overflow load itself.
  EXPECT_LT(r2.overflow_load, r0.overflow_load);
}

// Pinned mean-field reference at the roadmap operating point
// (C = 10, a = 7, r = 2): the N-independent limit the blocking-vs-N
// scenario converges to. Any change to the fixed point moves this.
TEST(EvaluateMeanField, PinnedReferenceValue) {
  const MeanFieldResult result = evaluate_mean_field(spec_with(10, 7.0, 2));
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.blocking, 0.0602767144623248, 1e-12);
}

// A mean-field point at C = 10⁵ stands for ~10⁷ concurrent circuits
// on a modest mesh — far past what the event simulator could replay —
// and must still evaluate in well under a second.
// erlang_b_offered_load places the per-pair load at 1% Erlang-B
// blocking, so the answer has a known scale. The tolerance is loosened
// to 1e-9: at this capacity the log-space weight sums carry ~1e-10 of
// FP noise, below which the residual cannot settle.
TEST(EvaluateMeanField, ReachesMillionsOfCircuits) {
  const std::int64_t capacity = 100000;
  const double load = numerics::erlang_b_offered_load(capacity, 0.01);
  MeanFieldSpec spec = spec_with(capacity, load, 2);
  spec.tolerance = 1e-9;
  const MeanFieldResult result = evaluate_mean_field(spec);
  ASSERT_TRUE(result.converged);
  EXPECT_LT(result.iterations, 1000);
  EXPECT_GT(result.blocking, 0.0);
  EXPECT_LT(result.blocking, 0.1);
}

// The validation tentpole: the discrete-event simulator and the fixed
// point must agree on DAR blocking at three network sizes, within a
// documented tolerance of 0.01 absolute on the seed-averaged blocking
// (true blocking ≈ 0.06; eight seeds put the averaged 3σ noise near
// 0.003, and the measured finite-size bias is +0.004 at N = 4 falling
// to +0.001 by N = 8). The qualitative Fayolle et al. mean-field
// trend — agreement improves as N grows — is asserted on the
// seed-averaged error, where the measured N = 4 vs N = 8 separation
// is a factor of ≈ 5, far past the noise.
TEST(MeanFieldValidation, SimulatorAgreesAtThreeNetworkSizes) {
  constexpr double kPairLoad = 7.0;
  constexpr double kTolerance = 0.01;
  constexpr int kSeeds = 8;
  const MeanFieldResult mf = evaluate_mean_field(spec_with(10, kPairLoad, 2));
  ASSERT_TRUE(mf.converged);

  const auto pi = std::make_shared<utility::Rigid>(1.0);
  double first_mean_error = 0.0;
  double last_mean_error = 0.0;
  for (const int nodes : {4, 6, 8}) {
    const Topology t =
        build_topology({TopologyKind::kFullMesh, nodes, 10.0, {}});
    double error_sum = 0.0;
    for (int seed = 0; seed < kSeeds; ++seed) {
      NetTraceSpec trace_spec;
      trace_spec.pair_arrival_rate = kPairLoad;
      trace_spec.horizon = 300.0;
      const NetTrace trace = generate_net_trace(
          t, trace_spec, sim::Rng(static_cast<std::uint64_t>(100 + seed)));
      NetPolicyConfig config;
      config.pi = pi;
      config.trunk_reserve = 2.0;
      auto policy = make_net_policy(NetPolicyKind::kDar, t, config);
      NetEngineConfig engine;
      engine.warmup = 30.0;
      const NetReport report = run_network(trace, *policy, *pi, engine);
      error_sum += std::abs(report.blocking_probability - mf.blocking);
    }
    const double mean_error = error_sum / kSeeds;
    EXPECT_LT(mean_error, kTolerance) << "N = " << nodes;
    if (nodes == 4) first_mean_error = mean_error;
    if (nodes == 8) last_mean_error = mean_error;
  }
  EXPECT_LT(last_mean_error, first_mean_error);
}

}  // namespace
}  // namespace bevr::net2
