// The single-link reduction: on a two-node topology with integral
// capacity, unit rates, and no book-ahead, every network policy must
// reproduce its single-link admission counterpart bit for bit — the
// engines replay the same trace through the same event choreography,
// so offered/admitted/blocked, mean utility, and blocking probability
// are compared with exact double equality, not tolerances. Plus the
// blocking monotonicity properties in load and capacity.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bevr/admission/engine.h"
#include "bevr/admission/policy.h"
#include "bevr/admission/trace.h"
#include "bevr/net2/engine.h"
#include "bevr/net2/policy.h"
#include "bevr/net2/topology.h"
#include "bevr/net2/trace.h"
#include "bevr/sim/rng.h"
#include "bevr/utility/utility.h"

namespace bevr::net2 {
namespace {

using utility::AdaptiveExp;
using utility::Rigid;
using utility::UtilityFunction;

constexpr double kCapacity = 10.0;
constexpr double kWarmup = 20.0;

admission::ArrivalTrace single_link_trace(double arrival_rate,
                                          std::uint64_t seed) {
  admission::TraceSpec spec;
  spec.arrival_rate = arrival_rate;
  spec.mean_duration = 1.0;
  spec.rate = 1.0;
  spec.horizon = 200.0;
  return admission::generate_trace(spec, sim::Rng(seed));
}

admission::AdmissionReport run_single_link(
    const admission::ArrivalTrace& trace, admission::PolicyKind kind,
    const std::shared_ptr<const UtilityFunction>& pi) {
  admission::PolicyConfig config;
  config.capacity = kCapacity;
  config.pi = pi;
  auto policy = admission::make_policy(kind, config);
  admission::EngineConfig engine;
  engine.warmup = kWarmup;
  return admission::run_admission(trace, *policy, *pi, engine);
}

NetReport run_two_node(const admission::ArrivalTrace& trace,
                       NetPolicyKind kind,
                       const std::shared_ptr<const UtilityFunction>& pi) {
  static const Topology topology =
      build_topology({TopologyKind::kTwoNode, 2, kCapacity, {}});
  const NetTrace lifted = from_single_link(trace, 0, 1);
  NetPolicyConfig config;
  config.pi = pi;
  config.trunk_reserve = 0.0;
  auto policy = make_net_policy(kind, topology, config);
  NetEngineConfig engine;
  engine.warmup = kWarmup;
  engine.audit = true;  // the reduction runs under the invariant sink
  return run_network(lifted, *policy, *pi, engine);
}

void expect_bit_identical(const admission::AdmissionReport& single,
                          const NetReport& net) {
  EXPECT_EQ(single.offered, net.offered);
  EXPECT_EQ(single.admitted, net.admitted);
  EXPECT_EQ(single.blocked, net.blocked);
  // Exact double equality: same arithmetic in the same order.
  EXPECT_EQ(single.mean_utility, net.mean_utility);
  EXPECT_EQ(single.blocking_probability, net.blocking_probability);
  EXPECT_EQ(single.mean_allocated_rate, net.mean_allocated_rate);
  EXPECT_EQ(single.peak_active, net.peak_active);
}

// Reservation architecture: per-link k_max slots on one link IS the
// single-link online-k_max policy. Rigid b̂=1 at C=10 gives k_max=10
// and the exact share 1.0, so every decision and every scored value
// must coincide bit for bit.
TEST(SingleLinkReduction, DirectReservationMatchesOnlineKmax) {
  const auto pi = std::make_shared<Rigid>(1.0);
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto trace = single_link_trace(12.0, seed);
    expect_bit_identical(
        run_single_link(trace, admission::PolicyKind::kOnlineKmax, pi),
        run_two_node(trace, NetPolicyKind::kDirectReservation, pi));
  }
}

// DAR with r=0 on two nodes has no alternates: it is plain per-link
// admission at the requested rate, which with unit rates on integral
// capacity makes exactly the count < C decision of online k_max.
TEST(SingleLinkReduction, DarWithZeroReserveMatchesOnlineKmax) {
  const auto pi = std::make_shared<Rigid>(1.0);
  for (const std::uint64_t seed : {4u, 5u, 6u}) {
    const auto trace = single_link_trace(12.0, seed);
    const NetReport net =
        run_two_node(trace, NetPolicyKind::kDar, pi);
    EXPECT_EQ(net.alternate_routed, 0u);  // nowhere to overflow to
    expect_bit_identical(
        run_single_link(trace, admission::PolicyKind::kOnlineKmax, pi),
        net);
  }
}

// Best effort: both engines admit everything and score the bottleneck
// share capacity/active captured at start — the same division on the
// same counts in the same order. AdaptiveExp makes the score a
// nontrivial function of the share, so this pins the full scoring
// path, not just the counts.
TEST(SingleLinkReduction, BestEffortMatchesSingleLinkBestEffort) {
  const auto pi = std::make_shared<AdaptiveExp>();
  for (const std::uint64_t seed : {7u, 8u}) {
    const auto trace = single_link_trace(15.0, seed);
    const auto single =
        run_single_link(trace, admission::PolicyKind::kBestEffort, pi);
    const NetReport net =
        run_two_node(trace, NetPolicyKind::kBestEffort, pi);
    EXPECT_EQ(single.blocked, 0u);
    expect_bit_identical(single, net);
  }
}

// Blocking is monotone non-decreasing in offered load. Each load level
// uses its own trace (the arrival process changes), so the property is
// asserted across well-separated levels where the drift dwarfs the
// draw noise.
TEST(BlockingMonotonicity, NonDecreasingInLoad) {
  const Topology t = build_topology({TopologyKind::kFullMesh, 4, 10.0, {}});
  const auto pi = std::make_shared<Rigid>(1.0);
  const Rigid score(1.0);
  double previous = -1.0;
  for (const double load : {2.0, 6.0, 12.0, 24.0}) {
    NetTraceSpec spec;
    spec.pair_arrival_rate = load;
    spec.horizon = 200.0;
    const NetTrace trace = generate_net_trace(t, spec, sim::Rng(42));
    NetPolicyConfig config;
    config.pi = pi;
    config.trunk_reserve = 1.0;
    auto policy = make_net_policy(NetPolicyKind::kDar, t, config);
    NetEngineConfig engine;
    engine.warmup = kWarmup;
    const NetReport report = run_network(trace, *policy, score, engine);
    EXPECT_GE(report.blocking_probability, previous) << "load " << load;
    previous = report.blocking_probability;
  }
  EXPECT_GT(previous, 0.0);  // the top load actually blocks
}

// Blocking is monotone non-increasing in capacity. The trace depends
// only on the pair set, not on link capacities, so every capacity
// level replays the *identical* call sequence.
TEST(BlockingMonotonicity, NonIncreasingInCapacity) {
  const auto pi = std::make_shared<Rigid>(1.0);
  const Rigid score(1.0);
  NetTraceSpec spec;
  spec.pair_arrival_rate = 8.0;
  spec.horizon = 200.0;
  const NetTrace trace = generate_net_trace(
      build_topology({TopologyKind::kFullMesh, 4, 1.0, {}}), spec,
      sim::Rng(43));
  double previous = 2.0;
  for (const double capacity : {4.0, 10.0, 20.0}) {
    const Topology t =
        build_topology({TopologyKind::kFullMesh, 4, capacity, {}});
    NetPolicyConfig config;
    config.pi = pi;
    config.trunk_reserve = 1.0;
    auto policy = make_net_policy(NetPolicyKind::kDar, t, config);
    NetEngineConfig engine;
    engine.warmup = kWarmup;
    const NetReport report = run_network(trace, *policy, score, engine);
    EXPECT_LE(report.blocking_probability, previous)
        << "capacity " << capacity;
    previous = report.blocking_probability;
  }
}

}  // namespace
}  // namespace bevr::net2
