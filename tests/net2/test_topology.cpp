// Topology construction, lookups, alternates, and deterministic
// min-hop routing.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "bevr/net2/topology.h"

namespace bevr::net2 {
namespace {

TEST(Topology, AddLinkNormalisesEndpointsAndCounts) {
  Topology t;
  t.add_link(3, 1, 5.0);
  t.add_link(0, 2, 1.5);
  EXPECT_EQ(t.link_count(), 2u);
  EXPECT_EQ(t.node_count(), 4u);  // dense ids 0..3
  EXPECT_EQ(t.link(0).a, 1);
  EXPECT_EQ(t.link(0).b, 3);
  EXPECT_DOUBLE_EQ(t.link(0).capacity, 5.0);
}

TEST(Topology, AddLinkRejectsBadInputs) {
  Topology t;
  EXPECT_THROW(t.add_link(-1, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(t.add_link(2, 2, 1.0), std::invalid_argument);
  EXPECT_THROW(t.add_link(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(t.add_link(0, 1, -3.0), std::invalid_argument);
  EXPECT_THROW(t.add_link(0, 1, 1.0 / 0.0), std::invalid_argument);
  t.add_link(0, 1, 1.0);
  EXPECT_THROW(t.add_link(1, 0, 2.0), std::invalid_argument);  // duplicate
  EXPECT_EQ(t.link_count(), 1u);
}

TEST(Topology, FindLinkIsOrderInsensitive) {
  Topology t;
  t.add_link(2, 5, 1.0);
  ASSERT_TRUE(t.find_link(5, 2).has_value());
  EXPECT_EQ(*t.find_link(5, 2), *t.find_link(2, 5));
  EXPECT_FALSE(t.find_link(0, 1).has_value());
  EXPECT_THROW((void)t.link(99), std::out_of_range);
}

TEST(Topology, NeighborsAreSortedAscending) {
  Topology t;
  t.add_link(1, 4, 1.0);
  t.add_link(1, 0, 1.0);
  t.add_link(1, 2, 1.0);
  EXPECT_EQ(t.neighbors(1), (std::vector<NodeId>{0, 2, 4}));
  EXPECT_TRUE(t.neighbors(3).empty());
}

TEST(Topology, TwoHopIntermediatesOnFullMesh) {
  const Topology t = build_topology(
      TopologySpec{TopologyKind::kFullMesh, 5, 1.0, {}});
  EXPECT_EQ(t.two_hop_intermediates(0, 1), (std::vector<NodeId>{2, 3, 4}));
  // A two-node topology has none.
  const Topology two =
      build_topology(TopologySpec{TopologyKind::kTwoNode, 2, 1.0, {}});
  EXPECT_TRUE(two.two_hop_intermediates(0, 1).empty());
}

TEST(Topology, ShortestPathTwoNode) {
  const Topology t =
      build_topology(TopologySpec{TopologyKind::kTwoNode, 2, 4.0, {}});
  const auto path = t.shortest_path(0, 1);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<LinkId>{0}));
  EXPECT_TRUE(t.shortest_path(1, 1)->empty());
}

TEST(Topology, ShortestPathOnRingTakesTheShortArc) {
  // 6-ring: 0-1-2-3-4-5-0; from 0 to 2 the short arc is 0-1-2.
  const Topology t =
      build_topology(TopologySpec{TopologyKind::kRing, 6, 1.0, {}});
  const auto path = t.shortest_path(0, 2);
  ASSERT_TRUE(path.has_value());
  ASSERT_EQ(path->size(), 2u);
  EXPECT_EQ(*t.find_link(0, 1), (*path)[0]);
  EXPECT_EQ(*t.find_link(1, 2), (*path)[1]);
  // Antipodal pair: both arcs are 3 hops; the answer must still be
  // deterministic (pure function of the topology).
  EXPECT_EQ(*t.shortest_path(0, 3), *t.shortest_path(0, 3));
}

TEST(Topology, ShortestPathOnStarGoesThroughTheHub) {
  const Topology t =
      build_topology(TopologySpec{TopologyKind::kStar, 5, 1.0, {}});
  const auto path = t.shortest_path(1, 4);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*path, (std::vector<LinkId>{*t.find_link(1, 0),
                                        *t.find_link(0, 4)}));
}

TEST(Topology, ShortestPathUnreachableAndUnknownNodes) {
  Topology t;
  t.add_link(0, 1, 1.0);
  t.add_link(2, 3, 1.0);  // second component
  EXPECT_FALSE(t.shortest_path(0, 3).has_value());
  EXPECT_THROW((void)t.shortest_path(0, 9), std::invalid_argument);
  EXPECT_THROW((void)t.shortest_path(-1, 0), std::invalid_argument);
}

TEST(BuildTopology, SyntheticKindsHaveTheRightShape) {
  EXPECT_EQ(build_topology({TopologyKind::kRing, 7, 1.0, {}}).link_count(),
            7u);
  EXPECT_EQ(build_topology({TopologyKind::kStar, 7, 1.0, {}}).link_count(),
            6u);
  EXPECT_EQ(
      build_topology({TopologyKind::kFullMesh, 7, 1.0, {}}).link_count(),
      21u);  // 7·6/2
  const Topology mesh = build_topology({TopologyKind::kFullMesh, 4, 2.5, {}});
  for (const Link& link : mesh.links()) {
    EXPECT_DOUBLE_EQ(link.capacity, 2.5);
  }
}

TEST(BuildTopology, SpecValidationRejectsBadFields) {
  EXPECT_THROW(build_topology({TopologyKind::kRing, 2, 1.0, {}}),
               std::invalid_argument);  // ring needs >= 3 nodes
  EXPECT_THROW(build_topology({TopologyKind::kFullMesh, 5, 0.0, {}}),
               std::invalid_argument);
  EXPECT_THROW(build_topology({TopologyKind::kFile, 5, 1.0, {}}),
               std::invalid_argument);  // file kind needs a path
}

TEST(BuildTopology, ToStringCoversEveryKind) {
  EXPECT_EQ(to_string(TopologyKind::kTwoNode), "two_node");
  EXPECT_EQ(to_string(TopologyKind::kRing), "ring");
  EXPECT_EQ(to_string(TopologyKind::kStar), "star");
  EXPECT_EQ(to_string(TopologyKind::kFullMesh), "full_mesh");
  EXPECT_EQ(to_string(TopologyKind::kFile), "file");
}

}  // namespace
}  // namespace bevr::net2
