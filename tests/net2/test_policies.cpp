// Network policy behaviour: best-effort bottleneck shares, per-link
// reservation limits, DAR overflow with trunk reservation and
// route_draw-selected alternates.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "bevr/net2/policy.h"
#include "bevr/net2/topology.h"
#include "bevr/net2/trace.h"
#include "bevr/utility/utility.h"

namespace bevr::net2 {
namespace {

using utility::Elastic;
using utility::Rigid;

NetFlowRequest call(NodeId src, NodeId dst, double rate = 1.0,
                    std::uint64_t route_draw = 0) {
  NetFlowRequest req;
  req.src = src;
  req.dst = dst;
  req.rate = rate;
  req.route_draw = route_draw;
  return req;
}

NetPolicyConfig rigid_config(double trunk_reserve = 0.0) {
  NetPolicyConfig config;
  config.pi = std::make_shared<Rigid>(1.0);
  config.trunk_reserve = trunk_reserve;
  return config;
}

TEST(NetPolicyConfig, ValidateRejectsBadTrunkReserve) {
  NetPolicyConfig config = rigid_config();
  config.trunk_reserve = -1.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.trunk_reserve = 1.0 / 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(NetPolicyKindNames, ToStringCoversEveryKind) {
  EXPECT_EQ(to_string(NetPolicyKind::kBestEffort), "net_best_effort");
  EXPECT_EQ(to_string(NetPolicyKind::kDirectReservation),
            "direct_reservation");
  EXPECT_EQ(to_string(NetPolicyKind::kDar), "dar");
}

TEST(NetBestEffort, AdmitsEverythingAndSharesTheBottleneck) {
  // Star with hub 0: leaf-to-leaf paths share the two hub links.
  const Topology t = build_topology({TopologyKind::kStar, 4, 12.0, {}});
  auto policy =
      make_net_policy(NetPolicyKind::kBestEffort, t, rigid_config());

  const auto first = policy->request(call(1, 2));
  ASSERT_TRUE(first.admitted);
  EXPECT_FALSE(first.alternate);
  EXPECT_EQ(first.path.size(), 2u);  // through the hub
  EXPECT_DOUBLE_EQ(policy->on_start(call(1, 2), first), 12.0);  // alone

  // A second call overlapping on link 0-1 halves the share there.
  const auto second = policy->request(call(1, 3));
  ASSERT_TRUE(second.admitted);
  EXPECT_DOUBLE_EQ(policy->on_start(call(1, 3), second), 6.0);

  policy->on_end(call(1, 2), first);
  policy->on_end(call(1, 3), second);
  EXPECT_EQ(policy->ledger().count(0), 0);
}

TEST(NetBestEffort, ShareIsTheMinimumOverThePath) {
  Topology t;
  t.add_link(0, 1, 8.0);
  t.add_link(1, 2, 2.0);  // the bottleneck
  auto policy =
      make_net_policy(NetPolicyKind::kBestEffort, t, rigid_config());
  const auto d = policy->request(call(0, 2));
  ASSERT_TRUE(d.admitted);
  EXPECT_DOUBLE_EQ(policy->on_start(call(0, 2), d), 2.0);
  policy->on_end(call(0, 2), d);
}

TEST(DirectReservation, EnforcesPerLinkKmaxSlots) {
  // Rigid b̂=1 on capacity 3 gives k_max = 3, share 1.0.
  const Topology t = build_topology({TopologyKind::kTwoNode, 2, 3.0, {}});
  auto policy =
      make_net_policy(NetPolicyKind::kDirectReservation, t, rigid_config());
  std::vector<NetPolicy::Decision> held;
  for (int i = 0; i < 3; ++i) {
    auto d = policy->request(call(0, 1));
    ASSERT_TRUE(d.admitted) << i;
    EXPECT_DOUBLE_EQ(d.rate, 1.0);
    EXPECT_DOUBLE_EQ(policy->on_start(call(0, 1), d), 1.0);
    held.push_back(d);
  }
  const auto fourth = policy->request(call(0, 1));
  EXPECT_FALSE(fourth.admitted);
  EXPECT_DOUBLE_EQ(fourth.rate, 0.0);
  policy->on_end(call(0, 1), held.back());
  held.pop_back();
  EXPECT_TRUE(policy->request(call(0, 1)).admitted);  // slot came back
}

TEST(DirectReservation, ShareIsTheMinimumOverThePath) {
  // Rigid b̂=1: link 0-1 has k_max=4, share 1.0; link 1-2 has
  // k_max(3.5)=3, share 3.5/3 ≈ 1.17. The path rate is the minimum.
  Topology t;
  t.add_link(0, 1, 4.0);
  t.add_link(1, 2, 3.5);
  auto policy =
      make_net_policy(NetPolicyKind::kDirectReservation, t, rigid_config());
  const auto d = policy->request(call(0, 2));
  ASSERT_TRUE(d.admitted);
  EXPECT_DOUBLE_EQ(d.rate, 1.0);  // min(4/4, 3.5/3) = 1
  policy->on_end(call(0, 2), d);
}

TEST(DirectReservation, RequiresAnAdmittableUtility) {
  const Topology t = build_topology({TopologyKind::kTwoNode, 2, 3.0, {}});
  NetPolicyConfig config;  // no pi
  EXPECT_THROW(
      (void)make_net_policy(NetPolicyKind::kDirectReservation, t, config),
      std::invalid_argument);
  config.pi = std::make_shared<Elastic>();
  EXPECT_THROW(
      (void)make_net_policy(NetPolicyKind::kDirectReservation, t, config),
      std::invalid_argument);
}

TEST(DirectReservation, WarmKmaxFlagCannotChangeDecisions) {
  const Topology t = build_topology({TopologyKind::kFullMesh, 4, 7.0, {}});
  NetPolicyConfig warm = rigid_config();
  NetPolicyConfig cold = rigid_config();
  cold.use_warm_kmax = false;
  auto a = make_net_policy(NetPolicyKind::kDirectReservation, t, warm);
  auto b = make_net_policy(NetPolicyKind::kDirectReservation, t, cold);
  for (int i = 0; i < 20; ++i) {
    const auto da = a->request(call(0, 1));
    const auto db = b->request(call(0, 1));
    ASSERT_EQ(da.admitted, db.admitted) << i;
    EXPECT_EQ(da.rate, db.rate);
  }
}

TEST(Dar, OverflowsToTheDrawSelectedAlternate) {
  const Topology t = build_topology({TopologyKind::kFullMesh, 4, 1.0, {}});
  auto policy = make_net_policy(NetPolicyKind::kDar, t, rigid_config());
  // Fill the direct 0-1 link.
  const auto direct = policy->request(call(0, 1));
  ASSERT_TRUE(direct.admitted);
  EXPECT_FALSE(direct.alternate);
  ASSERT_EQ(direct.path.size(), 1u);

  // Next 0-1 call overflows; vias for (0,1) are {2, 3} so draw 1
  // selects via 3.
  const auto alt = policy->request(call(0, 1, 1.0, /*route_draw=*/1));
  ASSERT_TRUE(alt.admitted);
  EXPECT_TRUE(alt.alternate);
  ASSERT_EQ(alt.path.size(), 2u);
  EXPECT_EQ(alt.path[0], *t.find_link(0, 3));
  EXPECT_EQ(alt.path[1], *t.find_link(3, 1));

  // Draw 0 would pick via 2; both its legs are free, so it succeeds
  // on the other alternate.
  const auto alt2 = policy->request(call(0, 1, 1.0, /*route_draw=*/0));
  ASSERT_TRUE(alt2.admitted);
  EXPECT_TRUE(alt2.alternate);
  EXPECT_EQ(alt2.path[0], *t.find_link(0, 2));

  // All alternates now hold full links: the next overflow is lost.
  const auto lost = policy->request(call(0, 1, 1.0, /*route_draw=*/7));
  EXPECT_FALSE(lost.admitted);

  policy->on_end(call(0, 1), direct);
  policy->on_end(call(0, 1), alt);
  policy->on_end(call(0, 1), alt2);
  for (LinkId id = 0; id < 6; ++id) {
    EXPECT_DOUBLE_EQ(policy->ledger().used(id), 0.0) << "link " << id;
  }
}

TEST(Dar, TrunkReservationProtectsDirectTraffic) {
  const Topology t = build_topology({TopologyKind::kFullMesh, 3, 4.0, {}});
  auto policy = make_net_policy(NetPolicyKind::kDar, t,
                                rigid_config(/*trunk_reserve=*/2.0));
  // Saturate the direct 0-1 link with direct traffic (no headroom
  // applies to direct grabs).
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(policy->request(call(0, 1)).admitted) << i;
  }
  // An overflow call needs > 2 free circuits on each alternate leg
  // before its grab (≥ 2 after): with 4 free, then 3 free, two
  // overflows fit...
  const auto first = policy->request(call(0, 1));
  ASSERT_TRUE(first.admitted);
  EXPECT_TRUE(first.alternate);
  const auto second = policy->request(call(0, 1));
  ASSERT_TRUE(second.admitted);
  EXPECT_TRUE(second.alternate);
  // ...but the third finds only 2 free — not more than r — and is
  // refused even though raw capacity remains.
  const auto third = policy->request(call(0, 1));
  EXPECT_FALSE(third.admitted);
  // Direct traffic on 0-2 itself ignores the reservation entirely.
  EXPECT_TRUE(policy->request(call(0, 2)).admitted);
}

TEST(Dar, NoOverflowForMultiHopPairsOrWithoutAlternates) {
  // Ring: the 0-2 route is two hops, so a refused call never
  // overflows.
  const Topology ring = build_topology({TopologyKind::kRing, 4, 1.0, {}});
  auto on_ring = make_net_policy(NetPolicyKind::kDar, ring, rigid_config());
  ASSERT_TRUE(on_ring->request(call(0, 1)).admitted);  // fills link 0-1
  const auto refused = on_ring->request(call(0, 2));   // route 0-1-2
  EXPECT_FALSE(refused.admitted);

  // Two-node: adjacent but no intermediates — plain link admission.
  const Topology two = build_topology({TopologyKind::kTwoNode, 2, 1.0, {}});
  auto on_two = make_net_policy(NetPolicyKind::kDar, two, rigid_config());
  ASSERT_TRUE(on_two->request(call(0, 1)).admitted);
  EXPECT_FALSE(on_two->request(call(0, 1)).admitted);
}

TEST(Dar, RouteDrawWrapsModuloTheViaCount) {
  const Topology t = build_topology({TopologyKind::kFullMesh, 4, 1.0, {}});
  auto policy = make_net_policy(NetPolicyKind::kDar, t, rigid_config());
  ASSERT_TRUE(policy->request(call(0, 1)).admitted);
  // Vias for (0,1) are {2, 3}: draw 4 wraps to via 2.
  const auto alt = policy->request(call(0, 1, 1.0, /*route_draw=*/4));
  ASSERT_TRUE(alt.admitted);
  EXPECT_EQ(alt.path[0], *t.find_link(0, 2));
}

TEST(NetPolicies, UnroutablePairsThrow) {
  Topology t;
  t.add_link(0, 1, 4.0);
  t.add_link(2, 3, 4.0);  // disconnected component
  auto policy = make_net_policy(NetPolicyKind::kBestEffort, t, rigid_config());
  EXPECT_THROW((void)policy->request(call(0, 3)), std::invalid_argument);
}

}  // namespace
}  // namespace bevr::net2
