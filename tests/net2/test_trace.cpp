// Network trace generation: determinism, per-pair stream isolation
// under topology growth, ordering, and the single-link lift.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "bevr/admission/trace.h"
#include "bevr/net2/topology.h"
#include "bevr/net2/trace.h"
#include "bevr/sim/rng.h"

namespace bevr::net2 {
namespace {

Topology mesh(int nodes) {
  return build_topology({TopologyKind::kFullMesh, nodes, 10.0, {}});
}

NetTraceSpec spec_with(double rate, double horizon) {
  NetTraceSpec spec;
  spec.pair_arrival_rate = rate;
  spec.horizon = horizon;
  return spec;
}

TEST(NetTraceSpec, ValidateRejectsOutOfRangeFields) {
  NetTraceSpec ok;
  EXPECT_NO_THROW(ok.validate());
  NetTraceSpec bad = ok;
  bad.pair_arrival_rate = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.mean_duration = -1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.rate = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.horizon = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.horizon = 1.0 / 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(GenerateNetTrace, DeterministicInSeedAndSortedBySubmit) {
  const Topology t = mesh(4);
  const NetTraceSpec spec = spec_with(2.0, 50.0);
  const NetTrace a = generate_net_trace(t, spec, sim::Rng(7));
  const NetTrace b = generate_net_trace(t, spec, sim::Rng(7));
  ASSERT_EQ(a.requests.size(), b.requests.size());
  ASSERT_GT(a.requests.size(), 0u);
  EXPECT_DOUBLE_EQ(a.horizon, 50.0);
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].src, b.requests[i].src);
    EXPECT_EQ(a.requests[i].dst, b.requests[i].dst);
    EXPECT_EQ(a.requests[i].submit, b.requests[i].submit);
    EXPECT_EQ(a.requests[i].duration, b.requests[i].duration);
    EXPECT_EQ(a.requests[i].rate, b.requests[i].rate);
    EXPECT_EQ(a.requests[i].route_draw, b.requests[i].route_draw);
  }
  EXPECT_TRUE(std::is_sorted(
      a.requests.begin(), a.requests.end(),
      [](const NetFlowRequest& x, const NetFlowRequest& y) {
        return x.submit < y.submit;
      }));
  const NetTrace c = generate_net_trace(t, spec, sim::Rng(8));
  EXPECT_NE(a.requests.front().submit, c.requests.front().submit);
}

TEST(GenerateNetTrace, EveryPairOffersCallsWithNormalisedEndpoints) {
  const Topology t = mesh(4);
  const NetTrace trace = generate_net_trace(t, spec_with(3.0, 80.0),
                                            sim::Rng(11));
  std::map<std::pair<NodeId, NodeId>, int> per_pair;
  for (const NetFlowRequest& req : trace.requests) {
    EXPECT_LT(req.src, req.dst);  // generation normalises src < dst
    EXPECT_GT(req.duration, 0.0);
    EXPECT_GE(req.submit, 0.0);
    EXPECT_LT(req.submit, 80.0);
    ++per_pair[{req.src, req.dst}];
  }
  EXPECT_EQ(per_pair.size(), 6u);  // C(4,2) connected pairs
}

// The Szudzik pair-stream construction: adding nodes to the topology
// must not perturb the calls of the pairs that were already there.
TEST(GenerateNetTrace, PairStreamsSurviveTopologyGrowth) {
  const NetTraceSpec spec = spec_with(2.0, 60.0);
  const sim::Rng root(42);
  const NetTrace small = generate_net_trace(mesh(4), spec, root);
  const NetTrace large = generate_net_trace(mesh(6), spec, root);

  auto pair_calls = [](const NetTrace& trace, NodeId a, NodeId b) {
    std::vector<NetFlowRequest> out;
    for (const NetFlowRequest& req : trace.requests) {
      if (req.src == a && req.dst == b) out.push_back(req);
    }
    return out;
  };
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = a + 1; b < 4; ++b) {
      const auto before = pair_calls(small, a, b);
      const auto after = pair_calls(large, a, b);
      ASSERT_EQ(before.size(), after.size()) << a << "-" << b;
      ASSERT_GT(before.size(), 0u);
      for (std::size_t i = 0; i < before.size(); ++i) {
        EXPECT_EQ(before[i].submit, after[i].submit);
        EXPECT_EQ(before[i].duration, after[i].duration);
        EXPECT_EQ(before[i].route_draw, after[i].route_draw);
      }
    }
  }
}

TEST(GenerateNetTrace, SkipsDisconnectedPairs) {
  Topology t;
  t.add_link(0, 1, 10.0);
  t.add_link(2, 3, 10.0);  // second component
  const NetTrace trace = generate_net_trace(t, spec_with(2.0, 60.0),
                                            sim::Rng(3));
  for (const NetFlowRequest& req : trace.requests) {
    const bool first = req.src == 0 && req.dst == 1;
    const bool second = req.src == 2 && req.dst == 3;
    EXPECT_TRUE(first || second)
        << "call offered on disconnected pair " << req.src << "-" << req.dst;
  }
}

TEST(GenerateNetTrace, StarPairsIncludeLeafToLeaf) {
  const Topology t = build_topology({TopologyKind::kStar, 4, 10.0, {}});
  const NetTrace trace = generate_net_trace(t, spec_with(2.0, 60.0),
                                            sim::Rng(5));
  const bool leaf_pair = std::any_of(
      trace.requests.begin(), trace.requests.end(),
      [](const NetFlowRequest& req) { return req.src == 1 && req.dst == 3; });
  EXPECT_TRUE(leaf_pair);  // multi-link path through the hub
}

TEST(FromSingleLink, LiftsTheAdmissionTraceVerbatim) {
  admission::TraceSpec spec;
  spec.arrival_rate = 4.0;
  spec.horizon = 40.0;
  const admission::ArrivalTrace base =
      admission::generate_trace(spec, sim::Rng(9));
  const NetTrace lifted = from_single_link(base, 0, 1);
  ASSERT_EQ(lifted.requests.size(), base.requests.size());
  EXPECT_DOUBLE_EQ(lifted.horizon, base.horizon);
  for (std::size_t i = 0; i < base.requests.size(); ++i) {
    EXPECT_EQ(lifted.requests[i].src, 0);
    EXPECT_EQ(lifted.requests[i].dst, 1);
    EXPECT_EQ(lifted.requests[i].submit, base.requests[i].submit);
    EXPECT_EQ(lifted.requests[i].duration, base.requests[i].duration);
    EXPECT_EQ(lifted.requests[i].rate, base.requests[i].rate);
  }
}

TEST(FromSingleLink, RejectsBookAheadAndCancellation) {
  admission::ArrivalTrace base;
  base.horizon = 10.0;
  admission::FlowRequest req;
  req.submit = 1.0;
  req.start = 2.0;  // book-ahead
  req.duration = 1.0;
  req.rate = 1.0;
  base.requests.push_back(req);
  EXPECT_THROW((void)from_single_link(base, 0, 1), std::invalid_argument);

  base.requests[0].start = base.requests[0].submit;
  base.requests[0].cancel = 1.5;  // finite pre-start cancellation
  EXPECT_THROW((void)from_single_link(base, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace bevr::net2
