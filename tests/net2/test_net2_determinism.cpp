// Determinism of the four registry net2 scenarios: every emitted row
// is a pure function of (spec, base_seed) — bit-identical at 1, 4 and
// 7 worker threads, with and without the memo cache, and never a
// function of the kernels flag (WarmKmax is documented bit-identical
// to core::k_max).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "bevr/runner/runner.h"
#include "bevr/runner/scenario.h"

namespace bevr::runner {
namespace {

std::vector<std::string> data_lines(const std::string& payload) {
  std::vector<std::string> lines;
  std::istringstream stream(payload);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.find("\"type\":\"row\"") != std::string::npos) {
      lines.push_back(line);
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::string run_jsonl(const ScenarioSpec& spec, unsigned threads,
                      std::uint64_t seed, bool use_kernels) {
  std::ostringstream out;
  JsonlSink sink(out);
  RunOptions options;
  options.threads = threads;
  options.base_seed = seed;
  options.use_kernels = use_kernels;
  run_scenario(spec, options, sink);
  return out.str();
}

const ScenarioSpec& registry_scenario(const std::string& name) {
  const ScenarioSpec* spec = ScenarioRegistry::builtin().find(name);
  EXPECT_NE(spec, nullptr) << name;
  return *spec;
}

class Net2Determinism : public ::testing::TestWithParam<const char*> {};

TEST_P(Net2Determinism, RowsAreThreadCountInvariant) {
  const ScenarioSpec& spec = registry_scenario(GetParam());
  const auto serial = data_lines(run_jsonl(spec, 1, 42, true));
  const auto parallel4 = data_lines(run_jsonl(spec, 4, 42, true));
  const auto parallel7 = data_lines(run_jsonl(spec, 7, 42, true));
  ASSERT_EQ(serial.size(),
            static_cast<std::size_t>(spec.grid.points));
  EXPECT_EQ(serial, parallel4);
  EXPECT_EQ(serial, parallel7);
}

TEST_P(Net2Determinism, KernelsFlagCannotChangeRows) {
  const ScenarioSpec& spec = registry_scenario(GetParam());
  EXPECT_EQ(data_lines(run_jsonl(spec, 4, 42, true)),
            data_lines(run_jsonl(spec, 4, 42, false)));
}

INSTANTIATE_TEST_SUITE_P(RegistryScenarios, Net2Determinism,
                         ::testing::Values("net2_policy_load",
                                           "net2_fixed_point_check",
                                           "net2_blocking_vs_n",
                                           "net2_meanfield_scale"),
                         [](const auto& param_info) {
                           return std::string(param_info.param);
                         });

TEST(Net2Scenarios, SeedMovesTheSimulationRows) {
  const ScenarioSpec& spec = registry_scenario("net2_policy_load");
  EXPECT_NE(data_lines(run_jsonl(spec, 1, 42, true)),
            data_lines(run_jsonl(spec, 1, 43, true)));
}

TEST(Net2Scenarios, MeanFieldScaleIsSeedFree) {
  // Pure fixed-point rows: no simulation anywhere, so even the seed
  // cannot move them.
  const ScenarioSpec& spec = registry_scenario("net2_meanfield_scale");
  EXPECT_EQ(data_lines(run_jsonl(spec, 1, 42, true)),
            data_lines(run_jsonl(spec, 1, 43, true)));
}

TEST(Net2Scenarios, ColumnsMatchTheSweep) {
  const auto columns = [](const char* name) {
    return scenario_columns(registry_scenario(name));
  };
  EXPECT_EQ(columns("net2_policy_load").front(), "pair_load");
  EXPECT_EQ(columns("net2_fixed_point_check").back(), "ci3");
  EXPECT_EQ(columns("net2_blocking_vs_n").front(), "nodes");
  EXPECT_EQ(columns("net2_meanfield_scale").front(), "capacity");
}

TEST(Net2Scenarios, ValidateCatchesContradictorySpecs) {
  ScenarioSpec spec = registry_scenario("net2_fixed_point_check");
  spec.net2.topology = net2::TopologyKind::kRing;  // mean field needs mesh
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = registry_scenario("net2_policy_load");
  spec.util = UtilityFamily::kElastic;  // no k_max for the reserved lane
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = registry_scenario("net2_policy_load");
  spec.net2.trunk_reserve = -1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = registry_scenario("net2_meanfield_scale");
  spec.net2.mf_target_blocking = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace bevr::runner
