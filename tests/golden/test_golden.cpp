// Golden-file regression suite: every scenario in the built-in
// registry, bit-exact against a committed CSV.
//
// Each golden is the CsvSink output of run_scenario with the default
// run options (seed 42) minus the '#' metadata/summary comments —
// i.e. the header line plus the data rows, every value printed %.17g
// (round-trip exact). The matrix re-runs each scenario with kernels on
// and off and at 1 and 4 threads; all four must match the same golden
// byte for byte, which pins three contracts at once:
//  * value regression — any numeric drift against the committed rows;
//  * the kernels equivalence contract (on vs off);
//  * the runner determinism contract (1 vs 4 threads, incl. the
//    stochastic sim scenario's seed-split reproducibility).
//
// Refresh after an *intentional* value change:
//   scripts/update_goldens.sh   (then review the diff like any code)
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "bevr/runner/result_sink.h"
#include "bevr/runner/runner.h"
#include "bevr/runner/scenario.h"

#ifndef BEVR_GOLDEN_DIR
#error "BEVR_GOLDEN_DIR must point at the committed golden CSVs"
#endif

namespace bevr::runner {
namespace {

/// CsvSink output with the provenance comments dropped: the golden is
/// the data contract, not the run's metadata (git hash, wall time).
std::string strip_comments(const std::string& csv) {
  std::istringstream in(csv);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.front() == '#') continue;
    out += line;
    out += '\n';
  }
  return out;
}

std::string run_to_csv(const ScenarioSpec& spec, bool use_kernels,
                       unsigned threads) {
  std::ostringstream out;
  CsvSink sink(out);
  RunOptions options;
  options.threads = threads;
  options.use_kernels = use_kernels;
  run_scenario(spec, options, sink);
  return strip_comments(out.str());
}

std::string read_golden(const std::string& scenario) {
  const std::string path =
      std::string(BEVR_GOLDEN_DIR) + "/" + scenario + ".csv";
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing golden " << path
                            << " — run scripts/update_goldens.sh";
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

class GoldenSuite : public ::testing::TestWithParam<
                        std::tuple<bool, unsigned>> {};

TEST_P(GoldenSuite, EveryRegistryScenarioIsBitExact) {
  const auto [use_kernels, threads] = GetParam();
  for (const ScenarioSpec& spec : ScenarioRegistry::builtin().all()) {
    SCOPED_TRACE(spec.name);
    const std::string golden = read_golden(spec.name);
    ASSERT_FALSE(golden.empty());
    EXPECT_EQ(run_to_csv(spec, use_kernels, threads), golden)
        << spec.name << " drifted from its golden (kernels="
        << (use_kernels ? "on" : "off") << ", threads=" << threads
        << "). If the change is intentional, refresh with "
           "scripts/update_goldens.sh and review the diff.";
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsAndThreads, GoldenSuite,
    ::testing::Values(std::make_tuple(true, 1u), std::make_tuple(true, 4u),
                      std::make_tuple(false, 1u), std::make_tuple(false, 4u)),
    [](const auto& labelled) {
      return std::string(std::get<0>(labelled.param) ? "kernels" : "scalar") +
             "_" + std::to_string(std::get<1>(labelled.param)) + "thread";
    });

// The registry must stay covered: a scenario added without a golden
// fails here, not silently.
TEST(GoldenSuite, RegistryFullyCovered) {
  EXPECT_EQ(ScenarioRegistry::builtin().all().size(), 26u);
  for (const ScenarioSpec& spec : ScenarioRegistry::builtin().all()) {
    EXPECT_FALSE(read_golden(spec.name).empty()) << spec.name;
  }
}

}  // namespace
}  // namespace bevr::runner
