#include "bevr/numerics/optimize.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace bevr::numerics {
namespace {

TEST(GoldenSection, QuadraticPeak) {
  const auto result = golden_section_max(
      [](double x) { return -(x - 2.0) * (x - 2.0); }, 0.0, 5.0);
  EXPECT_NEAR(result.x, 2.0, 1e-8);
  EXPECT_NEAR(result.value, 0.0, 1e-15);
}

TEST(GoldenSection, PeakAtBoundary) {
  const auto result =
      golden_section_max([](double x) { return x; }, 0.0, 3.0);
  EXPECT_NEAR(result.x, 3.0, 1e-7);
}

TEST(GoldenSection, RejectsInvertedInterval) {
  EXPECT_THROW((void)golden_section_max([](double x) { return x; }, 1.0, 0.0),
               std::invalid_argument);
}

TEST(GridRefine, FindsGlobalPeakAmongLocalOnes) {
  // Two humps; the taller at x = 7.
  auto f = [](double x) {
    return std::exp(-(x - 2.0) * (x - 2.0)) +
           1.5 * std::exp(-(x - 7.0) * (x - 7.0));
  };
  const auto result = grid_refine_max(f, 0.0, 10.0, 256);
  EXPECT_NEAR(result.x, 7.0, 1e-5);
}

TEST(GridRefine, HandlesStepFunctions) {
  // Welfare objectives with rigid utilities are step functions; the
  // grid scan must still find (near) the top step.
  auto f = [](double x) { return std::floor(x) - 0.3 * x; };
  const auto result = grid_refine_max(f, 0.0, 10.0, 1024);
  // Max is just below x=10 jump... f(9.99...) ~ floor=9; check value.
  EXPECT_GE(result.value, 9.0 - 0.3 * 10.0 - 1e-6);
}

TEST(GridRefine, RejectsTooFewPoints) {
  EXPECT_THROW((void)grid_refine_max([](double x) { return x; }, 0.0, 1.0, 2),
               std::invalid_argument);
}

TEST(IntegerArgmax, SmallRangeScan) {
  const auto result = integer_argmax(
      [](std::int64_t k) {
        const double kd = static_cast<double>(k);
        return -(kd - 13.0) * (kd - 13.0);
      },
      0, 40);
  EXPECT_EQ(result.k, 13);
}

TEST(IntegerArgmax, LargeRangeTernary) {
  const auto result = integer_argmax(
      [](std::int64_t k) {
        const double kd = static_cast<double>(k);
        return kd * std::exp(-kd / 1'000'000.0);
      },
      1, 100'000'000);
  EXPECT_EQ(result.k, 1'000'000);
}

TEST(IntegerArgmax, FixedLoadShape) {
  // V(k) = k·π(C/k) for the paper's adaptive utility peaks at k ≈ C.
  const double capacity = 1000.0;
  const double kappa = 0.62086;
  auto v = [capacity, kappa](std::int64_t k) {
    const double b = capacity / static_cast<double>(k);
    return static_cast<double>(k) * (1.0 - std::exp(-b * b / (kappa + b)));
  };
  const auto result = integer_argmax(v, 1, 100'000);
  EXPECT_NEAR(static_cast<double>(result.k), capacity, 2.0);
}

TEST(IntegerArgmax, RisingPlateauThenDrop) {
  // V(k) = k for k <= 100, 0 beyond: the rigid fixed-load shape.
  const auto result = integer_argmax(
      [](std::int64_t k) { return k <= 100 ? static_cast<double>(k) : 0.0; },
      1, 1'000'000);
  EXPECT_EQ(result.k, 100);
}

TEST(IntegerArgmax, EmptyRangeThrows) {
  EXPECT_THROW(
      (void)integer_argmax([](std::int64_t) { return 0.0; }, 5, 4),
      std::invalid_argument);
}

}  // namespace
}  // namespace bevr::numerics
