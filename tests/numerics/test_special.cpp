#include "bevr/numerics/special.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include <gtest/gtest.h>

namespace bevr::numerics {
namespace {

TEST(HurwitzZeta, RiemannSpecialValues) {
  EXPECT_NEAR(riemann_zeta(2.0), std::numbers::pi * std::numbers::pi / 6.0,
              1e-13);
  EXPECT_NEAR(riemann_zeta(4.0), std::pow(std::numbers::pi, 4) / 90.0, 1e-13);
  EXPECT_NEAR(riemann_zeta(3.0), 1.2020569031595943, 1e-13);  // Apery
}

TEST(HurwitzZeta, RecurrenceIdentity) {
  // ζ(s, q) = q^{-s} + ζ(s, q+1).
  for (const double s : {2.1, 3.0, 4.5}) {
    for (const double q : {0.5, 1.0, 7.3, 150.0}) {
      EXPECT_NEAR(hurwitz_zeta(s, q),
                  std::pow(q, -s) + hurwitz_zeta(s, q + 1.0),
                  1e-14 * hurwitz_zeta(s, q))
          << "s=" << s << " q=" << q;
    }
  }
}

TEST(HurwitzZeta, MatchesDirectSummationForLargeS) {
  // Fast-decaying series can be summed directly as an oracle.
  const double s = 6.0, q = 2.5;
  double direct = 0.0;
  for (int k = 2000; k >= 0; --k) direct += std::pow(q + k, -s);
  EXPECT_NEAR(hurwitz_zeta(s, q), direct, 1e-13 * direct);
}

TEST(HurwitzZeta, LargeShiftAsymptotics) {
  // ζ(s, q) ≈ q^{1-s}/(s-1) + q^{-s}/2 for large q.
  const double s = 3.0, q = 1e6;
  const double expected = std::pow(q, 1.0 - s) / (s - 1.0) +
                          0.5 * std::pow(q, -s);
  EXPECT_NEAR(hurwitz_zeta(s, q), expected, 1e-9 * expected);
}

TEST(HurwitzZeta, DomainChecks) {
  EXPECT_THROW((void)hurwitz_zeta(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)hurwitz_zeta(0.5, 1.0), std::invalid_argument);
  EXPECT_THROW((void)hurwitz_zeta(2.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)hurwitz_zeta(2.0, -1.0), std::invalid_argument);
}

TEST(PoissonPmf, SumsToOneAtPaperMean) {
  const double nu = 100.0;
  double total = 0.0;
  for (std::int64_t k = 0; k < 400; ++k) total += poisson_pmf(k, nu);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PoissonPmf, MatchesDirectFormulaAtSmallK) {
  const double nu = 3.0;
  EXPECT_NEAR(poisson_pmf(0, nu), std::exp(-3.0), 1e-15);
  EXPECT_NEAR(poisson_pmf(1, nu), 3.0 * std::exp(-3.0), 1e-15);
  EXPECT_NEAR(poisson_pmf(2, nu), 4.5 * std::exp(-3.0), 1e-15);
}

TEST(PoissonPmf, NoOverflowAtLargeArguments) {
  const double p = poisson_pmf(100'000, 100'000.0);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
  // Stirling: pmf at the mode ≈ 1/sqrt(2πν).
  EXPECT_NEAR(p, 1.0 / std::sqrt(2.0 * std::numbers::pi * 1e5), 1e-8);
}

TEST(PoissonPmf, DomainChecks) {
  EXPECT_THROW((void)poisson_log_pmf(-1, 1.0), std::invalid_argument);
  EXPECT_THROW((void)poisson_log_pmf(0, 0.0), std::invalid_argument);
}

TEST(PoissonTail, ComplementsCdf) {
  const double nu = 100.0;
  double cdf = 0.0;
  for (std::int64_t k = 0; k <= 110; ++k) cdf += poisson_pmf(k, nu);
  EXPECT_NEAR(poisson_tail_above(110, nu), 1.0 - cdf, 1e-12);
}

TEST(PoissonTail, EdgeCases) {
  EXPECT_EQ(poisson_tail_above(-1, 5.0), 1.0);
  EXPECT_NEAR(poisson_tail_above(0, 5.0), 1.0 - std::exp(-5.0), 1e-14);
  // Deep tail stays positive and tiny.
  const double deep = poisson_tail_above(300, 100.0);
  EXPECT_GT(deep, 0.0);
  EXPECT_LT(deep, 1e-50);
}

TEST(Log1mExp, StableAcrossRegimes) {
  // Compare against long-double computation in the easy regime.
  EXPECT_NEAR(log1mexp(-1.0), std::log(1.0 - std::exp(-1.0)), 1e-15);
  EXPECT_NEAR(log1mexp(-40.0), -std::exp(-40.0), 1e-30);
  // Near zero: log(1-e^{-x}) ≈ log(x).
  EXPECT_NEAR(log1mexp(-1e-10), std::log(1e-10), 1e-9);
  EXPECT_THROW((void)log1mexp(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace bevr::numerics
