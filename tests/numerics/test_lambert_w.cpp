#include "bevr/numerics/lambert_w.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace bevr::numerics {
namespace {

constexpr double kInvE = 0.36787944117144233;

TEST(LambertW0, KnownValues) {
  EXPECT_DOUBLE_EQ(lambert_w0(0.0), 0.0);
  EXPECT_NEAR(lambert_w0(1.0), 0.5671432904097838, 1e-14);  // Omega constant
  EXPECT_NEAR(lambert_w0(std::exp(1.0)), 1.0, 1e-14);
  EXPECT_NEAR(lambert_w0(-kInvE), -1.0, 1e-7);  // branch point
}

TEST(LambertW0, SatisfiesDefiningEquation) {
  for (const double x : {-0.36, -0.2, -0.05, 0.1, 0.9, 3.0, 100.0, 1e6}) {
    const double w = lambert_w0(x);
    EXPECT_NEAR(w * std::exp(w), x, std::abs(x) * 1e-13 + 1e-14) << "x=" << x;
  }
}

TEST(LambertW0, ThrowsBelowBranchPoint) {
  EXPECT_THROW((void)lambert_w0(-0.4), std::domain_error);
  EXPECT_THROW((void)lambert_w0(std::nan("")), std::domain_error);
}

TEST(LambertWMinus1, KnownValues) {
  // W-1(-1/e) = -1; W-1(-0.1) ≈ -3.5771520639573.
  EXPECT_NEAR(lambert_w_minus1(-kInvE), -1.0, 1e-7);
  EXPECT_NEAR(lambert_w_minus1(-0.1), -3.577152063957297, 1e-12);
}

TEST(LambertWMinus1, SatisfiesDefiningEquation) {
  for (const double x : {-0.367, -0.3, -0.1, -0.01, -1e-4, -1e-8, -1e-100}) {
    const double w = lambert_w_minus1(x);
    EXPECT_LE(w, -1.0 + 1e-7);
    EXPECT_NEAR(w * std::exp(w), x, std::abs(x) * 1e-12) << "x=" << x;
  }
}

TEST(LambertWMinus1, ThrowsOutsideDomain) {
  EXPECT_THROW((void)lambert_w_minus1(0.1), std::domain_error);
  EXPECT_THROW((void)lambert_w_minus1(0.0), std::domain_error);
  EXPECT_THROW((void)lambert_w_minus1(-0.4), std::domain_error);
}

TEST(LargestH, SolvesHExpMinusH) {
  for (const double p : {0.3, 0.1, 0.01, 1e-4, 1e-8}) {
    const double h = largest_h_of_he_minus_h(p);
    EXPECT_GE(h, 1.0);
    EXPECT_NEAR(h * std::exp(-h), p, p * 1e-12) << "p=" << p;
  }
}

TEST(LargestH, BranchPointAndDomain) {
  EXPECT_DOUBLE_EQ(largest_h_of_he_minus_h(kInvE), 1.0);
  EXPECT_THROW((void)largest_h_of_he_minus_h(0.0), std::domain_error);
  EXPECT_THROW((void)largest_h_of_he_minus_h(0.5), std::domain_error);
}

TEST(LargestH, IsTheLargerOfTheTwoRoots) {
  // h e^{-h} = p has two roots for p < 1/e; the welfare model needs the
  // larger one (the over-provisioned branch). The smaller root is
  // -W0(-p): check ordering.
  const double p = 0.1;
  const double h_large = largest_h_of_he_minus_h(p);
  const double h_small = -lambert_w0(-p);
  EXPECT_LT(h_small, 1.0);
  EXPECT_GT(h_large, 1.0);
  EXPECT_NEAR(h_small * std::exp(-h_small), p, 1e-13);
}

// Asymptotic sanity used in the paper's γ(p) small-p analysis:
// h(p) ≈ ln(1/p) + ln ln(1/p) as p → 0.
TEST(LargestH, SmallPriceAsymptotics) {
  const double p = 1e-12;
  const double h = largest_h_of_he_minus_h(p);
  const double l = std::log(1.0 / p);
  EXPECT_NEAR(h, l + std::log(l), 0.2);
}

}  // namespace
}  // namespace bevr::numerics
