#include "bevr/numerics/series.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace bevr::numerics {
namespace {

TEST(SumUntilNegligible, GeometricSeries) {
  const auto result = sum_until_negligible(
      [](std::int64_t k) { return std::pow(0.5, static_cast<double>(k)); }, 0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.value, 2.0, 1e-12);
}

TEST(SumUntilNegligible, BaselZeta2) {
  // Σ 1/k² = π²/6; slow algebraic decay exercises the run-length guard.
  const auto result = sum_until_negligible(
      [](std::int64_t k) {
        const double kd = static_cast<double>(k);
        return 1.0 / (kd * kd);
      },
      1, {.rel_tol = 1e-10, .abs_tol = 0.0, .consecutive_small = 16,
          .max_terms = 2'000'000});
  EXPECT_TRUE(result.converged);
  // Truncation error of Σ1/k² at K is ~1/K; with rel_tol 1e-10 the
  // stop happens near K = 1e5, so expect ~1e-5 accuracy.
  EXPECT_NEAR(result.value, 1.6449340668482264, 2e-5);
}

TEST(SumUntilNegligible, PoissonMassSumsToOne) {
  const double nu = 100.0;
  const auto result = sum_until_negligible(
      [nu](std::int64_t k) {
        return std::exp(static_cast<double>(k) * std::log(nu) - nu -
                        std::lgamma(static_cast<double>(k) + 1.0));
      },
      0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.value, 1.0, 1e-12);
}

TEST(SumUntilNegligible, DoesNotStopOnLeadingZeros) {
  // First 30 terms are zero; the run-length requirement must not stop
  // the sum before the mass arrives.
  const auto result = sum_until_negligible(
      [](std::int64_t k) {
        return k < 30 ? 0.0 : std::pow(0.5, static_cast<double>(k - 30));
      },
      0, {.rel_tol = 1e-14, .abs_tol = 1e-300, .consecutive_small = 64,
          .max_terms = 100'000});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.value, 2.0, 1e-12);
}

TEST(SumUntilNegligible, ReportsNonConvergenceAtCap) {
  const auto result = sum_until_negligible(
      [](std::int64_t) { return 1.0; }, 0,
      {.rel_tol = 1e-14, .abs_tol = 0.0, .consecutive_small = 8,
       .max_terms = 1000});
  EXPECT_FALSE(result.converged);
  EXPECT_EQ(result.terms, 1000);
  EXPECT_NEAR(result.value, 1000.0, 1e-9);
}

TEST(SumUntilNegligible, RejectsBadRunLength) {
  EXPECT_THROW((void)sum_until_negligible([](std::int64_t) { return 0.0; }, 0,
                                          {.rel_tol = 1e-14,
                                           .abs_tol = 0.0,
                                           .consecutive_small = 0,
                                           .max_terms = 10}),
               std::invalid_argument);
}

TEST(SumRange, SimpleArithmetic) {
  const double value = sum_range(
      [](std::int64_t k) { return static_cast<double>(k); }, 1, 100);
  EXPECT_DOUBLE_EQ(value, 5050.0);
}

TEST(SumRange, EmptyRangeIsZero) {
  EXPECT_EQ(sum_range([](std::int64_t) { return 1.0; }, 5, 4), 0.0);
}

}  // namespace
}  // namespace bevr::numerics
