#include "bevr/numerics/erlang.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace bevr::numerics {
namespace {

TEST(ErlangB, ClassicTableValues) {
  // Standard traffic-engineering table entries.
  EXPECT_NEAR(erlang_b(1.0, 1), 0.5, 1e-12);
  EXPECT_NEAR(erlang_b(1.0, 2), 0.2, 1e-12);
  // E = A·B(m−1)/(m + A·B(m−1)): B(2, 2) = 0.4.
  EXPECT_NEAR(erlang_b(2.0, 2), 0.4, 1e-12);
  // Well-known planning point: 100 erlangs on 100 servers ≈ 7.57%.
  EXPECT_NEAR(erlang_b(100.0, 100), 0.0757, 5e-4);
}

TEST(ErlangB, DirectFormulaSmallCases) {
  // B(E, m) = (E^m/m!) / Σ_{j≤m} E^j/j!.
  const double e = 3.7;
  for (int m = 0; m <= 8; ++m) {
    double numerator = 1.0, denominator = 0.0, term = 1.0;
    for (int j = 0; j <= m; ++j) {
      denominator += term;
      if (j == m) numerator = term;
      term *= e / (j + 1);
    }
    EXPECT_NEAR(erlang_b(e, m), numerator / denominator, 1e-12) << "m=" << m;
  }
}

TEST(ErlangB, MonotoneInServersAndLoad) {
  double prev = 1.0;
  for (int m = 0; m <= 150; ++m) {
    const double b = erlang_b(100.0, m);
    EXPECT_LE(b, prev + 1e-15) << "m=" << m;
    prev = b;
  }
  EXPECT_LT(erlang_b(50.0, 60), erlang_b(70.0, 60));
}

TEST(ErlangB, EdgeCases) {
  EXPECT_EQ(erlang_b(0.0, 0), 1.0);
  EXPECT_EQ(erlang_b(0.0, 5), 0.0);
  EXPECT_EQ(erlang_b(5.0, 0), 1.0);
  EXPECT_THROW((void)erlang_b(-1.0, 3), std::invalid_argument);
  EXPECT_THROW((void)erlang_b(1.0, -1), std::invalid_argument);
}

TEST(ErlangB, LargeSystemStable) {
  // 10'000 erlangs on 10'200 servers: finite, small, positive.
  const double b = erlang_b(10'000.0, 10'200);
  EXPECT_GT(b, 0.0);
  EXPECT_LT(b, 0.05);
}

TEST(ErlangBServers, InvertsBlocking) {
  for (const double target : {0.1, 0.01, 0.001}) {
    const auto m = erlang_b_servers(100.0, target);
    EXPECT_LE(erlang_b(100.0, m), target);
    EXPECT_GT(erlang_b(100.0, m - 1), target);
  }
}

TEST(ErlangBServers, KnownPlanningValue) {
  // 100 erlangs at 1% blocking needs ~117 servers.
  EXPECT_NEAR(static_cast<double>(erlang_b_servers(100.0, 0.01)), 117.0, 2.0);
  EXPECT_THROW((void)erlang_b_servers(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)erlang_b_servers(1.0, 1.0), std::invalid_argument);
}

TEST(ErlangBOfferedLoad, RoundTripStaysAtOrBelowTarget) {
  // The contract: the largest E with B(E, m) <= target. So the round
  // trip must satisfy the target exactly, and any slightly larger load
  // must exceed it (B is continuous and strictly increasing in E).
  for (const std::int64_t m : {5LL, 20LL, 100LL}) {
    for (const double target : {0.1, 0.01, 0.001}) {
      const double e = erlang_b_offered_load(m, target);
      EXPECT_LE(erlang_b(e, m), target) << "m=" << m << " target=" << target;
      EXPECT_GT(erlang_b(e * (1.0 + 1e-9) + 1e-12, m), target)
          << "m=" << m << " target=" << target;
      EXPECT_NEAR(erlang_b(e, m), target, target * 1e-6)
          << "m=" << m << " target=" << target;
    }
  }
}

TEST(ErlangBOfferedLoad, TabulatedTrafficValues) {
  // Classic Erlang-B planning tables at 1% blocking.
  EXPECT_NEAR(erlang_b_offered_load(5, 0.01), 1.361, 0.02);
  EXPECT_NEAR(erlang_b_offered_load(10, 0.01), 4.461, 0.03);
  EXPECT_NEAR(erlang_b_offered_load(20, 0.01), 12.03, 0.06);
  EXPECT_NEAR(erlang_b_offered_load(100, 0.01), 84.06, 0.3);
}

TEST(ErlangBOfferedLoad, ConsistentWithServerInverse) {
  // erlang_b_servers(E, t) = m means m servers suffice for load E at
  // target t; therefore the largest load m servers can carry at t must
  // be at least E.
  for (const double e : {10.0, 50.0, 100.0}) {
    const auto m = erlang_b_servers(e, 0.01);
    EXPECT_GE(erlang_b_offered_load(m, 0.01), e);
    // And one server fewer cannot carry E at the target.
    EXPECT_LT(erlang_b_offered_load(m - 1, 0.01), e);
  }
}

TEST(ErlangBOfferedLoad, MonotoneInServersAndTarget) {
  EXPECT_LT(erlang_b_offered_load(10, 0.01), erlang_b_offered_load(20, 0.01));
  EXPECT_LT(erlang_b_offered_load(10, 0.001), erlang_b_offered_load(10, 0.1));
}

TEST(ErlangBOfferedLoad, InvalidArgumentsThrow) {
  EXPECT_THROW((void)erlang_b_offered_load(0, 0.01), std::invalid_argument);
  EXPECT_THROW((void)erlang_b_offered_load(-3, 0.01), std::invalid_argument);
  EXPECT_THROW((void)erlang_b_offered_load(5, 0.0), std::invalid_argument);
  EXPECT_THROW((void)erlang_b_offered_load(5, 1.0), std::invalid_argument);
  EXPECT_THROW((void)erlang_b_offered_load(5, -0.1), std::invalid_argument);
}

}  // namespace
}  // namespace bevr::numerics
