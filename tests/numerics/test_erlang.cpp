#include "bevr/numerics/erlang.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace bevr::numerics {
namespace {

TEST(ErlangB, ClassicTableValues) {
  // Standard traffic-engineering table entries.
  EXPECT_NEAR(erlang_b(1.0, 1), 0.5, 1e-12);
  EXPECT_NEAR(erlang_b(1.0, 2), 0.2, 1e-12);
  // E = A·B(m−1)/(m + A·B(m−1)): B(2, 2) = 0.4.
  EXPECT_NEAR(erlang_b(2.0, 2), 0.4, 1e-12);
  // Well-known planning point: 100 erlangs on 100 servers ≈ 7.57%.
  EXPECT_NEAR(erlang_b(100.0, 100), 0.0757, 5e-4);
}

TEST(ErlangB, DirectFormulaSmallCases) {
  // B(E, m) = (E^m/m!) / Σ_{j≤m} E^j/j!.
  const double e = 3.7;
  for (int m = 0; m <= 8; ++m) {
    double numerator = 1.0, denominator = 0.0, term = 1.0;
    for (int j = 0; j <= m; ++j) {
      denominator += term;
      if (j == m) numerator = term;
      term *= e / (j + 1);
    }
    EXPECT_NEAR(erlang_b(e, m), numerator / denominator, 1e-12) << "m=" << m;
  }
}

TEST(ErlangB, MonotoneInServersAndLoad) {
  double prev = 1.0;
  for (int m = 0; m <= 150; ++m) {
    const double b = erlang_b(100.0, m);
    EXPECT_LE(b, prev + 1e-15) << "m=" << m;
    prev = b;
  }
  EXPECT_LT(erlang_b(50.0, 60), erlang_b(70.0, 60));
}

TEST(ErlangB, EdgeCases) {
  EXPECT_EQ(erlang_b(0.0, 0), 1.0);
  EXPECT_EQ(erlang_b(0.0, 5), 0.0);
  EXPECT_EQ(erlang_b(5.0, 0), 1.0);
  EXPECT_THROW((void)erlang_b(-1.0, 3), std::invalid_argument);
  EXPECT_THROW((void)erlang_b(1.0, -1), std::invalid_argument);
}

TEST(ErlangB, LargeSystemStable) {
  // 10'000 erlangs on 10'200 servers: finite, small, positive.
  const double b = erlang_b(10'000.0, 10'200);
  EXPECT_GT(b, 0.0);
  EXPECT_LT(b, 0.05);
}

TEST(ErlangBServers, InvertsBlocking) {
  for (const double target : {0.1, 0.01, 0.001}) {
    const auto m = erlang_b_servers(100.0, target);
    EXPECT_LE(erlang_b(100.0, m), target);
    EXPECT_GT(erlang_b(100.0, m - 1), target);
  }
}

TEST(ErlangBServers, KnownPlanningValue) {
  // 100 erlangs at 1% blocking needs ~117 servers.
  EXPECT_NEAR(static_cast<double>(erlang_b_servers(100.0, 0.01)), 117.0, 2.0);
  EXPECT_THROW((void)erlang_b_servers(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)erlang_b_servers(1.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace bevr::numerics
