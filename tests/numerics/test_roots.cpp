#include "bevr/numerics/roots.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace bevr::numerics {
namespace {

TEST(Brent, LinearRoot) {
  const auto result = brent([](double x) { return 2.0 * x - 3.0; }, 0.0, 5.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, 1.5, 1e-12);
}

TEST(Brent, TranscendentalRoot) {
  // x e^x = 1 -> x = W(1) = Omega constant.
  const auto result =
      brent([](double x) { return x * std::exp(x) - 1.0; }, 0.0, 1.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, 0.5671432904097838, 1e-12);
}

TEST(Brent, EndpointRootExact) {
  const auto result = brent([](double x) { return x; }, 0.0, 2.0);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.x, 0.0);
}

TEST(Brent, ThrowsWithoutSignChange) {
  EXPECT_THROW(
      (void)brent([](double x) { return x * x + 1.0; }, -1.0, 1.0),
      std::invalid_argument);
}

TEST(Brent, SteepAndFlatMixture) {
  // f has a nearly flat region then a steep crossing, a classic
  // secant-method trap; Brent must still converge.
  auto f = [](double x) { return std::tanh(50.0 * (x - 0.7)) + x / 1000.0; };
  const auto result = brent(f, 0.0, 1.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(f(result.x), 0.0, 1e-9);
}

TEST(Bisect, AgreesWithBrent) {
  auto f = [](double x) { return std::cos(x) - x; };
  const auto a = brent(f, 0.0, 1.0);
  const auto b = bisect(f, 0.0, 1.0, {.max_iterations = 100});
  EXPECT_NEAR(a.x, b.x, 1e-9);
  EXPECT_NEAR(a.x, 0.7390851332151607, 1e-10);
}

TEST(Bisect, ThrowsWithoutSignChange) {
  EXPECT_THROW((void)bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(ExpandBracket, FindsBracketAboveInitialInterval) {
  auto f = [](double x) { return x - 100.0; };
  const auto bracket = expand_bracket(f, 0.0, 1.0);
  ASSERT_TRUE(bracket.has_value());
  EXPECT_LE(bracket->lo, 100.0);
  EXPECT_GE(bracket->hi, 100.0);
  const auto root = brent(f, *bracket);
  EXPECT_NEAR(root.x, 100.0, 1e-9);
}

TEST(ExpandBracket, RespectsLowerBound) {
  // Root at -5 but the domain is restricted to x >= 0: no bracket.
  auto f = [](double x) { return x + 5.0; };
  const auto bracket =
      expand_bracket(f, 0.0, 1.0, 2.0, 16, /*min_lo=*/0.0);
  EXPECT_FALSE(bracket.has_value());
}

TEST(ExpandBracket, RejectsBadInterval) {
  EXPECT_THROW((void)expand_bracket([](double x) { return x; }, 1.0, 0.0),
               std::invalid_argument);
}

TEST(Brent, HighPrecisionOnPolynomial) {
  // (x-1)(x-2)(x-3) root in [2.5, 10].
  auto f = [](double x) { return (x - 1.0) * (x - 2.0) * (x - 3.0); };
  const auto result = brent(f, 2.5, 10.0);
  EXPECT_NEAR(result.x, 3.0, 1e-12);
}

struct RootCase {
  double target;
};

class BrentInverseSweep : public ::testing::TestWithParam<RootCase> {};

// Property: Brent inverts a monotone function to high accuracy across a
// sweep of targets (this is exactly how bandwidth_gap uses it).
TEST_P(BrentInverseSweep, InvertsMonotoneFunction) {
  const double target = GetParam().target;
  auto f = [target](double x) { return 1.0 - std::exp(-x) - target; };
  const auto result = brent(f, 0.0, 100.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(1.0 - std::exp(-result.x), target, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Targets, BrentInverseSweep,
                         ::testing::Values(RootCase{0.01}, RootCase{0.1},
                                           RootCase{0.5}, RootCase{0.9},
                                           RootCase{0.99}, RootCase{0.9999}));

}  // namespace
}  // namespace bevr::numerics
