#include "bevr/numerics/quadrature.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include <gtest/gtest.h>

namespace bevr::numerics {
namespace {

TEST(GaussKronrod15, ExactOnLowDegreePolynomials) {
  // GK15 integrates polynomials up to degree 29 exactly (to rounding).
  const auto result = gauss_kronrod_15(
      [](double x) { return 5.0 * x * x * x * x; }, 0.0, 2.0);
  EXPECT_NEAR(result.value, 32.0, 1e-12);
}

TEST(Integrate, SineOverHalfPeriod) {
  const auto result =
      integrate([](double x) { return std::sin(x); }, 0.0, std::numbers::pi);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.value, 2.0, 1e-12);
}

TEST(Integrate, ReversedLimitsNegate) {
  const auto forward = integrate([](double x) { return x * x; }, 0.0, 1.0);
  const auto backward = integrate([](double x) { return x * x; }, 1.0, 0.0);
  EXPECT_NEAR(forward.value, 1.0 / 3.0, 1e-13);
  EXPECT_NEAR(backward.value, -1.0 / 3.0, 1e-13);
}

TEST(Integrate, EmptyInterval) {
  const auto result = integrate([](double x) { return x; }, 2.0, 2.0);
  EXPECT_EQ(result.value, 0.0);
}

TEST(Integrate, HandlesKinks) {
  // |x - 0.3| over [0, 1]: adaptive refinement around the kink.
  const auto result =
      integrate([](double x) { return std::abs(x - 0.3); }, 0.0, 1.0);
  EXPECT_NEAR(result.value, (0.09 + 0.49) / 2.0, 1e-10);
}

TEST(Integrate, HandlesStepDiscontinuity) {
  const auto result = integrate(
      [](double x) { return x < 0.5 ? 0.0 : 1.0; }, 0.0, 1.0, 1e-12, 1e-10);
  EXPECT_NEAR(result.value, 0.5, 1e-8);
}

TEST(Integrate, RejectsInfiniteEndpoints) {
  EXPECT_THROW((void)integrate([](double x) { return x; }, 0.0,
                               std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(IntegrateToInfinity, ExponentialTail) {
  const auto result =
      integrate_to_infinity([](double x) { return std::exp(-x); }, 0.0);
  EXPECT_NEAR(result.value, 1.0, 1e-10);
}

TEST(IntegrateToInfinity, ShiftedExponential) {
  const auto result =
      integrate_to_infinity([](double x) { return std::exp(-x); }, 3.0);
  EXPECT_NEAR(result.value, std::exp(-3.0), 1e-12);
}

TEST(IntegrateToInfinity, ParetoTail) {
  // ∫_1^∞ 2 x^{-3} dx = 1.
  const auto result =
      integrate_to_infinity([](double x) { return 2.0 * std::pow(x, -3.0); },
                            1.0);
  EXPECT_NEAR(result.value, 1.0, 1e-9);
}

TEST(IntegrateToInfinity, ParetoFirstMoment) {
  // ∫_1^∞ x·(z-1)x^{-z} dx = (z-1)/(z-2) for z = 3.
  const auto result = integrate_to_infinity(
      [](double x) { return x * 2.0 * std::pow(x, -3.0); }, 1.0);
  EXPECT_NEAR(result.value, 2.0, 1e-8);
}

TEST(IntegrateToInfinity, GaussianMoment) {
  // ∫_0^∞ x e^{-x²/2} dx = 1.
  const auto result = integrate_to_infinity(
      [](double x) { return x * std::exp(-0.5 * x * x); }, 0.0);
  EXPECT_NEAR(result.value, 1.0, 1e-10);
}

// The continuum model's integrand family: P(k)·k·π(C/k). Verify the
// quadrature reproduces the closed form the paper gives for the
// exponential/rigid case, over a capacity sweep.
class ContinuumIntegrandSweep : public ::testing::TestWithParam<double> {};

TEST_P(ContinuumIntegrandSweep, MatchesClosedForm) {
  const double capacity = GetParam();
  const double beta = 0.01;
  auto integrand = [beta](double k) { return beta * std::exp(-beta * k) * k; };
  // V_B for rigid: ∫_0^C k P(k) dk = (1/β)(1 − e^{−βC}(1+βC)).
  const auto result = integrate(integrand, 0.0, capacity, 1e-13, 1e-11);
  const double bc = beta * capacity;
  const double expected = (1.0 - std::exp(-bc) * (1.0 + bc)) / beta;
  EXPECT_NEAR(result.value, expected, 1e-9 * (1.0 + expected));
}

INSTANTIATE_TEST_SUITE_P(Capacities, ContinuumIntegrandSweep,
                         ::testing::Values(1.0, 10.0, 50.0, 100.0, 200.0,
                                           400.0, 1000.0));

}  // namespace
}  // namespace bevr::numerics
