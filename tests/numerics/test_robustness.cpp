// Robustness under extreme parameters: the numeric substrate and the
// model stack must stay finite, bounded and sensible far outside the
// paper's k̄ = 100 comfort zone.
#include <cmath>
#include <limits>
#include <memory>

#include <gtest/gtest.h>

#include "bevr/core/variable_load.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"
#include "bevr/numerics/lambert_w.h"
#include "bevr/numerics/quadrature.h"
#include "bevr/numerics/special.h"
#include "bevr/utility/utility.h"

namespace bevr {
namespace {

TEST(Robustness, HugePoissonMeanStaysStable) {
  const dist::PoissonLoad load(1e6);
  EXPECT_NEAR(load.pmf(1'000'000), 1.0 / std::sqrt(2.0 * M_PI * 1e6), 1e-9);
  EXPECT_NEAR(load.cdf(1'000'000), 0.5, 0.01);
  EXPECT_GT(load.tail_above(1'003'000), 0.0);
  EXPECT_LT(load.tail_above(1'003'000), 0.01);
  EXPECT_NEAR(load.partial_mean_above(-1), 1e6, 1.0);
}

TEST(Robustness, TinyAndHugeExponentialMeans) {
  const auto tiny = dist::ExponentialLoad::with_mean(1e-3);
  EXPECT_NEAR(tiny.mean(), 1e-3, 1e-12);
  EXPECT_NEAR(tiny.pmf(0), 1.0, 2e-3);  // nearly all mass at zero
  const auto huge = dist::ExponentialLoad::with_mean(1e7);
  EXPECT_NEAR(huge.mean(), 1e7, 1.0);
  EXPECT_NEAR(huge.tail_above(static_cast<std::int64_t>(1e7)),
              std::exp(-1.0), 1e-6);
}

TEST(Robustness, SteepAlgebraicPower) {
  // z = 20: essentially all mass at the shift; moments must not
  // overflow the Hurwitz-zeta evaluation.
  const auto load = dist::AlgebraicLoad::with_mean(20.0, 100.0);
  EXPECT_NEAR(load.mean(), 100.0, 1e-6);
  EXPECT_TRUE(std::isfinite(load.second_moment()));
  EXPECT_GT(load.pmf(100), 0.0);
}

TEST(Robustness, UtilityAtExtremeBandwidths) {
  const utility::AdaptiveExp adaptive;
  EXPECT_EQ(adaptive.value(1e300), 1.0);
  EXPECT_EQ(adaptive.value(0.0), 0.0);
  EXPECT_GT(adaptive.value(1e-300), 0.0 - 1e-15);
  const utility::AlgebraicTail tail(0.001);  // extremely slow approach
  EXPECT_LT(tail.value(1e6), 1.0);
  EXPECT_GT(tail.value(1e6), 0.0);
}

TEST(Robustness, ModelAtExtremeCapacities) {
  const auto load = std::make_shared<dist::ExponentialLoad>(
      dist::ExponentialLoad::with_mean(100.0));
  const core::VariableLoadModel model(
      load, std::make_shared<utility::AdaptiveExp>());
  // Minuscule capacity: both utilities near zero, still ordered.
  const double b_small = model.best_effort(1e-6);
  const double r_small = model.reservation(1e-6);
  EXPECT_GE(r_small + 1e-15, b_small);
  EXPECT_LT(r_small, 1e-4);
  // Astronomical capacity: both saturate at 1.
  EXPECT_NEAR(model.best_effort(1e7), 1.0, 1e-9);
  EXPECT_NEAR(model.reservation(1e7), 1.0, 1e-9);
  EXPECT_NEAR(model.bandwidth_gap(1e7), 0.0, 1e-3);
}

TEST(Robustness, LambertWAtDomainEdges) {
  EXPECT_TRUE(std::isfinite(numerics::lambert_w0(1e-300)));
  EXPECT_NEAR(numerics::lambert_w0(1e-300), 1e-300, 1e-305);
  EXPECT_TRUE(std::isfinite(numerics::lambert_w0(1e300)));
  EXPECT_TRUE(std::isfinite(numerics::lambert_w_minus1(-1e-300)));
  EXPECT_LT(numerics::lambert_w_minus1(-1e-300), -600.0);
}

TEST(Robustness, QuadratureDegenerateInputs) {
  const auto zero = numerics::integrate([](double) { return 0.0; }, 0.0, 1.0);
  EXPECT_EQ(zero.value, 0.0);
  EXPECT_TRUE(zero.converged);
  // A narrow smooth peak (sigma = 0.01): adaptive refinement resolves
  // it to the analytic value sigma*sqrt(2*pi).
  const double sigma = 0.01;
  const auto peak = numerics::integrate(
      [sigma](double x) {
        const double u = (x - 0.5) / sigma;
        return std::exp(-0.5 * u * u);
      },
      0.0, 1.0, 1e-12, 1e-10, 48);
  EXPECT_NEAR(peak.value, sigma * std::sqrt(2.0 * M_PI), 1e-8);
}

TEST(Robustness, HurwitzZetaExtremes) {
  // Large s: series is essentially its first term; optimal truncation
  // of the Euler-Maclaurin corrections must keep full precision.
  EXPECT_NEAR(numerics::hurwitz_zeta(50.0, 2.0),
              std::pow(2.0, -50.0) * (1.0 + std::pow(2.0 / 3.0, 50.0)),
              1e-13 * std::pow(2.0, -50.0));
  // Huge shift: integral approximation regime.
  EXPECT_TRUE(std::isfinite(numerics::hurwitz_zeta(2.5, 1e12)));
  EXPECT_GT(numerics::hurwitz_zeta(2.5, 1e12), 0.0);
}

TEST(Robustness, RigidWithLargeRequirement) {
  // b̂ = 50 on k̄ = 100: only tiny loads are served at all.
  const auto load = std::make_shared<dist::PoissonLoad>(100.0);
  const core::VariableLoadModel model(load,
                                      std::make_shared<utility::Rigid>(50.0));
  EXPECT_LT(model.best_effort(100.0), 1e-9);  // P[K ≤ 2] ≈ 0
  EXPECT_GE(model.reservation(100.0), model.best_effort(100.0));
  const auto kmax = model.k_max(100.0);
  ASSERT_TRUE(kmax.has_value());
  EXPECT_EQ(*kmax, 2);
}

}  // namespace
}  // namespace bevr
