#include "bevr/numerics/kahan.h"

#include <cmath>
#include <random>

#include <gtest/gtest.h>

namespace bevr::numerics {
namespace {

TEST(KahanSum, EmptyIsZero) {
  KahanSum sum;
  EXPECT_EQ(sum.value(), 0.0);
}

TEST(KahanSum, InitialValue) {
  KahanSum sum(3.5);
  EXPECT_EQ(sum.value(), 3.5);
  sum.add(0.5);
  EXPECT_DOUBLE_EQ(sum.value(), 4.0);
}

TEST(KahanSum, RecoversTinyTermsNextToLargeOnes) {
  // 1 + 1e-16 added 10'000 times: naive summation stays at 1.0.
  KahanSum sum;
  sum.add(1.0);
  for (int i = 0; i < 10'000; ++i) sum.add(1e-16);
  EXPECT_NEAR(sum.value(), 1.0 + 1e-12, 1e-15);

  double naive = 1.0;
  for (int i = 0; i < 10'000; ++i) naive += 1e-16;
  EXPECT_EQ(naive, 1.0);  // demonstrates the failure Kahan fixes
}

TEST(KahanSum, NeumaierHandlesLargeIncomingTerm) {
  // Classic Neumaier test: [1, 1e100, 1, -1e100] sums to 2.
  KahanSum sum;
  sum.add(1.0);
  sum.add(1e100);
  sum.add(1.0);
  sum.add(-1e100);
  EXPECT_DOUBLE_EQ(sum.value(), 2.0);
}

TEST(KahanSum, MatchesLongDoubleOnRandomSeries) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  KahanSum sum;
  long double reference = 0.0L;
  for (int i = 0; i < 200'000; ++i) {
    const double x = std::ldexp(dist(rng), dist(rng) > 0 ? 20 : -40);
    sum.add(x);
    reference += x;
  }
  EXPECT_NEAR(sum.value(), static_cast<double>(reference),
              std::abs(static_cast<double>(reference)) * 1e-14 + 1e-12);
}

TEST(KahanSum, OperatorPlusEquals) {
  KahanSum sum;
  sum += 1.5;
  sum += 2.5;
  EXPECT_DOUBLE_EQ(sum.value(), 4.0);
}

}  // namespace
}  // namespace bevr::numerics
