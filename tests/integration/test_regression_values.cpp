// Golden-value regression pins: exact numbers produced by this
// implementation at well-chosen probe points, for all six paper cases
// plus the key special functions. These protect future refactors of
// the numeric engine — any change that moves these beyond the stated
// tolerances is a behaviour change, not a cleanup.
//
// (The values were cross-validated against closed forms, quadrature and
// the paper's quoted figures elsewhere in the suite; here they are
// simply frozen.)
#include <memory>

#include <gtest/gtest.h>

#include "bevr/bevr.h"

namespace bevr {
namespace {

struct GoldenCase {
  const char* name;
  double best_effort;   // B(150)
  double reservation;   // R(150)
  double gap;           // Delta(150)
  double gap_tolerance;
};

class GoldenValues : public ::testing::Test {
 protected:
  [[nodiscard]] static core::VariableLoadModel model(const std::string& id) {
    std::shared_ptr<const dist::DiscreteLoad> load;
    if (id.substr(0, 4) == "pois") {
      load = std::make_shared<dist::PoissonLoad>(100.0);
    } else if (id.substr(0, 3) == "exp") {
      load = std::make_shared<dist::ExponentialLoad>(
          dist::ExponentialLoad::with_mean(100.0));
    } else {
      load = std::make_shared<dist::AlgebraicLoad>(
          dist::AlgebraicLoad::with_mean(3.0, 100.0));
    }
    std::shared_ptr<const utility::UtilityFunction> pi;
    if (id.substr(id.size() - 3) == "rig") {
      pi = std::make_shared<utility::Rigid>(1.0);
    } else {
      pi = std::make_shared<utility::AdaptiveExp>();
    }
    return core::VariableLoadModel(load, pi);
  }
};

TEST_F(GoldenValues, SixCaseProbeAtC150) {
  // Rigid Δ lands on the step edges of B(C) (integer capacities), so
  // its tolerance is the root-finder's step resolution.
  const GoldenCase cases[] = {
      {"pois_rig", 0.999998115790, 0.999999965431, 9.0, 0.5},
      {"pois_ada", 0.650902342385, 0.650902342531, 0.0, 0.01},
      {"exp_rig", 0.441341668062, 0.775201228981, 135.0, 0.5},
      {"exp_ada", 0.461644468743, 0.474115609037, 5.63260032, 1e-4},
      {"alg_rig", 0.363857360087, 0.602412051196, 193.0, 0.5},
      {"alg_ada", 0.374077944913, 0.391647588622, 11.50278066, 1e-4},
  };
  for (const auto& golden : cases) {
    const auto m = model(golden.name);
    EXPECT_NEAR(m.best_effort(150.0), golden.best_effort, 1e-9)
        << golden.name;
    EXPECT_NEAR(m.reservation(150.0), golden.reservation, 1e-9)
        << golden.name;
    EXPECT_NEAR(m.bandwidth_gap(150.0), golden.gap, golden.gap_tolerance)
        << golden.name;
  }
}

TEST_F(GoldenValues, SpecialFunctionPins) {
  EXPECT_NEAR(numerics::hurwitz_zeta(3.0, 101.0), 4.950249991667500e-05,
              1e-18);
  EXPECT_NEAR(numerics::riemann_zeta(3.0), 1.2020569031595943, 1e-14);
  EXPECT_NEAR(numerics::lambert_w0(1.0), 0.5671432904097838, 1e-14);
  EXPECT_NEAR(numerics::erlang_b(100.0, 90), 0.14609754173593131, 1e-12);
  // The algebraic load's mean-100 shift at z = 3.
  const auto alg = dist::AlgebraicLoad::with_mean(3.0, 100.0);
  EXPECT_NEAR(alg.lambda(), 98.996649955698, 1e-8);
}

TEST_F(GoldenValues, ContinuumClosedFormPins) {
  const core::ExponentialRigidContinuum exp_rigid(0.01);
  EXPECT_NEAR(exp_rigid.best_effort(150.0),
              1.0 - std::exp(-1.5) * 2.5, 1e-15);
  EXPECT_NEAR(exp_rigid.equalizing_price_ratio(0.05), 1.632127, 2e-4);
  const core::AlgebraicRigidContinuum alg_rigid(3.0);
  EXPECT_DOUBLE_EQ(alg_rigid.bandwidth_gap(512.0), 512.0);
  EXPECT_DOUBLE_EQ(alg_rigid.equalizing_price_ratio(0.01), 2.0);
  const core::AlgebraicAdaptiveContinuum alg_adaptive(3.0, 0.5);
  EXPECT_DOUBLE_EQ(alg_adaptive.gap_ratio_power(), 1.5);
}

}  // namespace
}  // namespace bevr
