// Header hygiene: the umbrella header must compile standalone and the
// namespaces it advertises must be usable together.
#include "bevr/bevr.h"

#include <memory>

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndSmoke) {
  using namespace bevr;
  const auto load = std::make_shared<dist::PoissonLoad>(50.0);
  const auto pi = std::make_shared<utility::AdaptiveExp>();
  const core::VariableLoadModel model(load, pi);
  EXPECT_GT(model.reservation(60.0), 0.0);
  EXPECT_GE(model.reservation(60.0), model.best_effort(60.0));
  EXPECT_NEAR(numerics::erlang_b(1.0, 1), 0.5, 1e-12);
  const net::FluidScheduler scheduler(10.0);
  EXPECT_EQ(scheduler.capacity(), 10.0);
  sim::EventQueue queue;
  EXPECT_TRUE(queue.empty());
}

}  // namespace
