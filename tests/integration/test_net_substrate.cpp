// Integration: the RSVP/admission/scheduler substrate grounds the
// paper's abstract reservation model — homogeneous unit flows through
// the actual signalling machinery reproduce the analytic k_max rule,
// and the GPS scheduler reproduces the C/k share abstraction that the
// utility model consumes.
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "bevr/core/fixed_load.h"
#include "bevr/net/rsvp.h"
#include "bevr/net/scheduler.h"
#include "bevr/net/token_bucket.h"
#include "bevr/utility/utility.h"

namespace bevr {
namespace {

net::FlowSpec unit_flow(double rate = 1.0) {
  net::FlowSpec spec;
  spec.tspec.bucket_rate = rate;
  spec.tspec.peak_rate = rate;
  spec.rspec.rate = rate;
  return spec;
}

// End-to-end: RSVP admission over a 2-hop path with capacity C accepts
// exactly k_max(C) = ⌊C/b̂⌋ rigid flows — the analytic admission rule
// emerges from the mechanism.
TEST(NetSubstrate, RsvpReproducesAnalyticKMax) {
  const double capacity = 100.0;
  const utility::Rigid rigid(1.0);
  const auto kmax = core::k_max(rigid, capacity);
  ASSERT_TRUE(kmax.has_value());

  auto topo = std::make_shared<net::Topology>();
  const auto src = topo->add_node("src");
  const auto mid = topo->add_node("router");
  const auto dst = topo->add_node("dst");
  topo->add_link(src, mid, capacity * 10.0);  // fat access link
  topo->add_link(mid, dst, capacity);         // the bottleneck
  net::RsvpAgent agent(topo,
                       std::make_shared<net::ParameterBasedAdmission>(1.0));
  std::int64_t committed = 0;
  for (int i = 0; i < 150; ++i) {
    const auto session = agent.open_session(src, dst, 0.0);
    ASSERT_TRUE(session.has_value());
    if (agent.reserve(*session, unit_flow(rigid.requirement()), 0.0) ==
        net::ResvResult::kCommitted) {
      ++committed;
    }
  }
  EXPECT_EQ(committed, *kmax);
}

// The GPS scheduler's equal split drives the utility model: k greedy
// flows on capacity C each get C/k, so total utility is k·π(C/k) —
// the fixed-load V(k) — measured through the actual allocator.
TEST(NetSubstrate, SchedulerSharesReproduceFixedLoadUtility) {
  const double capacity = 100.0;
  const net::FluidScheduler scheduler(capacity);
  const utility::AdaptiveExp pi;
  for (const int k : {50, 100, 150, 200}) {
    std::vector<net::SchedulableFlow> flows;
    for (int i = 0; i < k; ++i) {
      flows.push_back({.id = static_cast<std::uint64_t>(i),
                       .reserved_rate = 0.0,
                       .weight = 1.0,
                       .demand = std::numeric_limits<double>::infinity()});
    }
    const auto allocations = scheduler.allocate(flows);
    double total_utility = 0.0;
    for (const auto& a : allocations) total_utility += pi.value(a.rate);
    EXPECT_NEAR(total_utility, core::total_utility(pi, capacity, k), 1e-6)
        << "k=" << k;
  }
}

// Mixed architecture on one link: reserved flows keep their utility at
// π(reservation) no matter how many best-effort flows pile in — the
// fundamental service guarantee reservations buy.
TEST(NetSubstrate, ReservedUtilityImmuneToBestEffortPressure) {
  const double capacity = 100.0;
  const net::FluidScheduler scheduler(capacity);
  const utility::AdaptiveExp pi;
  const double reserved_rate = 1.0;
  for (const int burden : {0, 100, 1000}) {
    std::vector<net::SchedulableFlow> flows;
    flows.push_back({.id = 0, .reserved_rate = reserved_rate, .weight = 1.0,
                     .demand = reserved_rate});
    for (int i = 0; i < burden; ++i) {
      flows.push_back({.id = static_cast<std::uint64_t>(i + 1),
                       .reserved_rate = 0.0,
                       .weight = 1.0,
                       .demand = std::numeric_limits<double>::infinity()});
    }
    const auto allocations = scheduler.allocate(flows);
    EXPECT_NEAR(pi.value(allocations[0].rate), pi.value(reserved_rate), 1e-9)
        << "burden=" << burden;
  }
}

// Conversely the best-effort flows' utility collapses as load mounts —
// quantitatively following π(C/k).
TEST(NetSubstrate, BestEffortUtilityDegradesAsPiOfShare) {
  const double capacity = 100.0;
  const net::FluidScheduler scheduler(capacity);
  const utility::AdaptiveExp pi;
  double previous = 2.0;
  for (const int k : {100, 200, 400, 800}) {
    std::vector<net::SchedulableFlow> flows;
    for (int i = 0; i < k; ++i) {
      flows.push_back({.id = static_cast<std::uint64_t>(i),
                       .reserved_rate = 0.0,
                       .weight = 1.0,
                       .demand = std::numeric_limits<double>::infinity()});
    }
    const auto allocations = scheduler.allocate(flows);
    const double per_flow = pi.value(allocations[0].rate);
    EXPECT_NEAR(per_flow, pi.value(capacity / k), 1e-9);
    EXPECT_LT(per_flow, previous);
    previous = per_flow;
  }
}

// Token-bucket policing upstream of the scheduler: a flow that reserved
// rate r but sends a burst beyond its TSpec gets clipped by the policer,
// not by other flows' service.
TEST(NetSubstrate, PolicingProtectsTheReservation) {
  net::TokenBucket bucket(/*rate=*/1.0, /*depth=*/5.0);
  double conforming = 0.0;
  // Source tries to send 3 units every second for 20 seconds.
  for (double now = 0.0; now < 20.0; now += 1.0) {
    if (bucket.consume(now, 3.0)) conforming += 3.0;
  }
  // Conformant volume ≤ r·t + b = 25; the policer enforced the TSpec.
  EXPECT_LE(conforming, 25.0 + 1e-9);
  EXPECT_GE(conforming, 15.0);
}

}  // namespace
}  // namespace bevr
