// Cross-validation between the discrete (§3.1) and continuum (§3.2)
// variable-load models. The paper asserts the two are "completely
// equivalent" in the large-C asymptotics; these tests quantify it.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "bevr/core/asymptotics.h"
#include "bevr/core/continuum.h"
#include "bevr/core/variable_load.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/utility/utility.h"

namespace bevr {
namespace {

// The discrete geometric load with mean 100 and the continuum
// exponential density with β = ln(1 + 1/100) share their exponential
// tail, so the rigid-utility B and R agree closely once C ≫ 1.
TEST(DiscreteVsContinuum, ExponentialRigidUtilitiesAgree) {
  const auto load = std::make_shared<dist::ExponentialLoad>(
      dist::ExponentialLoad::with_mean(100.0));
  const core::VariableLoadModel discrete(
      load, std::make_shared<utility::Rigid>(1.0));
  const core::ExponentialRigidContinuum continuum(load->beta());
  for (const double c : {100.0, 200.0, 400.0, 800.0}) {
    EXPECT_NEAR(discrete.best_effort(c), continuum.best_effort(c), 0.02)
        << "C=" << c;
    EXPECT_NEAR(discrete.reservation(c), continuum.reservation(c), 0.02)
        << "C=" << c;
  }
}

TEST(DiscreteVsContinuum, ExponentialRigidGapsAgreeAsymptotically) {
  const auto load = std::make_shared<dist::ExponentialLoad>(
      dist::ExponentialLoad::with_mean(100.0));
  const core::VariableLoadModel discrete(
      load, std::make_shared<utility::Rigid>(1.0));
  const core::ExponentialRigidContinuum continuum(load->beta());
  for (const double c : {300.0, 600.0, 1200.0}) {
    const double d = discrete.bandwidth_gap(c);
    const double k = continuum.bandwidth_gap(c);
    EXPECT_NEAR(d / k, 1.0, 0.10) << "C=" << c;
  }
}

// The discrete algebraic load's performance gap decays with the same
// power-law exponent 2 − z as the continuum's closed form.
TEST(DiscreteVsContinuum, AlgebraicGapExponentMatches) {
  const double z = 3.0;
  const auto load = std::make_shared<dist::AlgebraicLoad>(
      dist::AlgebraicLoad::with_mean(z, 100.0));
  const core::VariableLoadModel discrete(
      load, std::make_shared<utility::Rigid>(1.0));
  // Fit the log-log slope of delta(C) over a decade at large C (where
  // the lambda shift is negligible: lambda ~ 100 vs C ~ 1e4).
  const double d1 = discrete.performance_gap(8'000.0);
  const double d2 = discrete.performance_gap(80'000.0);
  const double slope = std::log10(d2 / d1);
  EXPECT_NEAR(slope, 2.0 - z, 0.06);
}

// The discrete bandwidth-gap ratio converges to the continuum constant
// (z−1)^{1/(z−2)} = 2 at z = 3 — the paper's central asymptotic claim,
// checked end-to-end through two independent code paths.
TEST(DiscreteVsContinuum, AlgebraicCapacityRatioConverges) {
  const double z = 3.0;
  const auto load = std::make_shared<dist::AlgebraicLoad>(
      dist::AlgebraicLoad::with_mean(z, 100.0));
  const core::VariableLoadModel discrete(
      load, std::make_shared<utility::Rigid>(1.0));
  const double target = core::asymptotics::capacity_ratio_rigid(z);
  const double r1 = (2'000.0 + discrete.bandwidth_gap(2'000.0)) / 2'000.0;
  const double r2 = (16'000.0 + discrete.bandwidth_gap(16'000.0)) / 16'000.0;
  EXPECT_NEAR(r2, target, 0.08);
  // ...and it converges monotonically from the small-C side.
  EXPECT_LT(std::abs(r2 - target), std::abs(r1 - target) + 1e-9);
}

// Same convergence for the adaptive continuum constant via the
// piecewise-linear utility (the continuum model's own adaptive form).
TEST(DiscreteVsContinuum, AlgebraicAdaptiveRatioConverges) {
  const double z = 3.0, a = 0.5;
  const auto load = std::make_shared<dist::AlgebraicLoad>(
      dist::AlgebraicLoad::with_mean(z, 100.0));
  const core::VariableLoadModel discrete(
      load, std::make_shared<utility::PiecewiseLinear>(a));
  const double target = core::asymptotics::capacity_ratio_adaptive(z, a);
  const double r = (16'000.0 + discrete.bandwidth_gap(16'000.0)) / 16'000.0;
  EXPECT_NEAR(r, target, 0.08);
}

// Exponential + piecewise-adaptive: the discrete gap approaches the
// continuum's constant limit −ln(1−a)/β.
TEST(DiscreteVsContinuum, ExponentialAdaptiveGapLimitMatches) {
  const double a = 0.5;
  const auto load = std::make_shared<dist::ExponentialLoad>(
      dist::ExponentialLoad::with_mean(100.0));
  const core::VariableLoadModel discrete(
      load, std::make_shared<utility::PiecewiseLinear>(a));
  const double limit =
      core::asymptotics::exponential_adaptive_gap_limit(load->beta(), a);
  EXPECT_NEAR(discrete.bandwidth_gap(1'500.0), limit, 0.05 * limit);
}

}  // namespace
}  // namespace bevr
