// Integration: the flow-level simulator (dynamics) must agree with the
// analytical variable-load model (statics) — the abstraction the paper
// takes for granted in §3 ("we just model their resulting stationary
// distributions").
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "bevr/core/fixed_load.h"
#include "bevr/core/variable_load.h"
#include "bevr/dist/poisson.h"
#include "bevr/sim/simulator.h"
#include "bevr/utility/utility.h"

namespace bevr {
namespace {

sim::SimulationConfig config_for(double capacity, sim::Architecture arch,
                                 std::int64_t limit) {
  sim::SimulationConfig config;
  config.capacity = capacity;
  config.architecture = arch;
  config.admission_limit = limit;
  config.utility_mode = sim::UtilityMode::kSnapshotAtAdmission;
  config.horizon = 6000.0;
  config.warmup = 300.0;
  config.seed = 99;
  return config;
}

// Empirical best-effort utility under M/M/∞ (Poisson stationary load)
// matches the analytic B(C) of the Poisson variable-load model. The
// snapshot-at-admission measure is the flow-perspective (size-biased)
// average, which is exactly the paper's B(C).
TEST(SimVsModel, BestEffortUtilityMatchesAnalyticB) {
  const double offered = 100.0;
  const auto pi = std::make_shared<utility::AdaptiveExp>();
  const auto load = std::make_shared<dist::PoissonLoad>(offered);
  const core::VariableLoadModel model(load, pi);
  for (const double c : {80.0, 100.0, 130.0}) {
    const sim::FlowSimulator simulator(
        config_for(c, sim::Architecture::kBestEffort, 0), pi,
        std::make_shared<sim::PoissonArrivals>(offered),
        std::make_shared<sim::ExponentialHolding>(1.0));
    const auto report = simulator.run();
    EXPECT_NEAR(report.mean_utility, model.best_effort(c), 0.02)
        << "C=" << c;
  }
}

// Reservation architecture with k_max(C) admission: empirical per-flow
// utility (blocked flows scored 0) matches the analytic R(C).
TEST(SimVsModel, ReservationUtilityMatchesAnalyticR) {
  const double offered = 100.0;
  const auto pi = std::make_shared<utility::AdaptiveExp>();
  const auto load = std::make_shared<dist::PoissonLoad>(offered);
  const core::VariableLoadModel model(load, pi);
  for (const double c : {80.0, 100.0}) {
    const auto kmax = core::k_max(*pi, c);
    ASSERT_TRUE(kmax.has_value());
    const sim::FlowSimulator simulator(
        config_for(c, sim::Architecture::kReservation, *kmax), pi,
        std::make_shared<sim::PoissonArrivals>(offered),
        std::make_shared<sim::ExponentialHolding>(1.0));
    const auto report = simulator.run();
    EXPECT_NEAR(report.mean_utility, model.reservation(c), 0.02)
        << "C=" << c;
  }
}

// Blocking probability of the simulated loss system matches the
// analytic flow-perspective blocking fraction.
TEST(SimVsModel, BlockingMatchesAnalyticFraction) {
  const double offered = 100.0;
  const double c = 90.0;
  const auto pi = std::make_shared<utility::Rigid>(1.0);
  const auto load = std::make_shared<dist::PoissonLoad>(offered);
  const core::VariableLoadModel model(load, pi);
  const sim::FlowSimulator simulator(
      config_for(c, sim::Architecture::kReservation, 90), pi,
      std::make_shared<sim::PoissonArrivals>(offered),
      std::make_shared<sim::ExponentialHolding>(1.0));
  const auto report = simulator.run();
  // The simulated system is an M/M/m/m loss system: its blocking is
  // the Erlang-B formula, which the simulator must match tightly.
  double erlang_b = 1.0;
  for (int m = 1; m <= 90; ++m) {
    erlang_b = offered * erlang_b / (m + offered * erlang_b);
  }
  EXPECT_NEAR(report.blocking_probability, erlang_b, 0.015);
  // The paper's static-distribution blocking fraction is a different
  // (retry-free, unconstrained-occupancy) estimate; same ballpark only.
  EXPECT_NEAR(report.blocking_probability, model.blocking_fraction(c), 0.06);
}

// M/G/∞ insensitivity: heavy-tailed holding times leave the Poisson
// occupancy law intact (only the arrival process matters) — this is
// why the paper's Poisson case is robust to duration distributions.
TEST(SimVsModel, OccupancyInsensitiveToHoldingDistribution) {
  const double offered = 100.0;
  auto config = config_for(100.0, sim::Architecture::kBestEffort, 0);
  config.horizon = 30'000.0;  // heavy tails need a longer run
  const auto holding =
      std::make_shared<sim::BoundedParetoHolding>(1.5, 0.1, 100.0);
  const double rate = offered / holding->mean();
  const sim::FlowSimulator simulator(
      config, std::make_shared<utility::AdaptiveExp>(),
      std::make_shared<sim::PoissonArrivals>(rate), holding);
  const auto report = simulator.run();
  EXPECT_NEAR(report.mean_occupancy, offered, 6.0);
  const dist::PoissonLoad poisson(offered);
  // Occupancy variance check via the pmf mass near the mean.
  double mass = 0.0, poisson_mass = 0.0;
  for (std::int64_t k = 80; k <= 120; ++k) {
    if (static_cast<std::size_t>(k) < report.occupancy_pmf.size()) {
      mass += report.occupancy_pmf[static_cast<std::size_t>(k)];
    }
    poisson_mass += poisson.pmf(k);
  }
  EXPECT_NEAR(mass, poisson_mass, 0.12);
}

// Bursty arrivals push the occupancy tail past Poisson — the paper's
// motivation for looking beyond the Poisson load model.
TEST(SimVsModel, BurstyArrivalsFattenTheTail) {
  auto config = config_for(100.0, sim::Architecture::kBestEffort, 0);
  config.horizon = 20'000.0;
  const auto holding = std::make_shared<sim::ExponentialHolding>(1.0);
  const sim::FlowSimulator poisson_sim(
      config, std::make_shared<utility::AdaptiveExp>(),
      std::make_shared<sim::PoissonArrivals>(100.0), holding);
  // Bursty process with the same long-run rate of 100.
  // p/hot + (1−p)/cold = 1/100 keeps the long-run rate at 100.
  const auto bursty = std::make_shared<sim::BurstyArrivals>(
      /*hot_rate=*/1000.0, /*cold_rate=*/1.0 / 0.019, /*hot_p=*/0.5);
  ASSERT_NEAR(bursty->rate(), 100.0, 5.0);
  const sim::FlowSimulator bursty_sim(
      config, std::make_shared<utility::AdaptiveExp>(), bursty, holding);
  auto tail_mass = [](const sim::SimulationReport& report,
                      std::size_t from) {
    double mass = 0.0;
    for (std::size_t k = from; k < report.occupancy_pmf.size(); ++k) {
      mass += report.occupancy_pmf[k];
    }
    return mass;
  };
  const auto p = poisson_sim.run();
  const auto b = bursty_sim.run();
  EXPECT_GT(tail_mass(b, 130), 2.0 * tail_mass(p, 130));
}

}  // namespace
}  // namespace bevr
