// TraceCollector: span recording, ring overwrite accounting, thread
// attribution, and Chrome trace-event JSON export.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bevr/obs/trace.h"
#include "json_lite.h"

namespace bevr::obs {
namespace {

TEST(TraceCollector, DisabledCollectorRecordsNothing) {
  TraceCollector collector;
  EXPECT_FALSE(collector.enabled());
  { TraceSpan span("test/span", collector); }
  EXPECT_TRUE(collector.events().empty());
  EXPECT_EQ(collector.dropped(), 0u);
}

TEST(TraceCollector, SpanRecordsOneCompleteEvent) {
  TraceCollector collector;
  collector.set_enabled(true);
  { TraceSpan span("test/span", collector); }
  const auto events = collector.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test/span");
  EXPECT_LE(events[0].begin_ns, events[0].end_ns);
}

TEST(TraceCollector, EnablementIsLatchedAtSpanEntry) {
  TraceCollector collector;
  collector.set_enabled(true);
  {
    TraceSpan span("test/straddle", collector);
    collector.set_enabled(false);  // span already latched: still records
  }
  EXPECT_EQ(collector.events().size(), 1u);
  {
    TraceSpan span("test/late", collector);
    collector.set_enabled(true);  // latched disabled: does not record
  }
  EXPECT_EQ(collector.events().size(), 1u);
}

TEST(TraceCollector, EventsAreSortedByBeginTime) {
  TraceCollector collector;
  collector.set_enabled(true);
  collector.record("c", 300, 400);
  collector.record("a", 100, 150);
  collector.record("b", 200, 900);
  const auto events = collector.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_STREQ(events[1].name, "b");
  EXPECT_STREQ(events[2].name, "c");
}

TEST(TraceCollector, EnclosingSpanSortsBeforeItsChildren) {
  TraceCollector collector;
  collector.set_enabled(true);
  // Same begin time: the longer (enclosing) span must come first so
  // Perfetto nests them correctly.
  collector.record("child", 100, 200);
  collector.record("parent", 100, 900);
  const auto events = collector.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "parent");
  EXPECT_STREQ(events[1].name, "child");
}

TEST(TraceCollector, RingOverwriteKeepsNewestAndCountsDrops) {
  TraceCollector collector(/*buffer_capacity=*/4);
  collector.set_enabled(true);
  for (std::uint64_t i = 0; i < 10; ++i) {
    collector.record("test/event", i * 10, i * 10 + 5);
  }
  const auto events = collector.events();
  EXPECT_EQ(events.size(), 4u);
  EXPECT_EQ(collector.dropped(), 6u);
  // The survivors are the newest four records.
  for (const TraceEvent& event : events) {
    EXPECT_GE(event.begin_ns, 60u);
  }
}

TEST(TraceCollector, ThreadsGetDistinctTids) {
  TraceCollector collector;
  collector.set_enabled(true);
  std::vector<std::thread> threads;
  threads.reserve(3);
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back(
        [&collector] { TraceSpan span("test/worker", collector); });
  }
  for (auto& thread : threads) thread.join();
  const auto events = collector.events();
  ASSERT_EQ(events.size(), 3u);
  std::set<std::uint32_t> tids;
  for (const TraceEvent& event : events) tids.insert(event.tid);
  EXPECT_EQ(tids.size(), 3u);
}

TEST(TraceCollector, ClearDiscardsEventsButKeepsRecording) {
  TraceCollector collector;
  collector.set_enabled(true);
  collector.record("test/a", 1, 2);
  collector.clear();
  EXPECT_TRUE(collector.events().empty());
  collector.record("test/b", 3, 4);
  EXPECT_EQ(collector.events().size(), 1u);
}

TEST(TraceCollector, ChromeTraceIsValidJsonWithExpectedSchema) {
  TraceCollector collector;
  collector.set_enabled(true);
  collector.record("runner/task", 1'000, 4'500);
  collector.record("runner/\"quoted\"\\name", 2'000, 3'000);
  std::ostringstream out;
  collector.write_chrome_trace(out);
  const std::string json = out.str();

  bevr::test_json::Parser parser(json);
  EXPECT_TRUE(parser.valid())
      << "invalid JSON at offset " << parser.error_pos() << ":\n" << json;

  // Schema spot checks: the keys chrome://tracing / Perfetto require.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"runner/task\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  // The quoted name must have been escaped, not emitted raw.
  EXPECT_EQ(json.find("\"runner/\"quoted\""), std::string::npos);
}

TEST(TraceCollector, EmptyTraceIsStillValidJson) {
  TraceCollector collector;
  std::ostringstream out;
  collector.write_chrome_trace(out);
  EXPECT_TRUE(bevr::test_json::valid_json(out.str())) << out.str();
  EXPECT_NE(out.str().find("\"traceEvents\""), std::string::npos);
}

TEST(TraceSpanMacro, RecordsIntoTheGlobalCollector) {
  TraceCollector& collector = TraceCollector::global();
  collector.clear();
  collector.set_enabled(true);
  { BEVR_TRACE_SPAN("test/macro_span"); }
  collector.set_enabled(false);
#if BEVR_OBS
  const auto events = collector.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test/macro_span");
#else
  EXPECT_TRUE(collector.events().empty());
#endif
  collector.clear();
}

}  // namespace
}  // namespace bevr::obs
