// TraceContext: deterministic causal ids — same (seed, index) always
// derives the same trace, distinct inputs decorrelate, and the zero
// trace id stays reserved for "no context".
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "bevr/obs/trace_context.h"

namespace bevr::obs {
namespace {

TEST(TraceContext, DeriveIsDeterministic) {
  for (std::uint64_t seed : {0ULL, 1ULL, 42ULL, ~0ULL}) {
    for (std::uint64_t index : {0ULL, 1ULL, 1000ULL}) {
      const TraceContext a = TraceContext::derive(seed, index);
      const TraceContext b = TraceContext::derive(seed, index);
      EXPECT_EQ(a.trace_id, b.trace_id);
      EXPECT_EQ(a.span_id, b.span_id);
      EXPECT_EQ(a.parent_span_id, 0u);  // derive() makes root spans
    }
  }
}

TEST(TraceContext, DistinctInputsGetDistinctIds) {
  std::set<std::uint64_t> traces;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    for (std::uint64_t index = 0; index < 64; ++index) {
      traces.insert(TraceContext::derive(seed, index).trace_id);
    }
  }
  // 512 (seed, index) pairs through a bijective mix: collisions would
  // mean the derivation is folding inputs together.
  EXPECT_EQ(traces.size(), 8u * 64u);
}

TEST(TraceContext, TraceIdIsNeverZero) {
  // Zero is reserved for "no context". The mix is bijective so exactly
  // one input maps to 0; sample broadly and check the invariant plus
  // valid()'s reading of it.
  EXPECT_FALSE(TraceContext{}.valid());
  for (std::uint64_t index = 0; index < 4096; ++index) {
    const TraceContext ctx = TraceContext::derive(0xDEADBEEF, index);
    EXPECT_NE(ctx.trace_id, 0u);
    EXPECT_TRUE(ctx.valid());
  }
}

TEST(TraceContext, ChildKeepsTraceAndLinksParent) {
  const TraceContext root = TraceContext::derive(7, 3);
  const TraceContext eval = root.child(0);
  const TraceContext respond = root.child(1);
  EXPECT_EQ(eval.trace_id, root.trace_id);
  EXPECT_EQ(respond.trace_id, root.trace_id);
  EXPECT_EQ(eval.parent_span_id, root.span_id);
  EXPECT_EQ(respond.parent_span_id, root.span_id);
  // Sibling slots get distinct spans; the derivation is reproducible.
  EXPECT_NE(eval.span_id, respond.span_id);
  EXPECT_NE(eval.span_id, root.span_id);
  EXPECT_EQ(root.child(0).span_id, eval.span_id);
}

TEST(TraceContext, Mix64MatchesSplitMix64Reference) {
  // Reference outputs of the SplitMix64 finaliser seeded at 0 (Steele,
  // Lea & Flood 2014; same constants as sim::splitmix64). Pins the obs
  // copy to the sim copy without a cross-layer dependency.
  EXPECT_EQ(mix64(0x0000000000000000ULL), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(mix64(0x9E3779B97F4A7C15ULL), 0x6E789E6AA1B965F4ULL);
}

}  // namespace
}  // namespace bevr::obs
