// RollingWindow: time-bucketed histograms — in-window merging, scroll-
// out, bucket recycling, and rate computation, all under injected
// logical time so every expectation is exact.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bevr/obs/window.h"

namespace bevr::obs {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000ULL;

RollingWindow small_window() {
  // 4 one-second buckets over value bounds {10, 20, 30}.
  return RollingWindow(HistogramSpec::linear(10.0, 10.0, 3), kSecond, 4);
}

TEST(RollingWindow, MergesObservationsInsideTheWindow) {
  RollingWindow window = small_window();
  window.observe(5.0, /*now=*/0 * kSecond);
  window.observe(15.0, 1 * kSecond);
  window.observe(25.0, 2 * kSecond);
  const WindowSnapshot snap = window.snapshot(3 * kSecond);
  EXPECT_EQ(snap.window_ns, 4 * kSecond);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 45.0);
  EXPECT_DOUBLE_EQ(snap.rate_per_sec, 3.0 / 4.0);
  // Value buckets: one each in (<=10), (<=20), (<=30).
  ASSERT_EQ(snap.histogram.counts.size(), 4u);
  EXPECT_EQ(snap.histogram.counts[0], 1u);
  EXPECT_EQ(snap.histogram.counts[1], 1u);
  EXPECT_EQ(snap.histogram.counts[2], 1u);
  EXPECT_EQ(snap.histogram.counts[3], 0u);
}

TEST(RollingWindow, OldBucketsScrollOutOfTheSnapshot) {
  RollingWindow window = small_window();
  window.observe(5.0, 0 * kSecond);
  // Still visible while slice 0 is within the 4-bucket window...
  EXPECT_EQ(window.snapshot(3 * kSecond).count, 1u);
  // ...gone once the window has moved past it.
  EXPECT_EQ(window.snapshot(4 * kSecond).count, 0u);
}

TEST(RollingWindow, RotationRecyclesStaleBuckets) {
  RollingWindow window = small_window();
  window.observe(5.0, 0 * kSecond);
  window.observe(5.0, 0 * kSecond);
  // Slice 4 maps to the same bucket index as slice 0; the write must
  // recycle the bucket, not accumulate on top of the stale counts.
  window.observe(25.0, 4 * kSecond);
  const WindowSnapshot snap = window.snapshot(4 * kSecond);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.sum, 25.0);
}

TEST(RollingWindow, SnapshotIsDeterministicUnderInjectedTime) {
  RollingWindow a = small_window();
  RollingWindow b = small_window();
  for (std::uint64_t i = 0; i < 40; ++i) {
    const double value = static_cast<double>(i % 35);
    const std::uint64_t now = i * (kSecond / 10);
    a.observe(value, now);
    b.observe(value, now);
  }
  const WindowSnapshot sa = a.snapshot(4 * kSecond);
  const WindowSnapshot sb = b.snapshot(4 * kSecond);
  EXPECT_EQ(sa.count, sb.count);
  EXPECT_EQ(sa.sum, sb.sum);  // bitwise: same values, same order
  EXPECT_EQ(sa.histogram.counts, sb.histogram.counts);
}

TEST(RollingWindow, ClearForgetsEverything) {
  RollingWindow window = small_window();
  window.observe(5.0, kSecond);
  window.clear();
  EXPECT_EQ(window.snapshot(kSecond).count, 0u);
  window.observe(7.0, kSecond);
  EXPECT_EQ(window.snapshot(kSecond).count, 1u);
}

TEST(RollingWindow, OverSecondsUsesLatencyBoundsAndSixteenBuckets) {
  RollingWindow window = RollingWindow::over_seconds(8.0);
  EXPECT_EQ(window.window_ns(), 8 * kSecond);
  window.observe(100.0, kSecond);
  const WindowSnapshot snap = window.snapshot(kSecond);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GT(snap.histogram.bounds.size(), 8u);  // latency_us() bounds
  EXPECT_NEAR(snap.histogram.quantile(0.5), 100.0, 100.0);
}

TEST(RollingWindow, RejectsDegenerateConfigurations) {
  EXPECT_THROW(RollingWindow(HistogramSpec{}, kSecond, 4),
               std::invalid_argument);
  EXPECT_THROW(RollingWindow(HistogramSpec::linear(1, 1, 3), 0, 4),
               std::invalid_argument);
  EXPECT_THROW(RollingWindow(HistogramSpec::linear(1, 1, 3), kSecond, 0),
               std::invalid_argument);
  EXPECT_THROW(RollingWindow::over_seconds(0.0), std::invalid_argument);
}

TEST(RollingWindow, ConcurrentObserversLandEveryInWindowValue) {
  // All writers target the same slice, so there is no boundary race:
  // the counts must be exact even under contention. (TSan target.)
  RollingWindow window = small_window();
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&window] {
      for (int i = 0; i < 1000; ++i) window.observe(15.0, 2 * kSecond);
    });
  }
  for (std::thread& writer : writers) writer.join();
  const WindowSnapshot snap = window.snapshot(2 * kSecond);
  EXPECT_EQ(snap.count, 4000u);
  EXPECT_DOUBLE_EQ(snap.sum, 4000.0 * 15.0);
}

}  // namespace
}  // namespace bevr::obs
