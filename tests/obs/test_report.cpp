// RunReport rendering: the text / JSON / Prometheus views of one
// snapshot must agree with each other and with the exposition grammar.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bevr/obs/metrics.h"
#include "bevr/obs/report.h"
#include "json_lite.h"

namespace bevr::obs {
namespace {

/// A registry populated with one of each metric kind.
MetricsSnapshot sample_snapshot() {
  MetricsRegistry registry;
  registry.counter("runner/pool/tasks").add(12);
  registry.counter("sim/events").add(340);
  registry.gauge("runner/pool/queue_depth").set(2.5);
  const Histogram histogram = registry.histogram(
      "runner/task_us", HistogramSpec::exponential(1.0, 2.0, 4));
  histogram.observe(0.5);
  histogram.observe(3.0);
  histogram.observe(100.0);  // overflow bucket
  return registry.snapshot();
}

TEST(ReportFormat, ParsesTheThreeNames) {
  EXPECT_EQ(parse_report_format("text"), ReportFormat::kText);
  EXPECT_EQ(parse_report_format("json"), ReportFormat::kJson);
  EXPECT_EQ(parse_report_format("prom"), ReportFormat::kProm);
  EXPECT_THROW((void)parse_report_format("yaml"), std::invalid_argument);
  EXPECT_THROW((void)parse_report_format(""), std::invalid_argument);
}

TEST(PromMetricName, SanitizesPathsToExpositionNames) {
  EXPECT_EQ(prom_metric_name("runner/pool/tasks"), "bevr_runner_pool_tasks");
  EXPECT_EQ(prom_metric_name("sim/best_effort/arrivals"),
            "bevr_sim_best_effort_arrivals");
  EXPECT_EQ(prom_metric_name("weird name-x"), "bevr_weird_name_x");
}

void check_prom_grammar(const std::string& exposition);

TEST(PromLabelValue, EscapesBackslashQuoteAndNewline) {
  EXPECT_EQ(prom_label_value("plain"), "plain");
  EXPECT_EQ(prom_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prom_label_value("line\nbreak"), "line\\nbreak");
}

TEST(RenderReport, PromSanitizesHostileMetricNames) {
  MetricsRegistry registry;
  registry.counter("rates.per-second here").add(7);
  registry.gauge("queue depth (now)").set(1.0);
  const std::string prom =
      render_report(registry.snapshot(), ReportFormat::kProm);
  check_prom_grammar(prom);
  EXPECT_NE(prom.find("bevr_rates_per_second_here_total 7"),
            std::string::npos);
  EXPECT_NE(prom.find("bevr_queue_depth__now_ 1"), std::string::npos);
}

TEST(RenderReport, PromUniquesCollidingSanitizedNames) {
  // Distinct raw names that sanitize identically must not produce two
  // `# TYPE bevr_a_b_total` lines (that's an invalid scrape page).
  MetricsRegistry registry;
  registry.counter("a-b").add(1);
  registry.counter("a.b").add(2);
  registry.counter("a b").add(3);
  const std::string prom =
      render_report(registry.snapshot(), ReportFormat::kProm);
  check_prom_grammar(prom);
  std::istringstream stream(prom);
  std::string line;
  std::vector<std::string> type_names;
  while (std::getline(stream, line)) {
    if (line.rfind("# TYPE ", 0) == 0) {
      const auto rest = line.substr(7);
      type_names.push_back(rest.substr(0, rest.find(' ')));
    }
  }
  ASSERT_EQ(type_names.size(), 3u);
  for (std::size_t i = 0; i < type_names.size(); ++i) {
    for (std::size_t j = i + 1; j < type_names.size(); ++j) {
      EXPECT_NE(type_names[i], type_names[j]);
    }
  }
  EXPECT_NE(prom.find("bevr_a_b_total 1"), std::string::npos);
  EXPECT_NE(prom.find("bevr_a_b_total_dup2 2"), std::string::npos);
  EXPECT_NE(prom.find("bevr_a_b_total_dup3 3"), std::string::npos);
}

TEST(RenderReport, TextContainsEveryMetric) {
  const std::string text =
      render_report(sample_snapshot(), ReportFormat::kText);
  EXPECT_NE(text.find("runner/pool/tasks"), std::string::npos);
  EXPECT_NE(text.find("sim/events"), std::string::npos);
  EXPECT_NE(text.find("runner/pool/queue_depth"), std::string::npos);
  EXPECT_NE(text.find("runner/task_us"), std::string::npos);
  EXPECT_NE(text.find("p50"), std::string::npos);
  EXPECT_NE(text.find("p95"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
}

TEST(RenderReport, JsonIsValidAndCarriesTheValues) {
  const std::string json =
      render_report(sample_snapshot(), ReportFormat::kJson);
  bevr::test_json::Parser parser(json);
  EXPECT_TRUE(parser.valid())
      << "invalid JSON at offset " << parser.error_pos() << ":\n" << json;
  EXPECT_NE(json.find("\"runner/pool/tasks\":12"), std::string::npos);
  EXPECT_NE(json.find("\"sim/events\":340"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(RenderReport, EmptySnapshotRendersInEveryFormat) {
  const MetricsSnapshot empty;
  EXPECT_TRUE(bevr::test_json::valid_json(
      render_report(empty, ReportFormat::kJson)));
  (void)render_report(empty, ReportFormat::kText);
  EXPECT_EQ(render_report(empty, ReportFormat::kProm).find("# "),
            std::string::npos);
}

// Line-level check of the Prometheus text exposition (format 0.0.4):
// every line is a '# TYPE <name> <type>' comment or a
// '<name>[{label="value"}] <number>' sample.
void check_prom_grammar(const std::string& exposition) {
  std::istringstream stream(exposition);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      const auto rest = line.substr(7);
      const auto space = rest.find(' ');
      ASSERT_NE(space, std::string::npos) << line;
      const std::string type = rest.substr(space + 1);
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unexpected comment: " << line;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name_part = line.substr(0, space);
    for (const char c : name_part) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':' || c == '{' ||
                  c == '}' || c == '"' || c == '=' || c == '.' || c == '+' ||
                  c == '-')
          << "bad character '" << c << "' in: " << line;
    }
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
  }
}

TEST(RenderReport, PromExpositionFollowsTheGrammar) {
  const std::string prom =
      render_report(sample_snapshot(), ReportFormat::kProm);
  check_prom_grammar(prom);
  EXPECT_NE(prom.find("# TYPE bevr_runner_pool_tasks_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("bevr_runner_pool_tasks_total 12"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE bevr_runner_pool_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE bevr_runner_task_us histogram"),
            std::string::npos);
}

TEST(RenderReport, PromHistogramBucketsAreCumulative) {
  const std::string prom =
      render_report(sample_snapshot(), ReportFormat::kProm);
  // Pull every bevr_runner_task_us_bucket sample in order.
  std::istringstream stream(prom);
  std::string line;
  std::vector<std::uint64_t> cumulative;
  std::uint64_t count_value = 0;
  bool saw_inf = false;
  bool saw_sum = false;
  while (std::getline(stream, line)) {
    if (line.rfind("bevr_runner_task_us_bucket{le=", 0) == 0) {
      const auto space = line.rfind(' ');
      cumulative.push_back(std::stoull(line.substr(space + 1)));
      if (line.find("le=\"+Inf\"") != std::string::npos) saw_inf = true;
    } else if (line.rfind("bevr_runner_task_us_sum ", 0) == 0) {
      saw_sum = true;
      EXPECT_NEAR(std::stod(line.substr(line.rfind(' ') + 1)), 103.5, 1e-9);
    } else if (line.rfind("bevr_runner_task_us_count ", 0) == 0) {
      count_value = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  ASSERT_FALSE(cumulative.empty());
  EXPECT_TRUE(saw_inf);
  EXPECT_TRUE(saw_sum);
  // Monotone non-decreasing, and the +Inf bucket equals _count.
  for (std::size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_GE(cumulative[i], cumulative[i - 1]);
  }
  EXPECT_EQ(cumulative.back(), 3u);
  EXPECT_EQ(count_value, 3u);
}

TEST(RenderReport, FormatsAgreeOnCounterTotals) {
  const MetricsSnapshot snapshot = sample_snapshot();
  const std::string text = render_report(snapshot, ReportFormat::kText);
  const std::string json = render_report(snapshot, ReportFormat::kJson);
  const std::string prom = render_report(snapshot, ReportFormat::kProm);
  EXPECT_NE(text.find("340"), std::string::npos);
  EXPECT_NE(json.find("\"sim/events\":340"), std::string::npos);
  EXPECT_NE(prom.find("bevr_sim_events_total 340"), std::string::npos);
}

}  // namespace
}  // namespace bevr::obs
