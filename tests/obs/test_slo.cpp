// SloTracker: burn-rate arithmetic, multi-window readings, the healthy
// flag, and the registry's create-or-get semantics — all under
// injected logical time.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "bevr/obs/slo.h"

namespace bevr::obs {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000ULL;

TEST(SloTracker, BurnRateIsBadFractionOverBudget) {
  // target 0.75 → 25% error budget (binary-exact, so burn == 1.0 is
  // representable). 1 bad in 4 = exactly budget: burn 1.0, still
  // healthy (spending as fast as allowed, not faster).
  SloTracker tracker("test/deadline", 0.75, {16 * kSecond});
  for (int i = 0; i < 3; ++i) tracker.record(true, kSecond);
  tracker.record(false, kSecond);
  const SloStatus status = tracker.status(kSecond);
  EXPECT_EQ(status.total_good, 3u);
  EXPECT_EQ(status.total_bad, 1u);
  ASSERT_EQ(status.windows.size(), 1u);
  EXPECT_DOUBLE_EQ(status.windows[0].bad_fraction, 0.25);
  EXPECT_DOUBLE_EQ(status.windows[0].burn_rate, 1.0);
  EXPECT_TRUE(status.healthy);
  // One more miss tips the fraction past the budget.
  tracker.record(false, kSecond);
  EXPECT_FALSE(tracker.status(kSecond).healthy);
}

TEST(SloTracker, NoDataIsVacuouslyHealthy) {
  SloTracker tracker("test/empty", 0.99);
  const SloStatus status = tracker.status(kSecond);
  EXPECT_TRUE(status.healthy);
  for (const SloWindowStatus& window : status.windows) {
    EXPECT_EQ(window.good + window.bad, 0u);
    EXPECT_DOUBLE_EQ(window.burn_rate, 0.0);
  }
}

TEST(SloTracker, ShortWindowForgetsWhatTheLongWindowRemembers) {
  // 16x1s fast window, 16x16s slow window. A burst of misses at t=1s
  // scrolls out of the fast window by t=30s but stays in the slow one
  // — the classic "was it just a blip" distinction.
  SloTracker tracker("test/two_windows", 0.5, {16 * kSecond, 256 * kSecond});
  for (int i = 0; i < 8; ++i) tracker.record(false, 1 * kSecond);
  const SloStatus during = tracker.status(2 * kSecond);
  ASSERT_EQ(during.windows.size(), 2u);
  EXPECT_EQ(during.windows[0].bad, 8u);
  EXPECT_EQ(during.windows[1].bad, 8u);
  EXPECT_FALSE(during.healthy);
  const SloStatus later = tracker.status(30 * kSecond);
  EXPECT_EQ(later.windows[0].bad, 0u);  // blip scrolled out
  EXPECT_EQ(later.windows[1].bad, 8u);  // still burning the long budget
  EXPECT_EQ(later.total_bad, 8u);       // lifetime totals never forget
  EXPECT_FALSE(later.healthy);
}

TEST(SloTracker, ClearResetsWindowsAndTotals) {
  SloTracker tracker("test/clear", 0.9, {16 * kSecond});
  tracker.record(false, kSecond);
  tracker.clear();
  const SloStatus status = tracker.status(kSecond);
  EXPECT_EQ(status.total_bad, 0u);
  EXPECT_TRUE(status.healthy);
}

TEST(SloTracker, RejectsDegenerateConfigurations) {
  EXPECT_THROW(SloTracker("bad", 0.0), std::invalid_argument);
  EXPECT_THROW(SloTracker("bad", 1.0), std::invalid_argument);
  EXPECT_THROW(SloTracker("bad", 0.9, {}), std::invalid_argument);
  EXPECT_THROW(SloTracker("bad", 0.9, {0}), std::invalid_argument);
}

TEST(SloTracker, ConcurrentRecordsAllLand) {
  // Single slice, many writers: totals and window counts must be
  // exact. (TSan target.)
  SloTracker tracker("test/concurrent", 0.9, {16 * kSecond});
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&tracker, t] {
      for (int i = 0; i < 1000; ++i) tracker.record(t % 2 == 0, kSecond);
    });
  }
  for (std::thread& writer : writers) writer.join();
  const SloStatus status = tracker.status(kSecond);
  EXPECT_EQ(status.total_good, 2000u);
  EXPECT_EQ(status.total_bad, 2000u);
  EXPECT_EQ(status.windows[0].good, 2000u);
  EXPECT_EQ(status.windows[0].bad, 2000u);
}

TEST(SloRegistry, TrackerIsCreateOrGet) {
  SloRegistry& registry = SloRegistry::global();
  SloTracker& first = registry.tracker("test/registry_slo", 0.95);
  // Second registration with a different target returns the original
  // as-is, mirroring MetricsRegistry handle semantics.
  SloTracker& second = registry.tracker("test/registry_slo", 0.5);
  EXPECT_EQ(&first, &second);
  EXPECT_DOUBLE_EQ(second.target(), 0.95);
}

TEST(SloRegistry, SnapshotAllSeesEveryTracker) {
  SloRegistry& registry = SloRegistry::global();
  SloTracker& tracker = registry.tracker("test/registry_snapshot", 0.9);
  tracker.record(true, kSecond);
  bool found = false;
  for (const SloStatus& status : registry.snapshot_all(kSecond)) {
    if (status.name == "test/registry_snapshot") {
      found = true;
      EXPECT_GE(status.total_good, 1u);
    }
  }
  EXPECT_TRUE(found);
  tracker.clear();
}

}  // namespace
}  // namespace bevr::obs
