// MetricsRegistry: handle semantics, histogram quantile correctness
// against known distributions, multi-thread shard merging, and the
// disabled no-op contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bevr/obs/metrics.h"

namespace bevr::obs {
namespace {

TEST(HistogramSpec, ExponentialBounds) {
  const HistogramSpec spec = HistogramSpec::exponential(1.0, 2.0, 5);
  EXPECT_EQ(spec.bounds, (std::vector<double>{1, 2, 4, 8, 16}));
}

TEST(HistogramSpec, LinearBounds) {
  const HistogramSpec spec = HistogramSpec::linear(10.0, 10.0, 4);
  EXPECT_EQ(spec.bounds, (std::vector<double>{10, 20, 30, 40}));
}

TEST(HistogramSpec, RejectsBadParameters) {
  EXPECT_THROW((void)HistogramSpec::exponential(0.0, 2.0, 4),
               std::invalid_argument);
  EXPECT_THROW((void)HistogramSpec::exponential(1.0, 1.0, 4),
               std::invalid_argument);
  EXPECT_THROW((void)HistogramSpec::exponential(1.0, 2.0, 0),
               std::invalid_argument);
  EXPECT_THROW((void)HistogramSpec::exponential(1.0, 2.0, 65),
               std::invalid_argument);
  EXPECT_THROW((void)HistogramSpec::linear(0.0, 0.0, 4),
               std::invalid_argument);
}

TEST(Counter, AccumulatesAndSnapshots) {
  MetricsRegistry registry;
  const Counter counter = registry.counter("test/hits");
  counter.inc();
  counter.add(41);
  EXPECT_EQ(registry.snapshot().counter("test/hits"), 42u);
}

TEST(Counter, ReRegistrationSharesTheSlot) {
  MetricsRegistry registry;
  const Counter a = registry.counter("test/shared");
  const Counter b = registry.counter("test/shared");
  a.add(10);
  b.add(5);
  EXPECT_EQ(registry.snapshot().counter("test/shared"), 15u);
}

TEST(Counter, DefaultConstructedIsANoOp) {
  const Counter counter;
  counter.inc();  // must not crash
  counter.add(100);
}

TEST(Gauge, LastWriterWins) {
  MetricsRegistry registry;
  const Gauge gauge = registry.gauge("test/depth");
  gauge.set(3.0);
  gauge.set(-1.5);
  EXPECT_DOUBLE_EQ(registry.snapshot().gauge("test/depth"), -1.5);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  (void)registry.counter("test/name");
  EXPECT_THROW((void)registry.gauge("test/name"), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("test/name"), std::invalid_argument);
}

TEST(MetricsRegistry, DisabledWritesAreDropped) {
  MetricsRegistry registry(/*enabled=*/false);
  const Counter counter = registry.counter("test/hits");
  const Histogram histogram = registry.histogram("test/lat");
  counter.add(7);
  histogram.observe(3.0);
  EXPECT_FALSE(registry.enabled());
  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter("test/hits"), 0u);
  ASSERT_NE(snapshot.histogram("test/lat"), nullptr);
  EXPECT_EQ(snapshot.histogram("test/lat")->count, 0u);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsHandles) {
  MetricsRegistry registry;
  const Counter counter = registry.counter("test/hits");
  const Histogram histogram = registry.histogram("test/lat");
  counter.add(9);
  histogram.observe(2.0);
  registry.reset();
  MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter("test/hits"), 0u);
  EXPECT_EQ(snapshot.histogram("test/lat")->count, 0u);
  // The old handles still point at live slots.
  counter.add(3);
  histogram.observe(1.0);
  snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter("test/hits"), 3u);
  EXPECT_EQ(snapshot.histogram("test/lat")->count, 1u);
}

TEST(Histogram, ExactSumCountAndMean) {
  MetricsRegistry registry;
  const Histogram histogram =
      registry.histogram("test/lat", HistogramSpec::linear(1.0, 1.0, 10));
  for (int i = 1; i <= 8; ++i) histogram.observe(static_cast<double>(i));
  const MetricsSnapshot snapshot = registry.snapshot();
  const HistogramSnapshot* snap = snapshot.histogram("test/lat");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->count, 8u);
  EXPECT_DOUBLE_EQ(snap->sum, 36.0);
  EXPECT_DOUBLE_EQ(snap->mean(), 4.5);
}

TEST(Histogram, OverflowBucketCatchesLargeValues) {
  MetricsRegistry registry;
  const Histogram histogram =
      registry.histogram("test/lat", HistogramSpec::linear(1.0, 1.0, 2));
  histogram.observe(0.5);   // bucket le=1
  histogram.observe(1.5);   // bucket le=2
  histogram.observe(1e9);   // overflow
  const MetricsSnapshot snapshot = registry.snapshot();
  const HistogramSnapshot* snap = snapshot.histogram("test/lat");
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->counts.size(), 3u);
  EXPECT_EQ(snap->counts[0], 1u);
  EXPECT_EQ(snap->counts[1], 1u);
  EXPECT_EQ(snap->counts[2], 1u);
  // Overflow has no finite bound: the quantile clamps to the last one.
  EXPECT_DOUBLE_EQ(snap->quantile(0.999), 2.0);
}

// Quantiles against a known uniform distribution: observing every
// integer in [1, 600] against 10-wide buckets must put the q-quantile
// within one bucket width of the exact order statistic.
TEST(Histogram, QuantilesMatchUniformDistribution) {
  MetricsRegistry registry;
  const Histogram histogram =
      registry.histogram("test/uniform", HistogramSpec::linear(10.0, 10.0, 64));
  for (int i = 1; i <= 600; ++i) histogram.observe(static_cast<double>(i));
  const MetricsSnapshot snapshot = registry.snapshot();
  const HistogramSnapshot* snap = snapshot.histogram("test/uniform");
  ASSERT_NE(snap, nullptr);
  EXPECT_NEAR(snap->quantile(0.50), 300.0, 10.0);
  EXPECT_NEAR(snap->quantile(0.95), 570.0, 10.0);
  EXPECT_NEAR(snap->quantile(0.99), 594.0, 10.0);
  EXPECT_NEAR(snap->quantile(1.0), 600.0, 1e-9);
}

// A point mass: every observation identical. All quantiles land inside
// the single occupied bucket.
TEST(Histogram, QuantilesOfAPointMassStayInOneBucket) {
  MetricsRegistry registry;
  const Histogram histogram =
      registry.histogram("test/point", HistogramSpec::linear(1.0, 1.0, 16));
  for (int i = 0; i < 100; ++i) histogram.observe(6.5);
  const MetricsSnapshot snapshot = registry.snapshot();
  const HistogramSnapshot* snap = snapshot.histogram("test/point");
  ASSERT_NE(snap, nullptr);
  for (const double q : {0.01, 0.5, 0.95, 0.99}) {
    EXPECT_GE(snap->quantile(q), 6.0);
    EXPECT_LE(snap->quantile(q), 7.0);
  }
}

// A bimodal distribution: 90% fast (≤ 2), 10% slow (≈ 100). p50 must
// sit in the fast mode, p95/p99 in the slow one.
TEST(Histogram, QuantilesSeparateABimodalDistribution) {
  MetricsRegistry registry;
  const Histogram histogram =
      registry.histogram("test/bimodal", HistogramSpec::exponential(1.0, 2.0, 10));
  for (int i = 0; i < 900; ++i) histogram.observe(1.5);
  for (int i = 0; i < 100; ++i) histogram.observe(100.0);
  const MetricsSnapshot snapshot = registry.snapshot();
  const HistogramSnapshot* snap = snapshot.histogram("test/bimodal");
  ASSERT_NE(snap, nullptr);
  EXPECT_LE(snap->quantile(0.50), 2.0);
  EXPECT_GE(snap->quantile(0.95), 64.0);
  EXPECT_GE(snap->quantile(0.99), 64.0);
  EXPECT_LE(snap->quantile(0.99), 128.0);
}

TEST(Histogram, EmptyHistogramQuantileIsZero) {
  MetricsRegistry registry;
  const Histogram histogram = registry.histogram("test/empty");
  (void)histogram;
  const MetricsSnapshot snapshot = registry.snapshot();
  const HistogramSnapshot* snap = snapshot.histogram("test/empty");
  ASSERT_NE(snap, nullptr);
  EXPECT_DOUBLE_EQ(snap->quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap->mean(), 0.0);
}

// Shard merging must be exact: concurrent increments from 1, 4 and 7
// threads (the determinism harness's thread counts) sum to precisely
// threads × per-thread work, never a lost update.
class ShardMerge : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShardMerge, ConcurrentCountsAreExact) {
  const unsigned thread_count = GetParam();
  constexpr std::uint64_t kPerThread = 50'000;
  MetricsRegistry registry;
  const Counter counter = registry.counter("test/concurrent");
  const Histogram histogram =
      registry.histogram("test/lat", HistogramSpec::linear(1.0, 1.0, 8));
  std::vector<std::thread> threads;
  threads.reserve(thread_count);
  for (unsigned t = 0; t < thread_count; ++t) {
    threads.emplace_back([&counter, &histogram, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.inc();
        histogram.observe(static_cast<double>(t % 8) + 0.5);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const MetricsSnapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter("test/concurrent"), kPerThread * thread_count);
  const HistogramSnapshot* snap = snapshot.histogram("test/lat");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->count, kPerThread * thread_count);
  // Every thread hit exactly one bucket kPerThread times.
  std::uint64_t occupied = 0;
  for (const std::uint64_t bucket_count : snap->counts) {
    if (bucket_count != 0) {
      EXPECT_EQ(bucket_count % kPerThread, 0u);
      occupied += bucket_count / kPerThread;
    }
  }
  EXPECT_EQ(occupied, thread_count);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ShardMerge,
                         ::testing::Values(1u, 4u, 7u));

TEST(MetricsRegistry, SnapshotWhileWritersRunNeverLosesGround) {
  MetricsRegistry registry;
  const Counter counter = registry.counter("test/live");
  std::thread writer([&counter] {
    for (int i = 0; i < 100'000; ++i) counter.inc();
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t seen = registry.snapshot().counter("test/live");
    EXPECT_GE(seen, last);  // monotone under concurrent writes
    last = seen;
  }
  writer.join();
  EXPECT_EQ(registry.snapshot().counter("test/live"), 100'000u);
}

TEST(MetricsRegistry, NowNsIsMonotone) {
  const std::uint64_t a = now_ns();
  const std::uint64_t b = now_ns();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace bevr::obs
