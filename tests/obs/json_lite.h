// Minimal recursive-descent JSON syntax checker for tests.
//
// Validates that a string is one well-formed JSON value (RFC 8259
// grammar; no extensions, no trailing garbage). Deliberately tiny: the
// obs tests only need "does the exporter emit syntactically valid
// JSON", not a DOM — content checks are plain substring asserts.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>

namespace bevr::test_json {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  /// True when the whole input is exactly one valid JSON value.
  [[nodiscard]] bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

  /// Offset of the first error (== size() when valid).
  [[nodiscard]] std::size_t error_pos() const { return pos_; }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  [[nodiscard]] bool eat(char c) {
    if (at_end() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                         peek() == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] bool literal(const char* word) {
    const std::size_t start = pos_;
    for (const char* p = word; *p != '\0'; ++p) {
      if (!eat(*p)) {
        pos_ = start;
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] bool string() {
    if (!eat('"')) return false;
    while (!at_end()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (at_end()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (at_end() || std::isxdigit(static_cast<unsigned char>(
                                text_[pos_])) == 0) {
              return false;
            }
            ++pos_;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  [[nodiscard]] bool digits() {
    if (at_end() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      return false;
    }
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      ++pos_;
    }
    return true;
  }

  [[nodiscard]] bool number() {
    (void)eat('-');
    if (eat('0')) {
      // "0" may not be followed by more digits.
      if (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) {
        return false;
      }
    } else if (!digits()) {
      return false;
    }
    if (eat('.') && !digits()) return false;
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  [[nodiscard]] bool array() {
    if (!eat('[')) return false;
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
      skip_ws();
    }
  }

  [[nodiscard]] bool object() {
    if (!eat('{')) return false;
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
      skip_ws();
    }
  }

  [[nodiscard]] bool value() {
    if (at_end()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// One-shot convenience wrapper.
[[nodiscard]] inline bool valid_json(const std::string& text) {
  return Parser(text).valid();
}

}  // namespace bevr::test_json
