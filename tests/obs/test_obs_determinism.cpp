// Observability must be a pure side channel: the runner's emitted data
// rows are bit-identical with metrics and tracing enabled or disabled,
// at every thread count the determinism harness uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "bevr/obs/metrics.h"
#include "bevr/obs/trace.h"
#include "bevr/runner/runner.h"

namespace bevr::runner {
namespace {

// Same payload digest the runner determinism suite uses: "row" records
// only (provenance stripped), order-insensitive.
std::vector<std::string> data_lines(const std::string& payload) {
  std::vector<std::string> lines;
  std::istringstream stream(payload);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.find("\"type\":\"row\"") != std::string::npos) {
      lines.push_back(line);
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::string run_jsonl(const ScenarioSpec& spec, unsigned threads) {
  std::ostringstream out;
  JsonlSink sink(out);
  RunOptions options;
  options.threads = threads;
  options.base_seed = 42;
  run_scenario(spec, options, sink);
  return out.str();
}

ScenarioSpec small_scenario() {
  ScenarioSpec spec;
  spec.name = "obs_det";
  spec.model = ModelKind::kVariableLoad;
  spec.load = LoadFamily::kExponential;
  spec.util = UtilityFamily::kRigid;
  spec.util_param = 1.0;
  spec.grid = GridSpec{20.0, 300.0, 8, false};
  return spec;
}

/// Flip global obs state for one scope, restoring it on exit so the
/// rest of the test binary sees the defaults.
class ObsStateGuard {
 public:
  ObsStateGuard(bool metrics, bool trace)
      : metrics_before_(bevr::obs::MetricsRegistry::global().enabled()),
        trace_before_(bevr::obs::TraceCollector::global().enabled()) {
    bevr::obs::MetricsRegistry::global().set_enabled(metrics);
    bevr::obs::TraceCollector::global().set_enabled(trace);
  }
  ~ObsStateGuard() {
    bevr::obs::MetricsRegistry::global().set_enabled(metrics_before_);
    bevr::obs::TraceCollector::global().set_enabled(trace_before_);
  }
  ObsStateGuard(const ObsStateGuard&) = delete;
  ObsStateGuard& operator=(const ObsStateGuard&) = delete;

 private:
  bool metrics_before_;
  bool trace_before_;
};

class ObsDeterminism : public ::testing::TestWithParam<unsigned> {};

TEST_P(ObsDeterminism, RowsIdenticalWithObsOnAndOff) {
  const unsigned threads = GetParam();
  const ScenarioSpec spec = small_scenario();
  std::vector<std::string> all_on;
  {
    const ObsStateGuard guard(/*metrics=*/true, /*trace=*/true);
    all_on = data_lines(run_jsonl(spec, threads));
  }
  std::vector<std::string> all_off;
  {
    const ObsStateGuard guard(/*metrics=*/false, /*trace=*/false);
    all_off = data_lines(run_jsonl(spec, threads));
  }
  std::vector<std::string> metrics_only;
  {
    const ObsStateGuard guard(/*metrics=*/true, /*trace=*/false);
    metrics_only = data_lines(run_jsonl(spec, threads));
  }
  ASSERT_EQ(all_on.size(), 8u);
  EXPECT_EQ(all_on, all_off);
  EXPECT_EQ(all_on, metrics_only);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ObsDeterminism,
                         ::testing::Values(1u, 4u, 7u));

TEST(ObsDeterminism2, ObsStateDoesNotLeakAcrossThreadCounts) {
  // The cross-thread-count invariance must also hold while obs is on.
  const ObsStateGuard guard(/*metrics=*/true, /*trace=*/true);
  const ScenarioSpec spec = small_scenario();
  const auto serial = data_lines(run_jsonl(spec, 1));
  const auto parallel4 = data_lines(run_jsonl(spec, 4));
  const auto parallel7 = data_lines(run_jsonl(spec, 7));
  EXPECT_EQ(serial, parallel4);
  EXPECT_EQ(serial, parallel7);
  bevr::obs::TraceCollector::global().clear();
}

TEST(ObsRunMetrics, RunScenarioFeedsTheGlobalRegistry) {
  const ObsStateGuard guard(/*metrics=*/true, /*trace=*/false);
  bevr::obs::MetricsRegistry& registry = bevr::obs::MetricsRegistry::global();
  const std::uint64_t runs_before = registry.snapshot().counter("runner/runs");
  const std::uint64_t rows_before = registry.snapshot().counter("runner/rows");
  (void)run_jsonl(small_scenario(), 4);
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter("runner/runs"), runs_before + 1);
  EXPECT_EQ(snapshot.counter("runner/rows"), rows_before + 8);
}

}  // namespace
}  // namespace bevr::runner
