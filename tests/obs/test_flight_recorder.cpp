// FlightRecorder: always-on black box — record/readback, ring wrap
// accounting, cross-thread merge, JSON dump schema, and the one-shot
// auto-dump latch.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bevr/obs/flight_recorder.h"
#include "json_lite.h"

namespace bevr::obs {
namespace {

TEST(FlightRecorder, RecordsRoundTripInOrder) {
  FlightRecorder recorder;
  recorder.record(FlightCode::kSubmit, /*trace_id=*/0xABCD);
  recorder.record(FlightCode::kEvaluate, 0xABCD, nullptr, /*a=*/3.0);
  recorder.record(FlightCode::kRespond, 0xABCD, "done", 120.5, 2.0);
  const std::vector<FlightRecord> records = recorder.records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].code, FlightCode::kSubmit);
  EXPECT_EQ(records[0].trace_id, 0xABCDu);
  EXPECT_EQ(records[1].code, FlightCode::kEvaluate);
  EXPECT_EQ(records[1].a, 3.0);
  EXPECT_EQ(records[2].code, FlightCode::kRespond);
  EXPECT_STREQ(records[2].detail, "done");
  EXPECT_EQ(records[2].a, 120.5);
  EXPECT_EQ(records[2].b, 2.0);
  // Single writer: timestamps are monotone within the ring.
  EXPECT_LE(records[0].ts_ns, records[1].ts_ns);
  EXPECT_LE(records[1].ts_ns, records[2].ts_ns);
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(FlightRecorder, RingWrapKeepsNewestAndCountsDrops) {
  FlightRecorder recorder(/*ring_capacity=*/8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    recorder.record(FlightCode::kMark, /*trace_id=*/i);
  }
  const std::vector<FlightRecord> records = recorder.records();
  ASSERT_EQ(records.size(), 8u);
  EXPECT_EQ(recorder.dropped(), 12u);
  for (const FlightRecord& record : records) {
    EXPECT_GE(record.trace_id, 12u);  // survivors are the newest eight
  }
}

TEST(FlightRecorder, ThreadsGetDistinctTracksMergedBackTogether) {
  FlightRecorder recorder;
  std::vector<std::thread> threads;
  threads.reserve(3);
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&recorder, t] {
      recorder.record(FlightCode::kMark, static_cast<std::uint64_t>(t + 1));
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::vector<FlightRecord> records = recorder.records();
  ASSERT_EQ(records.size(), 3u);
  std::set<std::uint32_t> tracks;
  std::set<std::uint64_t> traces;
  for (const FlightRecord& record : records) {
    tracks.insert(record.track);
    traces.insert(record.trace_id);
  }
  EXPECT_EQ(tracks.size(), 3u);
  EXPECT_EQ(traces, (std::set<std::uint64_t>{1, 2, 3}));
}

TEST(FlightRecorder, JsonDumpHasSchemaAndCodeNames) {
  FlightRecorder recorder;
  recorder.record(FlightCode::kOverloaded, 0x1234, nullptr, 8.0);
  recorder.record(FlightCode::kStorm, 0x1234, nullptr, 16.0);
  std::ostringstream out;
  recorder.write_json(out, "unit-test");
  const std::string json = out.str();
  EXPECT_TRUE(bevr::test_json::valid_json(json)) << json;
  EXPECT_NE(json.find("\"schema\":\"bevr.flight.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"OVERLOADED\""), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"STORM\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\":\"0x0000000000001234\""), std::string::npos);
}

TEST(FlightRecorder, EmptyDumpIsStillValidJson) {
  FlightRecorder recorder;
  std::ostringstream out;
  recorder.write_json(out, "empty");
  EXPECT_TRUE(bevr::test_json::valid_json(out.str())) << out.str();
  EXPECT_NE(out.str().find("\"records\":[]"), std::string::npos);
}

TEST(FlightRecorder, AutoDumpFiresOncePerArming) {
  FlightRecorder recorder;
  recorder.record(FlightCode::kContractFail, 0, "first failure");
  const std::string path = ::testing::TempDir() + "flight_auto_dump.json";
  recorder.set_auto_dump_path(path);
  EXPECT_TRUE(recorder.auto_dump("contract-fail"));
  // The latch is one-shot: the second failure must not overwrite the
  // first flight.
  EXPECT_FALSE(recorder.auto_dump("contract-fail-again"));
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_TRUE(bevr::test_json::valid_json(content.str()));
  EXPECT_NE(content.str().find("\"reason\":\"contract-fail\""),
            std::string::npos);
  EXPECT_NE(content.str().find("CONTRACT_FAIL"), std::string::npos);
  // Re-arming resets the latch.
  recorder.set_auto_dump_path(path);
  EXPECT_TRUE(recorder.auto_dump("re-armed"));
  std::remove(path.c_str());
}

TEST(FlightRecorder, AutoDumpUnarmedIsANoOp) {
  FlightRecorder recorder;
  EXPECT_FALSE(recorder.auto_dump("nothing-armed"));
}

TEST(FlightRecorder, ClearDiscardsRecordsButKeepsRecording) {
  FlightRecorder recorder;
  recorder.record(FlightCode::kMark, 1);
  recorder.clear();
  EXPECT_TRUE(recorder.records().empty());
  recorder.record(FlightCode::kMark, 2);
  ASSERT_EQ(recorder.records().size(), 1u);
  EXPECT_EQ(recorder.records()[0].trace_id, 2u);
}

TEST(FlightRecorder, ConcurrentRecordAndDumpStaysWellFormed) {
  // The reader walks rings while writers append (torn records are
  // acceptable; crashes and invalid JSON are not). This is a TSan
  // target: the value is executing the race, not just the asserts.
  FlightRecorder recorder(/*ring_capacity=*/64);
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&recorder] {
      for (std::uint64_t i = 0; i < 2000; ++i) {
        recorder.record(FlightCode::kMark, i + 1, nullptr,
                        static_cast<double>(i));
      }
    });
  }
  for (int reads = 0; reads < 20; ++reads) {
    std::ostringstream out;
    recorder.write_json(out, "concurrent");
    EXPECT_TRUE(bevr::test_json::valid_json(out.str()));
  }
  for (std::thread& writer : writers) writer.join();
  // Quiesced: exact accounting resumes. 8000 records through 4 rings
  // of 64 — everything beyond the ring capacity is counted as dropped.
  EXPECT_EQ(recorder.records().size(), 4u * 64u);
  EXPECT_EQ(recorder.dropped(), 4u * (2000u - 64u));
}

}  // namespace
}  // namespace bevr::obs
