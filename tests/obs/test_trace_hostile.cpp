// Hostile-input hardening for the obs exporters: span names, flight
// details and dump reasons carrying quotes, control bytes and invalid
// UTF-8 must still yield RFC 8259-valid JSON. Two oracles:
//  * the strict bench JSON reader (bevr::bench::json::parse), which
//    throws on raw control bytes, bad escapes and malformed documents
//    — if it accepts a dump, a real consumer can read it back;
//  * the obs tests' own grammar checker (json_lite.h) as a second,
//    independently written opinion.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bevr/bench/json.h"
#include "bevr/obs/flight_recorder.h"
#include "bevr/obs/json_text.h"
#include "bevr/obs/trace.h"
#include "bevr/obs/trace_context.h"
#include "json_lite.h"

namespace bevr::obs {
namespace {

// U+FFFD REPLACEMENT CHARACTER as UTF-8 bytes.
const std::string kReplacement = "\xEF\xBF\xBD";

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
  // NUL inside a string_view must survive as an escape, not truncate.
  EXPECT_EQ(json_escape(std::string_view("a\0b", 3)), "a\\u0000b");
}

TEST(JsonEscape, WellFormedUtf8PassesThrough) {
  const std::string two_byte = "caf\xC3\xA9";           // café
  const std::string three_byte = "\xE2\x86\x92";        // →
  const std::string four_byte = "\xF0\x9F\x9A\x80";     // rocket
  EXPECT_EQ(json_escape(two_byte), two_byte);
  EXPECT_EQ(json_escape(three_byte), three_byte);
  EXPECT_EQ(json_escape(four_byte), four_byte);
}

TEST(JsonEscape, MalformedUtf8BecomesReplacementPerByte) {
  // Stray continuation byte.
  EXPECT_EQ(json_escape("\x80"), kReplacement);
  // Truncated two-byte sequence: one bad lead byte, one replacement.
  EXPECT_EQ(json_escape("\xC3"), kReplacement);
  // Overlong encoding of '/': both bytes rejected individually.
  EXPECT_EQ(json_escape("\xC0\xAF"), kReplacement + kReplacement);
  // CESU-8 style surrogate half (U+D800): three rejected bytes.
  EXPECT_EQ(json_escape("\xED\xA0\x80"),
            kReplacement + kReplacement + kReplacement);
  // Beyond U+10FFFF.
  EXPECT_EQ(json_escape("\xF4\x90\x80\x80"),
            kReplacement + kReplacement + kReplacement + kReplacement);
  // 0xFE / 0xFF never appear in UTF-8 at all.
  EXPECT_EQ(json_escape("\xFE\xFF"), kReplacement + kReplacement);
  // Valid text around the damage survives untouched.
  EXPECT_EQ(json_escape("ok\x80tail"), "ok" + kReplacement + "tail");
}

// Deterministic byte-string generator for the fuzz loops below:
// SplitMix64-driven, biased toward the troublesome ranges.
std::string hostile_bytes(std::uint64_t seed, std::size_t length) {
  std::string bytes;
  bytes.reserve(length);
  std::uint64_t state = seed;
  for (std::size_t i = 0; i < length; ++i) {
    state = mix64(state);
    switch (state % 4) {
      case 0: bytes.push_back(static_cast<char>(state % 0x20)); break;
      case 1: bytes.push_back(static_cast<char>(0x80 + state % 0x80)); break;
      case 2: bytes.push_back("\"\\/\b\f\n"[state % 6]); break;
      default: bytes.push_back(static_cast<char>(0x20 + state % 0x5f)); break;
    }
  }
  return bytes;
}

void expect_valid_json(const std::string& json) {
  EXPECT_NO_THROW((void)bench::json::parse(json)) << json;
  EXPECT_TRUE(bevr::test_json::valid_json(json)) << json;
}

TEST(TraceHostile, HostileSpanNamesExportAsValidChromeTrace) {
  TraceCollector collector;
  collector.set_enabled(true);
  // Names live until after the export: the collector stores pointers.
  std::vector<std::string> names;
  names.reserve(64);
  for (std::uint64_t i = 0; i < 64; ++i) {
    names.push_back(hostile_bytes(/*seed=*/i, 1 + i % 24));
  }
  for (std::uint64_t i = 0; i < names.size(); ++i) {
    collector.record(names[i].c_str(), i * 10, i * 10 + 5);
    collector.record_instant(names[i].c_str(),
                             TraceContext::derive(1, i),
                             TraceEvent::kFlowIn);
  }
  std::ostringstream out;
  collector.write_chrome_trace(out);
  expect_valid_json(out.str());
}

TEST(TraceHostile, HostileThreadNamesExportAsValidMetadata) {
  TraceCollector collector;
  collector.set_enabled(true);
  // Claim on a spawned thread: set_thread_track is sticky thread-local
  // state, and the main thread must stay unclaimed for other tests.
  std::thread worker([&collector] {
    TraceCollector::set_thread_track("worker\x01\"\xFF\x80name", 7);
    collector.record("test/span", 10, 20);
  });
  worker.join();
  std::ostringstream out;
  collector.write_chrome_trace(out);
  expect_valid_json(out.str());
  EXPECT_NE(out.str().find("\"thread_name\""), std::string::npos);
}

TEST(FlightHostile, HostileDetailsAndReasonDumpAsValidJson) {
  FlightRecorder recorder;
  std::vector<std::string> details;
  details.reserve(32);
  for (std::uint64_t i = 0; i < 32; ++i) {
    details.push_back(hostile_bytes(/*seed=*/1000 + i, 1 + i % 16));
  }
  for (std::uint64_t i = 0; i < details.size(); ++i) {
    recorder.record(FlightCode::kMark, i + 1, details[i].c_str(),
                    static_cast<double>(i));
  }
  std::ostringstream out;
  recorder.write_json(out, "reason \"with\"\n\x02\xC0\xAF bytes");
  expect_valid_json(out.str());
}

TEST(FlightHostile, NonFiniteHostilePayloadsDoNotBreakTheDump) {
  FlightRecorder recorder;
  recorder.record(FlightCode::kMark, 1, "nan payload",
                  std::numeric_limits<double>::quiet_NaN(),
                  std::numeric_limits<double>::infinity());
  std::ostringstream out;
  recorder.write_json(out, "non-finite");
  expect_valid_json(out.str());
  EXPECT_NE(out.str().find("\"a\":null"), std::string::npos);
  EXPECT_NE(out.str().find("\"b\":null"), std::string::npos);
}

TEST(FlightHostile, DumpRoundTripsThroughTheBenchReader) {
  // Full semantic round trip, not just "parses": the strict reader's
  // DOM must show the schema, the reason, and a detail whose invalid
  // bytes were replaced (never dropped silently).
  FlightRecorder recorder;
  recorder.record(FlightCode::kOverloaded, 0x42, "queue\x80 full", 8.0);
  std::ostringstream out;
  recorder.write_json(out, "round-trip");
  const bench::json::ValuePtr doc = bench::json::parse(out.str());
  ASSERT_TRUE(doc && doc->is_object());
  ASSERT_TRUE(doc->get("schema"));
  EXPECT_EQ(doc->get("schema")->string, "bevr.flight.v1");
  EXPECT_EQ(doc->get("reason")->string, "round-trip");
  const bench::json::ValuePtr records = doc->get("records");
  ASSERT_TRUE(records && records->is_array());
  ASSERT_EQ(records->array.size(), 1u);
  const bench::json::ValuePtr record = records->array[0];
  EXPECT_EQ(record->get("code")->string, "OVERLOADED");
  EXPECT_EQ(record->get("trace")->string, "0x0000000000000042");
  EXPECT_EQ(record->get("detail")->string, "queue" + kReplacement + " full");
  EXPECT_EQ(record->get("a")->number, 8.0);
}

}  // namespace
}  // namespace bevr::obs
