// Service stress: many client threads, mixed deadlines, a queue far
// smaller than the offered load. The invariants under fire:
//  * every submitted request resolves with exactly one terminal status
//    (nothing lost, nothing resolved twice — set_value would throw);
//  * kOk responses are bit-identical to direct evaluation;
//  * coalescing actually happens, observed via obs counter deltas;
//  * shutdown mid-storm still drains every admitted request.
// This file is the TSan target for the service (see ci.yml): the
// assertions matter, but so does simply executing the submit/claim/
// drain dance under the race detector.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bevr/obs/metrics.h"
#include "bevr/runner/memoized_model.h"
#include "bevr/runner/runner.h"
#include "bevr/service/loadgen.h"
#include "bevr/service/server.h"

namespace bevr::service {
namespace {

std::uint64_t counter_now(const std::string& name) {
  return obs::MetricsRegistry::global().snapshot().counter(name);
}

TEST(ServiceStress, StormResolvesEveryRequest) {
  Server::Options options;
  options.workers = 2;
  options.queue_capacity = 16;  // far below the offered load
  auto cache = std::make_shared<runner::MemoCache>();
  options.cache = cache;
  Server server(options);

  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 200;
  const std::uint64_t coalesced_before = counter_now("service/coalesced");

  std::atomic<std::uint64_t> ok{0}, overloaded{0}, expired{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        // A small capacity set shared across threads so identical
        // queries collide in the queue; a deterministic mix of no
        // deadline / generous / already-hopeless budgets.
        const double capacity = 50.0 + 25.0 * static_cast<double>(i % 8);
        const char* scenario = (t % 2 == 0) ? "fig2_rigid" : "fig3_adaptive";
        Deadline deadline = kNoDeadline;
        switch ((t + i) % 3) {
          case 0: break;
          case 1: deadline = Clock::now() + std::chrono::milliseconds(50); break;
          case 2: deadline = Clock::now() + std::chrono::microseconds(20); break;
        }
        const Response r =
            server.submit({.scenario = scenario, .capacity = capacity},
                          deadline)
                .get();
        switch (r.status) {
          case StatusCode::kOk: ok.fetch_add(1); break;
          case StatusCode::kOverloaded: overloaded.fetch_add(1); break;
          case StatusCode::kDeadlineExceeded: expired.fetch_add(1); break;
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(ok + overloaded + expired, kThreads * kPerThread);
  EXPECT_GT(ok.load(), 0u);
  // 8 threads cycling 8 capacities of 2 scenarios through a 16-deep
  // queue: identical in-flight queries are guaranteed collisions.
  EXPECT_GT(counter_now("service/coalesced"), coalesced_before);

  // Spot-check values after the storm against direct evaluation.
  const auto& registry = runner::ScenarioRegistry::builtin();
  const auto direct = runner::make_memoized_model(
      *registry.find("fig2_rigid"), cache, /*use_kernels=*/true);
  const Response check =
      server.submit({.scenario = "fig2_rigid", .capacity = 125.0}).get();
  ASSERT_EQ(check.status, StatusCode::kOk);
  EXPECT_EQ(check.best_effort, direct->best_effort(125.0));
  EXPECT_EQ(check.reservation, direct->reservation(125.0));
  EXPECT_EQ(check.total_reservation, direct->total_reservation(125.0));
}

TEST(ServiceStress, OpenLoopOverloadShedsCleanly) {
  Server::Options tiny;
  tiny.workers = 1;
  tiny.queue_capacity = 4;
  Server server(tiny);

  LoadGenOptions load;
  for (int i = 0; i < 32; ++i) {
    load.queries.push_back(
        {.scenario = "fig3_rigid", .capacity = 30.0 + 10.0 * i});
  }
  load.threads = 8;
  load.total_requests = 1024;
  load.rate_per_sec = 50000.0;  // hopeless for one worker: must shed
  load.deadline = std::chrono::milliseconds(2);
  const LoadGenReport report = run_open_loop(server, load);

  EXPECT_EQ(report.total(), load.total_requests);
  EXPECT_GT(report.ok, 0u);
  EXPECT_GT(report.overloaded + report.deadline_exceeded, 0u);
}

TEST(ServiceStress, ShutdownMidStormDrainsAdmitted) {
  auto server = std::make_unique<Server>([] {
    Server::Options options;
    options.workers = 2;
    options.queue_capacity = 32;
    return options;
  }());

  std::vector<std::future<Response>> futures;
  std::mutex futures_mutex;
  std::atomic<bool> stop{false};
  std::vector<std::thread> submitters;
  for (unsigned t = 0; t < 4; ++t) {
    submitters.emplace_back([&, t] {
      for (std::uint64_t i = 0; !stop.load(); ++i) {
        auto future = server->submit(
            {.scenario = "fig2_adaptive",
             .capacity = 20.0 + static_cast<double>((t * 7 + i) % 64)});
        std::lock_guard<std::mutex> lock(futures_mutex);
        futures.push_back(std::move(future));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server->shutdown();  // races deliberately with active submitters
  stop.store(true);
  for (std::thread& submitter : submitters) submitter.join();

  // Every future — admitted before shutdown or rejected after — must
  // resolve; none may hang or be abandoned.
  std::uint64_t ok = 0, rejected = 0;
  for (auto& future : futures) {
    const Response r = future.get();
    if (r.status == StatusCode::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(r.status, StatusCode::kOverloaded);
      ++rejected;
    }
  }
  EXPECT_GT(ok, 0u);
  EXPECT_GT(ok + rejected, 0u);
}

TEST(ServiceStress, ClosedLoopPopulationIsLossless) {
  Server::Options options;
  options.workers = 4;
  Server server(options);
  LoadGenOptions load;
  for (int i = 0; i < 16; ++i) {
    load.queries.push_back(
        {.scenario = "fig2_rigid", .capacity = 40.0 + 20.0 * i});
  }
  load.threads = 8;
  load.requests_per_thread = 100;
  const LoadGenReport report = run_closed_loop(server, load);
  EXPECT_EQ(report.ok, 800u);
  EXPECT_EQ(report.overloaded, 0u);
  EXPECT_EQ(report.deadline_exceeded, 0u);
  EXPECT_GT(report.p50_us, 0.0);
  EXPECT_GE(report.p99_us, report.p50_us);
}

}  // namespace
}  // namespace bevr::service
