// bevr::service::Server contract tests: admission, deadlines,
// coalescing, batching, draining shutdown — and above all the value
// contract: responses bit-identical to direct evaluation through the
// runner's memoized model, kernels on or off.
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bevr/obs/metrics.h"
#include "bevr/runner/memoized_model.h"
#include "bevr/runner/runner.h"
#include "bevr/service/client.h"
#include "bevr/service/server.h"

namespace bevr::service {
namespace {

using runner::ScenarioRegistry;

std::uint64_t counter_now(const std::string& name) {
  return obs::MetricsRegistry::global().snapshot().counter(name);
}

TEST(ServiceOptions, RejectsDegenerateLimits) {
  Server::Options zero_queue;
  zero_queue.queue_capacity = 0;
  EXPECT_THROW(Server{zero_queue}, std::invalid_argument);
  Server::Options zero_batch;
  zero_batch.max_batch = 0;
  EXPECT_THROW(Server{zero_batch}, std::invalid_argument);
}

TEST(ServiceSubmit, UnknownScenarioThrows) {
  Server server{Server::Options{}};
  EXPECT_THROW(
      { auto f = server.submit({.scenario = "no_such_scenario"}); },
      std::invalid_argument);
}

TEST(ServiceSubmit, StatusStringsAreStable) {
  EXPECT_EQ(to_string(StatusCode::kOk), "OK");
  EXPECT_EQ(to_string(StatusCode::kOverloaded), "OVERLOADED");
  EXPECT_EQ(to_string(StatusCode::kDeadlineExceeded), "DEADLINE_EXCEEDED");
}

// The acceptance criterion: service responses bit-identical to direct
// runner evaluation — every column, kernels on and off.
TEST(ServiceValues, BitIdenticalToDirectEvaluation) {
  for (const bool use_kernels : {true, false}) {
    SCOPED_TRACE(use_kernels ? "kernels" : "scalar");
    auto cache = std::make_shared<runner::MemoCache>();
    Server::Options options;
    options.use_kernels = use_kernels;
    options.cache = cache;
    Server server(options);
    Client client(server);
    for (const char* scenario : {"fig2_rigid", "fig3_adaptive"}) {
      const auto direct = runner::make_memoized_model(
          *ScenarioRegistry::builtin().find(scenario), cache, use_kernels);
      for (const double c : {25.0, 100.0, 137.5, 400.0}) {
        const Response r = client.evaluate(
            {.scenario = scenario, .capacity = c, .with_bandwidth_gap = true});
        ASSERT_EQ(r.status, StatusCode::kOk);
        EXPECT_EQ(r.best_effort, direct->best_effort(c));
        EXPECT_EQ(r.reservation, direct->reservation(c));
        EXPECT_EQ(r.performance_gap, direct->performance_gap(c));
        EXPECT_EQ(r.bandwidth_gap, direct->bandwidth_gap(c));
        EXPECT_EQ(r.blocking, direct->blocking_fraction(c));
        EXPECT_EQ(r.total_best_effort, direct->total_best_effort(c));
        EXPECT_EQ(r.total_reservation, direct->total_reservation(c));
        const auto kmax = direct->k_max(c);
        EXPECT_EQ(r.k_max, kmax ? static_cast<double>(*kmax) : -1.0);
      }
    }
  }
}

TEST(ServiceDeadlines, ExpiredAtSubmitResolvesWithoutEvaluation) {
  Server server{Server::Options{}};
  const std::uint64_t evals_before = counter_now("service/evaluations");
  auto future = server.submit({.scenario = "fig2_rigid", .capacity = 100.0},
                              Clock::now() - std::chrono::milliseconds(1));
  const Response r = future.get();
  EXPECT_EQ(r.status, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(counter_now("service/evaluations"), evals_before);
}

TEST(ServiceDeadlines, ExpiredInQueueResolvesWithoutEvaluation) {
  Server::Options options;
  options.paused = true;  // requests queue; workers gated
  options.workers = 1;
  Server server(options);
  auto expiring =
      server.submit({.scenario = "fig2_rigid", .capacity = 60.0},
                    Clock::now() + std::chrono::milliseconds(5));
  auto patient = server.submit({.scenario = "fig2_rigid", .capacity = 70.0});
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const std::uint64_t expired_before = counter_now("service/deadline_in_queue");
  server.resume();
  EXPECT_EQ(expiring.get().status, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(patient.get().status, StatusCode::kOk);
  EXPECT_EQ(counter_now("service/deadline_in_queue"), expired_before + 1);
}

TEST(ServiceBackpressure, QueueFullRejectsOverloaded) {
  Server::Options options;
  options.paused = true;
  options.queue_capacity = 2;
  Server server(options);
  std::vector<std::future<Response>> admitted;
  admitted.push_back(server.submit({.scenario = "fig2_rigid", .capacity = 10.0}));
  admitted.push_back(server.submit({.scenario = "fig2_rigid", .capacity = 20.0}));
  EXPECT_EQ(server.queue_depth(), 2u);
  // Distinct query, full queue: shed at admission.
  auto rejected = server.submit({.scenario = "fig2_rigid", .capacity = 30.0});
  EXPECT_EQ(rejected.get().status, StatusCode::kOverloaded);
  // Identical query: coalesces onto a queued ticket — rides free, by
  // design, even with the queue full.
  auto coalesced = server.submit({.scenario = "fig2_rigid", .capacity = 10.0});
  EXPECT_EQ(server.queue_depth(), 2u);
  server.resume();
  for (auto& f : admitted) EXPECT_EQ(f.get().status, StatusCode::kOk);
  const Response shared = coalesced.get();
  EXPECT_EQ(shared.status, StatusCode::kOk);
  EXPECT_TRUE(shared.coalesced);
}

TEST(ServiceCoalescing, IdenticalQueriesShareOneEvaluation) {
  Server::Options options;
  options.paused = true;
  options.workers = 1;
  Server server(options);
  const Query query{.scenario = "fig3_rigid", .capacity = 123.0};
  const std::uint64_t evals_before = counter_now("service/evaluations");
  const std::uint64_t coalesced_before = counter_now("service/coalesced");
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(server.submit(query));
  EXPECT_EQ(server.queue_depth(), 1u);  // one ticket, five waiters
  server.resume();
  std::vector<Response> responses;
  for (auto& f : futures) responses.push_back(f.get());
  for (const Response& r : responses) {
    EXPECT_EQ(r.status, StatusCode::kOk);
    EXPECT_TRUE(r.coalesced);
    EXPECT_EQ(r.best_effort, responses.front().best_effort);
    EXPECT_EQ(r.reservation, responses.front().reservation);
  }
  EXPECT_EQ(counter_now("service/evaluations"), evals_before + 1);
  EXPECT_EQ(counter_now("service/coalesced"), coalesced_before + 4);
}

TEST(ServiceBatching, QueuedCompatibleQueriesShareOneKernelCall) {
  Server::Options options;
  options.paused = true;
  options.workers = 1;
  Server server(options);
  const std::uint64_t evals_before = counter_now("service/evaluations");
  std::vector<std::future<Response>> futures;
  // Submitted out of capacity order on purpose: the batch sorts.
  for (const double c : {90.0, 30.0, 150.0, 60.0, 120.0}) {
    futures.push_back(server.submit({.scenario = "fig2_adaptive", .capacity = c}));
  }
  server.resume();
  for (auto& f : futures) {
    const Response r = f.get();
    EXPECT_EQ(r.status, StatusCode::kOk);
    EXPECT_EQ(r.batch_rows, 5u);
  }
  EXPECT_EQ(counter_now("service/evaluations"), evals_before + 1);
}

TEST(ServiceBatching, MaxBatchBoundsTheSharedCall) {
  Server::Options options;
  options.paused = true;
  options.workers = 1;
  options.max_batch = 2;
  Server server(options);
  std::vector<std::future<Response>> futures;
  for (const double c : {10.0, 20.0, 30.0}) {
    futures.push_back(server.submit({.scenario = "fig2_rigid", .capacity = c}));
  }
  server.resume();
  for (auto& f : futures) {
    const Response r = f.get();
    EXPECT_EQ(r.status, StatusCode::kOk);
    EXPECT_LE(r.batch_rows, 2u);
  }
}

// Two registry names describing the same model (figure panel and its
// welfare panel) resolve to one evaluation context, so their queries
// coalesce across scenario names. fig4's welfare panel uses different
// accuracy options, so it must NOT share.
TEST(ServiceCoalescing, CrossScenarioKeySharing) {
  Server server{Server::Options{}};
  EXPECT_EQ(server.scenario_key("fig2_rigid"),
            server.scenario_key("fig2_welfare_rigid"));
  EXPECT_EQ(server.scenario_key("fig3_adaptive"),
            server.scenario_key("fig3_welfare_adaptive"));
  EXPECT_NE(server.scenario_key("fig4_adaptive"),
            server.scenario_key("fig4_welfare_adaptive"));
  EXPECT_NE(server.scenario_key("fig2_rigid"),
            server.scenario_key("fig2_adaptive"));
}

TEST(ServiceCoalescing, ScalarPathKeysDistinguishEvalOptions) {
  Server::Options options;
  options.use_kernels = false;
  Server server(options);
  EXPECT_EQ(server.scenario_key("fig2_rigid"),
            server.scenario_key("fig2_welfare_rigid"));
  EXPECT_NE(server.scenario_key("fig4_adaptive"),
            server.scenario_key("fig4_welfare_adaptive"));
}

TEST(ServiceShutdown, DrainsAdmittedWorkThenRejects) {
  auto server = std::make_unique<Server>([] {
    Server::Options options;
    options.paused = true;
    options.workers = 2;
    return options;
  }());
  std::vector<std::future<Response>> admitted;
  for (const double c : {40.0, 80.0, 160.0}) {
    admitted.push_back(server->submit({.scenario = "fig3_rigid", .capacity = c}));
  }
  server->shutdown();  // must drain the paused queue, not drop it
  for (auto& f : admitted) EXPECT_EQ(f.get().status, StatusCode::kOk);
  auto late = server->submit({.scenario = "fig3_rigid", .capacity = 100.0});
  EXPECT_EQ(late.get().status, StatusCode::kOverloaded);
  server->shutdown();  // idempotent
}

TEST(ServiceClient, TimeoutBecomesDeadline) {
  Server server{Server::Options{}};
  Client client(server);
  const Response expired =
      client.evaluate({.scenario = "fig2_rigid", .capacity = 100.0},
                      std::chrono::nanoseconds(-1));
  EXPECT_EQ(expired.status, StatusCode::kDeadlineExceeded);
  const Response ok = client.evaluate(
      {.scenario = "fig2_rigid", .capacity = 100.0}, std::chrono::seconds(30));
  EXPECT_EQ(ok.status, StatusCode::kOk);
  EXPECT_GT(ok.total_us, 0.0);
}

TEST(ServiceObs, ProvenanceFieldsAreCoherent) {
  Server server{Server::Options{}};
  Client client(server);
  const Response r =
      client.evaluate({.scenario = "fig2_adaptive", .capacity = 200.0});
  ASSERT_EQ(r.status, StatusCode::kOk);
  EXPECT_EQ(r.capacity, 200.0);
  EXPECT_GE(r.batch_rows, 1u);
  EXPECT_GE(r.total_us, r.queue_us);
  EXPECT_EQ(server.queue_depth(), 0u);
}

}  // namespace
}  // namespace bevr::service
