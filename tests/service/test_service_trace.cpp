// The service's diagnosis layer: deterministic trace ids, coalesced
// fan-in in the causal trace, exactly-once accounting for coalesced
// deadline misses (deterministic and storm-style — the latter is a
// TSan target), and the overload-storm flight dump contract.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bevr/bench/json.h"
#include "bevr/obs/flight_recorder.h"
#include "bevr/obs/metrics.h"
#include "bevr/obs/trace.h"
#include "bevr/obs/trace_context.h"
#include "bevr/service/server.h"

namespace bevr::service {
namespace {

std::uint64_t counter_now(const std::string& name) {
  return obs::MetricsRegistry::global().snapshot().counter(name);
}

std::uint64_t histogram_count_now(const std::string& name) {
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  const obs::HistogramSnapshot* histogram = snap.histogram(name);
  return histogram != nullptr ? histogram->count : 0;
}

TEST(ServiceTrace, ResponseTraceIdsAreDeterministic) {
  // Two servers, same trace seed, same submit order: byte-identical
  // trace ids, each exactly TraceContext::derive(seed, submit index).
  constexpr std::uint64_t kSeed = 42;
  std::vector<std::uint64_t> first_ids;
  for (int run = 0; run < 2; ++run) {
    Server::Options options;
    options.workers = 1;
    options.trace_seed = kSeed;
    Server server(options);
    std::vector<std::uint64_t> ids;
    for (std::uint64_t i = 0; i < 6; ++i) {
      const Response response =
          server.submit({.scenario = "fig2_adaptive",
                         .capacity = 80.0 + 10.0 * static_cast<double>(i)})
              .get();
      ASSERT_EQ(response.status, StatusCode::kOk);
      EXPECT_EQ(response.trace_id,
                obs::TraceContext::derive(kSeed, i).trace_id);
      ids.push_back(response.trace_id);
    }
    if (run == 0) {
      first_ids = ids;
    } else {
      EXPECT_EQ(ids, first_ids);
    }
    // Distinct requests decorrelate.
    EXPECT_EQ(std::set<std::uint64_t>(ids.begin(), ids.end()).size(),
              ids.size());
  }
}

TEST(ServiceTrace, CoalescedDeadlineMissIsCountedExactlyOnce) {
  // A paused server makes the queue state deterministic: one lead
  // ticket, five coalesced waiters whose deadlines expire in queue.
  // Each must be counted once — in deadline_in_queue, in queue_us, in
  // latency_us — and the lead exactly once in responses_ok.
  Server::Options options;
  options.workers = 1;
  options.paused = true;
  Server server(options);

  const std::uint64_t in_queue_before = counter_now("service/deadline_in_queue");
  const std::uint64_t ok_before = counter_now("service/responses_ok");
  const std::uint64_t coalesced_before = counter_now("service/coalesced");
  const std::uint64_t queue_obs_before = histogram_count_now("service/queue_us");
  const std::uint64_t latency_obs_before =
      histogram_count_now("service/latency_us");

  const Query query{.scenario = "fig2_adaptive", .capacity = 123.0};
  std::future<Response> lead = server.submit(query);  // no deadline
  std::vector<std::future<Response>> doomed;
  doomed.reserve(5);
  for (int i = 0; i < 5; ++i) {
    // Generous enough that none can expire while still being submitted
    // (which would divert it to deadline_at_submit), even under TSan.
    doomed.push_back(
        server.submit(query, Clock::now() + std::chrono::milliseconds(50)));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  server.resume();

  const Response ok = lead.get();
  EXPECT_EQ(ok.status, StatusCode::kOk);
  for (std::future<Response>& future : doomed) {
    const Response expired = future.get();
    EXPECT_EQ(expired.status, StatusCode::kDeadlineExceeded);
    EXPECT_GT(expired.queue_us, 0.0);
  }

  EXPECT_EQ(counter_now("service/coalesced"), coalesced_before + 5);
  EXPECT_EQ(counter_now("service/deadline_in_queue"), in_queue_before + 5);
  EXPECT_EQ(counter_now("service/responses_ok"), ok_before + 1);
  // Every request that reached the worker is observed in the queue-
  // and latency histograms exactly once — expired waiters included.
  EXPECT_EQ(histogram_count_now("service/queue_us"), queue_obs_before + 6);
  EXPECT_EQ(histogram_count_now("service/latency_us"), latency_obs_before + 6);
}

TEST(ServiceTrace, StormStyleAccountingIsExactlyOnce) {
  // Storm-style: many client threads, coalescing collisions, hopeless
  // deadlines, a tiny queue. The exactly-once ledger must balance —
  // every submit lands in exactly one terminal counter, and every
  // response is observed exactly once in latency_us. (TSan target.)
  const std::uint64_t requests_before = counter_now("service/requests");
  const std::uint64_t ok_before = counter_now("service/responses_ok");
  const std::uint64_t overload_before =
      counter_now("service/rejected_overload");
  const std::uint64_t shutdown_before =
      counter_now("service/rejected_shutdown");
  const std::uint64_t at_submit_before =
      counter_now("service/deadline_at_submit");
  const std::uint64_t in_queue_before =
      counter_now("service/deadline_in_queue");
  const std::uint64_t latency_obs_before =
      histogram_count_now("service/latency_us");

  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 100;
  std::atomic<std::uint64_t> resolved{0};
  {
    Server::Options options;
    options.workers = 2;
    options.queue_capacity = 8;
    Server server(options);
    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
      clients.emplace_back([&server, &resolved, t] {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          // Four capacities across eight threads: guaranteed coalesce
          // collisions. Deadline mix includes already-expired and
          // expires-in-queue budgets.
          const double capacity = 60.0 + 30.0 * static_cast<double>(i % 4);
          Deadline deadline = kNoDeadline;
          switch ((t + i) % 3) {
            case 0: break;
            case 1:
              deadline = Clock::now() + std::chrono::microseconds(200);
              break;
            case 2:
              deadline = Clock::now() - std::chrono::microseconds(1);
              break;
          }
          (void)server
              .submit({.scenario = "fig3_adaptive", .capacity = capacity},
                      deadline)
              .get();
          resolved.fetch_add(1);
        }
      });
    }
    for (std::thread& client : clients) client.join();
  }  // server destroyed: counters quiesced

  const std::uint64_t submitted = kThreads * kPerThread;
  EXPECT_EQ(resolved.load(), submitted);
  EXPECT_EQ(counter_now("service/requests"), requests_before + submitted);
  const std::uint64_t terminal =
      (counter_now("service/responses_ok") - ok_before) +
      (counter_now("service/rejected_overload") - overload_before) +
      (counter_now("service/rejected_shutdown") - shutdown_before) +
      (counter_now("service/deadline_at_submit") - at_submit_before) +
      (counter_now("service/deadline_in_queue") - in_queue_before);
  EXPECT_EQ(terminal, submitted);
  EXPECT_EQ(histogram_count_now("service/latency_us"),
            latency_obs_before + submitted);
}

TEST(ServiceTrace, CoalescedRequestsFanIntoOneEvaluationSpan) {
  obs::TraceCollector& collector = obs::TraceCollector::global();
  collector.clear();
  collector.set_enabled(true);

  {
    Server::Options options;
    options.workers = 1;
    options.paused = true;
    options.trace_seed = 7;
    Server server(options);
    const Query query{.scenario = "fig2_rigid", .capacity = 90.0};
    std::vector<std::future<Response>> futures;
    futures.reserve(4);
    for (int i = 0; i < 4; ++i) futures.push_back(server.submit(query));
    server.resume();
    for (std::future<Response>& future : futures) {
      ASSERT_EQ(future.get().status, StatusCode::kOk);
    }
  }  // server destroyed: workers joined, the evaluate span has closed
  collector.set_enabled(false);

  // Expected causal shape: four submit spans with flow-out arrows, one
  // evaluation span, four serve instants with flow-in arrows whose
  // trace ids are exactly the submit spans' trace ids.
  std::set<std::uint64_t> submit_traces;
  std::set<std::uint64_t> serve_traces;
  std::size_t evaluate_spans = 0;
  for (const obs::TraceEvent& event : collector.events()) {
    const std::string name = event.name;
    if (name == "service/submit") {
      EXPECT_NE(event.flags & obs::TraceEvent::kFlowOut, 0);
      EXPECT_NE(event.trace_id, 0u);
      submit_traces.insert(event.trace_id);
    } else if (name == "service/serve") {
      EXPECT_NE(event.flags & obs::TraceEvent::kFlowIn, 0);
      serve_traces.insert(event.trace_id);
    } else if (name == "service/evaluate") {
      ++evaluate_spans;
    }
  }
  collector.clear();
  EXPECT_EQ(submit_traces.size(), 4u);
  EXPECT_EQ(evaluate_spans, 1u);
  EXPECT_EQ(serve_traces, submit_traces);
}

TEST(ServiceTrace, OverloadStormAutoDumpsAFlightWithOverloadedEvents) {
  // The acceptance contract: a flight dump captured during an overload
  // storm parses (strict bench reader) and contains the OVERLOADED
  // events plus the STORM marker that fired the dump.
  obs::FlightRecorder& flight = obs::FlightRecorder::global();
  const std::string path = ::testing::TempDir() + "service_storm_flight.json";
  flight.set_auto_dump_path(path);

  Server::Options options;
  options.workers = 1;
  options.queue_capacity = 2;
  options.paused = true;  // queue fills deterministically
  options.overload_storm_threshold = 4;
  Server server(options);
  std::vector<std::future<Response>> admitted;
  admitted.reserve(2);
  for (int i = 0; i < 2; ++i) {
    admitted.push_back(server.submit(
        {.scenario = "fig2_adaptive", .capacity = 100.0 + i}));
  }
  std::vector<std::future<Response>> shed;
  shed.reserve(4);
  for (int i = 0; i < 4; ++i) {
    shed.push_back(server.submit(
        {.scenario = "fig2_adaptive", .capacity = 200.0 + i}));
  }
  for (std::future<Response>& future : shed) {
    EXPECT_EQ(future.get().status, StatusCode::kOverloaded);
  }
  server.resume();
  for (std::future<Response>& future : admitted) {
    EXPECT_EQ(future.get().status, StatusCode::kOk);
  }
  flight.set_auto_dump_path("");  // disarm for the rest of the binary

  std::ifstream file(path);
  ASSERT_TRUE(file.good()) << "storm did not auto-dump to " << path;
  std::stringstream content;
  content << file.rdbuf();
  const bench::json::ValuePtr doc = bench::json::parse(content.str());
  ASSERT_TRUE(doc && doc->is_object());
  EXPECT_EQ(doc->get("schema")->string, "bevr.flight.v1");
  EXPECT_EQ(doc->get("reason")->string, "overload-storm");
  std::size_t overloaded = 0;
  std::size_t storms = 0;
  for (const bench::json::ValuePtr& record : doc->get("records")->array) {
    const std::string code = record->get("code")->string;
    if (code == "OVERLOADED") ++overloaded;
    if (code == "STORM") ++storms;
  }
  EXPECT_GE(overloaded, 4u);
  EXPECT_EQ(storms, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bevr::service
