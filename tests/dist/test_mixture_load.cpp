#include "bevr/dist/mixture_load.h"

#include <cmath>
#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"

namespace bevr::dist {
namespace {

MixtureLoad day_night() {
  // Day: heavy Poisson(150); night: light Poisson(50); 50/50 time split.
  return MixtureLoad({{std::make_shared<PoissonLoad>(150.0), 1.0},
                      {std::make_shared<PoissonLoad>(50.0), 1.0}});
}

TEST(MixtureLoad, Validation) {
  EXPECT_THROW(MixtureLoad({}), std::invalid_argument);
  EXPECT_THROW(MixtureLoad({{nullptr, 1.0}}), std::invalid_argument);
  EXPECT_THROW(
      MixtureLoad({{std::make_shared<PoissonLoad>(10.0), 0.0}}),
      std::invalid_argument);
}

TEST(MixtureLoad, PmfIsWeightedSumAndNormalises) {
  const auto mix = day_night();
  const PoissonLoad day(150.0), night(50.0);
  double total = 0.0;
  for (std::int64_t k = 0; k <= 400; ++k) {
    EXPECT_NEAR(mix.pmf(k), 0.5 * day.pmf(k) + 0.5 * night.pmf(k), 1e-15);
    total += mix.pmf(k);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(MixtureLoad, MeanAndMomentsCombine) {
  const auto mix = day_night();
  EXPECT_DOUBLE_EQ(mix.mean(), 100.0);
  // E[K²] = 0.5(150² + 150) + 0.5(50² + 50) = 12600.
  EXPECT_DOUBLE_EQ(mix.second_moment(), 12'600.0);
}

TEST(MixtureLoad, BimodalityShowsUp) {
  // Unlike Poisson(100), the day/night mixture has modes near 50 and
  // 150 and a trough near 100.
  const auto mix = day_night();
  EXPECT_GT(mix.pmf(50), mix.pmf(100));
  EXPECT_GT(mix.pmf(150), mix.pmf(100));
}

TEST(MixtureLoad, TailAndCdfConsistent) {
  const auto mix = day_night();
  for (const std::int64_t k : {40LL, 100LL, 160LL}) {
    EXPECT_NEAR(mix.cdf(k) + mix.tail_above(k), 1.0, 1e-12);
  }
}

TEST(MixtureLoad, PartialMeanMatchesDirectSum) {
  const auto mix = day_night();
  const std::int64_t k0 = 120;
  double direct = 0.0;
  for (std::int64_t j = k0 + 1; j <= 500; ++j) {
    direct += static_cast<double>(j) * mix.pmf(j);
  }
  EXPECT_NEAR(mix.partial_mean_above(k0), direct, 1e-9);
}

TEST(MixtureLoad, HeaviestRegimeDominatesTheTail) {
  // Poisson + algebraic mixture: the algebraic regime owns the tail
  // regardless of its (small) weight — the nonstationarity point of §5.
  const auto heavy = std::make_shared<AlgebraicLoad>(
      AlgebraicLoad::with_mean(3.0, 100.0));
  const MixtureLoad mix({{std::make_shared<PoissonLoad>(100.0), 9.0},
                         {heavy, 1.0}});
  const std::int64_t far = 2000;
  EXPECT_NEAR(mix.tail_above(far), 0.1 * heavy->tail_above(far),
              0.01 * 0.1 * heavy->tail_above(far));
}

TEST(MixtureLoad, SecondMomentInfinityPropagates) {
  const MixtureLoad mix({{std::make_shared<PoissonLoad>(100.0), 1.0},
                         {std::make_shared<AlgebraicLoad>(
                              AlgebraicLoad::with_mean(3.0, 100.0)),
                          1.0}});
  EXPECT_TRUE(std::isinf(mix.second_moment()));
}

TEST(MixtureLoad, MinSupportIsSmallest) {
  const MixtureLoad mix({{std::make_shared<AlgebraicLoad>(
                              AlgebraicLoad::with_mean(3.0, 100.0)),
                          1.0},
                         {std::make_shared<PoissonLoad>(10.0), 1.0}});
  EXPECT_EQ(mix.min_support(), 0);  // Poisson starts at 0
}

}  // namespace
}  // namespace bevr::dist
