#include "bevr/dist/exponential.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace bevr::dist {
namespace {

TEST(ExponentialLoad, Construction) {
  EXPECT_THROW(ExponentialLoad(0.0), std::invalid_argument);
  EXPECT_THROW(ExponentialLoad(-0.5), std::invalid_argument);
  EXPECT_THROW(ExponentialLoad::with_mean(0.0), std::invalid_argument);
}

TEST(ExponentialLoad, PaperParameterisation) {
  // Paper: P(k) = (1−e^{−β})e^{−βk}, mean = 1/(e^β − 1) = 100.
  const auto load = ExponentialLoad::with_mean(100.0);
  EXPECT_NEAR(load.mean(), 100.0, 1e-10);
  EXPECT_NEAR(load.beta(), std::log1p(0.01), 1e-15);
}

TEST(ExponentialLoad, PmfNormalisesAndMatchesForm) {
  const ExponentialLoad load(0.01);
  double total = 0.0;
  for (std::int64_t k = 0; k <= 5000; ++k) total += load.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-10);
  EXPECT_NEAR(load.pmf(0), 1.0 - std::exp(-0.01), 1e-15);
  EXPECT_NEAR(load.pmf(10), (1.0 - std::exp(-0.01)) * std::exp(-0.1), 1e-15);
  EXPECT_EQ(load.pmf(-3), 0.0);
}

TEST(ExponentialLoad, GeometricTailClosedForm) {
  const ExponentialLoad load(0.01);
  for (const std::int64_t k : {0LL, 10LL, 100LL, 1000LL}) {
    EXPECT_NEAR(load.tail_above(k),
                std::exp(-0.01 * static_cast<double>(k + 1)), 1e-14);
  }
  EXPECT_EQ(load.tail_above(-1), 1.0);
}

TEST(ExponentialLoad, MomentsMatchDirectSums) {
  const auto load = ExponentialLoad::with_mean(100.0);
  double mean = 0.0, second = 0.0;
  for (std::int64_t k = 0; k <= 20'000; ++k) {
    const double kd = static_cast<double>(k);
    mean += kd * load.pmf(k);
    second += kd * kd * load.pmf(k);
  }
  EXPECT_NEAR(load.mean(), mean, 1e-7);
  EXPECT_NEAR(load.second_moment(), second, second * 1e-10);
}

TEST(ExponentialLoad, PartialMeanMatchesDirectSum) {
  const auto load = ExponentialLoad::with_mean(100.0);
  for (const std::int64_t k : {-1LL, 0LL, 50LL, 100LL, 400LL}) {
    double direct = 0.0;
    for (std::int64_t j = std::max<std::int64_t>(k + 1, 0); j <= 20'000; ++j) {
      direct += static_cast<double>(j) * load.pmf(j);
    }
    EXPECT_NEAR(load.partial_mean_above(k), direct, 1e-7) << "k=" << k;
  }
}

TEST(ExponentialLoad, HeavierTailThanPoissonAtSameMean) {
  // The paper's key contrast: at k̄=100, P[K > 2k̄] is large for the
  // exponential load but essentially zero for Poisson.
  const auto load = ExponentialLoad::with_mean(100.0);
  EXPECT_GT(load.tail_above(200), 0.1);
  EXPECT_LT(load.tail_above(200), 0.2);  // e^{-2} ≈ 0.135
}

TEST(ExponentialLoad, TruncationPoint) {
  const auto load = ExponentialLoad::with_mean(100.0);
  const auto k = load.truncation_point(1e-12);
  EXPECT_LE(load.tail_above(k), 1e-12);
  EXPECT_GT(load.tail_above(k - 1), 1e-12);
  // Analytic: k ≈ 12·ln(10)/β ≈ 2775.
  EXPECT_NEAR(static_cast<double>(k), 12.0 * std::log(10.0) / load.beta(),
              5.0);
}

class ExponentialMeanSweep : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialMeanSweep, WithMeanRoundTrips) {
  const double mean = GetParam();
  const auto load = ExponentialLoad::with_mean(mean);
  EXPECT_NEAR(load.mean(), mean, mean * 1e-12);
  // pmf_continuous agrees with pmf on the grid.
  EXPECT_NEAR(load.pmf_continuous(7.0), load.pmf(7), 1e-15);
}

INSTANTIATE_TEST_SUITE_P(Means, ExponentialMeanSweep,
                         ::testing::Values(0.5, 1.0, 10.0, 100.0, 1000.0,
                                           12345.6));

}  // namespace
}  // namespace bevr::dist
