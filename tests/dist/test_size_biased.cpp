#include "bevr/dist/size_biased.h"

#include <cmath>
#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"

namespace bevr::dist {
namespace {

std::shared_ptr<const DiscreteLoad> poisson100() {
  return std::make_shared<PoissonLoad>(100.0);
}

TEST(SizeBiasedLoad, RejectsNull) {
  EXPECT_THROW(SizeBiasedLoad(nullptr), std::invalid_argument);
}

TEST(SizeBiasedLoad, PmfFormula) {
  const SizeBiasedLoad q(poisson100());
  const PoissonLoad p(100.0);
  for (const std::int64_t k : {1LL, 50LL, 100LL, 150LL}) {
    EXPECT_NEAR(q.pmf(k), p.pmf(k) * static_cast<double>(k) / 100.0, 1e-15);
  }
  EXPECT_EQ(q.pmf(0), 0.0);  // no flow lives in an empty configuration
}

TEST(SizeBiasedLoad, Normalises) {
  const SizeBiasedLoad q(poisson100());
  double total = 0.0;
  for (std::int64_t k = 1; k <= 500; ++k) total += q.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(SizeBiasedLoad, TailUsesPartialMean) {
  const SizeBiasedLoad q(poisson100());
  double direct = 0.0;
  for (std::int64_t j = 121; j <= 500; ++j) direct += q.pmf(j);
  EXPECT_NEAR(q.tail_above(120), direct, 1e-12);
}

TEST(SizeBiasedLoad, PoissonSizeBiasIsShiftedPoisson) {
  // For Poisson(ν): Q(k) = pmf(k)·k/ν = pmf_{ν}(k−1): a shifted Poisson.
  const SizeBiasedLoad q(poisson100());
  const PoissonLoad p(100.0);
  for (const std::int64_t k : {1LL, 42LL, 100LL, 180LL}) {
    EXPECT_NEAR(q.pmf(k), p.pmf(k - 1), 1e-15) << "k=" << k;
  }
}

TEST(SizeBiasedLoad, MeanIsSecondMomentOverMean) {
  const SizeBiasedLoad q(poisson100());
  EXPECT_NEAR(q.mean(), 100.0 * 101.0 / 100.0, 1e-10);  // = 101
}

TEST(SizeBiasedLoad, FlowSeesMoreLoadThanTimeAverage) {
  // Size-biasing inequality: E_Q[K] ≥ E_P[K], strict unless degenerate.
  const auto base =
      std::make_shared<ExponentialLoad>(ExponentialLoad::with_mean(100.0));
  const SizeBiasedLoad q(base);
  EXPECT_GT(q.mean(), base->mean());
}

TEST(MaxOfSLoad, RejectsBadArguments) {
  EXPECT_THROW(MaxOfSLoad(nullptr, 2), std::invalid_argument);
  EXPECT_THROW(MaxOfSLoad(poisson100(), 0), std::invalid_argument);
}

TEST(MaxOfSLoad, SEquals1IsIdentity) {
  const auto base = poisson100();
  const MaxOfSLoad m(base, 1);
  for (const std::int64_t k : {0LL, 50LL, 100LL, 200LL}) {
    EXPECT_NEAR(m.pmf(k), base->pmf(k), 1e-13);
    EXPECT_NEAR(m.tail_above(k), base->tail_above(k), 1e-13);
  }
}

TEST(MaxOfSLoad, CdfIsPower) {
  const auto base = poisson100();
  const MaxOfSLoad m(base, 5);
  for (const std::int64_t k : {80LL, 100LL, 120LL}) {
    EXPECT_NEAR(m.cdf(k), std::pow(base->cdf(k), 5.0), 1e-12);
  }
}

TEST(MaxOfSLoad, PmfNormalises) {
  const auto base = poisson100();
  const MaxOfSLoad m(base, 7);
  double total = 0.0;
  for (std::int64_t k = 0; k <= 500; ++k) total += m.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-11);
}

TEST(MaxOfSLoad, StochasticallyIncreasingInS) {
  const auto base = poisson100();
  const MaxOfSLoad m2(base, 2);
  const MaxOfSLoad m8(base, 8);
  // More samples → larger maximum: tails ordered pointwise.
  for (const std::int64_t k : {90LL, 100LL, 110LL, 130LL}) {
    EXPECT_GE(m8.tail_above(k), m2.tail_above(k));
  }
  EXPECT_GT(m8.mean(), m2.mean());
}

TEST(MaxOfSLoad, MeanMatchesMonteCarloIntuition) {
  // Max of S Poisson(100) samples has mean ≥ 100 and grows ~σ√(2 ln S).
  const auto base = poisson100();
  const MaxOfSLoad m(base, 10);
  const double mean = m.mean();
  EXPECT_GT(mean, 110.0);
  EXPECT_LT(mean, 130.0);
}

}  // namespace
}  // namespace bevr::dist
