#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "bevr/dist/exponential_density.h"
#include "bevr/dist/pareto_density.h"
#include "bevr/numerics/quadrature.h"

namespace bevr::dist {
namespace {

TEST(ExponentialDensity, Construction) {
  EXPECT_THROW(ExponentialDensity(0.0), std::invalid_argument);
  EXPECT_THROW(ExponentialDensity::with_mean(-1.0), std::invalid_argument);
  const auto d = ExponentialDensity::with_mean(100.0);
  EXPECT_DOUBLE_EQ(d.beta(), 0.01);
  EXPECT_DOUBLE_EQ(d.mean(), 100.0);
}

TEST(ExponentialDensity, DensityIntegratesToOne) {
  const ExponentialDensity d(0.01);
  const auto total = numerics::integrate_to_infinity(
      [&d](double k) { return d.density(k); }, 0.0);
  EXPECT_NEAR(total.value, 1.0, 1e-9);
}

TEST(ExponentialDensity, TailAndPartialMeanClosedForms) {
  const ExponentialDensity d(0.01);
  for (const double k : {0.0, 10.0, 100.0, 500.0}) {
    const auto tail = numerics::integrate_to_infinity(
        [&d](double x) { return d.density(x); }, k);
    EXPECT_NEAR(d.tail_above(k), tail.value, 1e-9) << "k=" << k;
    const auto pm = numerics::integrate(
        [&d](double x) { return x * d.density(x); }, 0.0, k);
    EXPECT_NEAR(d.partial_mean_below(k), pm.value, 1e-9) << "k=" << k;
  }
}

TEST(ExponentialDensity, PartialMeanConvergesToMean) {
  const ExponentialDensity d(0.01);
  EXPECT_NEAR(d.partial_mean_below(5000.0), d.mean(), 1e-8);
}

TEST(ParetoDensity, Construction) {
  EXPECT_THROW(ParetoDensity(2.0), std::invalid_argument);
  EXPECT_THROW(ParetoDensity(1.0), std::invalid_argument);
  const ParetoDensity d(3.0);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);  // (z−1)/(z−2)
  EXPECT_DOUBLE_EQ(d.min_support(), 1.0);
}

TEST(ParetoDensity, DensityIntegratesToOne) {
  const ParetoDensity d(3.0);
  const auto total = numerics::integrate_to_infinity(
      [&d](double k) { return d.density(k); }, 1.0);
  EXPECT_NEAR(total.value, 1.0, 1e-9);
  EXPECT_EQ(d.density(0.5), 0.0);
}

TEST(ParetoDensity, TailClosedForm) {
  const ParetoDensity d(3.0);
  EXPECT_DOUBLE_EQ(d.tail_above(1.0), 1.0);
  EXPECT_DOUBLE_EQ(d.tail_above(10.0), 0.01);  // k^{1−z} = 10^{-2}
  EXPECT_DOUBLE_EQ(d.tail_above(0.2), 1.0);
}

TEST(ParetoDensity, PartialMeanClosedForm) {
  const ParetoDensity d(3.0);
  for (const double k : {1.0, 2.0, 10.0, 100.0}) {
    const auto pm = numerics::integrate(
        [&d](double x) { return x * d.density(x); }, 1.0, k);
    EXPECT_NEAR(d.partial_mean_below(k), pm.value, 1e-10) << "k=" << k;
  }
  EXPECT_EQ(d.partial_mean_below(1.0), 0.0);
}

class ParetoZSweep : public ::testing::TestWithParam<double> {};

TEST_P(ParetoZSweep, MeanMatchesQuadrature) {
  const double z = GetParam();
  const ParetoDensity d(z);
  const auto mean = numerics::integrate_to_infinity(
      [&d](double k) { return k * d.density(k); }, 1.0);
  // The k^{1-z} integrand converges slowly for z near 2; scale the
  // tolerance with the quadrature's own error estimate.
  const double tol = (z < 2.5 ? 3e-3 : 1e-6) * d.mean();
  EXPECT_NEAR(d.mean(), mean.value, tol);
}

INSTANTIATE_TEST_SUITE_P(Powers, ParetoZSweep,
                         ::testing::Values(2.2, 2.5, 3.0, 4.0, 5.0));

}  // namespace
}  // namespace bevr::dist
