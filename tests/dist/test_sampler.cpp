#include "bevr/dist/sampler.h"

#include <cmath>
#include <memory>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "bevr/dist/algebraic.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/poisson.h"

namespace bevr::dist {
namespace {

TEST(DiscreteSampler, RejectsBadEps) {
  const PoissonLoad load(10.0);
  EXPECT_THROW(DiscreteSampler(load, 0.0), std::invalid_argument);
  EXPECT_THROW(DiscreteSampler(load, 1.5), std::invalid_argument);
}

TEST(DiscreteSampler, EmpiricalMeanMatchesPoisson) {
  const PoissonLoad load(100.0);
  const DiscreteSampler sampler(load);
  std::mt19937_64 rng(7);
  double sum = 0.0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(sampler.sample(rng));
  }
  const double mean = sum / kDraws;
  // σ/√n = 10/447 ≈ 0.022; allow 5σ.
  EXPECT_NEAR(mean, 100.0, 0.12);
}

TEST(DiscreteSampler, EmpiricalPmfMatchesExponential) {
  const auto load = ExponentialLoad::with_mean(10.0);
  const DiscreteSampler sampler(load);
  std::mt19937_64 rng(11);
  std::vector<int> counts(200, 0);
  constexpr int kDraws = 400'000;
  for (int i = 0; i < kDraws; ++i) {
    const auto k = sampler.sample(rng);
    if (k < static_cast<std::int64_t>(counts.size())) {
      ++counts[static_cast<std::size_t>(k)];
    }
  }
  // Chi-square-ish check on the first few levels.
  for (std::int64_t k = 0; k < 20; ++k) {
    const double expected = load.pmf(k);
    const double observed =
        counts[static_cast<std::size_t>(k)] / static_cast<double>(kDraws);
    const double sigma = std::sqrt(expected * (1 - expected) / kDraws);
    EXPECT_NEAR(observed, expected, 6.0 * sigma + 1e-6) << "k=" << k;
  }
}

TEST(DiscreteSampler, HeavyTailProducesLargeValues) {
  const auto load = AlgebraicLoad::with_mean(3.0, 100.0);
  const DiscreteSampler sampler(load);
  std::mt19937_64 rng(3);
  std::int64_t max_seen = 0;
  for (int i = 0; i < 100'000; ++i) {
    max_seen = std::max(max_seen, sampler.sample(rng));
  }
  // P[K > 2000] ≈ 1e4/2100² ≈ 2e-3: with 1e5 draws we expect hundreds
  // of exceedances; seeing none would indicate a broken tail.
  EXPECT_GT(max_seen, 2000);
}

TEST(DiscreteSampler, RespectsMinSupport) {
  const auto load = AlgebraicLoad::with_mean(3.0, 100.0);
  const DiscreteSampler sampler(load);
  std::mt19937_64 rng(5);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_GE(sampler.sample(rng), 1);
  }
}

TEST(DiscreteSampler, TableCoversRequestedMass) {
  const PoissonLoad load(100.0);
  const DiscreteSampler sampler(load, 1e-9);
  // 1e-9 quantile of Poisson(100) is ≈ 165; table from 0.
  EXPECT_GT(sampler.table_size(), 150u);
  EXPECT_LT(sampler.table_size(), 400u);
}

}  // namespace
}  // namespace bevr::dist
