#include "bevr/dist/poisson.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace bevr::dist {
namespace {

TEST(PoissonLoad, Construction) {
  EXPECT_THROW(PoissonLoad(0.0), std::invalid_argument);
  EXPECT_THROW(PoissonLoad(-1.0), std::invalid_argument);
  const PoissonLoad load(100.0);
  EXPECT_DOUBLE_EQ(load.mean(), 100.0);
  EXPECT_EQ(load.min_support(), 0);
}

TEST(PoissonLoad, PmfNormalises) {
  const PoissonLoad load(100.0);
  double total = 0.0;
  for (std::int64_t k = 0; k <= 500; ++k) total += load.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(load.pmf(-1), 0.0);
}

TEST(PoissonLoad, MomentsMatchTheory) {
  const PoissonLoad load(100.0);
  EXPECT_DOUBLE_EQ(load.mean(), 100.0);
  EXPECT_DOUBLE_EQ(load.second_moment(), 100.0 * 101.0);  // ν² + ν
}

TEST(PoissonLoad, TailMatchesDirectSum) {
  const PoissonLoad load(100.0);
  for (const std::int64_t k : {50LL, 90LL, 100LL, 110LL, 150LL}) {
    double direct = 0.0;
    for (std::int64_t j = k + 1; j <= 600; ++j) direct += load.pmf(j);
    EXPECT_NEAR(load.tail_above(k), direct, 1e-13) << "k=" << k;
  }
}

TEST(PoissonLoad, PartialMeanIdentity) {
  // Σ_{j>k} j·P(j) = ν·P[K > k−1].
  const PoissonLoad load(100.0);
  for (const std::int64_t k : {0LL, 80LL, 100LL, 130LL}) {
    double direct = 0.0;
    for (std::int64_t j = k + 1; j <= 600; ++j) {
      direct += static_cast<double>(j) * load.pmf(j);
    }
    EXPECT_NEAR(load.partial_mean_above(k), direct, 1e-10) << "k=" << k;
  }
  EXPECT_NEAR(load.partial_mean_above(-1), 100.0, 1e-10);
}

TEST(PoissonLoad, CdfAndTailAreComplementary) {
  const PoissonLoad load(100.0);
  EXPECT_NEAR(load.cdf(100) + load.tail_above(100), 1.0, 1e-14);
}

TEST(PoissonLoad, TruncationPointBoundsTail) {
  const PoissonLoad load(100.0);
  const auto k = load.truncation_point(1e-12);
  EXPECT_LE(load.tail_above(k), 1e-12);
  EXPECT_GT(load.tail_above(k - 1), 1e-12);
}

TEST(PoissonLoad, ContinuousPmfInterpolates) {
  const PoissonLoad load(100.0);
  for (const std::int64_t k : {1LL, 50LL, 100LL, 200LL}) {
    EXPECT_NEAR(load.pmf_continuous(static_cast<double>(k)), load.pmf(k),
                1e-15 + load.pmf(k) * 1e-12);
  }
  EXPECT_EQ(load.pmf_continuous(-0.5), 0.0);
}

TEST(PoissonLoad, WithMeanFactory) {
  const auto load = PoissonLoad::with_mean(42.0);
  EXPECT_DOUBLE_EQ(load.mean(), 42.0);
}

// Property sweep: mass concentrates around the mean (the paper's
// "load is fairly tightly controlled" characterisation).
class PoissonConcentration : public ::testing::TestWithParam<double> {};

TEST_P(PoissonConcentration, ThreeSigmaMass) {
  const double nu = GetParam();
  const PoissonLoad load(nu);
  const double sigma = std::sqrt(nu);
  const auto lo = static_cast<std::int64_t>(nu - 3.0 * sigma);
  const auto hi = static_cast<std::int64_t>(nu + 3.0 * sigma);
  const double mass = load.cdf(hi) - load.cdf(lo - 1);
  EXPECT_GT(mass, 0.99);
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonConcentration,
                         ::testing::Values(25.0, 100.0, 400.0, 1000.0));

}  // namespace
}  // namespace bevr::dist
