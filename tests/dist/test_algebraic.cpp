#include "bevr/dist/algebraic.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

namespace bevr::dist {
namespace {

TEST(AlgebraicLoad, Construction) {
  EXPECT_THROW(AlgebraicLoad(2.0, 1.0), std::invalid_argument);   // z too small
  EXPECT_THROW(AlgebraicLoad(3.0, -1.0), std::invalid_argument);  // bad lambda
  const AlgebraicLoad load(3.0, 0.0);
  EXPECT_EQ(load.min_support(), 1);
}

TEST(AlgebraicLoad, PmfNormalises) {
  const AlgebraicLoad load(3.0, 10.0);
  double total = 0.0;
  for (std::int64_t k = 1; k <= 2'000'000; ++k) total += load.pmf(k);
  // Remaining tail ~ (λ+K)^{-2}: add the closed-form tail for the check.
  total += load.tail_above(2'000'000);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(load.pmf(0), 0.0);
}

TEST(AlgebraicLoad, TailMatchesDirectSum) {
  const AlgebraicLoad load(3.0, 5.0);
  const std::int64_t k0 = 50;
  double direct = 0.0;
  for (std::int64_t j = k0 + 1; j <= 5'000'000; ++j) direct += load.pmf(j);
  // The enumerated part misses ~(λ+5e6)^{-2}; compare at 1e-9.
  EXPECT_NEAR(load.tail_above(k0), direct, 1e-8);
}

TEST(AlgebraicLoad, MeanParameterisationHitsPaperValue) {
  const auto load = AlgebraicLoad::with_mean(3.0, 100.0);
  EXPECT_NEAR(load.mean(), 100.0, 1e-8);
  EXPECT_GT(load.lambda(), 0.0);
}

TEST(AlgebraicLoad, MeanMatchesDirectSum) {
  const auto load = AlgebraicLoad::with_mean(3.0, 100.0);
  double direct = 0.0;
  for (std::int64_t k = 1; k <= 3'000'000; ++k) {
    direct += static_cast<double>(k) * load.pmf(k);
  }
  direct += load.partial_mean_above(3'000'000);
  EXPECT_NEAR(direct, 100.0, 1e-6);
}

TEST(AlgebraicLoad, PartialMeanMatchesDirectSum) {
  const auto load = AlgebraicLoad::with_mean(3.0, 100.0);
  const std::int64_t k0 = 500;
  double direct = 0.0;
  for (std::int64_t j = k0 + 1; j <= 5'000'000; ++j) {
    direct += static_cast<double>(j) * load.pmf(j);
  }
  direct += load.partial_mean_above(5'000'000);
  EXPECT_NEAR(load.partial_mean_above(k0), direct, 1e-7);
}

TEST(AlgebraicLoad, SecondMomentInfiniteForZ3) {
  const auto load = AlgebraicLoad::with_mean(3.0, 100.0);
  EXPECT_TRUE(std::isinf(load.second_moment()));
}

TEST(AlgebraicLoad, SecondMomentFiniteForZ4) {
  const auto load = AlgebraicLoad::with_mean(4.0, 100.0);
  const double m2 = load.second_moment();
  EXPECT_TRUE(std::isfinite(m2));
  double direct = 0.0;
  for (std::int64_t k = 1; k <= 3'000'000; ++k) {
    const double kd = static_cast<double>(k);
    direct += kd * kd * load.pmf(k);
  }
  EXPECT_NEAR(m2, direct, m2 * 5e-4);  // direct sum truncates a k^{-2} tail
}

TEST(AlgebraicLoad, PowerLawTailExponent) {
  // tail(k) ~ k^{1-z}: the log-log slope between decades should be ≈ 1-z.
  const auto load = AlgebraicLoad::with_mean(3.0, 100.0);
  const double t1 = load.tail_above(10'000);
  const double t2 = load.tail_above(100'000);
  const double slope = std::log10(t2 / t1);
  EXPECT_NEAR(slope, 1.0 - 3.0, 0.05);
}

TEST(AlgebraicLoad, WithMeanRejectsUnreachableMean) {
  // The λ=0 mean is ζ(2)/ζ(3) ≈ 1.368; below it no λ exists.
  EXPECT_THROW((void)AlgebraicLoad::with_mean(3.0, 1.0),
               std::invalid_argument);
}

class AlgebraicZSweep : public ::testing::TestWithParam<double> {};

// Property: mean parameterisation round-trips for every z, and the
// tail stays heavier for smaller z (closer to the paper's z→2⁺ limit).
TEST_P(AlgebraicZSweep, MeanRoundTripAndTailOrdering) {
  const double z = GetParam();
  const auto load = AlgebraicLoad::with_mean(z, 100.0);
  EXPECT_NEAR(load.mean(), 100.0, 1e-7);
  if (z > 2.5) {
    const auto heavier = AlgebraicLoad::with_mean(z - 0.3, 100.0);
    EXPECT_GT(heavier.tail_above(1000), load.tail_above(1000));
  }
}

INSTANTIATE_TEST_SUITE_P(Powers, AlgebraicZSweep,
                         ::testing::Values(2.2, 2.5, 3.0, 3.5, 4.0, 6.0));

}  // namespace
}  // namespace bevr::dist
