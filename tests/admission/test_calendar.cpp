#include "bevr/admission/calendar.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace bevr::admission {
namespace {

CapacityCalendar::Options small_options() {
  CapacityCalendar::Options options;
  options.capacity = 10.0;
  options.tick = 0.5;
  return options;
}

TEST(CapacityCalendar, AdmitsUntilCapacityThenCounters) {
  CapacityCalendar calendar(small_options());
  for (int i = 0; i < 10; ++i) {
    const auto offer = calendar.reserve(0.0, 2.0, 1.0);
    EXPECT_TRUE(offer.admitted) << "i=" << i;
    EXPECT_GT(offer.id, 0u);
  }
  const auto full = calendar.reserve(0.0, 2.0, 1.0);
  EXPECT_FALSE(full.admitted);
  EXPECT_EQ(full.id, 0u);
  EXPECT_NEAR(full.suggested, 0.0, 1e-9);
  EXPECT_EQ(calendar.active(), 10u);
  EXPECT_EQ(calendar.offers(), 11u);
  EXPECT_EQ(calendar.counteroffers(), 1u);
}

TEST(CapacityCalendar, CounteroffersLargestFeasibleRate) {
  CapacityCalendar calendar(small_options());
  ASSERT_TRUE(calendar.reserve(0.0, 4.0, 6.0).admitted);
  const auto offer = calendar.reserve(0.0, 4.0, 6.0);
  EXPECT_FALSE(offer.admitted);
  EXPECT_NEAR(offer.suggested, 4.0, 1e-12);
  // The counteroffer is actually bookable.
  EXPECT_TRUE(calendar.reserve(0.0, 4.0, offer.suggested).admitted);
}

TEST(CapacityCalendar, SuggestedIsMinOverWindow) {
  CapacityCalendar calendar(small_options());
  ASSERT_TRUE(calendar.reserve(1.0, 2.0, 7.0).admitted);  // mid-window spike
  const auto offer = calendar.reserve(0.0, 3.0, 5.0);
  EXPECT_FALSE(offer.admitted);
  EXPECT_NEAR(offer.suggested, 3.0, 1e-12);
  EXPECT_NEAR(calendar.available(0.0, 3.0), 3.0, 1e-12);
  EXPECT_NEAR(calendar.available(2.0, 3.0), 10.0, 1e-12);
}

TEST(CapacityCalendar, NonOverlappingWindowsShareNothing) {
  CapacityCalendar calendar(small_options());
  EXPECT_TRUE(calendar.reserve(0.0, 2.0, 10.0).admitted);
  EXPECT_TRUE(calendar.reserve(2.0, 4.0, 10.0).admitted);
  EXPECT_FALSE(calendar.reserve(1.5, 2.5, 0.5).admitted);
}

TEST(CapacityCalendar, ReleaseFreesTheRemainderOfTheWindow) {
  CapacityCalendar calendar(small_options());
  const auto offer = calendar.reserve(0.0, 4.0, 10.0);
  ASSERT_TRUE(offer.admitted);
  EXPECT_FALSE(calendar.reserve(2.0, 3.0, 1.0).admitted);
  // Early departure at t=2 frees [2, 4) but keeps [0, 2) committed.
  EXPECT_TRUE(calendar.release(offer.id, 2.0));
  EXPECT_EQ(calendar.active(), 0u);
  EXPECT_TRUE(calendar.reserve(2.0, 4.0, 10.0).admitted);
  EXPECT_NEAR(calendar.committed_at(1.0), 10.0, 1e-12);  // history stays
}

TEST(CapacityCalendar, ReleaseBeforeStartFreesWholeWindow) {
  CapacityCalendar calendar(small_options());
  const auto offer = calendar.reserve(5.0, 8.0, 10.0);
  ASSERT_TRUE(offer.admitted);
  EXPECT_TRUE(calendar.release(offer.id, 0.0));
  EXPECT_TRUE(calendar.reserve(5.0, 8.0, 10.0).admitted);
}

TEST(CapacityCalendar, ReleaseUnknownOrTwiceReturnsFalse) {
  CapacityCalendar calendar(small_options());
  const auto offer = calendar.reserve(0.0, 1.0, 1.0);
  ASSERT_TRUE(offer.admitted);
  EXPECT_FALSE(calendar.release(offer.id + 100, 0.0));
  EXPECT_TRUE(calendar.release(offer.id, 0.0));
  EXPECT_FALSE(calendar.release(offer.id, 0.0));
}

TEST(CapacityCalendar, ExpiryDropsEndedReservations) {
  CapacityCalendar calendar(small_options());
  ASSERT_TRUE(calendar.reserve(0.0, 1.0, 1.0).admitted);
  ASSERT_TRUE(calendar.reserve(0.0, 2.0, 1.0).admitted);
  ASSERT_TRUE(calendar.reserve(0.0, 9.0, 1.0).admitted);
  EXPECT_EQ(calendar.expire_until(2.0), 2u);
  EXPECT_EQ(calendar.active(), 1u);
  EXPECT_EQ(calendar.expirations(), 2u);
  // Idempotent: nothing else has ended.
  EXPECT_EQ(calendar.expire_until(2.0), 0u);
  // Released reservations never double-count as expirations.
  const auto offer = calendar.reserve(3.0, 4.0, 1.0);
  ASSERT_TRUE(calendar.release(offer.id, 3.0));
  EXPECT_EQ(calendar.expire_until(100.0), 1u);  // only the t=9 one
}

TEST(CapacityCalendar, SubTickWindowStillBooksASlice) {
  CapacityCalendar calendar(small_options());
  ASSERT_TRUE(calendar.reserve(0.1, 0.2, 10.0).admitted);
  EXPECT_FALSE(calendar.reserve(0.3, 0.4, 1.0).admitted);  // same tick
  EXPECT_TRUE(calendar.reserve(0.5, 0.6, 10.0).admitted);  // next tick
}

TEST(CapacityCalendar, FullLinkNeverRejectsRatesThatFitByConstruction) {
  // Pack/unpack cycles accumulate float residue; the admission slack
  // must keep "capacity/k fits k times" true indefinitely.
  CapacityCalendar::Options options;
  options.capacity = 100.0;
  options.tick = 0.25;
  CapacityCalendar calendar(options);
  const double share = options.capacity / 7.0;  // not representable
  for (int cycle = 0; cycle < 50; ++cycle) {
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 7; ++i) {
      const auto offer = calendar.reserve(0.0, 1.0, share);
      ASSERT_TRUE(offer.admitted) << "cycle=" << cycle << " i=" << i;
      ids.push_back(offer.id);
    }
    for (const auto id : ids) ASSERT_TRUE(calendar.release(id, 0.0));
  }
  EXPECT_NEAR(calendar.committed_at(0.5), 0.0, 1e-6);
}

TEST(CapacityCalendar, InvalidArgumentsThrow) {
  CapacityCalendar calendar(small_options());
  EXPECT_THROW((void)calendar.reserve(-1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)calendar.reserve(1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)calendar.reserve(2.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)calendar.reserve(0.0, 1.0, 0.0), std::invalid_argument);
  EXPECT_THROW((void)calendar.reserve(0.0, 1.0, -2.0), std::invalid_argument);
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW((void)calendar.reserve(nan, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)calendar.reserve(0.0, inf, 1.0), std::invalid_argument);
  EXPECT_THROW((void)calendar.reserve(0.0, 1.0, nan), std::invalid_argument);
  EXPECT_THROW((void)calendar.available(1.0, 0.5), std::invalid_argument);
  EXPECT_THROW((void)calendar.committed_at(-1.0), std::invalid_argument);
  EXPECT_THROW((void)calendar.expire_until(nan), std::invalid_argument);

  CapacityCalendar::Options bad = small_options();
  bad.capacity = 0.0;
  EXPECT_THROW(CapacityCalendar{bad}, std::invalid_argument);
  bad = small_options();
  bad.tick = -0.5;
  EXPECT_THROW(CapacityCalendar{bad}, std::invalid_argument);
  bad = small_options();
  bad.max_ticks = 0;
  EXPECT_THROW(CapacityCalendar{bad}, std::invalid_argument);
}

TEST(CapacityCalendar, WindowBeyondMaxTicksThrows) {
  CapacityCalendar::Options options = small_options();
  options.max_ticks = 100;  // 50 time units at tick 0.5
  CapacityCalendar calendar(options);
  EXPECT_TRUE(calendar.reserve(0.0, 50.0, 1.0).admitted);
  EXPECT_THROW((void)calendar.reserve(0.0, 50.5, 1.0), std::invalid_argument);
  EXPECT_THROW((void)calendar.reserve(1e18, 1e18 + 1.0, 1.0),
               std::invalid_argument);
}

TEST(CapacityCalendarConcurrent, ParallelReserveReleaseConserves) {
  // Hammer one calendar from several threads (the TSan leg runs this
  // under thread sanitizer). Each thread books and releases its own
  // reservations; capacity must never oversubscribe and the final
  // state must be empty.
  CapacityCalendar::Options options;
  options.capacity = 64.0;
  options.tick = 1.0;
  CapacityCalendar calendar(options);

  constexpr int kThreads = 8;
  constexpr int kRounds = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&calendar, t] {
      for (int round = 0; round < kRounds; ++round) {
        const double start = static_cast<double>((t * 7 + round) % 32);
        const auto offer = calendar.reserve(start, start + 3.0, 2.0);
        if (offer.admitted) {
          EXPECT_TRUE(calendar.release(offer.id, start));
        } else {
          EXPECT_GE(offer.suggested, 0.0);
        }
        (void)calendar.available(start, start + 1.0);
        (void)calendar.committed_at(start);
      }
    });
  }
  for (auto& worker : workers) worker.join();

  EXPECT_EQ(calendar.active(), 0u);
  for (double t = 0.0; t < 36.0; t += 1.0) {
    EXPECT_NEAR(calendar.committed_at(t), 0.0, 1e-9) << "t=" << t;
  }
  EXPECT_EQ(calendar.offers(), static_cast<std::uint64_t>(kThreads) * kRounds);
}

}  // namespace
}  // namespace bevr::admission
