// Hostile-input coverage for the trace file reader: every malformed
// line must raise std::invalid_argument naming the offending line —
// never undefined behaviour, never a silently skipped record.
#include <cmath>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "bevr/admission/trace.h"

namespace bevr::admission {
namespace {

ArrivalTrace parse(const std::string& text) {
  std::istringstream in(text);
  return parse_trace(in);
}

/// The reader must throw std::invalid_argument whose message mentions
/// "line <n>".
void expect_rejects(const std::string& text, std::size_t line) {
  try {
    (void)parse(text);
    FAIL() << "expected std::invalid_argument for: " << text;
  } catch (const std::invalid_argument& error) {
    const std::string needle = "line " + std::to_string(line);
    EXPECT_NE(std::string(error.what()).find(needle), std::string::npos)
        << "message '" << error.what() << "' does not name " << needle;
  }
}

TEST(ParseTrace, WellFormedRoundTrip) {
  const auto trace = parse(
      "# submit start duration rate\n"
      "\n"
      "0.0 0.0 1.5 2.0\n"
      "  0.5   1.25 0.75 1.0  \n"
      "\t0.5 3.0 2.0 4.0\n");
  ASSERT_EQ(trace.requests.size(), 3u);
  EXPECT_DOUBLE_EQ(trace.requests[0].duration, 1.5);
  EXPECT_DOUBLE_EQ(trace.requests[1].start, 1.25);
  EXPECT_DOUBLE_EQ(trace.requests[2].rate, 4.0);
  EXPECT_DOUBLE_EQ(trace.horizon, 3.0);
  EXPECT_TRUE(std::isinf(trace.requests[0].cancel));
}

TEST(ParseTrace, EmptyAndCommentOnlyInputsYieldEmptyTraces) {
  EXPECT_TRUE(parse("").requests.empty());
  EXPECT_TRUE(parse("# nothing\n\n   \n\t\n# more\n").requests.empty());
  EXPECT_DOUBLE_EQ(parse("").horizon, 0.0);
}

TEST(ParseTrace, TruncatedLines) {
  expect_rejects("0 0 1 1\n0.5\n", 2);
  expect_rejects("0 0 1\n", 1);          // three fields
  expect_rejects("0 0\n", 1);            // two fields
  expect_rejects("7\n", 1);              // one field
}

TEST(ParseTrace, TrailingFields) {
  expect_rejects("0 0 1 1 9\n", 1);
  expect_rejects("0 0 1 1\n1 1 1 1 bogus\n", 2);
}

TEST(ParseTrace, NonNumericTokens) {
  expect_rejects("zero 0 1 1\n", 1);
  expect_rejects("0 x 1 1\n", 1);
  expect_rejects("0 0 1,5 1\n", 1);  // locale comma = trailing junk
  expect_rejects("0 0 1 --2\n", 1);
}

TEST(ParseTrace, NonFiniteValues) {
  expect_rejects("nan 0 1 1\n", 1);
  expect_rejects("0 inf 1 1\n", 1);
  expect_rejects("0 0 -inf 1\n", 1);
  expect_rejects("0 0 1 nan\n", 1);
}

TEST(ParseTrace, DomainViolations) {
  expect_rejects("-1 0 1 1\n", 1);       // negative submit
  expect_rejects("5 4 1 1\n", 1);        // start precedes submit
  expect_rejects("0 0 0 1\n", 1);        // zero duration
  expect_rejects("0 0 -3 1\n", 1);       // negative duration
  expect_rejects("0 0 1 0\n", 1);        // zero rate
  expect_rejects("0 0 1 -1\n", 1);       // negative rate
}

TEST(ParseTrace, OutOfOrderSubmits) {
  expect_rejects("2 2 1 1\n1 1 1 1\n", 2);
  // Equal submits are allowed (stable order preserved).
  const auto trace = parse("1 1 1 1\n1 2 1 1\n");
  ASSERT_EQ(trace.requests.size(), 2u);
  EXPECT_DOUBLE_EQ(trace.requests[1].start, 2.0);
}

TEST(ParseTrace, LineNumbersCountCommentsAndBlanks) {
  // The reported line number must match the file, not the record count.
  expect_rejects("# header\n\n0 0 1 1\n# mid\nbroken\n", 5);
}

TEST(ParseTrace, HugeValuesSurviveWithoutOverflowUB) {
  // Extreme magnitudes parse as finite doubles and obey the contract.
  const auto trace = parse("0 1e300 1e300 1e300\n");
  ASSERT_EQ(trace.requests.size(), 1u);
  EXPECT_DOUBLE_EQ(trace.horizon, 1e300);
  // Overflowing literals read as inf → rejected, not UB.
  expect_rejects("0 0 1 1e400\n", 1);
}

TEST(LoadTrace, MissingFileThrows) {
  EXPECT_THROW((void)load_trace("/nonexistent/definitely/not/here.trace"),
               std::invalid_argument);
}

}  // namespace
}  // namespace bevr::admission
