// Calendar expiry racing release: the latent gap in the calendar
// suite. A departure's release(id, t) and the engine's expire_until
// sweep can target the same reservation; whichever wins, the other
// must observe a clean miss (return false / not count it), the live
// set must shrink exactly once per reservation, and committed
// bandwidth must stay consistent. One deterministic paused-clock
// interleaving pins the exact semantics; one storm drives the race
// from many threads under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "bevr/admission/calendar.h"

namespace bevr::admission {
namespace {

CapacityCalendar::Options options(double capacity, double tick) {
  CapacityCalendar::Options o;
  o.capacity = capacity;
  o.tick = tick;
  return o;
}

// Paused clock: the test IS the clock, advancing `now` only through
// explicit expire_until calls, so every step of the
// release-then-expire and expire-then-release orders is observable.
TEST(CalendarExpiryVsRelease, PausedClockInterleavingIsExact) {
  CapacityCalendar calendar(options(10.0, 0.5));
  const auto early = calendar.reserve(0.0, 2.0, 4.0);
  const auto late = calendar.reserve(0.0, 6.0, 4.0);
  ASSERT_TRUE(early.admitted);
  ASSERT_TRUE(late.admitted);
  EXPECT_EQ(calendar.active(), 2u);

  // Order A — release first, then the sweep reaches the same window:
  // the sweep must not double-count the already-released booking.
  EXPECT_TRUE(calendar.release(early.id, 1.0));
  EXPECT_EQ(calendar.active(), 1u);
  EXPECT_EQ(calendar.expire_until(2.0), 0u);
  EXPECT_EQ(calendar.expirations(), 0u);
  // A second release of the same id is a clean miss either way.
  EXPECT_FALSE(calendar.release(early.id, 1.5));

  // Order B — the sweep wins: a later release must be the clean miss.
  EXPECT_EQ(calendar.expire_until(6.0), 1u);
  EXPECT_EQ(calendar.expirations(), 1u);
  EXPECT_EQ(calendar.active(), 0u);
  EXPECT_FALSE(calendar.release(late.id, 6.0));
  // Expired commitments are history: the past ticks stay recorded.
  EXPECT_DOUBLE_EQ(calendar.committed_at(5.5), 4.0);
  // The freed future is bookable again at full rate.
  EXPECT_TRUE(calendar.reserve(6.0, 8.0, 10.0).admitted);
}

// The storm: worker threads book-and-release short windows while a
// sweeper thread races expire_until across the same horizon. TSan
// checks the locking; the assertions check that every reservation
// leaves the live set exactly once — expired + released-true = booked.
TEST(CalendarExpiryVsRelease, StormNeverDoubleRetiresAReservation) {
  CapacityCalendar calendar(options(1e9, 0.25));  // admission never fails
  constexpr int kWorkers = 6;
  constexpr int kPerWorker = 500;
  std::atomic<std::uint64_t> released{0};
  std::atomic<bool> done{false};

  std::thread sweeper([&] {
    double now = 0.0;
    while (!done.load(std::memory_order_acquire)) {
      calendar.expire_until(now);
      now += 0.5;
      if (now > 2000.0) now = 0.0;  // keep sweeping the busy range
      std::this_thread::yield();
    }
    calendar.expire_until(1e6);  // final sweep retires the stragglers
  });

  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kPerWorker; ++i) {
        const double start = static_cast<double>((w * kPerWorker + i) % 1000);
        const auto offer = calendar.reserve(start, start + 1.0, 1.0);
        EXPECT_TRUE(offer.admitted);
        if (i % 2 == 0) {
          // Half the bookings race their release against the sweep.
          if (calendar.release(offer.id, start + 0.5)) {
            released.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  done.store(true, std::memory_order_release);
  sweeper.join();

  constexpr std::uint64_t kBooked = kWorkers * kPerWorker;
  EXPECT_EQ(calendar.offers(), kBooked);
  EXPECT_EQ(calendar.active(), 0u);  // everyone retired...
  // ...exactly once: successful releases and expiry drops partition
  // the booked set.
  EXPECT_EQ(released.load() + calendar.expirations(), kBooked);
  EXPECT_GT(calendar.expirations(), 0u);  // the race really happened
  EXPECT_GT(released.load(), 0u);
}

}  // namespace
}  // namespace bevr::admission
