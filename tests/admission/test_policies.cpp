#include "bevr/admission/policy.h"

#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "bevr/admission/trace.h"
#include "bevr/sim/rng.h"
#include "bevr/utility/utility.h"

namespace bevr::admission {
namespace {

FlowRequest request_at(double start, double duration = 5.0,
                       double rate = 1.0) {
  FlowRequest req;
  req.submit = start;
  req.start = start;
  req.duration = duration;
  req.rate = rate;
  return req;
}

PolicyConfig small_config() {
  PolicyConfig config;
  config.capacity = 10.0;
  config.pi = std::make_shared<utility::Rigid>(1.0);
  config.tick = 0.5;
  return config;
}

TEST(BestEffortPolicy, AdmitsEverythingAndSplitsEvenly) {
  const auto policy = make_policy(PolicyKind::kBestEffort, small_config());
  std::vector<AdmissionPolicy::Decision> decisions;
  for (int i = 0; i < 40; ++i) {
    const auto d = policy->request(request_at(0.0));
    EXPECT_TRUE(d.admitted);
    EXPECT_FALSE(d.countered);
    EXPECT_EQ(d.booking, 0u);
    decisions.push_back(d);
  }
  // Shares are capacity / active-count as flows pile on.
  const auto req = request_at(0.0);
  EXPECT_DOUBLE_EQ(policy->on_start(req, decisions[0]), 10.0);
  EXPECT_DOUBLE_EQ(policy->on_start(req, decisions[1]), 5.0);
  EXPECT_DOUBLE_EQ(policy->on_start(req, decisions[2]), 10.0 / 3.0);
  // A departure makes room again.
  policy->on_end(req, decisions[0], 5.0);
  EXPECT_DOUBLE_EQ(policy->on_start(req, decisions[3]), 10.0 / 3.0);
  EXPECT_EQ(policy->calendar(), nullptr);
}

TEST(BestEffortPolicy, CancelOfUnstartedFlowLeavesSharesAlone) {
  // A pre-start retraction must not decrement the active count: the
  // flow never held a share. (A direct on_end here would skew every
  // later share upward — the bias the engine's on_cancel path exists
  // to prevent.)
  const auto policy = make_policy(PolicyKind::kBestEffort, small_config());
  const auto req = request_at(0.0);
  const auto a = policy->request(req);
  const auto b = policy->request(req);
  EXPECT_DOUBLE_EQ(policy->on_start(req, a), 10.0);  // active = 1
  policy->on_cancel(req, b, 0.5);                    // b never started
  const auto c = policy->request(req);
  EXPECT_DOUBLE_EQ(policy->on_start(req, c), 5.0);  // active = 2, not 1
}

TEST(OnlineKmaxPolicy, AdmitsExactlyKmaxConcurrentFlows) {
  // Rigid(1) on capacity 10 ⇒ k_max = 10, share = 1: the online policy
  // reproduces the reservation architecture's admission limit.
  const auto policy = make_policy(PolicyKind::kOnlineKmax, small_config());
  std::vector<AdmissionPolicy::Decision> admitted;
  for (int i = 0; i < 10; ++i) {
    const auto d = policy->request(request_at(0.0));
    ASSERT_TRUE(d.admitted) << "i=" << i;
    EXPECT_DOUBLE_EQ(d.rate, 1.0);
    EXPECT_GT(d.booking, 0u);
    admitted.push_back(d);
  }
  const auto full = policy->request(request_at(0.0));
  EXPECT_FALSE(full.admitted);
  // The granted rate is the fixed share, whatever was asked.
  const auto req = request_at(0.0);
  EXPECT_DOUBLE_EQ(policy->on_start(req, admitted[0]), 1.0);
  // A departure releases its window for newcomers.
  policy->on_end(req, admitted[0], 0.0);
  EXPECT_TRUE(policy->request(request_at(0.0)).admitted);
  ASSERT_NE(policy->calendar(), nullptr);
  EXPECT_GT(policy->calendar()->offers(), 0u);
}

TEST(OnlineKmaxPolicy, NonOverlappingWindowsDoNotCompete) {
  const auto policy = make_policy(PolicyKind::kOnlineKmax, small_config());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(policy->request(request_at(0.0, 5.0)).admitted);
  }
  EXPECT_FALSE(policy->request(request_at(0.0, 5.0)).admitted);
  EXPECT_TRUE(policy->request(request_at(5.0, 5.0)).admitted);
}

TEST(OnlineKmaxPolicy, ElasticUtilityThrows) {
  auto config = small_config();
  config.pi = std::make_shared<utility::Elastic>();
  EXPECT_THROW((void)make_policy(PolicyKind::kOnlineKmax, config),
               std::invalid_argument);
  config.pi = nullptr;
  EXPECT_THROW((void)make_policy(PolicyKind::kOnlineKmax, config),
               std::invalid_argument);
}

TEST(OnlineKmaxPolicy, WarmKmaxFlagCannotChangeDecisions) {
  // The kernels fast path is documented bit-identical to core::k_max;
  // every decision on a shared trace must match with the flag off.
  TraceSpec spec;
  spec.arrival_rate = 30.0;
  spec.horizon = 40.0;
  const auto trace = generate_trace(spec, sim::Rng(5));

  auto config = small_config();
  config.use_warm_kmax = true;
  const auto warm = make_policy(PolicyKind::kOnlineKmax, config);
  config.use_warm_kmax = false;
  const auto cold = make_policy(PolicyKind::kOnlineKmax, config);

  for (const auto& req : trace.requests) {
    const auto a = warm->request(req);
    const auto b = cold->request(req);
    ASSERT_EQ(a.admitted, b.admitted);
    EXPECT_DOUBLE_EQ(a.rate, b.rate);
  }
}

TEST(AdvanceBookingPolicy, RigidConfigurationBlocksWhenFull) {
  // min_rate_fraction = 1 and no shifting: a plain yes/no reservation.
  const auto policy =
      make_policy(PolicyKind::kAdvanceBooking, small_config());
  ASSERT_TRUE(policy->request(request_at(0.0, 4.0, 6.0)).admitted);
  const auto d = policy->request(request_at(0.0, 4.0, 6.0));
  EXPECT_FALSE(d.admitted);
  EXPECT_EQ(d.booking, 0u);
}

TEST(AdvanceBookingPolicy, AcceptsCounteroffersAboveTheFloor) {
  auto config = small_config();
  config.min_rate_fraction = 0.5;
  const auto policy = make_policy(PolicyKind::kAdvanceBooking, config);
  ASSERT_TRUE(policy->request(request_at(0.0, 4.0, 6.0)).admitted);
  // 4.0 of the 6.0 ask remains: 4/6 ≥ 0.5 ⇒ take the reduced rate.
  const auto d = policy->request(request_at(0.0, 4.0, 6.0));
  EXPECT_TRUE(d.admitted);
  EXPECT_TRUE(d.countered);
  EXPECT_DOUBLE_EQ(d.rate, 4.0);
  EXPECT_DOUBLE_EQ(d.start, 0.0);
  const auto req = request_at(0.0, 4.0, 6.0);
  EXPECT_DOUBLE_EQ(policy->on_start(req, d), 4.0);
}

TEST(AdvanceBookingPolicy, RejectsCounteroffersBelowTheFloor) {
  auto config = small_config();
  config.min_rate_fraction = 0.9;  // 4/6 < 0.9 ⇒ refuse the reduction
  const auto policy = make_policy(PolicyKind::kAdvanceBooking, config);
  ASSERT_TRUE(policy->request(request_at(0.0, 4.0, 6.0)).admitted);
  EXPECT_FALSE(policy->request(request_at(0.0, 4.0, 6.0)).admitted);
}

TEST(AdvanceBookingPolicy, ShiftsTheStartWhenTheRateIsNotMalleable) {
  auto config = small_config();
  config.min_rate_fraction = 1.0;  // never accept a reduced rate
  config.max_start_shift = 2.0;
  config.shift_step = 1.0;
  const auto policy = make_policy(PolicyKind::kAdvanceBooking, config);
  ASSERT_TRUE(policy->request(request_at(0.0, 2.0, 10.0)).admitted);
  // Full at t=0 and t=1 (window overlap); free from t=2.
  const auto d = policy->request(request_at(0.0, 2.0, 10.0));
  EXPECT_TRUE(d.admitted);
  EXPECT_TRUE(d.countered);
  EXPECT_DOUBLE_EQ(d.start, 2.0);
  EXPECT_DOUBLE_EQ(d.rate, 10.0);
}

TEST(AdvanceBookingPolicy, ShiftWindowExhaustedBlocks) {
  auto config = small_config();
  config.min_rate_fraction = 1.0;
  config.max_start_shift = 1.0;  // not enough to clear a 2-unit window
  config.shift_step = 0.5;
  const auto policy = make_policy(PolicyKind::kAdvanceBooking, config);
  ASSERT_TRUE(policy->request(request_at(0.0, 2.0, 10.0)).admitted);
  EXPECT_FALSE(policy->request(request_at(0.0, 2.0, 10.0)).admitted);
}

TEST(AdvanceBookingPolicy, CancelReleasesTheBooking) {
  const auto policy =
      make_policy(PolicyKind::kAdvanceBooking, small_config());
  const auto req = request_at(5.0, 4.0, 10.0);
  const auto d = policy->request(req);
  ASSERT_TRUE(d.admitted);
  EXPECT_FALSE(policy->request(request_at(5.0, 4.0, 10.0)).admitted);
  // Pre-start retraction at t=1 frees the whole window.
  policy->on_cancel(req, d, 1.0);
  EXPECT_TRUE(policy->request(request_at(5.0, 4.0, 10.0)).admitted);
}

TEST(AdvanceBookingPolicy, InvalidKnobsThrow) {
  auto config = small_config();
  config.min_rate_fraction = 0.0;
  EXPECT_THROW((void)make_policy(PolicyKind::kAdvanceBooking, config),
               std::invalid_argument);
  config = small_config();
  config.min_rate_fraction = 1.5;
  EXPECT_THROW((void)make_policy(PolicyKind::kAdvanceBooking, config),
               std::invalid_argument);
  config = small_config();
  config.max_start_shift = -1.0;
  EXPECT_THROW((void)make_policy(PolicyKind::kAdvanceBooking, config),
               std::invalid_argument);
  config = small_config();
  config.max_start_shift = 2.0;
  config.shift_step = 0.0;
  EXPECT_THROW((void)make_policy(PolicyKind::kAdvanceBooking, config),
               std::invalid_argument);
}

TEST(PolicyKindNames, RoundTrip) {
  EXPECT_EQ(to_string(PolicyKind::kBestEffort), "best_effort");
  EXPECT_EQ(to_string(PolicyKind::kOnlineKmax), "online_kmax");
  EXPECT_EQ(to_string(PolicyKind::kAdvanceBooking), "advance_booking");
}

}  // namespace
}  // namespace bevr::admission
