// Statistical validation of the calendar against queueing theory: with
// no book-ahead and rigid single-unit requests, advance booking on the
// capacity calendar IS an M/M/C/C loss system — at submit time the
// committed profile over the request's window is highest at the current
// tick (everyone already admitted is holding now and only departs
// later), so the min-free check degenerates to the classic "fewer than
// C in service" occupancy test, and releases happen at exact departure
// times so tick quantization never leaks in. Simulated blocking must
// therefore match Erlang-B within sampling noise.
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "bevr/admission/engine.h"
#include "bevr/admission/policy.h"
#include "bevr/admission/trace.h"
#include "bevr/numerics/erlang.h"
#include "bevr/sim/rng.h"
#include "bevr/utility/utility.h"

namespace bevr::admission {
namespace {

struct MmccResult {
  double simulated = 0.0;
  double analytic = 0.0;
  double ci3 = 0.0;  ///< 3σ on the simulated estimate
};

MmccResult run_mmcc(double offered_load, double capacity,
                    std::uint64_t seed) {
  TraceSpec spec;
  spec.kind = TraceKind::kPoisson;
  spec.mean_duration = 1.0;
  spec.arrival_rate = offered_load / spec.mean_duration;
  spec.rate = 1.0;
  spec.book_ahead = 0.0;
  spec.cancel_p = 0.0;
  spec.horizon = 400.0;
  const auto trace = generate_trace(spec, sim::Rng(seed));

  PolicyConfig config;
  config.capacity = capacity;
  config.pi = std::make_shared<utility::Rigid>(1.0);
  config.tick = 0.25;
  config.min_rate_fraction = 1.0;  // rigid: plain yes/no booking
  config.max_start_shift = 0.0;
  const auto policy = make_policy(PolicyKind::kAdvanceBooking, config);

  EngineConfig engine;
  engine.warmup = 50.0;
  const auto report = run_admission(trace, *policy, *config.pi, engine);

  MmccResult result;
  result.simulated = report.blocking_probability;
  const auto servers =
      static_cast<std::int64_t>(std::floor(capacity / spec.rate + 1e-9));
  result.analytic = numerics::erlang_b(offered_load, servers);
  // Blocking indicators are correlated within a holding time, so the
  // effective sample count is the number of scored mean-holding-time
  // epochs, not the (much larger) number of offered arrivals.
  const double epochs = (spec.horizon - engine.warmup) / spec.mean_duration;
  result.ci3 =
      3.0 * std::sqrt(result.analytic * (1.0 - result.analytic) / epochs);
  return result;
}

TEST(AdmissionMmcc, UnderloadedBlockingMatchesErlangB) {
  // E = 15 erlangs on 20 servers: B ≈ 4.6%.
  const auto r = run_mmcc(15.0, 20.0, 314159);
  EXPECT_GT(r.analytic, 0.01);
  EXPECT_NEAR(r.simulated, r.analytic, r.ci3)
      << "sim=" << r.simulated << " erlang_b=" << r.analytic;
}

TEST(AdmissionMmcc, OverloadedBlockingMatchesErlangB) {
  // E = 25 erlangs on 20 servers: B ≈ 26% — deep loss regime.
  const auto r = run_mmcc(25.0, 20.0, 271828);
  EXPECT_GT(r.analytic, 0.2);
  EXPECT_NEAR(r.simulated, r.analytic, r.ci3)
      << "sim=" << r.simulated << " erlang_b=" << r.analytic;
}

TEST(AdmissionMmcc, OccupancyNeverExceedsServerCount) {
  TraceSpec spec;
  spec.arrival_rate = 30.0;
  spec.horizon = 100.0;
  const auto trace = generate_trace(spec, sim::Rng(99));

  PolicyConfig config;
  config.capacity = 20.0;
  config.pi = std::make_shared<utility::Rigid>(1.0);
  const auto policy = make_policy(PolicyKind::kAdvanceBooking, config);
  const auto report = run_admission(trace, *policy, *config.pi, {});
  EXPECT_LE(report.peak_active, 20u);
  EXPECT_GT(report.blocked, 0u);
}

}  // namespace
}  // namespace bevr::admission
