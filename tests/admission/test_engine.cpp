#include "bevr/admission/engine.h"

#include <cmath>
#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "bevr/admission/policy.h"
#include "bevr/admission/trace.h"
#include "bevr/sim/rng.h"
#include "bevr/utility/utility.h"

namespace bevr::admission {
namespace {

PolicyConfig engine_config() {
  PolicyConfig config;
  config.capacity = 20.0;
  config.pi = std::make_shared<utility::Rigid>(1.0);
  config.tick = 0.25;
  return config;
}

ArrivalTrace busy_trace(double cancel_p = 0.0, double book_ahead = 0.0) {
  TraceSpec spec;
  spec.arrival_rate = 40.0;  // ~2× what capacity 20 can carry
  spec.mean_duration = 1.0;
  spec.horizon = 60.0;
  spec.cancel_p = cancel_p;
  spec.book_ahead = book_ahead;
  return generate_trace(spec, sim::Rng(2026));
}

TEST(AdmissionEngine, ConservationAndBlockingAccounting) {
  const auto trace = busy_trace();
  const auto policy = make_policy(PolicyKind::kOnlineKmax, engine_config());
  const auto report =
      run_admission(trace, *policy, *engine_config().pi, {});

  EXPECT_EQ(report.offered, trace.requests.size());
  EXPECT_EQ(report.admitted + report.blocked, report.offered);
  EXPECT_GT(report.blocked, 0u);  // genuinely overloaded
  EXPECT_GT(report.admitted, 0u);
  EXPECT_EQ(report.cancelled, 0u);
  EXPECT_NEAR(report.blocking_probability,
              static_cast<double>(report.blocked) /
                  static_cast<double>(report.offered),
              1e-12);
  // Rigid(1) at the fixed share 1.0: every admitted flow scores 1,
  // every blocked flow scores 0 ⇒ mean utility = admit fraction.
  EXPECT_NEAR(report.mean_utility,
              static_cast<double>(report.admitted) /
                  static_cast<double>(report.offered),
              1e-12);
  EXPECT_DOUBLE_EQ(report.mean_allocated_rate, 1.0);
  // The calendar admits at most k_max = 20 overlapping shares.
  EXPECT_LE(report.peak_active, 20u);
  EXPECT_GT(report.calendar_offers, 0u);
}

TEST(AdmissionEngine, BestEffortAdmitsEverything) {
  const auto trace = busy_trace();
  const auto policy = make_policy(PolicyKind::kBestEffort, engine_config());
  const auto report =
      run_admission(trace, *policy, *engine_config().pi, {});
  EXPECT_EQ(report.blocked, 0u);
  EXPECT_EQ(report.admitted, report.offered);
  EXPECT_DOUBLE_EQ(report.blocking_probability, 0.0);
  // ~40 concurrent flows share 20 units: most shares sit below the
  // rigid requirement, so utility collapses well under the reservation
  // policy's admit fraction — the paper's overload story.
  EXPECT_LT(report.mean_utility, 0.5);
  EXPECT_GT(report.peak_active, 20u);
  EXPECT_EQ(report.calendar_offers, 0u);  // no calendar at all
}

TEST(AdmissionEngine, CancelledFlowsAreUnscoredAndReleaseCapacity) {
  const auto trace = busy_trace(/*cancel_p=*/0.4, /*book_ahead=*/2.0);
  std::uint64_t expected_cancels = 0;
  for (const auto& req : trace.requests) {
    if (std::isfinite(req.cancel)) ++expected_cancels;
  }
  ASSERT_GT(expected_cancels, 0u);

  const auto policy =
      make_policy(PolicyKind::kAdvanceBooking, engine_config());
  const auto report =
      run_admission(trace, *policy, *engine_config().pi, {});

  EXPECT_EQ(report.admitted + report.blocked, report.offered);
  // Only *admitted* bookings can be retracted, so the cancel count is
  // bounded by the trace's cancellable requests.
  EXPECT_GT(report.cancelled, 0u);
  EXPECT_LE(report.cancelled, expected_cancels);
  EXPECT_LE(report.cancelled, report.admitted);
  // Blocking is normalised to decided requests.
  EXPECT_NEAR(report.blocking_probability,
              static_cast<double>(report.blocked) /
                  static_cast<double>(report.offered - report.cancelled),
              1e-12);
}

TEST(AdmissionEngine, WarmupRequestsShapeLoadButGoUnscored) {
  const auto trace = busy_trace();
  EngineConfig engine;
  engine.warmup = 30.0;
  std::uint64_t scored_requests = 0;
  for (const auto& req : trace.requests) {
    if (req.submit >= engine.warmup) ++scored_requests;
  }

  const auto policy = make_policy(PolicyKind::kOnlineKmax, engine_config());
  const auto report =
      run_admission(trace, *policy, *engine_config().pi, engine);
  EXPECT_EQ(report.offered, scored_requests);
  EXPECT_LT(report.offered, trace.requests.size());
  // Warmup flows still hit the calendar: its lifetime counters cover
  // the whole trace.
  EXPECT_EQ(report.calendar_offers, trace.requests.size());
  // The system starts full, so scored blocking is immediate — no
  // fill-up transient inflating the utilities.
  EXPECT_GT(report.blocked, 0u);
}

TEST(AdmissionEngine, DeterministicAcrossRuns) {
  const auto trace = busy_trace(/*cancel_p=*/0.2, /*book_ahead=*/1.0);
  const auto run_once = [&trace] {
    const auto policy =
        make_policy(PolicyKind::kAdvanceBooking, engine_config());
    return run_admission(trace, *policy, *engine_config().pi, {});
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_EQ(a.cancelled, b.cancelled);
  EXPECT_EQ(a.peak_active, b.peak_active);
  EXPECT_DOUBLE_EQ(a.mean_utility, b.mean_utility);
  EXPECT_DOUBLE_EQ(a.mean_allocated_rate, b.mean_allocated_rate);
}

TEST(AdmissionEngine, SamePolicyKindIsIndependentAcrossRuns) {
  // run_admission must not leak state between runs through the policy:
  // a fresh policy on the same trace reproduces the report even after
  // another policy instance has processed a different trace.
  const auto trace = busy_trace();
  const auto config = engine_config();
  const auto first = [&] {
    const auto policy = make_policy(PolicyKind::kOnlineKmax, config);
    return run_admission(trace, *policy, *config.pi, {});
  }();
  (void)[&] {
    const auto policy = make_policy(PolicyKind::kOnlineKmax, config);
    return run_admission(busy_trace(0.3, 1.0), *policy, *config.pi, {});
  }();
  const auto again = [&] {
    const auto policy = make_policy(PolicyKind::kOnlineKmax, config);
    return run_admission(trace, *policy, *config.pi, {});
  }();
  EXPECT_EQ(first.admitted, again.admitted);
  EXPECT_DOUBLE_EQ(first.mean_utility, again.mean_utility);
}

TEST(AdmissionEngine, RejectsMalformedInputs) {
  const auto policy = make_policy(PolicyKind::kBestEffort, engine_config());
  const utility::Rigid pi(1.0);

  EngineConfig engine;
  engine.warmup = -1.0;
  ArrivalTrace empty;
  EXPECT_THROW((void)run_admission(empty, *policy, pi, engine),
               std::invalid_argument);

  ArrivalTrace bad;
  FlowRequest req;
  req.submit = 1.0;
  req.start = 0.5;  // starts before it was submitted
  bad.requests.push_back(req);
  EXPECT_THROW((void)run_admission(bad, *policy, pi, {}),
               std::invalid_argument);

  bad.requests[0] = FlowRequest{};
  bad.requests[0].duration = 0.0;
  EXPECT_THROW((void)run_admission(bad, *policy, pi, {}),
               std::invalid_argument);
}

TEST(AdmissionEngine, EmptyTraceYieldsZeroReport) {
  const auto policy = make_policy(PolicyKind::kBestEffort, engine_config());
  const utility::Rigid pi(1.0);
  const auto report = run_admission(ArrivalTrace{}, *policy, pi, {});
  EXPECT_EQ(report.offered, 0u);
  EXPECT_DOUBLE_EQ(report.mean_utility, 0.0);
  EXPECT_DOUBLE_EQ(report.blocking_probability, 0.0);
  EXPECT_EQ(report.peak_active, 0u);
}

}  // namespace
}  // namespace bevr::admission
