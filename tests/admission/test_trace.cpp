#include "bevr/admission/trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bevr/sim/rng.h"

namespace bevr::admission {
namespace {

TraceSpec base_spec() {
  TraceSpec spec;
  spec.kind = TraceKind::kPoisson;
  spec.arrival_rate = 20.0;
  spec.mean_duration = 1.0;
  spec.rate = 1.0;
  spec.horizon = 50.0;
  return spec;
}

std::vector<double> starts_of(const ArrivalTrace& trace) {
  std::vector<double> starts;
  starts.reserve(trace.requests.size());
  for (const auto& req : trace.requests) starts.push_back(req.start);
  return starts;
}

TEST(GenerateTrace, DeterministicInSeed) {
  const auto spec = base_spec();
  const auto a = generate_trace(spec, sim::Rng(42));
  const auto b = generate_trace(spec, sim::Rng(42));
  ASSERT_EQ(a.requests.size(), b.requests.size());
  EXPECT_GT(a.requests.size(), 100u);  // λ·T = 1000 expected
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.requests[i].submit, b.requests[i].submit);
    EXPECT_DOUBLE_EQ(a.requests[i].start, b.requests[i].start);
    EXPECT_DOUBLE_EQ(a.requests[i].duration, b.requests[i].duration);
    EXPECT_DOUBLE_EQ(a.requests[i].rate, b.requests[i].rate);
    EXPECT_DOUBLE_EQ(a.requests[i].cancel, b.requests[i].cancel);
  }
  const auto c = generate_trace(spec, sim::Rng(43));
  EXPECT_NE(starts_of(a), starts_of(c));
}

TEST(GenerateTrace, SubStreamsIsolateKnobs) {
  // Turning on cancellations or book-ahead must not perturb the
  // arrival process or the durations: each field draws from its own
  // split sub-stream of the root generator. (Traces are sorted by
  // submit time, and book-ahead changes submits — so compare the
  // (start, duration) pairs in start order, which is knob-invariant.)
  const auto service_windows = [](const ArrivalTrace& trace) {
    std::vector<std::pair<double, double>> windows;
    windows.reserve(trace.requests.size());
    for (const auto& req : trace.requests) {
      windows.emplace_back(req.start, req.duration);
    }
    std::sort(windows.begin(), windows.end());
    return windows;
  };

  auto spec = base_spec();
  const auto plain = service_windows(generate_trace(spec, sim::Rng(7)));

  spec.cancel_p = 0.5;
  const auto with_cancels =
      service_windows(generate_trace(spec, sim::Rng(7)));

  spec.cancel_p = 0.0;
  spec.book_ahead = 2.0;
  const auto with_bookahead =
      service_windows(generate_trace(spec, sim::Rng(7)));

  EXPECT_EQ(plain, with_cancels);
  EXPECT_EQ(plain, with_bookahead);
}

TEST(GenerateTrace, InvariantsHold) {
  auto spec = base_spec();
  spec.book_ahead = 1.5;
  spec.cancel_p = 0.3;
  const auto trace = generate_trace(spec, sim::Rng(99));
  ASSERT_FALSE(trace.requests.empty());
  EXPECT_TRUE(std::is_sorted(
      trace.requests.begin(), trace.requests.end(),
      [](const FlowRequest& a, const FlowRequest& b) {
        return a.submit < b.submit;
      }));
  std::size_t cancels = 0;
  for (const auto& req : trace.requests) {
    EXPECT_GE(req.submit, 0.0);
    EXPECT_LE(req.submit, req.start);
    EXPECT_LE(req.start, spec.horizon);
    EXPECT_GT(req.duration, 0.0);
    EXPECT_DOUBLE_EQ(req.rate, spec.rate);
    if (std::isfinite(req.cancel)) {
      ++cancels;
      EXPECT_GE(req.cancel, req.submit);
      EXPECT_LT(req.cancel, req.start);
    }
  }
  // cancel_p = 0.3 over ~1000 requests: plenty of both kinds.
  EXPECT_GT(cancels, trace.requests.size() / 10);
  EXPECT_LT(cancels, trace.requests.size() / 2);
  EXPECT_LE(trace.horizon, spec.horizon);
}

TEST(GenerateTrace, NoBookAheadMeansImmediateRequests) {
  const auto trace = generate_trace(base_spec(), sim::Rng(3));
  for (const auto& req : trace.requests) {
    EXPECT_DOUBLE_EQ(req.submit, req.start);
    EXPECT_TRUE(std::isinf(req.cancel));
  }
}

TEST(GenerateTrace, BurstyKindModulatesArrivals) {
  auto spec = base_spec();
  spec.kind = TraceKind::kBursty;
  spec.burst_hot_rate = 200.0;
  spec.burst_cold_rate = 5.0;
  spec.burst_hot_p = 0.5;
  const auto bursty = generate_trace(spec, sim::Rng(11));
  ASSERT_GT(bursty.requests.size(), 50u);
  // Deterministic too.
  const auto again = generate_trace(spec, sim::Rng(11));
  EXPECT_EQ(starts_of(bursty), starts_of(again));
  // The mixture rate sits between the two extremes.
  const double mean_rate =
      static_cast<double>(bursty.requests.size()) / spec.horizon;
  EXPECT_GT(mean_rate, spec.burst_cold_rate);
  EXPECT_LT(mean_rate, spec.burst_hot_rate);
}

TEST(TraceSpec, ValidateRejectsBadFields) {
  auto spec = base_spec();
  EXPECT_NO_THROW(spec.validate());

  spec.arrival_rate = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = base_spec();
  spec.mean_duration = -1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = base_spec();
  spec.rate = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = base_spec();
  spec.horizon = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = base_spec();
  spec.cancel_p = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = base_spec();
  spec.book_ahead = -0.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = base_spec();
  spec.kind = TraceKind::kBursty;
  spec.burst_hot_p = -0.1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = base_spec();
  spec.kind = TraceKind::kFile;
  EXPECT_THROW(spec.validate(), std::invalid_argument);  // empty path
  spec.path = "somewhere.trace";
  EXPECT_NO_THROW(spec.validate());
}

TEST(GenerateTrace, RejectsFileKind) {
  auto spec = base_spec();
  spec.kind = TraceKind::kFile;
  spec.path = "somewhere.trace";
  EXPECT_THROW((void)generate_trace(spec, sim::Rng(1)),
               std::invalid_argument);
}

TEST(TraceKindNames, RoundTrip) {
  EXPECT_EQ(to_string(TraceKind::kPoisson), "poisson");
  EXPECT_EQ(to_string(TraceKind::kBursty), "bursty");
  EXPECT_EQ(to_string(TraceKind::kFile), "file");
}

}  // namespace
}  // namespace bevr::admission
