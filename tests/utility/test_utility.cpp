#include "bevr/utility/utility.h"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace bevr::utility {
namespace {

std::vector<std::shared_ptr<const UtilityFunction>> all_utilities() {
  return {
      std::make_shared<Elastic>(),
      std::make_shared<Rigid>(1.0),
      std::make_shared<Rigid>(2.5),
      std::make_shared<AdaptiveExp>(),
      std::make_shared<PiecewiseLinear>(0.3),
      std::make_shared<PiecewiseLinear>(0.8),
      std::make_shared<AlgebraicTail>(1.0),
      std::make_shared<AlgebraicTail>(3.0),
  };
}

// Paper contract (§2): π(0) = 0, π nondecreasing, π(∞) = 1, range [0,1].
TEST(UtilityContract, ZeroAtOriginForAll) {
  for (const auto& pi : all_utilities()) {
    EXPECT_EQ(pi->value(0.0), 0.0) << pi->name();
  }
}

TEST(UtilityContract, NondecreasingForAll) {
  for (const auto& pi : all_utilities()) {
    double prev = -1.0;
    for (double b = 0.0; b <= 50.0; b += 0.01) {
      const double v = pi->value(b);
      EXPECT_GE(v, prev - 1e-15) << pi->name() << " at b=" << b;
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
      prev = v;
    }
  }
}

TEST(UtilityContract, ApproachesOneForAll) {
  for (const auto& pi : all_utilities()) {
    EXPECT_GT(pi->value(1e6), 0.999) << pi->name();
  }
}

TEST(UtilityContract, NegativeBandwidthThrows) {
  for (const auto& pi : all_utilities()) {
    EXPECT_THROW((void)pi->value(-0.1), std::invalid_argument) << pi->name();
  }
}

TEST(UtilityContract, ZeroBelowIsHonoured) {
  for (const auto& pi : all_utilities()) {
    const double b0 = pi->zero_below();
    if (b0 > 0.0) {
      EXPECT_EQ(pi->value(0.5 * b0), 0.0) << pi->name();
      EXPECT_EQ(pi->value(0.99 * b0), 0.0) << pi->name();
    }
  }
}

TEST(Elastic, ConcaveEverywhere) {
  // Discrete second difference negative throughout.
  const Elastic pi;
  for (double b = 0.01; b < 20.0; b += 0.05) {
    const double d2 =
        pi.value(b + 0.01) - 2.0 * pi.value(b) + pi.value(b - 0.01);
    EXPECT_LT(d2, 0.0) << "b=" << b;
  }
  EXPECT_FALSE(pi.inelastic());
}

TEST(Rigid, StepAtRequirement) {
  const Rigid pi(1.0);
  EXPECT_EQ(pi.value(0.999999), 0.0);
  EXPECT_EQ(pi.value(1.0), 1.0);  // Eq. 1: π(b) = 1 for b ≥ b̂
  EXPECT_EQ(pi.value(5.0), 1.0);
  EXPECT_TRUE(pi.inelastic());
  EXPECT_THROW(Rigid(0.0), std::invalid_argument);
}

TEST(AdaptiveExp, MatchesEquation2) {
  // π(b) = 1 − exp(−b²/(κ+b)).
  const AdaptiveExp pi;
  const double kappa = AdaptiveExp::kPaperKappa;
  for (const double b : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(pi.value(b), 1.0 - std::exp(-b * b / (kappa + b)), 1e-15);
  }
}

TEST(AdaptiveExp, SmallAndLargeBandwidthAsymptotics) {
  // Paper: π(b) ≈ b²/κ for small b and ≈ 1 − e^{−b} for large b.
  const AdaptiveExp pi;
  const double kappa = AdaptiveExp::kPaperKappa;
  // Exactly: π(b) ≈ b²/(κ+b) for small b; b²/κ only to leading order.
  EXPECT_NEAR(pi.value(0.01), 0.01 * 0.01 / (kappa + 0.01), 5e-8);
  EXPECT_NEAR(pi.value(0.01), 0.01 * 0.01 / kappa, 5e-6);
  EXPECT_NEAR(pi.value(30.0), 1.0 - std::exp(-30.0), 1e-11);
}

TEST(AdaptiveExp, ConvexNearOriginConcaveLater) {
  // The convex neighbourhood of the origin is what makes admission
  // control worthwhile (paper §2).
  const AdaptiveExp pi;
  auto second_diff = [&pi](double b) {
    return pi.value(b + 1e-3) - 2.0 * pi.value(b) + pi.value(b - 1e-3);
  };
  EXPECT_GT(second_diff(0.05), 0.0);  // convex near 0
  EXPECT_LT(second_diff(3.0), 0.0);   // concave at high bandwidth
}

TEST(AdaptiveExp, PaperKappaValue) {
  EXPECT_NEAR(AdaptiveExp::kPaperKappa, 0.62086, 1e-12);
  EXPECT_THROW(AdaptiveExp(-1.0), std::invalid_argument);
}

TEST(PiecewiseLinear, MatchesContinuumDefinition) {
  const PiecewiseLinear pi(0.4);
  EXPECT_EQ(pi.value(0.2), 0.0);
  EXPECT_EQ(pi.value(0.4), 0.0);
  EXPECT_NEAR(pi.value(0.7), (0.7 - 0.4) / 0.6, 1e-15);
  EXPECT_EQ(pi.value(1.0), 1.0);
  EXPECT_EQ(pi.value(4.0), 1.0);
}

TEST(PiecewiseLinear, RigidDegenerateCase) {
  // a = 1 reduces to Rigid(1) (paper §3.2).
  const PiecewiseLinear pi(1.0);
  const Rigid rigid(1.0);
  for (const double b : {0.0, 0.5, 0.99, 1.0, 2.0}) {
    EXPECT_EQ(pi.value(b), rigid.value(b)) << "b=" << b;
  }
}

TEST(PiecewiseLinear, FloorValidation) {
  EXPECT_THROW(PiecewiseLinear(-0.1), std::invalid_argument);
  EXPECT_THROW(PiecewiseLinear(1.1), std::invalid_argument);
  EXPECT_FALSE(PiecewiseLinear(0.0).inelastic());
  EXPECT_TRUE(PiecewiseLinear(0.5).inelastic());
}

TEST(AlgebraicTail, MatchesFootnoteForm) {
  const AlgebraicTail pi(2.0);
  EXPECT_EQ(pi.value(0.5), 0.0);
  EXPECT_EQ(pi.value(1.0), 0.0);
  EXPECT_NEAR(pi.value(2.0), 1.0 - 0.25, 1e-15);
  EXPECT_NEAR(pi.value(10.0), 1.0 - 0.01, 1e-15);
  EXPECT_THROW(AlgebraicTail(0.0), std::invalid_argument);
}

TEST(AlgebraicTail, SlowerApproachThanAdaptiveExp) {
  // The §3.3 footnote's point: 1 − π decays algebraically, so at large
  // b the adaptive-exp utility is far closer to 1.
  const AlgebraicTail slow(1.0);
  const AdaptiveExp fast;
  EXPECT_GT(1.0 - slow.value(50.0), 100.0 * (1.0 - fast.value(50.0)));
}

}  // namespace
}  // namespace bevr::utility
