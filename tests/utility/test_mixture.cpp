#include "bevr/utility/mixture.h"

#include <cmath>
#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "bevr/core/fixed_load.h"

namespace bevr::utility {
namespace {

MixtureUtility half_rigid_half_adaptive() {
  return MixtureUtility({{std::make_shared<Rigid>(1.0), 1.0, 1.0},
                         {std::make_shared<AdaptiveExp>(), 1.0, 1.0}});
}

TEST(MixtureUtility, Validation) {
  EXPECT_THROW(MixtureUtility({}), std::invalid_argument);
  EXPECT_THROW(MixtureUtility({{nullptr, 1.0, 1.0}}), std::invalid_argument);
  EXPECT_THROW(
      MixtureUtility({{std::make_shared<Rigid>(1.0), 0.0, 1.0}}),
      std::invalid_argument);
  EXPECT_THROW(
      MixtureUtility({{std::make_shared<Rigid>(1.0), 1.0, -1.0}}),
      std::invalid_argument);
}

TEST(MixtureUtility, WeightsNormalise) {
  // Weights 3:1 are the same mixture as 0.75:0.25.
  const MixtureUtility a({{std::make_shared<Rigid>(1.0), 3.0, 1.0},
                          {std::make_shared<AdaptiveExp>(), 1.0, 1.0}});
  const MixtureUtility b({{std::make_shared<Rigid>(1.0), 0.75, 1.0},
                          {std::make_shared<AdaptiveExp>(), 0.25, 1.0}});
  for (const double band : {0.3, 0.9, 1.5, 4.0}) {
    EXPECT_NEAR(a.value(band), b.value(band), 1e-15);
  }
}

TEST(MixtureUtility, ValueIsWeightedAverage) {
  const auto mix = half_rigid_half_adaptive();
  const Rigid rigid(1.0);
  const AdaptiveExp adaptive;
  for (const double b : {0.0, 0.5, 1.0, 2.0, 10.0}) {
    EXPECT_NEAR(mix.value(b), 0.5 * rigid.value(b) + 0.5 * adaptive.value(b),
                1e-15);
  }
}

TEST(MixtureUtility, ScaleShiftsTheDemand) {
  // A class with scale 2 behaves like rigid flows needing b̂ = 2.
  const MixtureUtility mix({{std::make_shared<Rigid>(1.0), 1.0, 2.0}});
  EXPECT_EQ(mix.value(1.9), 0.0);
  EXPECT_EQ(mix.value(2.0), 1.0);
  EXPECT_DOUBLE_EQ(mix.zero_below(), 2.0);
}

TEST(MixtureUtility, SatisfiesUtilityContract) {
  const auto mix = half_rigid_half_adaptive();
  EXPECT_EQ(mix.value(0.0), 0.0);
  double prev = -1.0;
  for (double b = 0.0; b <= 20.0; b += 0.05) {
    const double v = mix.value(b);
    EXPECT_GE(v, prev - 1e-15);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
  EXPECT_GT(mix.value(1e5), 0.999);
  EXPECT_TRUE(mix.inelastic());
  EXPECT_FALSE(mix.unimodal_total_utility());
  EXPECT_THROW((void)mix.value(-0.1), std::invalid_argument);
}

TEST(MixtureUtility, ZeroBelowIsTheMinimumDeadZone) {
  // Rigid(1) and Rigid(2)@scale 1: utility is zero below 1, not 2.
  const MixtureUtility mix({{std::make_shared<Rigid>(1.0), 1.0, 1.0},
                            {std::make_shared<Rigid>(2.0), 1.0, 1.0}});
  EXPECT_DOUBLE_EQ(mix.zero_below(), 1.0);
  EXPECT_EQ(mix.value(0.9), 0.0);
  EXPECT_DOUBLE_EQ(mix.value(1.5), 0.5);
}

TEST(MixtureUtility, KMaxHandlesMultimodalTotals) {
  // Rigid(1) + Rigid(2) mixture: V(k) has candidate peaks near C/2 and
  // C. V(C) = C·0.5 and V(C/2) = (C/2)·1.0: a tie broken by the +1
  // admitted flow... the scan must land on a genuine maximiser.
  const MixtureUtility mix({{std::make_shared<Rigid>(1.0), 1.0, 1.0},
                            {std::make_shared<Rigid>(2.0), 1.0, 1.0}});
  const double capacity = 100.0;
  const auto kmax = core::k_max(mix, capacity);
  ASSERT_TRUE(kmax.has_value());
  const double at = core::total_utility(mix, capacity, *kmax);
  for (std::int64_t k = 1; k <= 300; ++k) {
    EXPECT_GE(at + 1e-12, core::total_utility(mix, capacity, k))
        << "k=" << k;
  }
}

TEST(MixtureUtility, ElasticOnlyMixtureIsElastic) {
  const MixtureUtility mix({{std::make_shared<Elastic>(), 1.0, 1.0},
                            {std::make_shared<Elastic>(), 1.0, 3.0}});
  EXPECT_FALSE(mix.inelastic());
  EXPECT_DOUBLE_EQ(mix.zero_below(), 0.0);
}

}  // namespace
}  // namespace bevr::utility
