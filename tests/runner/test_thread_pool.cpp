// ThreadPool / parallel_for: every index exactly once, exception
// propagation, inline fallback, and reuse across loops.
#include "bevr/runner/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace bevr::runner {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::int64_t kCount = 1000;
  std::vector<std::atomic<int>> touched(kCount);
  parallel_for(&pool, kCount, [&](std::int64_t i) {
    touched[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& count : touched) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, OversizedRequestIsClampedNotSpawned) {
  // e.g. -1 forced through unsigned must not try to start 4e9 workers.
  ThreadPool pool(ThreadPool::kMaxThreads + 1000);
  EXPECT_EQ(pool.size(), ThreadPool::kMaxThreads);
}

TEST(ThreadPool, ParallelForRunsInlineWithoutPool) {
  std::vector<int> touched(64, 0);
  parallel_for(nullptr, 64, [&](std::int64_t i) {
    touched[static_cast<std::size_t>(i)] += 1;
  });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 64);
}

TEST(ThreadPool, ParallelForZeroAndNegativeCountsAreNoOps) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(&pool, 0, [&](std::int64_t) { ++calls; });
  parallel_for(&pool, -5, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ParallelForPropagatesTaskExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(&pool, 100,
                   [](std::int64_t i) {
                     if (i == 37) throw std::runtime_error("task 37 failed");
                   }),
      std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<int> after{0};
  parallel_for(&pool, 10, [&](std::int64_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPool, MorePoolThreadsThanTasks) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> touched(3);
  parallel_for(&pool, 3, [&](std::int64_t i) {
    touched[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& count : touched) EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, SizeDefaultsToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

}  // namespace
}  // namespace bevr::runner
