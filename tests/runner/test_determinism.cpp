// The runner's headline guarantee: a scenario's emitted payload is a
// pure function of (spec, base_seed) — identical at any thread count,
// with or without the memo cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "bevr/runner/runner.h"

namespace bevr::runner {
namespace {

// Data lines of a JSONL payload ("row" records only, provenance
// stripped), sorted so the comparison is order-insensitive as well.
std::vector<std::string> data_lines(const std::string& payload) {
  std::vector<std::string> lines;
  std::istringstream stream(payload);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.find("\"type\":\"row\"") != std::string::npos) {
      lines.push_back(line);
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

std::string run_jsonl(const ScenarioSpec& spec, unsigned threads,
                      std::uint64_t seed, bool use_cache) {
  std::ostringstream out;
  JsonlSink sink(out);
  RunOptions options;
  options.threads = threads;
  options.base_seed = seed;
  options.use_cache = use_cache;
  run_scenario(spec, options, sink);
  return out.str();
}

ScenarioSpec small_variable_load() {
  ScenarioSpec spec;
  spec.name = "det_variable";
  spec.model = ModelKind::kVariableLoad;
  spec.load = LoadFamily::kExponential;
  spec.util = UtilityFamily::kRigid;
  spec.util_param = 1.0;
  spec.grid = GridSpec{20.0, 300.0, 8, false};
  return spec;
}

TEST(Determinism, VariableLoadPayloadIsThreadCountInvariant) {
  const ScenarioSpec spec = small_variable_load();
  const auto serial = data_lines(run_jsonl(spec, 1, 42, true));
  const auto parallel4 = data_lines(run_jsonl(spec, 4, 42, true));
  const auto parallel7 = data_lines(run_jsonl(spec, 7, 42, true));
  ASSERT_EQ(serial.size(), 8u);
  EXPECT_EQ(serial, parallel4);
  EXPECT_EQ(serial, parallel7);
}

TEST(Determinism, CacheDoesNotChangeThePayload) {
  const ScenarioSpec spec = small_variable_load();
  EXPECT_EQ(data_lines(run_jsonl(spec, 4, 42, true)),
            data_lines(run_jsonl(spec, 4, 42, false)));
}

TEST(Determinism, WelfarePayloadIsThreadCountInvariant) {
  ScenarioSpec spec;
  spec.name = "det_welfare";
  spec.model = ModelKind::kWelfare;
  spec.load = LoadFamily::kPoisson;
  spec.util = UtilityFamily::kRigid;
  spec.util_param = 1.0;
  spec.grid = GridSpec{0.01, 0.4, 5, true};
  EXPECT_EQ(data_lines(run_jsonl(spec, 1, 42, true)),
            data_lines(run_jsonl(spec, 4, 42, true)));
}

TEST(Determinism, SimulationPayloadIsThreadCountInvariantForFixedSeed) {
  ScenarioSpec spec;
  spec.name = "det_sim";
  spec.model = ModelKind::kSimulation;
  spec.load = LoadFamily::kPoisson;
  spec.load_mean = 50.0;
  spec.util = UtilityFamily::kRigid;
  spec.util_param = 1.0;
  spec.grid = GridSpec{40.0, 80.0, 3, false};
  spec.sim_horizon = 300.0;
  spec.sim_warmup = 50.0;

  const auto serial = data_lines(run_jsonl(spec, 1, 7, true));
  const auto parallel = data_lines(run_jsonl(spec, 4, 7, true));
  ASSERT_EQ(serial.size(), 3u);
  // Bit-identical: per-task RNG is derived from (base_seed, index),
  // never from which worker ran the task.
  EXPECT_EQ(serial, parallel);
  // ... but a different base seed really does change the draws.
  EXPECT_NE(serial, data_lines(run_jsonl(spec, 1, 8, true)));
}

TEST(Determinism, VectorSinkMatchesJsonlRowOrder) {
  const ScenarioSpec spec = small_variable_load();
  VectorSink sink;
  RunOptions options;
  options.threads = 4;
  run_scenario(spec, options, sink);
  ASSERT_EQ(sink.rows().size(), 8u);
  for (std::size_t i = 0; i < sink.rows().size(); ++i) {
    EXPECT_EQ(sink.rows()[i].index, i);  // grid order, not completion order
  }
  EXPECT_EQ(sink.columns(), scenario_columns(spec));
  EXPECT_EQ(sink.summary().rows, 8u);
  EXPECT_GT(sink.summary().cache.hits + sink.summary().cache.misses, 0u);
}

TEST(Determinism, CsvAndJsonlAgreeOnValues) {
  ScenarioSpec spec = small_variable_load();
  spec.grid.points = 3;
  std::ostringstream csv_out;
  CsvSink csv(csv_out);
  RunOptions options;
  run_scenario(spec, options, csv);
  VectorSink vec;
  run_scenario(spec, options, vec);
  // Spot-check: every value formatted into the CSV appears verbatim.
  const std::string payload = csv_out.str();
  for (const auto& row : vec.rows()) {
    for (const double value : row.values) {
      EXPECT_NE(payload.find(format_value(value)), std::string::npos)
          << "missing " << format_value(value);
    }
  }
}

}  // namespace
}  // namespace bevr::runner
