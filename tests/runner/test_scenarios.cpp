// ScenarioSpec validation, factories, grids, and the built-in
// paper-figure registry.
#include "bevr/runner/scenario.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bevr::runner {
namespace {

TEST(GridSpec, LinearGridHitsBothEndpoints) {
  const GridSpec grid{10.0, 400.0, 40, false};
  const auto values = grid.values();
  ASSERT_EQ(values.size(), 40u);
  EXPECT_DOUBLE_EQ(values.front(), 10.0);
  EXPECT_DOUBLE_EQ(values.back(), 400.0);
}

TEST(GridSpec, LogGridHitsBothEndpoints) {
  const GridSpec grid{1e-3, 0.4, 9, true};
  const auto values = grid.values();
  ASSERT_EQ(values.size(), 9u);
  EXPECT_NEAR(values.front(), 1e-3, 1e-12);
  EXPECT_NEAR(values.back(), 0.4, 1e-12);
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_GT(values[i], values[i - 1]);
  }
}

TEST(GridSpec, SinglePointGridIsJustLo) {
  const GridSpec grid{50.0, 50.0, 1, false};
  const auto values = grid.values();
  ASSERT_EQ(values.size(), 1u);
  EXPECT_DOUBLE_EQ(values[0], 50.0);
}

TEST(ScenarioSpec, ValidateRejectsBadGrids) {
  ScenarioSpec spec;
  spec.name = "bad";
  spec.grid = GridSpec{100.0, 10.0, 40, false};  // lo > hi
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.grid = GridSpec{10.0, 100.0, 0, false};  // no points
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec.grid = GridSpec{10.0, 100.0, 40, false};
  EXPECT_NO_THROW(spec.validate());
}

TEST(ScenarioSpec, ValidateRejectsAlgebraicWithoutFiniteMean) {
  ScenarioSpec spec;
  spec.name = "bad_z";
  spec.load = LoadFamily::kAlgebraic;
  spec.load_param = 2.0;  // needs z > 2
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioFactories, LoadsReportThePaperMean) {
  ScenarioSpec spec;
  spec.name = "loads";
  for (const LoadFamily family :
       {LoadFamily::kPoisson, LoadFamily::kExponential,
        LoadFamily::kAlgebraic}) {
    spec.load = family;
    spec.load_param = 3.0;
    const auto load = make_load(spec);
    EXPECT_NEAR(load->mean(), 100.0, 1e-6) << to_string(family);
  }
}

TEST(ScenarioFactories, ContinuumUsesClosedFormsWhereAvailable) {
  ScenarioSpec spec;
  spec.name = "cont";
  spec.model = ModelKind::kContinuum;
  spec.load = LoadFamily::kExponential;
  spec.util = UtilityFamily::kRigid;
  spec.util_param = 1.0;
  EXPECT_NE(dynamic_cast<const core::ExponentialRigidContinuum*>(
                make_continuum_model(spec).get()),
            nullptr);
  spec.load = LoadFamily::kAlgebraic;
  spec.load_param = 2.5;
  EXPECT_NE(dynamic_cast<const core::AlgebraicRigidContinuum*>(
                make_continuum_model(spec).get()),
            nullptr);
  // No continuum analogue for Poisson loads.
  spec.load = LoadFamily::kPoisson;
  EXPECT_THROW(make_continuum_model(spec), std::invalid_argument);
}

TEST(ScenarioRegistry, BuiltinContainsThePaperFigureSuite) {
  const auto& registry = ScenarioRegistry::builtin();
  for (const char* name :
       {"fig2_rigid", "fig2_adaptive", "fig3_rigid", "fig3_adaptive",
        "fig4_rigid", "fig4_adaptive", "fig2_welfare_rigid",
        "fig3_welfare_adaptive", "fig4_welfare_rigid", "fixed_load_rigid",
        "continuum_exp_rigid", "continuum_alg_adaptive",
        "sim_mm_inf_validation"}) {
    EXPECT_NE(registry.find(name), nullptr) << name;
  }
  // Figure scenarios carry the paper's k̄ = 100 and grids.
  const ScenarioSpec* fig3 = registry.find("fig3_rigid");
  ASSERT_NE(fig3, nullptr);
  EXPECT_EQ(fig3->model, ModelKind::kVariableLoad);
  EXPECT_EQ(fig3->load, LoadFamily::kExponential);
  EXPECT_DOUBLE_EQ(fig3->load_mean, 100.0);
  EXPECT_EQ(fig3->grid.points, 40);
}

TEST(ScenarioRegistry, MatchFiltersBySubstring) {
  const auto& registry = ScenarioRegistry::builtin();
  const auto fig4 = registry.match("fig4");
  EXPECT_EQ(fig4.size(), 4u);  // rigid, adaptive, welfare_rigid, welfare_adaptive
  EXPECT_TRUE(registry.match("no_such_scenario").empty());
  // Every built-in spec validates.
  for (const auto& spec : registry.all()) {
    EXPECT_NO_THROW(spec.validate()) << spec.name;
  }
}

TEST(ScenarioRegistry, AddRejectsDuplicates) {
  ScenarioRegistry registry;
  ScenarioSpec spec;
  spec.name = "dup";
  registry.add(spec);
  EXPECT_THROW(registry.add(spec), std::invalid_argument);
}

}  // namespace
}  // namespace bevr::runner
