// SnapshottingSink: the decorator must forward every sink event to the
// wrapped sink unchanged while appending one valid JSON snapshot line
// every N rows plus a final one.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "../obs/json_lite.h"
#include "bevr/runner/result_sink.h"

namespace bevr::runner {
namespace {

RunMetadata sample_metadata() {
  RunMetadata metadata;
  metadata.scenario = "fig2_poisson";
  metadata.model = "best_effort";
  metadata.base_seed = 42;
  metadata.threads = 4;
  return metadata;
}

/// Drive a sink through begin / `rows` rows / finish.
void drive(ResultSink& sink, std::size_t rows) {
  sink.begin(sample_metadata(), {"load", "welfare"});
  for (std::size_t i = 0; i < rows; ++i) {
    ResultRow row;
    row.index = i;
    row.values = {static_cast<double>(i), 0.5};
    sink.row(row);
  }
  RunSummary summary;
  summary.rows = rows;
  sink.finish(summary);
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(SnapshottingSink, EmitsEveryNRowsPlusFinal) {
  VectorSink inner;
  std::ostringstream out;
  SnapshottingSink sink(inner, out, 3);
  drive(sink, 10);
  // Periodic at rows 3, 6, 9 plus the final one.
  EXPECT_EQ(sink.snapshots_written(), 4u);
  EXPECT_EQ(lines_of(out.str()).size(), 4u);
}

TEST(SnapshottingSink, EveryZeroWritesOnlyTheFinalSnapshot) {
  VectorSink inner;
  std::ostringstream out;
  SnapshottingSink sink(inner, out, 0);
  drive(sink, 10);
  EXPECT_EQ(sink.snapshots_written(), 1u);
  EXPECT_EQ(lines_of(out.str()).size(), 1u);
}

TEST(SnapshottingSink, LinesAreValidJsonSnapshots) {
  VectorSink inner;
  std::ostringstream out;
  SnapshottingSink sink(inner, out, 2);
  drive(sink, 4);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 3u);  // rows 2 and 4, then final
  for (const std::string& line : lines) {
    EXPECT_TRUE(bevr::test_json::valid_json(line)) << line;
    EXPECT_NE(line.find("\"type\":\"snapshot\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"scenario\":\"fig2_poisson\""), std::string::npos)
        << line;
    EXPECT_NE(line.find("\"metrics\":"), std::string::npos) << line;
  }
  EXPECT_NE(lines[0].find("\"phase\":\"periodic\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"rows\":2"), std::string::npos);
  EXPECT_NE(lines.back().find("\"phase\":\"final\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"rows\":4"), std::string::npos);
}

TEST(SnapshottingSink, ForwardsEverythingToTheInnerSink) {
  VectorSink inner;
  std::ostringstream out;
  SnapshottingSink sink(inner, out, 2);
  drive(sink, 5);
  EXPECT_EQ(inner.metadata().scenario, "fig2_poisson");
  EXPECT_EQ(inner.metadata().base_seed, 42u);
  ASSERT_EQ(inner.columns().size(), 2u);
  EXPECT_EQ(inner.columns()[1], "welfare");
  ASSERT_EQ(inner.rows().size(), 5u);
  EXPECT_EQ(inner.rows()[3].index, 3u);
  EXPECT_DOUBLE_EQ(inner.rows()[3].values[0], 3.0);
  EXPECT_EQ(inner.summary().rows, 5u);
}

TEST(SnapshottingSink, SecondScenarioResetsTheRowCounter) {
  VectorSink inner;
  std::ostringstream out;
  SnapshottingSink sink(inner, out, 4);
  drive(sink, 3);  // no periodic snapshot; one final
  drive(sink, 5);  // periodic at row 4; one final
  EXPECT_EQ(sink.snapshots_written(), 3u);
}

}  // namespace
}  // namespace bevr::runner
