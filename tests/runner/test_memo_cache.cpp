// MemoCache + MemoizedVariableLoad: bitwise equality with uncached
// evaluation, hit/miss accounting, and concurrent access.
#include "bevr/runner/memo_cache.h"

#include <gtest/gtest.h>

#include <memory>

#include "bevr/core/variable_load.h"
#include "bevr/dist/exponential.h"
#include "bevr/runner/memoized_model.h"
#include "bevr/runner/thread_pool.h"
#include "bevr/utility/utility.h"

namespace bevr::runner {
namespace {

TEST(MemoCache, FirstCallMissesSecondHits) {
  MemoCache cache;
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return 42.5;
  };
  EXPECT_EQ(cache.get_or_compute("op", 1.0, compute), 42.5);
  EXPECT_EQ(cache.get_or_compute("op", 1.0, compute), 42.5);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(MemoCache, DistinctOpsAndArgsDoNotCollide) {
  MemoCache cache;
  EXPECT_EQ(cache.get_or_compute("a", 1.0, [] { return 1.0; }), 1.0);
  EXPECT_EQ(cache.get_or_compute("b", 1.0, [] { return 2.0; }), 2.0);
  EXPECT_EQ(cache.get_or_compute("a", 2.0, [] { return 3.0; }), 3.0);
  EXPECT_EQ(cache.get_or_compute2("a", 1.0, 5.0, [] { return 4.0; }), 4.0);
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(MemoCache, DisabledCacheAlwaysComputes) {
  MemoCache cache(/*enabled=*/false);
  int computes = 0;
  const auto compute = [&] {
    ++computes;
    return 7.0;
  };
  EXPECT_EQ(cache.get_or_compute("op", 1.0, compute), 7.0);
  EXPECT_EQ(cache.get_or_compute("op", 1.0, compute), 7.0);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(MemoCache, ClearResetsEntriesAndCounters) {
  MemoCache cache;
  (void)cache.get_or_compute("op", 1.0, [] { return 1.0; });
  (void)cache.get_or_compute("op", 1.0, [] { return 1.0; });
  cache.clear();
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  int computes = 0;
  (void)cache.get_or_compute("op", 1.0, [&] {
    ++computes;
    return 1.0;
  });
  EXPECT_EQ(computes, 1);
}

TEST(MemoCache, ConcurrentAccessIsConsistent) {
  MemoCache cache;
  ThreadPool pool(4);
  parallel_for(&pool, 512, [&](std::int64_t i) {
    const double key = static_cast<double>(i % 16);
    const double value =
        cache.get_or_compute("square", key, [&] { return key * key; });
    ASSERT_EQ(value, key * key);
  });
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 512u);
  // 16 distinct keys; duplicated concurrent misses are possible but
  // bounded by the number of racing tasks.
  EXPECT_GE(stats.hits, 1u);
}

class MemoizedModelTest : public ::testing::Test {
 protected:
  std::shared_ptr<const core::VariableLoadModel> model_ =
      std::make_shared<core::VariableLoadModel>(
          std::make_shared<dist::ExponentialLoad>(
              dist::ExponentialLoad::with_mean(100.0)),
          std::make_shared<utility::Rigid>(1.0));
};

TEST_F(MemoizedModelTest, CachedValuesAreBitwiseEqualToUncached) {
  auto cache = std::make_shared<MemoCache>();
  const MemoizedVariableLoad memoized(model_, cache);
  for (const double c : {12.5, 80.0, 100.0, 250.0, 640.0}) {
    // First call populates the cache, second replays from it; both
    // must be bitwise-identical to the raw model.
    for (int round = 0; round < 2; ++round) {
      EXPECT_EQ(memoized.best_effort(c), model_->best_effort(c));
      EXPECT_EQ(memoized.reservation(c), model_->reservation(c));
      EXPECT_EQ(memoized.total_best_effort(c), model_->total_best_effort(c));
      EXPECT_EQ(memoized.total_reservation(c), model_->total_reservation(c));
      EXPECT_EQ(memoized.performance_gap(c), model_->performance_gap(c));
      EXPECT_EQ(memoized.bandwidth_gap(c), model_->bandwidth_gap(c));
      EXPECT_EQ(memoized.blocking_fraction(c), model_->blocking_fraction(c));
      EXPECT_EQ(memoized.k_max(c), model_->k_max(c));
    }
  }
  EXPECT_GT(cache->stats().hits, 0u);
}

TEST_F(MemoizedModelTest, NullCachePassesThrough) {
  const MemoizedVariableLoad memoized(model_, nullptr);
  EXPECT_EQ(memoized.best_effort(100.0), model_->best_effort(100.0));
  EXPECT_EQ(memoized.k_max(100.0), model_->k_max(100.0));
}

TEST_F(MemoizedModelTest, TwoModelsSharingACacheDoNotAlias) {
  // Same load but a different bandwidth requirement: values differ at
  // equal capacities, and the shared cache must keep them apart.
  auto other_model = std::make_shared<core::VariableLoadModel>(
      std::make_shared<dist::ExponentialLoad>(
          dist::ExponentialLoad::with_mean(100.0)),
      std::make_shared<utility::Rigid>(2.0));

  auto cache = std::make_shared<MemoCache>();
  const MemoizedVariableLoad a(model_, cache);
  const MemoizedVariableLoad b(other_model, cache);
  const double c = 150.0;
  ASSERT_NE(model_->best_effort(c), other_model->best_effort(c));
  EXPECT_EQ(a.best_effort(c), model_->best_effort(c));
  EXPECT_EQ(b.best_effort(c), other_model->best_effort(c));
  // Replays hit the right entries too.
  EXPECT_EQ(a.best_effort(c), model_->best_effort(c));
  EXPECT_EQ(b.best_effort(c), other_model->best_effort(c));
}

TEST(MemoizedElastic, KmaxNulloptRoundTripsThroughCache) {
  auto model = std::make_shared<core::VariableLoadModel>(
      std::make_shared<dist::ExponentialLoad>(
          dist::ExponentialLoad::with_mean(100.0)),
      std::make_shared<utility::Elastic>());
  auto cache = std::make_shared<MemoCache>();
  const MemoizedVariableLoad memoized(model, cache);
  EXPECT_EQ(memoized.k_max(100.0), std::nullopt);
  EXPECT_EQ(memoized.k_max(100.0), std::nullopt);  // replay from cache
  EXPECT_GT(cache->stats().hits, 0u);
}

}  // namespace
}  // namespace bevr::runner
