#!/usr/bin/env bash
# Regenerate tests/golden/*.csv from the current build.
#
# A golden is the bevr_run CSV for one registry scenario (default run
# options: seed 42, cache on, kernels on, bandwidth-gap column where
# the spec asks for it) with the '#' provenance comments stripped —
# the same normalisation tests/golden/test_golden.cpp applies.
#
# Only run this after an INTENTIONAL value change, and review the
# resulting diff like any other code change: a golden refresh that
# touches scenarios you did not mean to change is a regression caught,
# not noise to commit.
#
# Usage: scripts/update_goldens.sh [build-dir]   (default: build)
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
bevr_run="$build_dir/examples/bevr_run"
golden_dir="$repo_root/tests/golden"

if [[ ! -x "$bevr_run" ]]; then
  echo "error: $bevr_run not built (cmake --build $build_dir --target bevr_run)" >&2
  exit 1
fi

# Scenario names, one per line, from the registry itself.
# Drop the header line and the trailing "N scenario(s)" count.
scenarios=$("$bevr_run" --list | awk 'NR > 1 && NF > 2 {print $1}')

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT
for scenario in $scenarios; do
  "$bevr_run" "$scenario" --threads 4 --output "$tmp" >/dev/null
  grep -v '^#' "$tmp" > "$golden_dir/$scenario.csv"
  echo "wrote tests/golden/$scenario.csv"
done
