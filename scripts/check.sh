#!/usr/bin/env bash
# Repo verification: the tier-1 build+test pass, then an ASan+UBSan
# run of the runner subsystem's tests (the code with real concurrency),
# then a TSan run of the runner + obs + service + admission + net2
# suites (the sharded metrics registry, trace buffers, the evaluation
# service's ticket queue / worker pool, the admission calendar's
# expiry-vs-cancellation races, and the net2 ledger's concurrent
# path-admission rollback are the raciest code in the tree).
#
# Usage: scripts/check.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== tier-1: configure, build, ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

echo "== bench smoke =="
# Tiny-workload pass over all suites: exercises every figure/claim
# path and the suites' built-in contracts, and writes the artifact the
# regression gate consumes.
./build/bench/bevr_bench --smoke --json-out BENCH_smoke.json
# The gate must agree an artifact does not regress against itself.
./build/bench/bevr_bench --compare BENCH_smoke.json --baseline BENCH_smoke.json
if [ -f bench/baselines/BENCH_smoke.json ]; then
  ./build/bench/bevr_bench --compare BENCH_smoke.json \
    --baseline bench/baselines/BENCH_smoke.json --threshold 1.0
else
  echo "(no bench/baselines/BENCH_smoke.json — skipping baseline compare)"
fi

echo "== bench smoke: service suites vs committed baseline =="
# The service suites carry their own contracts (lossless accounting,
# bit-equality of served values, clean shedding under overload); gate
# their smoke timings against the committed baseline too.
./build/bench/bevr_bench service --smoke --json-out BENCH_service.json
if [ -f bench/baselines/BENCH_service.json ]; then
  ./build/bench/bevr_bench --compare BENCH_service.json \
    --baseline bench/baselines/BENCH_service.json --threshold 1.0
else
  echo "(no bench/baselines/BENCH_service.json — skipping baseline compare)"
fi

echo "== bench smoke: admission suites vs committed baseline =="
# The admission suites assert the calendar's conservation laws and the
# policy comparison's determinism; gate their smoke timings too.
./build/bench/bevr_bench admission --smoke --json-out BENCH_admission.json
if [ -f bench/baselines/BENCH_admission.json ]; then
  ./build/bench/bevr_bench --compare BENCH_admission.json \
    --baseline bench/baselines/BENCH_admission.json --threshold 1.0
else
  echo "(no bench/baselines/BENCH_admission.json — skipping baseline compare)"
fi

echo "== bench smoke: net2 suites vs committed baseline =="
# The net2 suites assert the path-admission conservation laws, the
# network policy comparison's contracts, and mean-field convergence;
# gate their smoke timings too.
./build/bench/bevr_bench net2 --smoke --json-out BENCH_net2.json
if [ -f bench/baselines/BENCH_net2.json ]; then
  ./build/bench/bevr_bench --compare BENCH_net2.json \
    --baseline bench/baselines/BENCH_net2.json --threshold 1.0
else
  echo "(no bench/baselines/BENCH_net2.json — skipping baseline compare)"
fi

echo "== bench full: obs overhead gate vs committed baseline =="
# Full mode on purpose: the obs suite's sweep-overhead contract only
# enforces the <= 5% fully-instrumented bound when the workload is big
# enough to average out scheduler noise (--smoke loosens it to 25%).
./build/bench/bevr_bench obs --json-out BENCH_obs.json
if [ -f bench/baselines/BENCH_obs.json ]; then
  ./build/bench/bevr_bench --compare BENCH_obs.json \
    --baseline bench/baselines/BENCH_obs.json --threshold 1.0
else
  echo "(no bench/baselines/BENCH_obs.json — skipping baseline compare)"
fi

echo "== sanitized: ASan+UBSan runner + sim + net2 tests =="
cmake -B build-asan -S . -DBEVR_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-asan -j "${JOBS}" --target bevr_runner_tests bevr_sim_tests \
  bevr_net2_tests
./build-asan/tests/bevr_runner_tests
./build-asan/tests/bevr_sim_tests
./build-asan/tests/bevr_net2_tests

echo "== sanitized: TSan runner + obs + service + admission + net2 tests =="
cmake -B build-tsan -S . -DBEVR_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-tsan -j "${JOBS}" --target bevr_runner_tests bevr_obs_tests \
  bevr_service_tests bevr_admission_tests bevr_net2_tests
./build-tsan/tests/bevr_runner_tests
./build-tsan/tests/bevr_obs_tests
./build-tsan/tests/bevr_service_tests
./build-tsan/tests/bevr_admission_tests
./build-tsan/tests/bevr_net2_tests

echo "== all checks passed =="
