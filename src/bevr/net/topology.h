// Network topology: nodes, directed links with capacities, and
// min-hop routing. The paper analyses a single link; the substrate
// supports multi-hop paths so the RSVP-style signalling is exercised
// end-to-end (per-link admission along a route).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace bevr::net {

using NodeId = std::int32_t;
using LinkId = std::int32_t;

struct LinkInfo {
  NodeId from = -1;
  NodeId to = -1;
  double capacity = 0.0;
};

class Topology {
 public:
  /// Add a node; returns its id.
  NodeId add_node(std::string name);

  /// Add a bidirectional link of the given capacity between two nodes;
  /// returns the id of the forward direction (the reverse gets id+1).
  LinkId add_link(NodeId a, NodeId b, double capacity);

  [[nodiscard]] std::size_t node_count() const { return node_names_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const LinkInfo& link(LinkId id) const;
  [[nodiscard]] const std::string& node_name(NodeId id) const;

  /// Min-hop route from `src` to `dst` as a sequence of link ids
  /// (BFS); nullopt when unreachable.
  [[nodiscard]] std::optional<std::vector<LinkId>> route(NodeId src,
                                                         NodeId dst) const;

 private:
  void check_node(NodeId id) const;

  std::vector<std::string> node_names_;
  std::vector<LinkInfo> links_;
  std::vector<std::vector<LinkId>> outgoing_;  // per node
};

}  // namespace bevr::net
