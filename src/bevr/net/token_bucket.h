// Token-bucket traffic specification and policer (int-serv TSpec,
// paper refs [12,16,17]).
//
// A flow's traffic specification in the integrated-services
// architecture is a token bucket (rate r, depth b): over any interval
// of length t the flow may send at most r·t + b. The policer below is
// the continuous-time version used by the reservation substrate to
// decide conformance.
#pragma once

namespace bevr::net {

class TokenBucket {
 public:
  /// `rate` tokens accrue per unit time, up to `depth` stored tokens.
  /// The bucket starts full.
  TokenBucket(double rate, double depth);

  /// True iff `amount` tokens are available at time `now`; if so they
  /// are consumed. `now` must be nondecreasing across calls.
  [[nodiscard]] bool consume(double now, double amount);

  /// Tokens available at time `now` without consuming.
  [[nodiscard]] double available(double now) const;

  [[nodiscard]] double rate() const { return rate_; }
  [[nodiscard]] double depth() const { return depth_; }

 private:
  void refill(double now) const;

  double rate_;
  double depth_;
  mutable double tokens_;
  mutable double last_refill_ = 0.0;
};

}  // namespace bevr::net
