#include "bevr/net/scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bevr::net {

FluidScheduler::FluidScheduler(double capacity) : capacity_(capacity) {
  if (!(capacity > 0.0)) {
    throw std::invalid_argument("FluidScheduler: capacity must be > 0");
  }
}

std::vector<Allocation> FluidScheduler::allocate(
    const std::vector<SchedulableFlow>& flows) const {
  double reserved_total = 0.0;
  for (const auto& flow : flows) {
    if (!(flow.reserved_rate >= 0.0) || !(flow.weight > 0.0) ||
        !(flow.demand >= 0.0)) {
      throw std::invalid_argument("FluidScheduler: invalid flow parameters");
    }
    reserved_total += flow.reserved_rate;
  }
  if (reserved_total > capacity_ * (1.0 + 1e-9)) {
    throw std::invalid_argument(
        "FluidScheduler: reservations exceed capacity (admission bug)");
  }

  std::vector<Allocation> result(flows.size());
  std::vector<double> residual(flows.size());
  double allocated = 0.0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    result[i].id = flows[i].id;
    // Guaranteed floor: a reserved flow owns min(demand, reservation).
    result[i].rate = std::min(flows[i].demand, flows[i].reserved_rate);
    residual[i] = flows[i].demand - result[i].rate;
    allocated += result[i].rate;
  }

  // Progressive water-filling of the leftover by weight.
  double leftover = capacity_ - allocated;
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (residual[i] > 0.0) active.push_back(i);
  }
  while (leftover > 1e-12 && !active.empty()) {
    double weight_sum = 0.0;
    for (const std::size_t i : active) weight_sum += flows[i].weight;
    const double per_weight = leftover / weight_sum;
    bool someone_capped = false;
    std::vector<std::size_t> still_active;
    still_active.reserve(active.size());
    for (const std::size_t i : active) {
      const double offer = per_weight * flows[i].weight;
      if (residual[i] <= offer * (1.0 + 1e-12)) {
        // The flow's demand saturates below its fair share: give it all
        // it wants and redistribute the rest next round.
        result[i].rate += residual[i];
        leftover -= residual[i];
        residual[i] = 0.0;
        someone_capped = true;
      } else {
        still_active.push_back(i);
      }
    }
    if (!someone_capped) {
      // Everyone can absorb the full fair share: final round.
      for (const std::size_t i : still_active) {
        const double offer = per_weight * flows[i].weight;
        result[i].rate += offer;
        residual[i] -= offer;
      }
      leftover = 0.0;
      break;
    }
    active = std::move(still_active);
  }
  return result;
}

}  // namespace bevr::net
