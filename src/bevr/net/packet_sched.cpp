#include "bevr/net/packet_sched.h"

#include <algorithm>
#include <stdexcept>

namespace bevr::net {

void FifoScheduler::enqueue(const Packet& packet) {
  if (!(packet.size > 0.0)) {
    throw std::invalid_argument("FifoScheduler: packet size must be > 0");
  }
  queue_.push(packet);
}

Packet FifoScheduler::dequeue() {
  if (queue_.empty()) throw std::logic_error("FifoScheduler: empty dequeue");
  Packet packet = queue_.front();
  queue_.pop();
  return packet;
}

WfqScheduler::WfqScheduler(double capacity) : capacity_(capacity) {
  if (!(capacity > 0.0)) {
    throw std::invalid_argument("WfqScheduler: capacity must be > 0");
  }
}

void WfqScheduler::add_flow(std::uint64_t flow, double weight) {
  if (!(weight > 0.0)) {
    throw std::invalid_argument("WfqScheduler: weight must be > 0");
  }
  if (!flows_.emplace(flow, FlowState{weight, 0.0, 0}).second) {
    throw std::invalid_argument("WfqScheduler: duplicate flow");
  }
}

void WfqScheduler::advance_virtual_time(double now) {
  if (now < last_event_time_) {
    throw std::invalid_argument("WfqScheduler: time went backwards");
  }
  if (active_weight_ > 0.0) {
    // GPS: the virtual clock ticks at C/Σ_active w, so a backlogged
    // flow of weight w drains size/w of tag per unit of virtual time
    // while receiving real rate C·w/Σw.
    virtual_time_ += (now - last_event_time_) * capacity_ / active_weight_;
  }
  last_event_time_ = now;
}

void WfqScheduler::enqueue(const Packet& packet) {
  if (!(packet.size > 0.0)) {
    throw std::invalid_argument("WfqScheduler: packet size must be > 0");
  }
  const auto it = flows_.find(packet.flow);
  if (it == flows_.end()) {
    throw std::invalid_argument("WfqScheduler: unknown flow (add_flow first)");
  }
  FlowState& flow = it->second;
  if (heap_.empty() && active_weight_ == 0.0) {
    // New busy period: the GPS reference system restarts.
    virtual_time_ = 0.0;
    last_event_time_ = packet.arrival_time;
    for (auto& entry : flows_) entry.second.last_finish_tag = 0.0;
  } else {
    advance_virtual_time(packet.arrival_time);
  }
  Tagged tagged;
  tagged.packet = packet;
  tagged.start_tag = std::max(flow.last_finish_tag, virtual_time_);
  tagged.finish_tag = tagged.start_tag + packet.size / flow.weight;
  tagged.seq = next_seq_++;
  flow.last_finish_tag = tagged.finish_tag;
  if (flow.backlog == 0) active_weight_ += flow.weight;
  ++flow.backlog;
  heap_.push(tagged);
}

bool WfqScheduler::backlogged() const { return !heap_.empty(); }

Packet WfqScheduler::dequeue() {
  if (heap_.empty()) throw std::logic_error("WfqScheduler: empty dequeue");
  const Tagged tagged = heap_.top();
  heap_.pop();
  FlowState& flow = flows_.at(tagged.packet.flow);
  --flow.backlog;
  if (flow.backlog == 0) active_weight_ -= flow.weight;
  return tagged.packet;
}

}  // namespace bevr::net
