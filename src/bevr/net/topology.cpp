#include "bevr/net/topology.h"

#include <queue>
#include <stdexcept>
#include <utility>

namespace bevr::net {

NodeId Topology::add_node(std::string name) {
  node_names_.push_back(std::move(name));
  outgoing_.emplace_back();
  return static_cast<NodeId>(node_names_.size() - 1);
}

LinkId Topology::add_link(NodeId a, NodeId b, double capacity) {
  check_node(a);
  check_node(b);
  if (a == b) throw std::invalid_argument("Topology: self-loop link");
  if (!(capacity > 0.0)) {
    throw std::invalid_argument("Topology: capacity must be > 0");
  }
  const auto forward = static_cast<LinkId>(links_.size());
  links_.push_back({a, b, capacity});
  outgoing_[static_cast<std::size_t>(a)].push_back(forward);
  const auto reverse = static_cast<LinkId>(links_.size());
  links_.push_back({b, a, capacity});
  outgoing_[static_cast<std::size_t>(b)].push_back(reverse);
  return forward;
}

const LinkInfo& Topology::link(LinkId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= links_.size()) {
    throw std::out_of_range("Topology: bad link id");
  }
  return links_[static_cast<std::size_t>(id)];
}

const std::string& Topology::node_name(NodeId id) const {
  check_node(id);
  return node_names_[static_cast<std::size_t>(id)];
}

std::optional<std::vector<LinkId>> Topology::route(NodeId src,
                                                   NodeId dst) const {
  check_node(src);
  check_node(dst);
  if (src == dst) return std::vector<LinkId>{};
  std::vector<LinkId> via(node_names_.size(), -1);
  std::vector<bool> seen(node_names_.size(), false);
  std::queue<NodeId> frontier;
  frontier.push(src);
  seen[static_cast<std::size_t>(src)] = true;
  while (!frontier.empty()) {
    const NodeId node = frontier.front();
    frontier.pop();
    for (const LinkId lid : outgoing_[static_cast<std::size_t>(node)]) {
      const NodeId next = links_[static_cast<std::size_t>(lid)].to;
      if (seen[static_cast<std::size_t>(next)]) continue;
      seen[static_cast<std::size_t>(next)] = true;
      via[static_cast<std::size_t>(next)] = lid;
      if (next == dst) {
        // Reconstruct the path backwards.
        std::vector<LinkId> path;
        NodeId cursor = dst;
        while (cursor != src) {
          const LinkId lid_back = via[static_cast<std::size_t>(cursor)];
          path.push_back(lid_back);
          cursor = links_[static_cast<std::size_t>(lid_back)].from;
        }
        return std::vector<LinkId>(path.rbegin(), path.rend());
      }
      frontier.push(next);
    }
  }
  return std::nullopt;
}

void Topology::check_node(NodeId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= node_names_.size()) {
    throw std::out_of_range("Topology: bad node id");
  }
}

}  // namespace bevr::net
