#include "bevr/net/admission.h"

#include <algorithm>
#include <stdexcept>

namespace bevr::net {

ParameterBasedAdmission::ParameterBasedAdmission(double utilization_bound)
    : bound_(utilization_bound) {
  if (!(bound_ > 0.0) || bound_ > 1.0) {
    throw std::invalid_argument(
        "ParameterBasedAdmission: utilization bound must lie in (0, 1]");
  }
}

bool ParameterBasedAdmission::admit(const LinkAdmissionState& link,
                                    const FlowSpec& request) const {
  request.validate();
  return link.reserved_sum + request.rspec.rate <= bound_ * link.capacity + 1e-12;
}

std::string ParameterBasedAdmission::name() const {
  return "ParameterBased(eta=" + std::to_string(bound_) + ")";
}

MeasurementBasedAdmission::MeasurementBasedAdmission(double utilization_bound)
    : bound_(utilization_bound) {
  if (!(bound_ > 0.0) || bound_ > 1.0) {
    throw std::invalid_argument(
        "MeasurementBasedAdmission: utilization bound must lie in (0, 1]");
  }
}

bool MeasurementBasedAdmission::admit(const LinkAdmissionState& link,
                                      const FlowSpec& request) const {
  request.validate();
  return link.measured_load + request.rspec.rate <=
         bound_ * link.capacity + 1e-12;
}

std::string MeasurementBasedAdmission::name() const {
  return "MeasurementBased(eta=" + std::to_string(bound_) + ")";
}

LoadEstimator::LoadEstimator(double window, double decay)
    : window_(window), decay_(decay) {
  if (!(window > 0.0)) {
    throw std::invalid_argument("LoadEstimator: window must be > 0");
  }
  if (!(decay >= 0.0) || decay >= 1.0) {
    throw std::invalid_argument("LoadEstimator: decay must lie in [0, 1)");
  }
}

void LoadEstimator::observe(double now, double value) {
  if (!started_) {
    started_ = true;
    window_start_ = last_time_ = now;
    last_value_ = value;
    estimate_ = value;
    return;
  }
  if (now < last_time_) {
    throw std::invalid_argument("LoadEstimator: time went backwards");
  }
  window_integral_ += last_value_ * (now - last_time_);
  last_time_ = now;
  last_value_ = value;
  // An admission estimator must react to spikes immediately.
  estimate_ = std::max(estimate_, value);
  while (now - window_start_ >= window_) {
    const double window_avg = window_integral_ / window_;
    estimate_ = std::max(window_avg, decay_ * estimate_ + (1.0 - decay_) * window_avg);
    window_start_ += window_;
    window_integral_ = 0.0;
  }
}

}  // namespace bevr::net
