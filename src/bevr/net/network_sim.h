// End-to-end reservation network experiment: the paper's single-link
// model generalised to a topology. Traffic pairs generate flows
// (Poisson arrivals, exponential holding); each flow signals a
// reservation RSVP-style along its route, every hop runs admission
// control, and committed flows hold their reserved rate until
// departure. Per-pair blocking and utility are measured — showing how
// multi-hop contention (e.g. two pairs sharing a bottleneck) shapes
// the best-effort-versus-reservations trade the paper analyses for a
// single link.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bevr/net/admission.h"
#include "bevr/net/rsvp.h"
#include "bevr/net/topology.h"
#include "bevr/utility/utility.h"

namespace bevr::net {

/// One source-destination traffic aggregate.
struct TrafficPair {
  NodeId src = 0;
  NodeId dst = 0;
  double arrival_rate = 1.0;   ///< flows per unit time
  double mean_holding = 1.0;   ///< mean flow lifetime
  double reserved_rate = 1.0;  ///< bandwidth each flow reserves
  /// Fraction of the reservation the flow actually sends (≤ 1). With a
  /// measurement-based admission controller, utilisation below 1 lets
  /// the network overbook declared reservations (Jamin et al., ref
  /// [8]); a parameter-based controller ignores it.
  double utilization = 1.0;
};

struct NetworkExperimentConfig {
  double horizon = 5000.0;
  double warmup = 250.0;
  std::uint64_t seed = 1;
};

/// Per-pair outcome.
struct PairReport {
  std::uint64_t attempts = 0;
  std::uint64_t blocked = 0;
  double blocking_probability = 0.0;
  double mean_utility = 0.0;  ///< blocked flows score 0
};

struct NetworkReport {
  std::vector<PairReport> pairs;
  double peak_bottleneck_reserved = 0.0;  ///< max Σ reserved on any link
  double peak_bottleneck_usage = 0.0;     ///< max Σ actual usage on any link
};

class NetworkExperiment {
 public:
  NetworkExperiment(std::shared_ptr<Topology> topology,
                    std::shared_ptr<const AdmissionController> admission,
                    std::vector<TrafficPair> pairs,
                    std::shared_ptr<const utility::UtilityFunction> pi,
                    NetworkExperimentConfig config);

  [[nodiscard]] NetworkReport run() const;

 private:
  std::shared_ptr<Topology> topology_;
  std::shared_ptr<const AdmissionController> admission_;
  std::vector<TrafficPair> pairs_;
  std::shared_ptr<const utility::UtilityFunction> pi_;
  NetworkExperimentConfig config_;
};

}  // namespace bevr::net
