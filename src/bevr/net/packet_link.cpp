#include "bevr/net/packet_link.h"

#include <algorithm>
#include <stdexcept>

#include "bevr/obs/metrics.h"

namespace bevr::net {

namespace {

void check_stream_args(double rate, double packet_size, double start,
                       double end) {
  if (!(rate > 0.0) || !(packet_size > 0.0) || !(end > start)) {
    throw std::invalid_argument("packet stream: bad parameters");
  }
}

}  // namespace

std::vector<Packet> cbr_packets(std::uint64_t flow, double rate,
                                double packet_size, double start, double end) {
  check_stream_args(rate, packet_size, start, end);
  std::vector<Packet> packets;
  const double period = packet_size / rate;
  for (double t = start; t < end; t += period) {
    packets.push_back({flow, packet_size, t});
  }
  return packets;
}

std::vector<Packet> token_bucket_burst_packets(std::uint64_t flow,
                                               double sigma, double rho,
                                               double packet_size,
                                               double start, double end) {
  check_stream_args(rho, packet_size, start, end);
  if (!(sigma >= 0.0)) {
    throw std::invalid_argument("token_bucket_burst_packets: sigma >= 0");
  }
  std::vector<Packet> packets;
  // The burst: σ worth of packets all stamped at `start`.
  const auto burst_count = static_cast<std::int64_t>(sigma / packet_size);
  for (std::int64_t i = 0; i < burst_count; ++i) {
    packets.push_back({flow, packet_size, start});
  }
  // Then the sustained stream at rate ρ.
  const double period = packet_size / rho;
  for (double t = start + period; t < end; t += period) {
    packets.push_back({flow, packet_size, t});
  }
  return packets;
}

std::vector<Packet> poisson_packets(std::uint64_t flow, double rate,
                                    double packet_size, double start,
                                    double end, sim::Rng& rng) {
  check_stream_args(rate, packet_size, start, end);
  std::vector<Packet> packets;
  const double mean_gap = packet_size / rate;
  for (double t = start + rng.exponential(mean_gap); t < end;
       t += rng.exponential(mean_gap)) {
    packets.push_back({flow, packet_size, t});
  }
  return packets;
}

PacketLinkReport simulate_link(double capacity, PacketScheduler& scheduler,
                               std::vector<Packet> packets) {
  if (!(capacity > 0.0)) {
    throw std::invalid_argument("simulate_link: capacity must be > 0");
  }
  std::stable_sort(packets.begin(), packets.end(),
                   [](const Packet& a, const Packet& b) {
                     return a.arrival_time < b.arrival_time;
                   });
  struct Accumulator {
    std::uint64_t packets = 0;
    double delay_sum = 0.0;
    double max_delay = 0.0;
    double volume = 0.0;
  };
  std::map<std::uint64_t, Accumulator> accumulators;

  std::size_t next = 0;
  double clock = 0.0;
  double first_arrival = packets.empty() ? 0.0 : packets.front().arrival_time;
  double finish_time = first_arrival;
  while (next < packets.size() || scheduler.backlogged()) {
    if (!scheduler.backlogged()) {
      clock = std::max(clock, packets[next].arrival_time);
    }
    // Everything that has arrived by now joins the queue before the
    // next service decision (non-preemptive).
    while (next < packets.size() &&
           packets[next].arrival_time <= clock + 1e-12) {
      scheduler.enqueue(packets[next]);
      ++next;
    }
    if (!scheduler.backlogged()) continue;
    const Packet packet = scheduler.dequeue();
    const double start = std::max(clock, packet.arrival_time);
    const double done = start + packet.size / capacity;
    clock = done;
    finish_time = done;
    auto& acc = accumulators[packet.flow];
    const double delay = done - packet.arrival_time;
    ++acc.packets;
    acc.delay_sum += delay;
    acc.max_delay = std::max(acc.max_delay, delay);
    acc.volume += packet.size;
  }

  PacketLinkReport report;
  report.finish_time = finish_time;
  const double horizon = std::max(1e-12, finish_time - first_arrival);
  std::uint64_t forwarded = 0;
  for (const auto& [flow, acc] : accumulators) {
    FlowDelayStats stats;
    stats.packets = acc.packets;
    stats.mean_delay = acc.delay_sum / static_cast<double>(acc.packets);
    stats.max_delay = acc.max_delay;
    stats.throughput = acc.volume / horizon;
    report.flows[flow] = stats;
    forwarded += acc.packets;
  }
  // Observability: one batched flush per link simulation. Queues are
  // infinite here, so every packet is eventually forwarded (0 drops);
  // the dropped counter exists so dashboards see an explicit zero.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  if (registry.enabled()) {
    registry.counter("net/packets/forwarded").add(forwarded);
    registry.counter("net/packets/dropped").add(0);
  }
  return report;
}

}  // namespace bevr::net
