#include "bevr/net/network_sim.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "bevr/obs/metrics.h"
#include "bevr/sim/event_queue.h"
#include "bevr/sim/metrics.h"
#include "bevr/sim/rng.h"

namespace bevr::net {

NetworkExperiment::NetworkExperiment(
    std::shared_ptr<Topology> topology,
    std::shared_ptr<const AdmissionController> admission,
    std::vector<TrafficPair> pairs,
    std::shared_ptr<const utility::UtilityFunction> pi,
    NetworkExperimentConfig config)
    : topology_(std::move(topology)),
      admission_(std::move(admission)),
      pairs_(std::move(pairs)),
      pi_(std::move(pi)),
      config_(config) {
  if (!topology_) throw std::invalid_argument("NetworkExperiment: null topology");
  if (!admission_) throw std::invalid_argument("NetworkExperiment: null admission");
  if (!pi_) throw std::invalid_argument("NetworkExperiment: null utility");
  if (pairs_.empty()) {
    throw std::invalid_argument("NetworkExperiment: needs >= 1 traffic pair");
  }
  if (!(config_.horizon > config_.warmup) || !(config_.warmup >= 0.0)) {
    throw std::invalid_argument("NetworkExperiment: horizon > warmup >= 0");
  }
  for (const auto& pair : pairs_) {
    if (!(pair.arrival_rate > 0.0) || !(pair.mean_holding > 0.0) ||
        !(pair.reserved_rate > 0.0) || !(pair.utilization > 0.0) ||
        pair.utilization > 1.0) {
      throw std::invalid_argument("NetworkExperiment: bad traffic pair");
    }
    if (!topology_->route(pair.src, pair.dst)) {
      throw std::invalid_argument("NetworkExperiment: unroutable pair");
    }
  }
}

NetworkReport NetworkExperiment::run() const {
  sim::EventQueue queue;
  sim::Rng rng(config_.seed);
  // Soft state is refreshed implicitly by making the timeout outlive
  // the run; flows tear down explicitly at departure.
  RsvpAgent agent(topology_, admission_, /*refresh_timeout=*/
                  2.0 * config_.horizon + 1.0);

  struct PairState {
    std::uint64_t attempts = 0;
    std::uint64_t blocked = 0;
    sim::RunningStats utility;
  };
  std::vector<PairState> state(pairs_.size());
  double peak_reserved = 0.0;
  double peak_usage = 0.0;

  // Actual (measured) per-link usage; fed to the agent so measurement-
  // based admission controllers see real load rather than declarations.
  std::vector<double> usage(topology_->link_count(), 0.0);
  // Cache each pair's route once (routes are static).
  std::vector<std::vector<LinkId>> routes;
  routes.reserve(pairs_.size());
  for (const auto& pair : pairs_) routes.push_back(*topology_->route(pair.src, pair.dst));

  auto apply_usage = [&](std::size_t pair_index, double delta) {
    const double actual =
        pairs_[pair_index].reserved_rate * pairs_[pair_index].utilization;
    for (const LinkId lid : routes[pair_index]) {
      usage[static_cast<std::size_t>(lid)] += delta * actual;
      agent.set_measured_load(lid,
                              std::max(0.0, usage[static_cast<std::size_t>(lid)]));
      peak_usage =
          std::max(peak_usage, usage[static_cast<std::size_t>(lid)]);
    }
  };

  auto track_peak = [this, &agent, &peak_reserved] {
    for (LinkId lid = 0; lid < static_cast<LinkId>(topology_->link_count());
         ++lid) {
      peak_reserved = std::max(peak_reserved, agent.reserved_on_link(lid));
    }
  };

  std::function<void(std::size_t)> arrival = [&](std::size_t pair_index) {
    const TrafficPair& pair = pairs_[pair_index];
    PairState& pair_state = state[pair_index];
    const double now = queue.now();
    const bool scored = now >= config_.warmup;
    if (scored) ++pair_state.attempts;

    FlowSpec spec;
    spec.tspec.bucket_rate = pair.reserved_rate;
    spec.tspec.peak_rate = pair.reserved_rate;
    spec.tspec.bucket_depth = pair.reserved_rate;
    spec.rspec.rate = pair.reserved_rate;

    const auto session = agent.open_session(pair.src, pair.dst, now);
    const auto result = agent.reserve(*session, spec, now);
    if (result == ResvResult::kCommitted) {
      track_peak();
      apply_usage(pair_index, +1.0);
      if (scored) {
        // A committed flow holds exactly its reservation for life.
        pair_state.utility.add(pi_->value(pair.reserved_rate));
      }
      const double holding = rng.exponential(pair.mean_holding);
      const SessionId id = *session;
      queue.schedule_in(holding, [&agent, &queue, &apply_usage, pair_index,
                                  id] {
        agent.teardown(id, queue.now());
        apply_usage(pair_index, -1.0);
      });
    } else {
      agent.teardown(*session, now);  // drop the path state
      if (scored) {
        ++pair_state.blocked;
        pair_state.utility.add(0.0);
      }
    }
    const double gap = rng.exponential(1.0 / pair.arrival_rate);
    if (now + gap <= config_.horizon) {
      queue.schedule_in(gap, [&arrival, pair_index] { arrival(pair_index); });
    }
  };

  for (std::size_t i = 0; i < pairs_.size(); ++i) {
    const double first = rng.exponential(1.0 / pairs_[i].arrival_rate);
    queue.schedule(first, [&arrival, i] { arrival(i); });
  }
  while (queue.step()) {
  }

  NetworkReport report;
  report.peak_bottleneck_reserved = peak_reserved;
  report.peak_bottleneck_usage = peak_usage;
  report.pairs.reserve(state.size());
  for (const auto& pair_state : state) {
    PairReport pair_report;
    pair_report.attempts = pair_state.attempts;
    pair_report.blocked = pair_state.blocked;
    pair_report.blocking_probability =
        pair_state.attempts > 0
            ? static_cast<double>(pair_state.blocked) /
                  static_cast<double>(pair_state.attempts)
            : 0.0;
    pair_report.mean_utility = pair_state.utility.mean();
    report.pairs.push_back(pair_report);
  }

  // Observability: one batched flush per experiment (reservation
  // grant/deny counts come from the RsvpAgent itself).
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  if (registry.enabled()) {
    std::uint64_t attempts = 0;
    std::uint64_t blocked = 0;
    for (const auto& pair_state : state) {
      attempts += pair_state.attempts;
      blocked += pair_state.blocked;
    }
    registry.counter("net/flows/attempted").add(attempts);
    registry.counter("net/flows/blocked").add(blocked);
  }
  return report;
}

}  // namespace bevr::net
