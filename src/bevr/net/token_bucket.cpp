#include "bevr/net/token_bucket.h"

#include <algorithm>
#include <stdexcept>

namespace bevr::net {

TokenBucket::TokenBucket(double rate, double depth)
    : rate_(rate), depth_(depth), tokens_(depth) {
  if (!(rate > 0.0)) {
    throw std::invalid_argument("TokenBucket: rate must be > 0");
  }
  if (!(depth >= 0.0)) {
    throw std::invalid_argument("TokenBucket: depth must be >= 0");
  }
}

void TokenBucket::refill(double now) const {
  if (now < last_refill_) {
    throw std::invalid_argument("TokenBucket: time went backwards");
  }
  tokens_ = std::min(depth_, tokens_ + rate_ * (now - last_refill_));
  last_refill_ = now;
}

bool TokenBucket::consume(double now, double amount) {
  if (!(amount >= 0.0)) {
    throw std::invalid_argument("TokenBucket: amount must be >= 0");
  }
  refill(now);
  if (tokens_ + 1e-12 < amount) return false;
  tokens_ -= amount;
  return true;
}

double TokenBucket::available(double now) const {
  refill(now);
  return tokens_;
}

}  // namespace bevr::net
