// RSVP-style soft-state reservation signalling (paper refs [2,18]).
//
// Receiver-oriented, soft-state resource reservation reduced to the
// mechanics the analysis rests on:
//   * PATH: the sender advertises a session along the routed path,
//     installing path state at every hop;
//   * RESV: the receiver requests a FlowSpec hop-by-hop back toward
//     the sender; each link runs admission control and either commits
//     bandwidth or rejects the whole request (ResvErr);
//   * soft state: both kinds of state expire unless refreshed;
//   * teardown: explicit release.
// The paper's single-link admission rule (accept at most k_max flows)
// is the homogeneous special case of this machinery — shown in tests.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "bevr/net/admission.h"
#include "bevr/net/flowspec.h"
#include "bevr/net/topology.h"
#include "bevr/obs/metrics.h"

namespace bevr::net {

using SessionId = std::uint64_t;

/// Outcome of a RESV request.
enum class ResvResult {
  kCommitted,       ///< reserved on every hop
  kAdmissionDenied, ///< some hop refused; nothing is held
  kNoPathState,     ///< PATH missing/expired on some hop
};

/// Per-link, per-session reservation record.
struct Reservation {
  FlowSpec spec;
  double expires_at = 0.0;
};

class RsvpAgent {
 public:
  /// `refresh_timeout`: soft-state lifetime granted by each PATH/RESV
  /// or refresh message.
  RsvpAgent(std::shared_ptr<Topology> topology,
            std::shared_ptr<const AdmissionController> admission,
            double refresh_timeout = 30.0);

  /// Sender side: install PATH state from src to dst; returns the new
  /// session id, or nullopt when no route exists.
  [[nodiscard]] std::optional<SessionId> open_session(NodeId src, NodeId dst,
                                                      double now);

  /// Receiver side: request a reservation for the session.
  [[nodiscard]] ResvResult reserve(SessionId session, const FlowSpec& spec,
                                   double now);

  /// Refresh both path and reservation state (extends expiry).
  void refresh(SessionId session, double now);

  /// Explicit teardown; releases reserved bandwidth at every hop.
  void teardown(SessionId session, double now);

  /// Expire stale soft state; call periodically with the current time.
  void expire(double now);

  /// Σ reserved rates on a link (0 if none).
  [[nodiscard]] double reserved_on_link(LinkId link) const;

  /// Number of sessions holding a committed reservation.
  [[nodiscard]] std::size_t committed_sessions() const;

  /// Whether the session currently holds a committed reservation.
  [[nodiscard]] bool has_reservation(SessionId session) const;

  /// Feed a measured-load estimate for a link (for measurement-based
  /// admission controllers).
  void set_measured_load(LinkId link, double load);

 private:
  struct SessionState {
    std::vector<LinkId> path;
    double path_expires_at = 0.0;
    bool reserved = false;
    FlowSpec spec;
  };

  void release_links(SessionId id, const SessionState& session);

  std::shared_ptr<Topology> topology_;
  std::shared_ptr<const AdmissionController> admission_;
  // Admission outcomes, process-wide (obs registry counters).
  obs::Counter obs_granted_;
  obs::Counter obs_denied_;
  double refresh_timeout_;
  SessionId next_session_ = 1;
  std::map<SessionId, SessionState> sessions_;
  std::map<LinkId, std::map<SessionId, Reservation>> link_reservations_;
  std::map<LinkId, double> measured_load_;
};

}  // namespace bevr::net
