// Admission control algorithms (the "network exercises control" half
// of the integrated-services architecture, paper §1).
//
// Two families from the literature the paper draws on:
//  * parameter-based — admit iff declared reservations fit within a
//    utilisation bound of capacity (guaranteed service, RFC 2212);
//  * measurement-based — admit against a measured load estimate rather
//    than declared sums (controlled-load style; Jamin et al., ref [8]),
//    trading occasional overload for utilisation.
#pragma once

#include <memory>
#include <string>

#include "bevr/net/flowspec.h"

namespace bevr::net {

/// Per-link state visible to an admission decision.
struct LinkAdmissionState {
  double capacity = 0.0;        ///< link capacity
  double reserved_sum = 0.0;    ///< Σ admitted reservation rates
  double measured_load = 0.0;   ///< current load estimate (see below)
};

class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  /// Decide whether the request fits on a link in the given state.
  [[nodiscard]] virtual bool admit(const LinkAdmissionState& link,
                                   const FlowSpec& request) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Parameter-based: Σ reserved + R ≤ η·C.
class ParameterBasedAdmission final : public AdmissionController {
 public:
  explicit ParameterBasedAdmission(double utilization_bound = 1.0);

  [[nodiscard]] bool admit(const LinkAdmissionState& link,
                           const FlowSpec& request) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double utilization_bound() const { return bound_; }

 private:
  double bound_;
};

/// Measurement-based: measured load + R ≤ η·C. The caller maintains
/// `measured_load` (see LoadEstimator).
class MeasurementBasedAdmission final : public AdmissionController {
 public:
  explicit MeasurementBasedAdmission(double utilization_bound = 0.9);

  [[nodiscard]] bool admit(const LinkAdmissionState& link,
                           const FlowSpec& request) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double utilization_bound() const { return bound_; }

 private:
  double bound_;
};

/// Time-decaying exponential load estimator with measurement-window
/// maxima, in the spirit of the Jamin et al. algorithm: the estimate
/// is the max of per-window averages, aged toward the current average.
class LoadEstimator {
 public:
  /// `window`: measurement window length; `decay`: weight of the past
  /// estimate when a new window completes (0 = memoryless).
  LoadEstimator(double window, double decay);

  /// Record instantaneous load `value` observed at `now`.
  void observe(double now, double value);

  /// Current estimate.
  [[nodiscard]] double estimate() const { return estimate_; }

 private:
  double window_;
  double decay_;
  double window_start_ = 0.0;
  double window_integral_ = 0.0;
  double last_time_ = 0.0;
  double last_value_ = 0.0;
  double estimate_ = 0.0;
  bool started_ = false;
};

}  // namespace bevr::net
