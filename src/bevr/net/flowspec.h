// Integrated-services flow specifications (paper refs [2,12,13,16,17]).
//
// A reservation request carries a TSpec (what the flow will send — a
// token bucket) and an RSpec (what service it wants — a rate, plus
// slack). This mirrors RFC 2210/2212/2211 at the granularity the
// analysis needs.
#pragma once

#include <stdexcept>

namespace bevr::net {

/// Traffic specification: token-bucket description of the offered load.
struct TSpec {
  double bucket_rate = 1.0;    ///< r: sustained rate
  double bucket_depth = 1.0;   ///< b: burst allowance
  double peak_rate = 1.0;      ///< p ≥ r
  double max_packet_size = 1.0;

  void validate() const {
    if (!(bucket_rate > 0.0) || !(bucket_depth >= 0.0) ||
        !(peak_rate >= bucket_rate) || !(max_packet_size > 0.0)) {
      throw std::invalid_argument("TSpec: invalid parameters");
    }
  }
};

/// Service specification: the bandwidth the flow asks the network to
/// set aside (guaranteed/controlled-load style).
struct RSpec {
  double rate = 1.0;   ///< reserved bandwidth R
  double slack = 0.0;  ///< delay slack (unused by the fluid model)

  void validate() const {
    if (!(rate > 0.0) || !(slack >= 0.0)) {
      throw std::invalid_argument("RSpec: invalid parameters");
    }
  }
};

/// A full reservation request.
struct FlowSpec {
  TSpec tspec;
  RSpec rspec;

  void validate() const {
    tspec.validate();
    rspec.validate();
    if (rspec.rate + 1e-12 < tspec.bucket_rate) {
      throw std::invalid_argument(
          "FlowSpec: reserved rate below the flow's sustained rate");
    }
  }
};

}  // namespace bevr::net
