// Packet-level link scheduling: the mechanism that turns an admitted
// reservation into actual service quality (paper ref [10], Parekh &
// Gallager's PGPS/WFQ).
//
// The analytical model says an admitted flow "gets its share"; at the
// packet level that guarantee has to be manufactured by the scheduler.
// Two disciplines are provided:
//  * FifoScheduler — the best-effort-only data plane: one queue,
//    arrival order; a flow's delay depends on everyone else's burst.
//  * WfqScheduler — packetized weighted fair queueing (PGPS) with the
//    standard GPS virtual clock: each backlogged flow i drains at rate
//    C·wᵢ/Σw; finish tags F = max(F_prev, V(arrival)) + size/wᵢ decide
//    service order. A token-bucket (σ, ρ) flow with weight granting
//    rate R ≥ ρ is guaranteed delay ≤ σ/R + L_max/R + L_max/C
//    regardless of other traffic — the PGPS bound, verified in tests.
#pragma once

#include <cstdint>
#include <map>
#include <queue>
#include <string>
#include <vector>

namespace bevr::net {

/// One packet inside the scheduler.
struct Packet {
  std::uint64_t flow = 0;
  double size = 1.0;          ///< in capacity·time units
  double arrival_time = 0.0;  ///< set by the caller; nondecreasing
};

/// A scheduling discipline over a single output link.
class PacketScheduler {
 public:
  virtual ~PacketScheduler() = default;

  /// Offer a packet at its arrival_time (times must be nondecreasing
  /// across calls).
  virtual void enqueue(const Packet& packet) = 0;

  /// Any packets queued?
  [[nodiscard]] virtual bool backlogged() const = 0;

  /// Pick the next packet to transmit (removes it from the queue).
  /// Precondition: backlogged().
  [[nodiscard]] virtual Packet dequeue() = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Single shared FIFO — the best-effort-only data plane.
class FifoScheduler final : public PacketScheduler {
 public:
  void enqueue(const Packet& packet) override;
  [[nodiscard]] bool backlogged() const override { return !queue_.empty(); }
  [[nodiscard]] Packet dequeue() override;
  [[nodiscard]] std::string name() const override { return "FIFO"; }

 private:
  std::queue<Packet> queue_;
};

/// Packetized weighted fair queueing (PGPS).
class WfqScheduler final : public PacketScheduler {
 public:
  /// `capacity`: link rate the virtual clock normalises against.
  explicit WfqScheduler(double capacity);

  /// Register a flow's weight (service share); must precede its first
  /// packet. Weight is in capacity units: weight w grants rate
  /// C·w/Σ_active w ≥ w whenever Σ weights ≤ C.
  void add_flow(std::uint64_t flow, double weight);

  void enqueue(const Packet& packet) override;
  [[nodiscard]] bool backlogged() const override;
  [[nodiscard]] Packet dequeue() override;
  [[nodiscard]] std::string name() const override { return "WFQ"; }

  /// Current GPS virtual time (exposed for tests).
  [[nodiscard]] double virtual_time() const { return virtual_time_; }

 private:
  struct Tagged {
    Packet packet;
    double finish_tag = 0.0;
    double start_tag = 0.0;
    std::uint64_t seq = 0;  // FIFO tie-break
    bool operator>(const Tagged& other) const {
      if (finish_tag != other.finish_tag) {
        return finish_tag > other.finish_tag;
      }
      return seq > other.seq;
    }
  };
  struct FlowState {
    double weight = 1.0;
    double last_finish_tag = 0.0;
    std::int64_t backlog = 0;  // packets queued (for active-set tracking)
  };

  /// Advance the GPS virtual clock to wall time `now`.
  void advance_virtual_time(double now);

  double capacity_;
  double virtual_time_ = 0.0;
  double last_event_time_ = 0.0;
  double active_weight_ = 0.0;  ///< Σ weights of backlogged flows
  std::uint64_t next_seq_ = 0;
  std::map<std::uint64_t, FlowState> flows_;
  std::priority_queue<Tagged, std::vector<Tagged>, std::greater<>> heap_;
};

}  // namespace bevr::net
