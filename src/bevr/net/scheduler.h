// Fluid weighted-fair link scheduler (generalized processor sharing,
// paper ref [10], Parekh & Gallager).
//
// At each instant the link divides its capacity among the backlogged
// flows: reserved flows are guaranteed their reserved rate; remaining
// capacity is split among best-effort flows in proportion to their
// weights. The allocator is work-conserving: bandwidth a flow cannot
// use (demand below its guarantee/fair share) is redistributed by
// progressive water-filling.
//
// This is the mechanism behind the paper's "each of the k flows gets
// C/k" abstraction: k identical unbounded-demand best-effort flows get
// exactly C/k (tested), and reserved flows see their reservation
// regardless of best-effort pressure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bevr::net {

/// One flow's scheduling parameters at an instant.
struct SchedulableFlow {
  std::uint64_t id = 0;
  double reserved_rate = 0.0;  ///< 0 for pure best-effort flows
  double weight = 1.0;         ///< best-effort share weight (> 0)
  double demand = 0.0;         ///< instantaneous offered rate; use
                               ///< +infinity for greedy flows
};

/// Result of one allocation round.
struct Allocation {
  std::uint64_t id = 0;
  double rate = 0.0;
};

class FluidScheduler {
 public:
  explicit FluidScheduler(double capacity);

  /// Compute the instantaneous GPS allocation for the given flows.
  /// Guarantees (within 1e-9 tolerances):
  ///  * Σ allocated ≤ capacity;
  ///  * every flow gets ≥ min(demand, reserved_rate);
  ///  * leftover splits by weight among flows with residual demand;
  ///  * work conservation: if Σ demand ≥ capacity, Σ allocated = capacity.
  /// Throws std::invalid_argument if Σ reserved_rate > capacity.
  [[nodiscard]] std::vector<Allocation> allocate(
      const std::vector<SchedulableFlow>& flows) const;

  [[nodiscard]] double capacity() const { return capacity_; }

 private:
  double capacity_;
};

}  // namespace bevr::net
