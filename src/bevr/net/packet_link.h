// Packet-level single-link simulation: traffic generators and a
// non-preemptive server driving a PacketScheduler. Used to demonstrate
// the service-quality half of the paper's argument: with WFQ a
// reserved (token-bucket-conformant) flow keeps its delay bound no
// matter what best-effort traffic does, while under FIFO its delay is
// hostage to everyone else's bursts.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "bevr/net/packet_sched.h"
#include "bevr/sim/rng.h"

namespace bevr::net {

/// Constant-bit-rate packets of the given size at the given rate over
/// [start, end).
[[nodiscard]] std::vector<Packet> cbr_packets(std::uint64_t flow, double rate,
                                              double packet_size,
                                              double start, double end);

/// Worst-case (σ, ρ) token-bucket-conformant arrivals: a back-to-back
/// burst of σ at `start`, then a steady stream at rate ρ.
[[nodiscard]] std::vector<Packet> token_bucket_burst_packets(
    std::uint64_t flow, double sigma, double rho, double packet_size,
    double start, double end);

/// Poisson packet arrivals at the given rate.
[[nodiscard]] std::vector<Packet> poisson_packets(std::uint64_t flow,
                                                  double rate,
                                                  double packet_size,
                                                  double start, double end,
                                                  sim::Rng& rng);

/// Per-flow outcome of a link run.
struct FlowDelayStats {
  std::uint64_t packets = 0;
  double mean_delay = 0.0;   ///< arrival → transmission-complete
  double max_delay = 0.0;
  double throughput = 0.0;   ///< delivered volume / busy horizon
};

struct PacketLinkReport {
  std::map<std::uint64_t, FlowDelayStats> flows;
  double finish_time = 0.0;  ///< when the last packet left
};

/// Run every packet through `scheduler` over a link of rate `capacity`
/// (non-preemptive, work-conserving). Packets may be supplied in any
/// order; they are sorted by arrival time.
[[nodiscard]] PacketLinkReport simulate_link(double capacity,
                                             PacketScheduler& scheduler,
                                             std::vector<Packet> packets);

}  // namespace bevr::net
