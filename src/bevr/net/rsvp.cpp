#include "bevr/net/rsvp.h"

#include <stdexcept>
#include <utility>

#include "bevr/obs/metrics.h"

namespace bevr::net {

RsvpAgent::RsvpAgent(std::shared_ptr<Topology> topology,
                     std::shared_ptr<const AdmissionController> admission,
                     double refresh_timeout)
    : topology_(std::move(topology)),
      admission_(std::move(admission)),
      refresh_timeout_(refresh_timeout) {
  if (!topology_) throw std::invalid_argument("RsvpAgent: null topology");
  if (!admission_) throw std::invalid_argument("RsvpAgent: null admission");
  if (!(refresh_timeout > 0.0)) {
    throw std::invalid_argument("RsvpAgent: refresh_timeout must be > 0");
  }
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs_granted_ = registry.counter("net/reservations/granted");
  obs_denied_ = registry.counter("net/reservations/denied");
}

std::optional<SessionId> RsvpAgent::open_session(NodeId src, NodeId dst,
                                                 double now) {
  const auto path = topology_->route(src, dst);
  if (!path) return std::nullopt;
  SessionState state;
  state.path = *path;
  state.path_expires_at = now + refresh_timeout_;
  const SessionId id = next_session_++;
  sessions_.emplace(id, std::move(state));
  return id;
}

ResvResult RsvpAgent::reserve(SessionId session, const FlowSpec& spec,
                              double now) {
  spec.validate();
  const auto it = sessions_.find(session);
  if (it == sessions_.end() || it->second.path_expires_at < now) {
    return ResvResult::kNoPathState;
  }
  SessionState& state = it->second;
  if (state.reserved) {
    // Re-reservation: release the old allocation first (RSVP replaces
    // state rather than stacking it).
    release_links(session, state);
    state.reserved = false;
  }
  // Hop-by-hop admission; all-or-nothing commit.
  for (const LinkId lid : state.path) {
    LinkAdmissionState link_state;
    link_state.capacity = topology_->link(lid).capacity;
    link_state.reserved_sum = reserved_on_link(lid);
    const auto measured = measured_load_.find(lid);
    link_state.measured_load =
        measured != measured_load_.end() ? measured->second : 0.0;
    if (!admission_->admit(link_state, spec)) {
      obs_denied_.inc();
      return ResvResult::kAdmissionDenied;
    }
  }
  for (const LinkId lid : state.path) {
    link_reservations_[lid][session] =
        Reservation{spec, now + refresh_timeout_};
  }
  state.reserved = true;
  state.spec = spec;
  obs_granted_.inc();
  return ResvResult::kCommitted;
}

void RsvpAgent::refresh(SessionId session, double now) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  SessionState& state = it->second;
  state.path_expires_at = now + refresh_timeout_;
  if (state.reserved) {
    for (const LinkId lid : state.path) {
      const auto reservations = link_reservations_.find(lid);
      if (reservations == link_reservations_.end()) continue;
      const auto r = reservations->second.find(session);
      if (r != reservations->second.end()) {
        r->second.expires_at = now + refresh_timeout_;
      }
    }
  }
}

void RsvpAgent::teardown(SessionId session, double /*now*/) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  release_links(session, it->second);
  sessions_.erase(it);
}

void RsvpAgent::expire(double now) {
  // Expire reservations first, then whole sessions whose path state is
  // stale (soft-state semantics: silence kills the reservation).
  for (auto& [lid, table] : link_reservations_) {
    for (auto r = table.begin(); r != table.end();) {
      if (r->second.expires_at < now) {
        const auto session = sessions_.find(r->first);
        if (session != sessions_.end()) session->second.reserved = false;
        r = table.erase(r);
      } else {
        ++r;
      }
    }
  }
  for (auto s = sessions_.begin(); s != sessions_.end();) {
    if (s->second.path_expires_at < now) {
      release_links(s->first, s->second);
      s = sessions_.erase(s);
    } else {
      ++s;
    }
  }
}

double RsvpAgent::reserved_on_link(LinkId link) const {
  const auto it = link_reservations_.find(link);
  if (it == link_reservations_.end()) return 0.0;
  double total = 0.0;
  for (const auto& [session, reservation] : it->second) {
    total += reservation.spec.rspec.rate;
  }
  return total;
}

std::size_t RsvpAgent::committed_sessions() const {
  std::size_t count = 0;
  for (const auto& [id, state] : sessions_) {
    if (state.reserved) ++count;
  }
  return count;
}

bool RsvpAgent::has_reservation(SessionId session) const {
  const auto it = sessions_.find(session);
  return it != sessions_.end() && it->second.reserved;
}

void RsvpAgent::set_measured_load(LinkId link, double load) {
  if (!(load >= 0.0)) {
    throw std::invalid_argument("RsvpAgent: load must be >= 0");
  }
  measured_load_[link] = load;
}

void RsvpAgent::release_links(SessionId id, const SessionState& session) {
  for (const LinkId lid : session.path) {
    const auto table = link_reservations_.find(lid);
    if (table != link_reservations_.end()) table->second.erase(id);
  }
}

}  // namespace bevr::net
