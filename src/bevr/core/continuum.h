// Continuum variable-load model (paper §3.2/§3.3) — closed forms.
//
// The load level k is continuous:
//   V_B(C) = ∫ P(k)·k·π(C/k) dk
//   V_R(C) = ∫_0^{k_max} P(k)·k·π(C/k) dk + k_max·π(C/k_max)·∫_{k_max}^∞ P
// For {exponential, Pareto} loads × {rigid, piecewise-linear adaptive,
// algebraic-tail} utilities the paper derives (and we re-derive — the
// ACM scan is OCR-damaged there) closed forms for B, R, δ and Δ along
// with their asymptotics:
//   exponential+rigid:    Δ(C) solves βΔ = ln(1+β(C+Δ)); Δ ~ ln(βC)/β
//   exponential+adaptive: Δ(C) → −ln(1−a)/β  (a constant!)
//   algebraic+rigid:      Δ(C) = C·((z−1)^{1/(z−2)} − 1)  (linear!)
//   algebraic+adaptive:   Δ(C) = C·((1 + a(1−a^{z−2})/(1−a))^{1/(z−2)} − 1)
// Each closed form is validated against NumericContinuumModel
// (quadrature over the same integrals) in the test suite.
//
// Welfare closed forms (paper §4) are exposed on the same classes:
// provisioning C(p) maximising V(C) − pC, welfare W(p), and the
// equalising price ratio γ(p) with W_R(γ(p)·p) = W_B(p).
#pragma once

#include <memory>
#include <string>

#include "bevr/dist/continuum.h"
#include "bevr/utility/utility.h"

namespace bevr::core {

/// Common interface over continuum models (normalised per-flow
/// utilities; totals divide out k̄).
class ContinuumModel {
 public:
  virtual ~ContinuumModel() = default;

  [[nodiscard]] virtual double best_effort(double capacity) const = 0;
  [[nodiscard]] virtual double reservation(double capacity) const = 0;
  [[nodiscard]] virtual double total_best_effort(double capacity) const = 0;
  [[nodiscard]] virtual double total_reservation(double capacity) const = 0;

  /// δ(C) = R − B (≥ 0).
  [[nodiscard]] double performance_gap(double capacity) const;

  /// Δ(C) solving R(C) = B(C+Δ). Default implementation root-solves on
  /// best_effort(); closed-form classes override.
  [[nodiscard]] virtual double bandwidth_gap(double capacity) const;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Quadrature-backed oracle over any (ContinuumLoad, UtilityFunction)
/// pair; used in tests to validate every closed form below, and usable
/// directly for configurations without closed forms.
class NumericContinuumModel final : public ContinuumModel {
 public:
  NumericContinuumModel(std::shared_ptr<const dist::ContinuumLoad> load,
                        std::shared_ptr<const utility::UtilityFunction> pi);

  [[nodiscard]] double best_effort(double capacity) const override;
  [[nodiscard]] double reservation(double capacity) const override;
  [[nodiscard]] double total_best_effort(double capacity) const override;
  [[nodiscard]] double total_reservation(double capacity) const override;
  [[nodiscard]] std::string name() const override;

  /// k_max(C) = C / b*, b* maximising π(b)/b.
  [[nodiscard]] double k_max(double capacity) const;

 private:
  std::shared_ptr<const dist::ContinuumLoad> load_;
  std::shared_ptr<const utility::UtilityFunction> pi_;
  double optimal_share_;
  double mean_;
};

/// Exponential load (density βe^{-βk}) + rigid utility (b̂ = 1).
///   B(C) = 1 − e^{−βC}(1+βC),  R(C) = 1 − e^{−βC},  δ = βC·e^{−βC}.
class ExponentialRigidContinuum final : public ContinuumModel {
 public:
  explicit ExponentialRigidContinuum(double beta);

  [[nodiscard]] double best_effort(double capacity) const override;
  [[nodiscard]] double reservation(double capacity) const override;
  [[nodiscard]] double total_best_effort(double capacity) const override;
  [[nodiscard]] double total_reservation(double capacity) const override;
  [[nodiscard]] double bandwidth_gap(double capacity) const override;
  [[nodiscard]] std::string name() const override;

  /// Welfare closed forms (paper §4). Capacities chosen by V'(C) = p;
  /// the best-effort relation is p = βC·e^{−βC}, inverted with the
  /// W₋₁ Lambert branch (largest root). Welfare is clamped at 0 (the
  /// provider can always build nothing).
  [[nodiscard]] double capacity_best_effort(double price) const;
  [[nodiscard]] double capacity_reservation(double price) const;
  [[nodiscard]] double welfare_best_effort(double price) const;
  [[nodiscard]] double welfare_reservation(double price) const;
  /// γ(p): W_R(γp) = W_B(p); → 1 as p → 0 (paper: ≈ 1 + ln(−ln p)/(−ln p)).
  [[nodiscard]] double equalizing_price_ratio(double price) const;

  [[nodiscard]] double beta() const { return beta_; }

 private:
  double beta_;
};

/// Exponential load + piecewise-linear adaptive utility with floor a.
///   B(C) = 1 − e^{−βC}/(1−a) + (a/(1−a))e^{−βC/a},  R as rigid,
///   δ(C) = (a/(1−a))·(e^{−βC} − e^{−βC/a}),  Δ(∞) = −ln(1−a)/β.
class ExponentialAdaptiveContinuum final : public ContinuumModel {
 public:
  ExponentialAdaptiveContinuum(double beta, double floor);

  [[nodiscard]] double best_effort(double capacity) const override;
  [[nodiscard]] double reservation(double capacity) const override;
  [[nodiscard]] double total_best_effort(double capacity) const override;
  [[nodiscard]] double total_reservation(double capacity) const override;
  [[nodiscard]] double bandwidth_gap(double capacity) const override;
  [[nodiscard]] std::string name() const override;

  /// Large-C limit of the bandwidth gap: −ln(1−a)/β.
  [[nodiscard]] double bandwidth_gap_limit() const;

  /// Welfare: V_B'(C) = (e^{−βC} − e^{−βC/a})/(1−a) = p, solved on the
  /// decreasing branch; reservation side identical to the rigid case.
  [[nodiscard]] double capacity_best_effort(double price) const;
  [[nodiscard]] double capacity_reservation(double price) const;
  [[nodiscard]] double welfare_best_effort(double price) const;
  [[nodiscard]] double welfare_reservation(double price) const;
  [[nodiscard]] double equalizing_price_ratio(double price) const;

  [[nodiscard]] double beta() const { return beta_; }
  [[nodiscard]] double floor() const { return a_; }

 private:
  double beta_;
  double a_;
};

/// Pareto load ((z−1)k^{−z} on [1,∞)) + rigid utility.
///   B(C) = 1 − C^{2−z},  R(C) = 1 − C^{2−z}/(z−1),
///   δ(C) = C^{2−z}(z−2)/(z−1),  Δ(C) = C((z−1)^{1/(z−2)} − 1),
///   γ(p) = (z−1)^{1/(z−2)}  (exactly, for all prices with C_B ≥ 1).
class AlgebraicRigidContinuum final : public ContinuumModel {
 public:
  explicit AlgebraicRigidContinuum(double z);

  [[nodiscard]] double best_effort(double capacity) const override;
  [[nodiscard]] double reservation(double capacity) const override;
  [[nodiscard]] double total_best_effort(double capacity) const override;
  [[nodiscard]] double total_reservation(double capacity) const override;
  [[nodiscard]] double bandwidth_gap(double capacity) const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double capacity_best_effort(double price) const;
  [[nodiscard]] double capacity_reservation(double price) const;
  [[nodiscard]] double welfare_best_effort(double price) const;
  [[nodiscard]] double welfare_reservation(double price) const;
  [[nodiscard]] double equalizing_price_ratio(double price) const;

  [[nodiscard]] double z() const { return z_; }

 private:
  double z_;
  double mean_;  ///< k̄ = (z−1)/(z−2)
};

/// Pareto load + piecewise-linear adaptive utility with floor a.
///   B(C) = 1 − g_B·C^{2−z},  g_B = (1 + a(1−a^{z−2})/(1−a))/(z−1),
///   R as rigid,  Δ(C) = C·(((z−1)g_B)^{1/(z−2)} − 1),
///   γ(p) = ((z−1)g_B)^{1/(z−2)}.
/// Valid for C ≥ 1 (the closed forms assume the support edge k = 1).
class AlgebraicAdaptiveContinuum final : public ContinuumModel {
 public:
  AlgebraicAdaptiveContinuum(double z, double floor);

  [[nodiscard]] double best_effort(double capacity) const override;
  [[nodiscard]] double reservation(double capacity) const override;
  [[nodiscard]] double total_best_effort(double capacity) const override;
  [[nodiscard]] double total_reservation(double capacity) const override;
  [[nodiscard]] double bandwidth_gap(double capacity) const override;
  [[nodiscard]] std::string name() const override;

  /// The coefficient (z−1)·g_B = 1 + a(1−a^{z−2})/(1−a).
  [[nodiscard]] double gap_ratio_power() const;

  [[nodiscard]] double capacity_best_effort(double price) const;
  [[nodiscard]] double capacity_reservation(double price) const;
  [[nodiscard]] double welfare_best_effort(double price) const;
  [[nodiscard]] double welfare_reservation(double price) const;
  [[nodiscard]] double equalizing_price_ratio(double price) const;

  [[nodiscard]] double z() const { return z_; }
  [[nodiscard]] double floor() const { return a_; }

 private:
  double z_;
  double a_;
  double mean_;
  double g_b_;  ///< coefficient of C^{2−z} in 1 − B(C)
};

/// Pareto load + algebraic-tail utility π(b) = 1 − b^{−r} (b > 1)
/// (§3.3 footnote). k_max(C) = C/(r+1)^{1/r}; the totals take the form
/// V = w₁ + w₂C^{−r} + w₃C^{2−z}, so Δ(C)'s growth regime depends on
/// r vs z−2 and z−3.
class AlgebraicTailUtilityContinuum final : public ContinuumModel {
 public:
  AlgebraicTailUtilityContinuum(double z, double r);

  [[nodiscard]] double best_effort(double capacity) const override;
  [[nodiscard]] double reservation(double capacity) const override;
  [[nodiscard]] double total_best_effort(double capacity) const override;
  [[nodiscard]] double total_reservation(double capacity) const override;
  [[nodiscard]] std::string name() const override;

  /// The optimal per-flow share b* = (r+1)^{1/r}.
  [[nodiscard]] double optimal_share() const;

  [[nodiscard]] double z() const { return z_; }
  [[nodiscard]] double r() const { return r_; }

 private:
  double z_;
  double r_;
  double mean_;
};

}  // namespace bevr::core
