#include "bevr/core/risk_averse.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "bevr/core/fixed_load.h"
#include "bevr/numerics/kahan.h"
#include "bevr/numerics/roots.h"

namespace bevr::core {

RiskAverseModel::RiskAverseModel(
    std::shared_ptr<const dist::DiscreteLoad> load,
    std::shared_ptr<const utility::UtilityFunction> pi, double risk_aversion,
    BlockingRisk blocking_risk)
    : load_(std::move(load)),
      pi_(std::move(pi)),
      lambda_(risk_aversion),
      blocking_risk_(blocking_risk) {
  if (!load_) throw std::invalid_argument("RiskAverseModel: null load");
  if (!pi_) throw std::invalid_argument("RiskAverseModel: null utility");
  if (!(lambda_ >= 0.0)) {
    throw std::invalid_argument("RiskAverseModel: risk_aversion must be >= 0");
  }
  q_ = std::make_shared<dist::SizeBiasedLoad>(load_);
  mean_ = load_->mean();
}

std::optional<std::int64_t> RiskAverseModel::k_max(double capacity) const {
  return core::k_max(*pi_, capacity);
}

RiskAverseModel::Moments RiskAverseModel::best_effort_moments(
    double capacity) const {
  if (!(capacity >= 0.0)) {
    throw std::invalid_argument("best_effort_moments: capacity must be >= 0");
  }
  if (capacity == 0.0) return {};
  numerics::KahanSum m1, m2;
  const std::int64_t k_lo = q_->min_support();
  // Dead zone: π(C/k) = 0 once k > C/b0.
  std::int64_t k_cut = std::numeric_limits<std::int64_t>::max();
  const double b0 = pi_->zero_below();
  if (b0 > 0.0) {
    k_cut = static_cast<std::int64_t>(std::floor(capacity / b0)) + 1;
  }
  constexpr std::int64_t kHardCap = 50'000'000;
  for (std::int64_t k = k_lo; k - k_lo < kHardCap && k <= k_cut; ++k) {
    const double v = pi_->value(capacity / static_cast<double>(k));
    const double q = q_->pmf(k);
    m1.add(q * v);
    m2.add(q * v * v);
    if ((k - k_lo) % 512 == 511) {
      // Tail bound: remaining mass ≤ tail_Q(k), value ≤ π(C/k).
      if (q_->tail_above(k) * v < 1e-13 * std::max(m1.value(), 1e-6)) break;
    }
  }
  const double variance = std::max(0.0, m2.value() - m1.value() * m1.value());
  return {1.0, m1.value(), std::sqrt(variance)};
}

RiskAverseModel::Moments RiskAverseModel::reservation_moments(
    double capacity) const {
  if (!(capacity >= 0.0)) {
    throw std::invalid_argument("reservation_moments: capacity must be >= 0");
  }
  if (capacity == 0.0) return {};
  const auto kmax_opt = k_max(capacity);
  if (!kmax_opt) return best_effort_moments(capacity);  // elastic
  const std::int64_t kmax = *kmax_opt;
  if (kmax < 1) return {};
  numerics::KahanSum m1, m2;
  for (std::int64_t k = q_->min_support(); k <= kmax; ++k) {
    const double v = pi_->value(capacity / static_cast<double>(k));
    const double q = q_->pmf(k);
    m1.add(q * v);
    m2.add(q * v * v);
  }
  // Flows landing above k_max: admitted (at the capped level) with
  // probability k_max/k₁, blocked otherwise. The moments are
  // conditional on admission; blocked flows experience nothing.
  const double v_cap = pi_->value(capacity / static_cast<double>(kmax));
  const double admit_mass =
      static_cast<double>(kmax) * load_->tail_above(kmax) / mean_;
  m1.add(v_cap * admit_mass);
  m2.add(v_cap * v_cap * admit_mass);
  const double admit_probability =
      std::min(1.0, q_->cdf(kmax) + admit_mass);
  if (admit_probability <= 0.0) return {0.0, 0.0, 0.0};
  const double cond_m1 = m1.value() / admit_probability;
  const double cond_m2 = m2.value() / admit_probability;
  const double variance = std::max(0.0, cond_m2 - cond_m1 * cond_m1);
  return {admit_probability, cond_m1, std::sqrt(variance)};
}

double RiskAverseModel::best_effort(double capacity) const {
  const auto moments = best_effort_moments(capacity);
  return std::max(0.0, moments.mean - lambda_ * moments.stddev);
}

double RiskAverseModel::reservation(double capacity) const {
  const auto moments = reservation_moments(capacity);
  if (blocking_risk_ == BlockingRisk::kConditional) {
    return moments.admission_probability *
           std::max(0.0, moments.mean - lambda_ * moments.stddev);
  }
  // Unconditional: recover the raw moments of π·1[admitted] from the
  // conditional ones (E[X] = P·m, E[X²] = P·(m² + s²)).
  const double p = moments.admission_probability;
  const double m1 = p * moments.mean;
  const double m2 =
      p * (moments.mean * moments.mean + moments.stddev * moments.stddev);
  const double variance = std::max(0.0, m2 - m1 * m1);
  return std::max(0.0, m1 - lambda_ * std::sqrt(variance));
}

double RiskAverseModel::performance_gap(double capacity) const {
  return std::max(0.0, reservation(capacity) - best_effort(capacity));
}

double RiskAverseModel::bandwidth_gap(double capacity) const {
  const double target = reservation(capacity);
  auto deficit = [this, capacity, target](double delta) {
    return best_effort(capacity + delta) - target;
  };
  if (deficit(0.0) >= 0.0) return 0.0;
  double hi = std::max(1.0, 0.25 * mean_);
  while (deficit(hi) < 0.0) {
    hi *= 2.0;
    if (hi > 1e12) return std::numeric_limits<double>::infinity();
  }
  const auto root = numerics::brent(deficit, 0.0, hi,
                                    {.x_tol = 1e-8, .x_rtol = 1e-9,
                                     .f_tol = 0.0, .max_iterations = 200});
  return std::max(0.0, root.x);
}

}  // namespace bevr::core
