#include "bevr/core/continuum.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <stdexcept>
#include <utility>

#include "bevr/core/fixed_load.h"
#include "bevr/numerics/lambert_w.h"
#include "bevr/numerics/quadrature.h"
#include "bevr/numerics/roots.h"

namespace bevr::core {

namespace {

constexpr double kInvE = 0.36787944117144233;

void check_capacity(double c) {
  if (!(c >= 0.0)) {
    throw std::invalid_argument("ContinuumModel: capacity must be >= 0");
  }
}

void check_price(double p) {
  if (!(p > 0.0)) {
    throw std::invalid_argument("ContinuumModel: price must be > 0");
  }
}

/// Solve R(C) = B(C + Δ) for Δ by bracket expansion + Brent.
double solve_bandwidth_gap(const ContinuumModel& model, double capacity) {
  const double target = model.reservation(capacity);
  auto deficit = [&model, capacity, target](double delta) {
    return model.best_effort(capacity + delta) - target;
  };
  if (deficit(0.0) >= 0.0) return 0.0;
  double hi = std::max(1.0, 0.25 * capacity);
  while (deficit(hi) < 0.0) {
    hi *= 2.0;
    if (hi > 1e12) return std::numeric_limits<double>::infinity();
  }
  const auto root = numerics::brent(deficit, 0.0, hi,
                                    {.x_tol = 1e-10, .x_rtol = 1e-11,
                                     .f_tol = 0.0, .max_iterations = 200});
  return std::max(0.0, root.x);
}

/// Solve W_R(p̂) = target for p̂ ∈ [price, p_zero] (W_R decreasing with
/// W_R(p_zero) = 0) and return the ratio p̂/price.
double solve_price_ratio(const std::function<double(double)>& welfare_r,
                         double target, double price, double p_zero) {
  if (target <= 0.0) return p_zero / price;  // degenerate: match at W = 0
  auto deficit = [&welfare_r, target](double p_hat) {
    return welfare_r(p_hat) - target;
  };
  const auto root = numerics::brent(deficit, price, p_zero,
                                    {.x_tol = 1e-14, .x_rtol = 1e-12,
                                     .f_tol = 0.0, .max_iterations = 200});
  return root.x / price;
}

}  // namespace

double ContinuumModel::performance_gap(double capacity) const {
  return std::max(0.0, reservation(capacity) - best_effort(capacity));
}

double ContinuumModel::bandwidth_gap(double capacity) const {
  return solve_bandwidth_gap(*this, capacity);
}

// ---------------------------------------------------------------------------
// NumericContinuumModel

NumericContinuumModel::NumericContinuumModel(
    std::shared_ptr<const dist::ContinuumLoad> load,
    std::shared_ptr<const utility::UtilityFunction> pi)
    : load_(std::move(load)), pi_(std::move(pi)) {
  if (!load_) throw std::invalid_argument("NumericContinuumModel: null load");
  if (!pi_) throw std::invalid_argument("NumericContinuumModel: null utility");
  optimal_share_ = core::optimal_share(*pi_);
  mean_ = load_->mean();
}

double NumericContinuumModel::k_max(double capacity) const {
  check_capacity(capacity);
  return capacity / optimal_share_;
}

double NumericContinuumModel::total_best_effort(double capacity) const {
  check_capacity(capacity);
  if (capacity == 0.0) return 0.0;
  auto integrand = [this, capacity](double k) {
    return load_->density(k) * k * pi_->value(capacity / k);
  };
  const double lo = load_->min_support();
  // Dead zone: π(C/k) = 0 once k > C/b0.
  const double b0 = pi_->zero_below();
  const double hi =
      (b0 > 0.0) ? capacity / b0 : std::numeric_limits<double>::infinity();
  if (hi <= lo) return 0.0;
  double total = 0.0;
  // Split at the b = 1 knee (piecewise utilities) for quadrature accuracy.
  const double knee = capacity;
  double a = lo;
  if (knee > lo && knee < hi) {
    total += numerics::integrate(integrand, lo, knee, 1e-13, 1e-11).value;
    a = knee;
  }
  if (std::isfinite(hi)) {
    total += numerics::integrate(integrand, a, hi, 1e-13, 1e-11).value;
  } else {
    total += numerics::integrate_to_infinity(integrand, a, 1e-13, 1e-11).value;
  }
  return total;
}

double NumericContinuumModel::total_reservation(double capacity) const {
  check_capacity(capacity);
  if (capacity == 0.0) return 0.0;
  const double kmax = k_max(capacity);
  const double lo = load_->min_support();
  double head = 0.0;
  if (kmax > lo) {
    auto integrand = [this, capacity](double k) {
      return load_->density(k) * k * pi_->value(capacity / k);
    };
    const double knee = capacity;
    if (knee > lo && knee < kmax) {
      head += numerics::integrate(integrand, lo, knee, 1e-13, 1e-11).value;
      head += numerics::integrate(integrand, knee, kmax, 1e-13, 1e-11).value;
    } else {
      head += numerics::integrate(integrand, lo, kmax, 1e-13, 1e-11).value;
    }
  }
  const double tail =
      kmax * pi_->value(capacity / kmax) * load_->tail_above(kmax);
  return head + tail;
}

double NumericContinuumModel::best_effort(double capacity) const {
  return total_best_effort(capacity) / mean_;
}

double NumericContinuumModel::reservation(double capacity) const {
  return total_reservation(capacity) / mean_;
}

std::string NumericContinuumModel::name() const {
  return "NumericContinuum[" + load_->name() + ", " + pi_->name() + "]";
}

// ---------------------------------------------------------------------------
// ExponentialRigidContinuum

ExponentialRigidContinuum::ExponentialRigidContinuum(double beta) : beta_(beta) {
  if (!(beta > 0.0)) {
    throw std::invalid_argument("ExponentialRigidContinuum: beta must be > 0");
  }
}

double ExponentialRigidContinuum::best_effort(double capacity) const {
  check_capacity(capacity);
  const double bc = beta_ * capacity;
  return 1.0 - std::exp(-bc) * (1.0 + bc);
}

double ExponentialRigidContinuum::reservation(double capacity) const {
  check_capacity(capacity);
  return -std::expm1(-beta_ * capacity);
}

double ExponentialRigidContinuum::total_best_effort(double capacity) const {
  return best_effort(capacity) / beta_;
}

double ExponentialRigidContinuum::total_reservation(double capacity) const {
  return reservation(capacity) / beta_;
}

double ExponentialRigidContinuum::bandwidth_gap(double capacity) const {
  check_capacity(capacity);
  // βΔ = ln(1 + β(C+Δ)); Δ ~ ln(βC)/β for large C.
  auto f = [this, capacity](double delta) {
    return beta_ * delta - std::log1p(beta_ * (capacity + delta));
  };
  double hi = std::max(1.0 / beta_, capacity);
  while (f(hi) < 0.0) hi *= 2.0;
  return numerics::brent(f, 0.0, hi,
                         {.x_tol = 1e-12, .x_rtol = 1e-12, .f_tol = 0.0,
                          .max_iterations = 200})
      .x;
}

double ExponentialRigidContinuum::capacity_best_effort(double price) const {
  check_price(price);
  if (price >= kInvE) return 0.0;  // V'_B peaks at 1/e; beyond it, build nothing
  const double h = numerics::largest_h_of_he_minus_h(price);
  const double c = h / beta_;
  return (total_best_effort(c) - price * c >= 0.0) ? c : 0.0;
}

double ExponentialRigidContinuum::welfare_best_effort(double price) const {
  check_price(price);
  if (price >= kInvE) return 0.0;
  const double h = numerics::largest_h_of_he_minus_h(price);
  // W_B = (1/β)(1 − p − p/h − p·h).
  const double w = (1.0 - price - price / h - price * h) / beta_;
  return std::max(0.0, w);
}

double ExponentialRigidContinuum::capacity_reservation(double price) const {
  check_price(price);
  if (price >= 1.0) return 0.0;
  return -std::log(price) / beta_;
}

double ExponentialRigidContinuum::welfare_reservation(double price) const {
  check_price(price);
  if (price >= 1.0) return 0.0;
  // W_R = (1/β)(1 − p + p·ln p).
  return std::max(0.0, (1.0 - price + price * std::log(price)) / beta_);
}

double ExponentialRigidContinuum::equalizing_price_ratio(double price) const {
  check_price(price);
  auto wr = [this](double p_hat) { return welfare_reservation(p_hat); };
  return solve_price_ratio(wr, welfare_best_effort(price), price, 1.0);
}

std::string ExponentialRigidContinuum::name() const {
  return "ExponentialRigidContinuum(beta=" + std::to_string(beta_) + ")";
}

// ---------------------------------------------------------------------------
// ExponentialAdaptiveContinuum

ExponentialAdaptiveContinuum::ExponentialAdaptiveContinuum(double beta,
                                                           double floor)
    : beta_(beta), a_(floor) {
  if (!(beta > 0.0)) {
    throw std::invalid_argument("ExponentialAdaptiveContinuum: beta must be > 0");
  }
  if (!(floor > 0.0) || !(floor < 1.0)) {
    throw std::invalid_argument(
        "ExponentialAdaptiveContinuum: floor must lie in (0, 1)");
  }
}

double ExponentialAdaptiveContinuum::best_effort(double capacity) const {
  check_capacity(capacity);
  // B(C) = 1 − e^{−βC}/(1−a) + (a/(1−a))·e^{−βC/a}.
  const double bc = beta_ * capacity;
  return 1.0 - std::exp(-bc) / (1.0 - a_) +
         (a_ / (1.0 - a_)) * std::exp(-bc / a_);
}

double ExponentialAdaptiveContinuum::reservation(double capacity) const {
  check_capacity(capacity);
  return -std::expm1(-beta_ * capacity);
}

double ExponentialAdaptiveContinuum::total_best_effort(double capacity) const {
  return best_effort(capacity) / beta_;
}

double ExponentialAdaptiveContinuum::total_reservation(double capacity) const {
  return reservation(capacity) / beta_;
}

double ExponentialAdaptiveContinuum::bandwidth_gap(double capacity) const {
  check_capacity(capacity);
  // Solve R(C) = B(C+Δ) in complement space, stable for βC ≫ 1 where
  // both utilities round to 1.0:
  //   e^{−βC} = e^{−β(C+Δ)}/(1−a) − (a/(1−a))·e^{−β(C+Δ)/a}
  // ⇔ βΔ = ln(1/(1−a) − (a/(1−a))·e^{−β(C+Δ)(1−a)/a}).
  auto f = [this, capacity](double delta) {
    const double decay =
        std::exp(-beta_ * (capacity + delta) * (1.0 - a_) / a_);
    return beta_ * delta -
           std::log((1.0 - a_ * decay) / (1.0 - a_));
  };
  const double limit = bandwidth_gap_limit();
  double hi = std::max(limit * 2.0, 1.0 / beta_);
  while (f(hi) < 0.0) hi *= 2.0;
  return numerics::brent(f, 0.0, hi,
                         {.x_tol = 1e-12, .x_rtol = 1e-12, .f_tol = 0.0,
                          .max_iterations = 200})
      .x;
}

double ExponentialAdaptiveContinuum::bandwidth_gap_limit() const {
  return -std::log1p(-a_) / beta_;
}

double ExponentialAdaptiveContinuum::capacity_best_effort(double price) const {
  check_price(price);
  // V'_B(C) = (e^{−βC} − e^{−βC/a})/(1−a) = p, on the decreasing branch
  // beyond the peak at C_peak = a·ln(1/a)/(β(1−a)).
  const double c_peak = a_ * std::log(1.0 / a_) / (beta_ * (1.0 - a_));
  auto marginal = [this](double c) {
    return (std::exp(-beta_ * c) - std::exp(-beta_ * c / a_)) / (1.0 - a_);
  };
  if (price >= marginal(c_peak)) return 0.0;
  double hi = std::max(c_peak * 2.0, 1.0 / beta_);
  while (marginal(hi) > price) hi *= 2.0;
  const double c =
      numerics::brent([&](double x) { return marginal(x) - price; }, c_peak, hi,
                      {.x_tol = 1e-12, .x_rtol = 1e-12, .f_tol = 0.0,
                       .max_iterations = 200})
          .x;
  return (total_best_effort(c) - price * c >= 0.0) ? c : 0.0;
}

double ExponentialAdaptiveContinuum::welfare_best_effort(double price) const {
  const double c = capacity_best_effort(price);
  return std::max(0.0, total_best_effort(c) - price * c);
}

double ExponentialAdaptiveContinuum::capacity_reservation(double price) const {
  check_price(price);
  if (price >= 1.0) return 0.0;
  return -std::log(price) / beta_;
}

double ExponentialAdaptiveContinuum::welfare_reservation(double price) const {
  check_price(price);
  if (price >= 1.0) return 0.0;
  return std::max(0.0, (1.0 - price + price * std::log(price)) / beta_);
}

double ExponentialAdaptiveContinuum::equalizing_price_ratio(double price) const {
  check_price(price);
  auto wr = [this](double p_hat) { return welfare_reservation(p_hat); };
  return solve_price_ratio(wr, welfare_best_effort(price), price, 1.0);
}

std::string ExponentialAdaptiveContinuum::name() const {
  return "ExponentialAdaptiveContinuum(beta=" + std::to_string(beta_) +
         ", a=" + std::to_string(a_) + ")";
}

// ---------------------------------------------------------------------------
// AlgebraicRigidContinuum

AlgebraicRigidContinuum::AlgebraicRigidContinuum(double z)
    : z_(z), mean_((z - 1.0) / (z - 2.0)) {
  if (!(z > 2.0)) {
    throw std::invalid_argument("AlgebraicRigidContinuum: z must exceed 2");
  }
}

double AlgebraicRigidContinuum::best_effort(double capacity) const {
  check_capacity(capacity);
  // For C ≤ 1 every configuration (k ≥ 1) leaves each flow under b̂ = 1.
  if (capacity <= 1.0) return 0.0;
  return 1.0 - std::pow(capacity, 2.0 - z_);
}

double AlgebraicRigidContinuum::reservation(double capacity) const {
  check_capacity(capacity);
  // For C ≤ 1 the reservation system admits a mass k_max = C of flows,
  // each at share 1: V_R = C.
  if (capacity <= 1.0) return capacity / mean_;
  return 1.0 - std::pow(capacity, 2.0 - z_) / (z_ - 1.0);
}

double AlgebraicRigidContinuum::total_best_effort(double capacity) const {
  return mean_ * best_effort(capacity);
}

double AlgebraicRigidContinuum::total_reservation(double capacity) const {
  return mean_ * reservation(capacity);
}

double AlgebraicRigidContinuum::bandwidth_gap(double capacity) const {
  check_capacity(capacity);
  if (capacity <= 1.0) return solve_bandwidth_gap(*this, capacity);
  // Exact: (C+Δ)^{z−2} = (z−1)·C^{z−2}.
  return capacity * (std::pow(z_ - 1.0, 1.0 / (z_ - 2.0)) - 1.0);
}

double AlgebraicRigidContinuum::capacity_best_effort(double price) const {
  check_price(price);
  const double c = std::pow((z_ - 1.0) / price, 1.0 / (z_ - 1.0));
  if (c <= 1.0) return 0.0;
  return (total_best_effort(c) - price * c >= 0.0) ? c : 0.0;
}

double AlgebraicRigidContinuum::welfare_best_effort(double price) const {
  const double c = capacity_best_effort(price);
  return std::max(0.0, total_best_effort(c) - price * c);
}

double AlgebraicRigidContinuum::capacity_reservation(double price) const {
  check_price(price);
  if (price >= 1.0) return (price > 1.0) ? 0.0 : 1.0;
  return std::pow(price, -1.0 / (z_ - 1.0));
}

double AlgebraicRigidContinuum::welfare_reservation(double price) const {
  check_price(price);
  if (price >= 1.0) return 0.0;
  // W_R = k̄·(1 − p^{(z−2)/(z−1)}).
  return mean_ * (1.0 - std::pow(price, (z_ - 2.0) / (z_ - 1.0)));
}

double AlgebraicRigidContinuum::equalizing_price_ratio(double price) const {
  check_price(price);
  // Exact and price-independent while the best-effort optimum is
  // interior (C_B > 1): γ = (z−1)^{1/(z−2)}.
  if (capacity_best_effort(price) > 1.0) {
    return std::pow(z_ - 1.0, 1.0 / (z_ - 2.0));
  }
  auto wr = [this](double p_hat) { return welfare_reservation(p_hat); };
  return solve_price_ratio(wr, welfare_best_effort(price), price, 1.0);
}

std::string AlgebraicRigidContinuum::name() const {
  return "AlgebraicRigidContinuum(z=" + std::to_string(z_) + ")";
}

// ---------------------------------------------------------------------------
// AlgebraicAdaptiveContinuum

AlgebraicAdaptiveContinuum::AlgebraicAdaptiveContinuum(double z, double floor)
    : z_(z), a_(floor), mean_((z - 1.0) / (z - 2.0)) {
  if (!(z > 2.0)) {
    throw std::invalid_argument("AlgebraicAdaptiveContinuum: z must exceed 2");
  }
  if (!(floor > 0.0) || !(floor < 1.0)) {
    throw std::invalid_argument(
        "AlgebraicAdaptiveContinuum: floor must lie in (0, 1)");
  }
  // 1 − B(C) = g_B·C^{2−z}: g_B = (1 + a(1−a^{z−2})/(1−a))/(z−1).
  g_b_ = (1.0 + a_ * (1.0 - std::pow(a_, z_ - 2.0)) / (1.0 - a_)) / (z_ - 1.0);
}

double AlgebraicAdaptiveContinuum::gap_ratio_power() const {
  return (z_ - 1.0) * g_b_;
}

double AlgebraicAdaptiveContinuum::best_effort(double capacity) const {
  check_capacity(capacity);
  if (capacity <= a_) return 0.0;
  if (capacity < 1.0) {
    // Only configurations with k < C/a deliver utility; support is k ≥ 1.
    const double x = capacity / a_;  // > 1 here
    const double v = (capacity * (1.0 - std::pow(x, 1.0 - z_)) -
                      a_ * (z_ - 1.0) * (1.0 - std::pow(x, 2.0 - z_)) /
                          (z_ - 2.0)) /
                     (1.0 - a_);
    return v / mean_;
  }
  return 1.0 - g_b_ * std::pow(capacity, 2.0 - z_);
}

double AlgebraicAdaptiveContinuum::reservation(double capacity) const {
  check_capacity(capacity);
  if (capacity <= 1.0) return capacity / mean_;
  return 1.0 - std::pow(capacity, 2.0 - z_) / (z_ - 1.0);
}

double AlgebraicAdaptiveContinuum::total_best_effort(double capacity) const {
  return mean_ * best_effort(capacity);
}

double AlgebraicAdaptiveContinuum::total_reservation(double capacity) const {
  return mean_ * reservation(capacity);
}

double AlgebraicAdaptiveContinuum::bandwidth_gap(double capacity) const {
  check_capacity(capacity);
  if (capacity <= 1.0) return solve_bandwidth_gap(*this, capacity);
  return capacity * (std::pow(gap_ratio_power(), 1.0 / (z_ - 2.0)) - 1.0);
}

double AlgebraicAdaptiveContinuum::capacity_best_effort(double price) const {
  check_price(price);
  const double c = std::pow((z_ - 1.0) * g_b_ / price, 1.0 / (z_ - 1.0));
  if (c <= 1.0) return 0.0;
  return (total_best_effort(c) - price * c >= 0.0) ? c : 0.0;
}

double AlgebraicAdaptiveContinuum::welfare_best_effort(double price) const {
  const double c = capacity_best_effort(price);
  return std::max(0.0, total_best_effort(c) - price * c);
}

double AlgebraicAdaptiveContinuum::capacity_reservation(double price) const {
  check_price(price);
  if (price >= 1.0) return (price > 1.0) ? 0.0 : 1.0;
  return std::pow(price, -1.0 / (z_ - 1.0));
}

double AlgebraicAdaptiveContinuum::welfare_reservation(double price) const {
  check_price(price);
  if (price >= 1.0) return 0.0;
  return mean_ * (1.0 - std::pow(price, (z_ - 2.0) / (z_ - 1.0)));
}

double AlgebraicAdaptiveContinuum::equalizing_price_ratio(double price) const {
  check_price(price);
  if (capacity_best_effort(price) > 1.0) {
    return std::pow(gap_ratio_power(), 1.0 / (z_ - 2.0));
  }
  auto wr = [this](double p_hat) { return welfare_reservation(p_hat); };
  return solve_price_ratio(wr, welfare_best_effort(price), price, 1.0);
}

std::string AlgebraicAdaptiveContinuum::name() const {
  return "AlgebraicAdaptiveContinuum(z=" + std::to_string(z_) +
         ", a=" + std::to_string(a_) + ")";
}

// ---------------------------------------------------------------------------
// AlgebraicTailUtilityContinuum

AlgebraicTailUtilityContinuum::AlgebraicTailUtilityContinuum(double z, double r)
    : z_(z), r_(r), mean_((z - 1.0) / (z - 2.0)) {
  if (!(z > 2.0)) {
    throw std::invalid_argument("AlgebraicTailUtilityContinuum: z must exceed 2");
  }
  if (!(r > 0.0)) {
    throw std::invalid_argument("AlgebraicTailUtilityContinuum: r must be > 0");
  }
}

double AlgebraicTailUtilityContinuum::optimal_share() const {
  // b* maximising (1 − b^{−r})/b: b*^r = r + 1.
  return std::pow(r_ + 1.0, 1.0 / r_);
}

namespace {

/// ∫_1^X (z−1)·k^{1+r−z} dk, handling the logarithmic case r = z−2.
double power_integral(double z, double r, double x) {
  const double e = 2.0 + r - z;  // exponent of the antiderivative
  if (std::abs(e) < 1e-12) return (z - 1.0) * std::log(x);
  return (z - 1.0) * (std::pow(x, e) - 1.0) / e;
}

}  // namespace

double AlgebraicTailUtilityContinuum::total_best_effort(double capacity) const {
  check_capacity(capacity);
  // Flows have positive utility only when their share C/k > 1, k < C.
  if (capacity <= 1.0) return 0.0;
  // ∫_1^C (z−1)k^{1−z}(1 − (k/C)^r) dk.
  const double head =
      (z_ - 1.0) * (1.0 - std::pow(capacity, 2.0 - z_)) / (z_ - 2.0);
  const double correction =
      std::pow(capacity, -r_) * power_integral(z_, r_, capacity);
  return head - correction;
}

double AlgebraicTailUtilityContinuum::total_reservation(double capacity) const {
  check_capacity(capacity);
  const double bstar = optimal_share();
  const double kmax = capacity / bstar;
  const double pi_star = r_ / (r_ + 1.0);  // π(b*) = 1 − 1/(r+1)
  if (kmax <= 1.0) {
    // Below the support edge the admitted mass is k_max flows at b*.
    return kmax * pi_star;
  }
  const double head =
      (z_ - 1.0) * (1.0 - std::pow(kmax, 2.0 - z_)) / (z_ - 2.0) -
      std::pow(capacity, -r_) * power_integral(z_, r_, kmax);
  const double tail = kmax * pi_star * std::pow(kmax, 1.0 - z_);
  return head + tail;
}

double AlgebraicTailUtilityContinuum::best_effort(double capacity) const {
  return total_best_effort(capacity) / mean_;
}

double AlgebraicTailUtilityContinuum::reservation(double capacity) const {
  return total_reservation(capacity) / mean_;
}

std::string AlgebraicTailUtilityContinuum::name() const {
  return "AlgebraicTailUtilityContinuum(z=" + std::to_string(z_) +
         ", r=" + std::to_string(r_) + ")";
}

}  // namespace bevr::core
