#include "bevr/core/variable_load.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "bevr/core/fixed_load.h"
#include "bevr/numerics/kahan.h"
#include "bevr/numerics/quadrature.h"
#include "bevr/numerics/roots.h"

namespace bevr::core {

VariableLoadModel::VariableLoadModel(
    std::shared_ptr<const dist::DiscreteLoad> load,
    std::shared_ptr<const utility::UtilityFunction> pi, Options options)
    : load_(std::move(load)), pi_(std::move(pi)), options_(options) {
  if (!load_) throw std::invalid_argument("VariableLoadModel: null load");
  if (!pi_) throw std::invalid_argument("VariableLoadModel: null utility");
  if (!(options_.tail_eps > 0.0) || options_.tail_eps >= 1.0) {
    throw std::invalid_argument("VariableLoadModel: tail_eps in (0,1) required");
  }
  if (options_.direct_budget < 1024) {
    throw std::invalid_argument("VariableLoadModel: direct_budget too small");
  }
  mean_ = load_->mean();
  if (!(mean_ > 0.0) || !std::isfinite(mean_)) {
    throw std::invalid_argument("VariableLoadModel: load mean must be finite");
  }
  // Hoisted out of flow_utility_between: the exact-tail truncation point
  // depends only on (load, tail_eps), never on capacity.
  k_exact_ = load_->truncation_point(options_.tail_eps);
}

std::optional<std::int64_t> VariableLoadModel::k_max(double capacity) const {
  return core::k_max(*pi_, capacity);
}

double VariableLoadModel::flow_utility_between(double capacity,
                                               std::int64_t k_lo,
                                               std::int64_t k_hi) const {
  if (capacity <= 0.0) return 0.0;
  k_lo = std::max<std::int64_t>(std::max<std::int64_t>(k_lo, 1),
                                load_->min_support());
  // Terms vanish for shares below the utility's dead zone: k > C/b0.
  const double b0 = pi_->zero_below();
  if (b0 > 0.0) {
    const auto cutoff =
        static_cast<std::int64_t>(std::floor(capacity / b0)) + 1;
    k_hi = std::min(k_hi, cutoff);
  }
  // Beyond the exact-tail point the remaining mass is negligible.
  const std::int64_t k_exact = k_exact_;
  k_hi = std::min(k_hi, std::max(k_exact, k_lo));
  if (k_hi < k_lo) return 0.0;

  auto term = [this, capacity](std::int64_t k) {
    const double kd = static_cast<double>(k);
    return load_->pmf(k) * kd * pi_->value(capacity / kd);
  };

  const std::int64_t count = k_hi - k_lo + 1;
  numerics::KahanSum sum;
  if (count <= options_.direct_budget) {
    for (std::int64_t k = k_lo; k <= k_hi; ++k) sum.add(term(k));
    return sum.value();
  }

  // Hybrid: direct summation over the head, midpoint (Euler–Maclaurin)
  // integral of the smooth continuation over the far tail.
  const std::int64_t k_direct = k_lo + options_.direct_budget - 1;
  for (std::int64_t k = k_lo; k <= k_direct; ++k) sum.add(term(k));
  auto integrand = [this, capacity](double x) {
    return load_->pmf_continuous(x) * x * pi_->value(capacity / x);
  };
  const double lo = static_cast<double>(k_direct) + 0.5;
  const double hi = static_cast<double>(k_hi) + 0.5;
  const auto tail = (k_hi >= k_exact)
                        ? numerics::integrate_to_infinity(integrand, lo, 1e-14,
                                                          1e-11)
                        : numerics::integrate(integrand, lo, hi, 1e-14, 1e-11);
  sum.add(tail.value);
  return sum.value();
}

double VariableLoadModel::best_effort(double capacity) const {
  if (!(capacity >= 0.0)) {
    throw std::invalid_argument("best_effort: capacity must be >= 0");
  }
  if (capacity == 0.0) return 0.0;
  return flow_utility_between(capacity, load_->min_support(),
                              std::numeric_limits<std::int64_t>::max()) /
         mean_;
}

double VariableLoadModel::reservation(double capacity) const {
  if (!(capacity >= 0.0)) {
    throw std::invalid_argument("reservation: capacity must be >= 0");
  }
  if (capacity == 0.0) return 0.0;
  const auto kmax = k_max(capacity);
  if (!kmax) {
    // Elastic utility: admission control never helps; R coincides with B.
    return best_effort(capacity);
  }
  if (*kmax < std::max<std::int64_t>(1, load_->min_support())) return 0.0;
  const double head = flow_utility_between(capacity, load_->min_support(), *kmax);
  const double kd = static_cast<double>(*kmax);
  const double tail = kd * pi_->value(capacity / kd) * load_->tail_above(*kmax);
  return (head + tail) / mean_;
}

double VariableLoadModel::total_best_effort(double capacity) const {
  return mean_ * best_effort(capacity);
}

double VariableLoadModel::total_reservation(double capacity) const {
  return mean_ * reservation(capacity);
}

double VariableLoadModel::performance_gap(double capacity) const {
  return std::max(0.0, reservation(capacity) - best_effort(capacity));
}

double VariableLoadModel::bandwidth_gap(double capacity) const {
  const double target = reservation(capacity);
  auto deficit = [this, capacity, target](double delta) {
    return best_effort(capacity + delta) - target;
  };
  if (deficit(0.0) >= 0.0) return 0.0;
  // Expand to bracket the catch-up point.
  double hi = std::max(1.0, 0.25 * mean_);
  constexpr double kSearchCap = 1e12;
  while (deficit(hi) < 0.0) {
    hi *= 2.0;
    if (hi > kSearchCap) return std::numeric_limits<double>::infinity();
  }
  const auto root = numerics::brent(
      deficit, 0.0, hi,
      {.x_tol = 1e-9, .x_rtol = 1e-10, .f_tol = 0.0, .max_iterations = 200});
  return std::max(0.0, root.x);
}

double VariableLoadModel::blocking_fraction(double capacity) const {
  const auto kmax = k_max(capacity);
  if (!kmax) return 0.0;  // elastic: nothing is ever denied
  if (*kmax < 1) return 1.0;
  const double kd = static_cast<double>(*kmax);
  const double blocked_mass =
      load_->partial_mean_above(*kmax) - kd * load_->tail_above(*kmax);
  return std::clamp(blocked_mass / mean_, 0.0, 1.0);
}

}  // namespace bevr::core
