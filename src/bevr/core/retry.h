// Retry extension (paper §5.2).
//
// In the basic model a blocked reservation is lost (utility 0). Here a
// blocked flow retries later, eventually gets in, but pays a utility
// penalty α per retry. Retries inflate the offered load: if the
// original load family has mean L, the effective load is the same
// family at mean L̂ ≥ L, fixed by conservation —
//     (admitted flow mass at L̂) = (original arrival mass):
//     L̂ · (1 − θ_{L̂}(C)) = L,
// with θ the flow-perspective blocking probability. The average number
// of retries per flow is D = (L̂ − L)/L, and the reservation utility
// becomes
//     R̃(C) = (L̂/L)·R_{L̂}(C) − α·D.
// Best effort is unaffected (it never blocks).
//
// Below the feasibility threshold (offered load cannot be carried even
// with unbounded retries, L ≥ sup_m E[min(K_m, k_max)]) the model
// diverges; reservation() reports −inf and welfare treats such
// capacities as worthless.
#pragma once

#include <functional>
#include <memory>

#include "bevr/core/variable_load.h"
#include "bevr/dist/discrete.h"
#include "bevr/utility/utility.h"

namespace bevr::core {

class RetryModel {
 public:
  /// Builds the load distribution of the family at a given mean
  /// (e.g. [](double m) { return make_shared<PoissonLoad>(m); }).
  using LoadFactory =
      std::function<std::shared_ptr<const dist::DiscreteLoad>(double mean)>;

  /// `alpha` is the per-retry utility penalty (the paper uses 0.1).
  RetryModel(LoadFactory factory, double base_mean,
             std::shared_ptr<const utility::UtilityFunction> pi, double alpha);

  /// Full solution of the retry fixed point at capacity C.
  struct Solution {
    bool feasible = false;
    double inflated_mean = 0.0;  ///< L̂
    double retries = 0.0;        ///< D = (L̂ − L)/L
    double blocking = 0.0;       ///< θ_{L̂}(C)
    double utility = 0.0;        ///< R̃(C)
  };
  [[nodiscard]] Solution solve(double capacity) const;

  /// R̃(C); −inf when infeasible.
  [[nodiscard]] double reservation(double capacity) const;

  /// B(C) of the basic model at the base mean (retries do not apply).
  [[nodiscard]] double best_effort(double capacity) const;

  /// δ̃(C) = R̃ − B (clamped at 0); Δ̃(C) with R̃(C) = B(C + Δ̃).
  [[nodiscard]] double performance_gap(double capacity) const;
  [[nodiscard]] double bandwidth_gap(double capacity) const;

  /// Totals for welfare: infeasible capacities yield −inf so the
  /// welfare optimiser never selects them.
  [[nodiscard]] double total_best_effort(double capacity) const;
  [[nodiscard]] double total_reservation(double capacity) const;

  [[nodiscard]] double base_mean() const { return base_mean_; }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  LoadFactory factory_;
  double base_mean_;
  std::shared_ptr<const utility::UtilityFunction> pi_;
  double alpha_;
  std::shared_ptr<VariableLoadModel> base_model_;
};

}  // namespace bevr::core
