#include "bevr/core/welfare.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "bevr/numerics/optimize.h"
#include "bevr/numerics/roots.h"

namespace bevr::core {

WelfarePoint maximize_welfare(
    const std::function<double(double)>& total_utility, double price,
    double scale_hint, int grid_points) {
  if (!(price > 0.0)) {
    throw std::invalid_argument("maximize_welfare: price must be > 0");
  }
  if (!(scale_hint > 0.0)) {
    throw std::invalid_argument("maximize_welfare: scale_hint must be > 0");
  }
  auto objective = [&total_utility, price](double c) {
    const double v = total_utility(c);
    return std::isfinite(v) ? v - price * c
                            : -std::numeric_limits<double>::infinity();
  };
  // Expand the upper search bound until the objective is declining at
  // the boundary (checking hi against 0.9·hi catches optima between
  // hi and 2·hi that a hi-vs-2·hi comparison would miss).
  double hi = 4.0 * scale_hint;
  constexpr double kHardCap = 1e10;
  while (hi < kHardCap && objective(hi) >= objective(0.9 * hi)) hi *= 2.0;
  const auto best =
      numerics::grid_refine_max(objective, 0.0, hi, grid_points, 1e-9);
  if (best.value <= 0.0) return {0.0, 0.0};  // building nothing is optimal
  return {best.x, best.value};
}

double equalizing_price_ratio(
    const std::function<double(double)>& welfare_best_effort,
    const std::function<double(double)>& welfare_reservation, double price) {
  if (!(price > 0.0)) {
    throw std::invalid_argument("equalizing_price_ratio: price must be > 0");
  }
  const double target = welfare_best_effort(price);
  auto deficit = [&welfare_reservation, target](double p_hat) {
    return welfare_reservation(p_hat) - target;
  };
  const double at_p = deficit(price);
  if (at_p <= 0.0) return 1.0;  // W_R(p) ≤ W_B(p) can only mean equality
  // W_R is nonincreasing: expand upward until it falls to the target.
  double hi = 2.0 * price;
  constexpr double kHardCap = 1e12;
  while (deficit(hi) > 0.0) {
    hi *= 2.0;
    if (hi / price > kHardCap) {
      return std::numeric_limits<double>::infinity();
    }
  }
  const auto root = numerics::brent(deficit, price, hi,
                                    {.x_tol = 1e-14, .x_rtol = 1e-10,
                                     .f_tol = 0.0, .max_iterations = 200});
  return root.x / price;
}

WelfareAnalysis::WelfareAnalysis(std::function<double(double)> v_best_effort,
                                 std::function<double(double)> v_reservation,
                                 double scale_hint)
    : v_b_(std::move(v_best_effort)),
      v_r_(std::move(v_reservation)),
      scale_(scale_hint) {
  if (!v_b_ || !v_r_) {
    throw std::invalid_argument("WelfareAnalysis: null utility callables");
  }
  if (!(scale_hint > 0.0)) {
    throw std::invalid_argument("WelfareAnalysis: scale_hint must be > 0");
  }
}

WelfarePoint WelfareAnalysis::best_effort(double price) const {
  return maximize_welfare(v_b_, price, scale_);
}

WelfarePoint WelfareAnalysis::reservation(double price) const {
  return maximize_welfare(v_r_, price, scale_);
}

double WelfareAnalysis::price_ratio(double price) const {
  auto wb = [this](double p) { return best_effort(p).welfare; };
  auto wr = [this](double p) { return reservation(p).welfare; };
  return equalizing_price_ratio(wb, wr, price);
}

}  // namespace bevr::core
