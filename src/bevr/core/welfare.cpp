#include "bevr/core/welfare.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "bevr/numerics/optimize.h"
#include "bevr/numerics/roots.h"

namespace bevr::core {

WelfarePoint maximize_welfare(
    const std::function<double(double)>& total_utility, double price,
    double scale_hint, int grid_points) {
  return maximize_welfare(total_utility, numerics::GridEvalFn{}, price,
                          scale_hint, grid_points);
}

WelfarePoint maximize_welfare(
    const std::function<double(double)>& total_utility,
    const numerics::GridEvalFn& total_utility_grid, double price,
    double scale_hint, int grid_points) {
  if (!(price > 0.0)) {
    throw std::invalid_argument("maximize_welfare: price must be > 0");
  }
  if (!(scale_hint > 0.0)) {
    throw std::invalid_argument("maximize_welfare: scale_hint must be > 0");
  }
  auto objective = [&total_utility, price](double c) {
    const double v = total_utility(c);
    return std::isfinite(v) ? v - price * c
                            : -std::numeric_limits<double>::infinity();
  };
  // Expand the upper search bound until the objective is declining at
  // the boundary (checking hi against 0.9·hi catches optima between
  // hi and 2·hi that a hi-vs-2·hi comparison would miss). The boundary
  // value is carried across doublings instead of re-evaluated — the
  // expansion costs one objective call per step, not two.
  double hi = 4.0 * scale_hint;
  double at_hi = objective(hi);
  constexpr double kHardCap = 1e10;
  while (hi < kHardCap && at_hi >= objective(0.9 * hi)) {
    hi *= 2.0;
    at_hi = objective(hi);
  }
  numerics::MaxResult best;
  if (total_utility_grid) {
    // Batch the scan stage. The objective arithmetic applied to the
    // batched V values is the exact expression `objective` uses, so
    // the scan sees the identical doubles in the identical order.
    auto objective_grid = [&total_utility_grid, price](
                              double lo, double grid_hi, int n,
                              std::span<double> out) {
      total_utility_grid(lo, grid_hi, n, out);
      const double step = (grid_hi - lo) / (n - 1);
      for (int i = 0; i < n; ++i) {
        const double v = out[static_cast<std::size_t>(i)];
        out[static_cast<std::size_t>(i)] =
            std::isfinite(v) ? v - price * (lo + step * i)
                             : -std::numeric_limits<double>::infinity();
      }
    };
    best = numerics::grid_refine_max(objective, objective_grid, 0.0, hi,
                                     grid_points, 1e-9);
  } else {
    best = numerics::grid_refine_max(objective, 0.0, hi, grid_points, 1e-9);
  }
  if (best.value <= 0.0) return {0.0, 0.0};  // building nothing is optimal
  return {best.x, best.value};
}

double equalizing_price_ratio(
    const std::function<double(double)>& welfare_best_effort,
    const std::function<double(double)>& welfare_reservation, double price) {
  if (!(price > 0.0)) {
    throw std::invalid_argument("equalizing_price_ratio: price must be > 0");
  }
  const double target = welfare_best_effort(price);
  auto deficit = [&welfare_reservation, target](double p_hat) {
    return welfare_reservation(p_hat) - target;
  };
  const double at_p = deficit(price);
  if (at_p <= 0.0) return 1.0;  // W_R(p) ≤ W_B(p) can only mean equality
  // W_R is nonincreasing: expand upward until it falls to the target.
  double hi = 2.0 * price;
  constexpr double kHardCap = 1e12;
  while (deficit(hi) > 0.0) {
    hi *= 2.0;
    if (hi / price > kHardCap) {
      return std::numeric_limits<double>::infinity();
    }
  }
  const auto root = numerics::brent(deficit, price, hi,
                                    {.x_tol = 1e-14, .x_rtol = 1e-10,
                                     .f_tol = 0.0, .max_iterations = 200});
  return root.x / price;
}

WelfareAnalysis::WelfareAnalysis(std::function<double(double)> v_best_effort,
                                 std::function<double(double)> v_reservation,
                                 double scale_hint)
    : WelfareAnalysis(std::move(v_best_effort), std::move(v_reservation),
                      numerics::GridEvalFn{}, numerics::GridEvalFn{},
                      scale_hint) {}

WelfareAnalysis::WelfareAnalysis(std::function<double(double)> v_best_effort,
                                 std::function<double(double)> v_reservation,
                                 numerics::GridEvalFn v_best_effort_grid,
                                 numerics::GridEvalFn v_reservation_grid,
                                 double scale_hint)
    : v_b_(std::move(v_best_effort)),
      v_r_(std::move(v_reservation)),
      vg_b_(std::move(v_best_effort_grid)),
      vg_r_(std::move(v_reservation_grid)),
      scale_(scale_hint) {
  if (!v_b_ || !v_r_) {
    throw std::invalid_argument("WelfareAnalysis: null utility callables");
  }
  if (!(scale_hint > 0.0)) {
    throw std::invalid_argument("WelfareAnalysis: scale_hint must be > 0");
  }
}

WelfarePoint WelfareAnalysis::best_effort(double price) const {
  return maximize_welfare(v_b_, vg_b_, price, scale_);
}

WelfarePoint WelfareAnalysis::reservation(double price) const {
  return maximize_welfare(v_r_, vg_r_, price, scale_);
}

double WelfareAnalysis::price_ratio(double price) const {
  auto wb = [this](double p) { return best_effort(p).welfare; };
  auto wr = [this](double p) { return reservation(p).welfare; };
  return equalizing_price_ratio(wb, wr, price);
}

}  // namespace bevr::core
