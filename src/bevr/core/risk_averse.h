// Risk-averse utility extension (paper §5, "risk-averse utility
// functions — where the utility is not the average performance
// experienced, but something less").
//
// A risk-averse user's realised value is penalised by the variability
// of the performance they EXPERIENCE. We use the classic
// mean-minus-deviation functional over the flow-perspective
// performance distribution, conditional on actually being in the
// network (a blocked flow experiences nothing — deterministically):
//     U_B = E_Q[π] − λ·Std_Q[π]
// with Q(k) = P(k)·k/k̄ the flow-perspective load. For reservations the
// treatment of the admission lottery is a real modelling fork, so both
// conventions are supported:
//   * kConditional — dispersion of the performance experienced GIVEN
//     admission:  U_R = P[admit]·(E[π|admit] − λ·Std[π|admit]).
//     Reservations cap the conditional spread, so risk aversion
//     systematically widens the gap — but for rigid utilities it also
//     changes the large-C exponent (1−U_B ~ λC^{(2−z)/2} versus
//     1−U_R ~ C^{2−z}), so Δ/C diverges.
//   * kUnconditional — the lottery is part of the risk: U_R =
//     E[π·admit] − λ·Std[π·admit]. Both architectures then share the
//     C^{(2−z)/2} dispersion exponent and Δ/C converges to a constant —
//     this is the convention under which the paper's "did not change
//     the basic nature of our asymptotic results" holds (tested). The
//     price: under heavy blocking a risk-averse user can prefer best
//     effort (the gap inverts), which kConditional never shows.
//
// λ = 0 reduces exactly to the basic model under either convention.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "bevr/dist/discrete.h"
#include "bevr/dist/size_biased.h"
#include "bevr/utility/utility.h"

namespace bevr::core {

/// How the admission lottery enters the reservation-side risk term.
enum class BlockingRisk {
  kConditional,    ///< dispersion of π given admission (default)
  kUnconditional,  ///< dispersion of π·1[admitted] (lottery included)
};

class RiskAverseModel {
 public:
  /// `risk_aversion` is λ ≥ 0 (0 = risk neutral = basic model).
  RiskAverseModel(std::shared_ptr<const dist::DiscreteLoad> load,
                  std::shared_ptr<const utility::UtilityFunction> pi,
                  double risk_aversion,
                  BlockingRisk blocking_risk = BlockingRisk::kConditional);

  [[nodiscard]] double risk_aversion() const { return lambda_; }
  [[nodiscard]] BlockingRisk blocking_risk() const { return blocking_risk_; }
  [[nodiscard]] double mean_load() const { return mean_; }
  [[nodiscard]] std::optional<std::int64_t> k_max(double capacity) const;

  /// Flow-perspective performance moments (exposed for analysis and
  /// tests). For best effort `admission_probability` is 1 and the
  /// moments are unconditional; for reservations they are conditional
  /// on admission.
  struct Moments {
    double admission_probability = 1.0;
    double mean = 0.0;    ///< E[π | admitted]
    double stddev = 0.0;  ///< Std[π | admitted]
  };
  [[nodiscard]] Moments best_effort_moments(double capacity) const;
  [[nodiscard]] Moments reservation_moments(double capacity) const;

  /// Risk-adjusted per-flow utilities U = E[π] − λ·Std[π] (clamped ≥ 0).
  [[nodiscard]] double best_effort(double capacity) const;
  [[nodiscard]] double reservation(double capacity) const;

  [[nodiscard]] double performance_gap(double capacity) const;
  [[nodiscard]] double bandwidth_gap(double capacity) const;

 private:
  std::shared_ptr<const dist::DiscreteLoad> load_;
  std::shared_ptr<const dist::SizeBiasedLoad> q_;
  std::shared_ptr<const utility::UtilityFunction> pi_;
  double lambda_;
  BlockingRisk blocking_risk_;
  double mean_;
};

}  // namespace bevr::core
