// Sampling extension (paper §5.1).
//
// A flow does not see one static load level: during its lifetime it
// samples the load S times and its performance is governed by the
// *worst* (maximum-load) sample — modelling users whose utility tracks
// minimum rather than average quality.
//
// Samples are drawn from the flow-perspective distribution
// Q(k) = P(k)·k/k̄. Best effort:
//     B_S(C) = Σ_k Q_S(k)·π(C/k),   Q_S(k) = F_Q(k)^S − F_Q(k−1)^S.
// Reservations: the accept/reject decision uses the first sample only
// (a flow arriving into load k₁ > k_max is admitted with probability
// k_max/k₁) and an admitted flow never faces load above k_max:
//     R_S(C) = Σ_{k₁} Q(k₁)·min(1, k_max/k₁)·
//              E[π(C / min(k_max, max(k₁, M)))],
// with M the maximum of the remaining S−1 samples.
//
// S = 1 reduces exactly to the basic variable-load model (tested).
//
// Footnote 9 of the paper notes that with sampling even ELASTIC
// applications can benefit from reservations — but only under an
// explicitly chosen finite admission limit (k_max is infinite for
// elastic utilities). `set_admission_limit` provides that override.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "bevr/dist/discrete.h"
#include "bevr/dist/size_biased.h"
#include "bevr/utility/utility.h"

namespace bevr::core {

class SamplingModel {
 public:
  /// `load` is the time-perspective P(k); the model derives Q internally.
  SamplingModel(std::shared_ptr<const dist::DiscreteLoad> load,
                std::shared_ptr<const utility::UtilityFunction> pi,
                int samples);

  [[nodiscard]] int samples() const { return samples_; }
  [[nodiscard]] double mean_load() const { return mean_; }

  /// Override the admission threshold (paper footnote 9: a finite cap
  /// chosen by policy rather than by maximising k·π(C/k)). Pass
  /// nullopt to restore the k_max(C) rule.
  void set_admission_limit(std::optional<std::int64_t> limit);

  /// The admission threshold in force at capacity C: the override if
  /// set, otherwise k_max(C) (nullopt for elastic utilities).
  [[nodiscard]] std::optional<std::int64_t> k_max(double capacity) const;

  /// Per-flow expected utility under best effort, B_S(C).
  [[nodiscard]] double best_effort(double capacity) const;

  /// Per-flow expected utility under reservations, R_S(C).
  [[nodiscard]] double reservation(double capacity) const;

  /// δ_S(C) = R_S − B_S (clamped at 0).
  [[nodiscard]] double performance_gap(double capacity) const;

  /// Δ_S(C) with R_S(C) = B_S(C + Δ).
  [[nodiscard]] double bandwidth_gap(double capacity) const;

  /// Totals (×k̄) for welfare comparisons.
  [[nodiscard]] double total_best_effort(double capacity) const;
  [[nodiscard]] double total_reservation(double capacity) const;

 private:
  std::shared_ptr<const dist::DiscreteLoad> load_;
  std::shared_ptr<const dist::SizeBiasedLoad> q_;
  std::shared_ptr<const utility::UtilityFunction> pi_;
  int samples_;
  double mean_;
  std::optional<std::int64_t> admission_override_;
};

}  // namespace bevr::core
