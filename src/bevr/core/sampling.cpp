#include "bevr/core/sampling.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "bevr/core/fixed_load.h"
#include "bevr/numerics/kahan.h"
#include "bevr/numerics/roots.h"

namespace bevr::core {

SamplingModel::SamplingModel(std::shared_ptr<const dist::DiscreteLoad> load,
                             std::shared_ptr<const utility::UtilityFunction> pi,
                             int samples)
    : load_(std::move(load)), pi_(std::move(pi)), samples_(samples) {
  if (!load_) throw std::invalid_argument("SamplingModel: null load");
  if (!pi_) throw std::invalid_argument("SamplingModel: null utility");
  if (samples_ < 1) throw std::invalid_argument("SamplingModel: samples >= 1");
  q_ = std::make_shared<dist::SizeBiasedLoad>(load_);
  mean_ = load_->mean();
}

void SamplingModel::set_admission_limit(std::optional<std::int64_t> limit) {
  if (limit && *limit < 1) {
    throw std::invalid_argument("SamplingModel: admission limit must be >= 1");
  }
  admission_override_ = limit;
}

std::optional<std::int64_t> SamplingModel::k_max(double capacity) const {
  if (admission_override_) return admission_override_;
  return core::k_max(*pi_, capacity);
}

double SamplingModel::best_effort(double capacity) const {
  if (!(capacity >= 0.0)) {
    throw std::invalid_argument("best_effort: capacity must be >= 0");
  }
  if (capacity == 0.0) return 0.0;
  const double s = static_cast<double>(samples_);
  const std::int64_t k_lo = q_->min_support();
  // Dead zone: π(C/k) = 0 for k > C/b0.
  std::int64_t k_cut = std::numeric_limits<std::int64_t>::max();
  const double b0 = pi_->zero_below();
  if (b0 > 0.0) {
    k_cut = static_cast<std::int64_t>(std::floor(capacity / b0)) + 1;
  }

  numerics::KahanSum sum;
  numerics::KahanSum f_acc;  // running F_Q(k)
  double w_prev = 0.0;       // F_Q(k-1)^S
  constexpr std::int64_t kHardCap = 50'000'000;
  for (std::int64_t k = k_lo; k - k_lo < kHardCap; ++k) {
    f_acc.add(q_->pmf(k));
    const double f = std::min(1.0, f_acc.value());
    const double w = std::pow(f, s);
    if (k <= k_cut) {
      sum.add((w - w_prev) * pi_->value(capacity / static_cast<double>(k)));
    }
    w_prev = w;
    if (k > k_cut) break;
    // Periodically bound the neglected tail with the exact Q tail:
    // remaining ≤ S·(1−F(k))·π(C/(k+1)) (π decreasing in k).
    if ((k - k_lo) % 512 == 511) {
      const double tail_bound =
          s * q_->tail_above(k) * pi_->value(capacity / static_cast<double>(k));
      if (tail_bound < 1e-13 * std::max(sum.value(), 1e-6)) break;
    }
  }
  return sum.value();
}

double SamplingModel::reservation(double capacity) const {
  if (!(capacity >= 0.0)) {
    throw std::invalid_argument("reservation: capacity must be >= 0");
  }
  if (capacity == 0.0) return 0.0;
  const auto kmax_opt = k_max(capacity);
  if (!kmax_opt) return best_effort(capacity);  // elastic: no admission control
  const std::int64_t kmax = *kmax_opt;
  if (kmax < 1) return 0.0;
  const double kmax_d = static_cast<double>(kmax);
  const double pi_cap = pi_->value(capacity / kmax_d);

  // Flows whose first sample lands at or above k_max: admitted with
  // probability k_max/k₁ and then always see the capped load k_max.
  //   Σ_{k₁ ≥ kmax} Q(k₁)·(kmax/k₁)·π(C/kmax)
  //     = π(C/kmax)·kmax·P[K ≥ kmax]/k̄.
  const double tail_part =
      pi_cap * kmax_d * load_->tail_above(kmax - 1) / mean_;

  const std::int64_t m0 = q_->min_support();
  if (kmax - 1 < m0) return tail_part;

  // Head: first sample k₁ < k_max (admitted with probability 1).
  // E(k₁) = W(k₁)·π(C/k₁) + Σ_{m=k₁+1}^{kmax-1} (W(m)−W(m−1))·π(C/m)
  //         + (1 − W(kmax−1))·π(C/kmax),   W(j) = F_Q(j)^{S−1}.
  const auto n = static_cast<std::size_t>(kmax - m0);  // entries m0..kmax-1
  std::vector<double> q_pmf(n), w(n), pi_val(n);
  const double s1 = static_cast<double>(samples_ - 1);
  numerics::KahanSum f_acc;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t k = m0 + static_cast<std::int64_t>(i);
    q_pmf[i] = q_->pmf(k);
    f_acc.add(q_pmf[i]);
    const double f = std::min(1.0, f_acc.value());
    // 0^0 = 1 makes the S = 1 case collapse to W ≡ 1 as required.
    w[i] = (samples_ == 1) ? 1.0 : std::pow(f, s1);
    pi_val[i] = pi_->value(capacity / static_cast<double>(k));
  }
  // Suffix sums T(k₁) = Σ_{m>k₁}^{kmax-1} (W(m)−W(m−1))·π(C/m).
  std::vector<double> t(n + 1, 0.0);
  for (std::size_t i = n; i-- > 1;) {
    t[i] = t[i + 1] + (w[i] - w[i - 1]) * pi_val[i];
  }
  const double cap_term = (1.0 - w[n - 1]) * pi_cap;
  numerics::KahanSum head;
  for (std::size_t i = 0; i < n; ++i) {
    const double expected = w[i] * pi_val[i] + t[i + 1] + cap_term;
    head.add(q_pmf[i] * expected);
  }
  return head.value() + tail_part;
}

double SamplingModel::performance_gap(double capacity) const {
  return std::max(0.0, reservation(capacity) - best_effort(capacity));
}

double SamplingModel::bandwidth_gap(double capacity) const {
  const double target = reservation(capacity);
  auto deficit = [this, capacity, target](double delta) {
    return best_effort(capacity + delta) - target;
  };
  if (deficit(0.0) >= 0.0) return 0.0;
  double hi = std::max(1.0, 0.25 * mean_);
  while (deficit(hi) < 0.0) {
    hi *= 2.0;
    if (hi > 1e12) return std::numeric_limits<double>::infinity();
  }
  const auto root = numerics::brent(deficit, 0.0, hi,
                                    {.x_tol = 1e-8, .x_rtol = 1e-9,
                                     .f_tol = 0.0, .max_iterations = 200});
  return std::max(0.0, root.x);
}

double SamplingModel::total_best_effort(double capacity) const {
  return mean_ * best_effort(capacity);
}

double SamplingModel::total_reservation(double capacity) const {
  return mean_ * reservation(capacity);
}

}  // namespace bevr::core
