// Variable-capacity (welfare) model, paper §4.
//
// A provider facing bandwidth price p chooses capacity to maximise
// total welfare W = V(C) − p·C, giving a provisioning function C(p)
// and welfare function W(p) per architecture. The architectures are
// compared by the *equalising price ratio*
//     γ(p) = p̂ / p   with   W_R(p̂) = W_B(p):
// how much more per unit of bandwidth the reservation-capable network
// could cost and still deliver the same welfare. γ(p) → 1 as p → 0 for
// Poisson/exponential loads, but stays bounded away from 1 for
// algebraic loads — the paper's core economic finding.
#pragma once

#include <functional>

#include "bevr/numerics/optimize.h"

namespace bevr::core {

/// A provisioning decision: chosen capacity and the welfare it yields.
struct WelfarePoint {
  double capacity = 0.0;
  double welfare = 0.0;
};

/// Maximise V(C) − p·C over C ≥ 0 for an arbitrary (possibly kinked or
/// stepped) total-utility function V. `scale_hint` should be the
/// natural capacity scale (≈ k̄·b̂); the search expands beyond it as
/// needed. The provider can always build nothing, so the result's
/// welfare is ≥ 0.
[[nodiscard]] WelfarePoint maximize_welfare(
    const std::function<double(double)>& total_utility, double price,
    double scale_hint, int grid_points = 512);

/// maximize_welfare with the scan stage of the search batched:
/// `total_utility_grid` fills out[i] with V(lo + step·i) — the exact
/// doubles total_utility would return — in one call, so a batched
/// backend (bevr::kernels, or a caller-side cache of the recurring
/// V grid) pays the virtual-dispatch and lookup costs once per scan
/// instead of once per point. Same probes, same comparisons, same
/// result bits as the scalar overload. Null grid fn falls back to it.
[[nodiscard]] WelfarePoint maximize_welfare(
    const std::function<double(double)>& total_utility,
    const numerics::GridEvalFn& total_utility_grid, double price,
    double scale_hint, int grid_points = 512);

/// Equalising price ratio γ(p): solves W_R(p̂) = W_B(p) for p̂ ≥ p given
/// the two welfare functions (W_R must be nonincreasing in price).
/// Returns γ = p̂/p; +inf if W_R never falls to W_B within the search
/// bound (does not occur in the paper's configurations).
[[nodiscard]] double equalizing_price_ratio(
    const std::function<double(double)>& welfare_best_effort,
    const std::function<double(double)>& welfare_reservation, double price);

/// Convenience bundle: welfare analysis of one discrete variable-load
/// model (wraps maximize_welfare over total_best_effort /
/// total_reservation of any model exposing them as callables).
class WelfareAnalysis {
 public:
  /// `v_best_effort`, `v_reservation`: unnormalised total utilities.
  WelfareAnalysis(std::function<double(double)> v_best_effort,
                  std::function<double(double)> v_reservation,
                  double scale_hint);

  /// Batched variant: the grid callables feed the scan stage of every
  /// maximisation (see the grid maximize_welfare overload); the scalar
  /// callables still serve the refinement probes. Null grid callables
  /// degrade to the scalar path member by member.
  WelfareAnalysis(std::function<double(double)> v_best_effort,
                  std::function<double(double)> v_reservation,
                  numerics::GridEvalFn v_best_effort_grid,
                  numerics::GridEvalFn v_reservation_grid, double scale_hint);

  [[nodiscard]] WelfarePoint best_effort(double price) const;
  [[nodiscard]] WelfarePoint reservation(double price) const;

  /// γ(p) as defined above.
  [[nodiscard]] double price_ratio(double price) const;

 private:
  std::function<double(double)> v_b_;
  std::function<double(double)> v_r_;
  numerics::GridEvalFn vg_b_;
  numerics::GridEvalFn vg_r_;
  double scale_;
};

}  // namespace bevr::core
