#include "bevr/core/asymptotics.h"

#include <cmath>
#include <stdexcept>

namespace bevr::core::asymptotics {

namespace {

void check_z(double z) {
  if (!(z > 2.0)) {
    throw std::invalid_argument("asymptotics: z must exceed 2");
  }
}

void check_floor(double a) {
  if (!(a > 0.0) || !(a < 1.0)) {
    throw std::invalid_argument("asymptotics: floor must lie in (0, 1)");
  }
}

/// The adaptive overload factor g(z, a) = 1 + a(1−a^{z−2})/(1−a);
/// g → z−1 as a → 1 (rigid), g → 1 as a → 0 (fully adaptive).
double adaptive_factor(double z, double a) {
  return 1.0 + a * (1.0 - std::pow(a, z - 2.0)) / (1.0 - a);
}

}  // namespace

double capacity_ratio_rigid(double z) {
  check_z(z);
  return std::pow(z - 1.0, 1.0 / (z - 2.0));
}

double capacity_ratio_adaptive(double z, double floor) {
  check_z(z);
  check_floor(floor);
  return std::pow(adaptive_factor(z, floor), 1.0 / (z - 2.0));
}

double capacity_ratio_rigid_sampling(double z, int samples) {
  check_z(z);
  if (samples < 1) throw std::invalid_argument("asymptotics: samples >= 1");
  return std::pow(static_cast<double>(samples) * (z - 1.0), 1.0 / (z - 2.0));
}

double capacity_ratio_adaptive_sampling(double z, double floor, int samples) {
  check_z(z);
  check_floor(floor);
  if (samples < 1) throw std::invalid_argument("asymptotics: samples >= 1");
  return std::pow(static_cast<double>(samples) * adaptive_factor(z, floor),
                  1.0 / (z - 2.0));
}

double capacity_ratio_rigid_retry(double z, double alpha) {
  check_z(z);
  if (!(alpha > 0.0)) throw std::invalid_argument("asymptotics: alpha > 0");
  return std::pow((z - 1.0) / alpha, 1.0 / (z - 2.0));
}

double capacity_ratio_adaptive_retry(double z, double floor, double alpha) {
  check_z(z);
  check_floor(floor);
  if (!(alpha > 0.0)) throw std::invalid_argument("asymptotics: alpha > 0");
  return std::pow(adaptive_factor(z, floor) / alpha, 1.0 / (z - 2.0));
}

double basic_model_ratio_bound() noexcept {
  return std::exp(1.0);  // lim_{z→2⁺} (z−1)^{1/(z−2)}
}

double exponential_rigid_gap(double beta, double capacity) {
  if (!(beta > 0.0)) throw std::invalid_argument("asymptotics: beta > 0");
  if (!(capacity > 0.0)) throw std::invalid_argument("asymptotics: capacity > 0");
  return std::log1p(beta * capacity) / beta;
}

double exponential_adaptive_gap_limit(double beta, double floor) {
  if (!(beta > 0.0)) throw std::invalid_argument("asymptotics: beta > 0");
  check_floor(floor);
  return -std::log1p(-floor) / beta;
}

double exponential_adaptive_retry_gap_limit(double beta, double floor,
                                            double alpha) {
  if (!(beta > 0.0)) throw std::invalid_argument("asymptotics: beta > 0");
  check_floor(floor);
  if (!(alpha > 0.0) || !(alpha * (1.0 - floor) < 1.0)) {
    throw std::invalid_argument("asymptotics: need 0 < alpha(1-a) < 1");
  }
  return -std::log(alpha * (1.0 - floor)) / beta;
}

}  // namespace bevr::core::asymptotics
