#include "bevr/core/fixed_load.h"

#include <cmath>
#include <stdexcept>

#include "bevr/numerics/optimize.h"

namespace bevr::core {

double total_utility(const utility::UtilityFunction& pi, double capacity,
                     std::int64_t flows) {
  if (flows < 0) throw std::invalid_argument("total_utility: flows < 0");
  if (!(capacity >= 0.0)) {
    throw std::invalid_argument("total_utility: capacity < 0");
  }
  if (flows == 0) return 0.0;
  const double kd = static_cast<double>(flows);
  return kd * pi.value(capacity / kd);
}

std::optional<std::int64_t> k_max(const utility::UtilityFunction& pi,
                                  double capacity) {
  if (!(capacity > 0.0)) {
    throw std::invalid_argument("k_max: capacity must be positive");
  }
  // Exact fast paths for the step-structured utilities.
  if (const auto* rigid = dynamic_cast<const utility::Rigid*>(&pi)) {
    const auto k = static_cast<std::int64_t>(
        std::floor(capacity / rigid->requirement()));
    return k >= 1 ? std::optional<std::int64_t>(k) : std::nullopt;
  }
  if (dynamic_cast<const utility::PiecewiseLinear*>(&pi) != nullptr) {
    // V(k) = k for k ≤ C, then (C - a·k)/(1-a) decreasing: peak at ⌊C⌋.
    const auto k = static_cast<std::int64_t>(std::floor(capacity));
    return k >= 1 ? std::optional<std::int64_t>(k) : std::nullopt;
  }
  if (!pi.inelastic()) return std::nullopt;  // V(k) increasing (elastic)

  auto v = [&pi, capacity](std::int64_t k) {
    return total_utility(pi, capacity, k);
  };
  // Search [1, cap]; grow the cap if the argmax keeps landing on it
  // (guards against mis-flagged inelastic() implementations).
  std::int64_t cap = std::max<std::int64_t>(
      1024, static_cast<std::int64_t>(std::ceil(8.0 * capacity)) + 16);
  const bool unimodal = pi.unimodal_total_utility();
  for (int attempt = 0; attempt < 20; ++attempt) {
    const auto best = numerics::integer_argmax(v, 1, cap, unimodal);
    if (best.k < cap - 1) return best.k;
    cap *= 8;
  }
  return std::nullopt;
}

double optimal_share(const utility::UtilityFunction& pi) {
  if (const auto* rigid = dynamic_cast<const utility::Rigid*>(&pi)) {
    return rigid->requirement();
  }
  if (dynamic_cast<const utility::PiecewiseLinear*>(&pi) != nullptr) {
    return 1.0;  // π(b)/b peaks at the knee b = 1
  }
  if (!pi.inelastic()) {
    throw std::invalid_argument(
        "optimal_share: elastic utilities have no finite maximiser of pi(b)/b");
  }
  // Maximise π(b)/b over log-b (scale-free bracketing).
  auto objective = [&pi](double log_b) {
    const double b = std::exp(log_b);
    return pi.value(b) / b;
  };
  const auto best =
      numerics::grid_refine_max(objective, std::log(1e-4), std::log(1e4),
                                /*grid_points=*/2048, /*x_tol=*/1e-12);
  return std::exp(best.x);
}

double k_max_continuum(const utility::UtilityFunction& pi, double capacity) {
  if (!(capacity > 0.0)) {
    throw std::invalid_argument("k_max_continuum: capacity must be positive");
  }
  return capacity / optimal_share(pi);
}

}  // namespace bevr::core
