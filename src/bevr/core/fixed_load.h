// Fixed-load model (paper §2).
//
// A single link of capacity C carries k identical flows; bandwidth is
// split evenly, so total utility is V(k; C) = k·π(C/k). If V peaks at a
// finite k_max(C), denying access to flows beyond k_max raises total
// utility — this is exactly what a reservation-capable architecture can
// do and a best-effort-only one cannot.
#pragma once

#include <cstdint>
#include <optional>

#include "bevr/utility/utility.h"

namespace bevr::core {

/// Total utility of `flows` identical flows sharing `capacity` evenly:
/// V(k; C) = k·π(C/k). V(0; C) = 0.
[[nodiscard]] double total_utility(const utility::UtilityFunction& pi,
                                   double capacity, std::int64_t flows);

/// k_max(C) = argmax_{k ≥ 1} k·π(C/k).
/// Returns nullopt when V(k) is increasing without a finite maximiser
/// (elastic utilities, for which admission control never helps).
/// Exact closed forms are used for Rigid (⌊C/b̂⌋) and PiecewiseLinear
/// (⌊C⌋); other utilities use unimodal integer search.
[[nodiscard]] std::optional<std::int64_t> k_max(
    const utility::UtilityFunction& pi, double capacity);

/// Continuum-model per-flow share b* maximising π(b)/b, i.e. solving
/// π′(b)·b = π(b). The continuum admission threshold is C/b*.
[[nodiscard]] double optimal_share(const utility::UtilityFunction& pi);

/// Continuum k_max(C) = C / optimal_share(pi).
[[nodiscard]] double k_max_continuum(const utility::UtilityFunction& pi,
                                     double capacity);

}  // namespace bevr::core
