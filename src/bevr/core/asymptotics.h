// Closed-form asymptotics and the paper's conjectured bounds
// (§3.3, §4, §5, §6).
//
// All "capacity ratios" are lim_{C→∞} (C + Δ(C))/C under algebraic
// (Pareto) continuum loads — how much total bandwidth a best-effort
// network needs, as a multiple of the reservation network's, to match
// its performance. The paper conjectures these coincide with the
// small-price limits of the equalising price ratio γ(p), and that the
// basic model's worst case (z → 2⁺) is bounded by e — a bound the §5
// extensions break.
#pragma once

namespace bevr::core::asymptotics {

/// Basic model, rigid utility: ((z−1))^{1/(z−2)}.
[[nodiscard]] double capacity_ratio_rigid(double z);

/// Basic model, piecewise-adaptive (floor a):
/// (1 + a(1−a^{z−2})/(1−a))^{1/(z−2)}.
[[nodiscard]] double capacity_ratio_adaptive(double z, double floor);

/// Sampling extension (§5.1): (S(z−1))^{1/(z−2)} — diverges as z → 2⁺
/// for any S > 1, breaking the basic model's e bound.
[[nodiscard]] double capacity_ratio_rigid_sampling(double z, int samples);

/// Sampling + adaptive: (S·(1 + a(1−a^{z−2})/(1−a)))^{1/(z−2)}.
[[nodiscard]] double capacity_ratio_adaptive_sampling(double z, double floor,
                                                      int samples);

/// Retry extension (§5.2): ((z−1)/α)^{1/(z−2)} — diverges as z → 2⁺
/// for any α < 1.
[[nodiscard]] double capacity_ratio_rigid_retry(double z, double alpha);

/// Retry + adaptive: ((1 + a(1−a^{z−2})/(1−a))/α)^{1/(z−2)}.
[[nodiscard]] double capacity_ratio_adaptive_retry(double z, double floor,
                                                   double alpha);

/// The basic-model worst case, lim_{z→2⁺} (z−1)^{1/(z−2)} = e, i.e.
/// Δ(C)/C ≤ e − 1 and γ(p) ≤ e (paper §6 conjecture).
[[nodiscard]] double basic_model_ratio_bound() noexcept;

/// Exponential-load limits of the bandwidth gap:
/// rigid: Δ(C) ≈ ln(1+βC)/β (returned at a given C);
[[nodiscard]] double exponential_rigid_gap(double beta, double capacity);
/// adaptive: Δ(∞) = −ln(1−a)/β;
[[nodiscard]] double exponential_adaptive_gap_limit(double beta, double floor);
/// adaptive with retries: Δ(∞) = −ln(α(1−a))/β (for α(1−a) < 1).
[[nodiscard]] double exponential_adaptive_retry_gap_limit(double beta,
                                                          double floor,
                                                          double alpha);

}  // namespace bevr::core::asymptotics
