#include "bevr/core/retry.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "bevr/numerics/roots.h"

namespace bevr::core {

RetryModel::RetryModel(LoadFactory factory, double base_mean,
                       std::shared_ptr<const utility::UtilityFunction> pi,
                       double alpha)
    : factory_(std::move(factory)),
      base_mean_(base_mean),
      pi_(std::move(pi)),
      alpha_(alpha) {
  if (!factory_) throw std::invalid_argument("RetryModel: null factory");
  if (!pi_) throw std::invalid_argument("RetryModel: null utility");
  if (!(base_mean > 0.0)) {
    throw std::invalid_argument("RetryModel: base_mean must be > 0");
  }
  if (!(alpha >= 0.0)) {
    throw std::invalid_argument("RetryModel: alpha must be >= 0");
  }
  base_model_ =
      std::make_shared<VariableLoadModel>(factory_(base_mean_), pi_);
}

RetryModel::Solution RetryModel::solve(double capacity) const {
  if (!(capacity >= 0.0)) {
    throw std::invalid_argument("RetryModel::solve: capacity must be >= 0");
  }
  if (capacity == 0.0) {
    // No capacity: nothing is ever admitted, retries never resolve.
    Solution zero;
    zero.feasible = false;
    zero.utility = -std::numeric_limits<double>::infinity();
    return zero;
  }
  // Carried mass at offered mean m: m·(1 − θ_m(C)) = E[min(K_m, k_max)].
  auto carried = [this, capacity](double m) {
    const VariableLoadModel model(factory_(m), pi_);
    return m * (1.0 - model.blocking_fraction(capacity));
  };
  Solution solution;
  const double at_base = carried(base_mean_);
  if (at_base >= base_mean_) {
    // No blocking at all: the basic model applies unchanged.
    solution.feasible = true;
    solution.inflated_mean = base_mean_;
    const VariableLoadModel model(factory_(base_mean_), pi_);
    solution.blocking = model.blocking_fraction(capacity);
    solution.retries = 0.0;
    solution.utility = model.reservation(capacity);
    return solution;
  }
  // Expand upward looking for a mean that carries the base arrivals.
  double hi = 2.0 * base_mean_;
  constexpr double kMeanCap = 1e7;
  while (carried(hi) < base_mean_) {
    hi *= 2.0;
    if (hi > kMeanCap) {
      // Carried mass saturates below the arrival rate: retries pile up
      // without bound; the system has no stationary regime.
      solution.feasible = false;
      solution.utility = -std::numeric_limits<double>::infinity();
      return solution;
    }
  }
  const auto root = numerics::brent(
      [&carried, this](double m) { return carried(m) - base_mean_; },
      base_mean_, hi,
      {.x_tol = 1e-9, .x_rtol = 1e-10, .f_tol = 0.0, .max_iterations = 200});
  const double inflated = root.x;
  const VariableLoadModel model(factory_(inflated), pi_);
  solution.feasible = true;
  solution.inflated_mean = inflated;
  solution.blocking = model.blocking_fraction(capacity);
  solution.retries = (inflated - base_mean_) / base_mean_;
  // R̃ = (L̂/L)·R_{L̂}(C) − α·D: total delivered utility per original flow,
  // minus the retry penalties.
  solution.utility = (inflated / base_mean_) * model.reservation(capacity) -
                     alpha_ * solution.retries;
  return solution;
}

double RetryModel::reservation(double capacity) const {
  return solve(capacity).utility;
}

double RetryModel::best_effort(double capacity) const {
  return base_model_->best_effort(capacity);
}

double RetryModel::performance_gap(double capacity) const {
  const double r = reservation(capacity);
  if (!std::isfinite(r)) return 0.0;
  return std::max(0.0, r - best_effort(capacity));
}

double RetryModel::bandwidth_gap(double capacity) const {
  const double target = reservation(capacity);
  if (!std::isfinite(target)) return 0.0;
  auto deficit = [this, capacity, target](double delta) {
    return best_effort(capacity + delta) - target;
  };
  if (deficit(0.0) >= 0.0) return 0.0;
  double hi = std::max(1.0, 0.25 * base_mean_);
  while (deficit(hi) < 0.0) {
    hi *= 2.0;
    if (hi > 1e12) return std::numeric_limits<double>::infinity();
  }
  const auto root = numerics::brent(deficit, 0.0, hi,
                                    {.x_tol = 1e-9, .x_rtol = 1e-10,
                                     .f_tol = 0.0, .max_iterations = 200});
  return std::max(0.0, root.x);
}

double RetryModel::total_best_effort(double capacity) const {
  return base_mean_ * best_effort(capacity);
}

double RetryModel::total_reservation(double capacity) const {
  const double r = reservation(capacity);
  return std::isfinite(r) ? base_mean_ * r
                          : -std::numeric_limits<double>::infinity();
}

}  // namespace bevr::core
