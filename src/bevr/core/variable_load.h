// Discrete variable-load model (paper §3.1) — the paper's central
// quantitative engine.
//
// The load is a random number K of identical flows, K ~ P(k). Per-flow
// normalised utilities of the two architectures:
//
//   B(C) = (1/k̄) Σ_k P(k)·k·π(C/k)                      (best-effort)
//   R(C) = (1/k̄) [ Σ_{k ≤ k_max} P(k)·k·π(C/k)
//                  + k_max·π(C/k_max)·P[K > k_max] ]      (reservations)
//
// with k_max = k_max(C) from the fixed-load model. Derived quantities:
//   performance gap  δ(C) = R(C) − B(C)
//   bandwidth gap    Δ(C) solving R(C) = B(C + Δ(C))
// Δ(C) is the paper's headline metric: the extra capacity a best-effort
// network needs to match a reservation-capable one.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "bevr/dist/discrete.h"
#include "bevr/utility/utility.h"

namespace bevr::core {

class VariableLoadModel {
 public:
  /// Accuracy/cost knobs for the series evaluation.
  struct Options {
    /// Exact-tail truncation target for Σ P(k)(...) sums.
    double tail_eps = 1e-13;
    /// Maximum directly-summed terms before switching the remainder to
    /// an Euler–Maclaurin integral of pmf_continuous (heavy tails).
    /// bench_ablation shows 65k terms already match a 50M-term direct
    /// sum to machine precision on the paper's configurations.
    std::int64_t direct_budget = 65'536;
  };

  VariableLoadModel(std::shared_ptr<const dist::DiscreteLoad> load,
                    std::shared_ptr<const utility::UtilityFunction> pi,
                    Options options);

  /// Default-accuracy construction.
  VariableLoadModel(std::shared_ptr<const dist::DiscreteLoad> load,
                    std::shared_ptr<const utility::UtilityFunction> pi)
      : VariableLoadModel(std::move(load), std::move(pi), Options{}) {}

  /// Mean offered load k̄ (the paper fixes 100).
  [[nodiscard]] double mean_load() const { return mean_; }

  /// Admission threshold k_max(C); nullopt when utility is elastic.
  [[nodiscard]] std::optional<std::int64_t> k_max(double capacity) const;

  /// Normalised best-effort utility B(C) ∈ [0, 1].
  [[nodiscard]] double best_effort(double capacity) const;

  /// Normalised reservation utility R(C) ∈ [0, 1]; R ≥ B.
  [[nodiscard]] double reservation(double capacity) const;

  /// Unnormalised totals V = k̄·(per-flow utility), for welfare.
  [[nodiscard]] double total_best_effort(double capacity) const;
  [[nodiscard]] double total_reservation(double capacity) const;

  /// δ(C) = R(C) − B(C), clamped at 0 against rounding noise.
  [[nodiscard]] double performance_gap(double capacity) const;

  /// Δ(C) with R(C) = B(C + Δ); +inf if B can never catch up within
  /// the search bound (does not occur for the paper's configurations).
  [[nodiscard]] double bandwidth_gap(double capacity) const;

  /// Flow-perspective blocking probability of the reservation system,
  /// θ(C) = Σ_{k > k_max} Q(k)·(k − k_max)/k (drives the §5.2 retries).
  [[nodiscard]] double blocking_fraction(double capacity) const;

  [[nodiscard]] const dist::DiscreteLoad& load() const { return *load_; }
  [[nodiscard]] const utility::UtilityFunction& util() const { return *pi_; }

  /// The accuracy/cost knobs this model was built with. The kernels
  /// layer reads these to mirror the series evaluation exactly.
  [[nodiscard]] const Options& options() const { return options_; }

  /// Shared ownership of the load/utility, for wrappers (kernels) that
  /// must outlive-proof their references.
  [[nodiscard]] const std::shared_ptr<const dist::DiscreteLoad>& load_ptr()
      const {
    return load_;
  }
  [[nodiscard]] const std::shared_ptr<const utility::UtilityFunction>&
  util_ptr() const {
    return pi_;
  }

 private:
  /// Σ_{k=k_lo}^{k_hi} P(k)·k·π(C/k), hybrid direct/integral evaluation.
  [[nodiscard]] double flow_utility_between(double capacity,
                                            std::int64_t k_lo,
                                            std::int64_t k_hi) const;

  std::shared_ptr<const dist::DiscreteLoad> load_;
  std::shared_ptr<const utility::UtilityFunction> pi_;
  Options options_;
  double mean_;
  /// truncation_point(tail_eps), hoisted: capacity-independent, and the
  /// closed form is nontrivial for heavy-tailed loads.
  std::int64_t k_exact_;
};

}  // namespace bevr::core
