// Event-driven admission engine: replays one ArrivalTrace against one
// AdmissionPolicy on a sim::EventQueue and reports aggregate outcomes.
//
// Event choreography per request:
//   submit ──request()──▶ admitted? ──▶ start event (token kept)
//      │                      │              │
//      │                      no             ├─ cancel < start: cancel
//      │                      ▼              │  event retracts the
//      │                  blocked,           │  start token (the event
//      │                  scored 0           │  queue's cancellable-
//      │                                     │  event path) and
//      │                                     │  releases the booking
//      │                                     ▼
//      │                               on_start → departure event
//      │                                             │
//      └──────────── score π(allocated rate) ◀───────┘
//
// Requests submitting before `warmup` are simulated (they occupy the
// calendar and shape the load every later flow sees) but not scored.
// Cancelled-before-start flows are simulated, counted, and unscored.
// The engine is single-threaded and deterministic: outcomes are a pure
// function of (trace, policy, config).
#pragma once

#include <cstdint>

#include "bevr/admission/policy.h"
#include "bevr/admission/trace.h"
#include "bevr/utility/utility.h"

namespace bevr::admission {

struct EngineConfig {
  double warmup = 0.0;    ///< requests submitting earlier are unscored
  bool flush_obs = true;  ///< batch admission/* counters at run end
  /// Seed for per-flow trace ids (obs::TraceContext::derive over the
  /// flow's trace order). Decision events (admit / block /
  /// counteroffer / cancel) are recorded against these ids in the
  /// flight recorder always, and in the trace collector when tracing
  /// is enabled — write-only side channels; outcomes are unchanged.
  std::uint64_t trace_seed = 0;
};

struct AdmissionReport {
  // Counts over scored (post-warmup) requests.
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t blocked = 0;
  std::uint64_t cancelled = 0;  ///< retracted before their start
  std::uint64_t counteroffers_accepted = 0;
  // Calendar lifetime totals (all requests, warmup included); zero for
  // policies without a calendar.
  std::uint64_t calendar_offers = 0;
  std::uint64_t counteroffers = 0;
  std::uint64_t expirations = 0;

  double mean_utility = 0.0;  ///< scored flows; blocked score 0
  /// blocked / (offered - cancelled) over the scored window.
  double blocking_probability = 0.0;
  double mean_allocated_rate = 0.0;  ///< scored admitted flows
  std::uint64_t peak_active = 0;     ///< max concurrently-served flows
};

/// Replay `trace` against `policy`, scoring allocations through `pi`.
[[nodiscard]] AdmissionReport run_admission(
    const ArrivalTrace& trace, AdmissionPolicy& policy,
    const utility::UtilityFunction& pi, const EngineConfig& config = {});

}  // namespace bevr::admission
