#include "bevr/admission/policy.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "bevr/core/fixed_load.h"
#include "bevr/kernels/warm_kmax.h"

namespace bevr::admission {

std::string to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kBestEffort:
      return "best_effort";
    case PolicyKind::kOnlineKmax:
      return "online_kmax";
    case PolicyKind::kAdvanceBooking:
      return "advance_booking";
  }
  throw std::invalid_argument("to_string: unknown PolicyKind");
}

namespace {

void validate_common(const PolicyConfig& config) {
  if (!(config.capacity > 0.0) || !std::isfinite(config.capacity)) {
    throw std::invalid_argument(
        "PolicyConfig: capacity must be finite and > 0");
  }
  if (!(config.tick > 0.0) || !std::isfinite(config.tick)) {
    throw std::invalid_argument("PolicyConfig: tick must be finite and > 0");
  }
}

/// Admit-all: no calendar, no state beyond the live count; the share
/// is only known once the flow actually starts.
class BestEffortPolicy final : public AdmissionPolicy {
 public:
  explicit BestEffortPolicy(const PolicyConfig& config)
      : capacity_(config.capacity) {
    validate_common(config);
  }

  Decision request(const FlowRequest& req) override {
    return Decision{true, req.start, req.rate, 0, false};
  }

  double on_start(const FlowRequest&, const Decision&) override {
    ++active_;
    return capacity_ / static_cast<double>(active_);
  }

  void on_end(const FlowRequest&, const Decision&, double) override {
    if (active_ > 0) --active_;
  }

  void on_cancel(const FlowRequest&, const Decision&, double) override {
    // Never started: holds no share, so the active count is untouched.
  }

 private:
  const double capacity_;
  std::uint64_t active_ = 0;
};

/// The reservation architecture run online: every flow gets the fixed
/// share C/k_max, so a calendar booking at that share admits iff fewer
/// than k_max reservations overlap the window.
class OnlineKmaxPolicy final : public AdmissionPolicy {
 public:
  explicit OnlineKmaxPolicy(const PolicyConfig& config)
      : calendar_(CapacityCalendar::Options{config.capacity, config.tick}) {
    validate_common(config);
    if (!config.pi) {
      throw std::invalid_argument("OnlineKmaxPolicy: utility required");
    }
    // WarmKmax and core::k_max are documented to give identical
    // answers, so the use_kernels flag can never change results (the
    // golden matrix pins this byte-for-byte).
    const auto k = config.use_warm_kmax
                       ? kernels::WarmKmax().k_max(*config.pi, config.capacity)
                       : core::k_max(*config.pi, config.capacity);
    if (!k) {
      throw std::invalid_argument(
          "OnlineKmaxPolicy: elastic utility has no k_max — admission "
          "control cannot help; use best effort");
    }
    share_ = config.capacity / static_cast<double>(*k);
  }

  Decision request(const FlowRequest& req) override {
    calendar_.expire_until(req.submit);  // keep the live index tight
    const auto offer =
        calendar_.reserve(req.start, req.start + req.duration, share_);
    if (!offer.admitted) return Decision{false, req.start, 0.0, 0, false};
    return Decision{true, req.start, share_, offer.id, false};
  }

  double on_start(const FlowRequest&, const Decision& decision) override {
    return decision.rate;
  }

  void on_end(const FlowRequest&, const Decision& decision,
              double now) override {
    if (decision.booking != 0) calendar_.release(decision.booking, now);
  }

  [[nodiscard]] const CapacityCalendar* calendar() const override {
    return &calendar_;
  }

 private:
  CapacityCalendar calendar_;
  double share_ = 0.0;
};

/// Advance bookings at the requested rate, with two malleability axes
/// when the calendar counters: accept a reduced rate down to
/// min_rate_fraction of the ask, or shift the start by multiples of
/// shift_step up to max_start_shift.
class AdvanceBookingPolicy final : public AdmissionPolicy {
 public:
  explicit AdvanceBookingPolicy(const PolicyConfig& config)
      : calendar_(CapacityCalendar::Options{config.capacity, config.tick}),
        min_rate_fraction_(config.min_rate_fraction),
        max_start_shift_(config.max_start_shift),
        shift_step_(config.shift_step) {
    validate_common(config);
    if (!(min_rate_fraction_ > 0.0) || !(min_rate_fraction_ <= 1.0)) {
      throw std::invalid_argument(
          "AdvanceBookingPolicy: min_rate_fraction must lie in (0, 1]");
    }
    if (!(max_start_shift_ >= 0.0) || !std::isfinite(max_start_shift_)) {
      throw std::invalid_argument(
          "AdvanceBookingPolicy: max_start_shift must be finite and >= 0");
    }
    if (max_start_shift_ > 0.0 && !(shift_step_ > 0.0)) {
      throw std::invalid_argument(
          "AdvanceBookingPolicy: shifting needs shift_step > 0");
    }
  }

  Decision request(const FlowRequest& req) override {
    calendar_.expire_until(req.submit);  // keep the live index tight
    const auto offer =
        calendar_.reserve(req.start, req.start + req.duration, req.rate);
    if (offer.admitted) {
      return Decision{true, req.start, req.rate, offer.id, false};
    }
    // Counteroffer path 1: take the suggested (reduced) rate if it
    // keeps at least min_rate_fraction of the ask.
    if (offer.suggested >= min_rate_fraction_ * req.rate &&
        offer.suggested > 0.0) {
      const auto reduced = calendar_.reserve(
          req.start, req.start + req.duration, offer.suggested);
      if (reduced.admitted) {
        return Decision{true, req.start, offer.suggested, reduced.id, true};
      }
    }
    // Counteroffer path 2: full rate at a later start.
    for (double shift = shift_step_;
         shift <= max_start_shift_ + 1e-12 * max_start_shift_;
         shift += shift_step_) {
      const double start = req.start + shift;
      const auto shifted =
          calendar_.reserve(start, start + req.duration, req.rate);
      if (shifted.admitted) {
        return Decision{true, start, req.rate, shifted.id, true};
      }
    }
    return Decision{false, req.start, 0.0, 0, false};
  }

  double on_start(const FlowRequest&, const Decision& decision) override {
    return decision.rate;
  }

  void on_end(const FlowRequest&, const Decision& decision,
              double now) override {
    if (decision.booking != 0) calendar_.release(decision.booking, now);
  }

  [[nodiscard]] const CapacityCalendar* calendar() const override {
    return &calendar_;
  }

 private:
  CapacityCalendar calendar_;
  const double min_rate_fraction_;
  const double max_start_shift_;
  const double shift_step_;
};

}  // namespace

std::unique_ptr<AdmissionPolicy> make_policy(PolicyKind kind,
                                             const PolicyConfig& config) {
  switch (kind) {
    case PolicyKind::kBestEffort:
      return std::make_unique<BestEffortPolicy>(config);
    case PolicyKind::kOnlineKmax:
      return std::make_unique<OnlineKmaxPolicy>(config);
    case PolicyKind::kAdvanceBooking:
      return std::make_unique<AdvanceBookingPolicy>(config);
  }
  throw std::invalid_argument("make_policy: unknown PolicyKind");
}

}  // namespace bevr::admission
