// Admission policies: the three control disciplines the admission
// scenarios compare on identical arrival traces.
//
//  * kBestEffort     — admit everything; active flows split the link
//                      evenly (the paper's best-effort architecture).
//  * kOnlineKmax     — reserve a fixed share C/k_max per flow, where
//                      k_max = argmax_k k·π(C/k) from the fixed-load
//                      model; admission is a calendar booking at that
//                      share, so at most k_max flows overlap (the
//                      paper's reservation architecture, run online).
//  * kAdvanceBooking — book the requested rate over [start, end) on
//                      the capacity calendar ahead of time; a request
//                      that does not fit may accept the calendar's
//                      reduced-rate counteroffer or shift its start
//                      (malleable reservations).
//
// A policy sees each request three times: `request` at submit (the
// admission decision; calendar bookings happen here), `on_start` when
// an admitted flow begins service (returns the bandwidth actually
// allocated — best effort only knows its share now), and `on_end` at
// departure or pre-start cancellation (releases any booking).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "bevr/admission/calendar.h"
#include "bevr/admission/trace.h"
#include "bevr/utility/utility.h"

namespace bevr::admission {

enum class PolicyKind {
  kBestEffort,
  kOnlineKmax,
  kAdvanceBooking,
};

[[nodiscard]] std::string to_string(PolicyKind kind);

struct PolicyConfig {
  double capacity = 100.0;
  /// Per-flow utility π; required by kOnlineKmax (which throws for
  /// elastic utilities where k_max does not exist).
  std::shared_ptr<const utility::UtilityFunction> pi;
  double tick = 0.25;  ///< calendar slice width
  /// kOnlineKmax: compute k_max via kernels::WarmKmax (documented
  /// bit-identical to core::k_max, so results never depend on this).
  bool use_warm_kmax = true;
  /// kAdvanceBooking malleability: accept a reduced-rate counteroffer
  /// down to this fraction of the requested rate (1.0 = rigid) ...
  double min_rate_fraction = 1.0;
  /// ... and/or retry the full rate at starts shifted by multiples of
  /// shift_step, up to max_start_shift later (0.0 = no shifting).
  double max_start_shift = 0.0;
  double shift_step = 0.5;
};

class AdmissionPolicy {
 public:
  /// Outcome of an admission request.
  struct Decision {
    bool admitted = false;
    double start = 0.0;       ///< granted start (may be shifted)
    double rate = 0.0;        ///< granted rate (may be reduced)
    std::uint64_t booking = 0;  ///< calendar reservation id (0 = none)
    bool countered = false;   ///< admitted via counteroffer or shift
  };

  virtual ~AdmissionPolicy() = default;

  /// Admission decision at submit time; books the calendar on success.
  [[nodiscard]] virtual Decision request(const FlowRequest& req) = 0;

  /// The flow begins service; returns the allocated bandwidth (what
  /// the engine scores through π).
  [[nodiscard]] virtual double on_start(const FlowRequest& req,
                                        const Decision& decision) = 0;

  /// The flow departs at `now` after being served (on_start ran).
  /// Releases any booking.
  virtual void on_end(const FlowRequest& req, const Decision& decision,
                      double now) = 0;

  /// The flow is retracted at `now` before its start (on_start never
  /// ran — the flow holds no bandwidth, only a booking). Defaults to
  /// on_end, which is right for calendar policies where "end" means
  /// "release the booking"; best effort overrides it to a no-op since
  /// a never-started flow has no share to give back.
  virtual void on_cancel(const FlowRequest& req, const Decision& decision,
                         double now) {
    on_end(req, decision, now);
  }

  /// The policy's calendar, or nullptr (best effort keeps none).
  [[nodiscard]] virtual const CapacityCalendar* calendar() const {
    return nullptr;
  }
};

[[nodiscard]] std::unique_ptr<AdmissionPolicy> make_policy(
    PolicyKind kind, const PolicyConfig& config);

}  // namespace bevr::admission
