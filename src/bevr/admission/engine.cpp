#include "bevr/admission/engine.h"

#include <algorithm>
#include <stdexcept>

#include "bevr/obs/flight_recorder.h"
#include "bevr/obs/metrics.h"
#include "bevr/obs/trace.h"
#include "bevr/sim/event_queue.h"
#include "bevr/sim/metrics.h"

namespace bevr::admission {

namespace {

/// Mutable run state shared by the event closures.
struct Runner {
  AdmissionPolicy& policy;
  const utility::UtilityFunction& pi;
  const EngineConfig& config;

  sim::EventQueue queue{};

  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t blocked = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t counteroffers_accepted = 0;
  std::uint64_t active = 0;
  std::uint64_t peak_active = 0;
  std::uint64_t next_flow = 0;          ///< trace-order flow index
  std::uint64_t seen_expirations = 0;   ///< calendar sweep watermark
  sim::RunningStats utility{};
  sim::RunningStats allocated_rate{};

  [[nodiscard]] bool scored(const FlowRequest& req) const {
    return req.submit >= config.warmup;
  }

  /// Calendar occupancy (committed/capacity at sim-now) when the
  /// policy has a calendar; fraction of flows in service is the best
  /// stand-in otherwise. Purely observational.
  [[nodiscard]] double occupancy() const {
    if (const CapacityCalendar* cal = policy.calendar()) {
      return cal->capacity() > 0.0
                 ? cal->committed_at(queue.now()) / cal->capacity()
                 : 0.0;
    }
    return static_cast<double>(active);
  }

  /// One per-flow decision event, mirrored to the flight recorder
  /// (always on) and the trace collector (when enabled), each carrying
  /// the occupancy the decision saw. The calendar retires expired
  /// reservations in batched sweeps, so expirations surface here as a
  /// delta against the last decision's watermark.
  void record_decision(const char* name, obs::FlightCode code,
                       const obs::TraceContext& trace,
                       std::uint64_t flow_index) {
    const double seen = occupancy();
    obs::FlightRecorder::global().record(code, trace.trace_id, nullptr, seen,
                                         static_cast<double>(flow_index));
    if (const CapacityCalendar* cal = policy.calendar()) {
      const std::uint64_t expirations = cal->expirations();
      if (expirations != seen_expirations) {
        obs::FlightRecorder::global().record(
            obs::FlightCode::kExpireSweep, trace.trace_id, nullptr,
            static_cast<double>(expirations - seen_expirations));
        seen_expirations = expirations;
      }
    }
    obs::TraceCollector& collector = obs::TraceCollector::global();
    if (collector.enabled()) {
      obs::TraceEvent event;
      event.name = name;
      event.begin_ns = obs::now_ns();
      event.end_ns = event.begin_ns;
      event.trace_id = trace.trace_id;
      event.span_id = trace.span_id;
      event.value = seen;
      event.flags = obs::TraceEvent::kInstant | obs::TraceEvent::kHasValue;
      collector.record(event);
    }
  }

  void depart(const FlowRequest& req, const AdmissionPolicy::Decision& d,
              double rate) {
    policy.on_end(req, d, queue.now());
    if (active > 0) --active;
    if (scored(req)) {
      utility.add(pi.value(rate));
      allocated_rate.add(rate);
    }
  }

  void start(const FlowRequest& req, const AdmissionPolicy::Decision& d) {
    const double rate = policy.on_start(req, d);
    ++active;
    peak_active = std::max(peak_active, active);
    queue.schedule(d.start + req.duration,
                   [this, req, d, rate] { depart(req, d, rate); });
  }

  void submit(const FlowRequest& req) {
    const std::uint64_t flow_index = next_flow++;
    const obs::TraceContext trace =
        obs::TraceContext::derive(config.trace_seed, flow_index);
    const auto decision = policy.request(req);
    const bool in_window = scored(req);
    if (in_window) ++offered;
    if (!decision.admitted) {
      record_decision("admission/block", obs::FlightCode::kBlock, trace,
                      flow_index);
      if (in_window) {
        ++blocked;
        utility.add(0.0);  // blocked flows get zero bandwidth
      }
      return;
    }
    record_decision(
        decision.countered ? "admission/counteroffer" : "admission/admit",
        decision.countered ? obs::FlightCode::kCounteroffer
                           : obs::FlightCode::kAdmit,
        trace, flow_index);
    if (in_window) {
      ++admitted;
      if (decision.countered) ++counteroffers_accepted;
    }
    const auto start_token = queue.schedule(
        decision.start, [this, req, decision] { start(req, decision); });
    if (req.cancel < decision.start) {
      // Pre-start retraction: the start event must never fire — this
      // is the event queue's cancellation path doing real work.
      queue.schedule(std::max(req.cancel, queue.now()),
                     [this, req, decision, start_token, trace, flow_index] {
                       queue.cancel(start_token);
                       policy.on_cancel(req, decision, queue.now());
                       record_decision("admission/cancel",
                                       obs::FlightCode::kCancel, trace,
                                       flow_index);
                       if (scored(req)) ++cancelled;
                     });
    }
  }
};

}  // namespace

AdmissionReport run_admission(const ArrivalTrace& trace,
                              AdmissionPolicy& policy,
                              const utility::UtilityFunction& pi,
                              const EngineConfig& config) {
  if (!(config.warmup >= 0.0)) {
    throw std::invalid_argument("run_admission: warmup must be >= 0");
  }
  Runner runner{policy, pi, config};
  // The trace is sorted by submit, so scheduling in trace order gives
  // simultaneous submits FIFO treatment matching their trace order.
  for (const FlowRequest& req : trace.requests) {
    if (req.submit < 0.0 || req.start < req.submit || !(req.duration > 0.0) ||
        !(req.rate > 0.0)) {
      throw std::invalid_argument("run_admission: malformed trace request");
    }
    runner.queue.schedule(req.submit,
                          [&runner, req] { runner.submit(req); });
  }
  while (runner.queue.step()) {
  }

  AdmissionReport report;
  report.offered = runner.offered;
  report.admitted = runner.admitted;
  report.blocked = runner.blocked;
  report.cancelled = runner.cancelled;
  report.counteroffers_accepted = runner.counteroffers_accepted;
  if (const CapacityCalendar* cal = policy.calendar()) {
    report.calendar_offers = cal->offers();
    report.counteroffers = cal->counteroffers();
    report.expirations = cal->expirations();
  }
  report.mean_utility = runner.utility.mean();
  const std::uint64_t decided = runner.offered - runner.cancelled;
  report.blocking_probability =
      decided > 0
          ? static_cast<double>(runner.blocked) / static_cast<double>(decided)
          : 0.0;
  report.mean_allocated_rate = runner.allocated_rate.mean();
  report.peak_active = runner.peak_active;

  // Counters batch locally during the event loop and flush here once,
  // mirroring the flow simulator's instrumentation pattern.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  if (config.flush_obs && registry.enabled()) {
    registry.counter("admission/offered").add(report.offered);
    registry.counter("admission/admitted").add(report.admitted);
    registry.counter("admission/blocked").add(report.blocked);
    registry.counter("admission/cancelled").add(report.cancelled);
    registry.counter("admission/counteroffers").add(report.counteroffers);
    registry.counter("admission/counteroffers_accepted")
        .add(report.counteroffers_accepted);
    registry.counter("admission/expirations").add(report.expirations);
  }
  return report;
}

}  // namespace bevr::admission
