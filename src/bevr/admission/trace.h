// Arrival traces for the admission layer.
//
// Every admission policy comparison in the paper-style experiments
// hinges on feeding each policy the *same* sequence of flow requests:
// differences in outcome must come from the policy, never from the
// draw. An ArrivalTrace is therefore materialised once — synthetically
// from a seeded generator, or replayed from a file — and then handed,
// unchanged, to each policy's engine run. Synthetic generation draws
// each request field from its own `Rng::split` sub-stream, so changing
// one knob (say cancel_p) never perturbs the arrival times of the rest
// of the trace.
//
// The file reader is a hostile-input surface (fuzzed by
// tests/admission/test_trace_hostile.cpp): malformed lines — truncated
// fields, non-numeric tokens, NaN/inf times, negative durations,
// out-of-order submits — raise std::invalid_argument naming the line,
// never undefined behaviour.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "bevr/sim/rng.h"

namespace bevr::admission {

/// One flow request as the admission layer sees it. `submit` is when
/// the request reaches the admission control (book-ahead requests
/// submit before they intend to start); `cancel`, when finite and
/// before `start`, retracts an advance booking before it begins.
struct FlowRequest {
  double submit = 0.0;
  double start = 0.0;     ///< requested service start (>= submit)
  double duration = 1.0;  ///< requested service time (> 0)
  double rate = 1.0;      ///< requested bandwidth (> 0)
  double cancel = std::numeric_limits<double>::infinity();
};

/// A materialised request sequence, sorted by submit time.
struct ArrivalTrace {
  std::vector<FlowRequest> requests;
  double horizon = 0.0;  ///< no request starts after this
};

enum class TraceKind {
  kPoisson,  ///< Poisson arrivals, exponential durations
  kBursty,   ///< two-state modulated Poisson (hot/cold rates)
  kFile,     ///< replay from `path`
};

[[nodiscard]] std::string to_string(TraceKind kind);

/// Recipe for a trace. For synthetic kinds the *start* times follow
/// the arrival process; submit = max(0, start - Exp(book_ahead)) when
/// book_ahead > 0, else submit = start. With cancel_p > 0 each request
/// independently gets a cancel time uniform in [submit, start).
struct TraceSpec {
  TraceKind kind = TraceKind::kPoisson;
  double arrival_rate = 50.0;  ///< flows per time unit (Poisson)
  double burst_hot_rate = 100.0;
  double burst_cold_rate = 10.0;
  double burst_hot_p = 0.3;     ///< per-arrival chance of the hot state
  double mean_duration = 1.0;   ///< exponential holding-time mean
  double rate = 1.0;            ///< bandwidth each flow requests
  double book_ahead = 0.0;      ///< mean submit-to-start lead time
  double cancel_p = 0.0;        ///< chance a booking cancels pre-start
  double horizon = 500.0;       ///< stop generating starts past this
  std::string path;             ///< required iff kind == kFile

  /// Throws std::invalid_argument on out-of-range fields.
  void validate() const;
};

/// Generate a synthetic trace from `spec` using sub-streams of `root`
/// (streams 0..3: interarrivals, durations, book-ahead leads,
/// cancellations). Deterministic in (spec, root.seed()). Throws for
/// kFile specs — use load_trace for those.
[[nodiscard]] ArrivalTrace generate_trace(const TraceSpec& spec,
                                          const sim::Rng& root);

/// Parse a trace from a stream: one request per line as four
/// whitespace-separated numbers `submit start duration rate`; blank
/// lines and lines starting with '#' are skipped. Lines must be sorted
/// by submit time. Any malformed line raises std::invalid_argument
/// with its line number.
[[nodiscard]] ArrivalTrace parse_trace(std::istream& in);

/// parse_trace over the named file; throws std::invalid_argument when
/// the file cannot be opened.
[[nodiscard]] ArrivalTrace load_trace(const std::string& path);

}  // namespace bevr::admission
