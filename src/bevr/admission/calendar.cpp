#include "bevr/admission/calendar.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace bevr::admission {

namespace {

// Admission slack against float residue: committed slots accumulate
// add/subtract pairs whose cancellation is not exact in binary
// floating point, and a full link must not start rejecting rates that
// fit by construction. Scaled by capacity so the tolerance is
// dimensionally sane. Deterministic — it is a constant of the
// comparison, not a measurement.
constexpr double kSlackScale = 1e-9;

}  // namespace

CapacityCalendar::CapacityCalendar(const Options& options)
    : capacity_(options.capacity),
      tick_(options.tick),
      max_ticks_(options.max_ticks) {
  if (!(capacity_ > 0.0) || !std::isfinite(capacity_)) {
    throw std::invalid_argument(
        "CapacityCalendar: capacity must be finite and > 0");
  }
  if (!(tick_ > 0.0) || !std::isfinite(tick_)) {
    throw std::invalid_argument("CapacityCalendar: tick must be finite and > 0");
  }
  if (max_ticks_ == 0) {
    throw std::invalid_argument("CapacityCalendar: max_ticks must be > 0");
  }
  occupancy_gauge_ =
      obs::MetricsRegistry::global().gauge("admission/calendar/occupancy");
}

std::pair<std::size_t, std::size_t> CapacityCalendar::window_ticks(
    double start, double end) const {
  if (!std::isfinite(start) || !std::isfinite(end) || start < 0.0) {
    throw std::invalid_argument(
        "CapacityCalendar: window times must be finite and start >= 0");
  }
  if (!(end > start)) {
    throw std::invalid_argument("CapacityCalendar: window requires end > start");
  }
  const double first_f = std::floor(start / tick_);
  const double last_f = std::ceil(end / tick_);
  if (last_f > static_cast<double>(max_ticks_)) {
    throw std::invalid_argument(
        "CapacityCalendar: window exceeds the calendar's max_ticks horizon");
  }
  auto first = static_cast<std::size_t>(first_f);
  auto last = static_cast<std::size_t>(last_f);
  if (last <= first) last = first + 1;  // sub-tick window still books a slice
  return {first, last};
}

double CapacityCalendar::min_free_locked(std::size_t first,
                                         std::size_t last) const {
  double free = capacity_;
  const std::size_t bounded = std::min(last, committed_.size());
  for (std::size_t t = first; t < bounded; ++t) {
    free = std::min(free, capacity_ - committed_[t]);
  }
  // Ticks past the table's current end are untouched: fully free.
  return std::max(free, 0.0);
}

void CapacityCalendar::commit_locked(std::size_t first, std::size_t last,
                                     double delta) {
  if (committed_.size() < last) committed_.resize(last, 0.0);
  for (std::size_t t = first; t < last; ++t) committed_[t] += delta;
}

CapacityCalendar::Offer CapacityCalendar::reserve(double start, double end,
                                                  double rate) {
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    throw std::invalid_argument(
        "CapacityCalendar: reservation rate must be finite and > 0");
  }
  const auto [first, last] = window_ticks(start, end);
  const std::lock_guard<std::mutex> lock(mutex_);
  ++offers_;
  const double free = min_free_locked(first, last);
  if (rate > free + capacity_ * kSlackScale) {
    ++counteroffers_;
    return Offer{0, false, free};
  }
  const std::uint64_t id = next_id_++;
  commit_locked(first, last, rate);
  live_.emplace(id, Reservation{first, last, rate});
  expiry_.emplace(last, id);
  occupancy_gauge_.set(committed_[first] / capacity_);
  return Offer{id, true, rate};
}

double CapacityCalendar::available(double start, double end) const {
  const auto [first, last] = window_ticks(start, end);
  const std::lock_guard<std::mutex> lock(mutex_);
  return min_free_locked(first, last);
}

bool CapacityCalendar::release(std::uint64_t id, double from_time) {
  if (!std::isfinite(from_time)) {
    throw std::invalid_argument(
        "CapacityCalendar: release time must be finite");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = live_.find(id);
  if (it == live_.end()) return false;
  const Reservation resv = it->second;
  live_.erase(it);
  const double from_f =
      std::max(0.0, std::floor(std::max(from_time, 0.0) / tick_));
  const auto from_tick = std::max(
      resv.start_tick, static_cast<std::size_t>(
                           std::min(from_f, static_cast<double>(max_ticks_))));
  if (from_tick < resv.end_tick) {
    commit_locked(from_tick, resv.end_tick, -resv.rate);
    occupancy_gauge_.set(committed_[from_tick] / capacity_);
  }
  return true;
}

std::size_t CapacityCalendar::expire_until(double now) {
  if (!std::isfinite(now)) {
    throw std::invalid_argument("CapacityCalendar: expiry time must be finite");
  }
  const double tick_f = std::floor(std::max(now, 0.0) / tick_);
  const auto now_tick = static_cast<std::size_t>(
      std::min(tick_f, static_cast<double>(max_ticks_)));
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t dropped = 0;
  while (!expiry_.empty() && expiry_.top().first <= now_tick) {
    const std::uint64_t id = expiry_.top().second;
    expiry_.pop();
    // Released reservations already left live_; their heap entry is
    // stale and sweeps through here without counting.
    if (live_.erase(id) == 1) ++dropped;
  }
  expirations_ += dropped;
  return dropped;
}

double CapacityCalendar::committed_at(double time) const {
  if (!std::isfinite(time) || time < 0.0) {
    throw std::invalid_argument(
        "CapacityCalendar: query time must be finite and >= 0");
  }
  const auto t = static_cast<std::size_t>(
      std::min(std::floor(time / tick_), static_cast<double>(max_ticks_)));
  const std::lock_guard<std::mutex> lock(mutex_);
  return t < committed_.size() ? committed_[t] : 0.0;
}

std::size_t CapacityCalendar::active() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return live_.size();
}

std::uint64_t CapacityCalendar::offers() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return offers_;
}

std::uint64_t CapacityCalendar::counteroffers() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counteroffers_;
}

std::uint64_t CapacityCalendar::expirations() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return expirations_;
}

}  // namespace bevr::admission
