// Per-link capacity calendar: time-sliced bookkeeping of committed
// bandwidth for advance reservations.
//
// The calendar divides time into fixed-width ticks and tracks, per
// tick, how much bandwidth is committed to reservations whose
// [start, end) window covers that tick (SIBRA's shape: indexed
// reservations with expiry ticks; a request that does not fit is
// answered with a suggested-bandwidth counteroffer instead of a bare
// rejection). Ticks quantize only the *bookkeeping*: releases take an
// exact `from_time`, so a departure frees the remainder of its window
// immediately and an immediate-reservation calendar reproduces the
// exact M/M/C/C occupancy check (validated against Erlang-B in the
// admission registry scenarios).
//
// Thread safety: every public operation is mutex-guarded, so calendars
// may be shared by concurrent admission paths; the TSan leg of
// check.sh runs the concurrent calendar tests. Determinism: given the
// same operation sequence the calendar's answers are a pure function
// of that sequence — nothing here reads clocks or randomness.
#pragma once

#include <cstdint>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <vector>

#include "bevr/obs/metrics.h"

namespace bevr::admission {

class CapacityCalendar {
 public:
  struct Options {
    double capacity = 100.0;  ///< link bandwidth shared by all windows
    double tick = 0.25;       ///< slice width (simulated time units)
    /// Upper bound on the bookable window index: a reservation whose
    /// window would need more ticks than this throws instead of
    /// growing the slice table without bound (hostile-input guard).
    std::size_t max_ticks = std::size_t{1} << 22;
  };

  explicit CapacityCalendar(const Options& options);

  /// Answer to a reservation request. When the request does not fit,
  /// `suggested` carries the largest rate that would have fit over the
  /// same window — the counteroffer a malleable requester may accept
  /// or re-shape around.
  struct Offer {
    std::uint64_t id = 0;    ///< valid iff admitted (ids start at 1)
    bool admitted = false;
    double suggested = 0.0;  ///< max feasible rate over the window
  };

  /// Book `rate` over [start, end). Admits and commits iff `rate` fits
  /// under capacity at every tick of the window; otherwise leaves the
  /// calendar untouched and returns the counteroffer. Throws
  /// std::invalid_argument for non-finite or negative times, end <=
  /// start, rate <= 0, or windows beyond max_ticks.
  Offer reserve(double start, double end, double rate);

  /// Largest rate a [start, end) booking could get right now (0 when a
  /// tick of the window is full). Same argument validation as reserve.
  [[nodiscard]] double available(double start, double end) const;

  /// Release a live reservation from `from_time` onward — the early-
  /// teardown path a departure uses; `from_time` at or before the
  /// window start frees the whole window. Commitments already in the
  /// past stay recorded (history is append-only). Returns false for
  /// unknown, expired, or already-released ids.
  bool release(std::uint64_t id, double from_time);

  /// Expiry sweep: drop the index entries of reservations whose window
  /// ends at or before `now` (their commitments are history and stay).
  /// Returns how many expired. Idempotent; cheap when nothing expires.
  std::size_t expire_until(double now);

  /// Bandwidth committed during the tick containing `time`.
  [[nodiscard]] double committed_at(double time) const;

  [[nodiscard]] double capacity() const { return capacity_; }
  [[nodiscard]] double tick() const { return tick_; }
  /// Live (admitted, not yet released or expired) reservations.
  [[nodiscard]] std::size_t active() const;

  /// Lifetime operation counts (reserve calls, counteroffers issued,
  /// expiry-sweep drops); the admission engine flushes these into the
  /// obs registry as admission/* counters.
  [[nodiscard]] std::uint64_t offers() const;
  [[nodiscard]] std::uint64_t counteroffers() const;
  [[nodiscard]] std::uint64_t expirations() const;

 private:
  struct Reservation {
    std::size_t start_tick = 0;
    std::size_t end_tick = 0;  ///< exclusive; also the expiry tick
    double rate = 0.0;
  };

  /// [first_tick, last_tick) of a validated [start, end) window.
  [[nodiscard]] std::pair<std::size_t, std::size_t> window_ticks(
      double start, double end) const;
  [[nodiscard]] double min_free_locked(std::size_t first,
                                       std::size_t last) const;
  void commit_locked(std::size_t first, std::size_t last, double delta);

  const double capacity_;
  const double tick_;
  const std::size_t max_ticks_;

  mutable std::mutex mutex_;
  std::vector<double> committed_;  ///< per-tick committed bandwidth
  std::unordered_map<std::uint64_t, Reservation> live_;
  /// (end_tick, id) min-heap driving expire_until's sweep.
  std::priority_queue<std::pair<std::size_t, std::uint64_t>,
                      std::vector<std::pair<std::size_t, std::uint64_t>>,
                      std::greater<>>
      expiry_;
  std::uint64_t next_id_ = 1;
  std::uint64_t offers_ = 0;
  std::uint64_t counteroffers_ = 0;
  std::uint64_t expirations_ = 0;
  obs::Gauge occupancy_gauge_;  ///< admission/calendar/occupancy
};

}  // namespace bevr::admission
