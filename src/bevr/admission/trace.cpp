#include "bevr/admission/trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace bevr::admission {

std::string to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kPoisson:
      return "poisson";
    case TraceKind::kBursty:
      return "bursty";
    case TraceKind::kFile:
      return "file";
  }
  throw std::invalid_argument("to_string: unknown TraceKind");
}

void TraceSpec::validate() const {
  if (kind == TraceKind::kFile) {
    if (path.empty()) {
      throw std::invalid_argument("TraceSpec: file traces need a path");
    }
    return;  // remaining knobs are generator-only
  }
  if (!(horizon > 0.0) || !std::isfinite(horizon)) {
    throw std::invalid_argument("TraceSpec: horizon must be finite and > 0");
  }
  if (!(mean_duration > 0.0) || !std::isfinite(mean_duration)) {
    throw std::invalid_argument(
        "TraceSpec: mean_duration must be finite and > 0");
  }
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    throw std::invalid_argument("TraceSpec: rate must be finite and > 0");
  }
  if (!(book_ahead >= 0.0) || !std::isfinite(book_ahead)) {
    throw std::invalid_argument(
        "TraceSpec: book_ahead must be finite and >= 0");
  }
  if (!(cancel_p >= 0.0) || !(cancel_p <= 1.0)) {
    throw std::invalid_argument("TraceSpec: cancel_p must lie in [0, 1]");
  }
  if (kind == TraceKind::kPoisson) {
    if (!(arrival_rate > 0.0) || !std::isfinite(arrival_rate)) {
      throw std::invalid_argument(
          "TraceSpec: arrival_rate must be finite and > 0");
    }
  } else {  // kBursty
    if (!(burst_hot_rate > 0.0) || !(burst_cold_rate > 0.0) ||
        !std::isfinite(burst_hot_rate) || !std::isfinite(burst_cold_rate)) {
      throw std::invalid_argument(
          "TraceSpec: burst rates must be finite and > 0");
    }
    if (!(burst_hot_p >= 0.0) || !(burst_hot_p <= 1.0)) {
      throw std::invalid_argument("TraceSpec: burst_hot_p must lie in [0, 1]");
    }
  }
}

ArrivalTrace generate_trace(const TraceSpec& spec, const sim::Rng& root) {
  spec.validate();
  if (spec.kind == TraceKind::kFile) {
    throw std::invalid_argument(
        "generate_trace: file traces are loaded, not generated");
  }
  // One decorrelated sub-stream per request field: toggling the
  // book-ahead or cancellation knobs must leave the arrival point
  // process bit-identical, or cross-knob comparisons measure the draw
  // instead of the policy.
  sim::Rng interarrivals = root.split(0);
  sim::Rng durations = root.split(1);
  sim::Rng leads = root.split(2);
  sim::Rng cancels = root.split(3);

  ArrivalTrace trace;
  trace.horizon = spec.horizon;
  double start = 0.0;
  for (;;) {
    double mean_gap = 0.0;
    if (spec.kind == TraceKind::kPoisson) {
      mean_gap = 1.0 / spec.arrival_rate;
    } else {
      const bool hot = interarrivals.bernoulli(spec.burst_hot_p);
      mean_gap = 1.0 / (hot ? spec.burst_hot_rate : spec.burst_cold_rate);
    }
    start += interarrivals.exponential(mean_gap);
    if (start > spec.horizon) break;

    FlowRequest req;
    req.start = start;
    req.duration = durations.exponential(spec.mean_duration);
    req.rate = spec.rate;
    req.submit = spec.book_ahead > 0.0
                     ? std::max(0.0, start - leads.exponential(spec.book_ahead))
                     : start;
    if (spec.cancel_p > 0.0 && cancels.bernoulli(spec.cancel_p) &&
        req.submit < req.start) {
      req.cancel =
          req.submit + cancels.uniform() * (req.start - req.submit);
    }
    trace.requests.push_back(req);
  }
  // The generator emits in start order; the admission engine consumes
  // in submit order. Stable sort keeps simultaneous submits in their
  // generation order, which the determinism goldens pin.
  std::stable_sort(trace.requests.begin(), trace.requests.end(),
                   [](const FlowRequest& a, const FlowRequest& b) {
                     return a.submit < b.submit;
                   });
  return trace;
}

namespace {

[[noreturn]] void bad_line(std::size_t line_number, const std::string& what) {
  std::ostringstream msg;
  msg << "parse_trace: line " << line_number << ": " << what;
  throw std::invalid_argument(msg.str());
}

double parse_field(std::istringstream& fields, std::size_t line_number,
                   const char* name) {
  double value = 0.0;
  if (!(fields >> value)) {
    std::ostringstream msg;
    msg << "missing or non-numeric " << name;
    bad_line(line_number, msg.str());
  }
  if (!std::isfinite(value)) {
    std::ostringstream msg;
    msg << name << " must be finite";
    bad_line(line_number, msg.str());
  }
  return value;
}

}  // namespace

ArrivalTrace parse_trace(std::istream& in) {
  ArrivalTrace trace;
  std::string line;
  std::size_t line_number = 0;
  double last_submit = 0.0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t first =
        line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;

    std::istringstream fields(line);
    FlowRequest req;
    req.submit = parse_field(fields, line_number, "submit time");
    req.start = parse_field(fields, line_number, "start time");
    req.duration = parse_field(fields, line_number, "duration");
    req.rate = parse_field(fields, line_number, "rate");
    std::string extra;
    if (fields >> extra) {
      bad_line(line_number, "trailing field '" + extra + "'");
    }
    if (req.submit < 0.0) bad_line(line_number, "submit time must be >= 0");
    if (req.start < req.submit) {
      bad_line(line_number, "start time precedes submit time");
    }
    if (!(req.duration > 0.0)) bad_line(line_number, "duration must be > 0");
    if (!(req.rate > 0.0)) bad_line(line_number, "rate must be > 0");
    if (req.submit < last_submit) {
      bad_line(line_number, "submit times must be sorted");
    }
    last_submit = req.submit;
    trace.horizon = std::max(trace.horizon, req.start);
    trace.requests.push_back(req);
  }
  return trace;
}

ArrivalTrace load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("load_trace: cannot open '" + path + "'");
  }
  return parse_trace(in);
}

}  // namespace bevr::admission
