// Causal identity for request tracing: a (trace id, span id) pair that
// rides with a request through queues, coalescing, and worker threads,
// so every event a request touches can be stitched back into one
// causal chain after the fact.
//
// Ids are *derived*, never drawn: TraceContext::derive(seed, index)
// puts the request's ids through the same SplitMix64 finalising mix
// the runner uses for task sub-seeding, so a rerun of the same
// workload (same seeds, same submit order) produces byte-identical
// trace ids. Deterministic ids are what make traces diffable — two
// runs of one golden scenario can be compared span-for-span.
//
// A zero trace_id means "no causal context"; all-default contexts are
// what instrumentation records when tracing is disabled, and the
// exporters omit the causal fields for them.
#pragma once

#include <cstdint>

namespace bevr::obs {

/// SplitMix64 finalising mix (Steele, Lea & Flood 2014) — the same
/// bijective scrambler as sim::splitmix64, duplicated here so the obs
/// layer stays dependency-free below everything it instruments.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

struct TraceContext {
  std::uint64_t trace_id = 0;        ///< one per request; 0 = no context
  std::uint64_t span_id = 0;         ///< this span within the trace
  std::uint64_t parent_span_id = 0;  ///< 0 = root span

  [[nodiscard]] constexpr bool valid() const noexcept { return trace_id != 0; }

  /// Root context for logical request `index` of a workload seeded
  /// with `seed`. Deterministic; distinct (seed, index) pairs get
  /// decorrelated ids. trace_id is never 0 (0 is reserved for "no
  /// context"): the mix is bijective, so exactly one input maps to 0
  /// and it is nudged to 1.
  [[nodiscard]] static constexpr TraceContext derive(
      std::uint64_t seed, std::uint64_t index) noexcept {
    std::uint64_t trace = mix64(mix64(seed) ^ mix64(~index));
    if (trace == 0) trace = 1;
    return TraceContext{trace, mix64(trace), 0};
  }

  /// Child context: a new span under this one, same trace. `slot`
  /// distinguishes siblings (evaluate = 0, respond = 1, ...).
  [[nodiscard]] constexpr TraceContext child(std::uint64_t slot) const noexcept {
    return TraceContext{trace_id, mix64(span_id ^ mix64(slot + 1)), span_id};
  }
};

}  // namespace bevr::obs
