// Hardened JSON string escaping shared by every obs exporter (trace
// JSON, flight-recorder dumps, metric reports).
//
// Span and metric names are usually tame string literals, but the
// exporters are a hostile-input surface all the same: a name carrying
// control characters, embedded quotes, or invalid UTF-8 must still
// produce RFC 8259-valid output, because a single bad byte would
// invalidate the *whole* trace or dump — the one artifact you need
// when something already went wrong. The contract (fuzzed by
// tests/obs/test_trace_hostile.cpp, with the bench JSON reader as the
// round-trip oracle):
//  * '"', '\\' and control bytes < 0x20 are escaped ('\n', '\t', ...
//    by their short forms, the rest as \u00XX);
//  * well-formed UTF-8 sequences pass through byte-for-byte;
//  * malformed UTF-8 (stray continuation bytes, truncated or overlong
//    sequences, 0xFE/0xFF) is replaced with U+FFFD, one replacement
//    per rejected byte, so the output is always valid UTF-8.
#pragma once

#include <string>
#include <string_view>

namespace bevr::obs {

/// Escape `text` for inclusion inside a JSON string (the surrounding
/// quotes are the caller's). Total: never throws, output is always a
/// valid RFC 8259 string body in valid UTF-8.
[[nodiscard]] std::string json_escape(std::string_view text);

}  // namespace bevr::obs
