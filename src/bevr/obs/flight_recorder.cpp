#include "bevr/obs/flight_recorder.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "bevr/obs/json_text.h"
#include "bevr/obs/trace.h"

namespace bevr::obs {

namespace {

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

constexpr std::uint32_t kUnnamedTrackBase = 1000;

struct RingCache {
  std::uint64_t recorder_id = 0;
  void* ring = nullptr;  // borrowed; rings_ keeps it alive for process life
};

RingCache& this_thread_cache() {
  thread_local RingCache cache;
  return cache;
}

}  // namespace

const char* flight_code_name(FlightCode code) noexcept {
  switch (code) {
    case FlightCode::kMark: return "MARK";
    case FlightCode::kSubmit: return "SUBMIT";
    case FlightCode::kShed: return "SHED";
    case FlightCode::kCoalesce: return "COALESCE";
    case FlightCode::kEvaluate: return "EVALUATE";
    case FlightCode::kRespond: return "RESPOND";
    case FlightCode::kDeadlineMiss: return "DEADLINE_MISS";
    case FlightCode::kExpire: return "EXPIRE";
    case FlightCode::kOverloaded: return "OVERLOADED";
    case FlightCode::kStorm: return "STORM";
    case FlightCode::kAdmit: return "ADMIT";
    case FlightCode::kBlock: return "BLOCK";
    case FlightCode::kCounteroffer: return "COUNTEROFFER";
    case FlightCode::kCancel: return "CANCEL";
    case FlightCode::kExpireSweep: return "EXPIRE_SWEEP";
    case FlightCode::kContractFail: return "CONTRACT_FAIL";
  }
  return "UNKNOWN";
}

FlightRecorder::FlightRecorder(std::size_t ring_capacity)
    : id_(next_recorder_id()),
      ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

FlightRecorder::Ring& FlightRecorder::this_thread_ring() {
  RingCache& cache = this_thread_cache();
  if (cache.recorder_id == id_ && cache.ring != nullptr) {
    return *static_cast<Ring*>(cache.ring);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint32_t track = TraceCollector::thread_track_id(
      kUnnamedTrackBase + static_cast<std::uint32_t>(rings_.size()));
  auto ring = std::make_shared<Ring>(ring_capacity_, track);
  rings_.push_back(ring);
  cache.recorder_id = id_;
  cache.ring = ring.get();
  return *ring;
}

void FlightRecorder::record(FlightCode code, std::uint64_t trace_id,
                            const char* detail, double a, double b) noexcept {
#if BEVR_OBS
  Ring& ring = this_thread_ring();
  // Single writer per ring: claim the slot with a relaxed head bump,
  // then fill the cells. A concurrent reader may see a half-filled
  // slot; that torn record is the documented trade for wait-freedom.
  const std::uint64_t sequence = ring.head.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[sequence % ring.capacity];
  slot.ts_ns.store(now_ns(), std::memory_order_relaxed);
  slot.trace_id.store(trace_id, std::memory_order_relaxed);
  slot.detail_bits.store(
      static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(detail)),
      std::memory_order_relaxed);
  slot.a_bits.store(std::bit_cast<std::uint64_t>(a),
                    std::memory_order_relaxed);
  slot.b_bits.store(std::bit_cast<std::uint64_t>(b),
                    std::memory_order_relaxed);
  slot.code_track.store(
      (static_cast<std::uint64_t>(code) << 32) | ring.track,
      std::memory_order_relaxed);
  ring.head.store(sequence + 1, std::memory_order_relaxed);
#else
  (void)code;
  (void)trace_id;
  (void)detail;
  (void)a;
  (void)b;
#endif
}

std::vector<FlightRecord> FlightRecorder::records() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    rings = rings_;
  }
  std::vector<FlightRecord> merged;
  for (const auto& ring : rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    const std::uint64_t count = std::min<std::uint64_t>(head, ring->capacity);
    const std::uint64_t first = head - count;
    for (std::uint64_t sequence = first; sequence < head; ++sequence) {
      const Slot& slot = ring->slots[sequence % ring->capacity];
      FlightRecord record;
      record.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
      record.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      record.detail = reinterpret_cast<const char*>(
          static_cast<std::uintptr_t>(
              slot.detail_bits.load(std::memory_order_relaxed)));
      record.a = std::bit_cast<double>(
          slot.a_bits.load(std::memory_order_relaxed));
      record.b = std::bit_cast<double>(
          slot.b_bits.load(std::memory_order_relaxed));
      const std::uint64_t code_track =
          slot.code_track.load(std::memory_order_relaxed);
      record.code = static_cast<FlightCode>(code_track >> 32);
      record.track = static_cast<std::uint32_t>(code_track);
      merged.push_back(record);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.ts_ns < b.ts_ns;
            });
  return merged;
}

std::uint64_t FlightRecorder::dropped() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    rings = rings_;
  }
  std::uint64_t total = 0;
  for (const auto& ring : rings) {
    const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
    if (head > ring->capacity) total += head - ring->capacity;
  }
  return total;
}

void FlightRecorder::write_json(std::ostream& out,
                                std::string_view reason) const {
  out << "{\"schema\":\"bevr.flight.v1\",\"reason\":\""
      << json_escape(reason) << "\",\"captured_ns\":" << now_ns()
      << ",\"dropped\":" << dropped() << ",\"records\":[";
  bool first = true;
  for (const FlightRecord& record : records()) {
    if (!first) out << ",";
    first = false;
    out << "{\"ts_ns\":" << record.ts_ns << ",\"code\":\""
        << flight_code_name(record.code) << "\",\"tid\":" << record.track;
    if (record.trace_id != 0) {
      char buffer[32];
      std::snprintf(buffer, sizeof buffer, "0x%016" PRIx64, record.trace_id);
      out << ",\"trace\":\"" << buffer << "\"";
    }
    if (record.detail != nullptr) {
      out << ",\"detail\":\"" << json_escape(record.detail) << "\"";
    }
    if (record.a != 0.0 || record.b != 0.0) {
      // JSON has no nan/inf literals; a torn or hostile payload must
      // not invalidate the whole dump, so non-finite becomes null.
      const auto emit = [&out](const char* key, double value) {
        if (std::isfinite(value)) {
          char buffer[40];
          std::snprintf(buffer, sizeof buffer, "%.17g", value);
          out << ",\"" << key << "\":" << buffer;
        } else {
          out << ",\"" << key << "\":null";
        }
      };
      emit("a", record.a);
      emit("b", record.b);
    }
    out << "}";
  }
  out << "]}\n";
  out.flush();
}

void FlightRecorder::set_auto_dump_path(std::string path) {
  bool armed = false;
  {
    const std::lock_guard<std::mutex> lock(dump_mutex_);
    auto_dump_path_ = std::move(path);
    armed = !auto_dump_path_.empty();
  }
  auto_dump_armed_.store(armed, std::memory_order_release);
}

bool FlightRecorder::auto_dump(const char* reason) noexcept {
  // One-shot latch: the first failure wins, later ones are no-ops
  // until re-armed, so the dump shows the flight *into* the first
  // failure rather than the aftermath of the last.
  bool expected = true;
  if (!auto_dump_armed_.compare_exchange_strong(expected, false,
                                                std::memory_order_acq_rel)) {
    return false;
  }
  try {
    std::string path;
    {
      const std::lock_guard<std::mutex> lock(dump_mutex_);
      path = auto_dump_path_;
    }
    if (path.empty()) return false;
    std::ofstream out(path);
    if (!out) return false;
    write_json(out, reason != nullptr ? reason : "auto");
    return true;
  } catch (...) {
    return false;  // a black box must never take the plane down with it
  }
}

void FlightRecorder::clear() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    rings = rings_;
  }
  for (const auto& ring : rings) {
    ring->head.store(0, std::memory_order_relaxed);
  }
}

}  // namespace bevr::obs
