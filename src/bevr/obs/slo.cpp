#include "bevr/obs/slo.h"

#include <algorithm>
#include <stdexcept>

namespace bevr::obs {

std::vector<std::uint64_t> SloTracker::default_windows() {
  return {5ULL * 1'000'000'000ULL, 60ULL * 1'000'000'000ULL};
}

SloTracker::SloTracker(std::string name, double target,
                       std::vector<std::uint64_t> window_ns)
    : name_(std::move(name)), target_(target) {
  if (!(target > 0.0) || !(target < 1.0)) {
    throw std::invalid_argument("SloTracker: target must be in (0, 1)");
  }
  if (window_ns.empty()) {
    throw std::invalid_argument("SloTracker: need at least one window");
  }
  windows_.reserve(window_ns.size());
  for (const std::uint64_t span : window_ns) {
    if (span == 0) {
      throw std::invalid_argument("SloTracker: windows must be positive");
    }
    Window window;
    window.span_ns = span;
    window.bucket_ns = std::max<std::uint64_t>(
        1, (span + kBucketsPerWindow - 1) / kBucketsPerWindow);
    window.buckets = std::make_unique<Bucket[]>(kBucketsPerWindow);
    windows_.push_back(std::move(window));
  }
}

void SloTracker::record(bool good, std::uint64_t now) noexcept {
  (good ? total_good_ : total_bad_).fetch_add(1, std::memory_order_relaxed);
  for (Window& window : windows_) {
    const std::uint64_t slice = now / window.bucket_ns;
    Bucket& bucket = window.buckets[slice % kBucketsPerWindow];
    std::uint64_t current = bucket.slice.load(std::memory_order_relaxed);
    if (current != slice) {
      // Same rotate-on-write claim as RollingWindow.
      if (bucket.slice.compare_exchange_strong(current, slice,
                                               std::memory_order_relaxed)) {
        bucket.good.store(0, std::memory_order_relaxed);
        bucket.bad.store(0, std::memory_order_relaxed);
      } else if (current != slice) {
        continue;
      }
    }
    (good ? bucket.good : bucket.bad).fetch_add(1, std::memory_order_relaxed);
  }
}

SloStatus SloTracker::status(std::uint64_t now) const {
  SloStatus status;
  status.name = name_;
  status.target = target_;
  status.total_good = total_good_.load(std::memory_order_relaxed);
  status.total_bad = total_bad_.load(std::memory_order_relaxed);
  const double budget = 1.0 - target_;
  for (const Window& window : windows_) {
    const std::uint64_t newest = now / window.bucket_ns;
    const std::uint64_t oldest = newest >= kBucketsPerWindow - 1
                                     ? newest - (kBucketsPerWindow - 1)
                                     : 0;
    SloWindowStatus reading;
    reading.window_ns = window.bucket_ns * kBucketsPerWindow;
    for (std::size_t i = 0; i < kBucketsPerWindow; ++i) {
      const Bucket& bucket = window.buckets[i];
      const std::uint64_t slice = bucket.slice.load(std::memory_order_relaxed);
      if (slice == kIdle || slice < oldest || slice > newest) continue;
      reading.good += bucket.good.load(std::memory_order_relaxed);
      reading.bad += bucket.bad.load(std::memory_order_relaxed);
    }
    const std::uint64_t total = reading.good + reading.bad;
    if (total > 0) {
      reading.bad_fraction =
          static_cast<double>(reading.bad) / static_cast<double>(total);
      reading.burn_rate = reading.bad_fraction / budget;
    }
    if (reading.burn_rate > 1.0) status.healthy = false;
    status.windows.push_back(reading);
  }
  return status;
}

void SloTracker::clear() noexcept {
  total_good_.store(0, std::memory_order_relaxed);
  total_bad_.store(0, std::memory_order_relaxed);
  for (Window& window : windows_) {
    for (std::size_t i = 0; i < kBucketsPerWindow; ++i) {
      window.buckets[i].slice.store(kIdle, std::memory_order_relaxed);
      window.buckets[i].good.store(0, std::memory_order_relaxed);
      window.buckets[i].bad.store(0, std::memory_order_relaxed);
    }
  }
}

SloRegistry& SloRegistry::global() {
  static SloRegistry registry;
  return registry;
}

SloTracker& SloRegistry::tracker(const std::string& name, double target,
                                 std::vector<std::uint64_t> window_ns) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& tracker : trackers_) {
    if (tracker->name() == name) return *tracker;
  }
  trackers_.push_back(
      std::make_unique<SloTracker>(name, target, std::move(window_ns)));
  return *trackers_.back();
}

std::vector<SloStatus> SloRegistry::snapshot_all(std::uint64_t now) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SloStatus> statuses;
  statuses.reserve(trackers_.size());
  for (const auto& tracker : trackers_) {
    statuses.push_back(tracker->status(now));
  }
  return statuses;
}

void SloRegistry::reset() noexcept {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& tracker : trackers_) {
    tracker->clear();
  }
}

}  // namespace bevr::obs
