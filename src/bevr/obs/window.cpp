#include "bevr/obs/window.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace bevr::obs {

RollingWindow::RollingWindow(HistogramSpec spec, std::uint64_t bucket_ns,
                             std::size_t bucket_count)
    : bounds_(std::move(spec.bounds)),
      bucket_ns_(bucket_ns),
      bucket_count_(bucket_count) {
  if (bounds_.empty() || !std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument(
        "RollingWindow: bounds must be nonempty and ascending");
  }
  if (bucket_ns_ == 0 || bucket_count_ == 0) {
    throw std::invalid_argument(
        "RollingWindow: bucket_ns and bucket_count must be positive");
  }
  buckets_ = std::make_unique<Bucket[]>(bucket_count_);
  for (std::size_t i = 0; i < bucket_count_; ++i) {
    buckets_[i].cells =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 2);
    reset_bucket(buckets_[i]);
  }
}

RollingWindow RollingWindow::over_seconds(double seconds) {
  if (!(seconds > 0.0)) {
    throw std::invalid_argument("RollingWindow: window must be positive");
  }
  constexpr std::size_t kBuckets = 16;
  const auto window_ns = static_cast<std::uint64_t>(seconds * 1e9);
  const std::uint64_t bucket_ns = std::max<std::uint64_t>(
      1, (window_ns + kBuckets - 1) / kBuckets);
  return RollingWindow(HistogramSpec::latency_us(), bucket_ns, kBuckets);
}

void RollingWindow::reset_bucket(Bucket& bucket) noexcept {
  for (std::size_t i = 0; i < bounds_.size() + 2; ++i) {
    bucket.cells[i].store(0, std::memory_order_relaxed);
  }
}

void RollingWindow::observe(double value, std::uint64_t now) noexcept {
  const std::uint64_t slice = now / bucket_ns_;
  Bucket& bucket = buckets_[slice % bucket_count_];
  std::uint64_t current = bucket.slice.load(std::memory_order_relaxed);
  if (current != slice) {
    // Rotate-on-write: first writer into a stale bucket claims it and
    // zeroes the cells. A load between the claim and the zeroing can
    // see the old slice's residue — the documented approximation.
    if (bucket.slice.compare_exchange_strong(current, slice,
                                             std::memory_order_relaxed)) {
      reset_bucket(bucket);
    } else if (current != slice) {
      return;  // raced with an even newer slice; drop rather than taint
    }
  }
  std::uint32_t value_bucket = 0;
  while (value_bucket < bounds_.size() && value > bounds_[value_bucket]) {
    ++value_bucket;
  }
  bucket.cells[value_bucket].fetch_add(1, std::memory_order_relaxed);
  std::atomic<std::uint64_t>& sum_cell = bucket.cells[bounds_.size() + 1];
  std::uint64_t observed = sum_cell.load(std::memory_order_relaxed);
  while (!sum_cell.compare_exchange_weak(
      observed,
      std::bit_cast<std::uint64_t>(std::bit_cast<double>(observed) + value),
      std::memory_order_relaxed)) {
  }
}

WindowSnapshot RollingWindow::snapshot(std::uint64_t now) const {
  const std::uint64_t newest = now / bucket_ns_;
  const std::uint64_t oldest =
      newest >= bucket_count_ - 1 ? newest - (bucket_count_ - 1) : 0;
  WindowSnapshot snap;
  snap.window_ns = window_ns();
  snap.histogram.bounds = bounds_;
  snap.histogram.counts.assign(bounds_.size() + 1, 0);
  for (std::size_t i = 0; i < bucket_count_; ++i) {
    const Bucket& bucket = buckets_[i];
    const std::uint64_t slice = bucket.slice.load(std::memory_order_relaxed);
    if (slice == kIdle || slice < oldest || slice > newest) continue;
    for (std::size_t b = 0; b < bounds_.size() + 1; ++b) {
      snap.histogram.counts[b] +=
          bucket.cells[b].load(std::memory_order_relaxed);
    }
    snap.sum += std::bit_cast<double>(
        bucket.cells[bounds_.size() + 1].load(std::memory_order_relaxed));
  }
  for (const std::uint64_t count : snap.histogram.counts) {
    snap.count += count;
  }
  snap.histogram.count = snap.count;
  snap.histogram.sum = snap.sum;
  snap.rate_per_sec =
      static_cast<double>(snap.count) /
      (static_cast<double>(snap.window_ns) * 1e-9);
  return snap;
}

void RollingWindow::clear() noexcept {
  for (std::size_t i = 0; i < bucket_count_; ++i) {
    buckets_[i].slice.store(kIdle, std::memory_order_relaxed);
    reset_bucket(buckets_[i]);
  }
}

}  // namespace bevr::obs
