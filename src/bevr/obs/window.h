// Rolling-window histograms: "what did latency look like over the
// last K seconds", as opposed to the cumulative since-process-start
// view MetricsRegistry gives.
//
// A RollingWindow is a ring of N time buckets, each covering a fixed
// slice of wall time. observe() lands the value in the bucket for the
// current slice, lazily recycling buckets whose slice has scrolled out
// of the window (rotate-on-write: there is no timer thread). A
// snapshot merges only the buckets still inside the window, yielding
// rolling count / rate / p50 / p95 / p99.
//
// Concurrency: buckets are relaxed atomics and rotation is a CAS
// claim, so observe() is lock-free and safe from any thread. Around a
// rotation, a racing writer can land its value in a bucket that is
// being recycled — rolling numbers are approximate at bucket
// boundaries under concurrency, and exact when writers are
// single-threaded or quiesced (which is how the tests drive it).
//
// Determinism: both observe() and snapshot() take the timestamp as an
// argument (defaulted to now_ns()), so tests and deterministic
// harnesses inject logical time and get bit-stable windows.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "bevr/obs/metrics.h"

namespace bevr::obs {

/// A rolling reading: everything inside the window at snapshot time.
struct WindowSnapshot {
  std::uint64_t window_ns = 0;   ///< bucket_ns * bucket_count
  std::uint64_t count = 0;       ///< observations in the window
  double sum = 0.0;
  double rate_per_sec = 0.0;     ///< count / window seconds
  /// Merged bucket counts; reuses HistogramSnapshot's quantile/mean.
  HistogramSnapshot histogram;
};

class RollingWindow {
 public:
  /// A window of `bucket_count` buckets, each `bucket_ns` wide, with
  /// value buckets from `spec` (bounds must be nonempty ascending;
  /// throws std::invalid_argument otherwise, as MetricsRegistry does).
  RollingWindow(HistogramSpec spec, std::uint64_t bucket_ns,
                std::size_t bucket_count);

  /// Convenience: latency_us() bounds, `seconds`-long window split
  /// into 16 buckets.
  [[nodiscard]] static RollingWindow over_seconds(double seconds);

  /// Record `value` at time `now`. Lock-free; see the rotation caveat.
  void observe(double value, std::uint64_t now = now_ns()) noexcept;

  /// Merge the buckets still inside the window ending at `now`.
  [[nodiscard]] WindowSnapshot snapshot(std::uint64_t now = now_ns()) const;

  [[nodiscard]] std::uint64_t window_ns() const noexcept {
    return bucket_ns_ * bucket_count_;
  }

  /// Forget everything (buckets return to idle).
  void clear() noexcept;

 private:
  /// Sentinel slice meaning "bucket holds nothing".
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  struct Bucket {
    std::atomic<std::uint64_t> slice{kIdle};
    /// bounds.size()+1 value-bucket counts, then the sum (double bits).
    std::unique_ptr<std::atomic<std::uint64_t>[]> cells;
  };

  void reset_bucket(Bucket& bucket) noexcept;

  std::vector<double> bounds_;
  std::uint64_t bucket_ns_;
  std::size_t bucket_count_;
  std::unique_ptr<Bucket[]> buckets_;
};

}  // namespace bevr::obs
