#include "bevr/obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace bevr::obs {

std::uint64_t now_ns() noexcept {
  using Clock = std::chrono::steady_clock;
  // Process-local epoch so timestamps stay small and trace exports
  // start near zero. Thread-safe magic-static initialisation.
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

HistogramSpec HistogramSpec::exponential(double start, double factor,
                                         int count) {
  if (!(start > 0.0) || !(factor > 1.0) || count < 1 || count > 64) {
    throw std::invalid_argument(
        "HistogramSpec::exponential: need start > 0, factor > 1, "
        "1 <= count <= 64");
  }
  HistogramSpec spec;
  spec.bounds.reserve(static_cast<std::size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    spec.bounds.push_back(bound);
    bound *= factor;
  }
  return spec;
}

HistogramSpec HistogramSpec::linear(double start, double width, int count) {
  if (!(width > 0.0) || count < 1 || count > 64) {
    throw std::invalid_argument(
        "HistogramSpec::linear: need width > 0, 1 <= count <= 64");
  }
  HistogramSpec spec;
  spec.bounds.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    spec.bounds.push_back(start + width * static_cast<double>(i));
  }
  return spec;
}

HistogramSpec HistogramSpec::latency_us() {
  return exponential(1.0, 2.0, 24);  // 1us .. ~8.4s
}

double HistogramSnapshot::mean() const {
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += in_bucket;
    if (static_cast<double>(cumulative) < target) continue;
    if (i >= bounds.size()) {
      // Overflow bucket: no finite upper bound; report the last one.
      return bounds.empty() ? sum / static_cast<double>(count) : bounds.back();
    }
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = bounds[i];
    const double fraction =
        std::clamp((target - before) / static_cast<double>(in_bucket), 0.0, 1.0);
    return lo + (hi - lo) * fraction;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

double MetricsSnapshot::gauge(const std::string& name) const {
  for (const auto& [gauge_name, value] : gauges) {
    if (gauge_name == name) return value;
  }
  return 0.0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const& {
  for (const auto& hist : histograms) {
    if (hist.name == name) return &hist;
  }
  return nullptr;
}

MetricsRegistry::MetricsRegistry(bool enabled) : enabled_(enabled) {
  for (auto& shard : shards_) {
    shard.slots =
        std::make_unique<std::atomic<std::uint64_t>[]>(kSlotCapacity);
    for (std::size_t i = 0; i < kSlotCapacity; ++i) {
      shard.slots[i].store(0, std::memory_order_relaxed);
    }
  }
  for (auto& gauge : gauges_) {
    gauge.store(std::bit_cast<std::uint64_t>(0.0), std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry(true);
  return registry;
}

std::size_t MetricsRegistry::this_thread_shard() noexcept {
  // Round-robin assignment at first touch spreads threads evenly; a
  // thread keeps its shard for life, so its increments stay on warm,
  // unshared cache lines.
  static std::atomic<std::size_t> next_thread{0};
  thread_local const std::size_t shard =
      next_thread.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

void MetricsRegistry::shard_add_double(std::uint32_t slot,
                                       double delta) noexcept {
  std::atomic<std::uint64_t>& cell = shards_[this_thread_shard()].slots[slot];
  std::uint64_t observed = cell.load(std::memory_order_relaxed);
  // CAS loop over the double bit pattern; per-shard, so effectively
  // uncontended (only threads mapped to the same shard ever collide).
  while (!cell.compare_exchange_weak(
      observed,
      std::bit_cast<std::uint64_t>(std::bit_cast<double>(observed) + delta),
      std::memory_order_relaxed)) {
  }
}

std::uint64_t MetricsRegistry::merged(std::uint32_t slot) const noexcept {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.slots[slot].load(std::memory_order_relaxed);
  }
  return total;
}

double MetricsRegistry::merged_double(std::uint32_t slot) const noexcept {
  double total = 0.0;
  for (const Shard& shard : shards_) {
    total += std::bit_cast<double>(
        shard.slots[slot].load(std::memory_order_relaxed));
  }
  return total;
}

std::uint32_t MetricsRegistry::allocate_slots(std::uint32_t count) {
  if (next_slot_ + count > kSlotCapacity) {
    throw std::length_error("MetricsRegistry: slot capacity exhausted");
  }
  const std::uint32_t first = next_slot_;
  next_slot_ += count;
  return first;
}

Counter MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = by_name_.find(name);
  if (found != by_name_.end()) {
    if (found->second.kind != Kind::kCounter) {
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' already registered with another kind");
    }
    return Counter(this, found->second.index);
  }
  const std::uint32_t slot = allocate_slots(1);
  by_name_.emplace(name, Registration{Kind::kCounter, slot});
  counters_.emplace_back(name, slot);
  return Counter(this, slot);
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = by_name_.find(name);
  if (found != by_name_.end()) {
    if (found->second.kind != Kind::kGauge) {
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' already registered with another kind");
    }
    return Gauge(this, found->second.index);
  }
  if (next_gauge_ >= kGaugeCapacity) {
    throw std::length_error("MetricsRegistry: gauge capacity exhausted");
  }
  const std::uint32_t index = next_gauge_++;
  by_name_.emplace(name, Registration{Kind::kGauge, index});
  gauge_names_.emplace_back(name, index);
  return Gauge(this, index);
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     const HistogramSpec& spec) {
  if (spec.bounds.empty() ||
      !std::is_sorted(spec.bounds.begin(), spec.bounds.end())) {
    throw std::invalid_argument(
        "MetricsRegistry: histogram bounds must be nonempty and ascending");
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto found = by_name_.find(name);
  if (found != by_name_.end()) {
    if (found->second.kind != Kind::kHistogram) {
      throw std::invalid_argument("MetricsRegistry: '" + name +
                                  "' already registered with another kind");
    }
    for (const HistogramInfo& info : hists_) {
      if (info.slot == found->second.index) {
        return Histogram(this, info.slot, info.bounds->data(),
                         static_cast<std::uint32_t>(info.bounds->size()));
      }
    }
  }
  const auto bound_count = static_cast<std::uint32_t>(spec.bounds.size());
  // Layout: [slot .. slot+bound_count] bucket counts (last = overflow),
  // [slot+bound_count+1] running sum as double bits.
  const std::uint32_t slot = allocate_slots(bound_count + 2);
  HistogramInfo info;
  info.name = name;
  info.slot = slot;
  info.bounds = std::make_unique<std::vector<double>>(spec.bounds);
  const double* bounds_data = info.bounds->data();
  by_name_.emplace(name, Registration{Kind::kHistogram, slot});
  hists_.push_back(std::move(info));
  return Histogram(this, slot, bounds_data, bound_count);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.captured_steady_ns = now_ns();
  snap.captured_wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  snap.counters.reserve(counters_.size());
  for (const auto& [name, slot] : counters_) {
    snap.counters.emplace_back(name, merged(slot));
  }
  snap.gauges.reserve(gauge_names_.size());
  for (const auto& [name, index] : gauge_names_) {
    snap.gauges.emplace_back(
        name,
        std::bit_cast<double>(gauges_[index].load(std::memory_order_relaxed)));
  }
  snap.histograms.reserve(hists_.size());
  for (const HistogramInfo& info : hists_) {
    HistogramSnapshot hist;
    hist.name = info.name;
    hist.bounds = *info.bounds;
    hist.counts.resize(info.bounds->size() + 1);
    for (std::size_t b = 0; b < hist.counts.size(); ++b) {
      hist.counts[b] = merged(info.slot + static_cast<std::uint32_t>(b));
      hist.count += hist.counts[b];
    }
    hist.sum = merged_double(
        info.slot + static_cast<std::uint32_t>(info.bounds->size()) + 1);
    snap.histograms.push_back(std::move(hist));
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  // Histogram sum slots hold double bit patterns; zero bits == 0.0, so
  // one blanket store covers both layouts.
  for (Shard& shard : shards_) {
    for (std::size_t i = 0; i < kSlotCapacity; ++i) {
      shard.slots[i].store(0, std::memory_order_relaxed);
    }
  }
  for (auto& gauge : gauges_) {
    gauge.store(std::bit_cast<std::uint64_t>(0.0), std::memory_order_relaxed);
  }
}

}  // namespace bevr::obs
