// Scoped trace spans with per-thread ring buffers and Chrome
// trace-event export, plus causal request tracing.
//
// BEVR_TRACE_SPAN("runner/task") drops an RAII probe into a scope;
// when the global TraceCollector is enabled, the span's begin/end
// timestamps land in the recording thread's ring buffer as one
// complete ("ph":"X") event. Buffers are fixed-capacity rings: a run
// that out-produces them overwrites its oldest spans and counts the
// drops, so tracing can never grow memory without bound or stall the
// traced code. Export renders the merged, time-sorted events as
// Chrome trace-event JSON — loadable directly in chrome://tracing and
// Perfetto (ui.perfetto.dev).
//
// Causality: an event may carry a TraceContext (trace/span/parent ids,
// deterministic — see trace_context.h) and flow flags. A flow-out
// event starts a Perfetto flow arrow keyed by the trace id; a flow-in
// event terminates one on its enclosing slice. That is how the service
// renders coalescing fan-in: N submit spans (each flow-out on its own
// trace id) arrow into the single evaluation span that served them
// (one flow-in per waiter recorded inside it).
//
// Tracks: threads can claim a stable track id and a display name
// (set_thread_track); the export emits process/thread-name metadata so
// traces open in Perfetto with labeled, deterministically-ordered
// tracks instead of bare registration-order tids.
//
// Costs: a span on a disabled collector is one relaxed bool load and
// a branch (bench_obs asserts it is noise); an enabled span is two
// steady_clock reads plus an uncontended per-thread mutex push.
// Span names must be string literals (or otherwise outlive the
// collector): buffers store the pointer, never a copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "bevr/obs/metrics.h"  // BEVR_OBS + now_ns()
#include "bevr/obs/trace_context.h"

namespace bevr::obs {

/// One recorded event, timestamps from now_ns()'s epoch. POD: rings
/// copy these around, so no members may own memory.
struct TraceEvent {
  /// Bit flags for `flags`.
  static constexpr std::uint8_t kInstant = 1;   ///< point event, end unused
  static constexpr std::uint8_t kFlowOut = 2;   ///< starts flow `trace_id`
  static constexpr std::uint8_t kFlowIn = 4;    ///< ends flow `trace_id` here
  static constexpr std::uint8_t kHasValue = 8;  ///< `value` is meaningful

  const char* name = nullptr;  ///< static-lifetime string
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t trace_id = 0;        ///< 0 = no causal context
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  double value = 0.0;                ///< free numeric payload (kHasValue)
  std::uint32_t tid = 0;             ///< track id (filled at record time)
  std::uint8_t flags = 0;
};

class TraceCollector {
 public:
  /// `buffer_capacity`: events retained per recording thread.
  explicit TraceCollector(std::size_t buffer_capacity = 1 << 16);

  /// The process-wide collector BEVR_TRACE_SPAN records into.
  /// Disabled by default (tracing is opt-in, e.g. bevr_run --trace-out).
  [[nodiscard]] static TraceCollector& global();

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
#if BEVR_OBS
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }

  /// Record one completed span into the calling thread's buffer.
  void record(const char* name, std::uint64_t begin_ns,
              std::uint64_t end_ns);

  /// Record a fully-populated event (causal ids, flow flags, value).
  /// The event's tid is overwritten with the calling thread's track.
  void record(TraceEvent event);

  /// Point-in-time event ("ph":"i") with optional causal context; a
  /// flow-in instant recorded inside a span attaches its arrow to that
  /// span. No-op when disabled.
  void record_instant(const char* name, const TraceContext& context = {},
                      std::uint8_t flow_flags = 0);

  /// Claim this thread's display name and stable track id for every
  /// future event it records into any collector. Call once near thread
  /// start (pool/service workers do); events recorded *before* the
  /// claim keep the registration-order fallback track. Registration-
  /// cost path (allocates); never call per-event.
  static void set_thread_track(std::string name, std::uint32_t track);

  /// The track id this thread claimed via set_thread_track, or
  /// `fallback` if it never claimed one. The flight recorder uses this
  /// so its records carry the same track ids as the trace export.
  [[nodiscard]] static std::uint32_t thread_track_id(
      std::uint32_t fallback) noexcept;

  /// Merged events from every thread buffer, sorted by begin time.
  /// Meant to run after the traced activity quiesces (each buffer is
  /// locked only long enough to copy it out).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Spans lost to ring overwrite, total across threads.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}): process/thread
  /// name metadata, "X" complete events and "i" instants with
  /// microsecond timestamps, causal ids as args, and "s"/"f" flow
  /// records for the flow-flagged events.
  void write_chrome_trace(std::ostream& out) const;

  /// Discard all recorded events (buffers stay registered).
  void clear();

 private:
  struct Buffer {
    Buffer(std::size_t ring_capacity, std::uint32_t track_id,
           std::string track_name)
        : capacity(ring_capacity), tid(track_id), name(std::move(track_name)) {
      events.reserve(ring_capacity);
    }
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;  ///< ring once size == capacity
    std::size_t capacity;
    std::size_t next = 0;      ///< ring write position
    std::uint64_t dropped = 0;
    std::uint32_t tid;
    std::string name;  ///< thread display name ("" = unnamed)
  };

  [[nodiscard]] Buffer& this_thread_buffer();

  std::atomic<bool> enabled_{false};
  /// Process-unique: the per-thread buffer cache keys on this rather
  /// than the collector's address, so a new collector reusing a dead
  /// one's storage (same stack slot in tests) can never hit a stale
  /// cache entry.
  std::uint64_t id_;
  std::size_t buffer_capacity_;
  mutable std::mutex mutex_;  ///< guards buffers_ registration
  std::vector<std::shared_ptr<Buffer>> buffers_;
};

/// RAII span: snapshots the clock at construction when the collector
/// is enabled, records the complete event at destruction. Enablement
/// is latched at entry so a span straddling a set_enabled(false) still
/// records coherently. The optional TraceContext and flow flags ride
/// along into the recorded event.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     TraceCollector& collector = TraceCollector::global())
      : TraceSpan(name, TraceContext{}, 0, collector) {}

  TraceSpan(const char* name, const TraceContext& context,
            std::uint8_t flow_flags = 0,
            TraceCollector& collector = TraceCollector::global())
      : collector_(collector.enabled() ? &collector : nullptr),
        name_(name),
        context_(context),
        flow_flags_(flow_flags),
        begin_ns_(collector_ != nullptr ? now_ns() : 0) {}

  ~TraceSpan() {
    if (collector_ == nullptr) return;
    TraceEvent event;
    event.name = name_;
    event.begin_ns = begin_ns_;
    event.end_ns = now_ns();
    event.trace_id = context_.trace_id;
    event.span_id = context_.span_id;
    event.parent_span_id = context_.parent_span_id;
    event.flags = flow_flags_;
    collector_->record(event);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceCollector* collector_;
  const char* name_;
  TraceContext context_;
  std::uint8_t flow_flags_;
  std::uint64_t begin_ns_;
};

#if BEVR_OBS
#define BEVR_OBS_CONCAT_IMPL(a, b) a##b
#define BEVR_OBS_CONCAT(a, b) BEVR_OBS_CONCAT_IMPL(a, b)
/// Trace the enclosing scope as one complete event named `name`
/// (a string literal; the collector stores the pointer).
#define BEVR_TRACE_SPAN(name) \
  ::bevr::obs::TraceSpan BEVR_OBS_CONCAT(bevr_trace_span_, __LINE__)(name)
/// Same, with a causal TraceContext attached.
#define BEVR_TRACE_SPAN_CTX(name, context)                              \
  ::bevr::obs::TraceSpan BEVR_OBS_CONCAT(bevr_trace_span_, __LINE__)(   \
      name, context)
#else
#define BEVR_TRACE_SPAN(name) \
  do {                        \
  } while (false)
#define BEVR_TRACE_SPAN_CTX(name, context) \
  do {                                     \
  } while (false)
#endif

}  // namespace bevr::obs
