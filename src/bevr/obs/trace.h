// Scoped trace spans with per-thread ring buffers and Chrome
// trace-event export.
//
// BEVR_TRACE_SPAN("runner/task") drops an RAII probe into a scope;
// when the global TraceCollector is enabled, the span's begin/end
// timestamps land in the recording thread's ring buffer as one
// complete ("ph":"X") event. Buffers are fixed-capacity rings: a run
// that out-produces them overwrites its oldest spans and counts the
// drops, so tracing can never grow memory without bound or stall the
// traced code. Export renders the merged, time-sorted events as
// Chrome trace-event JSON — loadable directly in chrome://tracing and
// Perfetto (ui.perfetto.dev).
//
// Costs: a span on a disabled collector is one relaxed bool load and
// a branch (bench_obs asserts it is noise); an enabled span is two
// steady_clock reads plus an uncontended per-thread mutex push.
// Span names must be string literals (or otherwise outlive the
// collector): buffers store the pointer, never a copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "bevr/obs/metrics.h"  // BEVR_OBS + now_ns()

namespace bevr::obs {

/// One completed span, timestamps from now_ns()'s epoch.
struct TraceEvent {
  const char* name = nullptr;  ///< static-lifetime string
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;  ///< small per-buffer thread index
};

class TraceCollector {
 public:
  /// `buffer_capacity`: events retained per recording thread.
  explicit TraceCollector(std::size_t buffer_capacity = 1 << 16);

  /// The process-wide collector BEVR_TRACE_SPAN records into.
  /// Disabled by default (tracing is opt-in, e.g. bevr_run --trace-out).
  [[nodiscard]] static TraceCollector& global();

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
#if BEVR_OBS
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }

  /// Record one completed span into the calling thread's buffer.
  void record(const char* name, std::uint64_t begin_ns,
              std::uint64_t end_ns);

  /// Merged events from every thread buffer, sorted by begin time.
  /// Meant to run after the traced activity quiesces (each buffer is
  /// locked only long enough to copy it out).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Spans lost to ring overwrite, total across threads.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}); "X" phase
  /// complete events with microsecond timestamps.
  void write_chrome_trace(std::ostream& out) const;

  /// Discard all recorded events (buffers stay registered).
  void clear();

 private:
  struct Buffer {
    explicit Buffer(std::size_t ring_capacity, std::uint32_t thread_index)
        : capacity(ring_capacity), tid(thread_index) {
      events.reserve(ring_capacity);
    }
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;  ///< ring once size == capacity
    std::size_t capacity;
    std::size_t next = 0;      ///< ring write position
    std::uint64_t dropped = 0;
    std::uint32_t tid;
  };

  [[nodiscard]] Buffer& this_thread_buffer();

  std::atomic<bool> enabled_{false};
  /// Process-unique: the per-thread buffer cache keys on this rather
  /// than the collector's address, so a new collector reusing a dead
  /// one's storage (same stack slot in tests) can never hit a stale
  /// cache entry.
  std::uint64_t id_;
  std::size_t buffer_capacity_;
  mutable std::mutex mutex_;  ///< guards buffers_ registration
  std::vector<std::shared_ptr<Buffer>> buffers_;
};

/// RAII span: snapshots the clock at construction when the collector
/// is enabled, records the complete event at destruction. Enablement
/// is latched at entry so a span straddling a set_enabled(false) still
/// records coherently.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     TraceCollector& collector = TraceCollector::global())
      : collector_(collector.enabled() ? &collector : nullptr),
        name_(name),
        begin_ns_(collector_ != nullptr ? now_ns() : 0) {}

  ~TraceSpan() {
    if (collector_ != nullptr) collector_->record(name_, begin_ns_, now_ns());
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceCollector* collector_;
  const char* name_;
  std::uint64_t begin_ns_;
};

#if BEVR_OBS
#define BEVR_OBS_CONCAT_IMPL(a, b) a##b
#define BEVR_OBS_CONCAT(a, b) BEVR_OBS_CONCAT_IMPL(a, b)
/// Trace the enclosing scope as one complete event named `name`
/// (a string literal; the collector stores the pointer).
#define BEVR_TRACE_SPAN(name) \
  ::bevr::obs::TraceSpan BEVR_OBS_CONCAT(bevr_trace_span_, __LINE__)(name)
#else
#define BEVR_TRACE_SPAN(name) \
  do {                        \
  } while (false)
#endif

}  // namespace bevr::obs
