#include "bevr/obs/json_text.h"

#include <cstdint>
#include <cstdio>

namespace bevr::obs {

namespace {

/// Length of the well-formed UTF-8 sequence starting at text[i], or 0
/// when the bytes there are not a valid sequence (RFC 3629 rules:
/// shortest-form only, no surrogates, nothing above U+10FFFF).
std::size_t utf8_sequence_length(std::string_view text, std::size_t i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<unsigned char>(text[k]);
  };
  const unsigned char lead = byte(i);
  if (lead < 0x80) return 1;
  std::size_t length = 0;
  std::uint32_t min_code = 0;
  if ((lead & 0xE0) == 0xC0) {
    length = 2;
    min_code = 0x80;
  } else if ((lead & 0xF0) == 0xE0) {
    length = 3;
    min_code = 0x800;
  } else if ((lead & 0xF8) == 0xF0) {
    length = 4;
    min_code = 0x10000;
  } else {
    return 0;  // stray continuation byte or 0xF8..0xFF
  }
  if (i + length > text.size()) return 0;  // truncated at end of input
  std::uint32_t code = lead & (0x7Fu >> length);
  for (std::size_t k = 1; k < length; ++k) {
    const unsigned char cont = byte(i + k);
    if ((cont & 0xC0) != 0x80) return 0;
    code = (code << 6) | (cont & 0x3Fu);
  }
  if (code < min_code) return 0;                    // overlong encoding
  if (code >= 0xD800 && code <= 0xDFFF) return 0;   // surrogate half
  if (code > 0x10FFFF) return 0;
  return length;
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string escaped;
  escaped.reserve(text.size() + 8);
  std::size_t i = 0;
  while (i < text.size()) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    if (c == '"') {
      escaped += "\\\"";
      ++i;
    } else if (c == '\\') {
      escaped += "\\\\";
      ++i;
    } else if (c < 0x20) {
      switch (c) {
        case '\b': escaped += "\\b"; break;
        case '\f': escaped += "\\f"; break;
        case '\n': escaped += "\\n"; break;
        case '\r': escaped += "\\r"; break;
        case '\t': escaped += "\\t"; break;
        default: {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          escaped += buffer;
        }
      }
      ++i;
    } else if (c < 0x80) {
      escaped += static_cast<char>(c);
      ++i;
    } else if (const std::size_t length = utf8_sequence_length(text, i);
               length > 0) {
      escaped.append(text.substr(i, length));
      i += length;
    } else {
      escaped += "\xEF\xBF\xBD";  // U+FFFD REPLACEMENT CHARACTER
      ++i;
    }
  }
  return escaped;
}

}  // namespace bevr::obs
