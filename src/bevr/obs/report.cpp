#include "bevr/obs/report.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>

#include "bevr/obs/json_text.h"

namespace bevr::obs {

namespace {

std::string format_double(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  // Shortest round-tripping representation, same policy as the
  // runner's result sinks.
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(buffer, "%lf", &parsed);
    if (parsed == value) break;
  }
  return buffer;
}

/// Human-scale window label: "5s", "60s", "0.25s".
std::string window_label(std::uint64_t window_ns) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%gs",
                static_cast<double>(window_ns) * 1e-9);
  return buffer;
}

std::string render_text(const ReportData& data) {
  const MetricsSnapshot& snapshot = data.metrics;
  std::ostringstream out;
  out << "== run report ==\n";
  if (!snapshot.counters.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : snapshot.counters) {
      char line[160];
      std::snprintf(line, sizeof line, "  %-36s %20llu\n", name.c_str(),
                    static_cast<unsigned long long>(value));
      out << line;
    }
  }
  if (!snapshot.gauges.empty()) {
    out << "gauges:\n";
    for (const auto& [name, value] : snapshot.gauges) {
      char line[160];
      std::snprintf(line, sizeof line, "  %-36s %20.6g\n", name.c_str(),
                    value);
      out << line;
    }
  }
  if (!snapshot.histograms.empty()) {
    out << "histograms:                             "
           "   count      mean       p50       p95       p99\n";
    for (const HistogramSnapshot& hist : snapshot.histograms) {
      char line[200];
      std::snprintf(line, sizeof line,
                    "  %-36s %9llu %9.3g %9.3g %9.3g %9.3g\n",
                    hist.name.c_str(),
                    static_cast<unsigned long long>(hist.count), hist.mean(),
                    hist.quantile(0.50), hist.quantile(0.95),
                    hist.quantile(0.99));
      out << line;
    }
  }
  if (!data.slos.empty()) {
    out << "slos:                                    "
           "  target  bad-ratio    health\n";
    for (const SloStatus& slo : data.slos) {
      const std::uint64_t total = slo.total_good + slo.total_bad;
      const double bad_ratio =
          total == 0 ? 0.0
                     : static_cast<double>(slo.total_bad) /
                           static_cast<double>(total);
      char line[200];
      std::snprintf(line, sizeof line, "  %-36s %9.4g %10.4g %9s\n",
                    slo.name.c_str(), slo.target, bad_ratio,
                    slo.healthy ? "ok" : "BURNING");
      out << line;
      for (const SloWindowStatus& window : slo.windows) {
        std::snprintf(line, sizeof line,
                      "    last %-8s good %10llu bad %10llu burn %9.4g\n",
                      window_label(window.window_ns).c_str(),
                      static_cast<unsigned long long>(window.good),
                      static_cast<unsigned long long>(window.bad),
                      window.burn_rate);
        out << line;
      }
    }
  }
  return out.str();
}

std::string render_json(const ReportData& data) {
  const MetricsSnapshot& snapshot = data.metrics;
  std::ostringstream out;
  out << "{\"schema\":\"bevr.snapshot.v1\",\"captured_steady_ns\":"
      << snapshot.captured_steady_ns
      << ",\"captured_wall_ns\":" << snapshot.captured_wall_ns
      << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(name) << "\":" << format_double(value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& hist : snapshot.histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(hist.name) << "\":{\"count\":" << hist.count
        << ",\"sum\":" << format_double(hist.sum)
        << ",\"mean\":" << format_double(hist.mean())
        << ",\"p50\":" << format_double(hist.quantile(0.50))
        << ",\"p95\":" << format_double(hist.quantile(0.95))
        << ",\"p99\":" << format_double(hist.quantile(0.99)) << ",\"buckets\":[";
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      if (i != 0) out << ",";
      const std::string le =
          i < hist.bounds.size() ? format_double(hist.bounds[i]) : "\"+Inf\"";
      out << "{\"le\":" << le << ",\"count\":" << hist.counts[i] << "}";
    }
    out << "]}";
  }
  out << "},\"slos\":{";
  first = true;
  for (const SloStatus& slo : data.slos) {
    if (!first) out << ",";
    first = false;
    out << "\"" << json_escape(slo.name)
        << "\":{\"target\":" << format_double(slo.target)
        << ",\"good\":" << slo.total_good << ",\"bad\":" << slo.total_bad
        << ",\"healthy\":" << (slo.healthy ? "true" : "false")
        << ",\"windows\":[";
    for (std::size_t i = 0; i < slo.windows.size(); ++i) {
      const SloWindowStatus& window = slo.windows[i];
      if (i != 0) out << ",";
      out << "{\"window_ns\":" << window.window_ns
          << ",\"good\":" << window.good << ",\"bad\":" << window.bad
          << ",\"bad_fraction\":" << format_double(window.bad_fraction)
          << ",\"burn_rate\":" << format_double(window.burn_rate) << "}";
    }
    out << "]}";
  }
  out << "}}\n";
  return out.str();
}

/// Uniques sanitized metric names within one exposition page. Distinct
/// raw names ("pool/tasks-done" and "pool/tasks.done") sanitize to the
/// same string; emitting both verbatim would duplicate the `# TYPE`
/// line and invalidate the whole scrape.
class PromNamer {
 public:
  std::string unique(const std::string& candidate) {
    std::string name = candidate;
    int suffix = 2;
    while (!used_.insert(name).second) {
      name = candidate + "_dup" + std::to_string(suffix++);
    }
    return name;
  }

 private:
  std::set<std::string> used_;
};

std::string render_prom(const ReportData& data) {
  const MetricsSnapshot& snapshot = data.metrics;
  std::ostringstream out;
  PromNamer namer;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = namer.unique(prom_metric_name(name) + "_total");
    out << "# TYPE " << prom << " counter\n"
        << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = namer.unique(prom_metric_name(name));
    out << "# TYPE " << prom << " gauge\n"
        << prom << " " << format_double(value) << "\n";
  }
  for (const HistogramSnapshot& hist : snapshot.histograms) {
    const std::string prom = namer.unique(prom_metric_name(hist.name));
    out << "# TYPE " << prom << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < hist.counts.size(); ++i) {
      cumulative += hist.counts[i];
      const std::string le =
          i < hist.bounds.size() ? format_double(hist.bounds[i]) : "+Inf";
      out << prom << "_bucket{le=\"" << prom_label_value(le) << "\"} "
          << cumulative << "\n";
    }
    out << prom << "_sum " << format_double(hist.sum) << "\n"
        << prom << "_count " << hist.count << "\n";
  }
  if (!data.slos.empty()) {
    // SLO families are labeled (slo=, window=), so each family's TYPE
    // line is emitted once and the trackers become label values.
    out << "# TYPE bevr_slo_target gauge\n"
        << "# TYPE bevr_slo_good_total counter\n"
        << "# TYPE bevr_slo_bad_total counter\n"
        << "# TYPE bevr_slo_healthy gauge\n"
        << "# TYPE bevr_slo_burn_rate gauge\n";
    for (const SloStatus& slo : data.slos) {
      const std::string label = prom_label_value(slo.name);
      out << "bevr_slo_target{slo=\"" << label << "\"} "
          << format_double(slo.target) << "\n"
          << "bevr_slo_good_total{slo=\"" << label << "\"} " << slo.total_good
          << "\n"
          << "bevr_slo_bad_total{slo=\"" << label << "\"} " << slo.total_bad
          << "\n"
          << "bevr_slo_healthy{slo=\"" << label << "\"} "
          << (slo.healthy ? 1 : 0) << "\n";
      for (const SloWindowStatus& window : slo.windows) {
        out << "bevr_slo_burn_rate{slo=\"" << label << "\",window=\""
            << prom_label_value(window_label(window.window_ns)) << "\"} "
            << format_double(window.burn_rate) << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace

ReportFormat parse_report_format(const std::string& name) {
  if (name == "text") return ReportFormat::kText;
  if (name == "json") return ReportFormat::kJson;
  if (name == "prom") return ReportFormat::kProm;
  throw std::invalid_argument("report format must be text, json or prom; got '" +
                              name + "'");
}

std::string prom_metric_name(const std::string& name) {
  std::string prom = "bevr_";
  for (const char c : name) {
    const bool valid = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    prom += valid ? c : '_';
  }
  return prom;
}

std::string prom_label_value(const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': escaped += "\\\\"; break;
      case '"': escaped += "\\\""; break;
      case '\n': escaped += "\\n"; break;
      default: escaped += c;
    }
  }
  return escaped;
}

std::string render_report(const MetricsSnapshot& snapshot,
                          ReportFormat format) {
  return render_report(ReportData{snapshot, {}}, format);
}

std::string render_report(const ReportData& data, ReportFormat format) {
  switch (format) {
    case ReportFormat::kText: return render_text(data);
    case ReportFormat::kJson: return render_json(data);
    case ReportFormat::kProm: return render_prom(data);
  }
  throw std::invalid_argument("render_report: unknown format");
}

}  // namespace bevr::obs
