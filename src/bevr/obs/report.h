// End-of-run reporting: render one MetricsSnapshot as human text, a
// JSON object, or Prometheus text exposition (version 0.0.4).
//
// The same snapshot backs all three, so the numbers agree by
// construction: text for the terminal, JSON for tooling (the
// BENCH_*.json perf trajectory consumes it), Prometheus for scraping
// a long-running service. Metric names use '/'-separated paths
// internally ("runner/pool/tasks"); the Prometheus renderer maps them
// to the exposition grammar (bevr_runner_pool_tasks_total).
#pragma once

#include <string>
#include <vector>

#include "bevr/obs/metrics.h"
#include "bevr/obs/slo.h"

namespace bevr::obs {

enum class ReportFormat { kText, kJson, kProm };

/// Everything a report can carry: the metrics snapshot plus any SLO
/// readings taken alongside it (usually SloRegistry::global()
/// .snapshot_all()). The snapshot-only render_report overload is the
/// same as passing empty slos.
struct ReportData {
  MetricsSnapshot metrics;
  std::vector<SloStatus> slos;
};

/// Parse "text" / "json" / "prom"; throws std::invalid_argument.
[[nodiscard]] ReportFormat parse_report_format(const std::string& name);

/// A path-style metric name as a Prometheus metric name: prefixed
/// "bevr_", every character outside [a-zA-Z0-9_:] mapped to '_'.
/// Distinct raw names can collapse to the same result ("a-b" and
/// "a.b"); render_report's prom output additionally uniques them so a
/// scrape page never carries duplicate `# TYPE` lines.
[[nodiscard]] std::string prom_metric_name(const std::string& name);

/// Escape a string for use inside a Prometheus label value (exposition
/// format 0.0.4): backslash, double quote, and newline get escaped.
[[nodiscard]] std::string prom_label_value(const std::string& value);

/// Render the snapshot in the requested format. Histograms report
/// count/mean/p50/p95/p99 in text and JSON, and cumulative buckets
/// (le="..." ... le="+Inf", _sum, _count) in Prometheus exposition.
/// JSON output carries schema "bevr.snapshot.v1" plus the snapshot's
/// capture timestamps; adding fields is a compatible change within
/// the v1 schema, removing or renaming them bumps it.
[[nodiscard]] std::string render_report(const MetricsSnapshot& snapshot,
                                        ReportFormat format);

/// Same, with SLO readings: text gains an "slos:" section (per-window
/// burn rates), JSON an "slos" object, Prometheus bevr_slo_* gauges
/// with slo=/window= labels.
[[nodiscard]] std::string render_report(const ReportData& data,
                                        ReportFormat format);

}  // namespace bevr::obs
