// Always-on flight recorder: a black box for the serving + admission
// stack.
//
// Unlike the trace collector (opt-in, rich spans, mutex-protected
// rings), the flight recorder is meant to run in *every* configuration
// — including production-shaped benchmark runs — and be read out only
// when something has already gone wrong. That dictates the design:
//
//  * recording is wait-free and allocation-free: each thread owns a
//    fixed ring of fixed-size POD records and is its ring's only
//    writer; a record is a handful of relaxed atomic stores plus one
//    relaxed head increment (bench_obs pins the cost);
//  * readers (dump paths) walk the rings concurrently with writers
//    using relaxed loads. A record being overwritten mid-read can come
//    out torn — mixed fields from two events. That is an accepted
//    trade: a black box favours never perturbing the flight over
//    perfect readback, and torn records are rare (only the ring's
//    oldest slot races) and harmless (the dump is for humans);
//  * `detail` strings must be string literals: the ring stores the
//    pointer bits, never a copy.
//
// Dumps are JSON (schema "bevr.flight.v1"), merged across threads and
// time-sorted. They happen on demand (bevr_serve --flight-dump,
// SIGUSR2) or automatically: set_auto_dump_path arms a one-shot latch
// that contract failures and overload-storm detection fire, so the
// moments before a failure are preserved without anyone asking.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "bevr/obs/metrics.h"  // BEVR_OBS + now_ns()

namespace bevr::obs {

/// What happened. Codes are stable vocabulary, not free text: the dump
/// renders them as fixed uppercase names (flight_code_name) that tests
/// and humans can grep for.
enum class FlightCode : std::uint32_t {
  kMark = 0,          ///< generic annotation (detail says what)
  // Service lifecycle.
  kSubmit,            ///< request accepted into the queue
  kShed,              ///< request rejected for a non-load reason (shutdown)
  kCoalesce,          ///< request piggybacked on an in-flight evaluation
  kEvaluate,          ///< worker started evaluating a batch; a = batch rows
  kRespond,           ///< response delivered on time; a = latency_us
  kDeadlineMiss,      ///< response delivered late; a = latency_us
  kExpire,            ///< request expired before evaluation; a = waited_us
  kOverloaded,        ///< request shed: queue full; a = queue depth
  kStorm,             ///< overload storm detected; a = consecutive count
  // Admission decisions (a = utilisation at decision, b = flow index).
  kAdmit,
  kBlock,
  kCounteroffer,
  kCancel,
  kExpireSweep,       ///< calendar sweep retired reservations; a = count
  // Failure hooks.
  kContractFail,      ///< a benchmark/test contract failed
};

/// Fixed uppercase name for a code ("OVERLOADED", "ADMIT", ...).
[[nodiscard]] const char* flight_code_name(FlightCode code) noexcept;

/// One decoded record, as read back out of a ring.
struct FlightRecord {
  std::uint64_t ts_ns = 0;      ///< now_ns() at record time
  std::uint64_t trace_id = 0;   ///< causal link into the trace (0 = none)
  const char* detail = nullptr; ///< static string or nullptr
  double a = 0.0;               ///< code-specific payload
  double b = 0.0;
  FlightCode code = FlightCode::kMark;
  std::uint32_t track = 0;      ///< same track ids as the trace export
};

class FlightRecorder {
 public:
  /// `ring_capacity`: records retained per recording thread.
  explicit FlightRecorder(std::size_t ring_capacity = 1 << 12);

  /// The process-wide recorder. Always recording (that is the point);
  /// BEVR_OBS=0 compiles record() down to nothing.
  [[nodiscard]] static FlightRecorder& global();

  /// Record one event. Wait-free, allocation-free after the calling
  /// thread's first record, never blocks or throws. `detail` must be a
  /// string literal (or otherwise immortal) — the pointer is stored.
  void record(FlightCode code, std::uint64_t trace_id = 0,
              const char* detail = nullptr, double a = 0.0,
              double b = 0.0) noexcept;

  /// Decode every ring, oldest-first per thread, merged and sorted by
  /// timestamp. Safe while writers run (see torn-record caveat above).
  [[nodiscard]] std::vector<FlightRecord> records() const;

  /// Records lost to ring wrap, total across threads.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Dump as "bevr.flight.v1" JSON: schema, dump reason, capture
  /// timestamp, drop count, and the merged records (code names
  /// uppercase, details escaped via json_escape).
  void write_json(std::ostream& out, std::string_view reason) const;

  /// Arm automatic dumping: the next auto_dump() writes the JSON to
  /// `path` (empty disarms). Re-arming resets the once-latch.
  void set_auto_dump_path(std::string path);

  /// Fire the auto-dump latch: writes at most one dump per arming (so
  /// a storm of failures produces the *first* flight, not the last).
  /// Returns true if this call wrote the dump.
  bool auto_dump(const char* reason) noexcept;

  /// Discard all records (rings stay registered).
  void clear();

 private:
  /// One ring slot: plain relaxed-atomic cells so concurrent
  /// read-while-write is data-race-free (if possibly torn).
  struct Slot {
    std::atomic<std::uint64_t> ts_ns{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> detail_bits{0};  ///< const char* bits
    std::atomic<std::uint64_t> a_bits{0};       ///< double bits
    std::atomic<std::uint64_t> b_bits{0};
    std::atomic<std::uint64_t> code_track{0};   ///< code << 32 | track
  };
  struct Ring {
    Ring(std::size_t slot_count, std::uint32_t track_id)
        : slots(std::make_unique<Slot[]>(slot_count)),
          capacity(slot_count),
          track(track_id) {}
    std::unique_ptr<Slot[]> slots;
    std::size_t capacity;
    std::atomic<std::uint64_t> head{0};  ///< total records ever written
    std::uint32_t track;
  };

  [[nodiscard]] Ring& this_thread_ring();

  /// Process-unique id; the per-thread ring cache keys on it (same
  /// stale-cache rationale as TraceCollector::id_).
  std::uint64_t id_;
  std::size_t ring_capacity_;
  mutable std::mutex mutex_;  ///< guards rings_ registration
  std::vector<std::shared_ptr<Ring>> rings_;

  std::mutex dump_mutex_;  ///< guards auto_dump_path_
  std::string auto_dump_path_;
  std::atomic<bool> auto_dump_armed_{false};
};

}  // namespace bevr::obs
