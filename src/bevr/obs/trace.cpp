#include "bevr/obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "bevr/obs/json_text.h"

namespace bevr::obs {

namespace {

std::uint64_t next_collector_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Track identity a thread claims for itself (set_thread_track).
/// Thread-global rather than per-collector: a worker is "service
/// worker 3" no matter which collector it records into. Buffers
/// snapshot these at registration.
struct ThreadTrack {
  std::string name;
  std::uint32_t track = 0;
  bool claimed = false;
};

ThreadTrack& this_thread_track() {
  thread_local ThreadTrack track;
  return track;
}

/// Unnamed threads get registration-order tracks from here upward, so
/// they can never collide with the small stable ids named threads
/// claim (main = 1, pool/service workers = 100/200 + index).
constexpr std::uint32_t kUnnamedTrackBase = 1000;

/// One-entry per-thread cache: the common case is every span in a
/// thread hitting the same collector (the global one). A different
/// collector (tests) falls through to the registration slow path.
struct BufferCache {
  std::uint64_t collector_id = 0;  // 0: never assigned
  std::shared_ptr<void> buffer;    // the owning collector's Buffer
};

BufferCache& this_thread_cache() {
  thread_local BufferCache cache;
  return cache;
}

void append_hex_arg(std::string& out, const char* key, std::uint64_t value,
                    bool& first) {
  if (value == 0) return;
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%s\"%s\":\"0x%016" PRIx64 "\"",
                first ? "" : ",", key, value);
  out += buffer;
  first = false;
}

/// Shared causal/value args for X and i events; "" when there are none.
std::string event_args(const TraceEvent& event) {
  bool first = true;
  std::string args;
  append_hex_arg(args, "trace", event.trace_id, first);
  append_hex_arg(args, "span", event.span_id, first);
  append_hex_arg(args, "parent", event.parent_span_id, first);
  if ((event.flags & TraceEvent::kHasValue) != 0) {
    char buffer[48];
    std::snprintf(buffer, sizeof buffer, "%s\"v\":%.17g", first ? "" : ",",
                  event.value);
    args += buffer;
    first = false;
  }
  if (first) return {};
  return ",\"args\":{" + args + "}";
}

void write_timestamp(std::ostream& out, std::uint64_t ns) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%.3f", static_cast<double>(ns) * 1e-3);
  out << buffer;
}

}  // namespace

TraceCollector::TraceCollector(std::size_t buffer_capacity)
    : id_(next_collector_id()),
      buffer_capacity_(buffer_capacity == 0 ? 1 : buffer_capacity) {}

TraceCollector& TraceCollector::global() {
  static TraceCollector collector;
  return collector;
}

void TraceCollector::set_thread_track(std::string name, std::uint32_t track) {
  ThreadTrack& attrs = this_thread_track();
  attrs.name = std::move(name);
  attrs.track = track;
  attrs.claimed = true;
  // A buffer this thread already registered keeps serving: re-label it
  // so future events (and the export metadata) use the claimed track.
  BufferCache& cache = this_thread_cache();
  if (cache.buffer != nullptr) {
    auto* buffer = static_cast<Buffer*>(cache.buffer.get());
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->tid = attrs.track;
    buffer->name = attrs.name;
  }
}

std::uint32_t TraceCollector::thread_track_id(std::uint32_t fallback) noexcept {
  const ThreadTrack& attrs = this_thread_track();
  return attrs.claimed ? attrs.track : fallback;
}

TraceCollector::Buffer& TraceCollector::this_thread_buffer() {
  BufferCache& cache = this_thread_cache();
  if (cache.collector_id == id_ && cache.buffer != nullptr) {
    return *static_cast<Buffer*>(cache.buffer.get());
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const ThreadTrack& attrs = this_thread_track();
  const std::uint32_t tid =
      attrs.claimed ? attrs.track
                    : kUnnamedTrackBase +
                          static_cast<std::uint32_t>(buffers_.size());
  auto buffer = std::make_shared<Buffer>(buffer_capacity_, tid,
                                         attrs.claimed ? attrs.name : "");
  buffers_.push_back(buffer);
  cache.collector_id = id_;
  cache.buffer = buffer;
  return *buffer;
}

void TraceCollector::record(const char* name, std::uint64_t begin_ns,
                            std::uint64_t end_ns) {
  TraceEvent event;
  event.name = name;
  event.begin_ns = begin_ns;
  event.end_ns = end_ns;
  record(event);
}

void TraceCollector::record(TraceEvent event) {
  Buffer& buffer = this_thread_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  event.tid = buffer.tid;
  if (buffer.events.size() < buffer.capacity) {
    buffer.events.push_back(event);
    return;
  }
  // Ring overwrite: drop the oldest span, keep counting what was lost.
  buffer.events[buffer.next] = event;
  buffer.next = (buffer.next + 1) % buffer.capacity;
  ++buffer.dropped;
}

void TraceCollector::record_instant(const char* name,
                                    const TraceContext& context,
                                    std::uint8_t flow_flags) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.begin_ns = now_ns();
  event.end_ns = event.begin_ns;
  event.trace_id = context.trace_id;
  event.span_id = context.span_id;
  event.parent_span_id = context.parent_span_id;
  event.flags = static_cast<std::uint8_t>(TraceEvent::kInstant | flow_flags);
  record(event);
}

std::vector<TraceEvent> TraceCollector::events() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> merged;
  for (const auto& buffer : buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    merged.insert(merged.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
              return a.end_ns > b.end_ns;  // enclosing spans first
            });
  return merged;
}

std::uint64_t TraceCollector::dropped() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::uint64_t total = 0;
  for (const auto& buffer : buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

void TraceCollector::write_chrome_trace(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto separator = [&] {
    if (!first) out << ",";
    first = false;
  };

  // Metadata first: process name, then one thread_name +
  // thread_sort_index pair per named track, so Perfetto shows labeled
  // tracks in stable (claimed-id) order instead of bare tids.
  separator();
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"bevr\"}}";
  {
    std::vector<std::shared_ptr<Buffer>> buffers;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      buffers = buffers_;
    }
    for (const auto& buffer : buffers) {
      std::string name;
      std::uint32_t tid = 0;
      {
        const std::lock_guard<std::mutex> lock(buffer->mutex);
        name = buffer->name;
        tid = buffer->tid;
      }
      if (name.empty()) continue;
      separator();
      out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
          << ",\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
      separator();
      out << "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":"
          << tid << ",\"args\":{\"sort_index\":" << tid << "}}";
    }
  }

  for (const TraceEvent& event : events()) {
    const std::string args = event_args(event);
    separator();
    if ((event.flags & TraceEvent::kInstant) != 0) {
      out << "{\"name\":\"" << json_escape(event.name)
          << "\",\"cat\":\"bevr\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
      write_timestamp(out, event.begin_ns);
      out << ",\"pid\":1,\"tid\":" << event.tid << args << "}";
    } else {
      // Complete events; ts/dur in (fractional) microseconds, as the
      // trace-event format specifies.
      out << "{\"name\":\"" << json_escape(event.name)
          << "\",\"cat\":\"bevr\",\"ph\":\"X\",\"ts\":";
      write_timestamp(out, event.begin_ns);
      out << ",\"dur\":";
      write_timestamp(out, event.end_ns - event.begin_ns);
      out << ",\"pid\":1,\"tid\":" << event.tid << args << "}";
    }
    // Flow records: "s" starts an arrow keyed by the trace id at this
    // event's begin; "f" (bp:"e") lands it on the slice enclosing that
    // timestamp. The paired records share one id, which is how N
    // submit spans fan into one evaluation span.
    if (event.trace_id != 0 && (event.flags & TraceEvent::kFlowOut) != 0) {
      separator();
      out << "{\"name\":\"req\",\"cat\":\"bevr.flow\",\"ph\":\"s\",\"id\":"
          << event.trace_id << ",\"ts\":";
      write_timestamp(out, event.begin_ns);
      out << ",\"pid\":1,\"tid\":" << event.tid << "}";
    }
    if (event.trace_id != 0 && (event.flags & TraceEvent::kFlowIn) != 0) {
      separator();
      out << "{\"name\":\"req\",\"cat\":\"bevr.flow\",\"ph\":\"f\",\"bp\":\"e\""
             ",\"id\":"
          << event.trace_id << ",\"ts\":";
      write_timestamp(out, event.begin_ns);
      out << ",\"pid\":1,\"tid\":" << event.tid << "}";
    }
  }
  out << "]}\n";
  out.flush();
}

void TraceCollector::clear() {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->events.clear();
    buffer->next = 0;
    buffer->dropped = 0;
  }
}

}  // namespace bevr::obs
