#include "bevr/obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace bevr::obs {

namespace {

// Minimal JSON string escape for span names (ASCII literals).
std::string json_escape(const char* text) {
  std::string escaped;
  for (const char* p = text; *p != '\0'; ++p) {
    switch (*p) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      default: escaped += *p;
    }
  }
  return escaped;
}

}  // namespace

namespace {
std::uint64_t next_collector_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

TraceCollector::TraceCollector(std::size_t buffer_capacity)
    : id_(next_collector_id()),
      buffer_capacity_(buffer_capacity == 0 ? 1 : buffer_capacity) {}

TraceCollector& TraceCollector::global() {
  static TraceCollector collector;
  return collector;
}

TraceCollector::Buffer& TraceCollector::this_thread_buffer() {
  // One-entry thread-local cache: the common case is every span in a
  // thread hitting the same collector (the global one). A different
  // collector (tests) falls through to the registration slow path.
  struct Cache {
    std::uint64_t collector_id = 0;  // 0: never assigned
    std::shared_ptr<Buffer> buffer;
  };
  thread_local Cache cache;
  if (cache.collector_id == id_ && cache.buffer != nullptr) {
    return *cache.buffer;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  auto buffer = std::make_shared<Buffer>(
      buffer_capacity_, static_cast<std::uint32_t>(buffers_.size()));
  buffers_.push_back(buffer);
  cache.collector_id = id_;
  cache.buffer = std::move(buffer);
  return *cache.buffer;
}

void TraceCollector::record(const char* name, std::uint64_t begin_ns,
                            std::uint64_t end_ns) {
  Buffer& buffer = this_thread_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  TraceEvent event{name, begin_ns, end_ns, buffer.tid};
  if (buffer.events.size() < buffer.capacity) {
    buffer.events.push_back(event);
    return;
  }
  // Ring overwrite: drop the oldest span, keep counting what was lost.
  buffer.events[buffer.next] = event;
  buffer.next = (buffer.next + 1) % buffer.capacity;
  ++buffer.dropped;
}

std::vector<TraceEvent> TraceCollector::events() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> merged;
  for (const auto& buffer : buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    merged.insert(merged.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
              return a.end_ns > b.end_ns;  // enclosing spans first
            });
  return merged;
}

std::uint64_t TraceCollector::dropped() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::uint64_t total = 0;
  for (const auto& buffer : buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    total += buffer->dropped;
  }
  return total;
}

void TraceCollector::write_chrome_trace(std::ostream& out) const {
  const std::vector<TraceEvent> merged = events();
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buffer[64];
  bool first = true;
  for (const TraceEvent& event : merged) {
    if (!first) out << ",";
    first = false;
    // Complete events; ts/dur in (fractional) microseconds, as the
    // trace-event format specifies.
    out << "{\"name\":\"" << json_escape(event.name)
        << "\",\"cat\":\"bevr\",\"ph\":\"X\",\"ts\":";
    std::snprintf(buffer, sizeof buffer, "%.3f",
                  static_cast<double>(event.begin_ns) * 1e-3);
    out << buffer << ",\"dur\":";
    std::snprintf(buffer, sizeof buffer, "%.3f",
                  static_cast<double>(event.end_ns - event.begin_ns) * 1e-3);
    out << buffer << ",\"pid\":1,\"tid\":" << event.tid + 1 << "}";
  }
  out << "]}\n";
  out.flush();
}

void TraceCollector::clear() {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    const std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->events.clear();
    buffer->next = 0;
    buffer->dropped = 0;
  }
}

}  // namespace bevr::obs
