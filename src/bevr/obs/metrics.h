// Lock-cheap metrics: named counters, gauges and fixed-bucket latency
// histograms, sharded across threads and merged on snapshot.
//
// Design constraints (the runner's determinism contract and the model
// microbenchmarks set them):
//  * instrumentation must never perturb results — metrics are write-
//    only side channels; nothing in the hot path reads them back;
//  * the enabled hot path must be nanoseconds — an increment is one
//    relaxed fetch_add on a per-thread-shard slot (threads are spread
//    round-robin over kShards slot arrays, so there is no contended
//    cache line in steady state and never a lock);
//  * the disabled path must be indistinguishable from a no-op — one
//    relaxed bool load and a predictable branch (bench_obs asserts
//    this), and with BEVR_OBS compiled to 0 the calls vanish entirely;
//  * registration (name → slot) is mutex-guarded and meant for setup
//    code, not per-event paths: fetch handles once, increment often.
//
// Snapshots may be taken while writers are active: slots are relaxed
// atomics, so a snapshot is a monotonic-consistent reading (a
// histogram's sum can trail its buckets by in-flight increments).
// Exact totals are guaranteed once writers quiesce — which is when the
// RunReport reads them.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

// Compile-time master switch. Default-on; configure with CMake option
// BEVR_OBS=OFF (which defines BEVR_OBS=0) to compile every metric and
// trace call down to nothing.
#ifndef BEVR_OBS
#define BEVR_OBS 1
#endif

namespace bevr::obs {

/// Monotonic nanoseconds since a process-local epoch (first use).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Upper bucket bounds for a histogram, ascending; an implicit +Inf
/// overflow bucket always follows the last bound.
struct HistogramSpec {
  std::vector<double> bounds;

  /// `count` bounds: start, start*factor, start*factor^2, ...
  [[nodiscard]] static HistogramSpec exponential(double start, double factor,
                                                 int count);
  /// `count` bounds: start, start+width, start+2*width, ...
  [[nodiscard]] static HistogramSpec linear(double start, double width,
                                            int count);
  /// Default latency spec: 1us .. ~8.4s in powers of 2 (24 bounds).
  [[nodiscard]] static HistogramSpec latency_us();
};

/// One merged histogram as read by snapshot().
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;         ///< upper bounds, ascending
  std::vector<std::uint64_t> counts;  ///< bounds.size()+1 (last = overflow)
  std::uint64_t count = 0;            ///< Σ counts
  double sum = 0.0;                   ///< Σ observed values

  [[nodiscard]] double mean() const;
  /// Quantile estimate by linear interpolation inside the bucket the
  /// rank falls in (values assumed nonnegative; the overflow bucket
  /// reports the last finite bound). q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
};

/// Everything a registry holds, merged across shards at one instant.
struct MetricsSnapshot {
  /// Capture time on both clocks: steady (now_ns()'s process-local
  /// epoch) orders snapshots within a run; wall (system_clock ns since
  /// the Unix epoch) anchors a snapshot to real time so JSONL streams
  /// from different runs can be laid on one timeline.
  std::uint64_t captured_steady_ns = 0;
  std::uint64_t captured_wall_ns = 0;

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Lookup helpers; 0 / nullptr when the name was never registered.
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] double gauge(const std::string& name) const;
  /// Lvalue-only: the pointer aims into this snapshot, so taking it
  /// from a temporary (`registry.snapshot().histogram(...)`) would
  /// dangle — deleted on rvalues to make that a compile error.
  [[nodiscard]] const HistogramSnapshot* histogram(
      const std::string& name) const&;
  const HistogramSnapshot* histogram(const std::string& name) const&& =
      delete;
};

class MetricsRegistry;

/// Monotonic counter handle. Default-constructed handles are no-ops,
/// so instrumented code never needs a null check of its own.
class Counter {
 public:
  Counter() = default;
  inline void add(std::uint64_t n) const noexcept;
  void inc() const noexcept { add(1); }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* registry, std::uint32_t slot)
      : registry_(registry), slot_(slot) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Last-writer-wins instantaneous value. Gauges are a single cell (not
/// sharded): `set` from any thread is globally visible, which is the
/// semantics a "current queue depth"-style reading wants.
class Gauge {
 public:
  Gauge() = default;
  inline void set(double value) const noexcept;

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* registry, std::uint32_t index)
      : registry_(registry), index_(index) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t index_ = 0;
};

/// Fixed-bucket histogram handle. observe() is one bucket search over
/// a small sorted array plus two sharded adds.
class Histogram {
 public:
  Histogram() = default;
  inline void observe(double value) const noexcept;
  [[nodiscard]] inline bool live() const noexcept;

  /// RAII latency probe: observes the scope's elapsed microseconds.
  /// Reads the clock only when the histogram is live, so a timer on a
  /// disabled registry costs one branch. Defined after the class.
  class Timer;

 private:
  friend class MetricsRegistry;
  Histogram(MetricsRegistry* registry, std::uint32_t slot,
            const double* bounds, std::uint32_t bound_count)
      : registry_(registry),
        slot_(slot),
        bounds_(bounds),
        bound_count_(bound_count) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t slot_ = 0;            ///< first of bound_count_+2 slots
  const double* bounds_ = nullptr;    ///< registry-owned, stable
  std::uint32_t bound_count_ = 0;
};

class MetricsRegistry {
 public:
  /// Slot arrays per shard; threads map round-robin onto shards, so up
  /// to kShards writers proceed with zero cache-line sharing.
  static constexpr std::size_t kShards = 32;
  /// Total value slots (counters + histogram buckets); registration
  /// past the capacity throws rather than silently dropping metrics.
  static constexpr std::size_t kSlotCapacity = 4096;
  static constexpr std::size_t kGaugeCapacity = 256;

  explicit MetricsRegistry(bool enabled = true);

  /// The process-wide registry every built-in instrumentation point
  /// writes to. Enabled by default.
  [[nodiscard]] static MetricsRegistry& global();

  /// Handle registration: returns the existing metric when the name is
  /// already registered (kind mismatches throw std::invalid_argument).
  [[nodiscard]] Counter counter(const std::string& name);
  [[nodiscard]] Gauge gauge(const std::string& name);
  [[nodiscard]] Histogram histogram(
      const std::string& name,
      const HistogramSpec& spec = HistogramSpec::latency_us());

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
#if BEVR_OBS
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }

  /// Merge all shards into one consistent reading. Never blocks
  /// writers (registration of *new* metrics does wait).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every value; registrations (names, handles) stay valid.
  void reset();

 private:
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  struct Shard {
    // Heap-allocated so a registry is cheap to construct lazily; the
    // slot array never moves, so handles can index it lock-free.
    std::unique_ptr<std::atomic<std::uint64_t>[]> slots;
  };
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Registration {
    Kind kind = Kind::kCounter;
    std::uint32_t index = 0;  ///< slot (counter/histogram) or gauge index
  };
  struct HistogramInfo {
    std::string name;
    std::uint32_t slot = 0;
    // unique_ptr: the bounds array must stay put when hists_ grows,
    // because live Histogram handles point straight at it.
    std::unique_ptr<std::vector<double>> bounds;
  };

  [[nodiscard]] static std::size_t this_thread_shard() noexcept;

  void shard_add(std::uint32_t slot, std::uint64_t delta) noexcept {
    shards_[this_thread_shard()].slots[slot].fetch_add(
        delta, std::memory_order_relaxed);
  }
  void shard_add_double(std::uint32_t slot, double delta) noexcept;
  [[nodiscard]] std::uint64_t merged(std::uint32_t slot) const noexcept;
  [[nodiscard]] double merged_double(std::uint32_t slot) const noexcept;
  [[nodiscard]] std::uint32_t allocate_slots(std::uint32_t count);

  std::atomic<bool> enabled_;
  std::array<Shard, kShards> shards_;
  std::array<std::atomic<std::uint64_t>, kGaugeCapacity> gauges_;

  mutable std::mutex mutex_;  ///< guards the registration tables
  std::uint32_t next_slot_ = 0;
  std::uint32_t next_gauge_ = 0;
  std::unordered_map<std::string, Registration> by_name_;
  std::vector<std::pair<std::string, std::uint32_t>> counters_;
  std::vector<std::pair<std::string, std::uint32_t>> gauge_names_;
  std::vector<HistogramInfo> hists_;
};

class Histogram::Timer {
 public:
  explicit Timer(const Histogram& histogram)
      : histogram_(histogram), start_ns_(histogram.live() ? now_ns() : 0) {}
  ~Timer() {
    if (start_ns_ != 0) {
      histogram_.observe(static_cast<double>(now_ns() - start_ns_) * 1e-3);
    }
  }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

 private:
  Histogram histogram_;
  std::uint64_t start_ns_;
};

// ---- inline hot paths -----------------------------------------------------

inline void Counter::add(std::uint64_t n) const noexcept {
#if BEVR_OBS
  if (registry_ != nullptr && registry_->enabled()) {
    registry_->shard_add(slot_, n);
  }
#else
  (void)n;
#endif
}

inline void Gauge::set(double value) const noexcept {
#if BEVR_OBS
  if (registry_ != nullptr && registry_->enabled()) {
    registry_->gauges_[index_].store(
        std::bit_cast<std::uint64_t>(value), std::memory_order_relaxed);
  }
#else
  (void)value;
#endif
}

inline bool Histogram::live() const noexcept {
#if BEVR_OBS
  return registry_ != nullptr && registry_->enabled();
#else
  return false;
#endif
}

inline void Histogram::observe(double value) const noexcept {
#if BEVR_OBS
  if (!live()) return;
  // Branchless-enough linear scan: bound counts are small (≤ 64) and
  // latency values concentrate in the low buckets.
  std::uint32_t bucket = 0;
  while (bucket < bound_count_ && value > bounds_[bucket]) ++bucket;
  registry_->shard_add(slot_ + bucket, 1);
  registry_->shard_add_double(slot_ + bound_count_ + 1, value);
#else
  (void)value;
#endif
}

}  // namespace bevr::obs
