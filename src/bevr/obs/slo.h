// SLO tracking: is the service meeting its objective *right now*, and
// how fast is it spending error budget?
//
// An SloTracker counts good/bad outcomes (deadline hits vs misses,
// admissions vs blocks) against a target good-fraction, over several
// rolling windows at once. The headline number per window is the
// *burn rate*: bad_fraction / (1 - target) — the ratio of the observed
// error rate to the error budget the target allows. Burn 1.0 means
// spending budget exactly as fast as the objective permits; burn 10
// over a short window plus burn >1 over a long window is the classic
// page-worthy signature (fast burn that is not just a blip). Tracking
// short and long windows together is what makes the number actionable,
// which is why a tracker takes a window *list*.
//
// Concurrency mirrors RollingWindow: relaxed-atomic time buckets with
// CAS rotation — record() is lock-free, readings are approximate at
// bucket boundaries under concurrency, exact once writers quiesce.
// Both record() and status() accept injected timestamps for
// deterministic tests.
//
// SloRegistry is the process-wide named collection, so a server can
// register "service/deadline" while the CLI later snapshots every SLO
// for the report without holding tracker references.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bevr/obs/metrics.h"  // now_ns()

namespace bevr::obs {

/// One rolling window's reading at status() time.
struct SloWindowStatus {
  std::uint64_t window_ns = 0;
  std::uint64_t good = 0;
  std::uint64_t bad = 0;
  double bad_fraction = 0.0;  ///< bad / (good + bad); 0 when empty
  double burn_rate = 0.0;     ///< bad_fraction / (1 - target)
};

struct SloStatus {
  std::string name;
  double target = 0.0;  ///< required good fraction, e.g. 0.99
  std::uint64_t total_good = 0;  ///< lifetime, not windowed
  std::uint64_t total_bad = 0;
  /// Every window's burn_rate <= 1 (vacuously true with no data).
  bool healthy = true;
  std::vector<SloWindowStatus> windows;
};

class SloTracker {
 public:
  /// `target` in (0, 1): required good fraction. `window_ns` lists the
  /// rolling windows to burn-track (default 5s fast + 60s slow).
  SloTracker(std::string name, double target,
             std::vector<std::uint64_t> window_ns = default_windows());

  [[nodiscard]] static std::vector<std::uint64_t> default_windows();

  /// Count one outcome at time `now`. Lock-free.
  void record(bool good, std::uint64_t now = now_ns()) noexcept;

  [[nodiscard]] SloStatus status(std::uint64_t now = now_ns()) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] double target() const noexcept { return target_; }

  /// Forget all outcomes (windows and lifetime totals).
  void clear() noexcept;

 private:
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};
  static constexpr std::size_t kBucketsPerWindow = 16;

  struct Bucket {
    std::atomic<std::uint64_t> slice{kIdle};
    std::atomic<std::uint64_t> good{0};
    std::atomic<std::uint64_t> bad{0};
  };
  struct Window {
    std::uint64_t span_ns = 0;
    std::uint64_t bucket_ns = 0;
    std::unique_ptr<Bucket[]> buckets;  ///< kBucketsPerWindow of them
  };

  std::string name_;
  double target_;
  std::vector<Window> windows_;
  std::atomic<std::uint64_t> total_good_{0};
  std::atomic<std::uint64_t> total_bad_{0};
};

class SloRegistry {
 public:
  [[nodiscard]] static SloRegistry& global();

  /// Create-or-get by name. An existing tracker is returned as-is
  /// (target/windows arguments ignored), matching MetricsRegistry's
  /// handle-registration semantics. References stay valid for the
  /// registry's lifetime.
  [[nodiscard]] SloTracker& tracker(
      const std::string& name, double target,
      std::vector<std::uint64_t> window_ns = SloTracker::default_windows());

  /// Every tracker's status at one instant, registration order.
  [[nodiscard]] std::vector<SloStatus> snapshot_all(
      std::uint64_t now = now_ns()) const;

  /// Clear every tracker's outcomes (registrations survive).
  void reset() noexcept;

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<SloTracker>> trackers_;
};

}  // namespace bevr::obs
