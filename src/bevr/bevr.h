// Umbrella header: the full public API of the bevr library.
//
// bevr reproduces Breslau & Shenker, "Best-Effort versus Reservations:
// A Simple Comparative Analysis" (SIGCOMM 1998). Include this for
// everything, or the individual module headers for finer control:
//
//   bevr::utility  — application utility functions π(b)        (§2)
//   bevr::dist     — load distributions P(k), flow perspectives (§3.1)
//   bevr::core     — the models: fixed/variable load, continuum,
//                    welfare, sampling, retry, risk aversion,
//                    asymptotic bounds                         (§2–§6)
//   bevr::sim      — flow-level discrete-event simulator
//   bevr::net      — reservation-capable network substrate
//                    (TSpec/RSpec, RSVP-style soft state,
//                    admission control, GPS scheduling)
//   bevr::kernels  — batched sweep-evaluation kernels: flat load
//                    tables, utility value_batch plumbing and
//                    warm-started k_max, bit-identical to the scalar
//                    model but built for dense sorted grids
//   bevr::runner   — parallel experiment engine: declarative
//                    ScenarioSpecs + paper-figure registry, a
//                    deterministic thread-pool executor with per-task
//                    RNG sub-seeding, memoized model evaluation, and
//                    structured CSV/JSONL result emission
//   bevr::obs      — observability: sharded metrics registry,
//                    scoped trace spans (Chrome/Perfetto export),
//                    end-of-run reports (text/JSON/Prometheus)
#pragma once

#include "bevr/core/asymptotics.h"
#include "bevr/core/continuum.h"
#include "bevr/core/fixed_load.h"
#include "bevr/core/retry.h"
#include "bevr/core/risk_averse.h"
#include "bevr/core/sampling.h"
#include "bevr/core/variable_load.h"
#include "bevr/core/welfare.h"
#include "bevr/dist/algebraic.h"
#include "bevr/dist/continuum.h"
#include "bevr/dist/discrete.h"
#include "bevr/dist/exponential.h"
#include "bevr/dist/exponential_density.h"
#include "bevr/dist/mixture_load.h"
#include "bevr/dist/pareto_density.h"
#include "bevr/dist/poisson.h"
#include "bevr/dist/sampler.h"
#include "bevr/dist/size_biased.h"
#include "bevr/kernels/load_table.h"
#include "bevr/kernels/sweep_evaluator.h"
#include "bevr/kernels/warm_kmax.h"
#include "bevr/net/admission.h"
#include "bevr/net/flowspec.h"
#include "bevr/net/network_sim.h"
#include "bevr/net/packet_link.h"
#include "bevr/net/packet_sched.h"
#include "bevr/net/rsvp.h"
#include "bevr/net/scheduler.h"
#include "bevr/net/token_bucket.h"
#include "bevr/net/topology.h"
#include "bevr/numerics/erlang.h"
#include "bevr/obs/metrics.h"
#include "bevr/obs/report.h"
#include "bevr/obs/trace.h"
#include "bevr/numerics/kahan.h"
#include "bevr/numerics/lambert_w.h"
#include "bevr/numerics/optimize.h"
#include "bevr/numerics/quadrature.h"
#include "bevr/numerics/roots.h"
#include "bevr/numerics/series.h"
#include "bevr/numerics/special.h"
#include "bevr/runner/memo_cache.h"
#include "bevr/runner/memoized_model.h"
#include "bevr/runner/result_sink.h"
#include "bevr/runner/runner.h"
#include "bevr/runner/scenario.h"
#include "bevr/runner/thread_pool.h"
#include "bevr/sim/arrival.h"
#include "bevr/sim/event_queue.h"
#include "bevr/sim/link.h"
#include "bevr/sim/metrics.h"
#include "bevr/sim/rng.h"
#include "bevr/sim/simulator.h"
#include "bevr/utility/mixture.h"
#include "bevr/utility/utility.h"
