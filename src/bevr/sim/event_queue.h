// Discrete-event scheduler: a time-ordered queue of callbacks with
// FIFO tie-breaking. Shared by the flow-level simulator (bevr::sim)
// and the RSVP soft-state machinery (bevr::net).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <vector>

namespace bevr::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `action` at absolute time `when` (must not precede now()).
  void schedule(double when, Action action) {
    if (when < now_) {
      throw std::invalid_argument("EventQueue: cannot schedule in the past");
    }
    heap_.push(Event{when, next_seq_++, std::move(action)});
  }

  /// Schedule `action` `delay` after the current time.
  void schedule_in(double delay, Action action) {
    schedule(now_ + delay, std::move(action));
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] double now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Pop and run the earliest event; advances now(). Returns false when
  /// the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    // Copy out before pop so the action may schedule further events.
    Event event = heap_.top();
    heap_.pop();
    now_ = event.time;
    event.action();
    return true;
  }

  /// Run until the queue drains or the clock passes `horizon`.
  void run_until(double horizon) {
    while (!heap_.empty() && heap_.top().time <= horizon) step();
    now_ = std::max(now_, horizon);
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // FIFO among simultaneous events
    Action action;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace bevr::sim
