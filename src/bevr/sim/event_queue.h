// Discrete-event scheduler: a time-ordered queue of callbacks with
// FIFO tie-breaking and O(1) cancellation. Shared by the flow-level
// simulator (bevr::sim), the RSVP soft-state machinery (bevr::net),
// and the admission engine (bevr::admission), whose reservation
// expiry/teardown paths need to retract events that are already
// scheduled (e.g. cancel the safety-net calendar expiry once the flow
// has departed and released its booking).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace bevr::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;
  /// Token identifying one scheduled event; valid until the event
  /// fires or is cancelled. Tokens are never reused within a queue.
  using EventId = std::uint64_t;

  /// Schedule `action` at absolute time `when` (must not precede now()).
  /// Returns a token that cancel() accepts; callers that never cancel
  /// can ignore it, so the pre-cancellation call sites are unchanged.
  EventId schedule(double when, Action action) {
    if (when < now_) {
      throw std::invalid_argument("EventQueue: cannot schedule in the past");
    }
    const EventId id = next_seq_++;
    heap_.push(Event{when, id, std::move(action)});
    live_.insert(id);
    return id;
  }

  /// Schedule `action` `delay` after the current time.
  EventId schedule_in(double delay, Action action) {
    return schedule(now_ + delay, std::move(action));
  }

  /// Retract a pending event: it will never fire (lazy deletion — the
  /// heap entry is discarded when it reaches the top). Returns false
  /// when the token is unknown, already fired, or already cancelled,
  /// so double-cancel and cancel-after-fire are harmless no-ops.
  bool cancel(EventId id) { return live_.erase(id) == 1; }

  /// True when no live (uncancelled) events remain.
  [[nodiscard]] bool empty() const { return live_.empty(); }
  [[nodiscard]] double now() const { return now_; }
  /// Live events only; cancelled entries still parked in the heap do
  /// not count.
  [[nodiscard]] std::size_t pending() const { return live_.size(); }

  /// Pop and run the earliest live event; advances now(). Cancelled
  /// events are skipped silently (they advance neither the clock nor
  /// the FIFO order of survivors). Returns false when no live event
  /// remains.
  bool step() {
    purge_cancelled();
    if (heap_.empty()) return false;
    // Copy out before pop so the action may schedule further events.
    Event event = heap_.top();
    heap_.pop();
    live_.erase(event.seq);
    now_ = event.time;
    event.action();
    return true;
  }

  /// Run until the live queue drains or the clock passes `horizon`.
  void run_until(double horizon) {
    for (;;) {
      purge_cancelled();
      if (heap_.empty() || heap_.top().time > horizon) break;
      step();
    }
    now_ = std::max(now_, horizon);
  }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // FIFO among simultaneous events
    Action action;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  /// Drop cancelled entries sitting at the top of the heap so top()
  /// always describes the next event that will actually fire.
  void purge_cancelled() {
    while (!heap_.empty() && live_.count(heap_.top().seq) == 0) {
      heap_.pop();
    }
  }

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::unordered_set<EventId> live_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace bevr::sim
