// Traffic processes for the flow-level simulator.
//
// The paper deliberately skips flow dynamics and posits stationary
// load distributions P(k); these processes generate the dynamics whose
// stationary occupancy *is* (or approximates) those distributions:
//  * Poisson arrivals + any holding time (M/G/∞) → Poisson occupancy,
//    exactly the paper's Poisson case;
//  * bursty (hyper-exponential) session arrivals → over-dispersed,
//    exponential-like occupancy tails;
//  * heavy-tailed holding times feed the self-similarity argument the
//    paper cites for the algebraic case (refs [1,5,9,11]).
#pragma once

#include <memory>
#include <string>

#include "bevr/sim/rng.h"

namespace bevr::sim {

/// Interarrival-time generator.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Draw the time until the next flow arrival.
  [[nodiscard]] virtual double next_interarrival(Rng& rng) = 0;
  /// Long-run arrival rate (flows per unit time).
  [[nodiscard]] virtual double rate() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Poisson arrivals at a fixed rate.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate);
  [[nodiscard]] double next_interarrival(Rng& rng) override;
  [[nodiscard]] double rate() const override { return rate_; }
  [[nodiscard]] std::string name() const override;

 private:
  double rate_;
};

/// Two-phase hyper-exponential interarrivals: with probability `hot_p`
/// the gap is drawn at `hot_rate`, otherwise at `cold_rate`. Produces
/// bursty arrivals with squared coefficient of variation > 1 while
/// keeping the long-run rate analytic.
class BurstyArrivals final : public ArrivalProcess {
 public:
  BurstyArrivals(double hot_rate, double cold_rate, double hot_p);
  [[nodiscard]] double next_interarrival(Rng& rng) override;
  [[nodiscard]] double rate() const override;
  [[nodiscard]] std::string name() const override;

 private:
  double hot_rate_;
  double cold_rate_;
  double hot_p_;
};

/// Flow holding-time generator.
class HoldingTime {
 public:
  virtual ~HoldingTime() = default;
  [[nodiscard]] virtual double next_duration(Rng& rng) = 0;
  [[nodiscard]] virtual double mean() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Exponential holding times (the M/M/∞ classic).
class ExponentialHolding final : public HoldingTime {
 public:
  explicit ExponentialHolding(double mean);
  [[nodiscard]] double next_duration(Rng& rng) override;
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] std::string name() const override;

 private:
  double mean_;
};

/// Bounded-Pareto holding times: heavy-tailed flow durations.
class BoundedParetoHolding final : public HoldingTime {
 public:
  BoundedParetoHolding(double shape, double lo, double hi);
  [[nodiscard]] double next_duration(Rng& rng) override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] std::string name() const override;

 private:
  double shape_;
  double lo_;
  double hi_;
};

}  // namespace bevr::sim
