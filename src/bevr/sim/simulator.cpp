#include "bevr/sim/simulator.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "bevr/obs/metrics.h"
#include "bevr/sim/event_queue.h"
#include "bevr/sim/rng.h"

namespace bevr::sim {

namespace {

struct FlowState {
  double arrival_time = 0.0;
  double admission_time = 0.0;
  double duration = 0.0;
  double snapshot_utility = 0.0;
  double utility_integral_at_admission = 0.0;
  std::int64_t max_occupancy_seen = 0;
  int retries = 0;
};

/// Mutable run state shared by the event closures.
struct Runner {
  const SimulationConfig& config;
  const utility::UtilityFunction& pi;
  ArrivalProcess& arrivals;
  HoldingTime& holding;

  EventQueue queue;
  Rng rng;
  Link link;
  TimeWeightedOccupancy occupancy;

  // Global running integral of π(C/n(t)) dt; per-flow time averages are
  // differences of this (every active flow sees the same share).
  double utility_integral = 0.0;
  double last_change_time = 0.0;

  std::unordered_map<std::uint64_t, FlowState> active;
  std::uint64_t next_flow_id = 0;

  RunningStats scored_utility;
  RunningStats scored_retries;
  std::uint64_t first_attempt_arrivals = 0;
  std::uint64_t first_attempt_blocked = 0;
  std::uint64_t abandoned = 0;

  Runner(const SimulationConfig& cfg, const utility::UtilityFunction& util,
         ArrivalProcess& arr, HoldingTime& hold)
      : config(cfg),
        pi(util),
        arrivals(arr),
        holding(hold),
        rng(cfg.seed),
        link(cfg.capacity, cfg.architecture, cfg.admission_limit) {}

  [[nodiscard]] double current_share_utility() const {
    const std::int64_t n = link.occupancy();
    if (n == 0) return 0.0;
    return pi.value(config.capacity / static_cast<double>(n));
  }

  /// Flush the utility integral and occupancy histogram up to now;
  /// call immediately BEFORE changing the occupancy.
  void before_occupancy_change() {
    const double now = queue.now();
    utility_integral += current_share_utility() * (now - last_change_time);
    last_change_time = now;
  }

  void after_occupancy_change() {
    const double now = queue.now();
    if (now >= config.warmup) occupancy.record(now, link.occupancy());
  }

  void score(const FlowState& flow, double raw_utility) {
    if (flow.arrival_time < config.warmup) return;
    const double penalty =
        config.retry.enabled ? config.retry.penalty * flow.retries : 0.0;
    scored_utility.add(raw_utility - penalty);
    scored_retries.add(static_cast<double>(flow.retries));
  }

  void depart(std::uint64_t id) {
    const auto it = active.find(id);
    if (it == active.end()) {
      throw std::logic_error("FlowSimulator: departure of unknown flow");
    }
    before_occupancy_change();
    const FlowState flow = it->second;
    active.erase(it);
    link.release();
    after_occupancy_change();

    double raw = 0.0;
    switch (config.utility_mode) {
      case UtilityMode::kSnapshotAtAdmission:
        raw = flow.snapshot_utility;
        break;
      case UtilityMode::kTimeAverage:
        raw = flow.duration > 0.0
                  ? (utility_integral - flow.utility_integral_at_admission) /
                        flow.duration
                  : flow.snapshot_utility;
        break;
      case UtilityMode::kLifetimeMinimum:
        raw = pi.value(config.capacity /
                       static_cast<double>(flow.max_occupancy_seen));
        break;
    }
    score(flow, raw);
  }

  void admit(FlowState flow) {
    before_occupancy_change();
    if (!link.try_admit()) {
      throw std::logic_error("FlowSimulator: admit called on a full link");
    }
    after_occupancy_change();
    const std::int64_t n = link.occupancy();
    flow.admission_time = queue.now();
    flow.snapshot_utility =
        pi.value(config.capacity / static_cast<double>(n));
    flow.utility_integral_at_admission = utility_integral;
    flow.max_occupancy_seen = n;
    // A new arrival raises the load every in-flight flow may ever see.
    if (config.utility_mode == UtilityMode::kLifetimeMinimum) {
      for (auto& entry : active) {
        if (entry.second.max_occupancy_seen < n) {
          entry.second.max_occupancy_seen = n;
        }
      }
    }
    const std::uint64_t id = next_flow_id++;
    const double duration = flow.duration;
    active.emplace(id, flow);
    queue.schedule_in(duration, [this, id] { depart(id); });
  }

  void attempt(FlowState flow, int attempt_number) {
    if (attempt_number == 1) {
      ++first_attempt_arrivals;
    }
    if (config.architecture == Architecture::kBestEffort ||
        link.occupancy() < link.admission_limit()) {
      admit(flow);
      return;
    }
    // Blocked.
    if (attempt_number == 1) ++first_attempt_blocked;
    if (config.retry.enabled && attempt_number < config.retry.max_attempts) {
      const double delay = rng.exponential(config.retry.backoff_mean);
      // A retry landing beyond the horizon cannot be served by this
      // run: arrivals have stopped, so the flow would be admitted onto
      // a draining link and score an unrepresentative utility. Resolve
      // it as abandoned now instead of leaking that into the metrics.
      if (queue.now() + delay <= config.horizon) {
        flow.retries = attempt_number;  // retries made so far
        queue.schedule_in(delay, [this, flow, attempt_number]() mutable {
          attempt(flow, attempt_number + 1);
        });
        return;
      }
    }
    // Lost (no retries, or gave up): zero bandwidth, zero raw utility.
    flow.retries = attempt_number - 1;
    ++abandoned;
    score(flow, 0.0);
  }

  void arrival() {
    FlowState flow;
    flow.arrival_time = queue.now();
    flow.duration = holding.next_duration(rng);
    attempt(flow, 1);
    const double gap = arrivals.next_interarrival(rng);
    if (queue.now() + gap <= config.horizon) {
      queue.schedule_in(gap, [this] { arrival(); });
    }
  }
};

}  // namespace

FlowSimulator::FlowSimulator(SimulationConfig config,
                             std::shared_ptr<const utility::UtilityFunction> pi,
                             std::shared_ptr<ArrivalProcess> arrivals,
                             std::shared_ptr<HoldingTime> holding)
    : config_(config),
      pi_(std::move(pi)),
      arrivals_(std::move(arrivals)),
      holding_(std::move(holding)) {
  if (!pi_) throw std::invalid_argument("FlowSimulator: null utility");
  if (!arrivals_) throw std::invalid_argument("FlowSimulator: null arrivals");
  if (!holding_) throw std::invalid_argument("FlowSimulator: null holding");
  if (!(config_.horizon > config_.warmup) || !(config_.warmup >= 0.0)) {
    throw std::invalid_argument("FlowSimulator: need horizon > warmup >= 0");
  }
  if (config_.architecture == Architecture::kBestEffort) {
    // The limit is meaningless for best effort; normalise it.
    config_.admission_limit = std::numeric_limits<std::int64_t>::max();
  }
}

SimulationReport FlowSimulator::run() const {
  Runner runner(config_, *pi_, *arrivals_, *holding_);
  runner.queue.schedule(runner.rng.exponential(1.0 / arrivals_->rate()),
                        [&runner] { runner.arrival(); });
  // Arrivals stop at the horizon; drain remaining departures/retries.
  std::uint64_t events_processed = 0;
  while (runner.queue.step()) {
    ++events_processed;
  }
  // Flush the occupancy histogram to the final clock.
  if (runner.queue.now() >= config_.warmup) {
    runner.occupancy.record(runner.queue.now(), runner.link.occupancy());
  }

  SimulationReport report;
  report.flows_scored = runner.scored_utility.count();
  report.flows_blocked = runner.first_attempt_blocked;
  report.flows_abandoned = runner.abandoned;
  report.mean_utility = runner.scored_utility.mean();
  report.blocking_probability =
      runner.first_attempt_arrivals > 0
          ? static_cast<double>(runner.first_attempt_blocked) /
                static_cast<double>(runner.first_attempt_arrivals)
          : 0.0;
  report.mean_retries = runner.scored_retries.mean();
  report.mean_occupancy = runner.occupancy.mean();
  report.occupancy_pmf = runner.occupancy.distribution();

  // Observability: counters accumulate in the local Runner during the
  // event loop and flush here in one batch, so instrumentation adds
  // nothing to the per-event hot path.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  if (registry.enabled()) {
    const bool best_effort =
        config_.architecture == Architecture::kBestEffort;
    const std::string prefix =
        best_effort ? "sim/best_effort" : "sim/reservation";
    registry.counter("sim/events").add(events_processed);
    registry.counter(prefix + "/arrivals").add(runner.first_attempt_arrivals);
    registry.counter(prefix + "/admitted")
        .add(runner.first_attempt_arrivals - runner.first_attempt_blocked);
    registry.counter(prefix + "/rejected").add(runner.first_attempt_blocked);
    registry.counter(prefix + "/abandoned").add(runner.abandoned);
  }
  return report;
}

}  // namespace bevr::sim
