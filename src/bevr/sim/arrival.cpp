#include "bevr/sim/arrival.h"

#include <cmath>
#include <stdexcept>

namespace bevr::sim {

PoissonArrivals::PoissonArrivals(double rate) : rate_(rate) {
  if (!(rate > 0.0)) {
    throw std::invalid_argument("PoissonArrivals: rate must be > 0");
  }
}

double PoissonArrivals::next_interarrival(Rng& rng) {
  return rng.exponential(1.0 / rate_);
}

std::string PoissonArrivals::name() const {
  return "PoissonArrivals(rate=" + std::to_string(rate_) + ")";
}

BurstyArrivals::BurstyArrivals(double hot_rate, double cold_rate, double hot_p)
    : hot_rate_(hot_rate), cold_rate_(cold_rate), hot_p_(hot_p) {
  if (!(hot_rate > 0.0) || !(cold_rate > 0.0)) {
    throw std::invalid_argument("BurstyArrivals: rates must be > 0");
  }
  if (!(hot_p >= 0.0) || !(hot_p <= 1.0)) {
    throw std::invalid_argument("BurstyArrivals: hot_p must lie in [0, 1]");
  }
}

double BurstyArrivals::next_interarrival(Rng& rng) {
  const double r = rng.bernoulli(hot_p_) ? hot_rate_ : cold_rate_;
  return rng.exponential(1.0 / r);
}

double BurstyArrivals::rate() const {
  // Mean gap = p/hot + (1-p)/cold; rate is its reciprocal.
  const double mean_gap = hot_p_ / hot_rate_ + (1.0 - hot_p_) / cold_rate_;
  return 1.0 / mean_gap;
}

std::string BurstyArrivals::name() const {
  return "BurstyArrivals(hot=" + std::to_string(hot_rate_) +
         ", cold=" + std::to_string(cold_rate_) +
         ", p=" + std::to_string(hot_p_) + ")";
}

ExponentialHolding::ExponentialHolding(double mean) : mean_(mean) {
  if (!(mean > 0.0)) {
    throw std::invalid_argument("ExponentialHolding: mean must be > 0");
  }
}

double ExponentialHolding::next_duration(Rng& rng) {
  return rng.exponential(mean_);
}

std::string ExponentialHolding::name() const {
  return "ExponentialHolding(mean=" + std::to_string(mean_) + ")";
}

BoundedParetoHolding::BoundedParetoHolding(double shape, double lo, double hi)
    : shape_(shape), lo_(lo), hi_(hi) {
  if (!(shape > 0.0) || !(lo > 0.0) || !(hi > lo)) {
    throw std::invalid_argument("BoundedParetoHolding: bad parameters");
  }
}

double BoundedParetoHolding::next_duration(Rng& rng) {
  return rng.bounded_pareto(shape_, lo_, hi_);
}

double BoundedParetoHolding::mean() const {
  // E[X] of a Pareto truncated to [lo, hi], tail index `shape`.
  const double a = shape_;
  if (a == 1.0) {
    return lo_ * hi_ / (hi_ - lo_) * std::log(hi_ / lo_);
  }
  // Standard bounded-Pareto mean for a ≠ 1.
  const double truncation = 1.0 - std::pow(lo_ / hi_, a);
  return std::pow(lo_, a) / truncation * (a / (a - 1.0)) *
         (std::pow(lo_, 1.0 - a) - std::pow(hi_, 1.0 - a));
}

std::string BoundedParetoHolding::name() const {
  return "BoundedParetoHolding(shape=" + std::to_string(shape_) +
         ", lo=" + std::to_string(lo_) + ", hi=" + std::to_string(hi_) + ")";
}

}  // namespace bevr::sim
