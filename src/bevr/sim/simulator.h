// Flow-level discrete-event simulator.
//
// Generates the flow dynamics the analytical model abstracts away:
// flows arrive (Poisson or bursty), hold the link for random durations
// (exponential or heavy-tailed), and receive utility according to the
// architecture. Per-flow utility can be scored three ways, matching the
// paper's modelling choices:
//  * kSnapshotAtAdmission — the basic model's "static configuration";
//  * kTimeAverage         — utility of the average share over the
//                           flow's lifetime;
//  * kLifetimeMinimum     — utility at the worst load seen, the
//                           §5.1 sampling extension's S → ∞ spirit.
// Blocked reservation flows may retry with exponential backoff and a
// per-retry utility penalty α (§5.2).
//
// Validations (tested): M/M/∞ occupancy → Poisson(λ·τ); empirical
// best-effort/reservation utilities → analytic B(C), R(C).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bevr/sim/arrival.h"
#include "bevr/sim/link.h"
#include "bevr/sim/metrics.h"
#include "bevr/utility/utility.h"

namespace bevr::sim {

/// How a flow's lifetime performance maps to utility.
enum class UtilityMode {
  kSnapshotAtAdmission,
  kTimeAverage,
  kLifetimeMinimum,
};

/// Retry behaviour for blocked reservation requests (§5.2).
///
/// Edge semantics (pinned by tests/sim/test_retry_edges.cpp):
///  * max_attempts counts total attempts, so 0 and 1 both mean "give
///    up after the first blocked attempt" — the flow accounting is
///    identical to enabled=false (blocked flows resolve as abandoned
///    with zero utility either way);
///  * a retry whose backoff would land beyond the simulation horizon
///    resolves as abandoned at the moment of the blocked attempt:
///    arrivals stop at the horizon, so post-horizon attempts would hit
///    a draining link and leak unrepresentative utilities into the
///    metrics. Every scored-window flow therefore resolves exactly
///    once, within the horizon's load regime.
struct RetryPolicy {
  bool enabled = false;
  double penalty = 0.1;        ///< utility cost per retry (paper's α)
  double backoff_mean = 1.0;   ///< mean exponential backoff delay
  int max_attempts = 50;       ///< total attempts before giving up
};

struct SimulationConfig {
  double capacity = 100.0;
  Architecture architecture = Architecture::kBestEffort;
  std::int64_t admission_limit = 100;  ///< used in reservation mode
  UtilityMode utility_mode = UtilityMode::kSnapshotAtAdmission;
  double horizon = 10'000.0;  ///< simulated time units
  double warmup = 500.0;      ///< flows arriving earlier are not scored
  std::uint64_t seed = 1;
  RetryPolicy retry;
};

struct SimulationReport {
  std::uint64_t flows_scored = 0;
  std::uint64_t flows_blocked = 0;    ///< blocked on first attempt
  std::uint64_t flows_abandoned = 0;  ///< exhausted retries
  double mean_utility = 0.0;          ///< per-flow, penalties included
  double blocking_probability = 0.0;  ///< first-attempt blocking rate
  double mean_retries = 0.0;
  double mean_occupancy = 0.0;        ///< time-weighted
  std::vector<double> occupancy_pmf;  ///< empirical stationary P(k)
};

class FlowSimulator {
 public:
  FlowSimulator(SimulationConfig config,
                std::shared_ptr<const utility::UtilityFunction> pi,
                std::shared_ptr<ArrivalProcess> arrivals,
                std::shared_ptr<HoldingTime> holding);

  /// Run one independent replication and report aggregate metrics.
  [[nodiscard]] SimulationReport run() const;

 private:
  SimulationConfig config_;
  std::shared_ptr<const utility::UtilityFunction> pi_;
  std::shared_ptr<ArrivalProcess> arrivals_;
  std::shared_ptr<HoldingTime> holding_;
};

}  // namespace bevr::sim
