// The shared link under the two architectures (paper §2):
//  * best-effort: every flow is admitted, bandwidth is processor-shared
//    (each of k active flows gets C/k);
//  * reservation: at most `admission_limit` flows are admitted, each
//    then holding an even share of C; further requests are blocked.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace bevr::sim {

enum class Architecture {
  kBestEffort,
  kReservation,
};

class Link {
 public:
  /// `admission_limit` is ignored in best-effort mode; in reservation
  /// mode it is typically k_max(C) from the fixed-load model.
  Link(double capacity, Architecture architecture,
       std::int64_t admission_limit);

  /// Attempt to admit one flow; returns false when blocked.
  [[nodiscard]] bool try_admit();

  /// Release one admitted flow.
  void release();

  [[nodiscard]] double capacity() const { return capacity_; }
  [[nodiscard]] Architecture architecture() const { return architecture_; }
  [[nodiscard]] std::int64_t occupancy() const { return occupancy_; }
  [[nodiscard]] std::int64_t admission_limit() const {
    return admission_limit_;
  }

  /// Per-flow bandwidth share at the current occupancy (capacity when
  /// idle — the next flow would get everything).
  [[nodiscard]] double share() const;

 private:
  double capacity_;
  Architecture architecture_;
  std::int64_t admission_limit_;
  std::int64_t occupancy_ = 0;
};

}  // namespace bevr::sim
