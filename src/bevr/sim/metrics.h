// Measurement utilities for the simulator: numerically stable running
// statistics (Welford) and a time-weighted occupancy histogram used to
// recover the empirical stationary load distribution P(k) — the object
// the analytical model takes as input.
#pragma once

#include <cstdint>
#include <vector>

namespace bevr::sim {

/// Welford online mean/variance.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance (0 for fewer than 2 samples).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Accumulates the fraction of time the system spends at each integer
/// occupancy level.
class TimeWeightedOccupancy {
 public:
  /// Note an occupancy change to `occupancy` at time `now`; the elapsed
  /// interval is credited to the previous level. Call once at the end
  /// with the final time to flush.
  void record(double now, std::int64_t occupancy);

  /// Fraction of (recorded) time at level k.
  [[nodiscard]] double fraction(std::int64_t k) const;

  /// Time-weighted mean occupancy.
  [[nodiscard]] double mean() const;

  /// Empirical pmf over [0, max_level]; sums to 1 when total time > 0.
  [[nodiscard]] std::vector<double> distribution() const;

  [[nodiscard]] double total_time() const { return total_time_; }

 private:
  std::vector<double> time_at_;  // indexed by occupancy level
  double last_time_ = 0.0;
  std::int64_t current_ = 0;
  double total_time_ = 0.0;
  bool started_ = false;
};

}  // namespace bevr::sim
