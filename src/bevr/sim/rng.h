// Random-variate generation for the flow-level simulator.
//
// Thin, explicit wrappers over std::mt19937_64 for the variates the
// simulator needs; the bounded-Pareto holding time produces the
// heavy-tailed flow durations that push the occupancy distribution
// toward the paper's algebraic load regime.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <stdexcept>

namespace bevr::sim {

/// SplitMix64 finalising mix (Steele, Lea & Flood 2014): a cheap
/// bijective scrambler whose outputs pass BigCrush. Used to derive
/// decorrelated sub-seeds from (seed, stream) pairs.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// U(0, 1), never exactly 0 (safe for log transforms).
  [[nodiscard]] double uniform() {
    double u;
    do {
      u = std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    } while (u <= 0.0);
    return u;
  }

  /// Exponential with the given mean (not rate).
  [[nodiscard]] double exponential(double mean) {
    if (!(mean > 0.0)) throw std::invalid_argument("Rng: mean must be > 0");
    return -mean * std::log(uniform());
  }

  /// Bounded Pareto on [lo, hi] with tail index `shape` (> 0): heavy-
  /// tailed but with finite moments for simulation stability.
  [[nodiscard]] double bounded_pareto(double shape, double lo, double hi) {
    if (!(shape > 0.0) || !(lo > 0.0) || !(hi > lo)) {
      throw std::invalid_argument("Rng: bad bounded_pareto parameters");
    }
    const double u = uniform();
    const double la = std::pow(lo, shape);
    const double ha = std::pow(hi, shape);
    // Inverse CDF of the truncated Pareto.
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / shape);
  }

  /// Bernoulli(p).
  [[nodiscard]] bool bernoulli(double p) { return uniform() < p; }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

  /// The seed this generator was constructed with (unchanged by draws).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Derive an independent child generator for logical stream
  /// `stream_id` (SplitMix64-style sub-seeding). The mapping depends
  /// only on (construction seed, stream_id) — never on how many
  /// variates have been drawn — so parallel runners can hand task i
  /// the generator `root.split(i)` and get bit-identical results at
  /// any thread count. Distinct streams are decorrelated by the
  /// SplitMix64 scramble.
  [[nodiscard]] Rng split(std::uint64_t stream_id) const {
    return Rng(splitmix64(splitmix64(seed_) ^ splitmix64(~stream_id)));
  }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace bevr::sim
