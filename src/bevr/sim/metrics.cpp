#include "bevr/sim/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace bevr::sim {

void RunningStats::add(double x) noexcept {
  ++count_;
  if (count_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void TimeWeightedOccupancy::record(double now, std::int64_t occupancy) {
  if (occupancy < 0) {
    throw std::invalid_argument("TimeWeightedOccupancy: negative occupancy");
  }
  if (started_) {
    if (now < last_time_) {
      throw std::invalid_argument("TimeWeightedOccupancy: time went backwards");
    }
    const double elapsed = now - last_time_;
    const auto level = static_cast<std::size_t>(current_);
    if (time_at_.size() <= level) time_at_.resize(level + 1, 0.0);
    time_at_[level] += elapsed;
    total_time_ += elapsed;
  }
  started_ = true;
  last_time_ = now;
  current_ = occupancy;
}

double TimeWeightedOccupancy::fraction(std::int64_t k) const {
  if (total_time_ <= 0.0 || k < 0) return 0.0;
  const auto level = static_cast<std::size_t>(k);
  if (level >= time_at_.size()) return 0.0;
  return time_at_[level] / total_time_;
}

double TimeWeightedOccupancy::mean() const {
  if (total_time_ <= 0.0) return 0.0;
  double acc = 0.0;
  for (std::size_t k = 0; k < time_at_.size(); ++k) {
    acc += static_cast<double>(k) * time_at_[k];
  }
  return acc / total_time_;
}

std::vector<double> TimeWeightedOccupancy::distribution() const {
  std::vector<double> pmf(time_at_.size(), 0.0);
  if (total_time_ <= 0.0) return pmf;
  for (std::size_t k = 0; k < time_at_.size(); ++k) {
    pmf[k] = time_at_[k] / total_time_;
  }
  return pmf;
}

}  // namespace bevr::sim
