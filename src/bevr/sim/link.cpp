#include "bevr/sim/link.h"

namespace bevr::sim {

Link::Link(double capacity, Architecture architecture,
           std::int64_t admission_limit)
    : capacity_(capacity),
      architecture_(architecture),
      admission_limit_(admission_limit) {
  if (!(capacity > 0.0)) {
    throw std::invalid_argument("Link: capacity must be > 0");
  }
  if (architecture == Architecture::kReservation && admission_limit < 0) {
    throw std::invalid_argument("Link: admission_limit must be >= 0");
  }
}

bool Link::try_admit() {
  if (architecture_ == Architecture::kReservation &&
      occupancy_ >= admission_limit_) {
    return false;
  }
  ++occupancy_;
  return true;
}

void Link::release() {
  if (occupancy_ <= 0) {
    throw std::logic_error("Link::release: no flows to release");
  }
  --occupancy_;
}

double Link::share() const {
  return occupancy_ > 0 ? capacity_ / static_cast<double>(occupancy_)
                        : capacity_;
}

}  // namespace bevr::sim
