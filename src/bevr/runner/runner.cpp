#include "bevr/runner/runner.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <cstdio>
#include <functional>
#include <span>
#include <stdexcept>

#include "bevr/admission/engine.h"
#include "bevr/admission/policy.h"
#include "bevr/admission/trace.h"
#include "bevr/core/fixed_load.h"
#include "bevr/core/welfare.h"
#include "bevr/numerics/erlang.h"
#include "bevr/dist/algebraic.h"
#include "bevr/kernels/sweep_evaluator.h"
#include "bevr/kernels/warm_kmax.h"
#include "bevr/net2/engine.h"
#include "bevr/net2/fixed_point.h"
#include "bevr/net2/policy.h"
#include "bevr/net2/topology.h"
#include "bevr/net2/trace.h"
#include "bevr/obs/metrics.h"
#include "bevr/obs/trace.h"
#include "bevr/runner/memoized_model.h"
#include "bevr/sim/arrival.h"
#include "bevr/sim/rng.h"
#include "bevr/sim/simulator.h"

namespace bevr::runner {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Instantiate the spec's load, memoizing the algebraic λ-calibration
// (a Hurwitz-zeta root solve) across scenarios sharing the cache.
std::shared_ptr<const dist::DiscreteLoad> make_load_cached(
    const ScenarioSpec& spec, const std::shared_ptr<MemoCache>& cache) {
  if (spec.load != LoadFamily::kAlgebraic || !cache) return make_load(spec);
  const double lambda = cache->get_or_compute2(
      "alg_lambda", spec.load_param, spec.load_mean, [&] {
        return dist::AlgebraicLoad::with_mean(spec.load_param, spec.load_mean)
            .lambda();
      });
  return make_load_with_lambda(spec, lambda);
}

// One evaluated grid point; the body must touch only rows[i].
using Plan = std::function<void(std::int64_t)>;

// make_memoized_model with an optional pre-built utility (the sim plan
// needs the utility itself alongside the façade).
std::shared_ptr<MemoizedVariableLoad> make_variable_model(
    const ScenarioSpec& spec, const std::shared_ptr<MemoCache>& cache,
    bool use_kernels,
    std::shared_ptr<const utility::UtilityFunction> pi = nullptr) {
  if (!pi) pi = make_utility(spec);
  auto model = std::make_shared<core::VariableLoadModel>(
      make_load_cached(spec, cache), std::move(pi), spec.eval);
  std::shared_ptr<const kernels::SweepEvaluator> kernel;
  if (use_kernels) {
    kernel = std::make_shared<kernels::SweepEvaluator>(model);
  }
  return std::make_shared<MemoizedVariableLoad>(std::move(model), cache,
                                                std::move(kernel));
}

Plan plan_fixed_load(const ScenarioSpec& spec, const std::vector<double>& grid,
                     std::vector<ResultRow>& rows, bool use_kernels) {
  auto pi = make_utility(spec);
  // Kernel path: k_max resumes from the previous grid point (the grid
  // is sorted), and the capacity-independent continuum share b* — a
  // 2048-point grid refinement — is solved once instead of per point.
  // k_max_continuum(pi, c) is exactly c / optimal_share(pi), so the
  // hoisted division reproduces it bit-for-bit.
  std::shared_ptr<const kernels::WarmKmax> warm;
  double share = std::numeric_limits<double>::infinity();
  if (use_kernels) {
    warm = std::make_shared<kernels::WarmKmax>();
    if (pi->inelastic()) share = core::optimal_share(*pi);
  }
  return Plan{[&rows, &grid, pi, warm, share](std::int64_t i) {
        const double c = grid[static_cast<std::size_t>(i)];
        const auto kmax = warm ? warm->k_max(*pi, c) : core::k_max(*pi, c);
        const double v =
            kmax ? core::total_utility(*pi, c, *kmax)
                 : std::numeric_limits<double>::infinity();
        const double kc =
            pi->inelastic()
                ? (warm ? c / share : core::k_max_continuum(*pi, c))
                : std::numeric_limits<double>::infinity();
        rows[static_cast<std::size_t>(i)].values = {
            c, kmax ? static_cast<double>(*kmax) : -1.0, v, kc};
      }};
}

Plan plan_variable_load(const ScenarioSpec& spec,
                        const std::vector<double>& grid,
                        std::vector<ResultRow>& rows,
                        const std::shared_ptr<MemoCache>& cache,
                        bool use_kernels) {
  auto model = make_variable_model(spec, cache, use_kernels);
  const bool with_gap = spec.with_bandwidth_gap;
  return Plan{[&rows, &grid, model, with_gap](std::int64_t i) {
                const double c = grid[static_cast<std::size_t>(i)];
                const auto kmax = model->k_max(c);
                auto& values = rows[static_cast<std::size_t>(i)].values;
                values = {c, model->best_effort(c), model->reservation(c),
                          model->performance_gap(c)};
                if (with_gap) values.push_back(model->bandwidth_gap(c));
                values.push_back(kmax ? static_cast<double>(*kmax) : -1.0);
                values.push_back(model->blocking_fraction(c));
              }};
}

Plan plan_continuum(const ScenarioSpec& spec, const std::vector<double>& grid,
                    std::vector<ResultRow>& rows) {
  std::shared_ptr<const core::ContinuumModel> model = make_continuum_model(spec);
  const bool with_gap = spec.with_bandwidth_gap;
  return Plan{[&rows, &grid, model, with_gap](std::int64_t i) {
                const double c = grid[static_cast<std::size_t>(i)];
                auto& values = rows[static_cast<std::size_t>(i)].values;
                values = {c, model->best_effort(c), model->reservation(c),
                          model->performance_gap(c)};
                if (with_gap) values.push_back(model->bandwidth_gap(c));
              }};
}

Plan plan_welfare(const ScenarioSpec& spec, const std::vector<double>& grid,
                  std::vector<ResultRow>& rows,
                  const std::shared_ptr<MemoCache>& cache, bool use_kernels) {
  auto model = make_variable_model(spec, cache, use_kernels);
  auto analysis = std::make_shared<core::WelfareAnalysis>(
      [model](double c) { return model->total_best_effort(c); },
      [model](double c) { return model->total_reservation(c); },
      [model](double lo, double hi, int n, std::span<double> out) {
        model->total_best_effort_grid(lo, hi, n, out);
      },
      [model](double lo, double hi, int n, std::span<double> out) {
        model->total_reservation_grid(lo, hi, n, out);
      },
      model->mean_load());
  return Plan{[&rows, &grid, model, analysis](std::int64_t i) {
        const double p = grid[static_cast<std::size_t>(i)];
        const auto be = analysis->best_effort(p);
        const auto rs = analysis->reservation(p);
        rows[static_cast<std::size_t>(i)].values = {
            p,          be.capacity, rs.capacity,
            be.welfare, rs.welfare,  analysis->price_ratio(p)};
      }};
}

Plan plan_simulation(const ScenarioSpec& spec, const std::vector<double>& grid,
                     std::vector<ResultRow>& rows,
                     const std::shared_ptr<MemoCache>& cache,
                     std::uint64_t base_seed, bool use_kernels) {
  if (spec.load != LoadFamily::kPoisson) {
    throw std::invalid_argument(
        "run_scenario: simulation scenarios require a Poisson load "
        "(M/M/inf occupancy); got '" +
        to_string(spec.load) + "'");
  }
  auto pi = make_utility(spec);
  auto model = make_variable_model(spec, cache, use_kernels, pi);
  const double rate = spec.load_mean;  // holding mean 1 → occupancy mean k̄
  const double horizon = spec.sim_horizon;
  const double warmup = spec.sim_warmup;
  return Plan{[&rows, &grid, pi, model, rate, horizon, warmup,
               base_seed](std::int64_t i) {
        const double c = grid[static_cast<std::size_t>(i)];
        const auto kmax = model->k_max(c);
        const std::int64_t limit = kmax.value_or(
            static_cast<std::int64_t>(rate * 16));  // effectively no limit

        // Independent sub-streams per (task, architecture): nothing
        // depends on which worker runs the task.
        const sim::Rng root(base_seed);
        const auto simulate = [&](sim::Architecture arch,
                                  std::uint64_t stream) {
          sim::SimulationConfig config;
          config.capacity = c;
          config.architecture = arch;
          config.admission_limit = limit;
          config.horizon = horizon;
          config.warmup = warmup;
          config.seed = root.split(stream).seed();
          const sim::FlowSimulator simulator(
              config, pi, std::make_shared<sim::PoissonArrivals>(rate),
              std::make_shared<sim::ExponentialHolding>(1.0));
          return simulator.run();
        };
        const auto be = simulate(sim::Architecture::kBestEffort,
                                 2 * static_cast<std::uint64_t>(i));
        const auto rs = simulate(sim::Architecture::kReservation,
                                 2 * static_cast<std::uint64_t>(i) + 1);
        rows[static_cast<std::size_t>(i)].values = {
            c,
            static_cast<double>(limit),
            be.mean_utility,
            rs.mean_utility,
            model->best_effort(c),
            model->reservation(c),
            rs.blocking_probability,
            model->blocking_fraction(c)};
      }};
}

Plan plan_admission(const ScenarioSpec& spec, const std::vector<double>& grid,
                    std::vector<ResultRow>& rows, std::uint64_t base_seed,
                    bool use_kernels) {
  auto pi = make_utility(spec);
  const AdmissionSpec adm = spec.admission;
  return Plan{[&rows, &grid, pi, adm, base_seed, use_kernels](std::int64_t i) {
    // Per-task trace from an index-keyed sub-stream: bit-identical at
    // any thread count, and identical for every policy replaying it.
    admission::TraceSpec tspec = adm.trace;
    const double x = grid[static_cast<std::size_t>(i)];
    switch (adm.sweep) {
      case AdmissionSweep::kArrivalRate:
        tspec.arrival_rate = x;
        break;
      case AdmissionSweep::kBookAhead:
        tspec.book_ahead = x;
        break;
      case AdmissionSweep::kErlangCheck:
        // The grid is offered load E = λ·τ; with τ fixed this is λ.
        tspec.arrival_rate = x / tspec.mean_duration;
        break;
    }
    const sim::Rng root(base_seed);
    const auto trace = admission::generate_trace(
        tspec, root.split(static_cast<std::uint64_t>(i)));
    admission::EngineConfig engine_config;
    engine_config.warmup = adm.warmup;

    admission::PolicyConfig pc;
    pc.capacity = adm.capacity;
    pc.pi = pi;
    pc.tick = adm.tick;
    pc.use_warm_kmax = use_kernels;

    auto& values = rows[static_cast<std::size_t>(i)].values;
    if (adm.sweep == AdmissionSweep::kErlangCheck) {
      // Rigid immediate reservations on the calendar are exactly an
      // M/M/C/C loss system (releases happen at exact departure
      // times, so tick quantization never leaks into admission);
      // compare the simulated blocking with Erlang-B.
      pc.min_rate_fraction = 1.0;
      pc.max_start_shift = 0.0;
      const auto policy =
          admission::make_policy(admission::PolicyKind::kAdvanceBooking, pc);
      const auto report =
          admission::run_admission(trace, *policy, *pi, engine_config);
      const double offered_load = tspec.arrival_rate * tspec.mean_duration;
      const auto servers = static_cast<std::int64_t>(
          std::floor(adm.capacity / tspec.rate + 1e-9));
      const double model = numerics::erlang_b(offered_load, servers);
      // 3σ binomial half-width at the model's blocking probability.
      // Arrivals within one mean holding time see nearly the same
      // occupancy, so blocking indicators are strongly correlated and
      // the effective number of independent observations is the count
      // of scored holding-time epochs — NOT the offered-arrival count
      // (which would understate the CI by ~√E). The M/M/C/C validation
      // test asserts abs_error <= ci3 per row.
      const double epochs =
          (tspec.horizon - adm.warmup) / tspec.mean_duration;
      const double ci3 =
          epochs > 0.0
              ? 3.0 * std::sqrt(model * (1.0 - model) / epochs)
              : std::numeric_limits<double>::infinity();
      values = {offered_load, report.blocking_probability, model,
                std::abs(report.blocking_probability - model), ci3};
      return;
    }

    const auto run_policy = [&](admission::PolicyKind kind) {
      const auto policy = admission::make_policy(kind, pc);
      return admission::run_admission(trace, *policy, *pi, engine_config);
    };
    const auto best_effort = run_policy(admission::PolicyKind::kBestEffort);
    const auto online = run_policy(admission::PolicyKind::kOnlineKmax);
    pc.min_rate_fraction = adm.min_rate_fraction;
    pc.max_start_shift = adm.max_start_shift;
    pc.shift_step = adm.shift_step;
    const auto advance = run_policy(admission::PolicyKind::kAdvanceBooking);

    values = {x,
              best_effort.mean_utility,
              online.mean_utility,
              advance.mean_utility,
              online.blocking_probability,
              advance.blocking_probability,
              static_cast<double>(advance.counteroffers_accepted),
              static_cast<double>(advance.cancelled)};
  }};
}

Plan plan_net2(const ScenarioSpec& spec, const std::vector<double>& grid,
               std::vector<ResultRow>& rows, std::uint64_t base_seed,
               bool use_kernels) {
  auto pi = make_utility(spec);
  const Net2Spec net = spec.net2;
  return Plan{[&rows, &grid, pi, net, base_seed, use_kernels](std::int64_t i) {
    const double x = grid[static_cast<std::size_t>(i)];
    auto& values = rows[static_cast<std::size_t>(i)].values;

    net2::MeanFieldSpec mf;
    mf.capacity = static_cast<std::int64_t>(net.capacity + 0.5);
    mf.trunk_reserve = static_cast<std::int64_t>(net.trunk_reserve + 0.5);
    mf.damping = net.mf_damping;
    mf.tolerance = net.mf_tolerance;

    if (net.sweep == Net2Sweep::kMeanFieldScale) {
      // The grid is per-link capacity; place the per-pair load at the
      // capacity's erlang_b_offered_load operating point so every
      // point sits at the same relative congestion.
      mf.capacity = static_cast<std::int64_t>(x + 0.5);
      mf.pair_load = numerics::erlang_b_offered_load(mf.capacity,
                                                     net.mf_target_blocking);
      const auto result = net2::evaluate_mean_field(mf);
      values = {static_cast<double>(mf.capacity),
                mf.pair_load,
                result.blocking_direct,
                result.blocking_alternate,
                result.blocking,
                result.overflow_load,
                static_cast<double>(result.iterations)};
      return;
    }

    // Simulation sweeps: per-task trace from an index-keyed sub-stream
    // — bit-identical at any thread count, and identical for every
    // policy replaying it.
    net2::TopologySpec tspec;
    tspec.kind = net.topology;
    tspec.nodes = net.sweep == Net2Sweep::kNodes
                      ? static_cast<int>(x + 0.5)
                      : net.nodes;
    tspec.capacity = net.capacity;
    const net2::Topology topology = net2::build_topology(tspec);

    net2::NetTraceSpec trace_spec = net.trace;
    if (net.sweep != Net2Sweep::kNodes) {
      // The grid is offered erlangs per pair a = λ·τ; with τ fixed
      // this is λ.
      trace_spec.pair_arrival_rate = x / trace_spec.mean_duration;
    }
    const sim::Rng root(base_seed);
    const auto trace = net2::generate_net_trace(
        topology, trace_spec, root.split(static_cast<std::uint64_t>(i)));
    net2::NetEngineConfig engine_config;
    engine_config.warmup = net.warmup;

    net2::NetPolicyConfig pc;
    pc.pi = pi;
    pc.use_warm_kmax = use_kernels;
    const auto run_policy = [&](net2::NetPolicyKind kind,
                                double trunk_reserve) {
      pc.trunk_reserve = trunk_reserve;
      const auto policy = net2::make_net_policy(kind, topology, pc);
      return net2::run_network(trace, *policy, *pi, engine_config);
    };

    if (net.sweep == Net2Sweep::kPairLoad) {
      const auto best_effort =
          run_policy(net2::NetPolicyKind::kBestEffort, 0.0);
      const auto reserved =
          run_policy(net2::NetPolicyKind::kDirectReservation, 0.0);
      const auto dar0 = run_policy(net2::NetPolicyKind::kDar, 0.0);
      const auto dar_r =
          run_policy(net2::NetPolicyKind::kDar, net.trunk_reserve);
      const double alt_share =
          dar_r.offered > 0 ? static_cast<double>(dar_r.alternate_routed) /
                                  static_cast<double>(dar_r.offered)
                            : 0.0;
      values = {x,
                best_effort.mean_utility,
                reserved.mean_utility,
                dar0.mean_utility,
                dar_r.mean_utility,
                reserved.blocking_probability,
                dar0.blocking_probability,
                dar_r.blocking_probability,
                alt_share};
      return;
    }

    // kMeanFieldCheck / kNodes: DAR at r against the fixed point.
    const auto dar = run_policy(net2::NetPolicyKind::kDar, net.trunk_reserve);
    mf.pair_load = trace_spec.pair_arrival_rate * trace_spec.mean_duration;
    const auto model = net2::evaluate_mean_field(mf);
    const double abs_error =
        std::abs(dar.blocking_probability - model.blocking);
    if (net.sweep == Net2Sweep::kNodes) {
      values = {static_cast<double>(tspec.nodes), dar.blocking_probability,
                model.blocking, abs_error};
      return;
    }
    // 3σ binomial half-width at the model's blocking probability over
    // the effective number of independent observations: scored
    // holding-time epochs per pair times the pair count (arrivals
    // within one holding time see nearly the same occupancy, so
    // per-arrival indicators are strongly correlated).
    const std::size_t nodes = topology.node_count();
    const double pairs = static_cast<double>(nodes * (nodes - 1) / 2);
    const double epochs = pairs * (trace_spec.horizon - net.warmup) /
                          trace_spec.mean_duration;
    const double ci3 =
        epochs > 0.0
            ? 3.0 * std::sqrt(model.blocking * (1.0 - model.blocking) /
                              epochs)
            : std::numeric_limits<double>::infinity();
    values = {mf.pair_load, dar.blocking_probability, model.blocking,
              abs_error, ci3};
  }};
}

}  // namespace

std::shared_ptr<MemoizedVariableLoad> make_memoized_model(
    const ScenarioSpec& spec, const std::shared_ptr<MemoCache>& cache,
    bool use_kernels) {
  return make_variable_model(spec, cache, use_kernels);
}

std::vector<std::string> scenario_columns(const ScenarioSpec& spec) {
  switch (spec.model) {
    case ModelKind::kFixedLoad:
      return {"capacity", "k_max", "total_utility", "k_max_continuum"};
    case ModelKind::kVariableLoad: {
      std::vector<std::string> columns = {"capacity", "best_effort",
                                          "reservation", "delta", "k_max",
                                          "blocking"};
      if (spec.with_bandwidth_gap) {
        columns.insert(columns.begin() + 4, "bandwidth_gap");
      }
      return columns;
    }
    case ModelKind::kContinuum: {
      std::vector<std::string> columns = {"capacity", "best_effort",
                                          "reservation", "delta"};
      if (spec.with_bandwidth_gap) columns.push_back("bandwidth_gap");
      return columns;
    }
    case ModelKind::kWelfare:
      return {"price", "capacity_best_effort", "capacity_reservation",
              "welfare_best_effort", "welfare_reservation", "gamma"};
    case ModelKind::kSimulation:
      return {"capacity", "admission_limit", "sim_best_effort",
              "sim_reservation", "model_best_effort", "model_reservation",
              "sim_blocking", "model_blocking"};
    case ModelKind::kAdmission:
      switch (spec.admission.sweep) {
        case AdmissionSweep::kErlangCheck:
          return {"offered_load", "sim_blocking", "erlang_b", "abs_error",
                  "ci3"};
        case AdmissionSweep::kArrivalRate:
        case AdmissionSweep::kBookAhead:
          return {spec.admission.sweep == AdmissionSweep::kArrivalRate
                      ? "arrival_rate"
                      : "book_ahead",
                  "best_effort_util",
                  "online_kmax_util",
                  "advance_util",
                  "online_blocking",
                  "advance_blocking",
                  "advance_countered",
                  "advance_cancelled"};
      }
      throw std::invalid_argument("scenario_columns: unknown admission sweep");
    case ModelKind::kNet2:
      switch (spec.net2.sweep) {
        case Net2Sweep::kPairLoad:
          return {"pair_load",        "best_effort_util", "reserved_util",
                  "dar_util_r0",      "dar_util_r",       "reserved_blocking",
                  "dar_blocking_r0",  "dar_blocking_r",   "dar_alt_share_r"};
        case Net2Sweep::kMeanFieldCheck:
          return {"pair_load", "sim_blocking", "meanfield_blocking",
                  "abs_error", "ci3"};
        case Net2Sweep::kNodes:
          return {"nodes", "sim_blocking", "meanfield_blocking", "abs_error"};
        case Net2Sweep::kMeanFieldScale:
          return {"capacity",           "pair_load",
                  "blocking_direct",    "blocking_alternate",
                  "meanfield_blocking", "overflow_load",
                  "iterations"};
      }
      throw std::invalid_argument("scenario_columns: unknown net2 sweep");
  }
  throw std::invalid_argument("scenario_columns: unknown model kind");
}

namespace {

// Run a shell command and return its stdout (trailing newlines
// stripped), or "" on any failure. The command must redirect stderr
// itself; /bin/sh complaining about a missing git would otherwise
// reach the terminal mid-CSV.
std::string capture_command(const char* command) {
  FILE* pipe = ::popen(command, "r");
  if (pipe == nullptr) return "";
  char buffer[128] = {};
  std::string out;
  while (std::fgets(buffer, sizeof buffer, pipe) != nullptr) out += buffer;
  const int status = ::pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  if (status != 0) return "";
  return out;
}

// Provenance strings ride in CSV '#' comments as space-separated
// key=value pairs; anything with whitespace would corrupt the field.
bool provenance_safe(const std::string& text) {
  for (const char c : text) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == ',') {
      return false;
    }
  }
  return !text.empty();
}

}  // namespace

std::string git_describe() {
  // Forking git costs milliseconds — comparable to a whole kernels-path
  // scenario — and the answer cannot change inside one process, so
  // provenance is resolved once and reused by every run_scenario call.
  static const std::string cached = [] {
    const std::string out =
        capture_command("git describe --always --dirty 2>/dev/null");
    return provenance_safe(out) ? out : std::string("unknown");
  }();
  return cached;
}

std::string git_commit_time() {
  // %cI is strict ISO 8601: no spaces, CSV-comment safe.
  static const std::string cached = [] {
    const std::string out =
        capture_command("git show -s --format=%cI HEAD 2>/dev/null");
    return provenance_safe(out) ? out : std::string("unknown");
  }();
  return cached;
}

RunSummary run_scenario(const ScenarioSpec& spec, const RunOptions& options,
                        ResultSink& sink) {
  // Observability handles; all no-ops when the global registry is
  // disabled, and none of them feed back into the computed rows.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const obs::Counter runs_counter = registry.counter("runner/runs");
  const obs::Counter rows_counter = registry.counter("runner/rows");
  const obs::Counter expand_us = registry.counter("runner/phase/expand_us");
  const obs::Counter execute_us = registry.counter("runner/phase/execute_us");
  const obs::Counter emit_us = registry.counter("runner/phase/emit_us");
  const obs::Histogram task_us = registry.histogram("runner/task_us");

  const auto run_start = Clock::now();
  RunSummary summary;

  // -- expand: validate the spec, build the grid, plan and pool ------------
  std::vector<double> grid;
  std::vector<ResultRow> rows;
  std::shared_ptr<MemoCache> cache;
  Plan plan;
  ThreadPool* pool = options.pool;
  std::unique_ptr<ThreadPool> owned_pool;
  {
    BEVR_TRACE_SPAN("runner/expand");
    spec.validate();
    grid = spec.grid.values();
    rows.resize(grid.size());
    for (std::size_t i = 0; i < rows.size(); ++i) rows[i].index = i;

    cache = options.cache;
    if (!cache && options.use_cache) cache = std::make_shared<MemoCache>();

    plan = [&] {
      switch (spec.model) {
        case ModelKind::kFixedLoad:
          return plan_fixed_load(spec, grid, rows, options.use_kernels);
        case ModelKind::kVariableLoad:
          return plan_variable_load(spec, grid, rows, cache,
                                    options.use_kernels);
        case ModelKind::kContinuum: return plan_continuum(spec, grid, rows);
        case ModelKind::kWelfare:
          return plan_welfare(spec, grid, rows, cache, options.use_kernels);
        case ModelKind::kSimulation:
          return plan_simulation(spec, grid, rows, cache, options.base_seed,
                                 options.use_kernels);
        case ModelKind::kAdmission:
          return plan_admission(spec, grid, rows, options.base_seed,
                                options.use_kernels);
        case ModelKind::kNet2:
          return plan_net2(spec, grid, rows, options.base_seed,
                           options.use_kernels);
      }
      throw std::invalid_argument("run_scenario: unknown model kind");
    }();

    unsigned threads = 1;
    if (pool != nullptr) {
      threads = pool->size();
    } else if (options.threads != 1) {
      owned_pool = std::make_unique<ThreadPool>(options.threads);
      pool = owned_pool.get();
      threads = pool->size();
    }

    RunMetadata metadata;
    metadata.scenario = spec.name;
    metadata.model = to_string(spec.model);
    metadata.git_describe = git_describe();
    metadata.git_time = git_commit_time();
    metadata.base_seed = options.base_seed;
    metadata.threads = threads;
    sink.begin(metadata, scenario_columns(spec));
  }
  summary.expand_seconds = seconds_since(run_start);
  expand_us.add(static_cast<std::uint64_t>(summary.expand_seconds * 1e6));

  // -- execute: the parallel section ---------------------------------------
  std::atomic<std::uint64_t> task_nanos{0};
  const auto execute_start = Clock::now();
  {
    BEVR_TRACE_SPAN("runner/execute");
    parallel_for(pool, static_cast<std::int64_t>(grid.size()),
                 [&](std::int64_t i) {
                   // Causal id per grid point, derived from the same
                   // base seed the task sub-streams use — rerunning a
                   // scenario yields byte-identical task trace ids.
                   BEVR_TRACE_SPAN_CTX(
                       "runner/task",
                       obs::TraceContext::derive(
                           options.base_seed, static_cast<std::uint64_t>(i)));
                   const auto task_start = Clock::now();
                   plan(i);
                   const auto elapsed = static_cast<std::uint64_t>(
                       std::chrono::duration_cast<std::chrono::nanoseconds>(
                           Clock::now() - task_start)
                           .count());
                   task_nanos.fetch_add(elapsed, std::memory_order_relaxed);
                   task_us.observe(static_cast<double>(elapsed) * 1e-3);
                 });
  }
  summary.execute_seconds = seconds_since(execute_start);
  execute_us.add(static_cast<std::uint64_t>(summary.execute_seconds * 1e6));

  // -- emit: stream rows to the sink, strictly in grid order ---------------
  // (after the barrier; the payload cannot depend on scheduling).
  const auto emit_start = Clock::now();
  {
    BEVR_TRACE_SPAN("runner/emit");
    for (const auto& row : rows) sink.row(row);
  }
  summary.emit_seconds = seconds_since(emit_start);
  emit_us.add(static_cast<std::uint64_t>(summary.emit_seconds * 1e6));

  summary.rows = rows.size();
  summary.wall_seconds = seconds_since(run_start);
  summary.task_seconds_total =
      static_cast<double>(task_nanos.load()) * 1e-9;
  if (cache) summary.cache = cache->stats();
  runs_counter.inc();
  rows_counter.add(rows.size());

  sink.finish(summary);
  return summary;
}

}  // namespace bevr::runner
