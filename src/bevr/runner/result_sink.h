// Structured result emission for scenario runs.
//
// The runner separates *data* from *provenance*: data rows are pure
// functions of (spec, base_seed) and are emitted in grid order, so a
// run's payload is byte-identical at any thread count; provenance
// (git describe, thread count, wall time, cache effectiveness) rides
// along as metadata/summary records that tooling can strip before
// diffing. CsvSink renders metadata as '#' comment lines; JsonlSink
// emits one JSON object per line with a "type" discriminator
// ("meta" / "row" / "summary").
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "bevr/runner/memo_cache.h"

namespace bevr::runner {

/// Provenance for one run, captured before any task executes.
struct RunMetadata {
  std::string scenario;
  std::string model;
  std::string git_describe;  ///< `git describe --always --dirty`, or "unknown"
  std::string git_time;      ///< HEAD committer time, ISO 8601, or "unknown"
  std::uint64_t base_seed = 0;
  unsigned threads = 1;
};

/// One data row: the grid point's evaluated columns, in column order.
struct ResultRow {
  std::size_t index = 0;  ///< position in the scenario grid
  std::vector<double> values;
};

/// Post-run provenance: timing and cache effectiveness. Wall time is
/// split into the runner's three phases — expand (validate spec,
/// build grid/plan/pool), execute (the parallel section) and emit
/// (streaming rows to the sink).
struct RunSummary {
  std::size_t rows = 0;
  double wall_seconds = 0.0;
  double task_seconds_total = 0.0;  ///< Σ per-task wall time (CPU-ish)
  double expand_seconds = 0.0;
  double execute_seconds = 0.0;
  double emit_seconds = 0.0;
  CacheStats cache;

  /// Data-row throughput of the parallel section.
  [[nodiscard]] double rows_per_second() const {
    return execute_seconds > 0.0 ? static_cast<double>(rows) / execute_seconds
                                 : 0.0;
  }
};

class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// Called once, before any row; declares the column names.
  virtual void begin(const RunMetadata& metadata,
                     const std::vector<std::string>& columns) = 0;
  /// Called once per grid point, in index order.
  virtual void row(const ResultRow& row) = 0;
  /// Called once, after the last row.
  virtual void finish(const RunSummary& summary) = 0;
};

/// CSV with '#'-prefixed metadata/summary comments — drop-in for the
/// ad-hoc CSV the serial sweep tool used to print.
class CsvSink final : public ResultSink {
 public:
  explicit CsvSink(std::ostream& out) : out_(out) {}

  void begin(const RunMetadata& metadata,
             const std::vector<std::string>& columns) override;
  void row(const ResultRow& row) override;
  void finish(const RunSummary& summary) override;

 private:
  std::ostream& out_;
};

/// JSON-lines: {"type":"meta",...} / {"type":"row",...} / {"type":"summary",...}.
class JsonlSink final : public ResultSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(out) {}

  void begin(const RunMetadata& metadata,
             const std::vector<std::string>& columns) override;
  void row(const ResultRow& row) override;
  void finish(const RunSummary& summary) override;

 private:
  std::ostream& out_;
  std::string scenario_;
  std::vector<std::string> columns_;
};

/// Decorator: forwards everything to `inner` and, every `every` data
/// rows plus once at finish, appends a {"type":"snapshot",...} JSON
/// line carrying the global obs::MetricsRegistry state to `out`. This
/// turns a long sweep's metrics stream (bevr_run --metrics-out) into a
/// time series instead of a single end-of-run point
/// (bevr_run --snapshot-every=N). With every == 0 only the final
/// snapshot is written.
class SnapshottingSink final : public ResultSink {
 public:
  SnapshottingSink(ResultSink& inner, std::ostream& out, std::size_t every)
      : inner_(inner), out_(out), every_(every) {}

  void begin(const RunMetadata& metadata,
             const std::vector<std::string>& columns) override;
  void row(const ResultRow& row) override;
  void finish(const RunSummary& summary) override;

  [[nodiscard]] std::size_t snapshots_written() const { return snapshots_; }

 private:
  void emit_snapshot(const char* phase);

  ResultSink& inner_;
  std::ostream& out_;
  std::size_t every_;
  std::size_t rows_seen_ = 0;
  std::size_t snapshots_ = 0;
  std::string scenario_;
};

/// In-memory capture for tests and programmatic use.
class VectorSink final : public ResultSink {
 public:
  void begin(const RunMetadata& metadata,
             const std::vector<std::string>& columns) override;
  void row(const ResultRow& row) override;
  void finish(const RunSummary& summary) override;

  [[nodiscard]] const RunMetadata& metadata() const { return metadata_; }
  [[nodiscard]] const std::vector<std::string>& columns() const { return columns_; }
  [[nodiscard]] const std::vector<ResultRow>& rows() const { return rows_; }
  [[nodiscard]] const RunSummary& summary() const { return summary_; }

 private:
  RunMetadata metadata_;
  std::vector<std::string> columns_;
  std::vector<ResultRow> rows_;
  RunSummary summary_;
};

/// Format a double with enough digits to round-trip (printf "%.17g"
/// shortened): used by both sinks so CSV and JSONL payloads agree.
[[nodiscard]] std::string format_value(double value);

}  // namespace bevr::runner
