#include "bevr/runner/result_sink.h"

#include <cmath>
#include <cstdio>

#include "bevr/obs/metrics.h"
#include "bevr/obs/report.h"

namespace bevr::runner {

namespace {

// Minimal JSON string escaping (names and git describes are ASCII).
std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': escaped += "\\\""; break;
      case '\\': escaped += "\\\\"; break;
      case '\n': escaped += "\\n"; break;
      case '\t': escaped += "\\t"; break;
      default: escaped += c;
    }
  }
  return escaped;
}

}  // namespace

std::string format_value(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  // Shortest representation that round-trips: try increasing precision.
  char buffer[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(buffer, "%lf", &parsed);
    if (parsed == value) break;
  }
  return buffer;
}

void CsvSink::begin(const RunMetadata& metadata,
                    const std::vector<std::string>& columns) {
  out_ << "# scenario=" << metadata.scenario << " model=" << metadata.model
       << " seed=" << metadata.base_seed << " threads=" << metadata.threads
       << " git=" << metadata.git_describe << " git_time=" << metadata.git_time
       << "\n";
  for (std::size_t i = 0; i < columns.size(); ++i) {
    out_ << (i == 0 ? "" : ",") << columns[i];
  }
  out_ << "\n";
}

void CsvSink::row(const ResultRow& row) {
  for (std::size_t i = 0; i < row.values.size(); ++i) {
    out_ << (i == 0 ? "" : ",") << format_value(row.values[i]);
  }
  out_ << "\n";
}

void CsvSink::finish(const RunSummary& summary) {
  out_ << "# rows=" << summary.rows << " wall_s=" << format_value(summary.wall_seconds)
       << " task_s=" << format_value(summary.task_seconds_total)
       << " expand_s=" << format_value(summary.expand_seconds)
       << " execute_s=" << format_value(summary.execute_seconds)
       << " emit_s=" << format_value(summary.emit_seconds)
       << " rows_per_s=" << format_value(summary.rows_per_second())
       << " cache_hits=" << summary.cache.hits
       << " cache_misses=" << summary.cache.misses << "\n";
  out_.flush();
}

void JsonlSink::begin(const RunMetadata& metadata,
                      const std::vector<std::string>& columns) {
  scenario_ = metadata.scenario;
  columns_ = columns;
  out_ << "{\"type\":\"meta\",\"scenario\":\"" << json_escape(metadata.scenario)
       << "\",\"model\":\"" << json_escape(metadata.model)
       << "\",\"git\":\"" << json_escape(metadata.git_describe)
       << "\",\"git_time\":\"" << json_escape(metadata.git_time)
       << "\",\"seed\":" << metadata.base_seed
       << ",\"threads\":" << metadata.threads << "}\n";
}

void JsonlSink::row(const ResultRow& row) {
  out_ << "{\"type\":\"row\",\"scenario\":\"" << json_escape(scenario_)
       << "\",\"index\":" << row.index;
  for (std::size_t i = 0; i < row.values.size() && i < columns_.size(); ++i) {
    const double v = row.values[i];
    out_ << ",\"" << json_escape(columns_[i]) << "\":";
    // JSON has no inf/nan literals; emit them as strings.
    if (std::isfinite(v)) {
      out_ << format_value(v);
    } else {
      out_ << '"' << format_value(v) << '"';
    }
  }
  out_ << "}\n";
}

void JsonlSink::finish(const RunSummary& summary) {
  out_ << "{\"type\":\"summary\",\"scenario\":\"" << json_escape(scenario_)
       << "\",\"rows\":" << summary.rows
       << ",\"wall_s\":" << format_value(summary.wall_seconds)
       << ",\"task_s\":" << format_value(summary.task_seconds_total)
       << ",\"expand_s\":" << format_value(summary.expand_seconds)
       << ",\"execute_s\":" << format_value(summary.execute_seconds)
       << ",\"emit_s\":" << format_value(summary.emit_seconds)
       << ",\"rows_per_s\":" << format_value(summary.rows_per_second())
       << ",\"cache_hits\":" << summary.cache.hits
       << ",\"cache_misses\":" << summary.cache.misses
       << ",\"cache_hit_rate\":" << format_value(summary.cache.hit_rate())
       << "}\n";
  out_.flush();
}

void SnapshottingSink::begin(const RunMetadata& metadata,
                             const std::vector<std::string>& columns) {
  scenario_ = metadata.scenario;
  rows_seen_ = 0;
  inner_.begin(metadata, columns);
}

void SnapshottingSink::row(const ResultRow& row) {
  inner_.row(row);
  ++rows_seen_;
  if (every_ > 0 && rows_seen_ % every_ == 0) {
    emit_snapshot("periodic");
  }
}

void SnapshottingSink::finish(const RunSummary& summary) {
  inner_.finish(summary);
  emit_snapshot("final");
  out_.flush();
}

void SnapshottingSink::emit_snapshot(const char* phase) {
  // render_report's JSON is a single object with a trailing newline;
  // strip it so the snapshot stays one JSONL line. The report carries
  // the bevr.snapshot.v1 schema tag, capture timestamps and any SLO
  // readings alongside the metrics.
  std::string metrics = obs::render_report(
      obs::ReportData{obs::MetricsRegistry::global().snapshot(),
                      obs::SloRegistry::global().snapshot_all()},
      obs::ReportFormat::kJson);
  while (!metrics.empty() && metrics.back() == '\n') metrics.pop_back();
  out_ << "{\"type\":\"snapshot\",\"scenario\":\"" << json_escape(scenario_)
       << "\",\"phase\":\"" << phase << "\",\"rows\":" << rows_seen_
       << ",\"metrics\":" << metrics << "}\n";
  ++snapshots_;
}

void VectorSink::begin(const RunMetadata& metadata,
                       const std::vector<std::string>& columns) {
  metadata_ = metadata;
  columns_ = columns;
  rows_.clear();
}

void VectorSink::row(const ResultRow& row) { rows_.push_back(row); }

void VectorSink::finish(const RunSummary& summary) { summary_ = summary; }

}  // namespace bevr::runner
