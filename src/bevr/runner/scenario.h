// Declarative experiment scenarios and the named-scenario registry.
//
// A ScenarioSpec is a complete, serialisable description of one sweep:
// load family + parameters, utility family + parameters, an evaluation
// grid (capacities or prices), and which model evaluates it —
// fixed-load, discrete variable-load, continuum closed forms, welfare,
// or the flow-level simulator. The built-in registry enumerates the
// full paper-figure suite (Figures 2/3/4, their welfare panels, the
// continuum cross-checks, and a sim-vs-model validation) as named
// scenarios that `bevr_run` can list, filter and execute.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bevr/admission/trace.h"
#include "bevr/core/continuum.h"
#include "bevr/core/variable_load.h"
#include "bevr/dist/discrete.h"
#include "bevr/net2/trace.h"
#include "bevr/utility/utility.h"

namespace bevr::runner {

enum class LoadFamily { kPoisson, kExponential, kAlgebraic };
enum class UtilityFamily {
  kRigid,
  kAdaptiveExp,
  kPiecewiseLinear,
  kElastic,
  kAlgebraicTail,
};
enum class ModelKind {
  kFixedLoad,      ///< k_max(C) and V(k_max; C) per capacity
  kVariableLoad,   ///< B, R, δ, Δ per capacity (paper §3.1)
  kContinuum,      ///< closed-form/numeric continuum per capacity (§3.2)
  kWelfare,        ///< C(p), W(p), γ(p) per price (§4)
  kSimulation,     ///< flow-level sim vs model per capacity
  kAdmission,      ///< admission policies on shared arrival traces
  kNet2,           ///< multi-link network policies / mean-field evaluator
};

/// Which knob an admission scenario sweeps over its grid.
enum class AdmissionSweep {
  kArrivalRate,  ///< trace arrival rate; compares the three policies
  kBookAhead,    ///< mean submit-to-start lead; compares the policies
  kErlangCheck,  ///< offered load; rigid calendar vs Erlang-B (M/M/C/C)
};

[[nodiscard]] std::string to_string(AdmissionSweep sweep);

/// Admission-scenario knobs (ModelKind::kAdmission). The grid value
/// overrides the swept TraceSpec field per point; everything else in
/// `trace` is shared, so each grid point replays its three policies on
/// one bit-identical trace.
struct AdmissionSpec {
  admission::TraceSpec trace;
  AdmissionSweep sweep = AdmissionSweep::kArrivalRate;
  double capacity = 100.0;
  double tick = 0.25;   ///< calendar slice width
  double warmup = 50.0; ///< requests submitting earlier are unscored
  /// Advance-booking malleability (ignored by the other policies).
  double min_rate_fraction = 0.5;
  double max_start_shift = 2.0;
  double shift_step = 0.5;
};

/// Which knob a network (net2) scenario sweeps over its grid.
enum class Net2Sweep {
  /// Per-pair offered load (erlangs); compares best effort, per-link
  /// reservation, and DAR at r = 0 and r = trunk_reserve on one
  /// bit-identical trace per point — the network fig2 analogue.
  kPairLoad,
  /// Per-pair offered load; DAR simulation blocking vs the Erlang
  /// fixed point at the same (C, a, r), with a 3σ half-width column.
  kMeanFieldCheck,
  /// Node count N (rounded to the nearest integer); simulation
  /// blocking against the N-independent mean-field limit — the
  /// Fayolle et al. large-network asymptotics check.
  kNodes,
  /// Per-link capacity C (rounded); pure fixed-point sweep with the
  /// per-pair load placed at `mf_target_blocking` Erlang-B blocking
  /// via erlang_b_offered_load — the analytic path to operating
  /// points far beyond what the simulator can replay.
  kMeanFieldScale,
};

[[nodiscard]] std::string to_string(Net2Sweep sweep);

/// Network-scenario knobs (ModelKind::kNet2). The grid value overrides
/// the swept field per point; everything else is shared, so each grid
/// point replays its policies on one bit-identical trace.
struct Net2Spec {
  net2::TopologyKind topology = net2::TopologyKind::kFullMesh;
  int nodes = 6;           ///< synthetic-topology node count
  double capacity = 10.0;  ///< per-link circuits (integral for mean field)
  net2::NetTraceSpec trace;
  Net2Sweep sweep = Net2Sweep::kPairLoad;
  double warmup = 20.0;       ///< calls submitting earlier are unscored
  double trunk_reserve = 2.0; ///< DAR r (integral circuits)
  /// Mean-field iteration knobs (kMeanFieldCheck/kNodes/kMeanFieldScale).
  double mf_damping = 0.5;
  double mf_tolerance = 1e-12;
  /// kMeanFieldScale: Erlang-B blocking the per-pair load is placed at.
  double mf_target_blocking = 0.01;
};

[[nodiscard]] std::string to_string(LoadFamily family);
[[nodiscard]] std::string to_string(UtilityFamily family);
[[nodiscard]] std::string to_string(ModelKind kind);

/// An inclusive 1-D evaluation grid.
struct GridSpec {
  double lo = 10.0;
  double hi = 400.0;
  int points = 40;
  bool log_spaced = false;

  [[nodiscard]] std::vector<double> values() const;
};

struct ScenarioSpec {
  std::string name;
  std::string description;
  ModelKind model = ModelKind::kVariableLoad;

  LoadFamily load = LoadFamily::kExponential;
  /// Algebraic: the power z (mean held at `load_mean`). Poisson /
  /// exponential: unused (the mean is the only parameter).
  double load_param = 0.0;
  double load_mean = 100.0;  ///< k̄; the paper fixes 100

  UtilityFamily util = UtilityFamily::kRigid;
  /// Rigid: b̂; AdaptiveExp: κ; PiecewiseLinear: floor a;
  /// AlgebraicTail: r; Elastic: unused.
  double util_param = 1.0;

  /// Capacity grid (fixed/variable/continuum/sim) or price grid (welfare).
  GridSpec grid;

  /// Include the root-solved bandwidth gap Δ(C) column (variable-load
  /// and continuum sweeps; by far the most expensive column).
  bool with_bandwidth_gap = true;

  /// Evaluation accuracy knobs forwarded to VariableLoadModel.
  core::VariableLoadModel::Options eval;

  /// Simulation-only knobs (ModelKind::kSimulation).
  double sim_horizon = 4000.0;
  double sim_warmup = 400.0;

  /// Admission-only knobs (ModelKind::kAdmission).
  AdmissionSpec admission;

  /// Network-only knobs (ModelKind::kNet2).
  Net2Spec net2;

  /// Throws std::invalid_argument with a precise message when the spec
  /// is not executable (bad grid, unsupported model/family combo, ...).
  void validate() const;
};

/// Instantiate the spec's load distribution / utility function.
/// `make_load` performs the Hurwitz-zeta λ-calibration for algebraic
/// loads, which the runner memoizes across tasks (see MemoCache).
[[nodiscard]] std::shared_ptr<const dist::DiscreteLoad> make_load(
    const ScenarioSpec& spec);
[[nodiscard]] std::shared_ptr<const dist::DiscreteLoad> make_load_with_lambda(
    const ScenarioSpec& spec, double algebraic_lambda);
[[nodiscard]] std::shared_ptr<const utility::UtilityFunction> make_utility(
    const ScenarioSpec& spec);

/// Continuum model for the spec's (load, utility) pair, using the
/// paper's closed forms where they exist and quadrature otherwise.
/// Throws for combinations with no continuum analogue (Poisson loads).
[[nodiscard]] std::unique_ptr<const core::ContinuumModel> make_continuum_model(
    const ScenarioSpec& spec);

/// Named-scenario registry. Lookup is by exact name first, then by
/// case-sensitive substring filter (`match`).
class ScenarioRegistry {
 public:
  /// Throws std::invalid_argument on duplicate names.
  void add(ScenarioSpec spec);

  [[nodiscard]] const ScenarioSpec* find(const std::string& name) const;
  [[nodiscard]] std::vector<const ScenarioSpec*> match(
      const std::string& filter) const;
  [[nodiscard]] const std::vector<ScenarioSpec>& all() const { return specs_; }

  /// The paper-figure suite: fig{2,3,4}_{rigid,adaptive}, their
  /// welfare panels, fig1 fixed-load curves, continuum cross-checks,
  /// and sim_mm_inf_validation.
  [[nodiscard]] static const ScenarioRegistry& builtin();

 private:
  std::vector<ScenarioSpec> specs_;
};

}  // namespace bevr::runner
