// The experiment engine: executes a ScenarioSpec across a thread pool
// with deterministic per-task sub-seeding and memoized evaluation.
//
// Determinism contract: the data rows delivered to the ResultSink are
// a pure function of (spec, base_seed) — identical at any thread
// count. Tasks are sharded by grid index; stochastic tasks (the sim
// model) derive their RNG as Rng(base_seed).split(task_index), so no
// task ever observes another task's draws. Rows are buffered per-index
// during the parallel section and emitted in grid order afterwards.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bevr/runner/memo_cache.h"
#include "bevr/runner/result_sink.h"
#include "bevr/runner/scenario.h"
#include "bevr/runner/thread_pool.h"

namespace bevr::runner {

struct RunOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = run inline (no pool).
  unsigned threads = 1;
  /// Root seed for stochastic scenarios; task i uses split(i)-derived
  /// sub-seeds, so the same base_seed reproduces bit-identical output.
  std::uint64_t base_seed = 42;
  /// Memoize hot evaluations (k_max, totals, λ-calibration). Turning
  /// this off never changes results, only wall time.
  bool use_cache = true;
  /// Optional shared cache: pass one cache across several scenarios to
  /// reuse e.g. Hurwitz-zeta λ-calibrations between runs. When null
  /// and use_cache, a fresh per-run cache is created.
  std::shared_ptr<MemoCache> cache;
  /// Optional external pool to amortise thread start-up across runs;
  /// when set it overrides `threads`.
  ThreadPool* pool = nullptr;
  /// Evaluate model-backed plans through bevr::kernels (batched load
  /// tables + warm-started k_max) instead of point-at-a-time scalar
  /// calls. Results are identical by the kernels' equivalence
  /// contract; `bevr_run --no-kernels` flips this off to verify.
  bool use_kernels = true;
};

/// Column names the given spec's rows will carry, in order.
[[nodiscard]] std::vector<std::string> scenario_columns(const ScenarioSpec& spec);

class MemoizedVariableLoad;

/// The memoizing façade every model-backed plan evaluates through,
/// exposed so front ends (bevr::service) share the runner's exact
/// evaluation path: the algebraic λ-calibration is memoized in `cache`
/// (shared across scenarios), and with `use_kernels` cache misses are
/// computed by a SweepEvaluator (bit-identical by the kernels
/// equivalence contract). `cache` may be null (no memoization).
[[nodiscard]] std::shared_ptr<MemoizedVariableLoad> make_memoized_model(
    const ScenarioSpec& spec, const std::shared_ptr<MemoCache>& cache,
    bool use_kernels);

/// `git describe --always --dirty` of the working tree, or "unknown"
/// (cleanly — stderr never leaks into provenance) when git is absent
/// or the directory is not a repository.
[[nodiscard]] std::string git_describe();

/// HEAD's committer timestamp, strict ISO 8601 (e.g.
/// "2026-08-05T12:00:00+00:00"), or "unknown" under the same
/// conditions as git_describe().
[[nodiscard]] std::string git_commit_time();

/// Validate, expand and execute the scenario, streaming results into
/// `sink` (begin → rows in grid order → finish). Returns the summary
/// also handed to sink.finish(). Throws std::invalid_argument for
/// non-executable specs; exceptions from model evaluation propagate
/// after outstanding tasks drain.
RunSummary run_scenario(const ScenarioSpec& spec, const RunOptions& options,
                        ResultSink& sink);

}  // namespace bevr::runner
